// Interconnect explorer: capture the packet-bus demand of a live
// multi-standard run, then replay it through the alternative topologies the
// thesis names as future work (wider bus, multi-bus network, segmented bus,
// §3.6.3/§7.1.1) and through an N-mode scaling sweep — the architectural
// what-if a platform derivative designer would run before taping out.
//
//   $ ./interconnect_explorer [n_modes_max]
#include <cstdio>
#include <cstdlib>

#include "drmp/testbench.hpp"
#include "hw/bus_trace.hpp"
#include "hw/interconnect_models.hpp"

int main(int argc, char** argv) {
  using namespace drmp;
  const u32 n_max = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 6;

  // 1. Capture: three concurrent protocol streams on the real single bus.
  Testbench tb;
  hw::BusTraceRecorder rec;
  tb.device().bus().attach_recorder(&rec);
  for (u32 p = 0; p < 3; ++p) {
    for (Mode m : {Mode::A, Mode::B, Mode::C}) {
      Bytes msdu(1000);
      for (std::size_t i = 0; i < msdu.size(); ++i) msdu[i] = static_cast<u8>(i + p);
      tb.send_async(m, msdu);
    }
  }
  for (Mode m : {Mode::A, Mode::B, Mode::C}) tb.wait_tx_count(m, 3, 4'000'000'000ull);
  rec.finish(tb.device().bus().total_cycles());
  const auto flows = hw::to_flow_trace(rec.transactions());
  std::printf("captured %zu bus tenures from a 3-mode run (%.1f us)\n\n",
              rec.size(),
              tb.device().timebase().cycles_to_us(tb.device().bus().total_cycles()));

  // 2. Replay through each topology.
  std::vector<hw::InterconnectSpec> specs(4);
  specs[0] = {};
  specs[1].kind = hw::InterconnectSpec::Kind::WideBus;
  specs[1].width_words = 2;
  specs[2].kind = hw::InterconnectSpec::Kind::MultiBus;
  specs[2].num_buses = 3;
  specs[3].kind = hw::InterconnectSpec::Kind::SegmentedBus;

  std::printf("%-24s %14s %14s %10s\n", "topology", "total wait(us)", "peak util(%)",
              "wire cost");
  for (const auto& s : specs) {
    const auto r = hw::replay_interconnect(flows, s);
    std::printf("%-24s %14.2f %14.2f %10.2f\n", s.label().c_str(),
                tb.device().timebase().cycles_to_us(r.total_wait()),
                100.0 * r.peak_utilization, s.wire_cost());
  }

  // 3. Scaling: how many 64x-compressed flows fit on one bus? (§3.1 footnote)
  std::vector<hw::FlowTx> pattern;
  for (const auto& f : flows) {
    if (f.flow != 0) continue;
    hw::FlowTx c = f;
    c.request /= 64;
    pattern.push_back(c);
  }
  std::printf("\nscaling the mode count on a single 32-bit bus:\n");
  std::printf("%8s %14s %16s\n", "N modes", "bus util(%)", "worst wait(us)");
  for (u32 n = 1; n <= n_max; ++n) {
    const auto synth = hw::synthesize_n_flows(pattern, n, 293);
    const auto r = hw::replay_interconnect(synth, {});
    std::printf("%8u %14.1f %16.2f\n", n, 100.0 * r.peak_utilization,
                tb.device().timebase().cycles_to_us(r.worst_flow_wait()));
  }
  std::printf("\n'The potential bottleneck is the interconnect' (thesis 3.1) — "
              "this is where it bites, and what each remedy buys.\n");
  return 0;
}
