// Fleet demo: a heterogeneous fleet mixing both cell topologies — four DRMP
// devices time-sharing their MAC processors across WiFi / WiMAX / UWB in
// point-to-point cells, plus one shared-medium cell of four more stations
// contending for a single WiFi channel (collisions, deferrals, capture) —
// advanced in lockstep by the batched multi-device scheduler, over channels
// that corrupt frames on the air. Per-device activity-weighted power
// estimates close the loop to the paper's power argument.
//
//   $ ./fleet_demo [--trace[=PATH]]
//
//   --trace attaches a flight recorder to every cell and writes a Chrome
//   trace-event JSON (default fleet_trace.json) — open it in Perfetto
//   (https://ui.perfetto.dev) to scrub the frame lifecycle per station.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "scenario/scenario_engine.hpp"

int main(int argc, char** argv) {
  using namespace drmp;

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = "fleet_trace.json";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
  }

  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::mixed_three_standard(/*n_devices=*/4, /*seed=*/1,
                                                   /*msdus_per_mode=*/3);
  // Append one contended cell: four WiFi-only stations uplinking to a
  // scripted access point on one shared medium.
  scenario::ScenarioSpec contended =
      scenario::ScenarioSpec::contended_wifi_cell(/*n_stations=*/4, /*seed=*/1,
                                                  /*msdus_per_station=*/6);
  spec.cells.push_back(std::move(contended.cells[0]));
  spec.name = "mixed-fleet-with-contention";
  spec.max_cycles = 120'000'000;
  spec.trace.enabled = !trace_path.empty();

  std::printf(
      "running '%s': %zu stations in %zu cells, lossy WiFi (%u permille) "
      "and UWB (%u permille) bands, one 4-station contended cell...\n\n",
      spec.name.c_str(), spec.station_count(), spec.cells.size(),
      spec.channel[0].loss_permille, spec.channel[2].loss_permille);

  scenario::ScenarioEngine engine(std::move(spec));
  const scenario::FleetStats fs = engine.run();

  std::printf("%s\n", fs.report().c_str());
  std::printf(
      "fleet ran %llu device-cycles in %.3f s (%.2f M device-cycles/s)\n",
      static_cast<unsigned long long>(fs.device_cycles_total()),
      fs.wall_seconds, fs.device_cycles_per_sec() / 1e6);
  std::printf(
      "\nEvery cell kept its own scheduler; the shared-medium cell saw\n"
      "%llu collisions and %llu CSMA deferrals — the contention workload\n"
      "the DRMP's power-sensitive multi-standard design targets.\n",
      static_cast<unsigned long long>(fs.total_collisions()),
      static_cast<unsigned long long>(fs.total_defers()));
  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    f << engine.chrome_trace();
    if (!f) {
      std::printf("FAILED to write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("\nchrome trace: %s (open in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return fs.all_drained ? 0 : 1;
}
