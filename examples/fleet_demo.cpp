// Fleet demo: six DRMP devices time-sharing their MAC processors across
// WiFi / WiMAX / UWB with heterogeneous traffic mixes, advanced in lockstep
// by the batched multi-device scheduler, over channels that corrupt frames
// on the air.
//
//   $ ./fleet_demo
#include <cstdio>

#include "scenario/scenario_engine.hpp"

int main() {
  using namespace drmp;

  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::mixed_three_standard(/*n_devices=*/6, /*seed=*/1,
                                                   /*msdus_per_mode=*/3);

  std::printf("running '%s': %zu devices, lossy WiFi (%u permille) and UWB "
              "(%u permille) bands...\n\n",
              spec.name.c_str(), spec.devices.size(), spec.channel[0].loss_permille,
              spec.channel[2].loss_permille);

  scenario::ScenarioEngine engine(std::move(spec));
  const scenario::FleetStats fs = engine.run();

  std::printf("%s\n", fs.report().c_str());
  std::printf("fleet ran %llu device-cycles in %.3f s (%.2f M device-cycles/s)\n",
              static_cast<unsigned long long>(fs.device_cycles_total()), fs.wall_seconds,
              fs.device_cycles_per_sec() / 1e6);
  std::printf("\nEvery device kept its own scheduler, memories and IRC; the fleet\n"
              "advanced in lockstep strides with per-device early exit - the\n"
              "many-device axis of the ROADMAP north star.\n");
  return fs.all_drained ? 0 : 1;
}
