// Fleet demo: a heterogeneous fleet mixing both cell topologies — four DRMP
// devices time-sharing their MAC processors across WiFi / WiMAX / UWB in
// point-to-point cells, plus one shared-medium cell of four more stations
// contending for a single WiFi channel (collisions, deferrals, capture) —
// advanced in lockstep by the batched multi-device scheduler, over channels
// that corrupt frames on the air. Per-device activity-weighted power
// estimates close the loop to the paper's power argument.
//
//   $ ./fleet_demo
#include <cstdio>

#include "scenario/scenario_engine.hpp"

int main() {
  using namespace drmp;

  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::mixed_three_standard(/*n_devices=*/4, /*seed=*/1,
                                                   /*msdus_per_mode=*/3);
  // Append one contended cell: four WiFi-only stations uplinking to a
  // scripted access point on one shared medium.
  scenario::ScenarioSpec contended =
      scenario::ScenarioSpec::contended_wifi_cell(/*n_stations=*/4, /*seed=*/1,
                                                  /*msdus_per_station=*/6);
  spec.cells.push_back(std::move(contended.cells[0]));
  spec.name = "mixed-fleet-with-contention";
  spec.max_cycles = 120'000'000;

  std::printf("running '%s': %zu stations in %zu cells, lossy WiFi (%u permille) "
              "and UWB (%u permille) bands, one 4-station contended cell...\n\n",
              spec.name.c_str(), spec.station_count(), spec.cells.size(),
              spec.channel[0].loss_permille, spec.channel[2].loss_permille);

  scenario::ScenarioEngine engine(std::move(spec));
  const scenario::FleetStats fs = engine.run();

  std::printf("%s\n", fs.report().c_str());
  std::printf("fleet ran %llu device-cycles in %.3f s (%.2f M device-cycles/s)\n",
              static_cast<unsigned long long>(fs.device_cycles_total()), fs.wall_seconds,
              fs.device_cycles_per_sec() / 1e6);
  std::printf("\nEvery cell kept its own scheduler; the shared-medium cell saw\n"
              "%llu collisions and %llu CSMA deferrals — the contention workload\n"
              "the DRMP's power-sensitive multi-standard design targets.\n",
              static_cast<unsigned long long>(fs.total_collisions()),
              static_cast<unsigned long long>(fs.total_defers()));
  return fs.all_drained ? 0 : 1;
}
