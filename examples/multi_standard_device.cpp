// The thesis's motivating scenario (Fig. 3.1): a multi-standard hand-held
// device concurrently (a) browsing over WiFi, (b) uploading over WiMAX, and
// (c) streaming to a UWB peripheral — all three MAC layers on the single
// DRMP, reconfiguring packet-by-packet.
//
//   $ ./multi_standard_device
#include <cstdio>

#include "drmp/testbench.hpp"

int main() {
  using namespace drmp;
  Testbench tb;

  // Offered traffic: a browsing burst (WiFi), a bulk upload (WiMAX, with two
  // small MSDUs that the MAC packs into one MPDU), and a media stream (UWB).
  std::printf("queueing traffic on all three modes...\n");
  for (int i = 0; i < 3; ++i) {
    Bytes page(900 + 120 * static_cast<std::size_t>(i), static_cast<u8>(0x10 + i));
    tb.send_async(Mode::A, page);  // WiFi browsing.
  }
  tb.send_async(Mode::B, Bytes(180, 0x21));   // WiMAX: small -> packed pair.
  tb.send_async(Mode::B, Bytes(150, 0x22));
  tb.send_async(Mode::B, Bytes(1400, 0x23));  // WiMAX: bulk MPDU.
  for (int i = 0; i < 4; ++i) {
    tb.send_async(Mode::C, Bytes(700, static_cast<u8>(0x31 + i)));  // UWB stream.
  }

  // Meanwhile the WiFi access point pushes a frame down to us.
  Bytes downlink(600, 0x77);
  const auto fr = tb.make_peer_frames(Mode::A, downlink, 5);
  tb.peer(Mode::A).inject_frame(fr[0], tb.scheduler().now() + 500000);

  // Run until all traffic completes.
  tb.wait_tx_count(Mode::A, 3, 4'000'000'000ull);
  tb.wait_tx_count(Mode::B, 2, 4'000'000'000ull);  // Packed pair = 1 + bulk = 1.
  tb.wait_tx_count(Mode::C, 4, 4'000'000'000ull);
  tb.run_until([&] { return !tb.delivered(Mode::A).empty(); }, 400'000'000);

  std::printf("\nresults after %.2f ms of simulated time:\n",
              tb.scheduler().now_us() / 1000.0);
  std::printf("  WiFi : %u MSDUs sent ok, %zu downlink MSDU(s) delivered\n",
              tb.tx_successes(Mode::A), tb.delivered(Mode::A).size());
  std::printf("  WiMAX: %u MPDUs sent ok (incl. one carrying 2 packed SDUs); "
              "peer saw %zu MPDUs\n",
              tb.tx_successes(Mode::B), tb.peer(Mode::B).received_data_frames().size());
  std::printf("  UWB  : %u stream MSDUs sent ok, each Imm-ACKed within SIFS\n",
              tb.tx_successes(Mode::C));

  std::printf("\nthe single co-processor served all three protocols:\n");
  std::printf("  crypto RFU reconfigurations (RC4<->DES<->AES): %llu\n",
              static_cast<unsigned long long>(tb.device().crypto_rfu().reconfig_count()));
  std::printf("  packet-bus utilization: %.2f%%\n",
              100.0 * static_cast<double>(tb.device().bus().busy_cycles()) /
                  static_cast<double>(tb.device().bus().total_cycles()));
  std::printf("  CPU busy: %.2f%% — one slow CPU runs three protocol state "
              "machines (thesis Fig. 4.1b)\n",
              100.0 * tb.device().cpu().busy_fraction());
  return 0;
}
