// Lossy-link demo: run WiFi traffic over a channel that corrupts frames on
// the air (the Medium's fault injector), and watch the MAC's redundancy
// machinery — HCS/FCS checks, ACK timeouts, retries with contention-window
// growth, and the RTS/CTS handshake — recover every MSDU.
//
//   $ ./lossy_link
#include <cstdio>
#include <random>

#include "drmp/testbench.hpp"
#include "mac/wifi_ctrl.hpp"

int main() {
  using namespace drmp;

  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.modes[0].ident.rts_threshold = 800;  // Large MSDUs reserve the medium.
  Testbench tb(cfg);

  // Corrupt ~25% of data-sized frames with a deterministic PRNG; leave the
  // short control frames (ACK/CTS) clean so the demo isolates the data path.
  std::mt19937 rng(2026);
  tb.medium(Mode::A).tamper = [&rng](Bytes& f) {
    if (f.size() < 64 || (rng() % 100) >= 25) return false;
    f[rng() % f.size()] ^= static_cast<u8>(1u << (rng() % 8));
    return true;
  };

  std::printf("sending 8 MSDUs (400..1800 B) over a channel with ~25%% frame "
              "corruption...\n\n");
  u32 sent = 0;
  for (u32 i = 0; i < 8; ++i) {
    const std::size_t size = 400 + 200 * i;
    Bytes msdu(size);
    for (std::size_t j = 0; j < size; ++j) msdu[j] = static_cast<u8>(j * 3 + i);
    const auto out = tb.send_and_wait(Mode::A, msdu, 8'000'000'000ull);
    std::printf("  MSDU %u (%4zu B): %-7s retries=%u latency=%8.1f us\n", i, size,
                out.success ? "OK" : "FAILED", out.retries, out.latency_us);
    if (out.success) ++sent;
  }

  const auto& ctrl = static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
  std::printf("\nlink summary:\n");
  std::printf("  delivered           : %u / 8\n", sent);
  std::printf("  frames corrupted    : %llu\n",
              static_cast<unsigned long long>(tb.medium(Mode::A).tampered_frames()));
  std::printf("  peer ACKs sent      : %llu\n",
              static_cast<unsigned long long>(tb.peer(Mode::A).acks_sent()));
  std::printf("  RTS sent / CTS rcvd : %u / %u (handshake above %u B)\n",
              ctrl.rts_sent, ctrl.cts_received, cfg.modes[0].ident.rts_threshold);
  std::printf("  rx frames dropped by redundancy checks: %u\n",
              tb.device().event_handler().rx_bad_frames(Mode::A));
  std::printf("\nEvery corrupted frame was caught by a CRC and repaired by a "
              "retry - the MAC-layer argument of thesis 2.3.1.\n");
  return 0;
}
