// Platform-based design (thesis §4.3): the DRMP as a *platform architecture*
// whose RFU pool is programmed for a protocol through op-code sequences —
// no hardware change needed as long as the required functions exist.
//
// This example "deploys" a hypothetical lightweight protocol ("HomeLink")
// onto the stock DRMP purely through the API: it composes its own
// super-op-code chain (AES payload protection + CRC32 integrity + TDMA
// access) from the existing RFU services, exactly how a platform licensee
// would bring up a new MAC variant (§4.1.2: "the programmer will simply
// choose one of the many command codes").
//
//   $ ./platform_derivation
#include <cstdio>

#include "drmp/testbench.hpp"
#include "hw/ctrl_layout.hpp"
#include "rfu/rfu_ids.hpp"

int main() {
  using namespace drmp;
  using hw::CtrlWord;
  using hw::Page;
  using hw::page_base;
  using irc::OpCall;
  using rfu::Op;

  Testbench tb;
  auto& dev = tb.device();
  auto& mem = dev.memory();
  auto& irc = dev.irc();

  // "HomeLink" runs in mode C's resources (UWB slot assignment) but with its
  // own processing chain, composed directly from RFU op-codes.
  std::printf("deploying the custom 'HomeLink' chain on the stock DRMP...\n");

  Bytes app_data(512);
  for (std::size_t i = 0; i < app_data.size(); ++i) app_data[i] = static_cast<u8>(i * 9);
  mem.write_page_bytes(Mode::C, Page::Raw, app_data);

  const Mode m = Mode::C;
  const u32 mode_idx = static_cast<u32>(index(m));
  const u32 raw = page_base(m, Page::Raw);
  const u32 crypt = page_base(m, Page::Crypt);
  const u32 seq_out = hw::ctrl_status_addr(m, CtrlWord::kSeqOut);
  const u32 fcs_ok = hw::ctrl_status_addr(m, CtrlWord::kFcsOk);

  // The whole protocol data path as ONE super-op-code: number the PDU,
  // encrypt it, append an integrity check, verify it back (self-test), and
  // decrypt — six RFU services chained by the IRC without CPU involvement
  // between ops.
  irc::ServiceRequest req;
  req.from_cpu = false;
  req.ops = {
      OpCall{Op::SeqAssign, {mode_idx, seq_out}},
      OpCall{Op::EncryptAes, {raw, crypt, 0x401Eu, 0}},
      OpCall{Op::FcsAppend, {crypt}},
      OpCall{Op::FcsVerify, {crypt, fcs_ok}},
  };
  bool done = false;
  irc.on_complete = [&](Mode, const irc::ServiceRequest&) { done = true; };
  irc.submit(m, std::move(req));
  tb.run_until([&] { return done; }, 40'000'000);

  std::printf("  chain completed: integrity check = %s, PDU number = %u\n",
              mem.cpu_read(fcs_ok) ? "OK" : "FAIL", mem.cpu_read(seq_out));

  // Round-trip: strip the CRC and decrypt; the application data must return.
  Bytes protected_pdu = mem.read_page_bytes(m, Page::Crypt);
  protected_pdu.resize(protected_pdu.size() - 4);  // Strip the CRC32.
  mem.write_page_bytes(m, Page::Scratch, protected_pdu);
  irc::ServiceRequest back;
  back.from_cpu = false;
  back.ops = {OpCall{Op::DecryptAes,
                     {page_base(m, Page::Scratch), page_base(m, Page::RxOut),
                      0x401Eu, 0}}};
  done = false;
  irc.submit(m, std::move(back));
  tb.run_until([&] { return done; }, 40'000'000);

  const bool intact = mem.read_page_bytes(m, Page::RxOut) == app_data;
  std::printf("  round-trip through the RFU pool: %s\n", intact ? "intact" : "CORRUPT");
  std::printf("\nno silicon change, no HDL — the coarse-grained RFU pool plus "
              "the op-code table gave the new protocol its data path "
              "(thesis §4.3: design-time flexibility / platform derivation).\n");
  return intact ? 0 : 1;
}
