// Power exploration (thesis §5.5.1 / §6.2): sweep the operating point of the
// DRMP, measure activity under a fixed traffic load at each clock, and print
// the resulting power — the designer's trade-off view between timing slack
// and energy.
//
//   $ ./power_explorer
#include <cstdio>
#include <map>

#include "drmp/testbench.hpp"
#include "est/gates.hpp"
#include "est/power.hpp"

namespace {

using namespace drmp;

struct OperatingPoint {
  double arch_mhz;
  bool timing_met;
  double activity_rfus;
  double total_mw;
};

OperatingPoint measure(double arch_mhz) {
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.arch_freq_hz = arch_mhz * 1e6;
  cfg.cpu_freq_hz = std::min(40e6, arch_mhz * 1e6 / 2.0);
  Testbench tb(cfg);

  // Fixed workload: one packet per mode.
  Bytes pkt(1000, 0x42);
  tb.send_async(Mode::A, pkt);
  tb.send_async(Mode::B, pkt);
  tb.send_async(Mode::C, pkt);
  const bool ok = tb.wait_tx_count(Mode::A, 1, 4'000'000'000ull) &&
                  tb.wait_tx_count(Mode::B, 1, 4'000'000'000ull) &&
                  tb.wait_tx_count(Mode::C, 1, 4'000'000'000ull);

  const double total = static_cast<double>(tb.scheduler().now());
  std::map<std::string, double> activity;
  double rfu_act = 0.0;
  for (const rfu::Rfu* r : tb.device().rfus()) {
    auto it = est::drmp_rfu_blocks().find(r->name());
    if (it != est::drmp_rfu_blocks().end()) {
      const double a = static_cast<double>(r->busy_cycles()) / total;
      activity[it->second.name] = a;
      rfu_act += a;
    }
  }
  activity["cpu_core"] = tb.device().cpu().busy_fraction();

  est::PowerTechniques tech;
  tech.clock_gating = true;
  tech.power_shutoff = true;
  const auto pw = est::estimate_power(est::drmp_design(), est::Process{},
                                      arch_mhz * 1e6, activity, 0.02, tech);
  return OperatingPoint{arch_mhz, ok && tb.tx_successes(Mode::A) == 1, rfu_act,
                        pw.total_mw()};
}

}  // namespace

int main() {
  std::printf("DRMP operating-point explorer (3-mode workload, gating+PSO)\n\n");
  std::printf("%-12s %-12s %-18s %-10s\n", "clock (MHz)", "timing met",
              "sum RFU activity", "power (mW)");
  for (double mhz : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    const auto p = measure(mhz);
    std::printf("%-12.0f %-12s %-18.4f %-10.2f\n", p.arch_mhz,
                p.timing_met ? "yes" : "NO", p.activity_rfus, p.total_mw);
  }
  std::printf(
      "\nreading: activity scales up as the clock drops (same work, fewer "
      "cycles), while power falls with frequency — pick the lowest clock "
      "that still meets the protocol constraints (thesis §5.5.2), then let "
      "DVFS take the voltage down with it (§6.2).\n");
  return 0;
}
