// Quickstart: bring up a DRMP device, transmit one WiFi MSDU through the
// full hardware path (sequence assignment, WEP encryption, fragmentation,
// MPDU assembly, HCS, CSMA/CA channel access, transmission with on-the-fly
// FCS), and receive one frame back — in ~40 lines of user code.
//
//   $ ./quickstart
#include <cstdio>

#include "drmp/testbench.hpp"

int main() {
  using namespace drmp;

  // A testbench wires one DRMP device (200 MHz co-processor, 40 MHz CPU,
  // modes: A=WiFi, B=WiMAX, C=UWB) to three media with scripted peers.
  Testbench tb;

  // --- Transmit -----------------------------------------------------------
  Bytes msdu(1200);
  for (std::size_t i = 0; i < msdu.size(); ++i) msdu[i] = static_cast<u8>(i);

  std::printf("sending a 1200-byte MSDU over WiFi (mode A)...\n");
  const auto out = tb.send_and_wait(Mode::A, msdu);
  std::printf("  completed=%d success=%d latency=%.1f us retries=%u\n",
              out.completed, out.success, out.latency_us, out.retries);
  std::printf("  peer received %zu data frame(s), sent %llu ACK(s)\n",
              tb.peer(Mode::A).received_data_frames().size(),
              static_cast<unsigned long long>(tb.peer(Mode::A).acks_sent()));

  // --- Receive ------------------------------------------------------------
  std::printf("\ninjecting a peer frame towards the device...\n");
  Bytes peer_msdu(800, 0x5A);
  const auto delivered = tb.inject_and_wait(Mode::A, peer_msdu, /*seq=*/1);
  std::printf("  delivered=%d bytes=%zu intact=%d\n", delivered.has_value(),
              delivered ? delivered->size() : 0,
              delivered && *delivered == peer_msdu);
  std::printf("  ACKs generated autonomously by the AckRfu (no CPU): %llu\n",
              static_cast<unsigned long long>(tb.device().ack_rfu().acks_generated()));

  // --- A peek at the co-processor ----------------------------------------
  std::printf("\nco-processor counters:\n");
  for (const rfu::Rfu* r : tb.device().rfus()) {
    if (r->exec_count() == 0) continue;
    std::printf("  RFU %-10s executions=%-3llu reconfigs=%llu busy_cycles=%llu\n",
                r->name().c_str(), static_cast<unsigned long long>(r->exec_count()),
                static_cast<unsigned long long>(r->reconfig_count()),
                static_cast<unsigned long long>(r->busy_cycles()));
  }
  std::printf("  CPU busy: %.2f%% across %llu ISR invocations\n",
              100.0 * tb.device().cpu().busy_fraction(),
              static_cast<unsigned long long>(tb.device().cpu().isr_invocations()));
  return 0;
}
