// StreamingRfu micro-sequencer tests through a minimal probe RFU: page
// reads/writes, unaligned byte patches, stalls, and cycle-cost accounting —
// the word-per-cycle contract every streaming unit relies on.
#include <gtest/gtest.h>

#include "hw/memory_map.hpp"
#include "rfu/streaming.hpp"
#include "sim/scheduler.hpp"

namespace drmp::rfu {
namespace {

using hw::Page;
using hw::page_base;

/// A probe RFU exposing the StreamingRfu micro-ops directly.
class ProbeRfu final : public StreamingRfu {
 public:
  explicit ProbeRfu(Env env) : StreamingRfu(31, "probe", ReconfigMech::ContextSwitch, env) {}

  // Plan configured by the test before triggering.
  std::function<void(ProbeRfu&)> plan;

  using StreamingRfu::in_bytes_;
  using StreamingRfu::in_words_;
  using StreamingRfu::out_bytes_;
  using StreamingRfu::q_patch_bytes;
  using StreamingRfu::q_read_page;
  using StreamingRfu::q_read_words;
  using StreamingRfu::q_stall;
  using StreamingRfu::q_write_len;
  using StreamingRfu::q_write_page;

 protected:
  void on_execute(Op) override {
    if (plan) plan(*this);
  }
  bool work_step() override { return io_step(); }
};

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() : sched(200e6), bus(mem, nullptr), tb(200e6) {
    Rfu::Env env;
    env.bus = &bus;
    env.rmem = &rmem;
    env.timebase = &tb;
    probe = std::make_unique<ProbeRfu>(env);
    sched.add(bus, "bus");
    sched.add(*probe, "probe");
    probe->rc_configure(1);
    sched.run_until([&] { return probe->rdone(); }, 100);
    probe->clear_rdone();
  }

  Cycle execute() {
    bus.request_for_irc(Mode::A);
    sched.run_until([&] { return bus.granted_irc(Mode::A); }, 100);
    bus.write(hw::rfu_trigger_addr(31), make_command_word(Op::Nop, 0));
    sched.run_cycles(1);
    bus.write(hw::rfu_trigger_addr(31), 0);  // Execute.
    const Cycle t0 = sched.now();
    bus.request_for_rfu(Mode::A, 31);
    sched.run_until([&] { return probe->done(); }, 1'000'000);
    const Cycle cost = sched.now() - t0;
    probe->clear_done();
    bus.release(Mode::A);
    sched.run_cycles(2);
    return cost;
  }

  sim::Scheduler sched;
  hw::PacketMemory mem;
  hw::PacketBus bus;
  hw::ReconfigMemory rmem;
  sim::TimeBase tb;
  std::unique_ptr<ProbeRfu> probe;
};

TEST_F(StreamingTest, ReadPageRecoversBytes) {
  Bytes data(123);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  mem.write_page_bytes(Mode::A, Page::Raw, data);
  probe->plan = [&](ProbeRfu& p) { p.q_read_page(page_base(Mode::A, Page::Raw)); };
  execute();
  EXPECT_EQ(probe->in_bytes_, data);
}

TEST_F(StreamingTest, WritePageCostIsOneWordPerCycle) {
  probe->plan = [&](ProbeRfu& p) {
    p.out_bytes_ = Bytes(400, 0x7E);
    p.q_write_page(page_base(Mode::A, Page::Tx));
  };
  const Cycle cost = execute();
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Tx), Bytes(400, 0x7E));
  // 1 len word + 100 data words, plus a few cycles of handshake.
  EXPECT_GE(cost, 101u);
  EXPECT_LE(cost, 110u);
}

TEST_F(StreamingTest, UnalignedPatchPreservesNeighbours) {
  // Patch 3 bytes at offset 5 (crosses a word boundary) and verify the
  // surrounding bytes are untouched — the read-modify-write path.
  Bytes base(16);
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = static_cast<u8>(i + 1);
  mem.write_page_bytes(Mode::A, Page::Raw, base);
  probe->plan = [&](ProbeRfu& p) {
    p.out_bytes_ = {0xAA, 0xBB, 0xCC};
    p.q_patch_bytes(page_base(Mode::A, Page::Raw), 5);
  };
  execute();
  Bytes expect = base;
  expect[5] = 0xAA;
  expect[6] = 0xBB;
  expect[7] = 0xCC;
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Raw), expect);
}

TEST_F(StreamingTest, PatchAtEveryOffsetRoundTrips) {
  // Property sweep: 4-byte patch at offsets 0..11 must always land exactly.
  for (u32 off = 0; off < 12; ++off) {
    Bytes base(24, 0x11);
    mem.write_page_bytes(Mode::A, Page::Raw, base);
    probe->plan = [&](ProbeRfu& p) {
      p.out_bytes_ = {0xD0, 0xD1, 0xD2, 0xD3};
      p.q_patch_bytes(page_base(Mode::A, Page::Raw), off);
    };
    execute();
    const Bytes out = mem.read_page_bytes(Mode::A, Page::Raw);
    for (u32 i = 0; i < 24; ++i) {
      if (i >= off && i < off + 4) {
        EXPECT_EQ(out[i], 0xD0 + (i - off)) << "off=" << off << " i=" << i;
      } else {
        EXPECT_EQ(out[i], 0x11) << "off=" << off << " i=" << i;
      }
    }
  }
}

TEST_F(StreamingTest, StallConsumesExactCycles) {
  probe->plan = [&](ProbeRfu& p) { p.q_stall(57); };
  const Cycle cost = execute();
  EXPECT_GE(cost, 57u);
  EXPECT_LE(cost, 62u);
}

TEST_F(StreamingTest, WriteLenUpdatesLengthOnly) {
  mem.write_page_bytes(Mode::A, Page::Raw, Bytes(40, 0x3C));
  probe->plan = [&](ProbeRfu& p) { p.q_write_len(page_base(Mode::A, Page::Raw), 8); };
  execute();
  EXPECT_EQ(mem.page_byte_len(Mode::A, Page::Raw), 8u);
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Raw), Bytes(8, 0x3C));
}

TEST_F(StreamingTest, NoBusAccessWithoutGrant) {
  // Trigger the probe but never hand it the bus: it must not progress.
  probe->plan = [&](ProbeRfu& p) {
    p.out_bytes_ = Bytes(8, 1);
    p.q_write_page(page_base(Mode::A, Page::Tx));
  };
  bus.request_for_irc(Mode::A);
  sched.run_until([&] { return bus.granted_irc(Mode::A); }, 100);
  bus.write(hw::rfu_trigger_addr(31), make_command_word(Op::Nop, 0));
  sched.run_cycles(1);
  bus.write(hw::rfu_trigger_addr(31), 0);
  // Keep the bus for the IRC (request never switched to the RFU).
  sched.run_cycles(5000);
  EXPECT_FALSE(probe->done());
  EXPECT_EQ(mem.page_byte_len(Mode::A, Page::Tx), 0u);
  // Now hand it over: it finishes.
  bus.request_for_rfu(Mode::A, 31);
  sched.run_until([&] { return probe->done(); }, 100000);
  EXPECT_TRUE(probe->done());
}

}  // namespace
}  // namespace drmp::rfu
