// Interconnect-model tests (§3.6.3/§7.1 alternatives): the bus-trace
// recorder's transaction building, and the replay models' arbitration,
// width scaling, multi-bus parallelism and segmented-bus concurrency —
// including a live-capture validation against the real single bus.
#include <gtest/gtest.h>

#include "drmp/testbench.hpp"
#include "hw/bus_trace.hpp"
#include "hw/interconnect_models.hpp"

namespace drmp::hw {
namespace {

// ---------------------------------------------------------------------------
// Recorder unit tests.
// ---------------------------------------------------------------------------

TEST(BusTraceRecorderTest, BuildsTransactionFromRequestAccessRelease) {
  BusTraceRecorder rec;
  rec.on_request(Mode::B, 100);
  rec.on_access(Mode::B, 104, /*rfu_region=*/true);
  rec.on_access(Mode::B, 105, /*rfu_region=*/false);
  rec.on_access(Mode::B, 109, /*rfu_region=*/false);
  rec.on_release(Mode::B, 110);
  rec.finish(110);
  ASSERT_EQ(rec.size(), 1u);
  const BusTransaction& t = rec.transactions()[0];
  EXPECT_EQ(t.mode, Mode::B);
  EXPECT_EQ(t.request, 100u);
  EXPECT_EQ(t.first_access, 104u);
  EXPECT_EQ(t.last_access, 109u);
  EXPECT_EQ(t.words, 3u);
  EXPECT_TRUE(t.touched_rfu);
  EXPECT_TRUE(t.touched_mem);
  // Span 6 cycles, 3 transfers -> 3 width-invariant stall cycles.
  EXPECT_EQ(t.stall_cycles(), 3u);
}

TEST(BusTraceRecorderTest, ReassertionDoesNotSplitTenure) {
  BusTraceRecorder rec;
  rec.on_request(Mode::A, 10);
  rec.on_request(Mode::A, 12);  // IRC re-request within the same tenure.
  rec.on_access(Mode::A, 13, false);
  rec.on_release(Mode::A, 14);
  rec.finish(20);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.transactions()[0].request, 10u);
}

TEST(BusTraceRecorderTest, ConcurrentModesTrackedIndependently) {
  BusTraceRecorder rec;
  rec.on_request(Mode::A, 10);
  rec.on_request(Mode::B, 11);
  rec.on_access(Mode::A, 12, false);
  rec.on_release(Mode::A, 13);
  rec.on_access(Mode::B, 14, false);
  rec.on_release(Mode::B, 15);
  rec.finish(20);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.transactions()[0].mode, Mode::A);
  EXPECT_EQ(rec.transactions()[1].mode, Mode::B);
}

TEST(BusTraceRecorderTest, FinishClosesOpenTenures) {
  BusTraceRecorder rec;
  rec.on_request(Mode::C, 5);
  rec.on_access(Mode::C, 6, false);
  rec.finish(9);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.transactions()[0].words, 1u);
}

// ---------------------------------------------------------------------------
// Replay-model unit tests on hand-built traces.
// ---------------------------------------------------------------------------

FlowTx tx(u32 flow, Cycle request, u32 words, Cycle stall = 0,
          u8 segments = FlowTx::kSegMem) {
  FlowTx t;
  t.flow = flow;
  t.request = request;
  t.words = words;
  t.stall = stall;
  t.segments = segments;
  return t;
}

TEST(ReplayTest, UncontendedFlowSeesNoWait) {
  const std::vector<FlowTx> trace = {tx(0, 0, 10), tx(0, 100, 10), tx(0, 200, 10)};
  const auto res = replay_interconnect(trace, {});
  EXPECT_EQ(res.total_wait(), 0u);
  EXPECT_EQ(res.flows[0].hold, 30u);
  EXPECT_EQ(res.makespan, 210u);
}

TEST(ReplayTest, SingleBusSerializesAndPriorityWins) {
  // Flows 0 and 1 request at the same cycle; flow 0 (higher priority) goes
  // first, flow 1 absorbs the wait.
  const std::vector<FlowTx> trace = {tx(1, 0, 20), tx(0, 0, 20)};
  const auto res = replay_interconnect(trace, {});
  EXPECT_EQ(res.flows[0].wait, 0u);
  EXPECT_EQ(res.flows[1].wait, 20u);
  EXPECT_EQ(res.makespan, 40u);
  EXPECT_DOUBLE_EQ(res.peak_utilization, 1.0);
}

TEST(ReplayTest, NonPreemptiveGrantHolds) {
  // Flow 1 starts on an idle bus; flow 0 arrives mid-transfer and must wait
  // for the release (the §3.6.3 time-multiplexing is non-preemptive).
  const std::vector<FlowTx> trace = {tx(1, 0, 50), tx(0, 10, 5)};
  const auto res = replay_interconnect(trace, {});
  EXPECT_EQ(res.flows[1].wait, 0u);
  EXPECT_EQ(res.flows[0].wait, 40u);  // Waits from 10 to 50.
}

TEST(ReplayTest, WideBusHalvesTransferButNotStall) {
  // 40 words + 10 stall cycles: 32-bit bus -> 50 cycles; 64-bit -> 30.
  const std::vector<FlowTx> trace = {tx(0, 0, 40, 10)};
  InterconnectSpec wide;
  wide.kind = InterconnectSpec::Kind::WideBus;
  wide.width_words = 2;
  EXPECT_EQ(replay_interconnect(trace, {}).flows[0].hold, 50u);
  EXPECT_EQ(replay_interconnect(trace, wide).flows[0].hold, 30u);
}

TEST(ReplayTest, MultiBusRemovesCrossFlowContention) {
  const std::vector<FlowTx> trace = {tx(0, 0, 100), tx(1, 0, 100), tx(2, 0, 100)};
  InterconnectSpec multi;
  multi.kind = InterconnectSpec::Kind::MultiBus;
  multi.num_buses = 3;
  const auto single = replay_interconnect(trace, {});
  const auto par = replay_interconnect(trace, multi);
  EXPECT_EQ(single.total_wait(), 100u + 200u);
  EXPECT_EQ(par.total_wait(), 0u);
  EXPECT_EQ(par.makespan, 100u);
  EXPECT_EQ(single.makespan, 300u);
}

TEST(ReplayTest, TwoBusesShareByFlowModulo) {
  // Flows 0 and 2 map to bus 0; flow 1 has bus 1 to itself.
  const std::vector<FlowTx> trace = {tx(0, 0, 100), tx(1, 0, 100), tx(2, 0, 100)};
  InterconnectSpec multi;
  multi.kind = InterconnectSpec::Kind::MultiBus;
  multi.num_buses = 2;
  const auto res = replay_interconnect(trace, multi);
  EXPECT_EQ(res.flows[0].wait, 0u);
  EXPECT_EQ(res.flows[1].wait, 0u);
  EXPECT_EQ(res.flows[2].wait, 100u);
  EXPECT_EQ(res.makespan, 200u);
}

TEST(ReplayTest, SegmentedBusOverlapsDisjointSegments) {
  // A memory-only and an RFU-only transaction overlap fully; a both-segment
  // transaction serializes against each.
  const std::vector<FlowTx> trace = {
      tx(0, 0, 50, 0, FlowTx::kSegMem),
      tx(1, 0, 50, 0, FlowTx::kSegRfu),
      tx(2, 0, 50, 0, FlowTx::kSegMem | FlowTx::kSegRfu),
  };
  InterconnectSpec seg;
  seg.kind = InterconnectSpec::Kind::SegmentedBus;
  const auto res = replay_interconnect(trace, seg);
  EXPECT_EQ(res.flows[0].wait, 0u);
  EXPECT_EQ(res.flows[1].wait, 0u);
  EXPECT_EQ(res.flows[2].wait, 50u);  // Needs both segments free.
  EXPECT_EQ(res.makespan, 100u);
}

TEST(ReplayTest, DemandTimesAreRespectedAfterCongestion) {
  // Flow 0's second transaction is requested long after the first completes;
  // replay must not pull it earlier even on a fast interconnect.
  const std::vector<FlowTx> trace = {tx(0, 0, 10), tx(0, 1000, 10)};
  InterconnectSpec wide;
  wide.kind = InterconnectSpec::Kind::WideBus;
  wide.width_words = 4;
  const auto res = replay_interconnect(trace, wide);
  EXPECT_EQ(res.makespan, 1003u);  // 1000 + ceil(10/4).
}

TEST(ReplayTest, SynthesizedFlowsReplicatePattern) {
  const std::vector<FlowTx> base = {tx(0, 0, 10), tx(0, 50, 10)};
  const auto synth = synthesize_n_flows(base, 4, 7);
  ASSERT_EQ(synth.size(), 8u);
  u32 per_flow[4] = {0, 0, 0, 0};
  for (const auto& t : synth) {
    ASSERT_LT(t.flow, 4u);
    ++per_flow[t.flow];
  }
  for (u32 f = 0; f < 4; ++f) EXPECT_EQ(per_flow[f], 2u);
  // Phase offsets applied per flow.
  const auto res = replay_interconnect(synth, {});
  EXPECT_GT(res.makespan, 50u);
}

TEST(ReplayTest, LabelsAndWireCosts) {
  InterconnectSpec s;
  EXPECT_EQ(s.label(), "single bus (32-bit)");
  EXPECT_DOUBLE_EQ(s.wire_cost(), 1.0);
  s.kind = InterconnectSpec::Kind::WideBus;
  s.width_words = 2;
  EXPECT_EQ(s.label(), "wide bus (64-bit)");
  EXPECT_DOUBLE_EQ(s.wire_cost(), 2.0);
  s.kind = InterconnectSpec::Kind::MultiBus;
  s.num_buses = 3;
  EXPECT_EQ(s.label(), "multi-bus x3");
  s.kind = InterconnectSpec::Kind::SegmentedBus;
  EXPECT_EQ(s.label(), "segmented bus (mem|rfu)");
  EXPECT_LT(s.wire_cost(), 2.0);
}

// ---------------------------------------------------------------------------
// Live-capture integration: record a real three-mode run, replay it.
// ---------------------------------------------------------------------------

TEST(InterconnectLiveTest, RecorderCapturesRealRunAndReplayIsConsistent) {
  Testbench tb;
  BusTraceRecorder rec;
  tb.device().bus().attach_recorder(&rec);

  Bytes payload(700);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<u8>(i);
  tb.send_async(Mode::A, payload);
  tb.send_async(Mode::B, payload);
  tb.send_async(Mode::C, payload);
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 1, 600'000'000));
  ASSERT_TRUE(tb.wait_tx_count(Mode::B, 1, 600'000'000));
  ASSERT_TRUE(tb.wait_tx_count(Mode::C, 1, 600'000'000));
  rec.finish(tb.device().bus().total_cycles());

  ASSERT_GT(rec.size(), 10u) << "expected many bus tenures in a 3-mode run";

  // Every mode contributed transactions, and recorded words match the bus's
  // own busy accounting (each busy cycle is exactly one word transfer).
  u64 words = 0;
  bool seen[kNumModes] = {};
  for (const auto& t : rec.transactions()) {
    words += t.words;
    seen[index(t.mode)] = true;
    EXPECT_GE(t.first_access, t.request);
    EXPECT_GE(t.last_access, t.first_access);
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  EXPECT_EQ(words, tb.device().bus().busy_cycles());

  // Replaying the capture on the single-bus model reproduces per-flow hold
  // exactly (hold = words + stall by construction) and a makespan consistent
  // with the live run.
  const auto flows = to_flow_trace(rec.transactions());
  const auto res = replay_interconnect(flows, {});
  for (std::size_t i = 0; i < kNumModes; ++i) {
    Cycle expect_hold = 0;
    for (const auto& t : rec.transactions()) {
      if (index(t.mode) == i) {
        expect_hold += std::max<Cycle>(1, std::max<u32>(1, t.words) + t.stall_cycles());
      }
    }
    EXPECT_EQ(res.flows[i].hold, expect_hold);
  }
  EXPECT_LE(res.makespan, tb.device().bus().total_cycles() * 11 / 10);

  // A 3-bus network removes all cross-mode contention on this workload.
  InterconnectSpec multi;
  multi.kind = InterconnectSpec::Kind::MultiBus;
  multi.num_buses = 3;
  const auto par = replay_interconnect(flows, multi);
  EXPECT_LE(par.total_wait(), res.total_wait());
}

}  // namespace
}  // namespace drmp::hw
