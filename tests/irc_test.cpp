// IRC tests: super-op-code delegation through the TH_R/TH_M statecharts,
// dynamic reconfiguration via the RC, cross-mode queueing (sleep/wake),
// table mutexes, the In-Interface doorbell path, and request queueing.
#include <gtest/gtest.h>

#include "crypto/crc.hpp"
#include "drmp/testbench.hpp"
#include "hw/ctrl_layout.hpp"
#include "irc/irc.hpp"
#include "rfu/rfu_ids.hpp"

namespace drmp {
namespace {

using hw::CtrlWord;
using hw::ctrl_status_addr;
using hw::Page;
using hw::page_base;
using irc::ServiceRequest;
using rfu::Op;

Bytes payload(std::size_t n, u8 seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 5 + seed);
  return b;
}

class IrcTest : public ::testing::Test {
 protected:
  IrcTest() : tb_() {}

  /// Submits a request directly to the IRC and waits for completion.
  bool run_request(Mode m, std::vector<irc::OpCall> ops, Cycle max_cycles = 8'000'000) {
    ServiceRequest req;
    req.ops = std::move(ops);
    req.from_cpu = false;  // Bypass the CPU: completion routed to nothing.
    bool done = false;
    u32 my_tag = 0;
    auto& eh_irc = tb_.device().irc();
    auto prev = eh_irc.on_complete;
    eh_irc.on_complete = [&](Mode cm, const ServiceRequest& r) {
      if (cm == m && r.tag == my_tag) {
        done = true;
      } else if (prev) {
        prev(cm, r);
      }
    };
    my_tag = eh_irc.submit(m, std::move(req));
    const bool ok = tb_.run_until([&] { return done; }, max_cycles);
    eh_irc.on_complete = prev;
    return ok;
  }

  Testbench tb_;
};

TEST_F(IrcTest, SingleOpRequestCompletes) {
  auto& mem = tb_.device().memory();
  const u32 status = ctrl_status_addr(Mode::A, CtrlWord::kSeqOut);
  ASSERT_TRUE(run_request(Mode::A, {{Op::SeqAssign, {0, status}}}));
  EXPECT_EQ(mem.cpu_read(status), 0u);
  ASSERT_TRUE(run_request(Mode::A, {{Op::SeqAssign, {0, status}}}));
  EXPECT_EQ(mem.cpu_read(status), 1u);
}

TEST_F(IrcTest, ReconfigurationHappensOnFirstUse) {
  auto& crypto = tb_.device().crypto_rfu();
  EXPECT_EQ(crypto.config_state(), 0u);  // Uninitialized.
  auto& mem = tb_.device().memory();
  mem.write_page_bytes(Mode::A, Page::Raw, payload(64));
  ASSERT_TRUE(run_request(Mode::A, {{Op::EncryptRc4,
                                     {page_base(Mode::A, Page::Raw),
                                      page_base(Mode::A, Page::Crypt), 1, 0}}}));
  EXPECT_EQ(crypto.config_state(), rfu::cfg::kCryptoRc4);
  EXPECT_EQ(crypto.reconfig_count(), 1u);
  // Same op again: no further reconfiguration.
  ASSERT_TRUE(run_request(Mode::A, {{Op::EncryptRc4,
                                     {page_base(Mode::A, Page::Raw),
                                      page_base(Mode::A, Page::Crypt), 1, 0}}}));
  EXPECT_EQ(crypto.reconfig_count(), 1u);
}

TEST_F(IrcTest, PacketByPacketReconfigurationAcrossModes) {
  // Mode A (WiFi, RC4) and mode B (WiMAX, DES) alternately use the Crypto
  // RFU: the IRC must reconfigure it packet-by-packet (§1.3).
  auto& mem = tb_.device().memory();
  auto& crypto = tb_.device().crypto_rfu();
  mem.write_page_bytes(Mode::A, Page::Raw, payload(64, 1));
  mem.write_page_bytes(Mode::B, Page::Raw, payload(64, 2));

  ASSERT_TRUE(run_request(Mode::A, {{Op::EncryptRc4,
                                     {page_base(Mode::A, Page::Raw),
                                      page_base(Mode::A, Page::Crypt), 1, 0}}}));
  const u64 rc1 = crypto.reconfig_count();
  EXPECT_EQ(crypto.config_state(), rfu::cfg::kCryptoRc4);

  ASSERT_TRUE(run_request(Mode::B, {{Op::EncryptDes,
                                     {page_base(Mode::B, Page::Raw),
                                      page_base(Mode::B, Page::Crypt), 1, 0}}}));
  EXPECT_EQ(crypto.config_state(), rfu::cfg::kCryptoDes);
  EXPECT_GT(crypto.reconfig_count(), rc1);

  ASSERT_TRUE(run_request(Mode::A, {{Op::DecryptRc4,
                                     {page_base(Mode::A, Page::Crypt),
                                      page_base(Mode::A, Page::Defrag), 1, 0}}}));
  EXPECT_EQ(crypto.config_state(), rfu::cfg::kCryptoRc4);
  // Round-trip correctness across the reconfigurations.
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Defrag), payload(64, 1));
}

TEST_F(IrcTest, MultiOpSuperOpCodeExecutesInOrder) {
  // [SeqAssign, Encrypt, Fragment]: op k+1 must observe op k's effects.
  auto& mem = tb_.device().memory();
  const Bytes msdu = payload(1000);
  mem.write_page_bytes(Mode::A, Page::Raw, msdu);
  const u32 status = ctrl_status_addr(Mode::A, CtrlWord::kSeqOut);
  ASSERT_TRUE(run_request(
      Mode::A,
      {
          {Op::SeqAssign, {0, status}},
          {Op::EncryptRc4,
           {page_base(Mode::A, Page::Raw), page_base(Mode::A, Page::Crypt), 5, 0}},
          {Op::FragmentWifi,
           {page_base(Mode::A, Page::Crypt), page_base(Mode::A, Page::Scratch), 256, 1}},
      }));
  // Fragment 1 of the encrypted payload = bytes [256, 512).
  const Bytes crypt = mem.read_page_bytes(Mode::A, Page::Crypt);
  const Bytes frag = mem.read_page_bytes(Mode::A, Page::Scratch);
  ASSERT_EQ(frag.size(), 256u);
  EXPECT_TRUE(std::equal(frag.begin(), frag.end(), crypt.begin() + 256));
}

TEST_F(IrcTest, CrossModeContentionQueuesAndWakes) {
  // Both modes request the (shared) Seq RFU back-to-back; the lower-priority
  // mode must queue in the rfu_table and be woken.
  auto& irc = tb_.device().irc();
  auto& mem = tb_.device().memory();
  const u32 sa = ctrl_status_addr(Mode::A, CtrlWord::kSeqOut);
  const u32 sb = ctrl_status_addr(Mode::B, CtrlWord::kSeqOut);
  const u32 sc = ctrl_status_addr(Mode::C, CtrlWord::kSeqOut);

  int completions = 0;
  irc.on_complete = [&](Mode, const ServiceRequest&) { ++completions; };
  ServiceRequest ra, rb, rc;
  ra.ops = {{Op::SeqAssign, {0u, sa}}};
  rb.ops = {{Op::SeqAssign, {1u, sb}}};
  rc.ops = {{Op::SeqAssign, {2u, sc}}};
  ra.from_cpu = rb.from_cpu = rc.from_cpu = false;
  irc.submit(Mode::A, std::move(ra));
  irc.submit(Mode::B, std::move(rb));
  irc.submit(Mode::C, std::move(rc));
  ASSERT_TRUE(tb_.run_until([&] { return completions == 3; }, 1'000'000));
  EXPECT_EQ(mem.cpu_read(sa), 0u);
  EXPECT_EQ(mem.cpu_read(sb), 0u);
  EXPECT_EQ(mem.cpu_read(sc), 0u);
}

TEST_F(IrcTest, ThreeModesConcurrentCryptoWithDifferentCiphers) {
  // The stress case: three modes each run their own cipher on the single
  // Crypto RFU concurrently — queueing + reconfiguration + data integrity.
  auto& mem = tb_.device().memory();
  auto& irc = tb_.device().irc();
  const Bytes pa = payload(512, 1), pb = payload(512, 2), pc = payload(512, 3);
  mem.write_page_bytes(Mode::A, Page::Raw, pa);
  mem.write_page_bytes(Mode::B, Page::Raw, pb);
  mem.write_page_bytes(Mode::C, Page::Raw, pc);

  int completions = 0;
  irc.on_complete = [&](Mode, const ServiceRequest&) { ++completions; };
  auto enc_dec = [&](Mode m, Op enc, Op dec) {
    ServiceRequest r;
    r.from_cpu = false;
    r.ops = {
        {enc, {page_base(m, Page::Raw), page_base(m, Page::Crypt), 9, 9}},
        {dec, {page_base(m, Page::Crypt), page_base(m, Page::Defrag), 9, 9}},
    };
    irc.submit(m, std::move(r));
  };
  enc_dec(Mode::A, Op::EncryptRc4, Op::DecryptRc4);
  enc_dec(Mode::B, Op::EncryptDes, Op::DecryptDes);
  enc_dec(Mode::C, Op::EncryptAes, Op::DecryptAes);
  ASSERT_TRUE(tb_.run_until([&] { return completions == 3; }, 20'000'000));
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Defrag), pa);
  EXPECT_EQ(mem.read_page_bytes(Mode::B, Page::Defrag), pb);
  EXPECT_EQ(mem.read_page_bytes(Mode::C, Page::Defrag), pc);
  // The crypto RFU must have ping-ponged between cipher states.
  EXPECT_GE(tb_.device().crypto_rfu().reconfig_count(), 3u);
}

TEST_F(IrcTest, DoorbellPathParsesSuperOpCode) {
  // Exercise the CPU-side path: serialize via write_super_op_code and let
  // the In-Interface parse it.
  auto& mem = tb_.device().memory();
  const u32 status = ctrl_status_addr(Mode::B, CtrlWord::kSeqOut);
  ServiceRequest req;
  req.ops = {{Op::SeqAssign, {1, status}}};
  req.tag = 99;
  req.from_cpu = true;

  u32 done_tag = 0;
  tb_.device().irc().on_complete = [&](Mode, const ServiceRequest& r) {
    done_tag = r.tag;
  };
  irc::write_super_op_code(mem, Mode::B, req);
  ASSERT_TRUE(tb_.run_until([&] { return done_tag == 99; }, 1'000'000));
  EXPECT_EQ(mem.cpu_read(status), 0u);
}

TEST_F(IrcTest, RequestsQueuePerMode) {
  // Two requests for the same mode: the second must wait, then run.
  auto& irc = tb_.device().irc();
  const u32 status = ctrl_status_addr(Mode::A, CtrlWord::kSeqOut);
  int completions = 0;
  irc.on_complete = [&](Mode, const ServiceRequest&) { ++completions; };
  for (int i = 0; i < 2; ++i) {
    ServiceRequest r;
    r.from_cpu = false;
    r.ops = {{Op::SeqAssign, {0u, status}}};
    irc.submit(Mode::A, std::move(r));
  }
  EXPECT_EQ(irc.queued_requests(Mode::A), 2u);
  ASSERT_TRUE(tb_.run_until([&] { return completions == 2; }, 1'000'000));
  EXPECT_EQ(tb_.device().memory().cpu_read(status), 1u);  // Ran twice.
}

TEST_F(IrcTest, RcUpdatesRfuTableState) {
  auto& mem = tb_.device().memory();
  mem.write_page_bytes(Mode::C, Page::Raw, payload(32));
  ASSERT_TRUE(run_request(Mode::C, {{Op::EncryptAes,
                                     {page_base(Mode::C, Page::Raw),
                                      page_base(Mode::C, Page::Crypt), 1, 1}}}));
  const auto& entry = tb_.device().irc().rfu_table().entry(rfu::kCryptoRfu);
  EXPECT_EQ(entry.c_state, rfu::cfg::kCryptoAes);
  EXPECT_FALSE(entry.in_use);
  EXPECT_GE(tb_.device().irc().rc().reconfigs_performed(), 1u);
}

TEST_F(IrcTest, TaskHandlerStateOccupancyRecorded) {
  auto& mem = tb_.device().memory();
  mem.write_page_bytes(Mode::A, Page::Raw, payload(256));
  ASSERT_TRUE(run_request(Mode::A, {{Op::EncryptRc4,
                                     {page_base(Mode::A, Page::Raw),
                                      page_base(Mode::A, Page::Crypt), 1, 0}}}));
  const auto& occ = tb_.device().stats().all_occupancy();
  ASSERT_TRUE(occ.count("irc.thm.A"));
  ASSERT_TRUE(occ.count("irc.thr.A"));
  // The TH_M must have spent cycles outside IDLE.
  const auto& thm = occ.at("irc.thm.A");
  Cycle non_idle = thm.total() - thm.cycles_in(static_cast<int>(irc::ThMState::Idle));
  EXPECT_GT(non_idle, 0u);
}

}  // namespace
}  // namespace drmp
