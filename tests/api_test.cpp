// API-layer tests (thesis §4.1.2): command-code expansion against the
// op_code_table contract, super-op-code serialization, and the ProtocolState
// object of Fig. 4.2.
#include <gtest/gtest.h>

#include "drmp/api.hpp"
#include "hw/packet_memory.hpp"
#include "irc/irc.hpp"
#include "irc/tables.hpp"

namespace drmp::api {
namespace {

TEST(ProtocolStateTest, ModeObjectsInitialized) {
  hw::PacketMemory mem;
  cDRMP drmp(&mem);
  EXPECT_EQ(drmp.PSA.my_id, 1);
  EXPECT_EQ(drmp.PSB.my_id, 2);
  EXPECT_EQ(drmp.PSC.my_id, 3);
  EXPECT_EQ(drmp.ps(Mode::B).my_id, 2);
  // Fixed base pointers per Fig. 4.2.
  EXPECT_EQ(drmp.PSA.base_pointer, hw::page_base(Mode::A, hw::Page::Ctrl));
  EXPECT_EQ(drmp.PSA.PGSIZE, hw::kPageWords * 4);
}

TEST(CommandExpansion, EveryExpandedOpExistsInOpCodeTable) {
  // The device-driver layer may only emit op-codes the IRC can decode, with
  // exactly the argument count the op_code_table declares.
  const irc::OpCodeTable oct;
  const std::vector<Word> a4 = {0, 0, 0, 0};
  for (int c = 0; c <= static_cast<int>(Command::kWimaxArqFeedback); ++c) {
    const auto cmd = static_cast<Command>(c);
    for (Mode m : {Mode::A, Mode::B, Mode::C}) {
      const auto ops = cDRMP::expand(m, cmd, a4);
      ASSERT_FALSE(ops.empty()) << "command " << c;
      for (const auto& call : ops) {
        ASSERT_TRUE(oct.contains(call.op))
            << "command " << c << " emits unknown op " << static_cast<int>(call.op);
        EXPECT_EQ(call.args.size(), oct.lookup(call.op).nargs)
            << "command " << c << " op " << static_cast<int>(call.op);
      }
    }
  }
}

TEST(CommandExpansion, WifiTxFragmentChainsTheFivePhases) {
  const auto ops = cDRMP::expand(Mode::A, Command::kWifiTxFragment, {0, 1024, 0});
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops[0].op, rfu::Op::FragmentWifi);
  EXPECT_EQ(ops[1].op, rfu::Op::AssembleWifi);
  EXPECT_EQ(ops[2].op, rfu::Op::HcsAppend16);
  EXPECT_EQ(ops[3].op, rfu::Op::CsmaAccessWifi);
  EXPECT_EQ(ops[4].op, rfu::Op::TxFrameWifi);
}

TEST(CommandExpansion, PageAddressesAreModeLocal) {
  const auto a = cDRMP::expand(Mode::A, Command::kWifiEncrypt, {7});
  const auto c = cDRMP::expand(Mode::C, Command::kWifiEncrypt, {7});
  // Source page argument differs by the per-mode page stride.
  EXPECT_NE(a[0].args[0], c[0].args[0]);
  EXPECT_EQ(a[0].args[0], hw::page_base(Mode::A, hw::Page::Raw));
  EXPECT_EQ(c[0].args[0], hw::page_base(Mode::C, hw::Page::Raw));
}

TEST(RequestService, SerializesAndRingsDoorbell) {
  hw::PacketMemory mem;
  cDRMP drmp(&mem);
  u32 cost = 0;
  const u32 tag = drmp.Request_RHCP_Service(Mode::B, Command::kWifiPrepareTx, {}, &cost);
  EXPECT_GT(tag, 0u);
  EXPECT_GT(cost, 0u);
  const u32 base = hw::iface_base(Mode::B);
  EXPECT_GT(mem.cpu_read(base + hw::kDoorbellOffset), 0u);  // Doorbell rung.
  // Header word: 1 op, tag in the upper bits.
  const Word head = mem.cpu_read(base + hw::kSopBufOffset);
  EXPECT_EQ(head & 0xFF, 1u);
  EXPECT_EQ(head >> 8, tag);
}

TEST(RequestService, CostGrowsWithArgumentVolume) {
  hw::PacketMemory mem;
  cDRMP drmp(&mem);
  u32 small = 0, large = 0;
  drmp.Request_RHCP_Service(Mode::A, Command::kWifiPrepareTx, {}, &small);
  drmp.Request_RHCP_Service(Mode::A, Command::kWifiTxFragment, {0, 1024, 0}, &large);
  EXPECT_GT(large, small);
}

TEST(RequestService, TagsAreMonotonic) {
  hw::PacketMemory mem;
  cDRMP drmp(&mem);
  const u32 t1 = drmp.Request_RHCP_Service(Mode::A, Command::kWifiPrepareTx, {});
  const u32 t2 = drmp.Request_RHCP_Service(Mode::A, Command::kWifiPrepareTx, {});
  EXPECT_GT(t2, t1);
}

}  // namespace
}  // namespace drmp::api
