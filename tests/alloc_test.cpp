// Steady-state allocation test: the tick path of a saturated contended
// cell must perform ZERO heap allocations once the arenas are warm.
//
// Frame churn (TxBuffer staging, queued TxFrameEntry records, the medium's
// in-flight copies and delivery fan-out) recycles through common/arena.hpp's
// ByteArena free-lists and RingQueues, and the scheduler's timing-wheel
// buckets retain their capacity across reuse — so after a warm-up that
// covers the traffic mix and the wheel's slot space, a measured window of
// pure simulation must not touch the allocator at all. The probe is a
// counting global operator new: this test runs as its own binary (one per
// tests/*_test.cpp), so the override cannot leak into other suites. The
// window is sampled from *inside* one batched run by an observer-stage
// component, so run-entry bookkeeping (re-partitioning the active set,
// re-basing the wake wheel) stays out of the measurement: the claim is
// about the per-cycle path, not about run_cycles_batched() setup.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/cell.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/scheduler.hpp"

namespace {
std::atomic<drmp::u64> g_news{0};
}  // namespace

// The nothrow forms must be overridden too: libstdc++'s temporary buffers
// (std::stable_sort) allocate through operator new(n, nothrow), and under
// ASan a mix of intercepted-new allocation with our free()-backed delete
// trips alloc-dealloc-mismatch. GCC flags free() inside a replaced
// operator delete as a new/free mismatch; with every replaced new
// malloc-backed above, the pairing is exact.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace drmp {
namespace {

/// Snapshots the allocation counter at two cycles of the run it rides in.
/// Never quiescent, so it observes every cycle of the window boundary.
class AllocWindowProbe : public sim::Clockable {
 public:
  AllocWindowProbe(const sim::Scheduler& s, Cycle from, Cycle to)
      : sched_(s), from_(from), to_(to) {}
  void tick() override {
    const Cycle c = sched_.now();
    if (c == from_) start_ = g_news.load(std::memory_order_relaxed);
    if (c == to_) stop_ = g_news.load(std::memory_order_relaxed);
  }
  u64 allocations_in_window() const { return stop_ - start_; }

 private:
  const sim::Scheduler& sched_;
  Cycle from_, to_;
  u64 start_ = 0, stop_ = 0;
};

TEST(SteadyStateAllocation, SaturatedCellTicksAllocationFree) {
  // Eight stations with deep per-station backlogs: the cell stays saturated
  // far past the measured window (asserted below via drained()).
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::contended_wifi_cell(8, 1, /*msdus_per_station=*/40);
  net::Cell cell(spec.cells[0], spec.channel, spec.seed, /*cell_index=*/0,
                 /*first_station_id=*/1);
  sim::Scheduler& sched = cell.scheduler();

  // Warm-up before the window: several traffic intervals plus the timing
  // wheel's slot rotation at the levels this workload's sleep bounds land
  // in, so every bucket, ring and byte pool the steady state touches has
  // grown to its high-watermark.
  constexpr Cycle kWarmup = 6'000'000;
  constexpr Cycle kWindow = 10'000;
  AllocWindowProbe probe(sched, kWarmup, kWarmup + kWindow);
  sched.add(probe, "alloc-probe", sim::Scheduler::kStageObserver);

  sched.run_cycles_batched(kWarmup + kWindow + 1);
  ASSERT_FALSE(cell.drained()) << "measured window was not saturated";
  EXPECT_EQ(probe.allocations_in_window(), 0u)
      << "tick path allocated " << probe.allocations_in_window()
      << " times in a warm " << kWindow << "-cycle window";
}

}  // namespace
}  // namespace drmp
