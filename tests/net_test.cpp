// net::ContendedMedium unit tests: overlap semantics (collision marking,
// drop vs garbled delivery), carrier-sense detection latency (the collision
// window), the capture effect, per-source airtime/collision accounting, the
// point-to-point backend's defined hard error on overlap (which used to be
// a Debug-only assert), and the hidden-node machinery: per-station
// audibility matrices, per-listener CCA/collision/delivery, and the NAV +
// RTS/CTS rescue of the classic hidden-pair topology.
#include <gtest/gtest.h>

#include <stdexcept>

#include "net/audibility.hpp"
#include "net/contended_medium.hpp"
#include "scenario/scenario_engine.hpp"
#include "sim/scheduler.hpp"

namespace drmp::net {
namespace {

struct Sink : phy::MediumClient {
  std::vector<Bytes> frames;
  std::vector<int> sources;
  void on_frame(const Bytes& f, Cycle, int source) override {
    frames.push_back(f);
    sources.push_back(source);
  }
};

Bytes pattern_frame(std::size_t n, u8 seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(seed + i * 3);
  return b;
}

class ContendedMediumTest : public ::testing::Test {
 protected:
  ContendedMediumTest() : tb(200e6), sched(200e6) {}

  ContendedMedium& make(ContendedMedium::Params p = {}) {
    medium = std::make_unique<ContendedMedium>(mac::Protocol::WiFi, tb, p);
    medium->attach(sink);
    sched.add(*medium, "medium", sim::Scheduler::kStageMedium);
    return *medium;
  }

  sim::TimeBase tb;
  sim::Scheduler sched;
  std::unique_ptr<ContendedMedium> medium;
  Sink sink;
};

TEST_F(ContendedMediumTest, CleanTransmissionDeliversIntactWithAirtime) {
  ContendedMedium& m = make();
  const Bytes f = pattern_frame(100, 7);
  const Cycle end = m.begin_tx(f, 1);
  sched.run_cycles(end + 2);
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0], f);
  EXPECT_EQ(sink.sources[0], 1);
  EXPECT_EQ(m.collided_frames(), 0u);
  const auto ss = m.source(1);
  EXPECT_EQ(ss.frames, 1u);
  EXPECT_EQ(ss.collisions, 0u);
  EXPECT_EQ(ss.airtime, m.frame_air_cycles(f.size()));
}

TEST_F(ContendedMediumTest, CcaDetectsCarrierOnlyAfterLatency) {
  ContendedMedium& m = make();
  const Cycle latency = m.cca_latency_cycles();
  ASSERT_GT(latency, 0u);  // WiFi default: one 20 us slot.
  m.begin_tx(pattern_frame(400, 1), 1);
  EXPECT_TRUE(m.busy());        // Ground truth: instantly on the air.
  EXPECT_FALSE(m.cca_busy());   // ... but not yet audible.
  sched.run_cycles(latency - 1);
  EXPECT_FALSE(m.cca_busy());
  sched.run_cycles(1);
  EXPECT_TRUE(m.cca_busy());  // Audible exactly at the latency boundary.
  EXPECT_EQ(m.cca_idle_for(), 0u);
}

TEST_F(ContendedMediumTest, OverlapCollidesAllPartiesAndDropsFrames) {
  ContendedMedium& m = make();
  m.begin_tx(pattern_frame(300, 2), 1);
  sched.run_cycles(100);  // Inside the collision window.
  const Cycle end2 = m.begin_tx(pattern_frame(300, 9), 2);
  sched.run_cycles(end2);
  EXPECT_TRUE(sink.frames.empty());  // Receivers saw only noise.
  EXPECT_EQ(m.collided_frames(), 2u);
  EXPECT_EQ(m.dropped_frames(), 2u);
  EXPECT_EQ(m.source(1).collisions, 1u);
  EXPECT_EQ(m.source(2).collisions, 1u);
  // Airtime is still accounted: the channel was physically occupied.
  EXPECT_GT(m.source(1).airtime, 0u);
  EXPECT_GT(m.source(2).airtime, 0u);
}

TEST_F(ContendedMediumTest, GarbledModeDeliversDamagedFrames) {
  ContendedMedium::Params p;
  p.deliver_garbled = true;
  ContendedMedium& m = make(p);
  const Bytes a = pattern_frame(200, 3);
  const Bytes b = pattern_frame(200, 11);
  m.begin_tx(a, 1);
  sched.run_cycles(50);
  const Cycle end2 = m.begin_tx(b, 2);
  sched.run_cycles(end2);
  ASSERT_EQ(sink.frames.size(), 2u);  // Delivered, but bit-damaged.
  EXPECT_NE(sink.frames[0], a);
  EXPECT_NE(sink.frames[1], b);
  EXPECT_EQ(m.garbled_frames(), 2u);
  EXPECT_EQ(m.dropped_frames(), 0u);
}

TEST_F(ContendedMediumTest, CaptureProtectsEstablishedFrame) {
  ContendedMedium::Params p;
  p.capture_preamble_us = 5.0;  // 1000 cycles at 200 MHz.
  ContendedMedium& m = make(p);
  const Bytes a = pattern_frame(400, 4);
  m.begin_tx(a, 1);
  sched.run_cycles(2000);  // Receivers locked onto a's preamble long ago.
  const Cycle end2 = m.begin_tx(pattern_frame(400, 12), 2);
  sched.run_cycles(end2);
  ASSERT_EQ(sink.frames.size(), 1u);  // a survived; the newcomer is lost.
  EXPECT_EQ(sink.frames[0], a);
  EXPECT_EQ(m.capture_wins(), 1u);
  EXPECT_EQ(m.collided_frames(), 1u);  // Only the late interferer.
  EXPECT_EQ(m.source(1).collisions, 0u);
  EXPECT_EQ(m.source(2).collisions, 1u);
}

TEST_F(ContendedMediumTest, LateStartWithinCaptureWindowKillsBoth) {
  ContendedMedium::Params p;
  p.capture_preamble_us = 5.0;
  ContendedMedium& m = make(p);
  m.begin_tx(pattern_frame(400, 4), 1);
  sched.run_cycles(500);  // Still inside a's preamble: no lock yet.
  const Cycle end2 = m.begin_tx(pattern_frame(400, 12), 2);
  sched.run_cycles(end2);
  EXPECT_TRUE(sink.frames.empty());
  EXPECT_EQ(m.collided_frames(), 2u);
  EXPECT_EQ(m.capture_wins(), 0u);
}

TEST_F(ContendedMediumTest, TamperStillAppliesToSurvivingFrames) {
  ContendedMedium& m = make();
  m.tamper = [](Bytes& f) {
    f[0] ^= 0xFF;
    return true;
  };
  const Bytes f = pattern_frame(120, 5);
  const Cycle end = m.begin_tx(f, 1);
  sched.run_cycles(end + 1);
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_NE(sink.frames[0], f);
  EXPECT_EQ(m.tampered_frames(), 1u);
}

TEST(PointToPointMedium, OverlapIsAHardErrorInEveryBuildType) {
  // Satellite of the contention work: the old assert(!busy()) compiled out
  // under NDEBUG and let Release builds overwrite an in-flight frame. The
  // point-to-point backend now throws in all build types.
  sim::TimeBase tb(200e6);
  phy::Medium m(mac::Protocol::WiFi, tb);
  m.begin_tx(Bytes(100, 0xAB), 1);
  EXPECT_TRUE(m.busy());
  EXPECT_THROW(m.begin_tx(Bytes(50, 0xCD), 2), std::logic_error);
}

TEST(PointToPointMedium, CcaViewMatchesGroundTruth) {
  sim::TimeBase tb(200e6);
  sim::Scheduler sched(200e6);
  phy::Medium m(mac::Protocol::WiFi, tb);
  sched.add(m, "medium", sim::Scheduler::kStageMedium);
  EXPECT_FALSE(m.cca_busy());
  const Cycle end = m.begin_tx(Bytes(64, 0x11), 1);
  EXPECT_TRUE(m.cca_busy());  // No detection latency on point-to-point.
  sched.run_cycles(end + 3);
  EXPECT_FALSE(m.cca_busy());
  EXPECT_EQ(m.cca_idle_for(), m.idle_for());
}

TEST(ContendedMedium, SkipIdleReproducesPerTickAccounting) {
  // Two staggered transmissions through run_cycles vs run_cycles_batched
  // (which skips the medium across the globally-quiescent mid-frame
  // stretches): occupancy, per-source airtime and the CCA latch must come
  // out bit-identical.
  sim::TimeBase tb(200e6);
  auto run = [&](bool batched) {
    sim::Scheduler sched(200e6);
    ContendedMedium m(mac::Protocol::WiFi, tb);
    sched.add(m, "medium", sim::Scheduler::kStageMedium);
    const Cycle end1 = m.begin_tx(Bytes(400, 0x22), 1);
    if (batched) {
      sched.run_cycles_batched(end1 / 2);
    } else {
      sched.run_cycles(end1 / 2);
    }
    m.begin_tx(Bytes(200, 0x33), 2);  // Overlap: both collide.
    const Cycle tail = end1 + m.cca_latency_cycles() + 64;
    if (batched) {
      sched.run_cycles_batched(tail);
    } else {
      sched.run_cycles(tail);
    }
    sim::Digest d;
    d.mix(m.busy_cycles())
        .mix(m.collided_frames())
        .mix(m.dropped_frames())
        .mix(m.source(1).airtime)
        .mix(m.source(2).airtime)
        .mix(m.cca_busy() ? 1 : 0)
        .mix(m.cca_idle_for())
        .mix(m.now());
    return d.value();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---- Audibility matrices (hidden nodes) ---------------------------------

TEST(AudibilityMatrix, TrivialDefaultHearsEverything) {
  AudibilityMatrix m;
  EXPECT_TRUE(m.trivial());
  EXPECT_TRUE(m.hears(0, 5));
  EXPECT_TRUE(m.hears(63, 63));
}

TEST(AudibilityMatrix, FactoriesShapeTheFootprints) {
  const AudibilityMatrix full = AudibilityMatrix::full(4);
  EXPECT_FALSE(full.trivial());
  EXPECT_TRUE(full.all_ones());

  const AudibilityMatrix hidden = AudibilityMatrix::hidden_pair(4, 0, 1);
  EXPECT_FALSE(hidden.hears(0, 1));
  EXPECT_FALSE(hidden.hears(1, 0));
  EXPECT_TRUE(hidden.hears(0, 2));
  EXPECT_TRUE(hidden.hears(2, 1));
  EXPECT_TRUE(hidden.hears(0, 0)) << "the diagonal must stay 1";

  const AudibilityMatrix chain = AudibilityMatrix::chain(4);
  EXPECT_TRUE(chain.hears(1, 2));
  EXPECT_TRUE(chain.hears(2, 2));
  EXPECT_FALSE(chain.hears(0, 2));
  EXPECT_FALSE(chain.hears(3, 1));
  // Out-of-range participants (the AP) are omnidirectional.
  EXPECT_TRUE(chain.hears(0, 99));
  EXPECT_TRUE(chain.hears(99, 3));
}

TEST_F(ContendedMediumTest, HiddenStationCcaStaysSilent) {
  ContendedMedium::Params p;
  p.audibility = AudibilityMatrix::chain(3);  // 1-2, 2-3 adjacent; 1-3 deaf.
  ContendedMedium& m = make(p);
  m.map_station(1, 0);
  m.map_station(2, 1);
  m.map_station(3, 2);
  m.begin_tx(pattern_frame(400, 1), 1);
  sched.run_cycles(m.cca_latency_cycles() + 4);
  EXPECT_TRUE(m.cca_busy()) << "global (omni) view hears everything";
  EXPECT_TRUE(m.cca_busy(2)) << "adjacent station hears it";
  EXPECT_FALSE(m.cca_busy(3)) << "hidden station's CCA stays silent";
  EXPECT_GT(m.cca_idle_for(3), 0u);
  EXPECT_EQ(m.cca_idle_for(2), 0u);
  EXPECT_GT(m.cca_clear_at(2), m.cca_clear_at(3));
}

TEST_F(ContendedMediumTest, CollisionIsAPropertyOfTheReceiver) {
  // Chain 1-2-3: stations 1 and 3 are mutually hidden and transmit over
  // each other. The middle listener (and the omni sink) sit in both
  // footprints and lose both frames; a listener that only hears station 1
  // receives its frame clean.
  ContendedMedium::Params p;
  p.audibility = AudibilityMatrix::chain(3);
  ContendedMedium& m = make(p);  // Attaches `sink` unmapped -> omni.
  m.map_station(1, 0);
  m.map_station(2, 1);
  m.map_station(3, 2);
  Sink mid, edge;
  m.attach(mid, 2);   // Matrix row 1: hears both transmitters.
  m.attach(edge, 1);  // Matrix row 0: hears station 1 (and 2) only.

  const Bytes a = pattern_frame(300, 2);
  m.begin_tx(a, 1);
  sched.run_cycles(100);  // Inside the collision window.
  const Cycle end2 = m.begin_tx(pattern_frame(300, 9), 3);
  sched.run_cycles(end2 + m.cca_latency_cycles() + 2);

  EXPECT_TRUE(sink.frames.empty()) << "omni receiver saw only noise";
  EXPECT_TRUE(mid.frames.empty()) << "both footprints -> collision";
  ASSERT_EQ(edge.frames.size(), 1u) << "single footprint -> clean delivery";
  EXPECT_EQ(edge.frames[0], a);
  EXPECT_EQ(m.collided_frames(), 2u);
  EXPECT_EQ(m.source(1).collisions, 1u);
  EXPECT_EQ(m.source(3).collisions, 1u);
  EXPECT_EQ(m.collided_airtime(),
            2 * m.frame_air_cycles(300));  // Both frames' air was wasted.
}

TEST_F(ContendedMediumTest, HiddenTransmitterDoesNotJamDisjointFootprint) {
  // Stations 1 and 3 hidden; NO omni receiver in both footprints either:
  // delivery filtering still applies per listener.
  ContendedMedium::Params p;
  p.audibility = AudibilityMatrix::chain(3);
  p.deliver_garbled = true;
  ContendedMedium& m = make(p);
  m.map_station(1, 0);
  m.map_station(2, 1);
  m.map_station(3, 2);
  Sink edge;
  m.attach(edge, 1);  // Hears station 1 only.
  m.begin_tx(pattern_frame(200, 3), 1);
  sched.run_cycles(50);
  const Cycle end2 = m.begin_tx(pattern_frame(200, 11), 3);
  sched.run_cycles(end2 + m.cca_latency_cycles() + 2);
  // The omni `sink` (both footprints) got garbled copies; `edge` got
  // station 1's frame intact.
  ASSERT_EQ(edge.frames.size(), 1u);
  EXPECT_EQ(edge.frames[0], pattern_frame(200, 3));
  EXPECT_EQ(sink.frames.size(), 2u);
  EXPECT_NE(sink.frames[0], pattern_frame(200, 3));
}

// ---- 64-station contended cell (ROADMAP scale open item) ----------------

// Skewed offered load on one shared WiFi medium: a quarter of the stations
// push double bursts of large MSDUs, a quarter trickle small ones, the rest
// run the canonical shape.
scenario::ScenarioSpec skewed_64_station_cell(u64 seed) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::contended_wifi_cell(64, seed,
                                                  /*msdus_per_station=*/1);
  auto& stations = spec.cells[0].stations;
  for (std::size_t i = 0; i < stations.size(); ++i) {
    auto& t = stations[i].traffic[0];
    if (i % 4 == 0) {
      t.msdu_min_bytes = 700;
      t.msdu_max_bytes = 1100;
      t.burst_len = 2;
    } else if (i % 4 == 1) {
      t.msdu_min_bytes = 96;
      t.msdu_max_bytes = 160;
      t.burst_len = 1;
    }
  }
  spec.max_cycles = 900'000'000;
  return spec;
}

TEST(ContendedCell, SixtyFourStationsDrainWithContention) {
  const scenario::FleetStats serial =
      scenario::ScenarioEngine(skewed_64_station_cell(9)).run();
  EXPECT_TRUE(serial.all_drained);
  ASSERT_EQ(serial.devices.size(), 64u);
  ASSERT_EQ(serial.cells.size(), 1u);
  EXPECT_EQ(serial.cells[0].stations, 64u);
  // A 64-deep cell must actually contend...
  EXPECT_GT(serial.total_collisions(), 0u);
  EXPECT_GT(serial.total_defers(), 64u);
  // ...and still complete every station's workload through retry/CW growth.
  for (const scenario::DeviceStats& ds : serial.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
  }
  // One scheduler ticking 64 full SoCs is exactly where the ROADMAP said
  // per-cycle ticking becomes intractable; the quiescence scheduler must be
  // doing the heavy lifting here. Idle-skip and worker-pool digest
  // equivalence are pinned at smaller scale (scenario_test), where the
  // every-tick reference run is affordable; a single-cell fleet is one
  // MultiScheduler lane, so a worker-pool rerun would not add coverage.
  EXPECT_GT(serial.skip_ratio(), 10.0);
}

// ---- Hidden-node cells: NAV + RTS/CTS (ROADMAP PR-2 follow-ups) ---------

TEST(HiddenNodeCell, ExplicitAllOnesMatrixReproducesTrivialDigests) {
  // The acceptance pin for the per-listener machinery: an explicit all-ones
  // matrix routes every query through jam masks and footprint filters and
  // must reproduce the historic single-viewpoint digests bit-for-bit.
  scenario::ScenarioSpec trivial = scenario::ScenarioSpec::contended_wifi_cell(4, 1, 3);
  scenario::ScenarioSpec all_ones = trivial;
  all_ones.cells[0].contention.audibility = AudibilityMatrix::full(4);
  const scenario::FleetStats a = scenario::ScenarioEngine(trivial).run();
  const scenario::FleetStats b = scenario::ScenarioEngine(all_ones).run();
  EXPECT_EQ(a.full_digest(), b.full_digest());
  EXPECT_EQ(a.report(), b.report());
  EXPECT_GT(a.total_collisions(), 0u);  // Same physics, same contention.
}

scenario::FleetStats run_hidden_pair(u32 rts_threshold, unsigned workers,
                                     bool idle_skip) {
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::contended_wifi_topology(
      2, scenario::ScenarioSpec::Reach::kHiddenPair, /*seed=*/7,
      /*msdus_per_station=*/6, rts_threshold);
  spec.worker_threads = workers;
  spec.idle_skip = idle_skip;
  return scenario::ScenarioEngine(std::move(spec)).run();
}

TEST(HiddenNodeCell, RtsCtsRescuesTheHiddenPair) {
  // The textbook result. Without the handshake two mutually-deaf stations
  // carrier-sense nothing and pile their aligned bursts onto each other at
  // the AP; with every MSDU RTS-protected, only the short RTS frames risk
  // colliding and the AP's CTS arms the other station's NAV across the
  // protected exchange.
  const scenario::FleetStats off = run_hidden_pair(/*rts_threshold=*/0, 1, true);
  const scenario::FleetStats on = run_hidden_pair(/*rts_threshold=*/1, 1, true);
  ASSERT_TRUE(off.all_drained);
  ASSERT_TRUE(on.all_drained);
  EXPECT_GT(off.total_collisions(), 0u) << "hidden pair must collide without RTS";
  EXPECT_GE(off.total_collisions(), 5 * on.total_collisions())
      << "RTS/CTS must cut collisions at least 5x (off=" << off.total_collisions()
      << " on=" << on.total_collisions() << ")";
  // The rescue mechanism itself: overheard CTS durations armed the NAV and
  // the access RFU deferred on it with silent CCA.
  EXPECT_GT(on.total_nav_defers(), 0u);
  // Every MSDU still completes (retry/CW machinery recovers the losses).
  for (const scenario::DeviceStats& ds : off.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
  }
  for (const scenario::DeviceStats& ds : on.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
  }
  // With the handshake on, the protected data frames get through: higher
  // success rate than the unprotected pile-up.
  u64 ok_on = 0, ok_off = 0;
  for (const auto& ds : on.devices) ok_on += ds.tx_ok[0];
  for (const auto& ds : off.devices) ok_off += ds.tx_ok[0];
  EXPECT_GE(ok_on, ok_off);
}

TEST(HiddenNodeCell, DigestsInvariantAcrossWorkersAndIdleSkip) {
  // The NAV wake edges and per-listener sleep bounds ride the PR-3
  // quiescence contract: worker pools and idle-skip must not perturb a
  // hidden-node cell's timeline.
  const scenario::FleetStats serial = run_hidden_pair(1, 1, true);
  const scenario::FleetStats pool = run_hidden_pair(1, 0, true);
  const scenario::FleetStats ticked = run_hidden_pair(1, 1, false);
  EXPECT_EQ(serial.full_digest(), pool.full_digest());
  EXPECT_EQ(serial.full_digest(), ticked.full_digest());
  EXPECT_EQ(serial.report(), ticked.report());
}

// ---- Asymmetric audibility (ROADMAP: "A hears B, B deaf to A") ----------

TEST(AudibilityMatrix, AsymmetricPairIsOneWay) {
  const AudibilityMatrix m = AudibilityMatrix::asymmetric_pair(3, 0, 1);
  EXPECT_FALSE(m.hears(1, 0)) << "the deaf side cannot hear the heard side";
  EXPECT_TRUE(m.hears(0, 1)) << "the heard side still hears the deaf side";
  EXPECT_TRUE(m.hears(1, 1)) << "the diagonal must stay 1";
  EXPECT_TRUE(m.hears(2, 0));
  EXPECT_TRUE(m.hears(2, 1));
}

scenario::FleetStats run_asymmetric(u32 rts_threshold, bool eifs, bool deliver_garbled) {
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::contended_wifi_topology(
      2, scenario::ScenarioSpec::Reach::kAsymmetric, /*seed=*/7,
      /*msdus_per_station=*/6, rts_threshold);
  spec.cells[0].contention.deliver_garbled = deliver_garbled;
  for (auto& d : spec.cells[0].stations) {
    d.cfg.modes[0].ident.eifs_enabled = eifs;
  }
  return scenario::ScenarioEngine(std::move(spec)).run();
}

TEST(AsymmetricCell, DeafSideCollidesAndRtsCtsRecovers) {
  // Station 1 is deaf to station 0: its CCA runs straight through 0's
  // frames and it transmits over them — one-way hidden-node damage the
  // symmetric hidden pair cannot express. The AP's CTS is omnidirectional,
  // so the RTS/CTS handshake arms the deaf side's NAV and recovers it.
  const scenario::FleetStats off = run_asymmetric(/*rts_threshold=*/0, false, false);
  const scenario::FleetStats on = run_asymmetric(/*rts_threshold=*/1, false, false);
  ASSERT_TRUE(off.all_drained);
  ASSERT_TRUE(on.all_drained);
  EXPECT_GT(off.total_collisions(), 0u) << "the one-way gap must collide";
  EXPECT_GT(off.total_collisions(), 2 * on.total_collisions())
      << "RTS/CTS must recover the asymmetric link (off=" << off.total_collisions()
      << " on=" << on.total_collisions() << ")";
  EXPECT_GT(on.total_nav_defers(), 0u)
      << "the rescue must come through the deaf side's NAV";
  for (const scenario::DeviceStats& ds : off.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
  }
}

TEST(AsymmetricCell, EifsEngagesOnTheGarbledPileUps) {
  // With garbled delivery the hearing station receives the pile-ups as
  // FCS-failed frames; honouring EIFS it backs off the extra SIFS + ACK
  // air before re-contending. The workload must still drain.
  const scenario::FleetStats fs =
      run_asymmetric(/*rts_threshold=*/0, /*eifs=*/true, /*deliver_garbled=*/true);
  ASSERT_TRUE(fs.all_drained);
  EXPECT_GT(fs.total_collisions(), 0u);
  EXPECT_GT(fs.total_eifs_waits(), 0u)
      << "garbled receptions must stretch some pre-contention waits";
}

// ---- Perishable-response expiries must never strand a NAV ---------------

TEST(ExpiredResponses, ExpiriesAreCountedByKindAndStrandNoNav) {
  // Crossed grants on the mirrored pair (both stations RTS at once, both
  // answer CTS) are where perishable responses actually die: the exchange
  // falls back to the initiator's timeout, and any reservation the dead
  // response's exchange armed must simply run out — never outlive the
  // largest announceable Duration.
  // Two stations, seed 7, six 1-fragment MSDUs each, RTS before every MSDU.
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::contended_wifi_cell(2, 7, 6, 1);
  spec.cells[0].access_point = false;  // Mirrored two-device topology.
  for (auto& d : spec.cells[0].stations) {
    d.cfg.modes[0].ident.nav_enabled = true;
    d.traffic[0].msdu_min_bytes = 700;
    d.traffic[0].msdu_max_bytes = 1000;
    d.traffic[0].burst_len = 1;
    d.traffic[0].max_inflight = 1;
    d.traffic[0].interval_us = 20'000.0;
  }
  const scenario::FleetStats fs = scenario::ScenarioEngine(std::move(spec)).run();
  ASSERT_TRUE(fs.all_drained)
      << "expired responses must leave recovery to the timeout machinery, "
         "not wedge the exchange";
  const sim::TimeBase tb(200e6);
  const Cycle max_reservation = tb.us_to_cycles(65535.0);
  for (const scenario::DeviceStats& ds : fs.devices) {
    EXPECT_EQ(ds.frames_expired,
              ds.expired_acks + ds.expired_ctss + ds.expired_sifs_data)
        << "station " << ds.station_id << ": the by-kind split must cover "
        << "every expiry";
    EXPECT_LE(ds.nav_hangover, max_reservation)
        << "station " << ds.station_id
        << ": a reservation outlived the largest announceable Duration";
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
  }
}

}  // namespace
}  // namespace drmp::net
