// net::ContendedMedium unit tests: overlap semantics (collision marking,
// drop vs garbled delivery), carrier-sense detection latency (the collision
// window), the capture effect, per-source airtime/collision accounting, and
// the point-to-point backend's defined hard error on overlap (which used to
// be a Debug-only assert).
#include <gtest/gtest.h>

#include <stdexcept>

#include "net/contended_medium.hpp"
#include "sim/scheduler.hpp"

namespace drmp::net {
namespace {

struct Sink : phy::MediumClient {
  std::vector<Bytes> frames;
  std::vector<int> sources;
  void on_frame(const Bytes& f, Cycle, int source) override {
    frames.push_back(f);
    sources.push_back(source);
  }
};

Bytes pattern_frame(std::size_t n, u8 seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(seed + i * 3);
  return b;
}

class ContendedMediumTest : public ::testing::Test {
 protected:
  ContendedMediumTest() : tb(200e6), sched(200e6) {}

  ContendedMedium& make(ContendedMedium::Params p = {}) {
    medium = std::make_unique<ContendedMedium>(mac::Protocol::WiFi, tb, p);
    medium->attach(sink);
    sched.add(*medium, "medium", sim::Scheduler::kStageMedium);
    return *medium;
  }

  sim::TimeBase tb;
  sim::Scheduler sched;
  std::unique_ptr<ContendedMedium> medium;
  Sink sink;
};

TEST_F(ContendedMediumTest, CleanTransmissionDeliversIntactWithAirtime) {
  ContendedMedium& m = make();
  const Bytes f = pattern_frame(100, 7);
  const Cycle end = m.begin_tx(f, 1);
  sched.run_cycles(end + 2);
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0], f);
  EXPECT_EQ(sink.sources[0], 1);
  EXPECT_EQ(m.collided_frames(), 0u);
  const auto ss = m.source(1);
  EXPECT_EQ(ss.frames, 1u);
  EXPECT_EQ(ss.collisions, 0u);
  EXPECT_EQ(ss.airtime, m.frame_air_cycles(f.size()));
}

TEST_F(ContendedMediumTest, CcaDetectsCarrierOnlyAfterLatency) {
  ContendedMedium& m = make();
  const Cycle latency = m.cca_latency_cycles();
  ASSERT_GT(latency, 0u);  // WiFi default: one 20 us slot.
  m.begin_tx(pattern_frame(400, 1), 1);
  EXPECT_TRUE(m.busy());        // Ground truth: instantly on the air.
  EXPECT_FALSE(m.cca_busy());   // ... but not yet audible.
  sched.run_cycles(latency - 1);
  EXPECT_FALSE(m.cca_busy());
  sched.run_cycles(1);
  EXPECT_TRUE(m.cca_busy());  // Audible exactly at the latency boundary.
  EXPECT_EQ(m.cca_idle_for(), 0u);
}

TEST_F(ContendedMediumTest, OverlapCollidesAllPartiesAndDropsFrames) {
  ContendedMedium& m = make();
  m.begin_tx(pattern_frame(300, 2), 1);
  sched.run_cycles(100);  // Inside the collision window.
  const Cycle end2 = m.begin_tx(pattern_frame(300, 9), 2);
  sched.run_cycles(end2);
  EXPECT_TRUE(sink.frames.empty());  // Receivers saw only noise.
  EXPECT_EQ(m.collided_frames(), 2u);
  EXPECT_EQ(m.dropped_frames(), 2u);
  EXPECT_EQ(m.source(1).collisions, 1u);
  EXPECT_EQ(m.source(2).collisions, 1u);
  // Airtime is still accounted: the channel was physically occupied.
  EXPECT_GT(m.source(1).airtime, 0u);
  EXPECT_GT(m.source(2).airtime, 0u);
}

TEST_F(ContendedMediumTest, GarbledModeDeliversDamagedFrames) {
  ContendedMedium::Params p;
  p.deliver_garbled = true;
  ContendedMedium& m = make(p);
  const Bytes a = pattern_frame(200, 3);
  const Bytes b = pattern_frame(200, 11);
  m.begin_tx(a, 1);
  sched.run_cycles(50);
  const Cycle end2 = m.begin_tx(b, 2);
  sched.run_cycles(end2);
  ASSERT_EQ(sink.frames.size(), 2u);  // Delivered, but bit-damaged.
  EXPECT_NE(sink.frames[0], a);
  EXPECT_NE(sink.frames[1], b);
  EXPECT_EQ(m.garbled_frames(), 2u);
  EXPECT_EQ(m.dropped_frames(), 0u);
}

TEST_F(ContendedMediumTest, CaptureProtectsEstablishedFrame) {
  ContendedMedium::Params p;
  p.capture_preamble_us = 5.0;  // 1000 cycles at 200 MHz.
  ContendedMedium& m = make(p);
  const Bytes a = pattern_frame(400, 4);
  m.begin_tx(a, 1);
  sched.run_cycles(2000);  // Receivers locked onto a's preamble long ago.
  const Cycle end2 = m.begin_tx(pattern_frame(400, 12), 2);
  sched.run_cycles(end2);
  ASSERT_EQ(sink.frames.size(), 1u);  // a survived; the newcomer is lost.
  EXPECT_EQ(sink.frames[0], a);
  EXPECT_EQ(m.capture_wins(), 1u);
  EXPECT_EQ(m.collided_frames(), 1u);  // Only the late interferer.
  EXPECT_EQ(m.source(1).collisions, 0u);
  EXPECT_EQ(m.source(2).collisions, 1u);
}

TEST_F(ContendedMediumTest, LateStartWithinCaptureWindowKillsBoth) {
  ContendedMedium::Params p;
  p.capture_preamble_us = 5.0;
  ContendedMedium& m = make(p);
  m.begin_tx(pattern_frame(400, 4), 1);
  sched.run_cycles(500);  // Still inside a's preamble: no lock yet.
  const Cycle end2 = m.begin_tx(pattern_frame(400, 12), 2);
  sched.run_cycles(end2);
  EXPECT_TRUE(sink.frames.empty());
  EXPECT_EQ(m.collided_frames(), 2u);
  EXPECT_EQ(m.capture_wins(), 0u);
}

TEST_F(ContendedMediumTest, TamperStillAppliesToSurvivingFrames) {
  ContendedMedium& m = make();
  m.tamper = [](Bytes& f) {
    f[0] ^= 0xFF;
    return true;
  };
  const Bytes f = pattern_frame(120, 5);
  const Cycle end = m.begin_tx(f, 1);
  sched.run_cycles(end + 1);
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_NE(sink.frames[0], f);
  EXPECT_EQ(m.tampered_frames(), 1u);
}

TEST(PointToPointMedium, OverlapIsAHardErrorInEveryBuildType) {
  // Satellite of the contention work: the old assert(!busy()) compiled out
  // under NDEBUG and let Release builds overwrite an in-flight frame. The
  // point-to-point backend now throws in all build types.
  sim::TimeBase tb(200e6);
  phy::Medium m(mac::Protocol::WiFi, tb);
  m.begin_tx(Bytes(100, 0xAB), 1);
  EXPECT_TRUE(m.busy());
  EXPECT_THROW(m.begin_tx(Bytes(50, 0xCD), 2), std::logic_error);
}

TEST(PointToPointMedium, CcaViewMatchesGroundTruth) {
  sim::TimeBase tb(200e6);
  sim::Scheduler sched(200e6);
  phy::Medium m(mac::Protocol::WiFi, tb);
  sched.add(m, "medium", sim::Scheduler::kStageMedium);
  EXPECT_FALSE(m.cca_busy());
  const Cycle end = m.begin_tx(Bytes(64, 0x11), 1);
  EXPECT_TRUE(m.cca_busy());  // No detection latency on point-to-point.
  sched.run_cycles(end + 3);
  EXPECT_FALSE(m.cca_busy());
  EXPECT_EQ(m.cca_idle_for(), m.idle_for());
}

}  // namespace
}  // namespace drmp::net
