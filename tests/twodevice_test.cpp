// Two-device integration: two complete DRMP SoCs sharing the same media —
// device 1 transmits, device 2's Event Handler + AckRfu acknowledge
// autonomously and its protocol control delivers the MSDU upward. This
// closes the loop the scripted-peer tests approximate: both ends of the
// link are the system under test.
#include <gtest/gtest.h>

#include "drmp/device.hpp"
#include "phy/phy_model.hpp"
#include "sim/scheduler.hpp"

namespace drmp {
namespace {

class TwoDeviceTest : public ::testing::Test {
 protected:
  TwoDeviceTest() : sched(200e6), tb(200e6) {
    DrmpConfig cfg1 = DrmpConfig::standard_three_mode();
    DrmpConfig cfg2 = DrmpConfig::standard_three_mode();
    // Mirror identities: dev2's self is dev1's peer and vice versa.
    for (std::size_t i = 0; i < kNumModes; ++i) {
      std::swap(cfg2.modes[i].ident.self_addr, cfg2.modes[i].ident.peer_addr);
      std::swap(cfg2.modes[i].ident.dev_id, cfg2.modes[i].ident.peer_dev_id);
    }
    cfg2.backoff_seed = 0xBEEF;  // Decorrelate the backoff PRNGs.
    // Offset dev2's TDMA slots so the WiMAX/UWB allocations don't collide.
    cfg2.modes[1].ident.tdma_offset_us = 3000.0;
    cfg2.modes[2].ident.tdma_offset_us = 5000.0;

    for (std::size_t i = 0; i < kNumModes; ++i) {
      media[i] = std::make_unique<phy::Medium>(cfg1.modes[i].ident.proto, tb);
      sched.add(*media[i], "medium");
    }
    dev1 = std::make_unique<DrmpDevice>(sched, cfg1, 1);
    dev2 = std::make_unique<DrmpDevice>(sched, cfg2, 2);
    for (std::size_t i = 0; i < kNumModes; ++i) {
      dev1->attach_medium(mode_from_index(i), media[i].get());
      dev2->attach_medium(mode_from_index(i), media[i].get());
    }
    dev2->on_deliver = [this](Mode m, const Bytes& msdu) {
      delivered[index(m)].push_back(msdu);
    };
    dev1->on_tx_complete = [this](Mode m, bool ok, u32) {
      if (ok) ++tx_ok[index(m)];
      ++tx_done[index(m)];
    };
  }

  sim::Scheduler sched;
  sim::TimeBase tb;
  std::array<std::unique_ptr<phy::Medium>, kNumModes> media;
  std::unique_ptr<DrmpDevice> dev1;
  std::unique_ptr<DrmpDevice> dev2;
  std::array<std::vector<Bytes>, kNumModes> delivered;
  std::array<u32, kNumModes> tx_ok{};
  std::array<u32, kNumModes> tx_done{};
};

TEST_F(TwoDeviceTest, WifiEndToEndWithRealAckPath) {
  Bytes msdu(900);
  for (std::size_t i = 0; i < msdu.size(); ++i) msdu[i] = static_cast<u8>(i * 5);
  dev1->host_send(Mode::A, msdu);
  ASSERT_TRUE(sched.run_until(
      [&] { return tx_done[0] >= 1 && !delivered[0].empty(); }, 800'000'000));
  EXPECT_EQ(tx_ok[0], 1u);  // Dev2's AckRfu acknowledged in time.
  ASSERT_EQ(delivered[0].size(), 1u);
  EXPECT_EQ(delivered[0][0], msdu);
  EXPECT_EQ(dev2->ack_rfu().acks_generated(), 1u);
  EXPECT_EQ(dev1->ack_rfu().acks_generated(), 0u);
}

TEST_F(TwoDeviceTest, WifiFragmentedEndToEnd) {
  Bytes msdu(2200);  // 3 fragments.
  for (std::size_t i = 0; i < msdu.size(); ++i) msdu[i] = static_cast<u8>(i * 11);
  dev1->host_send(Mode::A, msdu);
  ASSERT_TRUE(sched.run_until(
      [&] { return tx_done[0] >= 1 && !delivered[0].empty(); }, 2'000'000'000));
  EXPECT_EQ(tx_ok[0], 1u);
  ASSERT_EQ(delivered[0].size(), 1u);
  EXPECT_EQ(delivered[0][0], msdu);
  EXPECT_EQ(dev2->ack_rfu().acks_generated(), 3u);  // One per fragment.
}

TEST_F(TwoDeviceTest, UwbEndToEndImmAck) {
  Bytes msdu(640, 0x3D);
  dev1->host_send(Mode::C, msdu);
  ASSERT_TRUE(sched.run_until(
      [&] { return tx_done[2] >= 1 && !delivered[2].empty(); }, 2'000'000'000));
  EXPECT_EQ(tx_ok[2], 1u);
  EXPECT_EQ(delivered[2][0], msdu);
  EXPECT_EQ(dev2->ack_rfu().acks_generated(), 1u);
}

TEST_F(TwoDeviceTest, WimaxEndToEndDelivery) {
  Bytes msdu(512, 0x6B);
  dev1->host_send(Mode::B, msdu);
  ASSERT_TRUE(sched.run_until(
      [&] { return tx_done[1] >= 1 && !delivered[1].empty(); }, 2'000'000'000));
  EXPECT_EQ(delivered[1][0], msdu);
}

TEST_F(TwoDeviceTest, BidirectionalWifiTraffic) {
  std::vector<Bytes> dev1_got;
  dev1->on_deliver = [&](Mode m, const Bytes& b) {
    if (m == Mode::A) dev1_got.push_back(b);
  };
  Bytes up(700, 0x11), down(500, 0x22);
  dev1->host_send(Mode::A, up);
  dev2->host_send(Mode::A, down);
  ASSERT_TRUE(sched.run_until(
      [&] { return !delivered[0].empty() && !dev1_got.empty(); }, 2'000'000'000));
  EXPECT_EQ(delivered[0][0], up);
  EXPECT_EQ(dev1_got[0], down);
}

}  // namespace
}  // namespace drmp
