// Passive-scanning tests (§2.3.2.1 #13 "WiFi and UWB ... use beacon frames
// to synchronize themselves", #15 "Scanning is done by all MACs before
// joining ... passive scanning"): the scripted peer beacons as an AP, the
// station's management plane accumulates BSS records, and beacons are never
// acknowledged nor disturb data traffic.
#include <gtest/gtest.h>

#include "drmp/testbench.hpp"
#include "mac/wifi_ctrl.hpp"
#include "mac/wifi_frames.hpp"

namespace drmp {
namespace {

Bytes payload(std::size_t n, u8 seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 9 + seed);
  return b;
}

ctrl::WifiCtrl& wifi(Testbench& tb) {
  return static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
}

TEST(ScanTest, BeaconCodecRoundTrip) {
  mac::wifi::BeaconBody body;
  body.timestamp_us = 0x0123456789ABull;
  body.interval_us = 10240;
  const auto bssid = mac::MacAddr::from_u64(0x0A0B0C0D0E0Full);
  const Bytes frame = mac::wifi::build_beacon(bssid, 7, body);
  const auto p = mac::wifi::parse_data_mpdu(frame);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hdr.fc.type, mac::wifi::FrameType::Management);
  EXPECT_EQ(p->hdr.fc.subtype, mac::wifi::Subtype::Beacon);
  EXPECT_EQ(p->hdr.addr2, bssid);
  EXPECT_TRUE(p->hcs_ok);
  EXPECT_TRUE(p->fcs_ok);
  const auto decoded = mac::wifi::BeaconBody::decode(p->body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, body);
}

TEST(ScanTest, PassiveScanDiscoversTheAp) {
  Testbench tb;
  tb.peer(Mode::A).start_beacons(tb.scheduler().now() + 1000, 3, 500.0);
  ASSERT_TRUE(tb.run_until([&] { return wifi(tb).scan_results().size() >= 1 &&
                                        wifi(tb).scan_results()[0].beacons >= 3; },
                           600'000'000ull));
  const auto& scan = wifi(tb).scan_results();
  ASSERT_EQ(scan.size(), 1u);
  EXPECT_EQ(scan[0].bssid, tb.config().modes[0].ident.peer_addr);
  EXPECT_EQ(scan[0].beacons, 3u);
  EXPECT_EQ(scan[0].interval_us, 500u);
  EXPECT_GT(scan[0].last_timestamp_us, 0u);
}

TEST(ScanTest, BeaconsAreNeverAcked) {
  Testbench tb;
  tb.peer(Mode::A).start_beacons(tb.scheduler().now() + 1000, 2, 400.0);
  ASSERT_TRUE(tb.run_until(
      [&] { return !wifi(tb).scan_results().empty() &&
                   wifi(tb).scan_results()[0].beacons >= 2; },
      600'000'000ull));
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 0u);
}

TEST(ScanTest, TimestampsAdvanceAcrossBeacons) {
  Testbench tb;
  tb.peer(Mode::A).start_beacons(tb.scheduler().now() + 1000, 2, 800.0);
  ASSERT_TRUE(tb.run_until(
      [&] { return !wifi(tb).scan_results().empty() &&
                   wifi(tb).scan_results()[0].beacons >= 1; },
      600'000'000ull));
  const u64 first = wifi(tb).scan_results()[0].last_timestamp_us;
  ASSERT_TRUE(tb.run_until(
      [&] { return wifi(tb).scan_results()[0].beacons >= 2; }, 600'000'000ull));
  const u64 second = wifi(tb).scan_results()[0].last_timestamp_us;
  // The TSF advanced by roughly the beacon interval (§2.3.2.1 #13 sync).
  EXPECT_GT(second, first);
  EXPECT_NEAR(static_cast<double>(second - first), 800.0, 120.0);
}

TEST(ScanTest, ScanningDoesNotDisturbTraffic) {
  Testbench tb;
  tb.peer(Mode::A).start_beacons(tb.scheduler().now() + 1000, 5, 300.0);
  const auto out = tb.send_and_wait(Mode::A, payload(600), 2'000'000'000ull);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  ASSERT_TRUE(tb.run_until(
      [&] { return !wifi(tb).scan_results().empty() &&
                   wifi(tb).scan_results()[0].beacons >= 5; },
      2'000'000'000ull));
  EXPECT_EQ(tb.delivered(Mode::A).size(), 0u);  // Beacons never deliver upward.
}

TEST(ScanTest, CorruptedBeaconIsDropped) {
  Testbench tb;
  mac::wifi::BeaconBody body;
  body.timestamp_us = 42;
  body.interval_us = 100;
  Bytes beacon = mac::wifi::build_beacon(
      mac::MacAddr::from_u64(tb.config().modes[0].ident.peer_addr), 0, body);
  beacon[30] ^= 0x08;  // Body bit: FCS fails.
  tb.peer(Mode::A).inject_frame(beacon, tb.scheduler().now() + 10);
  tb.run_cycles(2'000'000);
  EXPECT_TRUE(wifi(tb).scan_results().empty());
  EXPECT_GE(tb.device().event_handler().rx_bad_frames(Mode::A), 1u);
}

}  // namespace
}  // namespace drmp
