// Hardware-substrate tests: packet memory pages, bus arbitration (priority,
// grant delay, grant override), trigger decode, reconfiguration memory.
#include <gtest/gtest.h>

#include "hw/bus.hpp"
#include "hw/ctrl_layout.hpp"
#include "hw/memory_map.hpp"
#include "hw/packet_memory.hpp"
#include "hw/reconfig_memory.hpp"

namespace drmp::hw {
namespace {

TEST(MemoryMap, PagesAreDisjointAndInRange) {
  for (std::size_t mi = 0; mi < kNumModes; ++mi) {
    for (u32 p = 0; p < kPagesPerMode; ++p) {
      const u32 base = page_base(mode_from_index(mi), static_cast<Page>(p));
      EXPECT_GE(base, kModePagesBase);
      EXPECT_LE(base + kPageWords, kMemWords);
    }
  }
  // Adjacent pages must not overlap.
  EXPECT_EQ(page_base(Mode::A, Page::Raw), page_base(Mode::A, Page::Ctrl) + kPageWords);
  EXPECT_EQ(page_base(Mode::B, Page::Ctrl),
            page_base(Mode::A, Page::Ctrl) + kPagesPerMode * kPageWords);
}

TEST(MemoryMap, RfuTriggerDecode) {
  EXPECT_TRUE(is_rfu_trigger_addr(rfu_trigger_addr(2)));
  EXPECT_TRUE(is_rfu_trigger_addr(rfu_trigger_addr(15)));
  EXPECT_FALSE(is_rfu_trigger_addr(kModePagesBase));
  EXPECT_FALSE(is_rfu_trigger_addr(kOverrideAddr));
}

TEST(PacketMemory, PageByteRoundTrip) {
  PacketMemory mem;
  Bytes data(1501);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  mem.write_page_bytes(Mode::B, Page::Raw, data);
  EXPECT_EQ(mem.page_byte_len(Mode::B, Page::Raw), 1501u);
  EXPECT_EQ(mem.read_page_bytes(Mode::B, Page::Raw), data);
}

TEST(PacketMemory, PageOverflowThrows) {
  PacketMemory mem;
  Bytes data(kPagePayloadBytes + 1);
  EXPECT_THROW(mem.write_page_bytes(Mode::A, Page::Raw, data), std::length_error);
}

TEST(PacketMemory, DualPortSeesSameData) {
  PacketMemory mem;
  mem.write(0x200, 0xDEADBEEF);
  EXPECT_EQ(mem.cpu_read(0x200), 0xDEADBEEFu);
  mem.cpu_write(0x201, 42);
  EXPECT_EQ(mem.read(0x201), 42u);
}

TEST(ReconfigMemory, BlobStorage) {
  ReconfigMemory rmem;
  EXPECT_FALSE(rmem.has_blob(2, 1));
  EXPECT_EQ(rmem.blob_len(2, 1), 0u);
  rmem.load_blob(2, 1, {1, 2, 3, 4});
  EXPECT_TRUE(rmem.has_blob(2, 1));
  EXPECT_EQ(rmem.blob_len(2, 1), 4u);
  EXPECT_EQ(rmem.blob(2, 1)[2], 3u);
}

// ----------------------------------------------------------------- bus

class BusTest : public ::testing::Test {
 protected:
  PacketMemory mem;
  PacketBus bus{mem, nullptr};
};

TEST_F(BusTest, PriorityModeAWins) {
  bus.request_for_irc(Mode::B);
  bus.request_for_irc(Mode::A);
  bus.tick();
  EXPECT_TRUE(bus.granted_irc(Mode::A));
  EXPECT_FALSE(bus.granted_irc(Mode::B));
}

TEST_F(BusTest, NonPreemptiveHold) {
  bus.request_for_irc(Mode::C);
  bus.tick();
  EXPECT_TRUE(bus.granted_irc(Mode::C));
  // A higher-priority request arrives mid-transaction; C keeps the bus.
  bus.request_for_irc(Mode::A);
  bus.tick();
  EXPECT_TRUE(bus.granted_irc(Mode::C));
  // On release, A gets it.
  bus.release(Mode::C);
  bus.tick();
  bus.tick();
  EXPECT_TRUE(bus.granted_irc(Mode::A));
}

TEST_F(BusTest, OneAccessPerCycleEnforced) {
  bus.request_for_irc(Mode::A);
  bus.tick();
  ASSERT_TRUE(bus.granted_irc(Mode::A));
  EXPECT_TRUE(bus.can_access());
  bus.write(0x300, 7);
  EXPECT_FALSE(bus.can_access());
  bus.tick();
  EXPECT_TRUE(bus.can_access());
  EXPECT_EQ(bus.read(0x300), 7u);
}

TEST_F(BusTest, WriteToRfuAddressBecomesTrigger) {
  bus.request_for_irc(Mode::A);
  bus.tick();
  bus.write(rfu_trigger_addr(5), 0x1234);
  // Not a memory write.
  EXPECT_EQ(mem.read(rfu_trigger_addr(5)), 0u);
  auto t = bus.triggers().take(5);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 0x1234u);
  EXPECT_FALSE(bus.triggers().take(5).has_value());
}

TEST_F(BusTest, GrantDelayUntilRfuTriggered) {
  // The IRC requests on behalf of RFU 6 before triggering it: the grant must
  // stay with the IRC until the trigger is observed (Fig. 3.12).
  bus.request_for_irc(Mode::A);
  bus.tick();
  ASSERT_TRUE(bus.granted_irc(Mode::A));
  bus.request_for_rfu(Mode::A, 6);
  bus.tick();
  // No trigger yet -> still IRC.
  EXPECT_TRUE(bus.granted_irc(Mode::A));
  EXPECT_FALSE(bus.granted_rfu(6));
  bus.write(rfu_trigger_addr(6), 0);  // Trigger.
  bus.tick();
  EXPECT_TRUE(bus.granted_rfu(6));
}

TEST_F(BusTest, GrantOverrideMasterSlaveHandshake) {
  // Promote RFU 8 to master, then 8 overrides to slave 4 and back.
  bus.request_for_irc(Mode::A);
  bus.tick();
  bus.write(rfu_trigger_addr(8), 0);
  bus.request_for_rfu(Mode::A, 8);
  bus.tick();
  ASSERT_TRUE(bus.granted_rfu(8));

  bus.write(kOverrideAddr, 4);  // Master 8 delegates to slave 4.
  EXPECT_TRUE(bus.granted_rfu(4));
  bus.tick();
  EXPECT_TRUE(bus.granted_rfu(4));  // Override survives arbitration.
  bus.write(kOverrideAddr, 4);      // Slave returns the bus (writes own id).
  EXPECT_TRUE(bus.granted_rfu(8));
}

TEST_F(BusTest, ModeWaitCyclesAccrueUnderContention) {
  bus.request_for_irc(Mode::A);
  bus.request_for_irc(Mode::B);
  for (int i = 0; i < 10; ++i) bus.tick();
  EXPECT_GT(bus.mode_wait_cycles(Mode::B), 0u);
  EXPECT_EQ(bus.mode_wait_cycles(Mode::A), 0u);
}

TEST(CtrlLayout, StatusAddressesInsideCtrlPage) {
  const u32 base = page_base(Mode::C, Page::Ctrl);
  const u32 a = ctrl_status_addr(Mode::C, CtrlWord::kSeqOut);
  EXPECT_GT(a, base);
  EXPECT_LT(a, base + kPageWords);
  const u32 tmpl = ctrl_hdr_tmpl_addr(Mode::C);
  EXPECT_GT(tmpl, a);
  EXPECT_LT(tmpl + 40, base + kPageWords);  // Room for a header template.
}

}  // namespace
}  // namespace drmp::hw
