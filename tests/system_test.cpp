// Full-system integration tests: the scenarios of thesis Ch. 5 — packet
// transmission and reception, single mode and three concurrent modes, with
// the interrupt-driven CPU, the Event Handler's autonomous receive path, the
// AckRfu's SIFS-bounded acknowledgements, retries, and the WiMAX
// packing/ARQ machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/conventional.hpp"
#include "drmp/testbench.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp {
namespace {

Bytes payload(std::size_t n, u8 seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 3 + seed);
  return b;
}

// ------------------------------------------------------------ WiFi transmit

TEST(SystemWifi, SingleMsduTransmitsAndIsAcked) {
  Testbench tb;
  const Bytes msdu = payload(800);
  const auto out = tb.send_and_wait(Mode::A, msdu);
  ASSERT_TRUE(out.completed) << "transmission did not complete";
  EXPECT_TRUE(out.success);
  // The peer received exactly one data MPDU and ACKed it.
  ASSERT_EQ(tb.peer(Mode::A).received_data_frames().size(), 1u);
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), 1u);

  // Differential check against the golden conventional implementation: the
  // on-air bytes must be exactly what a correct 802.11 transmitter builds.
  baseline::GoldenTxParams gp;
  gp.proto = mac::Protocol::WiFi;
  gp.key = tb.config().modes[0].key;
  gp.seq = 0;  // First SeqAssign returns 0.
  gp.frag_threshold = tb.config().modes[0].ident.frag_threshold;
  gp.src_addr = tb.config().modes[0].ident.self_addr;
  gp.dst_addr = tb.config().modes[0].ident.peer_addr;
  const auto golden = baseline::golden_tx_frames(gp, msdu);
  ASSERT_EQ(golden.size(), 1u);
  EXPECT_EQ(tb.peer(Mode::A).received_data_frames()[0], golden[0]);
}

TEST(SystemWifi, FragmentedMsduSendsAllFragments) {
  Testbench tb;
  const Bytes msdu = payload(2500);  // 3 fragments at 1024 B threshold.
  const auto out = tb.send_and_wait(Mode::A, msdu);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  ASSERT_EQ(tb.peer(Mode::A).received_data_frames().size(), 3u);
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), 3u);
  // Fragment flags: more_frag on all but the last.
  for (std::size_t k = 0; k < 3; ++k) {
    const auto p = mac::wifi::parse_data_mpdu(tb.peer(Mode::A).received_data_frames()[k]);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->hdr.frag_num, k);
    EXPECT_EQ(p->hdr.fc.more_frag, k < 2);
    EXPECT_TRUE(p->hcs_ok);
    EXPECT_TRUE(p->fcs_ok);
  }
}

TEST(SystemWifi, LostAckTriggersRetryWithRetryFlag) {
  // Failure injection: the peer never ACKs, so the transmitter must retry
  // with the retry bit set until the limit exhausts and report failure.
  Testbench tb3;
  tb3.peer(Mode::A).set_auto_ack(false);
  const auto out = tb3.send_and_wait(Mode::A, payload(200), 600'000'000);
  ASSERT_TRUE(out.completed);
  EXPECT_FALSE(out.success);  // Retry limit exhausted.
  // All transmissions carried the same fragment; retries have retry=1.
  const auto& frames = tb3.peer(Mode::A).received_data_frames();
  ASSERT_GE(frames.size(), 2u);
  const auto first = mac::wifi::parse_data_mpdu(frames[0]);
  const auto second = mac::wifi::parse_data_mpdu(frames[1]);
  ASSERT_TRUE(first && second);
  EXPECT_FALSE(first->hdr.fc.retry);
  EXPECT_TRUE(second->hdr.fc.retry);
  EXPECT_EQ(first->hdr.seq_num, second->hdr.seq_num);
}

TEST(SystemWifi, BackToBackMsdusUseIncrementingSequenceNumbers) {
  Testbench tb;
  ASSERT_TRUE(tb.send_and_wait(Mode::A, payload(100, 1)).success);
  ASSERT_TRUE(tb.send_and_wait(Mode::A, payload(100, 2)).success);
  const auto& frames = tb.peer(Mode::A).received_data_frames();
  ASSERT_EQ(frames.size(), 2u);
  const auto p0 = mac::wifi::parse_data_mpdu(frames[0]);
  const auto p1 = mac::wifi::parse_data_mpdu(frames[1]);
  EXPECT_EQ(p0->hdr.seq_num + 1, p1->hdr.seq_num);
}

// ------------------------------------------------------------- WiFi receive

TEST(SystemWifi, ReceivesAcksAndDeliversMsdu) {
  Testbench tb;
  const Bytes msdu = payload(600);
  const auto delivered = tb.inject_and_wait(Mode::A, msdu, /*seq=*/5);
  ASSERT_TRUE(delivered.has_value()) << "MSDU was not delivered";
  EXPECT_EQ(*delivered, msdu);
  // The autonomous ACK path fired without CPU involvement.
  EXPECT_EQ(tb.device().event_handler().rx_acks_generated(Mode::A), 1u);
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 1u);
}

TEST(SystemWifi, ReceivesFragmentedMsdu) {
  Testbench tb;
  const Bytes msdu = payload(2048);  // 2 fragments.
  const auto delivered = tb.inject_and_wait(Mode::A, msdu, /*seq=*/9);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, msdu);
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 2u);  // One ACK per fragment.
}

TEST(SystemWifi, AckMeetsSifsDeadline) {
  // The headline hard-real-time constraint: the device's ACK must start
  // exactly SIFS after the received frame ends.
  Testbench tb;
  const Bytes msdu = payload(300);
  ASSERT_TRUE(tb.inject_and_wait(Mode::A, msdu, 1).has_value());
  auto* ptx = tb.device().phy_tx(Mode::A);
  ASSERT_NE(ptx, nullptr);
  ASSERT_TRUE(tb.run_until([&] { return ptx->frames_sent() >= 1; }, 4'000'000));
  ASSERT_EQ(ptx->frames_sent(), 1u);  // The ACK.
  // rx_end is tracked by the Rx RFU; ACK start must be >= rx_end + SIFS and
  // within a few cycles of it (the AckRfu staged it in time; the PHY starts
  // exactly at the earliest-start mark).
  const Cycle rx_end = tb.device().rx_rfu().last_rx_end();
  const Cycle sifs = tb.device().timebase().us_to_cycles(10.0);
  EXPECT_GE(ptx->last_tx_start(), rx_end + sifs);
  EXPECT_LE(ptx->last_tx_start(), rx_end + sifs + 8);
}

TEST(SystemWifi, CorruptedFrameIsDroppedWithoutAck) {
  Testbench tb;
  auto frames = tb.make_peer_frames(Mode::A, payload(400), 3);
  ASSERT_EQ(frames.size(), 1u);
  frames[0][40] ^= 0xFF;  // Corrupt the body -> FCS fails.
  tb.peer(Mode::A).inject_frame(frames[0], tb.scheduler().now() + 10);
  tb.run_cycles(4'000'000);  // 20 ms.
  EXPECT_TRUE(tb.delivered(Mode::A).empty());
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 0u);
  EXPECT_EQ(tb.device().event_handler().rx_bad_frames(Mode::A), 1u);
}

TEST(SystemWifi, DuplicateFrameFilteredBySeqRfu) {
  Testbench tb;
  const Bytes msdu = payload(128);
  auto frames = tb.make_peer_frames(Mode::A, msdu, 7);
  ASSERT_TRUE(tb.inject_and_wait(Mode::A, msdu, 7).has_value());
  // Re-inject the identical frame (as after a lost ACK): must be ACKed again
  // but *not* delivered twice.
  tb.peer(Mode::A).inject_frame(frames[0], tb.scheduler().now() + 100);
  tb.run_cycles(6'000'000);
  EXPECT_EQ(tb.delivered(Mode::A).size(), 1u);
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 2u);
}

// -------------------------------------------------------------------- UWB

TEST(SystemUwb, TransmitInCtaSlotWithImmAck) {
  Testbench tb;
  const Bytes msdu = payload(500);
  const auto out = tb.send_and_wait(Mode::C, msdu, 80'000'000);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  ASSERT_EQ(tb.peer(Mode::C).received_data_frames().size(), 1u);
  EXPECT_EQ(tb.peer(Mode::C).acks_sent(), 1u);

  // Golden differential: UWB frame bytes.
  baseline::GoldenTxParams gp;
  gp.proto = mac::Protocol::Uwb;
  gp.key = tb.config().modes[2].key;
  gp.seq = 0;
  gp.frag_threshold = tb.config().modes[2].ident.frag_threshold;
  gp.pnid = tb.config().modes[2].ident.pnid;
  gp.src_id = tb.config().modes[2].ident.dev_id;
  gp.dest_id = tb.config().modes[2].ident.peer_dev_id;
  const auto golden = baseline::golden_tx_frames(gp, msdu);
  EXPECT_EQ(tb.peer(Mode::C).received_data_frames()[0], golden[0]);
}

TEST(SystemUwb, TdmaRespectsCtaOffset) {
  Testbench tb;
  const auto out = tb.send_and_wait(Mode::C, payload(64), 80'000'000);
  ASSERT_TRUE(out.success);
  // CTA at +1000 us in an 8000 us superframe: the data frame must start at
  // a k*8000+1000 us boundary (within jitter of the buffer handoff).
  auto* ptx = tb.device().phy_tx(Mode::C);
  const double start_us = tb.device().timebase().cycles_to_us(ptx->last_tx_start());
  const double in_frame = std::fmod(start_us, 8000.0);
  EXPECT_NEAR(in_frame, 1000.0, 5.0);
}

TEST(SystemUwb, ReceiveDeliversAndImmAcks) {
  Testbench tb;
  const Bytes msdu = payload(900);
  const auto delivered = tb.inject_and_wait(Mode::C, msdu, /*seq=*/11, 80'000'000);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, msdu);
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 1u);
}

// ------------------------------------------------------------------ WiMAX

TEST(SystemWimax, TransmitSingleSduInTddFrame) {
  Testbench tb;
  const Bytes msdu = payload(700);
  const auto out = tb.send_and_wait(Mode::B, msdu, 80'000'000);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  // WiMAX completion means "handed to the TDD frame"; wait out the air time.
  ASSERT_TRUE(tb.run_until(
      [&] { return !tb.peer(Mode::B).received_data_frames().empty(); }, 8'000'000));
  ASSERT_EQ(tb.peer(Mode::B).received_data_frames().size(), 1u);

  // Golden differential for the WiMAX MPDU.
  baseline::GoldenTxParams gp;
  gp.proto = mac::Protocol::WiMax;
  gp.key = tb.config().modes[1].key;
  gp.cid = tb.config().modes[1].ident.basic_cid;
  const auto golden = baseline::golden_tx_frames(gp, msdu);
  EXPECT_EQ(tb.peer(Mode::B).received_data_frames()[0], golden[0]);
}

TEST(SystemWimax, SmallMsdusArePackedIntoOneMpdu) {
  Testbench tb;
  tb.send_async(Mode::B, payload(100, 1));
  tb.send_async(Mode::B, payload(120, 2));
  ASSERT_TRUE(tb.wait_tx_count(Mode::B, 1, 160'000'000));
  // One MPDU on air carrying both SDUs (packing subheaders).
  ASSERT_TRUE(tb.run_until(
      [&] { return !tb.peer(Mode::B).received_data_frames().empty(); }, 8'000'000));
  ASSERT_EQ(tb.peer(Mode::B).received_data_frames().size(), 1u);
  const auto p = mac::wimax::parse_mpdu(tb.peer(Mode::B).received_data_frames()[0]);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->gmh.type & mac::wimax::kTypePacking);
  ASSERT_EQ(p->packed.size(), 2u);
}

TEST(SystemWimax, ReceiveDeliversSingleSdu) {
  Testbench tb;
  const Bytes msdu = payload(512);
  const auto delivered = tb.inject_and_wait(Mode::B, msdu, 0, 80'000'000);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, msdu);
}

TEST(SystemWimax, ArqFeedbackSlidesWindow) {
  Testbench tb;
  // Send two MPDUs (two ARQ-tagged blocks), then feed back cumulative BSN 2.
  ASSERT_TRUE(tb.send_and_wait(Mode::B, payload(300, 1), 80'000'000).success);
  ASSERT_TRUE(tb.send_and_wait(Mode::B, payload(300, 2), 80'000'000).success);
  const auto* w = tb.device().arq_rfu().cid_state(tb.config().modes[1].ident.basic_cid);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->next_bsn, 2u);
  EXPECT_EQ(w->window_start, 0u);

  tb.peer(Mode::B).inject_frame(tb.make_arq_feedback(2), tb.scheduler().now() + 100);
  ASSERT_TRUE(tb.run_until(
      [&] {
        const auto* s = tb.device().arq_rfu().cid_state(tb.config().modes[1].ident.basic_cid);
        return s != nullptr && s->window_start == 2;
      },
      80'000'000));
}

// -------------------------------------------- three concurrent protocol modes

TEST(SystemThreeModes, ConcurrentTransmissionAllSucceed) {
  // The thesis's headline experiment (Fig. 5.3): all three modes transmit
  // concurrently on one co-processor, reconfiguring packet-by-packet.
  Testbench tb;
  tb.send_async(Mode::A, payload(1000, 1));
  tb.send_async(Mode::B, payload(1000, 2));
  tb.send_async(Mode::C, payload(1000, 3));
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 1, 400'000'000));
  ASSERT_TRUE(tb.wait_tx_count(Mode::B, 1, 400'000'000));
  ASSERT_TRUE(tb.wait_tx_count(Mode::C, 1, 400'000'000));
  EXPECT_EQ(tb.tx_successes(Mode::A), 1u);
  EXPECT_EQ(tb.tx_successes(Mode::B), 1u);
  EXPECT_EQ(tb.tx_successes(Mode::C), 1u);
  // The shared RFUs really were reconfigured between protocols.
  EXPECT_GE(tb.device().crypto_rfu().reconfig_count(), 3u);
}

TEST(SystemThreeModes, ConcurrentReceptionAllDelivered) {
  Testbench tb;
  const Bytes ma = payload(400, 1), mb = payload(400, 2), mc = payload(400, 3);
  const auto fa = tb.make_peer_frames(Mode::A, ma, 1);
  const auto fb = tb.make_peer_frames(Mode::B, mb, 1);
  const auto fc = tb.make_peer_frames(Mode::C, mc, 1);
  const Cycle at = tb.scheduler().now() + 10;
  tb.peer(Mode::A).inject_frame(fa[0], at);
  tb.peer(Mode::B).inject_frame(fb[0], at);  // Different media: true overlap.
  tb.peer(Mode::C).inject_frame(fc[0], at);
  ASSERT_TRUE(tb.run_until(
      [&] {
        return !tb.delivered(Mode::A).empty() && !tb.delivered(Mode::B).empty() &&
               !tb.delivered(Mode::C).empty();
      },
      400'000'000));
  EXPECT_EQ(tb.delivered(Mode::A)[0], ma);
  EXPECT_EQ(tb.delivered(Mode::B)[0], mb);
  EXPECT_EQ(tb.delivered(Mode::C)[0], mc);
}

TEST(SystemThreeModes, SustainedConcurrentTrafficMeetsTiming) {
  // Several packets per mode, interleaved — protocol constraints must hold
  // throughout (every WiFi/UWB frame individually ACKed implies each ACK met
  // its deadline at the peer, and vice versa).
  Testbench tb;
  for (int i = 0; i < 3; ++i) {
    tb.send_async(Mode::A, payload(600, static_cast<u8>(i)));
    tb.send_async(Mode::B, payload(600, static_cast<u8>(i + 10)));
    tb.send_async(Mode::C, payload(600, static_cast<u8>(i + 20)));
  }
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 3, 2'000'000'000));
  ASSERT_TRUE(tb.wait_tx_count(Mode::B, 3, 2'000'000'000));
  ASSERT_TRUE(tb.wait_tx_count(Mode::C, 3, 2'000'000'000));
  EXPECT_EQ(tb.tx_successes(Mode::A), 3u);
  EXPECT_EQ(tb.tx_successes(Mode::B), 3u);
  EXPECT_EQ(tb.tx_successes(Mode::C), 3u);
}

TEST(SystemThreeModes, PriorityOptionsPreserveCorrectness) {
  // The two "not used in the prototype" options — pre-emptive ISRs (§4.1.1)
  // and PrQreq-driven RFU wake order (Table 3.4) — must not change protocol
  // outcomes, only latency distribution.
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.cpu_preemptive = true;
  cfg.rfu_queue_priority = true;
  Testbench tb(cfg);
  for (int i = 0; i < 2; ++i) {
    tb.send_async(Mode::A, payload(900, static_cast<u8>(i)));
    tb.send_async(Mode::B, payload(900, static_cast<u8>(i + 10)));
    tb.send_async(Mode::C, payload(900, static_cast<u8>(i + 20)));
  }
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 2, 2'000'000'000));
  ASSERT_TRUE(tb.wait_tx_count(Mode::B, 2, 2'000'000'000));
  ASSERT_TRUE(tb.wait_tx_count(Mode::C, 2, 2'000'000'000));
  EXPECT_EQ(tb.tx_successes(Mode::A), 2u);
  EXPECT_EQ(tb.tx_successes(Mode::B), 2u);
  EXPECT_EQ(tb.tx_successes(Mode::C), 2u);
}

}  // namespace
}  // namespace drmp
