// Mobility & dynamic-topology tests (docs/CONTENTION.md dynamic topology,
// docs/MULTICELL.md roaming): the TopologyDriver publishes epoch-stamped
// audibility revisions through the quiescence contract, association/roaming
// flows run through mac::LinkMgr, and every new moving part holds the
// repo's determinism contracts — a frozen driver reproduces the static
// cell's digests bit-for-bit across the execution-policy matrix, epoch
// timelines match between the batched and legacy paths, roaming keeps
// lax-sync and reference coupling digest-identical, and a mid-walk
// checkpoint resumes into the uninterrupted run's digests.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "net/audibility.hpp"
#include "net/cell.hpp"
#include "net/topology_driver.hpp"
#include "scenario/scenario_engine.hpp"
#include "sim/scheduler.hpp"

namespace drmp::scenario {
namespace {

FleetStats run_spec(ScenarioSpec spec, unsigned workers, bool idle_skip,
                    ScenarioEngine::Path path = ScenarioEngine::Path::kBatched) {
  spec.worker_threads = workers;
  spec.idle_skip = idle_skip;
  return ScenarioEngine(std::move(spec)).run(path);
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Rounds down to a lockstep round edge (stride multiple), at least one round.
Cycle aligned(Cycle c, Cycle stride) {
  const Cycle a = c / stride * stride;
  return a == 0 ? stride : a;
}

// ---------------------------------------------------------------------------
// Frozen driver == static matrix, bit for bit.
// ---------------------------------------------------------------------------

TEST(Mobility, FrozenDriverReproducesStaticDigestsAcrossPolicies) {
  // The compatibility pin the whole subsystem hangs on: a mobility driver
  // whose script never moves derives the same all-ones matrix the static
  // factory installs, publishes zero epochs, and the cell's digests are
  // bit-identical to the static spec — across worker pools and idle-skip.
  const FleetStats base =
      run_spec(ScenarioSpec::contended_wifi_topology(4, ScenarioSpec::Reach::kFull),
               1, true);
  ASSERT_TRUE(base.all_drained);
  for (const unsigned workers : {1u, 0u}) {
    for (const bool idle_skip : {true, false}) {
      const FleetStats frozen = run_spec(
          ScenarioSpec::mobile_wifi_cell(4, /*frozen=*/true, /*associate=*/false),
          workers, idle_skip);
      EXPECT_EQ(frozen.full_digest(), base.full_digest())
          << "workers=" << workers << " idle_skip=" << idle_skip;
      EXPECT_EQ(frozen.completion_digest(), base.completion_digest());
      EXPECT_EQ(frozen.total_topology_epochs(), 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Epoch edges through the quiescence contract, batched vs legacy.
// ---------------------------------------------------------------------------

TEST(Mobility, WalkPublishesEpochsIdenticallyAcrossPaths) {
  // The walk crosses the (0,1) audibility range mid-run: at least one epoch
  // must be published, as a scheduled wake edge — the batched path (idle
  // skipping past quiet stretches) and the per-cycle legacy path must see
  // the same epoch count, the same collisions and the same completions.
  const ScenarioSpec proto =
      ScenarioSpec::mobile_wifi_cell(4, /*frozen=*/false, /*associate=*/false);
  const FleetStats batched = run_spec(proto, 1, true);
  ASSERT_TRUE(batched.all_drained);
  EXPECT_GE(batched.total_topology_epochs(), 1u) << batched.report();

  const FleetStats legacy =
      run_spec(proto, 1, true, ScenarioEngine::Path::kLegacy);
  EXPECT_EQ(batched.completion_digest(), legacy.completion_digest());
  EXPECT_EQ(batched.total_topology_epochs(), legacy.total_topology_epochs());
  EXPECT_EQ(batched.total_collisions(), legacy.total_collisions());

  for (const unsigned workers : {1u, 0u}) {
    for (const bool idle_skip : {true, false}) {
      const FleetStats again = run_spec(proto, workers, idle_skip);
      EXPECT_EQ(again.full_digest(), batched.full_digest())
          << "workers=" << workers << " idle_skip=" << idle_skip;
    }
  }
}

// ---------------------------------------------------------------------------
// Walk-behind-a-wall physics and the RTS/CTS recovery.
// ---------------------------------------------------------------------------

TEST(Mobility, WalkBehindAWallCollidesAndRtsRecovers) {
  // While station 0 is out of station 1's range their aligned MSDU rounds
  // overlap blind — the mobile run must collide more than the frozen one.
  // Arming RTS/CTS (threshold below every MSDU) converts ~700-byte data
  // collisions into ~20-byte RTS collisions: collided airtime collapses.
  const FleetStats frozen = run_spec(
      ScenarioSpec::mobile_wifi_cell(4, /*frozen=*/true, /*associate=*/false),
      1, true);
  const FleetStats mobile = run_spec(
      ScenarioSpec::mobile_wifi_cell(4, /*frozen=*/false, /*associate=*/false),
      1, true);
  ASSERT_TRUE(mobile.all_drained);
  EXPECT_GT(mobile.total_collisions(), frozen.total_collisions())
      << "hidden phase produced no extra collisions:\n"
      << mobile.report();

  const FleetStats rts = run_spec(
      ScenarioSpec::mobile_wifi_cell(4, /*frozen=*/false, /*associate=*/false,
                                     /*seed=*/1, /*msdus=*/3,
                                     /*rts_threshold=*/700),
      1, true);
  ASSERT_TRUE(rts.all_drained);
  u32 rts_sent = 0, cts_received = 0;
  for (const DeviceStats& ds : rts.devices) {
    rts_sent += ds.rts_sent;
    cts_received += ds.cts_received;
  }
  EXPECT_GT(rts_sent, 0u);
  EXPECT_GT(cts_received, 0u);
  ASSERT_EQ(mobile.cells.size(), 1u);
  ASSERT_EQ(rts.cells.size(), 1u);
  EXPECT_LT(rts.cells[0].collided_airtime[0], mobile.cells[0].collided_airtime[0])
      << "RTS/CTS did not shrink the collided airtime";
  // Every MSDU still completes: the retry machinery plus the handshake
  // recover the hidden-phase losses.
  for (const DeviceStats& ds : rts.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
  }
}

// ---------------------------------------------------------------------------
// Association flows: gated traffic, digest stability.
// ---------------------------------------------------------------------------

TEST(Mobility, AssociationGatesTrafficUntilExchangeCompletes) {
  // With associate on, every station precedes its traffic with a probe +
  // assoc exchange (two extra completions per station, minimum) and the
  // generator gate holds offered traffic until the exchange lands. The
  // flows ride the ordinary MSDU pipeline, so the full policy matrix must
  // stay bit-identical.
  const ScenarioSpec proto =
      ScenarioSpec::mobile_wifi_cell(4, /*frozen=*/false, /*associate=*/true);
  const FleetStats base = run_spec(proto, 1, true);
  ASSERT_TRUE(base.all_drained);
  for (const DeviceStats& ds : base.devices) {
    EXPECT_GE(ds.completed[0], ds.offered[0] + 2)
        << "station " << ds.station_id << " skipped its probe/assoc exchange";
    EXPECT_GT(ds.tx_ok[0], 0u);
    EXPECT_EQ(ds.handoffs, 0u);  // No roaming candidates in this cell.
  }
  for (const unsigned workers : {1u, 0u}) {
    for (const bool idle_skip : {true, false}) {
      const FleetStats again = run_spec(proto, workers, idle_skip);
      EXPECT_EQ(again.full_digest(), base.full_digest())
          << "workers=" << workers << " idle_skip=" << idle_skip;
    }
  }
}

// ---------------------------------------------------------------------------
// Roaming handoff across a coupled two-cell group.
// ---------------------------------------------------------------------------

TEST(Mobility, RoamingHandoffMatchesReferenceCoupling) {
  // Station 0 walks past the roam-out threshold toward the neighbour AP:
  // the driver retargets its serving cell, the link manager re-runs the
  // exchange, and — because a handoff never changes the station's clock
  // domain — lax-sync coupling must reproduce the single-scheduler
  // reference bit-for-bit, handoff included.
  ScenarioSpec ref_spec = ScenarioSpec::roaming_wifi_cells(2);
  ref_spec.coupled_reference = true;
  const FleetStats ref = run_spec(std::move(ref_spec), 1, true);
  ASSERT_TRUE(ref.all_drained);
  EXPECT_GE(ref.total_handoffs(), 1u) << ref.report();
  EXPECT_GE(ref.total_reassociations(), 1u);
  EXPECT_GT(ref.mean_handoff_latency_cycles(), 0.0);
  // Wide station range: the walk isolates roaming from audibility churn.
  EXPECT_EQ(ref.total_topology_epochs(), 0u);

  for (const unsigned workers : {1u, 0u}) {
    for (const bool idle_skip : {true, false}) {
      const FleetStats lax =
          run_spec(ScenarioSpec::roaming_wifi_cells(2), workers, idle_skip);
      EXPECT_EQ(lax.full_digest(), ref.full_digest())
          << "workers=" << workers << " idle_skip=" << idle_skip;
      EXPECT_EQ(lax.total_handoffs(), ref.total_handoffs());
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint/resume mid-walk.
// ---------------------------------------------------------------------------

TEST(Mobility, MidWalkCheckpointResumeReproducesDigest) {
  // Snapshot a mobility + association run at a round edge in the middle of
  // the walk (driver clock, pending topology event, link states and
  // generator gates all live) and resume under a different execution
  // strategy: the uninterrupted digests must reproduce bit-for-bit.
  const ScenarioSpec proto =
      ScenarioSpec::mobile_wifi_cell(4, /*frozen=*/false, /*associate=*/true);
  const FleetStats base = run_spec(proto, 1, true);
  ASSERT_TRUE(base.all_drained);

  const std::string path = tmp_path("ckpt_mobility.snap");
  const Cycle half = aligned(base.lockstep_cycles / 2, proto.lockstep_stride);
  {
    ScenarioSpec clamped = proto;
    clamped.max_cycles = half;
    ScenarioEngine saver(std::move(clamped));
    saver.checkpoint_every(half, path);
    (void)saver.run();
  }
  for (const unsigned workers : {1u, 0u}) {
    ScenarioSpec rest = proto;
    rest.worker_threads = workers;
    ScenarioEngine resumer(std::move(rest));
    resumer.resume(path);
    const FleetStats resumed = resumer.run();
    EXPECT_EQ(resumed.full_digest(), base.full_digest()) << "workers=" << workers;
    EXPECT_EQ(resumed.completion_digest(), base.completion_digest());
    EXPECT_EQ(resumed.lockstep_cycles, base.lockstep_cycles);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Spec validation surfaces mobility shape errors with cell context.
// ---------------------------------------------------------------------------

TEST(Mobility, MalformedSpecsFailLoudlyAtConstruction) {
  {
    // Track count must match the cell's stations.
    ScenarioSpec spec = ScenarioSpec::mobile_wifi_cell(4, true, false);
    spec.cells[0].mobility.stations.pop_back();
    EXPECT_THROW(ScenarioEngine{std::move(spec)}, net::AudibilityError);
  }
  {
    // Mobility and an explicit matrix are mutually exclusive.
    ScenarioSpec spec = ScenarioSpec::mobile_wifi_cell(4, true, false);
    spec.cells[0].contention.audibility = net::AudibilityMatrix::full(4);
    EXPECT_THROW(ScenarioEngine{std::move(spec)}, net::AudibilityError);
  }
  {
    // Rate adaptation needs the association flows that host it.
    ScenarioSpec spec = ScenarioSpec::mobile_wifi_cell(4, true, false);
    spec.cells[0].mobility.adapt_rate = true;
    EXPECT_THROW(ScenarioEngine{std::move(spec)}, net::AudibilityError);
  }
  {
    // Waypoint times must strictly ascend.
    ScenarioSpec spec = ScenarioSpec::mobile_wifi_cell(4, false, false);
    spec.cells[0].mobility.stations[0].waypoints[1].at_us = 1.0;
    EXPECT_THROW(ScenarioEngine{std::move(spec)}, net::AudibilityError);
  }
  {
    // Reach scripts must ascend too.
    ScenarioSpec spec = ScenarioSpec::roaming_wifi_cells(2);
    CouplingSpec::ReachRevision r0;
    r0.at_us = 10.0;
    CouplingSpec::ReachRevision r1;
    r1.at_us = 10.0;
    spec.couplings[0].reach_script = {r0, r1};
    EXPECT_THROW(ScenarioEngine{std::move(spec)}, std::invalid_argument);
  }
}

}  // namespace
}  // namespace drmp::scenario

// ---------------------------------------------------------------------------
// AudibilityMatrix typed errors and the all-ones cache.
// ---------------------------------------------------------------------------

namespace drmp::net {
namespace {

TEST(Audibility, FactoriesThrowTypedErrorsOnBadIndices) {
  EXPECT_THROW(AudibilityMatrix::hidden_pair(4, 0, 9), AudibilityError);
  EXPECT_THROW(AudibilityMatrix::hidden_pair(4, 1, 1), AudibilityError);
  EXPECT_THROW(AudibilityMatrix::asymmetric_pair(4, 2, 2), AudibilityError);
  EXPECT_THROW(AudibilityMatrix::asymmetric_pair(4, 7, 0), AudibilityError);
  EXPECT_THROW(AudibilityMatrix::from_bits(3, std::vector<u8>(8, 1)),
               AudibilityError);
  // AudibilityError is an invalid_argument: existing catch sites keep
  // working unchanged.
  EXPECT_THROW(AudibilityMatrix::hidden_pair(4, 0, 9), std::invalid_argument);
}

TEST(Audibility, AllOnesCacheTracksEveryMutationPath) {
  AudibilityMatrix m = AudibilityMatrix::full(4);
  EXPECT_TRUE(m.all_ones());
  m.hide_pair(0, 1);
  EXPECT_FALSE(m.all_ones());
  m.set(0, 1, true);
  m.set(1, 0, true);
  EXPECT_TRUE(m.all_ones());
  EXPECT_TRUE(AudibilityMatrix{}.all_ones());  // Trivial: everyone hears.
  const AudibilityMatrix f =
      AudibilityMatrix::from_bits(2, std::vector<u8>{1, 1, 0, 1});
  EXPECT_FALSE(f.all_ones());
  EXPECT_TRUE(f.hears(0, 0));
  EXPECT_FALSE(f.hears(1, 0));
}

TEST(Audibility, SetValidatesIndicesWithTypedErrors) {
  AudibilityMatrix m = AudibilityMatrix::full(3);
  EXPECT_THROW(m.set(3, 0, false), AudibilityError);
  EXPECT_THROW(m.set(0, 5, true), AudibilityError);
}

}  // namespace
}  // namespace drmp::net
