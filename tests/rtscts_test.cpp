// RTS/CTS handshake tests (§2.3.2.2 #10: "A Request-to-send/Clear-to-send
// handshake option is only present in WiFi"): codec round-trips, the
// transmit-side handshake state machine (send RTS, await CTS, recover from
// CTS loss), and the receive-side autonomous CTS path through the Event
// Handler and AckRfu — including on a two-DRMP link.
#include <gtest/gtest.h>

#include "drmp/device.hpp"
#include "drmp/testbench.hpp"
#include "mac/wifi_ctrl.hpp"
#include "mac/wifi_frames.hpp"

namespace drmp {
namespace {

Bytes payload(std::size_t n, u8 seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 7 + seed);
  return b;
}

// ---------------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------------

TEST(WifiRtsCtsCodec, RtsRoundTrip) {
  const auto ra = mac::MacAddr::from_u64(0x0102030405ull);
  const auto ta = mac::MacAddr::from_u64(0x0A0B0C0D0E0Full);
  const Bytes rts = mac::wifi::build_rts(ra, ta, 312);
  ASSERT_EQ(rts.size(), mac::wifi::kRtsBytes);
  const auto p = mac::wifi::parse_control(rts);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->fc.type, mac::wifi::FrameType::Control);
  EXPECT_EQ(p->fc.subtype, mac::wifi::Subtype::Rts);
  EXPECT_EQ(p->duration_us, 312u);
  EXPECT_EQ(p->ra, ra);
  EXPECT_EQ(p->ta, ta);
  EXPECT_TRUE(p->fcs_ok);
}

TEST(WifiRtsCtsCodec, CtsRoundTrip) {
  const auto ra = mac::MacAddr::from_u64(0x0A0B0C0D0E0Full);
  const Bytes cts = mac::wifi::build_cts(ra, 100);
  ASSERT_EQ(cts.size(), mac::wifi::kCtsBytes);
  const auto p = mac::wifi::parse_control(cts);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->fc.subtype, mac::wifi::Subtype::Cts);
  EXPECT_EQ(p->ra, ra);
  EXPECT_EQ(p->ta, mac::MacAddr{});  // No TA in the short form.
  EXPECT_TRUE(p->fcs_ok);
}

TEST(WifiRtsCtsCodec, ParseControlAcceptsAckToo) {
  const auto ra = mac::MacAddr::from_u64(0x42);
  const auto p = mac::wifi::parse_control(mac::wifi::build_ack(ra));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->fc.subtype, mac::wifi::Subtype::Ack);
}

TEST(WifiRtsCtsCodec, ParseControlRejectsWrongSizesAndTypes) {
  EXPECT_FALSE(mac::wifi::parse_control(Bytes(13)).has_value());
  EXPECT_FALSE(mac::wifi::parse_control(Bytes(21)).has_value());
  // A 14-byte buffer whose frame-control is a data frame.
  Bytes fake(14, 0);
  EXPECT_FALSE(mac::wifi::parse_control(fake).has_value());
}

TEST(WifiRtsCtsCodec, BitFlipBreaksFcs) {
  Bytes rts = mac::wifi::build_rts(mac::MacAddr::from_u64(1),
                                   mac::MacAddr::from_u64(2), 10);
  rts[5] ^= 0x40;
  const auto p = mac::wifi::parse_control(rts);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->fcs_ok);
}

// ---------------------------------------------------------------------------
// Transmit side: handshake against the scripted peer.
// ---------------------------------------------------------------------------

DrmpConfig rts_config(u32 threshold) {
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.modes[0].ident.rts_threshold = threshold;
  return cfg;
}

TEST(RtsCtsTx, LargeMsduUsesHandshakeAndSucceeds) {
  Testbench tb(rts_config(500));
  const auto out = tb.send_and_wait(Mode::A, payload(900), 600'000'000);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(tb.peer(Mode::A).rts_received(), 1u);
  EXPECT_EQ(tb.peer(Mode::A).ctss_sent(), 1u);
  ASSERT_EQ(tb.peer(Mode::A).received_data_frames().size(), 1u);
  auto& ctrl = static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
  EXPECT_EQ(ctrl.rts_sent, 1u);
  EXPECT_EQ(ctrl.cts_received, 1u);
}

TEST(RtsCtsTx, SmallMsduSkipsHandshake) {
  Testbench tb(rts_config(500));
  const auto out = tb.send_and_wait(Mode::A, payload(200), 600'000'000);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(tb.peer(Mode::A).rts_received(), 0u);
  auto& ctrl = static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
  EXPECT_EQ(ctrl.rts_sent, 0u);
}

TEST(RtsCtsTx, ZeroThresholdDisablesHandshake) {
  Testbench tb(rts_config(0));
  const auto out = tb.send_and_wait(Mode::A, payload(2000), 600'000'000);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(tb.peer(Mode::A).rts_received(), 0u);
}

TEST(RtsCtsTx, CtsLossRetriesRtsWithBackoff) {
  Testbench tb(rts_config(500));
  tb.peer(Mode::A).set_auto_cts(false);
  // Run until the peer has absorbed two RTS attempts, then restore CTS.
  tb.send_async(Mode::A, payload(900));
  ASSERT_TRUE(tb.run_until([&] { return tb.peer(Mode::A).rts_received() >= 2; },
                           2'000'000'000ull));
  tb.peer(Mode::A).set_auto_cts(true);
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 1, 2'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 1u);
  auto& ctrl = static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
  EXPECT_GE(ctrl.rts_sent, 3u);
  EXPECT_EQ(ctrl.cts_received, 1u);
}

TEST(RtsCtsTx, PersistentCtsLossExhaustsRetries) {
  Testbench tb(rts_config(500));
  tb.peer(Mode::A).set_auto_cts(false);
  const auto out = tb.send_and_wait(Mode::A, payload(900), 4'000'000'000ull);
  ASSERT_TRUE(out.completed);
  EXPECT_FALSE(out.success);
  const auto max_retries = mac::timing_for(mac::Protocol::WiFi).max_retries;
  auto& ctrl = static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
  EXPECT_EQ(ctrl.rts_sent, max_retries + 1);
  EXPECT_EQ(tb.peer(Mode::A).received_data_frames().size(), 0u)
      << "no data may fly without a CTS";
}

TEST(RtsCtsTx, FragmentedMsduReservesOncePerBurst) {
  DrmpConfig cfg = rts_config(500);
  cfg.modes[0].ident.frag_threshold = 512;
  Testbench tb(cfg);
  const auto out = tb.send_and_wait(Mode::A, payload(1500), 2'000'000'000ull);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(tb.peer(Mode::A).received_data_frames().size(), 3u);
  // One reservation before the burst (documented simplification: the burst
  // itself is protected by per-fragment ACKs).
  EXPECT_EQ(tb.peer(Mode::A).rts_received(), 1u);
}

// ---------------------------------------------------------------------------
// Receive side: autonomous CTS via Event Handler + AckRfu.
// ---------------------------------------------------------------------------

TEST(RtsCtsRx, RtsAddressedHereGetsAutonomousCts) {
  Testbench tb;
  const auto& id = tb.config().modes[0].ident;
  const Bytes rts = mac::wifi::build_rts(mac::MacAddr::from_u64(id.self_addr),
                                         mac::MacAddr::from_u64(id.peer_addr), 200);
  const u64 phy_sent_before = tb.device().phy_tx(Mode::A)->frames_sent();
  tb.peer(Mode::A).inject_frame(rts, tb.scheduler().now() + 100);
  ASSERT_TRUE(tb.run_until(
      [&] { return tb.device().ack_rfu().ctss_generated() >= 1; }, 200'000'000ull));
  EXPECT_EQ(tb.device().event_handler().rx_ctss_generated(Mode::A), 0u)
      << "counter increments only after the CTS is staged";
  ASSERT_TRUE(tb.run_until(
      [&] { return tb.device().phy_tx(Mode::A)->frames_sent() > phy_sent_before; },
      200'000'000ull))
      << "CTS must actually reach the air";
  EXPECT_EQ(tb.device().event_handler().rx_ctss_generated(Mode::A), 1u);
  // The CPU never saw the RTS: no ISR beyond the host/queue baseline fired.
  auto& ctrl = static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
  EXPECT_EQ(ctrl.rx_delivered, 0u);
}

TEST(RtsCtsRx, RtsForAnotherStationIsIgnored) {
  Testbench tb;
  const auto& id = tb.config().modes[0].ident;
  const Bytes rts = mac::wifi::build_rts(mac::MacAddr::from_u64(0xDEADBEEF),
                                         mac::MacAddr::from_u64(id.peer_addr), 200);
  tb.peer(Mode::A).inject_frame(rts, tb.scheduler().now() + 100);
  tb.run_cycles(2'000'000);  // ~10 ms sim: far beyond the CTS deadline.
  EXPECT_EQ(tb.device().ack_rfu().ctss_generated(), 0u);
}

TEST(RtsCtsRx, CorruptedRtsIsDroppedByFcsCheck) {
  Testbench tb;
  const auto& id = tb.config().modes[0].ident;
  Bytes rts = mac::wifi::build_rts(mac::MacAddr::from_u64(id.self_addr),
                                   mac::MacAddr::from_u64(id.peer_addr), 200);
  rts[6] ^= 0x01;  // Flip an RA bit: FCS now fails.
  tb.peer(Mode::A).inject_frame(rts, tb.scheduler().now() + 100);
  tb.run_cycles(2'000'000);  // ~10 ms sim: far beyond the CTS deadline.
  EXPECT_EQ(tb.device().ack_rfu().ctss_generated(), 0u);
  EXPECT_GE(tb.device().event_handler().rx_bad_frames(Mode::A), 1u);
}

// ---------------------------------------------------------------------------
// The protected fragment's SIFS anchor is latched at arm time (ROADMAP bug:
// the old anchor read RxRfu::last_rx_end() at op *execution*, so a bystander
// frame drained in between re-anchored the CTS-released data).
// ---------------------------------------------------------------------------

TEST(RtsCtsAnchor, ExplicitAnchorIsImmuneToBystanderReanchor) {
  Testbench tb;
  auto& dev = tb.device();
  const auto t = mac::timing_for(mac::Protocol::WiFi);
  const Cycle sifs = dev.timebase().us_to_cycles(t.sifs_us);

  // A first bystander (addressed elsewhere) flows through the receive chain
  // so RxRfu::last_rx_end() holds a value unrelated to our anchor.
  tb.peer(Mode::A).inject_frame(mac::wifi::build_ack(mac::MacAddr::from_u64(0xD00D)),
                                tb.scheduler().now() + 100);
  ASSERT_TRUE(
      tb.run_until([&] { return dev.rx_rfu().last_rx_end() > 0; }, 10'000'000ull));

  // Arm an anchored transmit the way the protocol control does: the anchor
  // words carry the releasing frame's rx-end (here: a point 500 us ahead so
  // the release is observable on the air).
  Bytes image(64);
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = static_cast<u8>(i);
  dev.memory().write_page_bytes(Mode::A, hw::Page::Scratch, image);
  const Cycle anchor = tb.scheduler().now() + 100'000;
  const u64 sent_before = dev.phy_tx(Mode::A)->frames_sent();
  dev.api().Request_RHCP_Service_Ops(
      Mode::A,
      {{rfu::Op::TxFrameWifiAnchored,
        {hw::page_base(Mode::A, hw::Page::Scratch), 0u, 1u | 2u,
         static_cast<Word>(anchor & 0xFFFFFFFFull), static_cast<Word>(anchor >> 32)}}});

  // A second bystander lands — and is drained — between the arm and the
  // anchored release: exactly the window where the old op-execution-time
  // read re-anchored the data to the bystander's (later) end.
  const Cycle before_drain = dev.rx_rfu().last_rx_end();
  tb.peer(Mode::A).inject_frame(mac::wifi::build_ack(mac::MacAddr::from_u64(0xBEEF)),
                                tb.scheduler().now() + 200);
  ASSERT_TRUE(tb.run_until(
      [&] { return dev.rx_rfu().last_rx_end() > before_drain; }, 10'000'000ull));
  ASSERT_LT(tb.scheduler().now(), anchor) << "bystander must drain pre-release";

  ASSERT_TRUE(tb.run_until(
      [&] { return dev.phy_tx(Mode::A)->frames_sent() > sent_before; },
      10'000'000ull));
  EXPECT_EQ(dev.phy_tx(Mode::A)->last_tx_start(), anchor + sifs)
      << "the release must ride the latched anchor, not last_rx_end()";
}

TEST(RtsCtsAnchor, HandshakeWithInjectedBystanderStillPinsTheCtsAnchor) {
  // End-to-end regression: a full RTS/CTS handshake with a bystander frame
  // injected between the CTS and the protected data. The data's start obeys
  // the latched CTS rx-end — it must go out before a bystander-anchored
  // start (bystander end + SIFS + staging) could, and the exchange still
  // completes first try.
  Testbench tb(rts_config(500));
  auto& dev = tb.device();
  const auto t = mac::timing_for(mac::Protocol::WiFi);
  const Cycle sifs = dev.timebase().us_to_cycles(t.sifs_us);

  tb.send_async(Mode::A, payload(900));
  auto& ctrl = static_cast<ctrl::WifiCtrl&>(dev.protocol_ctrl(Mode::A));
  ASSERT_TRUE(tb.run_until([&] { return ctrl.cts_received >= 1; }, 600'000'000ull));
  // The delivery-time snoop latched the CTS's rx-end for the arming ISR.
  const Cycle latch =
      static_cast<Cycle>(dev.memory().cpu_read(
          hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kRespRxEndLo))) |
      (static_cast<Cycle>(dev.memory().cpu_read(
           hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kRespRxEndHi)))
       << 32);
  ASSERT_GT(latch, 0u);
  ASSERT_LE(latch, tb.scheduler().now());

  // Bystander into the CTS -> data window.
  tb.peer(Mode::A).inject_frame(mac::wifi::build_ack(mac::MacAddr::from_u64(0xD00D)),
                                tb.scheduler().now() + 10);

  ASSERT_TRUE(tb.run_until(
      [&] { return !tb.peer(Mode::A).received_data_frames().empty(); },
      600'000'000ull));
  const Cycle data_start = dev.phy_tx(Mode::A)->last_tx_start();
  EXPECT_GE(data_start, latch + sifs) << "SIFS after the CTS holds";
  const Cycle bystander_end = dev.rx_rfu().last_rx_end();
  EXPECT_LT(data_start, bystander_end + sifs)
      << "a bystander-anchored start would wait SIFS after the bystander";
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 1, 600'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 1u);
}

// ---------------------------------------------------------------------------
// Two complete DRMP devices: hardware CTS answers hardware RTS.
// ---------------------------------------------------------------------------

TEST(RtsCtsTwoDevice, FullHandshakeAcrossRealLink) {
  sim::Scheduler sched(200e6);
  sim::TimeBase tbase(200e6);
  DrmpConfig cfg1 = DrmpConfig::standard_three_mode();
  cfg1.modes[0].ident.rts_threshold = 400;
  DrmpConfig cfg2 = DrmpConfig::standard_three_mode();
  std::swap(cfg2.modes[0].ident.self_addr, cfg2.modes[0].ident.peer_addr);
  cfg2.backoff_seed = 0xBEEF;

  phy::Medium medium(mac::Protocol::WiFi, tbase);
  sched.add(medium, "medium");
  DrmpDevice dev1(sched, cfg1, 1);
  DrmpDevice dev2(sched, cfg2, 2);
  dev1.attach_medium(Mode::A, &medium);
  dev2.attach_medium(Mode::A, &medium);

  std::vector<Bytes> delivered;
  dev2.on_deliver = [&](Mode, const Bytes& b) { delivered.push_back(b); };
  u32 done = 0;
  bool ok = false;
  dev1.on_tx_complete = [&](Mode, bool success, u32) {
    ++done;
    ok = success;
  };

  const Bytes msdu = payload(800);
  dev1.host_send(Mode::A, msdu);
  ASSERT_TRUE(sched.run_until([&] { return done > 0; }, 800'000'000ull));
  ASSERT_EQ(done, 1u);
  EXPECT_TRUE(ok);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], msdu);
  // dev2's hardware answered the RTS without CPU involvement.
  EXPECT_EQ(dev2.ack_rfu().ctss_generated(), 1u);
  EXPECT_EQ(dev2.event_handler().rx_ctss_generated(Mode::A), 1u);
  auto& c1 = static_cast<ctrl::WifiCtrl&>(dev1.protocol_ctrl(Mode::A));
  EXPECT_EQ(c1.rts_sent, 1u);
  EXPECT_EQ(c1.cts_received, 1u);
}

}  // namespace
}  // namespace drmp
