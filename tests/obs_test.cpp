// PR-7 observability: the flight recorder's determinism contract (the event
// stream of a contended cell is byte-identical across worker pools and
// idle-skip, and pinned against a golden timeline), the recorder's
// non-perturbation guarantee (recorder-on digests equal the recorder-off
// pins), the metrics registry's hierarchical merge, the scheduler/lane
// execution profile, and the TraceChannel retention cap.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "scenario/scenario_engine.hpp"
#include "sim/trace.hpp"

namespace drmp {
namespace {

// ---- FlightRecorder ring --------------------------------------------------

TEST(FlightRecorder, RetainsEverythingBelowCapacity) {
  obs::FlightRecorder rec(8);
  const u16 t = rec.track("a");
  for (Cycle c = 0; c < 5; ++c) rec.log(c, obs::EventKind::kOffered, t, 1, 2);
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 5u);
  for (Cycle c = 0; c < 5; ++c) EXPECT_EQ(evs[c].cycle, c);
}

TEST(FlightRecorder, RingEvictsOldestAndCountsDrops) {
  obs::FlightRecorder rec(4);
  const u16 t = rec.track("a");
  for (Cycle c = 0; c < 10; ++c) rec.log(c, obs::EventKind::kOffered, t);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest-first: cycles 6..9 survive, in order.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(evs[i].cycle, 6 + i);
}

TEST(FlightRecorder, TrackIdsAreDenseAndStable) {
  obs::FlightRecorder rec;
  EXPECT_EQ(rec.track("medium.A"), 0);
  EXPECT_EQ(rec.track("station1"), 1);
  EXPECT_EQ(rec.track("medium.A"), 0);  // Lookup, not re-registration.
  ASSERT_EQ(rec.tracks().size(), 2u);
  EXPECT_EQ(rec.tracks()[1], "station1");
}

// ---- Metrics registry -----------------------------------------------------

TEST(Metrics, HistogramBucketsByBitWidthAndMerges) {
  obs::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(1024);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 1025u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_EQ(h.buckets[0], 1u);   // value 0
  EXPECT_EQ(h.buckets[1], 1u);   // value 1
  EXPECT_EQ(h.buckets[11], 1u);  // 1024 = bit width 11
  obs::Histogram g;
  g.observe(1024);
  g.merge(h);
  EXPECT_EQ(g.count, 4u);
  EXPECT_EQ(g.buckets[11], 2u);
}

TEST(Metrics, HierarchicalMergeBuildsBreakdownAndTotals) {
  obs::MetricsRegistry dev1, dev2, fleet;
  dev1.add("mac/defers", 3);
  dev2.add("mac/defers", 4);
  dev1.max_gauge("phy/queue_max", 7);
  dev2.max_gauge("phy/queue_max", 5);
  fleet.merge_from(dev1, "station1/");
  fleet.merge_from(dev2, "station2/");
  fleet.merge_from(dev1);
  fleet.merge_from(dev2);
  EXPECT_EQ(fleet.counter("station1/mac/defers"), 3u);
  EXPECT_EQ(fleet.counter("station2/mac/defers"), 4u);
  EXPECT_EQ(fleet.counter("mac/defers"), 7u);  // Unprefixed totals add.
  EXPECT_EQ(fleet.gauge("phy/queue_max"), 7);  // Gauges take the max.
  EXPECT_FALSE(fleet.counter("station3/mac/defers").has_value());
}

TEST(Metrics, TextAndJsonDumpsAreDeterministic) {
  obs::MetricsRegistry r;
  r.add("b/counter", 2);
  r.add("a/counter", 1);
  r.observe("c/hist", 5);
  const std::string json = r.to_json();
  // Ordered maps: "a/counter" serialises before "b/counter" regardless of
  // registration order.
  EXPECT_LT(json.find("a/counter"), json.find("b/counter"));
  EXPECT_NE(json.find("\"c/hist\""), std::string::npos);
  EXPECT_EQ(r.to_text(), r.to_text());
}

// ---- TraceChannel retention cap (unbounded-growth fix) --------------------

TEST(TraceChannel, CapsRetainedEventsAndCountsDrops) {
  sim::TraceChannel ch("sig");
  ch.set_capacity(4);
  for (Cycle c = 0; c < 10; ++c) ch.record(c, static_cast<i64>(c % 2));
  EXPECT_EQ(ch.events().size(), 4u);
  // Cycles 4,6,8 are changes past the cap (counted drops); 5,7,9 match the
  // retained tail value and are suppressed as no-change, not drops.
  EXPECT_EQ(ch.dropped(), 3u);
  // Same-cycle overwrite of the newest retained event still applies at cap.
  ch.record(3, 42);
  EXPECT_EQ(ch.events().size(), 4u);
  EXPECT_EQ(ch.events().back().value, 42);
}

TEST(TraceRecorder, ConstructMutedRecordsNothing) {
  sim::TraceRecorder tr(/*enabled=*/false);
  tr.channel("sig").record(0, 1);
  tr.channel("sig").record(1, 2);
  EXPECT_TRUE(tr.channel("sig").events().empty());
}

// ---- Recorder-on fleet runs ----------------------------------------------

scenario::FleetStats run_contended4(unsigned workers, bool idle_skip,
                                    bool traced,
                                    std::string* timeline = nullptr,
                                    std::string* chrome = nullptr) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::contended_wifi_cell(4, /*seed=*/1,
                                                  /*msdus_per_station=*/3);
  spec.worker_threads = workers;
  spec.idle_skip = idle_skip;
  spec.trace.enabled = traced;
  scenario::ScenarioEngine engine(std::move(spec));
  scenario::FleetStats fs = engine.run();
  if (timeline != nullptr) *timeline = engine.text_timeline();
  if (chrome != nullptr) *chrome = engine.chrome_trace();
  return fs;
}

// Recorder-off pins: the PR-6 digests must survive the instrumentation
// unchanged (every DRMP_OBS site compiles to a null-checked no-op when no
// recorder is attached, and none of the new counters feed a digest).
TEST(RecorderOff, ContendedCellDigestMatchesPin) {
  const scenario::FleetStats fs = run_contended4(1, true, false);
  EXPECT_EQ(fs.full_digest(), 0x215632c897c55d3dull);
}

TEST(RecorderOff, MixedFleetDigestMatchesPin) {
  const scenario::FleetStats fs =
      scenario::ScenarioEngine(
          scenario::ScenarioSpec::mixed_three_standard(8, 1, 2))
          .run();
  EXPECT_EQ(fs.full_digest(), 0x7a40977437a44782ull);
}

// Recorder-on must not perturb the simulation: same digest as the pin.
TEST(RecorderOn, TracingDoesNotPerturbTheDigest) {
  const scenario::FleetStats fs = run_contended4(1, true, true);
  EXPECT_EQ(fs.full_digest(), 0x215632c897c55d3dull);
}

TEST(RecorderOn, TimelineIsByteIdenticalAcrossWorkersAndIdleSkip) {
#if defined(DRMP_OBS_DISABLE)
  GTEST_SKIP() << "flight recorder compiled out";
#endif
  std::string base;
  run_contended4(1, true, true, &base);
  EXPECT_FALSE(base.empty());
  const unsigned worker_settings[] = {1, 0};
  const bool skip_settings[] = {true, false};
  for (const unsigned w : worker_settings) {
    for (const bool s : skip_settings) {
      std::string t;
      run_contended4(w, s, true, &t);
      EXPECT_EQ(t, base) << "workers=" << w << " idle_skip=" << s;
    }
  }
}

TEST(RecorderOn, TimelineMatchesGoldenFile) {
#if defined(DRMP_OBS_DISABLE)
  GTEST_SKIP() << "flight recorder compiled out";
#endif
  std::string timeline;
  run_contended4(1, true, true, &timeline);
  const std::string path =
      std::string(DRMP_SOURCE_DIR) + "/tests/golden/contended4_timeline.txt";
  if (const char* regen = std::getenv("DRMP_REGEN_GOLDEN");
      regen != nullptr && *regen != '\0') {
    std::ofstream out(path);
    out << timeline;
    ASSERT_TRUE(out) << "failed to write " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream f(path);
  ASSERT_TRUE(f) << "missing golden file " << path;
  std::ostringstream golden;
  golden << f.rdbuf();
  EXPECT_EQ(timeline, golden.str())
      << "regenerate with tools/regen_golden_timeline.sh if the protocol "
         "timeline legitimately changed (digest-visible change; the commit "
         "must say so)";
}

TEST(RecorderOn, ChromeTraceIsWellFormedAndTracked) {
#if defined(DRMP_OBS_DISABLE)
  GTEST_SKIP() << "flight recorder compiled out";
#endif
  std::string chrome;
  run_contended4(1, true, true, nullptr, &chrome);
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome.find("\"process_name\""), std::string::npos);
  EXPECT_NE(chrome.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(chrome.find("\"station1\""), std::string::npos);
  EXPECT_NE(chrome.find("\"medium.A\""), std::string::npos);
  EXPECT_NE(chrome.find("\"tx_start\""), std::string::npos);
  // Balanced braces: a cheap structural check without a JSON parser.
  long depth = 0;
  for (const char c : chrome) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// ---- Registry-backed totals & execution profile ---------------------------

TEST(FleetMetrics, RegistryTotalsMatchDeviceStats) {
  const scenario::FleetStats fs = run_contended4(1, true, false);
  ASSERT_FALSE(fs.metrics.empty());
  u64 defers = 0, nav_defers = 0, collisions = 0;
  for (const auto& ds : fs.devices) {
    defers += ds.defers;
    nav_defers += ds.nav_defers;
    for (std::size_t m = 0; m < kNumModes; ++m) collisions += ds.collisions[m];
  }
  EXPECT_EQ(fs.metrics.counter("mac/defers"), defers);
  EXPECT_EQ(fs.metrics.counter("mac/nav_defers"), nav_defers);
  EXPECT_EQ(fs.metrics.counter("medium/collisions"), collisions);
  EXPECT_EQ(fs.total_defers(), defers);
  EXPECT_EQ(fs.total_collisions(), collisions);
  // The per-station breakdown namespaces under cell<n>/station<id>/.
  EXPECT_TRUE(fs.metrics.counter("cell0/station1/mac/defers").has_value());
}

TEST(FleetMetrics, SchedulerProfileIsPopulated) {
  const scenario::FleetStats fs = run_contended4(1, true, false);
  EXPECT_GT(fs.ticks_executed, 0u);
  EXPECT_GT(fs.medium_ticks_executed, 0u);
  EXPECT_GT(fs.lockstep_rounds, 0u);
  // idle_skip on: the medium spends most of the run skipped, and the
  // engine-profile names sit in the registry next to the protocol counters.
  EXPECT_GT(fs.medium_ticks_skipped, 0u);
  EXPECT_TRUE(fs.metrics.counter("sched/lockstep_rounds").has_value());
  EXPECT_TRUE(fs.metrics.counter("sched/ff_cycles").has_value());
}

}  // namespace
}  // namespace drmp
