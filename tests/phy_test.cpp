// PHY boundary tests: translational buffers, medium occupancy/CCA timing,
// PHY transmit gating (earliest-start), and the scripted peer's behaviours.
#include <gtest/gtest.h>

#include "mac/wifi_frames.hpp"
#include "phy/buffers.hpp"
#include "phy/channel.hpp"
#include "phy/phy_model.hpp"
#include "sim/scheduler.hpp"

namespace drmp::phy {
namespace {

TEST(TxBuffer, WordAndBytePushesAssembleFrame) {
  TxBuffer buf;
  buf.begin_frame();
  buf.push_word(0x44332211);
  buf.push_byte(0x55);
  buf.end_frame(5, 1234);
  ASSERT_TRUE(buf.frame_pending());
  const auto e = buf.pop();
  EXPECT_EQ(e.bytes, (Bytes{0x11, 0x22, 0x33, 0x44, 0x55}));
  EXPECT_EQ(e.earliest_start, 1234u);
  EXPECT_FALSE(buf.frame_pending());
}

TEST(TxBuffer, EndFrameTruncatesWordPadding) {
  TxBuffer buf;
  buf.begin_frame();
  buf.push_word(0xAABBCCDD);
  buf.push_word(0x11223344);
  buf.end_frame(6, 0);  // 8 bytes pushed, 6 valid.
  EXPECT_EQ(buf.pop().bytes.size(), 6u);
}

TEST(TxBuffer, QueuesMultipleFramesFifo) {
  TxBuffer buf;
  for (int i = 0; i < 3; ++i) {
    buf.begin_frame();
    buf.push_byte(static_cast<u8>(i));
    buf.end_frame(1, 0);
  }
  EXPECT_EQ(buf.depth(), 3u);
  EXPECT_EQ(buf.pop().bytes[0], 0);
  EXPECT_EQ(buf.pop().bytes[0], 1);
  EXPECT_EQ(buf.pop().bytes[0], 2);
}

TEST(RxBuffer, PeekWordPacksLittleEndian) {
  RxBuffer buf;
  buf.deliver({0x01, 0x02, 0x03, 0x04, 0x05}, 42);
  ASSERT_TRUE(buf.frame_ready());
  EXPECT_EQ(buf.frame_bytes(), 5u);
  EXPECT_EQ(buf.frame_rx_end(), 42u);
  EXPECT_EQ(buf.peek_word(0), 0x04030201u);
  EXPECT_EQ(buf.peek_word(1), 0x00000005u);  // Zero padded.
}

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : sched(200e6), tb(200e6), medium(mac::Protocol::WiFi, tb) {
    sched.add(medium, "medium");
  }
  sim::Scheduler sched;
  sim::TimeBase tb;
  Medium medium;
};

TEST_F(MediumTest, FrameOccupiesAirForItsByteTime) {
  // 1000 bytes at 11 Mbps = 727.3 us = 145455 cycles @200 MHz.
  sched.run_cycles(10);
  const Cycle end = medium.begin_tx(Bytes(1000, 0xAA), 1);
  EXPECT_NEAR(static_cast<double>(end - medium.now()), 1000.0 * 8.0 / 11e6 * 200e6, 2.0);
  EXPECT_TRUE(medium.busy());
  sched.run_until([&] { return !medium.busy(); }, 200000);
  EXPECT_GE(medium.now(), end);
}

TEST_F(MediumTest, IdleForTracksGap) {
  medium.begin_tx(Bytes(10, 1), 1);
  sched.run_until([&] { return !medium.busy(); }, 100000);
  const Cycle idle0 = medium.idle_for();
  sched.run_cycles(100);
  EXPECT_EQ(medium.idle_for(), idle0 + 100);
}

TEST_F(MediumTest, DeliversToClientsExceptSource) {
  struct Sink : MediumClient {
    int got = 0;
    void on_frame(const Bytes&, Cycle, int source) override {
      if (source != 7) ++got;
    }
  } sink;
  medium.attach(sink);
  medium.begin_tx(Bytes(20, 2), 7);   // Own frame: filtered by the sink.
  sched.run_until([&] { return !medium.busy(); }, 100000);
  sched.run_cycles(2);
  EXPECT_EQ(sink.got, 0);
  medium.begin_tx(Bytes(20, 2), 9);
  sched.run_until([&] { return !medium.busy(); }, 100000);
  sched.run_cycles(2);
  EXPECT_EQ(sink.got, 1);
}

TEST(PhyTxTest, HonoursEarliestStart) {
  sim::Scheduler sched(200e6);
  sim::TimeBase tb(200e6);
  Medium medium(mac::Protocol::WiFi, tb);
  TxBuffer buf;
  PhyTx ptx(buf, medium, 1);
  sched.add(medium, "m");
  sched.add(ptx, "ptx");

  buf.begin_frame();
  buf.push_byte(0xAB);
  buf.end_frame(1, 5000);  // Not before cycle 5000.
  sched.run_cycles(1000);
  EXPECT_EQ(ptx.frames_sent(), 0u);
  sched.run_until([&] { return ptx.frames_sent() == 1; }, 100000);
  EXPECT_GE(ptx.last_tx_start(), 5000u);
  EXPECT_LE(ptx.last_tx_start(), 5002u);
}

TEST(PhyTxTest, DefersWhileMediumBusy) {
  sim::Scheduler sched(200e6);
  sim::TimeBase tb(200e6);
  Medium medium(mac::Protocol::WiFi, tb);
  TxBuffer buf;
  PhyTx ptx(buf, medium, 1);
  sched.add(medium, "m");
  sched.add(ptx, "ptx");

  sched.run_cycles(1);
  const Cycle other_end = medium.begin_tx(Bytes(100, 1), 99);  // Foreign frame.
  buf.begin_frame();
  buf.push_byte(0x01);
  buf.end_frame(1, 0);
  sched.run_until([&] { return ptx.frames_sent() == 1; }, 1'000'000);
  EXPECT_GE(ptx.last_tx_start(), other_end);
}

TEST(ScriptedPeerTest, AcksWifiDataAfterSifs) {
  sim::Scheduler sched(200e6);
  sim::TimeBase tb(200e6);
  Medium medium(mac::Protocol::WiFi, tb);
  ScriptedPeer peer(medium, tb, 100);
  sched.add(medium, "m");
  sched.add(peer, "peer");

  struct Sink : MediumClient {
    Bytes last;
    Cycle at = 0;
    void on_frame(const Bytes& f, Cycle end, int source) override {
      if (source == 100) {
        last = f;
        at = end;
      }
    }
  } sink;
  medium.attach(sink);

  mac::wifi::DataHeader h;
  h.addr2 = mac::MacAddr::from_u64(0x112233445566ull);
  const Bytes mpdu = mac::wifi::build_data_mpdu(h, Bytes(50, 3));
  sched.run_cycles(1);
  const Cycle data_end = medium.begin_tx(mpdu, 1);
  sched.run_until([&] { return !sink.last.empty(); }, 1'000'000);
  ASSERT_FALSE(sink.last.empty());
  EXPECT_TRUE(mac::wifi::is_ack(sink.last, h.addr2));
  // ACK started exactly SIFS (2000 cycles) after the data frame ended.
  const Cycle ack_air = medium.frame_air_cycles(sink.last.size());
  EXPECT_NEAR(static_cast<double>(sink.at - ack_air - data_end), 2000.0, 3.0);
}

TEST(ScriptedPeerTest, DropInjectionSuppressesAck) {
  sim::Scheduler sched(200e6);
  sim::TimeBase tb(200e6);
  Medium medium(mac::Protocol::WiFi, tb);
  ScriptedPeer peer(medium, tb, 100);
  peer.set_drop_every(1);  // Drop everything.
  sched.add(medium, "m");
  sched.add(peer, "peer");

  mac::wifi::DataHeader h;
  sched.run_cycles(1);
  medium.begin_tx(mac::wifi::build_data_mpdu(h, Bytes(10, 1)), 1);
  sched.run_cycles(100000);
  EXPECT_EQ(peer.acks_sent(), 0u);
  EXPECT_EQ(peer.frames_dropped(), 1u);
  EXPECT_EQ(peer.received_data_frames().size(), 1u);  // Seen, not ACKed.
}

TEST(ScriptedPeerTest, IgnoresCorruptFramesOnAckPath) {
  sim::Scheduler sched(200e6);
  sim::TimeBase tb(200e6);
  Medium medium(mac::Protocol::WiFi, tb);
  ScriptedPeer peer(medium, tb, 100);
  sched.add(medium, "m");
  sched.add(peer, "peer");

  mac::wifi::DataHeader h;
  Bytes mpdu = mac::wifi::build_data_mpdu(h, Bytes(10, 1));
  mpdu[30] ^= 0xFF;  // Corrupt -> FCS fails -> no ACK.
  sched.run_cycles(1);
  medium.begin_tx(mpdu, 1);
  sched.run_cycles(100000);
  EXPECT_EQ(peer.acks_sent(), 0u);
}

}  // namespace
}  // namespace drmp::phy
