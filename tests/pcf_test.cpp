// WiFi PCF tests (§2.3.2.1 commonalities #5 "Polling Access", #8
// "Superframes" and #11 "Piggybacking of ACKs"): the scripted peer acts as
// point coordinator running a contention-free period; the DRMP station
// answers CF-Polls with data or Null frames through the PcfRespond access
// path, and uplink data is acknowledged only by piggybacked CF-Acks.
#include <gtest/gtest.h>

#include "drmp/testbench.hpp"
#include "mac/wifi_ctrl.hpp"
#include "mac/wifi_frames.hpp"
#include "sim/stats.hpp"

namespace drmp {
namespace {

Bytes payload(std::size_t n, u8 seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 5 + seed);
  return b;
}

DrmpConfig pcf_config(u32 frag_threshold = 1024) {
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.modes[0].ident.pcf_poll_mode = true;
  cfg.modes[0].ident.frag_threshold = frag_threshold;
  return cfg;
}

ctrl::WifiCtrl& wifi(Testbench& tb) {
  return static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
}

mac::MacAddr station_addr(const Testbench& tb) {
  return mac::MacAddr::from_u64(tb.config().modes[0].ident.self_addr);
}

TEST(PcfTest, PolledStationSendsDataAckedByPiggyback) {
  Testbench tb(pcf_config());
  tb.send_async(Mode::A, payload(400));
  // Give the station time to prepare (seq+encrypt), then run a 3-poll CFP.
  tb.run_cycles(200'000);
  tb.peer(Mode::A).begin_cfp(tb.scheduler().now() + 1000, 3, 800.0, station_addr(tb));
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 1, 2'000'000'000ull));
  // Let the remainder of the CFP (polls 2-3, Null answers, CF-End) play out.
  ASSERT_TRUE(tb.run_until([&] { return !tb.peer(Mode::A).cfp_active(); },
                           2'000'000'000ull));
  tb.run_cycles(300'000);
  EXPECT_EQ(tb.tx_successes(Mode::A), 1u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_data_received(), 1u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_polls_sent(), 3u);
  // The acknowledgement was the piggybacked CF-Ack — no ACK frames at all.
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), 0u);
  EXPECT_GE(wifi(tb).cf_acks_received, 1u);
  EXPECT_EQ(wifi(tb).polls_answered_with_data, 1u);
  // Remaining polls after completion were answered with Null frames.
  EXPECT_GE(tb.peer(Mode::A).cfp_nulls_received(), 1u);
}

TEST(PcfTest, EmptyQueueAnswersEveryPollWithNull) {
  Testbench tb(pcf_config());
  tb.peer(Mode::A).begin_cfp(tb.scheduler().now() + 1000, 2, 600.0, station_addr(tb));
  ASSERT_TRUE(tb.run_until([&] { return !tb.peer(Mode::A).cfp_active(); },
                           1'000'000'000ull));
  tb.run_cycles(300'000);  // Let the last Null land.
  EXPECT_EQ(tb.peer(Mode::A).cfp_polls_sent(), 2u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_nulls_received(), 2u);
  EXPECT_EQ(wifi(tb).polls_answered_with_null, 2u);
  EXPECT_EQ(wifi(tb).polls_answered_with_data, 0u);
}

TEST(PcfTest, FragmentedMsduSendsOneFragmentPerPoll) {
  Testbench tb(pcf_config(/*frag_threshold=*/512));
  tb.send_async(Mode::A, payload(1200));  // 3 fragments.
  tb.run_cycles(200'000);
  tb.peer(Mode::A).begin_cfp(tb.scheduler().now() + 1000, 5, 900.0, station_addr(tb));
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 1, 4'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 1u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_data_received(), 3u);
  EXPECT_EQ(wifi(tb).polls_answered_with_data, 3u);
  EXPECT_GE(wifi(tb).cf_acks_received, 3u);
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), 0u);
}

TEST(PcfTest, BatchedSchedulingMatchesLegacyThroughSifsResponse) {
  // The PCF response path is the last carrier-gated poll loop to receive a
  // quiescence bound (ROADMAP PR-3 follow-up): the BackoffRfu's
  // SifsResponse phase now sleeps against cca_idle_for()/cca_clear_at().
  // Drive the identical scripted CFP through the legacy per-cycle path and
  // the batched idle-skip path and require identical protocol outcomes and
  // identical per-tick busy accounting — the bit-identity contract.
  auto run = [](bool batched) {
    Testbench tb(pcf_config());
    auto step = [&](Cycle n) {
      if (batched) {
        tb.scheduler().run_cycles_batched(n);
      } else {
        tb.run_cycles(n);
      }
    };
    tb.send_async(Mode::A, payload(400));
    step(200'000);
    tb.peer(Mode::A).begin_cfp(tb.scheduler().now() + 1000, 3, 800.0,
                               station_addr(tb));
    step(2'000'000);  // Generous: the whole CFP plus the CF-End.
    sim::Digest d;
    d.mix(tb.tx_successes(Mode::A))
        .mix(tb.peer(Mode::A).cfp_data_received())
        .mix(tb.peer(Mode::A).cfp_nulls_received())
        .mix(tb.peer(Mode::A).cfp_polls_sent())
        .mix(wifi(tb).polls_answered_with_data)
        .mix(wifi(tb).polls_answered_with_null)
        .mix(wifi(tb).cf_acks_received)
        .mix(tb.device().backoff_rfu().busy_cycles())
        .mix(tb.device().backoff_rfu().last_wait_cycles())
        .mix(tb.scheduler().now());
    return d.value();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(PcfTest, CfEndAckCompletesTheLastFragment) {
  // Exactly as many polls as fragments: the final fragment's CF-Ack arrives
  // piggybacked on the CF-End that closes the period.
  Testbench tb(pcf_config(/*frag_threshold=*/512));
  tb.send_async(Mode::A, payload(800));  // 2 fragments.
  tb.run_cycles(200'000);
  tb.peer(Mode::A).begin_cfp(tb.scheduler().now() + 1000, 2, 900.0, station_addr(tb));
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 1, 4'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 1u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_data_received(), 2u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_polls_sent(), 2u);
  EXPECT_EQ(wifi(tb).cf_acks_received, 2u);
}

TEST(PcfTest, PollsForAnotherStationAreIgnored) {
  Testbench tb(pcf_config());
  tb.send_async(Mode::A, payload(300));
  tb.run_cycles(200'000);
  tb.peer(Mode::A).begin_cfp(tb.scheduler().now() + 1000, 2, 600.0,
                             mac::MacAddr::from_u64(0xDEADBEEFCAFEull));
  ASSERT_TRUE(tb.run_until([&] { return !tb.peer(Mode::A).cfp_active(); },
                           1'000'000'000ull));
  tb.run_cycles(300'000);
  EXPECT_EQ(wifi(tb).polls_answered_with_data, 0u);
  EXPECT_EQ(wifi(tb).polls_answered_with_null, 0u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_data_received(), 0u);
  // The station still holds its MSDU for a CFP that addresses it.
  EXPECT_EQ(wifi(tb).tx_state(), ctrl::WifiCtrl::kAwaitPoll);
}

TEST(PcfTest, SecondCfpDeliversTheHeldMsdu) {
  // Superframe behaviour (#8): a CFP that missed the station is followed by
  // another; the held MSDU goes out then.
  Testbench tb(pcf_config());
  tb.send_async(Mode::A, payload(300));
  tb.run_cycles(200'000);
  tb.peer(Mode::A).begin_cfp(tb.scheduler().now() + 1000, 1, 600.0,
                             mac::MacAddr::from_u64(0xDEADBEEFCAFEull));
  ASSERT_TRUE(tb.run_until([&] { return !tb.peer(Mode::A).cfp_active(); },
                           1'000'000'000ull));
  tb.peer(Mode::A).begin_cfp(tb.scheduler().now() + 200'000, 2, 800.0, station_addr(tb));
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 1, 2'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 1u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_data_received(), 1u);
}

TEST(PcfTest, BackToBackMsdusAcrossPolls) {
  // After the first MSDU completes mid-CFP, the next one is prepared and
  // transmitted on a later poll of the same period.
  Testbench tb(pcf_config());
  tb.send_async(Mode::A, payload(300, 1));
  tb.send_async(Mode::A, payload(300, 2));
  tb.run_cycles(200'000);
  tb.peer(Mode::A).begin_cfp(tb.scheduler().now() + 1000, 6, 800.0, station_addr(tb));
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 2, 4'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 2u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_data_received(), 2u);
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), 0u);
}

TEST(PcfTest, PcfFramesRoundTripInCodec) {
  // CF-Poll / CF-Ack+CF-Poll are data MPDUs with empty bodies; CF-End is a
  // 20-byte control frame.
  mac::wifi::DataHeader h;
  h.fc.type = mac::wifi::FrameType::Data;
  h.fc.subtype = mac::wifi::Subtype::CfAckCfPoll;
  h.addr1 = mac::MacAddr::from_u64(0x1);
  const Bytes poll = mac::wifi::build_data_mpdu(h, {});
  const auto p = mac::wifi::parse_data_mpdu(poll);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hdr.fc.subtype, mac::wifi::Subtype::CfAckCfPoll);
  EXPECT_TRUE(p->hcs_ok);
  EXPECT_TRUE(p->fcs_ok);
  EXPECT_TRUE(p->body.empty());

  const auto bssid = mac::MacAddr::from_u64(0x42);
  for (const bool ack : {false, true}) {
    const Bytes end = mac::wifi::build_cf_end(mac::MacAddr::from_u64(0xFFFFFFFFFFFFull),
                                              bssid, ack);
    ASSERT_EQ(end.size(), mac::wifi::kCfEndBytes);
    const auto c = mac::wifi::parse_control(end);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->fc.subtype,
              ack ? mac::wifi::Subtype::CfEndAck : mac::wifi::Subtype::CfEnd);
    EXPECT_EQ(c->ta, bssid);
    EXPECT_TRUE(c->fcs_ok);
  }
}

}  // namespace
}  // namespace drmp
