// MAC frame codec tests: round-trips, redundancy checks, error detection,
// and the cross-protocol overlaps the thesis's analysis identified.
#include <gtest/gtest.h>

#include "crypto/crc.hpp"
#include "mac/protocol.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp::mac {
namespace {

Bytes payload(std::size_t n, u8 seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 13 + seed);
  return b;
}

// ------------------------------------------------------------------ WiFi

TEST(WifiFrames, FrameControlRoundTrip) {
  wifi::FrameControl fc;
  fc.type = wifi::FrameType::Data;
  fc.more_frag = true;
  fc.retry = true;
  fc.protected_frame = true;
  EXPECT_EQ(wifi::FrameControl::decode(fc.encode()), fc);
}

TEST(WifiFrames, DataMpduRoundTrip) {
  wifi::DataHeader h;
  h.addr1 = MacAddr::from_u64(0x0A0B0C0D0E0Full);
  h.addr2 = MacAddr::from_u64(0x112233445566ull);
  h.addr3 = h.addr1;
  h.seq_num = 1234;
  h.frag_num = 5;
  const Bytes body = payload(321);
  const Bytes mpdu = wifi::build_data_mpdu(h, body);
  EXPECT_EQ(mpdu.size(), wifi::kHdrBytes + wifi::kHcsBytes + body.size() + wifi::kFcsBytes);

  const auto parsed = wifi::parse_data_mpdu(mpdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->hcs_ok);
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->hdr, h);
  EXPECT_EQ(parsed->body, body);
}

TEST(WifiFrames, CorruptedHeaderFailsHcsOnly) {
  wifi::DataHeader h;
  h.seq_num = 7;
  Bytes mpdu = wifi::build_data_mpdu(h, payload(64));
  mpdu[4] ^= 0xFF;  // Corrupt addr1.
  const auto parsed = wifi::parse_data_mpdu(mpdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->hcs_ok);
  EXPECT_FALSE(parsed->fcs_ok);  // FCS covers the header too.
}

TEST(WifiFrames, CorruptedBodyFailsFcsButNotHcs) {
  wifi::DataHeader h;
  Bytes mpdu = wifi::build_data_mpdu(h, payload(64));
  mpdu[wifi::kHdrBytes + wifi::kHcsBytes + 10] ^= 0x01;
  const auto parsed = wifi::parse_data_mpdu(mpdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->hcs_ok);
  EXPECT_FALSE(parsed->fcs_ok);
}

TEST(WifiFrames, AckFrameRecognized) {
  const MacAddr ra = MacAddr::from_u64(0xAABBCCDDEEFFull);
  const Bytes ack = wifi::build_ack(ra);
  EXPECT_EQ(ack.size(), wifi::kAckBytes);
  EXPECT_TRUE(wifi::is_ack(ack, ra));
  EXPECT_FALSE(wifi::is_ack(ack, MacAddr::from_u64(1)));
}

TEST(WifiFrames, TooShortFrameRejected) {
  EXPECT_FALSE(wifi::parse_data_mpdu(payload(10)).has_value());
}

// ------------------------------------------------------------------- UWB

TEST(UwbFrames, HeaderRoundTrip) {
  uwb::Header h;
  h.type = uwb::FrameType::Data;
  h.ack_policy = uwb::AckPolicy::ImmAck;
  h.sec = true;
  h.pnid = 0xBEEF;
  h.dest_id = 2;
  h.src_id = 1;
  h.msdu_num = 300;
  h.frag_num = 3;
  h.last_frag_num = 7;
  h.stream_index = 5;
  EXPECT_EQ(uwb::Header::decode(h.encode()), h);
}

TEST(UwbFrames, DataFrameRoundTrip) {
  uwb::Header h;
  h.type = uwb::FrameType::Data;
  h.msdu_num = 99;
  const Bytes body = payload(500);
  const Bytes f = uwb::build_data_frame(h, body);
  const auto parsed = uwb::parse_frame(f);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->hcs_ok);
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->hdr, h);
  EXPECT_EQ(parsed->body, body);
}

TEST(UwbFrames, ImmAckIsHeaderOnly) {
  const Bytes ack = uwb::build_imm_ack(0xBEEF, 1, 2);
  EXPECT_EQ(ack.size(), uwb::kImmAckBytes);
  const auto parsed = uwb::parse_frame(ack);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->hcs_ok);
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->hdr.type, uwb::FrameType::ImmAck);
  EXPECT_TRUE(parsed->body.empty());
}

TEST(UwbFrames, WifiAndUwbShareTheSameHcs) {
  // Thesis §2.3.2.1 #1: "For WiFi and UWB, it is the exact same 16-bit CRC."
  const Bytes data = payload(24);
  EXPECT_EQ(crypto::Crc16Ccitt::compute(data), crypto::Crc16Ccitt::compute(data));
  // The deeper claim: both codecs use Crc16Ccitt — verified by computing the
  // HCS fields directly.
  wifi::DataHeader wh;
  const Bytes wifi_mpdu = wifi::build_data_mpdu(wh, {});
  const u16 wifi_hcs = get_le16(wifi_mpdu, wifi::kHdrBytes);
  EXPECT_EQ(wifi_hcs, crypto::Crc16Ccitt::compute(
                          std::span<const u8>(wifi_mpdu.data(), wifi::kHdrBytes)));
  uwb::Header uh;
  const Bytes uwb_f = uwb::build_data_frame(uh, {});
  const u16 uwb_hcs = get_le16(uwb_f, uwb::kHdrBytes);
  EXPECT_EQ(uwb_hcs, crypto::Crc16Ccitt::compute(
                         std::span<const u8>(uwb_f.data(), uwb::kHdrBytes)));
}

// ----------------------------------------------------------------- WiMAX

TEST(WimaxFrames, GmhRoundTripWithHcs) {
  wimax::GenericMacHeader h;
  h.ec = true;
  h.ci = true;
  h.eks = 2;
  h.len = 1234;
  h.cid = 0xABCD;
  const Bytes gmh = h.encode();
  ASSERT_EQ(gmh.size(), wimax::kGmhBytes);
  bool hcs_ok = false;
  const auto d = wimax::GenericMacHeader::decode(gmh, &hcs_ok);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(hcs_ok);
  EXPECT_EQ(*d, h);
}

TEST(WimaxFrames, GmhHcsDetectsCorruption) {
  wimax::GenericMacHeader h;
  h.cid = 0x1111;
  h.len = 100;
  Bytes gmh = h.encode();
  gmh[3] ^= 0x10;
  bool hcs_ok = true;
  (void)wimax::GenericMacHeader::decode(gmh, &hcs_ok);
  EXPECT_FALSE(hcs_ok);
}

TEST(WimaxFrames, SingleMpduRoundTripWithCrc) {
  const Bytes body = payload(777);
  const Bytes mpdu = wimax::build_mpdu(0x1234, {}, body, /*with_crc=*/true);
  const auto p = wimax::parse_mpdu(mpdu);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->hcs_ok);
  EXPECT_TRUE(p->crc_present);
  EXPECT_TRUE(p->crc_ok);
  EXPECT_EQ(p->gmh.cid, 0x1234);
  EXPECT_EQ(p->payload, body);
}

TEST(WimaxFrames, CrcIsOptional) {
  // Thesis §2.3.2.1 #2: "Frame Check Sequence ... For WiMAX it's optional."
  const Bytes mpdu = wimax::build_mpdu(7, {}, payload(100), /*with_crc=*/false);
  const auto p = wimax::parse_mpdu(mpdu);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->crc_present);
  EXPECT_EQ(p->payload.size(), 100u);
}

TEST(WimaxFrames, FragmentedMpduCarriesSubheader) {
  wimax::FragSubheader fs;
  fs.fc = wimax::FragState::Middle;
  fs.fsn = 11;
  const Bytes mpdu = wimax::build_mpdu(9, fs, payload(64), true);
  const auto p = wimax::parse_mpdu(mpdu);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->frag.has_value());
  EXPECT_EQ(*p->frag, fs);
  EXPECT_EQ(p->payload.size(), 64u);
}

TEST(WimaxFrames, PackedMpduRoundTrip) {
  std::vector<wimax::PackedSdu> sdus;
  for (int i = 0; i < 3; ++i) {
    wimax::PackedSdu s;
    s.sh.fc = wimax::FragState::Unfragmented;
    s.sh.fsn = static_cast<u8>(i);
    s.payload = payload(50 + 17 * static_cast<std::size_t>(i), static_cast<u8>(i));
    sdus.push_back(s);
  }
  const Bytes mpdu = wimax::build_packed_mpdu(0x2222, sdus, true);
  const auto p = wimax::parse_mpdu(mpdu);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->hcs_ok);
  EXPECT_TRUE(p->crc_ok);
  ASSERT_EQ(p->packed.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(p->packed[static_cast<std::size_t>(i)].payload, sdus[static_cast<std::size_t>(i)].payload);
  }
}

TEST(WimaxFrames, LenFieldBoundsEnforced) {
  // 11-bit LEN: an MPDU longer than the field allows must be rejected by
  // parse when the length lies.
  const Bytes mpdu = wimax::build_mpdu(1, {}, payload(10), false);
  Bytes truncated(mpdu.begin(), mpdu.begin() + 5);
  EXPECT_FALSE(wimax::parse_mpdu(truncated).has_value());
}

// -------------------------------------------------------- protocol timing

TEST(ProtocolTiming, WifiDcfConstants) {
  const auto t = timing_for(Protocol::WiFi);
  EXPECT_DOUBLE_EQ(t.sifs_us, 10.0);
  EXPECT_DOUBLE_EQ(t.difs_us, 50.0);
  EXPECT_DOUBLE_EQ(t.slot_us, 20.0);
  EXPECT_EQ(t.cw_min, 31u);
}

TEST(ProtocolTiming, AllRatesPositive) {
  for (auto p : {Protocol::WiFi, Protocol::WiMax, Protocol::Uwb}) {
    EXPECT_GT(timing_for(p).line_rate_bps, 0.0);
  }
}

// Parameterized round-trip sweep across payload sizes (property-style).
class WifiMpduSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WifiMpduSweep, RoundTripAtSize) {
  wifi::DataHeader h;
  h.seq_num = static_cast<u16>(GetParam());
  const Bytes body = payload(GetParam());
  const auto parsed = wifi::parse_data_mpdu(wifi::build_data_mpdu(h, body));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->hcs_ok && parsed->fcs_ok);
  EXPECT_EQ(parsed->body, body);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WifiMpduSweep,
                         ::testing::Values(0, 1, 3, 4, 63, 64, 65, 512, 1024, 1500, 2304));

}  // namespace
}  // namespace drmp::mac
