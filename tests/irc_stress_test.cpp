// IRC stress & race coverage: the TH_M "stale configuration" redo path
// (an RFU reconfigured away between TH_R's check and TH_M's use), request
// storms across all modes with data-integrity checks, and interleaving
// sweeps that perturb the controllers' relative phases.
#include <gtest/gtest.h>

#include "drmp/testbench.hpp"
#include "rfu/rfu_ids.hpp"

namespace drmp {
namespace {

using hw::Page;
using hw::page_base;
using irc::OpCall;
using irc::ServiceRequest;
using rfu::Op;

Bytes patterned(std::size_t n, u8 seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 3 + seed);
  return b;
}

/// Offset-parameterized: flip the shared Crypto RFU's recorded configuration
/// to a conflicting state N cycles after submitting mode A's request. For
/// small N the TH_R sees the stale state and reconfigures up front; for
/// larger N the TH_M finds the mismatch after TH_R cleared the op and must
/// take the redo path. Either way the request must complete with intact
/// data.
class RedoSweep : public ::testing::TestWithParam<int> {};

TEST_P(RedoSweep, StaleConfigurationAlwaysRecovered) {
  Testbench tb;
  auto& mem = tb.device().memory();
  auto& irc = tb.device().irc();
  const Bytes data = patterned(256, 7);
  mem.write_page_bytes(Mode::A, Page::Raw, data);

  bool done = false;
  irc.on_complete = [&](Mode, const ServiceRequest&) { done = true; };
  ServiceRequest req;
  req.from_cpu = false;
  req.ops = {
      OpCall{Op::EncryptRc4,
             {page_base(Mode::A, Page::Raw), page_base(Mode::A, Page::Crypt), 3, 0}},
      OpCall{Op::DecryptRc4,
             {page_base(Mode::A, Page::Crypt), page_base(Mode::A, Page::Defrag), 3, 0}},
  };
  irc.submit(Mode::A, std::move(req));

  tb.run_cycles(static_cast<Cycle>(GetParam()));
  // Simulate another agent having reconfigured the RFU behind the table's
  // back: poison the recorded state so it mismatches what the ops need.
  // (Only meaningful while the entry isn't actively held mid-reconfig; the
  // handlers must cope in every phase.)
  auto& entry = tb.device().irc().rfu_table().entry(rfu::kCryptoRfu);
  if (!entry.in_use) {
    entry.c_state = rfu::cfg::kCryptoDes;
  }

  ASSERT_TRUE(tb.run_until([&] { return done; }, 40'000'000)) << "offset " << GetParam();
  EXPECT_EQ(tb.device().memory().read_page_bytes(Mode::A, Page::Defrag), data);
}

INSTANTIATE_TEST_SUITE_P(Offsets, RedoSweep,
                         ::testing::Values(0, 3, 7, 15, 40, 120, 400, 900));

TEST(IrcStress, RequestStormAllModesAllRfus) {
  // Hammer the IRC with interleaved multi-op requests on all three modes,
  // each chaining crypto round-trips through different pages; verify every
  // result byte.
  Testbench tb;
  auto& mem = tb.device().memory();
  auto& irc = tb.device().irc();

  int completions = 0;
  irc.on_complete = [&](Mode, const ServiceRequest&) { ++completions; };

  const int kRounds = 4;
  std::array<Bytes, kNumModes> data;
  for (std::size_t i = 0; i < kNumModes; ++i) {
    data[i] = patterned(512, static_cast<u8>(i + 1));
    mem.write_page_bytes(mode_from_index(i), Page::Raw, data[i]);
  }
  const Op enc[3] = {Op::EncryptRc4, Op::EncryptDes, Op::EncryptAes};
  const Op dec[3] = {Op::DecryptRc4, Op::DecryptDes, Op::DecryptAes};
  for (int r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kNumModes; ++i) {
      const Mode m = mode_from_index(i);
      ServiceRequest req;
      req.from_cpu = false;
      req.ops = {
          OpCall{enc[i], {page_base(m, Page::Raw), page_base(m, Page::Crypt),
                          static_cast<Word>(r), 0}},
          OpCall{dec[i], {page_base(m, Page::Crypt), page_base(m, Page::Defrag),
                          static_cast<Word>(r), 0}},
          OpCall{Op::SeqAssign,
                 {static_cast<Word>(i), hw::ctrl_status_addr(m, hw::CtrlWord::kSeqOut)}},
      };
      irc.submit(m, std::move(req));
    }
  }
  ASSERT_TRUE(tb.run_until([&] { return completions == kRounds * 3; }, 400'000'000));
  for (std::size_t i = 0; i < kNumModes; ++i) {
    EXPECT_EQ(mem.read_page_bytes(mode_from_index(i), Page::Defrag), data[i])
        << "mode " << i;
    // Seq counters advanced once per round.
    EXPECT_EQ(mem.cpu_read(hw::ctrl_status_addr(mode_from_index(i), hw::CtrlWord::kSeqOut)),
              static_cast<Word>(kRounds - 1));
  }
  // The crypto RFU cycled through all three cipher states repeatedly.
  EXPECT_GE(tb.device().crypto_rfu().reconfig_count(), 6u);
}

TEST(IrcStress, QueueSlotsNeverLoseWaiters) {
  // Three modes pile onto one RFU simultaneously (2 queue slots + 1 holder):
  // the FCFS queue must serve everyone.
  Testbench tb;
  auto& irc = tb.device().irc();
  auto& mem = tb.device().memory();
  int completions = 0;
  irc.on_complete = [&](Mode, const ServiceRequest&) { ++completions; };
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const Mode m = mode_from_index(i);
    mem.write_page_bytes(m, Page::Raw, patterned(1024, static_cast<u8>(i)));
    ServiceRequest req;
    req.from_cpu = false;
    // Two heavy ops on the same shared crypto unit per mode.
    const Op e = i == 0 ? Op::EncryptRc4 : (i == 1 ? Op::EncryptDes : Op::EncryptAes);
    req.ops = {
        OpCall{e, {page_base(m, Page::Raw), page_base(m, Page::Crypt), 1, 0}},
        OpCall{e, {page_base(m, Page::Crypt), page_base(m, Page::Scratch), 2, 0}},
    };
    irc.submit(m, std::move(req));
  }
  ASSERT_TRUE(tb.run_until([&] { return completions == 3; }, 400'000'000));
}

TEST(IrcStress, DeclinedWakeupDoesNotStrandTailWaiter) {
  // Regression for a lost-wakeup deadlock: C holds the crypto unit in state
  // AES; A (needs RC4) and B (needs DES) queue behind it. On C's release,
  // the head waiter finds the unit in the wrong configuration state and
  // declines (redo to its TH_R); the tail waiter must still be woken —
  // otherwise it sleeps forever on a free unit. With the single-wake bug
  // this stalls within ~5k cycles; the budget below is tight on purpose.
  Testbench tb;
  auto& irc = tb.device().irc();
  auto& mem = tb.device().memory();
  int completions = 0;
  irc.on_complete = [&](Mode, const ServiceRequest&) { ++completions; };
  const Op enc[3] = {Op::EncryptRc4, Op::EncryptDes, Op::EncryptAes};
  const Op dec[3] = {Op::DecryptRc4, Op::DecryptDes, Op::DecryptAes};
  std::array<Bytes, kNumModes> data;
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const Mode m = mode_from_index(i);
    data[i] = patterned(512, static_cast<u8>(i + 1));
    mem.write_page_bytes(m, Page::Raw, data[i]);
    // Two rounds per mode force repeated cross-mode reconfiguration and the
    // decline-on-wrong-state path.
    for (int r = 0; r < 2; ++r) {
      ServiceRequest req;
      req.from_cpu = false;
      req.ops = {
          OpCall{enc[i], {page_base(m, Page::Raw), page_base(m, Page::Crypt),
                          static_cast<Word>(r), 0}},
          OpCall{dec[i], {page_base(m, Page::Crypt), page_base(m, Page::Defrag),
                          static_cast<Word>(r), 0}},
      };
      irc.submit(m, std::move(req));
    }
  }
  ASSERT_TRUE(tb.run_until([&] { return completions == 6; }, 2'000'000))
      << "stalled at " << completions << "/6 — stranded queue waiter";
  for (std::size_t i = 0; i < kNumModes; ++i) {
    EXPECT_EQ(mem.read_page_bytes(mode_from_index(i), Page::Defrag), data[i]);
  }
}

TEST(IrcStress, InterleavedCpuAndEventHandlerRequests) {
  // CPU-originated transmissions while peer frames stream in: both request
  // sources share the task handlers without corruption.
  Testbench tb;
  const Bytes up = patterned(700, 1);
  const Bytes down = patterned(700, 2);
  tb.send_async(Mode::A, up);
  const auto frames = tb.make_peer_frames(Mode::A, down, 9);
  tb.peer(Mode::A).inject_frame(frames[0], tb.scheduler().now() + 50'000);
  ASSERT_TRUE(tb.run_until(
      [&] { return tb.tx_completions(Mode::A) >= 1 && !tb.delivered(Mode::A).empty(); },
      2'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 1u);
  EXPECT_EQ(tb.delivered(Mode::A)[0], down);
}

}  // namespace
}  // namespace drmp
