// 802.11 timing-conformance tests (EIFS, SIFS-spaced fragment bursts,
// CF-End NAV truncation, the arm-time SIFS anchor): the receive-quality
// reference on the media, the BackoffRfu's EIFS defer state, duration
// chaining across fragment bursts, digest equality of the new paths across
// worker pools and idle-skip, and the flags-off pins that freeze the
// historic (PR-3/PR-4) timelines bit-identically.
#include <gtest/gtest.h>

#include "drmp/testbench.hpp"
#include "mac/wifi_ctrl.hpp"
#include "mac/wifi_frames.hpp"
#include "net/contended_medium.hpp"
#include "scenario/scenario_engine.hpp"

namespace drmp {
namespace {

Bytes payload(std::size_t n, u8 seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 11 + seed);
  return b;
}

ctrl::WifiCtrl& wifi(Testbench& tb) {
  return static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
}

// ---------------------------------------------------------------------------
// EIFS: the receive-quality reference on the medium.
// ---------------------------------------------------------------------------

struct Sink : phy::MediumClient {
  std::vector<Bytes> frames;
  void on_frame(const Bytes& f, Cycle, int) override { frames.push_back(f); }
};

TEST(EifsReference, CollisionMarksListenersUntilCleanReception) {
  sim::TimeBase tb(200e6);
  sim::Scheduler sched(200e6);
  net::ContendedMedium m(mac::Protocol::WiFi, tb);
  m.track_rx_quality();  // What BackoffRfu::wire does for EIFS modes.
  Sink sink;
  m.attach(sink, 7);  // Listener id 7: the station whose CCA we model.
  sched.add(m, "medium", sim::Scheduler::kStageMedium);

  EXPECT_FALSE(m.eifs_pending(7));
  m.begin_tx(payload(300, 1), 1);
  sched.run_cycles(100);  // Inside the collision window.
  const Cycle end2 = m.begin_tx(payload(300, 2), 2);
  sched.run_cycles(end2 + m.cca_latency_cycles() + 2 - sched.now());
  // Both frames were dropped as noise — but listener 7 heard undecodable
  // energy: EIFS applies until something clean arrives.
  EXPECT_TRUE(m.eifs_pending(7));
  EXPECT_FALSE(m.eifs_pending(1)) << "a transmitter receives nothing of its own";

  const Cycle end3 = m.begin_tx(payload(120, 3), 1);
  sched.run_cycles(end3 + m.cca_latency_cycles() + 2 - sched.now());
  EXPECT_FALSE(m.eifs_pending(7)) << "a clean reception cancels EIFS";
}

TEST(EifsReference, GarbledDeliveryAndTamperAlsoMark) {
  sim::TimeBase tb(200e6);
  sim::Scheduler sched(200e6);
  net::ContendedMedium::Params p;
  p.deliver_garbled = true;
  net::ContendedMedium m(mac::Protocol::WiFi, tb, p);
  m.track_rx_quality();
  Sink sink;
  m.attach(sink, 7);
  sched.add(m, "medium", sim::Scheduler::kStageMedium);

  m.begin_tx(payload(200, 1), 1);
  sched.run_cycles(50);
  const Cycle end2 = m.begin_tx(payload(200, 2), 2);
  sched.run_cycles(end2 + m.cca_latency_cycles() + 2 - sched.now());
  EXPECT_EQ(sink.frames.size(), 2u) << "garbled mode still delivers";
  EXPECT_TRUE(m.eifs_pending(7));

  // A clean-on-air frame the channel injector corrupts is equally damaged.
  m.tamper = [](Bytes& f) {
    f[0] ^= 0xFF;
    return true;
  };
  const Cycle end3 = m.begin_tx(payload(150, 3), 1);
  sched.run_cycles(end3 + m.cca_latency_cycles() + 2 - sched.now());
  EXPECT_TRUE(m.eifs_pending(7)) << "tampered reception keeps EIFS pending";
}

// A contended cell with garbled delivery and EIFS honoured end-to-end: the
// access RFUs actually stretch their pre-contention waits, every MSDU still
// completes, and the timeline is invariant across worker pools and
// idle-skip (the quiescence-bound half of the EIFS contract).
scenario::ScenarioSpec eifs_cell(unsigned workers, bool idle_skip) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::contended_wifi_cell(4, /*seed=*/11,
                                                  /*msdus_per_station=*/3);
  spec.cells[0].contention.deliver_garbled = true;
  for (auto& d : spec.cells[0].stations) {
    d.cfg.modes[0].ident.eifs_enabled = true;
  }
  spec.worker_threads = workers;
  spec.idle_skip = idle_skip;
  return spec;
}

TEST(EifsCell, DamagedReceptionsStretchDefersAndStillDrain) {
  const scenario::FleetStats fs =
      scenario::ScenarioEngine(eifs_cell(1, true)).run();
  ASSERT_TRUE(fs.all_drained);
  EXPECT_GT(fs.total_collisions(), 0u) << "the cell must actually contend";
  EXPECT_GT(fs.total_eifs_waits(), 0u)
      << "garbled deliveries must stretch some pre-contention waits to EIFS";
  for (const scenario::DeviceStats& ds : fs.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
  }
}

TEST(EifsCell, DigestsInvariantAcrossWorkersAndIdleSkip) {
  const u64 serial =
      scenario::ScenarioEngine(eifs_cell(1, true)).run().full_digest();
  const u64 pool =
      scenario::ScenarioEngine(eifs_cell(0, true)).run().full_digest();
  const u64 ticked =
      scenario::ScenarioEngine(eifs_cell(1, false)).run().full_digest();
  EXPECT_EQ(serial, pool);
  EXPECT_EQ(serial, ticked);
}

// ---------------------------------------------------------------------------
// CF-End: NAV truncation with a wake edge.
// ---------------------------------------------------------------------------

DrmpConfig nav_config() {
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.modes[0].ident.nav_enabled = true;
  return cfg;
}

TEST(CfEndNav, CfEndResetsAnArmedReservation) {
  Testbench tb(nav_config());
  const auto& id = tb.config().modes[0].ident;
  // An overheard RTS addressed elsewhere arms a long reservation.
  const Bytes rts = mac::wifi::build_rts(mac::MacAddr::from_u64(0xDEADBEEF),
                                         mac::MacAddr::from_u64(id.peer_addr),
                                         /*duration_us=*/5000);
  tb.peer(Mode::A).inject_frame(rts, tb.scheduler().now() + 100);
  ASSERT_TRUE(tb.run_until([&] { return tb.device().nav(Mode::A).arms() > 0; },
                           10'000'000ull));
  const auto& nav = tb.device().nav(Mode::A);
  EXPECT_TRUE(nav.active(tb.medium(Mode::A).now()));
  const Cycle armed_expiry = nav.expiry();
  EXPECT_GT(armed_expiry, tb.medium(Mode::A).now());

  // The point coordinator broadcasts CF-End: the reservation is void now.
  const Bytes cf_end = mac::wifi::build_cf_end(
      mac::MacAddr::from_u64(0xFFFFFFFFFFFFull),
      mac::MacAddr::from_u64(id.peer_addr), /*with_ack=*/false);
  tb.peer(Mode::A).inject_frame(cf_end, tb.scheduler().now() + 50);
  ASSERT_TRUE(
      tb.run_until([&] { return tb.device().nav(Mode::A).resets() > 0; },
                   10'000'000ull));
  EXPECT_EQ(nav.resets(), 1u);
  EXPECT_LE(nav.expiry(), tb.medium(Mode::A).now())
      << "the reservation must be truncated at the reset, not run out";
  EXPECT_FALSE(nav.active(tb.medium(Mode::A).now()));
  EXPECT_LT(nav.expiry(), armed_expiry);
}

TEST(CfEndNav, GarbledCfEndDoesNotReset) {
  Testbench tb(nav_config());
  const auto& id = tb.config().modes[0].ident;
  const Bytes rts = mac::wifi::build_rts(mac::MacAddr::from_u64(0xDEADBEEF),
                                         mac::MacAddr::from_u64(id.peer_addr), 5000);
  tb.peer(Mode::A).inject_frame(rts, tb.scheduler().now() + 100);
  ASSERT_TRUE(tb.run_until([&] { return tb.device().nav(Mode::A).arms() > 0; },
                           10'000'000ull));
  Bytes cf_end = mac::wifi::build_cf_end(mac::MacAddr::from_u64(0xFFFFFFFFFFFFull),
                                         mac::MacAddr::from_u64(id.peer_addr), false);
  cf_end[5] ^= 0x10;  // FCS now fails: the truncation must not be honoured.
  tb.peer(Mode::A).inject_frame(cf_end, tb.scheduler().now() + 50);
  tb.run_cycles(2'000'000);
  EXPECT_EQ(tb.device().nav(Mode::A).resets(), 0u);
}

// A deferrer sleeping against the reservation expiry must re-evaluate on the
// CF-End wake edge: batched (quiescence-skipping) and legacy every-tick
// execution must play the identical timeline through arm -> truncate ->
// re-contend.
TEST(CfEndNav, BatchedMatchesLegacyThroughNavTruncation) {
  auto run = [](bool batched) {
    Testbench tb(nav_config());
    const auto& id = tb.config().modes[0].ident;
    auto step = [&](Cycle n) {
      if (batched) {
        tb.scheduler().run_cycles_batched(n);
      } else {
        tb.scheduler().run_cycles(n);
      }
    };
    // Arm a reservation far longer than the workload needs, queue an MSDU
    // (it defers on the NAV), then truncate with CF-End and let it finish.
    const Bytes rts = mac::wifi::build_rts(mac::MacAddr::from_u64(0xDEADBEEF),
                                           mac::MacAddr::from_u64(id.peer_addr),
                                           /*duration_us=*/30000);
    tb.peer(Mode::A).inject_frame(rts, 2000);
    step(40'000);  // RTS on the air, NAV armed at its end.
    tb.send_async(Mode::A, payload(320, 3));
    step(400'000);  // The access RFU defers against the reservation.
    const Bytes cf_end =
        mac::wifi::build_cf_end(mac::MacAddr::from_u64(0xFFFFFFFFFFFFull),
                                mac::MacAddr::from_u64(id.peer_addr), false);
    tb.peer(Mode::A).inject_frame(cf_end, tb.scheduler().now() + 100);
    step(3'000'000);
    sim::Digest d;
    d.mix(tb.device().nav(Mode::A).arms())
        .mix(tb.device().nav(Mode::A).resets())
        .mix(tb.device().nav(Mode::A).expiry())
        .mix(tb.device().backoff_rfu().nav_defers())
        .mix(tb.device().backoff_rfu().defers())
        .mix(tb.tx_successes(Mode::A))
        .mix(tb.device().phy_tx(Mode::A)->frames_sent())
        .mix(tb.device().phy_tx(Mode::A)->last_tx_start())
        .mix(tb.scheduler().now());
    return d.value();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// SIFS-spaced fragment bursts.
// ---------------------------------------------------------------------------

DrmpConfig burst_config(bool burst, u32 frag_threshold = 256) {
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.modes[0].ident.frag_threshold = frag_threshold;
  cfg.modes[0].ident.frag_burst_enabled = burst;
  return cfg;
}

// Records every frame end on the medium so the test can reconstruct the
// burst's inter-frame spacing.
struct AirLog : phy::MediumClient {
  struct Entry {
    std::size_t bytes;
    Cycle end;
  };
  std::vector<Entry> entries;
  void on_frame(const Bytes& f, Cycle end, int) override {
    entries.push_back({f.size(), end});
  }
};

TEST(FragBurst, FollowOnFragmentsFlySifsSpaced) {
  Testbench tb(burst_config(true));
  AirLog log;
  tb.medium(Mode::A).attach(log);
  const auto out = tb.send_and_wait(Mode::A, payload(900), 2'000'000'000ull);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  ASSERT_EQ(tb.peer(Mode::A).received_data_frames().size(), 4u);  // ceil(900/256).

  // Air sequence: D0 A0 D1 A1 D2 A2 D3 A3. Each follow-on fragment must
  // start within the perishable-response window of its releasing ACK —
  // SIFS-anchored, never a fresh DIFS+backoff contention round.
  const auto& t = tb.medium(Mode::A).timing();
  const Cycle difs = tb.device().timebase().us_to_cycles(t.difs_us);
  const Cycle sifs = tb.device().timebase().us_to_cycles(t.sifs_us);
  ASSERT_EQ(log.entries.size(), 8u);
  for (std::size_t i = 2; i < 8; i += 2) {  // D1, D2, D3.
    const Cycle ack_end = log.entries[i - 1].end;
    const Cycle frag_start =
        log.entries[i].end - tb.medium(Mode::A).frame_air_cycles(log.entries[i].bytes);
    EXPECT_GE(frag_start, ack_end + sifs) << "fragment " << i / 2;
    EXPECT_LT(frag_start, ack_end + difs)
        << "fragment " << i / 2
        << " re-contended (DIFS elapsed) instead of riding its SIFS anchor";
  }
}

TEST(FragBurst, FlagOffKeepsPerFragmentContention) {
  Testbench tb(burst_config(false));
  AirLog log;
  tb.medium(Mode::A).attach(log);
  const auto out = tb.send_and_wait(Mode::A, payload(900), 2'000'000'000ull);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  ASSERT_EQ(log.entries.size(), 8u);
  // Follow-on fragments wait at least DIFS after the ACK (plus backoff):
  // the historic re-contention, pinned so the default stays the default.
  const auto& t = tb.medium(Mode::A).timing();
  const Cycle difs = tb.device().timebase().us_to_cycles(t.difs_us);
  for (std::size_t i = 2; i < 8; i += 2) {
    const Cycle ack_end = log.entries[i - 1].end;
    const Cycle frag_start =
        log.entries[i].end - tb.medium(Mode::A).frame_air_cycles(log.entries[i].bytes);
    EXPECT_GE(frag_start, ack_end + difs) << "fragment " << i / 2;
  }
}

TEST(FragBurst, DurationFieldsChainTheNav) {
  Testbench tb(burst_config(true));
  AirLog log;
  tb.medium(Mode::A).attach(log);
  std::vector<u16> data_durations;
  struct DurLog : phy::MediumClient {
    std::vector<u16>* out;
    void on_frame(const Bytes& f, Cycle, int) override {
      if (const auto mpdu = mac::wifi::parse_data_mpdu(f)) {
        out->push_back(mpdu->hdr.duration_us);
      }
    }
  } durlog;
  durlog.out = &data_durations;
  tb.medium(Mode::A).attach(durlog);
  const auto out = tb.send_and_wait(Mode::A, payload(900), 2'000'000'000ull);
  ASSERT_TRUE(out.completed);
  ASSERT_EQ(data_durations.size(), 4u);
  const auto t = mac::timing_for(mac::Protocol::WiFi);
  const double ack_air_us = mac::wifi::ack_air_us(t);
  // Mid-burst fragments reserve through the next fragment's ACK; the final
  // fragment only through its own ACK.
  for (std::size_t i = 0; i + 1 < data_durations.size(); ++i) {
    EXPECT_GT(data_durations[i], 3.0 * t.sifs_us + 2.0 * ack_air_us)
        << "fragment " << i << " must chain past the next fragment";
  }
  EXPECT_LE(data_durations.back(), static_cast<u16>(t.sifs_us + ack_air_us + 1.0));
  EXPECT_NE(data_durations.front(), 150u) << "not the legacy rough figure";
}

// The contended fragment-burst workload: digest equality across worker
// pools and idle-skip (the new SIFS-anchored path rides the PR-3/PR-4
// quiescence machinery), plus the headline ordering — SIFS-spaced bursts
// collide less than per-fragment re-contention on the same cell.
scenario::FleetStats run_fragmented(bool burst, unsigned workers, bool idle_skip) {
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::contended_wifi_fragmented(
      4, burst, /*seed=*/5, /*msdus_per_station=*/3);
  spec.worker_threads = workers;
  spec.idle_skip = idle_skip;
  return scenario::ScenarioEngine(std::move(spec)).run();
}

TEST(FragBurstCell, BurstReducesMidBurstCollisions) {
  const scenario::FleetStats per_fragment = run_fragmented(false, 1, true);
  const scenario::FleetStats burst = run_fragmented(true, 1, true);
  ASSERT_TRUE(per_fragment.all_drained);
  ASSERT_TRUE(burst.all_drained);
  EXPECT_GT(per_fragment.total_collisions(), 0u)
      << "per-fragment re-contention must actually collide here";
  EXPECT_LT(burst.total_collisions(), per_fragment.total_collisions())
      << "holding the medium across the burst must cut mid-burst collisions";
  for (const scenario::DeviceStats& ds : burst.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
  }
}

TEST(FragBurstCell, DigestsInvariantAcrossWorkersAndIdleSkip) {
  const u64 serial = run_fragmented(true, 1, true).full_digest();
  const u64 pool = run_fragmented(true, 0, true).full_digest();
  const u64 ticked = run_fragmented(true, 1, false).full_digest();
  EXPECT_EQ(serial, pool);
  EXPECT_EQ(serial, ticked);
}

// ---------------------------------------------------------------------------
// Flags off: the historic timelines are pinned bit-identically.
// ---------------------------------------------------------------------------

// Golden digests captured from the PR-4 tree (the seed of this change).
// Every timing-conformance feature is flag-gated off by default, so the
// canonical PR-4 workloads must reproduce these digests bit-for-bit. If a
// refactor legitimately changes them, re-derive the constants — but that is
// a digest-visible change and the commit must say so.
TEST(FlagsOff, CanonicalContendedCellDigestIsBitIdentical) {
  const scenario::FleetStats fs =
      scenario::ScenarioEngine(scenario::ScenarioSpec::contended_wifi_cell(4, 1, 3))
          .run();
  EXPECT_EQ(fs.full_digest(), 0x215632c897c55d3dull);
}

TEST(FlagsOff, MixedThreeStandardFleetDigestIsBitIdentical) {
  const scenario::FleetStats fs =
      scenario::ScenarioEngine(scenario::ScenarioSpec::mixed_three_standard(8, 1, 2))
          .run();
  EXPECT_EQ(fs.full_digest(), 0x7a40977437a44782ull);
}

}  // namespace
}  // namespace drmp
