// IRC table tests: op_code_table completeness and consistency with the RFU
// pool, rfu_table FCFS queueing, table mutexes, and the memory-mapped
// interrupt source registers.
#include <gtest/gtest.h>

#include <set>

#include "drmp/testbench.hpp"
#include "irc/tables.hpp"

namespace drmp::irc {
namespace {

TEST(OpCodeTableTest, AllDefinedOpsResolveToRegisteredRfuIds) {
  const OpCodeTable oct;
  for (int o = 0; o < 256; ++o) {
    const auto op = static_cast<rfu::Op>(o);
    if (!oct.contains(op)) continue;
    const auto& e = oct.lookup(op);
    EXPECT_GE(e.rfu_id, rfu::kRfuIdFirst) << "op " << o;
    EXPECT_LE(e.rfu_id, rfu::kRfuIdLast) << "op " << o;
    EXPECT_GT(e.reconf_state, 0u) << "op " << o;  // State 0 = uninitialized.
    EXPECT_LE(e.nargs, 8u) << "op " << o;
  }
}

TEST(OpCodeTableTest, OnlyChannelAccessOpsAreDetached) {
  const OpCodeTable oct;
  for (int o = 0; o < 256; ++o) {
    const auto op = static_cast<rfu::Op>(o);
    if (!oct.contains(op)) continue;
    const bool is_access = oct.lookup(op).rfu_id == rfu::kBackoffRfu;
    EXPECT_EQ(oct.lookup(op).detached, is_access) << "op " << o;
  }
}

TEST(OpCodeTableTest, SharedHcsStateForWifiAndUwb) {
  // The thesis's headline overlap: WiFi and UWB HCS ops map to the *same*
  // (rfu, state), so no reconfiguration separates them.
  const OpCodeTable oct;
  const auto& wifi = oct.lookup(rfu::Op::HcsAppend16);
  const auto& verify = oct.lookup(rfu::Op::HcsVerify16);
  EXPECT_EQ(wifi.rfu_id, verify.rfu_id);
  EXPECT_EQ(wifi.reconf_state, verify.reconf_state);
  // WiMAX's CRC-8 is a different state of the same unit.
  const auto& wimax = oct.lookup(rfu::Op::HcsPatch8);
  EXPECT_EQ(wimax.rfu_id, wifi.rfu_id);
  EXPECT_NE(wimax.reconf_state, wifi.reconf_state);
}

TEST(RfuTableTest, QueueIsFcfsWithTwoSlots) {
  RfuTable t;
  EXPECT_TRUE(t.queue_waiter(5, {Mode::B, ThKind::ThM}));
  EXPECT_TRUE(t.queue_waiter(5, {Mode::C, ThKind::ThR}));
  EXPECT_FALSE(t.queue_waiter(5, {Mode::A, ThKind::ThM}));  // Both slots full.
  const auto w1 = t.pop_waiter(5);
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(w1->mode, Mode::B);
  EXPECT_EQ(w1->kind, ThKind::ThM);
  const auto w2 = t.pop_waiter(5);
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->mode, Mode::C);
  EXPECT_FALSE(t.pop_waiter(5).has_value());
}

TEST(RfuTableTest, QueuesAreIndependentPerRfu) {
  RfuTable t;
  EXPECT_TRUE(t.queue_waiter(3, {Mode::A, ThKind::ThM}));
  EXPECT_FALSE(t.pop_waiter(4).has_value());
  EXPECT_TRUE(t.pop_waiter(3).has_value());
}

TEST(RfuTableTest, PriorityPolicyWakesMostUrgentWaiter) {
  // Table 3.4's PrQreq fields: lower value = more urgent. Mode C queued
  // first, then mode A with a better priority — under Priority, A pops first.
  RfuTable t;
  t.set_queue_policy(RfuTable::QueuePolicy::Priority);
  EXPECT_TRUE(t.queue_waiter(5, {Mode::C, ThKind::ThM, 2}));
  EXPECT_TRUE(t.queue_waiter(5, {Mode::A, ThKind::ThM, 0}));
  const auto w1 = t.pop_waiter(5);
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(w1->mode, Mode::A);
  const auto w2 = t.pop_waiter(5);
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->mode, Mode::C);
}

TEST(RfuTableTest, PriorityPolicyTieBreaksToOlderRequest) {
  RfuTable t;
  t.set_queue_policy(RfuTable::QueuePolicy::Priority);
  EXPECT_TRUE(t.queue_waiter(5, {Mode::B, ThKind::ThR, 1}));
  EXPECT_TRUE(t.queue_waiter(5, {Mode::C, ThKind::ThM, 1}));
  const auto w1 = t.pop_waiter(5);
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(w1->mode, Mode::B);  // Equal priority: FCFS order preserved.
}

TEST(RfuTableTest, FcfsPolicyIgnoresPriorityFields) {
  // The thesis-prototype default: PrQreq values are carried but not honoured.
  RfuTable t;
  ASSERT_EQ(t.queue_policy(), RfuTable::QueuePolicy::Fcfs);
  EXPECT_TRUE(t.queue_waiter(5, {Mode::C, ThKind::ThM, 2}));
  EXPECT_TRUE(t.queue_waiter(5, {Mode::A, ThKind::ThM, 0}));
  const auto w1 = t.pop_waiter(5);
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(w1->mode, Mode::C);
}

TEST(TableMutexTest, ExclusiveWithReentrancy) {
  TableMutex m;
  EXPECT_TRUE(m.try_lock(1));
  EXPECT_TRUE(m.try_lock(1));   // Re-entrant for the same owner.
  EXPECT_FALSE(m.try_lock(2));  // Exclusive against others.
  m.unlock(2);                  // Foreign unlock ignored.
  EXPECT_FALSE(m.try_lock(2));
  m.unlock(1);
  EXPECT_TRUE(m.try_lock(2));
}

TEST(TableMutexTest, OwnerIdsAreUnique) {
  // 3 modes x 2 handlers + RC = 7 distinct ids.
  std::set<u8> ids;
  for (Mode m : {Mode::A, Mode::B, Mode::C}) {
    ids.insert(mutex_owner(m, ThKind::ThR));
    ids.insert(mutex_owner(m, ThKind::ThM));
  }
  ids.insert(kMutexOwnerRc);
  EXPECT_EQ(ids.size(), 7u);
}

TEST(IrqRegisters, MirroredIntoMemoryMap) {
  // Table 3.2: "the software will respond to the interrupt by reading a
  // memory-mapped hardware register ... to indicate the source".
  Testbench tb;
  auto& irc = tb.device().irc();
  auto& mem = tb.device().memory();
  EXPECT_FALSE(irc.irq_line());
  irc.irq_raise(Mode::B, IrqEvent::RxInd, 0x42);
  EXPECT_TRUE(irc.irq_line());
  EXPECT_EQ(mem.cpu_read(hw::kIrqSourceReg) & (1u << 1), 2u);
  EXPECT_EQ(mem.cpu_read(hw::kIrqEventReg0 + 1), static_cast<Word>(IrqEvent::RxInd));
  EXPECT_EQ(mem.cpu_read(hw::kIrqParamReg0 + 1), 0x42u);
  const auto info = irc.irq_take();
  EXPECT_EQ(info.mode, Mode::B);
  EXPECT_EQ(info.event, IrqEvent::RxInd);
  EXPECT_FALSE(irc.irq_line());
}

}  // namespace
}  // namespace drmp::irc
