// Timing-wheel tests: the hierarchical wake wheel behind the batched
// scheduler (sim/scheduler.hpp). A reference model (sorted multimap) pins
// the delivery semantics — every entry surfaces on the first advance() at
// or past its wake time, never earlier — across randomized pushes spanning
// all levels and the overflow layer; separate tests pin purge() filtering
// and the scheduler-level lazy-deletion bound: a wake-heavy workload that
// strands stale entries in the wheel must trigger purges and keep the
// wheel's high-watermark bounded instead of leaking one entry per wake.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/scheduler.hpp"

namespace drmp::sim {
namespace {

u64 lcg(u64& x) {
  x = x * 6364136223846793005ull + 1442695040888963407ull;
  return x >> 33;
}

TEST(TimingWheel, RandomizedDrainMatchesReferenceModel) {
  for (const u64 seed : {11ull, 29ull, 1234ull}) {
    u64 x = seed;
    auto rnd = [&x](u64 lim) { return lcg(x) % lim; };
    TimingWheel wheel;
    wheel.reset(0);
    std::multimap<Cycle, u32> ref;  // wake_at -> index
    Cycle now = 0;
    u32 next_index = 0;
    for (int round = 0; round < 500; ++round) {
      // Push a handful of entries with horizons spanning every wheel level
      // and, occasionally, the far-future overflow layer.
      const u64 n_push = rnd(4);
      for (u64 i = 0; i < n_push; ++i) {
        Cycle delta;
        switch (rnd(5)) {
          case 0: delta = 1 + rnd(63); break;                      // Level 0.
          case 1: delta = 64 + rnd(4032); break;                   // Level 1.
          case 2: delta = 4096 + rnd((1u << 18) - 4096); break;    // Level 2.
          case 3: delta = (Cycle{1} << 18) + rnd(1u << 20); break; // Level 3.
          default: delta = TimingWheel::kSpan + rnd(1u << 20); break;
        }
        const Cycle at = now + delta;
        wheel.push(at, next_index, 0);
        ref.emplace(at, next_index);
        ++next_index;
      }
      // Advance by a random stride: mostly short hops, sometimes a jump
      // that crosses several cascade boundaries at once.
      now += rnd(10) == 0 ? 1 + rnd(1u << 19) : 1 + rnd(3000);
      std::vector<u32> due;
      wheel.advance(now, [&](const TimingWheel::Entry& e) {
        EXPECT_LE(e.wake_at, now) << "entry delivered before its wake time";
        due.push_back(e.index);
      });
      std::vector<u32> expected;
      while (!ref.empty() && ref.begin()->first <= now) {
        expected.push_back(ref.begin()->second);
        ref.erase(ref.begin());
      }
      std::sort(due.begin(), due.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(due, expected) << "seed " << seed << " round " << round;
      ASSERT_EQ(wheel.size(), ref.size());
      // next_bound() is a strictly-future lower bound on the earliest
      // stored wake time (exact at level 0, a bucket floor above).
      if (ref.empty()) {
        EXPECT_EQ(wheel.next_bound(), TimingWheel::kNever);
      } else {
        EXPECT_GT(wheel.next_bound(), now);
        EXPECT_LE(wheel.next_bound(), ref.begin()->first);
      }
    }
    EXPECT_GT(wheel.cascades(), 0u) << "sweep never exercised a cascade";
  }
}

TEST(TimingWheel, PurgeFiltersEntriesAcrossLevelsAndOverflow) {
  TimingWheel wheel;
  wheel.reset(0);
  // Two entries per layer — one stale (gen 0), one live (gen 1).
  const Cycle deltas[] = {5, 300, 70'000, Cycle{1} << 19, TimingWheel::kSpan + 9};
  u32 idx = 0;
  for (const Cycle d : deltas) {
    wheel.push(d, idx++, 0);
    wheel.push(d + 1, idx++, 1);
  }
  ASSERT_EQ(wheel.size(), 10u);
  wheel.purge([](const TimingWheel::Entry& e) { return e.gen == 1; });
  EXPECT_EQ(wheel.size(), 5u);
  std::vector<u32> survivors;
  wheel.advance(2 * TimingWheel::kSpan, [&](const TimingWheel::Entry& e) {
    EXPECT_EQ(e.gen, 1u);
    survivors.push_back(e.index);
  });
  std::sort(survivors.begin(), survivors.end());
  EXPECT_EQ(survivors, (std::vector<u32>{1, 3, 5, 7, 9}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, ResetDropsEntriesAndRebases) {
  TimingWheel wheel;
  wheel.reset(0);
  for (u32 i = 0; i < 40; ++i) wheel.push(10 + i * 97, i, 0);
  wheel.reset(1'000'000);
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.next_bound(), TimingWheel::kNever);
  wheel.push(1'000'004, 7, 0);
  u32 delivered = 0;
  wheel.advance(1'000'010, [&](const TimingWheel::Entry& e) {
    EXPECT_EQ(e.index, 7u);
    ++delivered;
  });
  EXPECT_EQ(delivered, 1u);
}

// ---- Scheduler-level lazy deletion -------------------------------------

/// Sleeps in long stretches; tick/skip_idle only count cycles.
class LongSleeper : public Clockable {
 public:
  void tick() override { ++cycles; }
  Cycle quiescent_for() const override { return 10'000; }
  void skip_idle(Cycle n) override { cycles += n; }
  Cycle cycles = 0;
};

/// Always awake; wakes one sleeper round-robin every few cycles, stranding
/// the sleeper's previous wheel entry as a stale record each time.
class RoundRobinWaker : public Clockable {
 public:
  explicit RoundRobinWaker(std::vector<LongSleeper>& targets)
      : targets_(targets) {}
  void tick() override {
    if (++phase_ % 5 == 0) {
      targets_[next_++ % targets_.size()].wake_self();
      ++wakes;
    }
  }
  u64 wakes = 0;

 private:
  std::vector<LongSleeper>& targets_;
  std::size_t next_ = 0;
  u64 phase_ = 0;
};

TEST(Scheduler, WakeHeavyWorkloadPurgesStaleWheelEntries) {
  // 32 sleepers re-arming a 10k-cycle bound after every early wake: without
  // the stale-majority purge the wheel would accrete one dead entry per
  // wake (~40k over this run). The profile must show purges firing and a
  // depth high-watermark near the live population, not the wake count.
  Scheduler sched(200e6);
  std::vector<LongSleeper> sleepers(32);
  RoundRobinWaker waker(sleepers);
  sched.add(waker, "waker");
  for (std::size_t i = 0; i < sleepers.size(); ++i) {
    sched.add(sleepers[i], "sleeper" + std::to_string(i));
  }
  sched.run_cycles_batched(200'000);
  for (const LongSleeper& s : sleepers) {
    EXPECT_EQ(s.cycles, 200'000u);  // skip accounting stayed exact.
  }
  const SchedulerProfile p = sched.profile();
  EXPECT_GT(waker.wakes, 10'000u);
  EXPECT_GT(p.wheel_purges, 0u);
  EXPECT_LT(p.wheel_depth_max, 512u)
      << "stale wheel entries accreting (lazy-deletion leak)";
}

}  // namespace
}  // namespace drmp::sim
