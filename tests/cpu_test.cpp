// CPU-model tests: interrupt dispatch, mode priority, cycle-cost accounting,
// software timers, and the busy statistics the partitioning argument uses.
#include <gtest/gtest.h>

#include "cpu/cpu_model.hpp"
#include "sim/scheduler.hpp"

namespace drmp::cpu {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : sched(200e6) {
    CpuModel::Config cfg;
    cfg.cpu_freq_hz = 50e6;   // 1 CPU cycle = 4 arch cycles.
    cfg.arch_freq_hz = 200e6;
    cfg.isr_overhead_instr = 10;
    cpu = std::make_unique<CpuModel>(cfg);
    sched.add(*cpu, "cpu");
  }
  sim::Scheduler sched;
  std::unique_ptr<CpuModel> cpu;
};

TEST_F(CpuTest, HandlerInvokedWithContext) {
  IsrContext seen{};
  int calls = 0;
  cpu->set_handler(Mode::B, [&](const IsrContext& ctx) {
    seen = ctx;
    ++calls;
    return 5u;
  });
  cpu->raise_hw_interrupt(Mode::B, 7, 0xAB);
  sched.run_cycles(10);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen.cause, IsrCause::HwInterrupt);
  EXPECT_EQ(seen.event, 7u);
  EXPECT_EQ(seen.param, 0xABu);
}

TEST_F(CpuTest, CostAccountingScalesByClockRatio) {
  cpu->set_handler(Mode::A, [](const IsrContext&) { return 90u; });
  cpu->raise_hw_interrupt(Mode::A, 1, 0);
  sched.run_cycles(2);
  // (10 overhead + 90 body) instr * 4 arch-cycles each = 400 busy cycles.
  EXPECT_TRUE(cpu->busy());
  sched.run_cycles(500);
  EXPECT_FALSE(cpu->busy());
  EXPECT_NEAR(static_cast<double>(cpu->busy_cycles()), 400.0, 8.0);
}

TEST_F(CpuTest, ModePriorityDispatchesAOverC) {
  std::vector<Mode> order;
  for (Mode m : {Mode::A, Mode::C}) {
    cpu->set_handler(m, [&order, m](const IsrContext&) {
      order.push_back(m);
      return 10u;
    });
  }
  // Post C first, then A; while the CPU is idle both pend -> A must win.
  cpu->raise_hw_interrupt(Mode::C, 1, 0);
  cpu->raise_hw_interrupt(Mode::A, 1, 0);
  sched.run_cycles(500);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], Mode::A);
  EXPECT_EQ(order[1], Mode::C);
}

TEST_F(CpuTest, BusyCpuQueuesInterrupts) {
  int calls = 0;
  cpu->set_handler(Mode::A, [&](const IsrContext&) {
    ++calls;
    return 200u;  // 840 arch cycles busy.
  });
  cpu->raise_hw_interrupt(Mode::A, 1, 0);
  sched.run_cycles(5);
  cpu->raise_hw_interrupt(Mode::A, 2, 0);  // Arrives mid-handler.
  sched.run_cycles(5);
  EXPECT_EQ(calls, 1);
  sched.run_cycles(3000);
  EXPECT_EQ(calls, 2);
  EXPECT_GT(cpu->max_dispatch_latency(), 0u);
}

TEST_F(CpuTest, TimerFiresOnceAtDeadline) {
  std::vector<Cycle> fired;
  cpu->set_handler(Mode::A, [&](const IsrContext& ctx) {
    if (ctx.cause == IsrCause::Timer) fired.push_back(sched.now());
    return 1u;
  });
  cpu->set_timer(Mode::A, 9, 1000);
  sched.run_cycles(5000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(static_cast<double>(fired[0]), 1000.0, 10.0);
}

TEST_F(CpuTest, CancelledTimerNeverFires) {
  int fired = 0;
  cpu->set_handler(Mode::A, [&](const IsrContext& ctx) {
    if (ctx.cause == IsrCause::Timer) ++fired;
    return 1u;
  });
  cpu->set_timer(Mode::A, 9, 1000);
  sched.run_cycles(500);
  cpu->cancel_timer(Mode::A, 9);
  sched.run_cycles(5000);
  EXPECT_EQ(fired, 0);
}

TEST_F(CpuTest, ReArmedTimerReplacesOld) {
  std::vector<Cycle> fired;
  cpu->set_handler(Mode::A, [&](const IsrContext& ctx) {
    if (ctx.cause == IsrCause::Timer) fired.push_back(sched.now());
    return 1u;
  });
  cpu->set_timer(Mode::A, 9, 1000);
  cpu->set_timer(Mode::A, 9, 3000);  // Re-arm before expiry.
  sched.run_cycles(10000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_GE(fired[0], 3000u);
}

TEST_F(CpuTest, HostRequestsDispatchLikeInterrupts) {
  IsrContext seen{};
  cpu->set_handler(Mode::C, [&](const IsrContext& ctx) {
    seen = ctx;
    return 1u;
  });
  cpu->post_host_request(Mode::C, 42, 7);
  sched.run_cycles(10);
  EXPECT_EQ(seen.cause, IsrCause::HostRequest);
  EXPECT_EQ(seen.event, 42u);
  EXPECT_EQ(seen.param, 7u);
}

TEST_F(CpuTest, PerModeCycleAttribution) {
  cpu->set_handler(Mode::A, [](const IsrContext&) { return 40u; });
  cpu->set_handler(Mode::B, [](const IsrContext&) { return 90u; });
  cpu->raise_hw_interrupt(Mode::A, 1, 0);
  cpu->raise_hw_interrupt(Mode::B, 1, 0);
  sched.run_cycles(2000);
  EXPECT_GT(cpu->mode_cpu_cycles(Mode::B), cpu->mode_cpu_cycles(Mode::A));
  EXPECT_EQ(cpu->mode_cpu_cycles(Mode::C), 0u);
  EXPECT_EQ(cpu->isr_invocations(), 2u);
}

// ---------------------------------------------------------------------------
// Pre-emptive priority dispatch (§4.1.1's proposed priority mechanism).
// ---------------------------------------------------------------------------

class PreemptiveCpuTest : public ::testing::Test {
 protected:
  explicit PreemptiveCpuTest(bool preemptive = true) : sched(200e6) {
    CpuModel::Config cfg;
    cfg.cpu_freq_hz = 50e6;  // 1 CPU cycle = 4 arch cycles.
    cfg.arch_freq_hz = 200e6;
    cfg.isr_overhead_instr = 10;
    cfg.preemptive = preemptive;
    cfg.preempt_overhead_instr = 20;
    cpu = std::make_unique<CpuModel>(cfg);
    sched.add(*cpu, "cpu");
  }
  sim::Scheduler sched;
  std::unique_ptr<CpuModel> cpu;
};

TEST_F(PreemptiveCpuTest, HigherPriorityModePreemptsMidHandler) {
  // Mode C runs a long handler; mode A's interrupt arrives mid-flight and
  // must be serviced without waiting for C to finish.
  std::vector<std::pair<Mode, Cycle>> entries;
  cpu->set_handler(Mode::C, [&](const IsrContext&) {
    entries.emplace_back(Mode::C, sched.now());
    return 1000u;  // 4040 arch cycles.
  });
  cpu->set_handler(Mode::A, [&](const IsrContext&) {
    entries.emplace_back(Mode::A, sched.now());
    return 10u;
  });
  cpu->raise_hw_interrupt(Mode::C, 1, 0);
  sched.run_cycles(100);
  cpu->raise_hw_interrupt(Mode::A, 2, 0);
  sched.run_cycles(50);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].first, Mode::A);
  EXPECT_EQ(cpu->preemptions(), 1u);
  // A's dispatch latency is a couple of cycles, far below C's handler length.
  EXPECT_LE(cpu->max_dispatch_latency(Mode::A), 4u);
}

TEST_F(PreemptiveCpuTest, PreemptedHandlerStillCompletesItsBudget) {
  cpu->set_handler(Mode::C, [](const IsrContext&) { return 500u; });
  cpu->set_handler(Mode::A, [](const IsrContext&) { return 50u; });
  cpu->raise_hw_interrupt(Mode::C, 1, 0);
  sched.run_cycles(100);
  cpu->raise_hw_interrupt(Mode::A, 2, 0);
  sched.run_cycles(20000);
  EXPECT_FALSE(cpu->busy());
  // C's accounted cycles cover at least its own budget: (10+500)*4 = 2040.
  EXPECT_GE(cpu->mode_cpu_cycles(Mode::C), 2040u);
  // A's cycles include the pre-emption save half: (10+50+10)*4 = 280, less
  // the boundary tick that is credited to the pre-empted handler.
  EXPECT_GE(cpu->mode_cpu_cycles(Mode::A), 276u);
}

TEST_F(PreemptiveCpuTest, NestedPreemptionResumesInStackOrder) {
  // C starts, B pre-empts C, A pre-empts B; entry order C, B, A, and the
  // whole nest drains back out.
  std::vector<Mode> entry_order;
  for (Mode m : {Mode::A, Mode::B, Mode::C}) {
    cpu->set_handler(m, [&entry_order, m](const IsrContext&) {
      entry_order.push_back(m);
      return 400u;
    });
  }
  cpu->raise_hw_interrupt(Mode::C, 1, 0);
  sched.run_cycles(50);
  cpu->raise_hw_interrupt(Mode::B, 1, 0);
  sched.run_cycles(50);
  cpu->raise_hw_interrupt(Mode::A, 1, 0);
  sched.run_cycles(50);
  ASSERT_EQ(entry_order.size(), 3u);
  EXPECT_EQ(entry_order[0], Mode::C);
  EXPECT_EQ(entry_order[1], Mode::B);
  EXPECT_EQ(entry_order[2], Mode::A);
  EXPECT_EQ(cpu->preemptions(), 2u);
  EXPECT_EQ(cpu->running_mode(), Mode::A);
  sched.run_cycles(30000);
  EXPECT_FALSE(cpu->busy());
  EXPECT_FALSE(cpu->running_mode().has_value());
  EXPECT_EQ(cpu->isr_invocations(), 3u);
}

TEST_F(PreemptiveCpuTest, EqualOrLowerPriorityNeverPreempts) {
  cpu->set_handler(Mode::B, [](const IsrContext&) { return 500u; });
  cpu->set_handler(Mode::C, [](const IsrContext&) { return 10u; });
  cpu->raise_hw_interrupt(Mode::B, 1, 0);
  sched.run_cycles(50);
  cpu->raise_hw_interrupt(Mode::B, 2, 0);  // Same priority.
  cpu->raise_hw_interrupt(Mode::C, 3, 0);  // Lower priority.
  sched.run_cycles(20000);
  EXPECT_EQ(cpu->preemptions(), 0u);
  EXPECT_EQ(cpu->isr_invocations(), 3u);
}

class NonPreemptiveCpuTest : public PreemptiveCpuTest {
 protected:
  NonPreemptiveCpuTest() : PreemptiveCpuTest(false) {}
};

TEST_F(NonPreemptiveCpuTest, HighPriorityWaitsForRunningHandler) {
  // The thesis-prototype behaviour: handlers run to completion, so mode A's
  // worst-case dispatch latency is bounded by the longest handler.
  cpu->set_handler(Mode::C, [](const IsrContext&) { return 1000u; });
  cpu->set_handler(Mode::A, [](const IsrContext&) { return 10u; });
  cpu->raise_hw_interrupt(Mode::C, 1, 0);
  sched.run_cycles(100);
  cpu->raise_hw_interrupt(Mode::A, 2, 0);
  sched.run_cycles(20000);
  EXPECT_EQ(cpu->preemptions(), 0u);
  // (10+1000)*4 = 4040 cycle handler started ~2 cycles in; A posted at ~100.
  EXPECT_GT(cpu->max_dispatch_latency(Mode::A), 3000u);
}

}  // namespace
}  // namespace drmp::cpu
