// Property-style parameterized sweeps over the end-to-end system: MSDU-size
// sweeps (including word-unaligned and fragmentation-boundary sizes) for
// transmit and receive on each protocol, and invariants that must hold at
// every size (data integrity, redundancy validity, fragment accounting).
#include <gtest/gtest.h>

#include "baseline/conventional.hpp"
#include "drmp/testbench.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp {
namespace {

Bytes patterned(std::size_t n, u8 seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 13 + seed);
  return b;
}

// MSDU sizes probing word alignment, fragment boundaries (threshold 1024)
// and DES block alignment.
const std::size_t kSweepSizes[] = {4, 64, 1000, 1023, 1024, 1025, 2048, 2500};

// ------------------------------------------------------------- WiFi sweep

class WifiSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WifiSizeSweep, TxMatchesGoldenAndIsAcked) {
  Testbench tb;
  const Bytes msdu = patterned(GetParam(), 7);
  const auto out = tb.send_and_wait(Mode::A, msdu, 4'000'000'000ull);
  ASSERT_TRUE(out.completed);
  ASSERT_TRUE(out.success);

  baseline::GoldenTxParams gp;
  gp.proto = mac::Protocol::WiFi;
  gp.key = tb.config().modes[0].key;
  gp.seq = 0;
  gp.frag_threshold = tb.config().modes[0].ident.frag_threshold;
  gp.src_addr = tb.config().modes[0].ident.self_addr;
  gp.dst_addr = tb.config().modes[0].ident.peer_addr;
  const auto golden = baseline::golden_tx_frames(gp, msdu);
  const auto& seen = tb.peer(Mode::A).received_data_frames();
  ASSERT_EQ(seen.size(), golden.size());
  for (std::size_t k = 0; k < golden.size(); ++k) {
    EXPECT_EQ(seen[k], golden[k]) << "fragment " << k << " size " << GetParam();
  }
  // Invariant: every on-air fragment passes both redundancy checks.
  for (const auto& f : seen) {
    const auto p = mac::wifi::parse_data_mpdu(f);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->hcs_ok && p->fcs_ok);
  }
}

TEST_P(WifiSizeSweep, RxDeliversIntactMsdu) {
  Testbench tb;
  const Bytes msdu = patterned(GetParam(), 9);
  const auto delivered = tb.inject_and_wait(Mode::A, msdu, 21, 4'000'000'000ull);
  ASSERT_TRUE(delivered.has_value()) << "size " << GetParam();
  EXPECT_EQ(*delivered, msdu);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WifiSizeSweep, ::testing::ValuesIn(kSweepSizes));

// -------------------------------------------------------------- UWB sweep

class UwbSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UwbSizeSweep, RoundTripBothDirections) {
  Testbench tb;
  const Bytes msdu = patterned(GetParam(), 3);
  const auto out = tb.send_and_wait(Mode::C, msdu, 4'000'000'000ull);
  ASSERT_TRUE(out.success) << "size " << GetParam();
  // Reassemble what the peer saw through the golden receiver.
  baseline::GoldenTxParams gp;
  gp.proto = mac::Protocol::Uwb;
  gp.key = tb.config().modes[2].key;
  gp.seq = 0;
  gp.frag_threshold = tb.config().modes[2].ident.frag_threshold;
  const auto back = baseline::golden_rx_msdu(gp, tb.peer(Mode::C).received_data_frames());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msdu);

  const auto delivered = tb.inject_and_wait(Mode::C, msdu, 33, 4'000'000'000ull);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, msdu);
}

INSTANTIATE_TEST_SUITE_P(Sizes, UwbSizeSweep,
                         ::testing::Values(8, 512, 1024, 1100, 2000));

// ------------------------------------------------------------ WiMAX sweep

class WimaxSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WimaxSizeSweep, RoundTripBothDirections) {
  Testbench tb;
  const Bytes msdu = patterned(GetParam(), 5);
  const auto out = tb.send_and_wait(Mode::B, msdu, 4'000'000'000ull);
  ASSERT_TRUE(out.success) << "size " << GetParam();
  tb.run_until([&] { return !tb.peer(Mode::B).received_data_frames().empty(); },
               8'000'000);
  ASSERT_FALSE(tb.peer(Mode::B).received_data_frames().empty());
  const auto p = mac::wimax::parse_mpdu(tb.peer(Mode::B).received_data_frames()[0]);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->hcs_ok);
  EXPECT_TRUE(p->crc_ok);
  EXPECT_EQ(p->payload.size(), GetParam());

  const auto delivered = tb.inject_and_wait(Mode::B, msdu, 0, 4'000'000'000ull);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, msdu);
}

// WiMAX LEN is 11 bits: stay under 2047 - overheads; block-unaligned sizes
// exercise the clear DES tail.
INSTANTIATE_TEST_SUITE_P(Sizes, WimaxSizeSweep,
                         ::testing::Values(16, 100, 777, 1024, 1500, 1996));

// ------------------------------------------------- fragmentation invariant

class FragThresholdSweep : public ::testing::TestWithParam<u32> {};

TEST_P(FragThresholdSweep, FragmentCountMatchesCeilAndReassembles) {
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.modes[0].ident.frag_threshold = GetParam();
  Testbench tb(cfg);
  const std::size_t msdu_size = 2040;
  const Bytes msdu = patterned(msdu_size, 1);
  const auto out = tb.send_and_wait(Mode::A, msdu, 4'000'000'000ull);
  ASSERT_TRUE(out.success) << "threshold " << GetParam();
  const u32 expect_frags =
      (static_cast<u32>(msdu_size) + GetParam() - 1) / GetParam();
  EXPECT_EQ(tb.peer(Mode::A).received_data_frames().size(), expect_frags);
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), expect_frags);

  // Receive direction at the same threshold.
  const auto delivered = tb.inject_and_wait(Mode::A, msdu, 40, 4'000'000'000ull);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, msdu);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FragThresholdSweep,
                         ::testing::Values(256u, 512u, 1024u, 2048u));

}  // namespace
}  // namespace drmp
