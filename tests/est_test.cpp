// Estimation-library tests: gate/area composition, the activity-based power
// model's monotonicity properties, and the software-baseline shapes the
// paper's Chapter-2/6 arguments rest on.
#include <gtest/gtest.h>

#include "baseline/conventional.hpp"
#include "baseline/software_mac.hpp"
#include "est/gates.hpp"
#include "est/power.hpp"

namespace drmp::est {
namespace {

TEST(Gates, DesignTotalsAreSums) {
  Design d("t", {{"a", 100, 10}, {"b", 200, 20}});
  EXPECT_EQ(d.total_gates(), 300u);
  EXPECT_EQ(d.total_sram_bits(), 30u);
}

TEST(Gates, AreaGrowsWithGatesAndSram) {
  const Process p;
  Design small("s", {{"a", 1000, 0}});
  Design big("b", {{"a", 2000, 0}});
  Design mem("m", {{"a", 1000, 100000}});
  EXPECT_GT(big.area_mm2(p), small.area_mm2(p));
  EXPECT_GT(mem.area_mm2(p), small.area_mm2(p));
}

TEST(Gates, DrmpSmallerThanThreeConventionalMacs) {
  // The paper's headline resource claim (Table 6.2 shape).
  const baseline::ConventionalTriMac conv;
  const Design d = drmp_design();
  EXPECT_LT(d.total_gates(), conv.total_gates());
  // But larger than any single conventional MAC (flexibility overhead).
  EXPECT_GT(d.total_gates(), conv.wifi.total_gates() / 2);
  const Process p;
  EXPECT_LT(d.area_mm2(p), conv.area_mm2(p));
}

TEST(Gates, RfuCatalogCoversAllSimulatorRfus) {
  const auto& blocks = drmp_rfu_blocks();
  for (const char* name : {"crypto", "hdr_check", "fcs", "frag", "defrag", "header",
                           "tx", "rx", "ack", "backoff", "pack", "arq", "classifier",
                           "seq"}) {
    EXPECT_TRUE(blocks.count(name)) << name;
  }
}

TEST(Power, DynamicScalesWithFrequency) {
  const Design d = drmp_design();
  const Process p;
  const auto p100 = estimate_power(d, p, 100e6, {}, 0.1, {});
  const auto p200 = estimate_power(d, p, 200e6, {}, 0.1, {});
  EXPECT_NEAR(p200.dynamic_mw / p100.dynamic_mw, 2.0, 0.01);
  EXPECT_NEAR(p200.leakage_mw, p100.leakage_mw, 1e-9);  // Leakage: f-independent.
}

TEST(Power, ClockGatingReducesDynamicAtLowActivity) {
  const Design d = drmp_design();
  const Process p;
  PowerTechniques gated;
  gated.clock_gating = true;
  const auto free_run = estimate_power(d, p, 200e6, {}, 0.01, {});
  const auto gated_run = estimate_power(d, p, 200e6, {}, 0.01, gated);
  EXPECT_LT(gated_run.dynamic_mw, free_run.dynamic_mw * 0.2);
}

TEST(Power, PsoCutsLeakageProportionallyToActivity) {
  const Design d = drmp_design();
  const Process p;
  PowerTechniques pso;
  pso.power_shutoff = true;
  const auto base = estimate_power(d, p, 200e6, {}, 0.01, {});
  const auto with_pso = estimate_power(d, p, 200e6, {}, 0.01, pso);
  EXPECT_LT(with_pso.leakage_mw, base.leakage_mw * 0.15);
  EXPECT_GT(with_pso.leakage_mw, 0.0);  // Retention floor.
}

TEST(Power, DvfsScalesVoltageAndFrequency) {
  const Design d = drmp_design();
  const Process p;
  PowerTechniques dvfs;
  dvfs.clock_gating = true;
  dvfs.dvfs = true;
  dvfs.dvfs_freq_scale = 0.25;
  PowerTechniques gating_only;
  gating_only.clock_gating = true;
  const auto base = estimate_power(d, p, 200e6, {}, 0.1, gating_only);
  const auto scaled = estimate_power(d, p, 200e6, {}, 0.1, dvfs);
  // f/4 and V down -> well below a quarter of the dynamic power.
  EXPECT_LT(scaled.dynamic_mw, base.dynamic_mw * 0.25);
}

TEST(Power, DvfsVoltageClampedAtFloor) {
  EXPECT_DOUBLE_EQ(dvfs_voltage(1.2, 1.0), 1.2);
  EXPECT_GE(dvfs_voltage(1.2, 0.01), 0.6 * 1.2);
  EXPECT_LT(dvfs_voltage(1.2, 0.5), 1.2);
}

// ------------------------------------------------------- software baseline

TEST(SwBaseline, WifiNeedsGigahertzClassCpu) {
  // Thesis §2.1 (Panic et al.): ~1 GHz for a software WiFi MAC.
  const auto f = baseline::sw_required_frequency(mac::Protocol::WiFi, 1500);
  EXPECT_GT(f.required_mhz, 500.0);
  EXPECT_LT(f.required_mhz, 2000.0);
}

TEST(SwBaseline, TurnaroundBoundDominatesForSifsProtocols) {
  const auto wifi = baseline::sw_required_frequency(mac::Protocol::WiFi, 1500);
  EXPECT_GT(wifi.turnaround_mhz, wifi.throughput_mhz);
  const auto wimax = baseline::sw_required_frequency(mac::Protocol::WiMax, 1500);
  EXPECT_EQ(wimax.turnaround_mhz, 0.0);  // No SIFS-ACK in WiMAX.
}

TEST(SwBaseline, CryptoDominatesSoftwareCost) {
  for (auto proto : {mac::Protocol::WiMax, mac::Protocol::Uwb}) {
    const auto c = baseline::sw_cost_per_mpdu(proto, 1500);
    EXPECT_GT(c.crypto, c.total() / 2) << mac::to_string(proto);
  }
}

TEST(SwBaseline, CostScalesWithPayload) {
  const auto small = baseline::sw_cost_per_mpdu(mac::Protocol::WiFi, 100);
  const auto large = baseline::sw_cost_per_mpdu(mac::Protocol::WiFi, 1500);
  EXPECT_GT(large.total(), small.total() * 5);
}

// --------------------------------------------------------- golden baseline

TEST(GoldenBaseline, TxRxRoundTripAllProtocols) {
  for (auto proto : {mac::Protocol::WiFi, mac::Protocol::WiMax, mac::Protocol::Uwb}) {
    baseline::GoldenTxParams gp;
    gp.proto = proto;
    gp.key = Bytes(proto == mac::Protocol::WiMax ? 8 : 16, 0x3C);
    gp.seq = 11;
    gp.frag_threshold = 512;
    gp.src_addr = 1;
    gp.dst_addr = 2;
    gp.pnid = 3;
    gp.src_id = 4;
    gp.dest_id = 5;
    gp.cid = 6;
    Bytes msdu(1200);
    for (std::size_t i = 0; i < msdu.size(); ++i) msdu[i] = static_cast<u8>(i * 7);
    const auto frames = baseline::golden_tx_frames(gp, msdu);
    EXPECT_GE(frames.size(), 1u);
    const auto back = baseline::golden_rx_msdu(gp, frames);
    ASSERT_TRUE(back.has_value()) << mac::to_string(proto);
    EXPECT_EQ(*back, msdu) << mac::to_string(proto);
  }
}

TEST(GoldenBaseline, CorruptionDetected) {
  baseline::GoldenTxParams gp;
  gp.proto = mac::Protocol::WiFi;
  gp.key = Bytes(16, 1);
  auto frames = baseline::golden_tx_frames(gp, Bytes(200, 9));
  frames[0][40] ^= 1;
  EXPECT_FALSE(baseline::golden_rx_msdu(gp, frames).has_value());
}

}  // namespace
}  // namespace drmp::est
