// Failure injection across the redundancy paths the thesis motivates
// ("higher chances of data corruption/distortion during transmission",
// §2.3.1): on-air corruption via the Medium's tamper hook, HCS-vs-FCS
// discrimination, corrupted control frames, retry recovery, and a
// deterministic single-bit-flip fuzz over every frame codec.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <utility>

#include "crypto/crc.hpp"
#include "drmp/testbench.hpp"
#include "scenario/scenario_engine.hpp"
#include "sim/checkpoint.hpp"
#include "hw/ctrl_layout.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp {
namespace {

Bytes payload(std::size_t n, u8 seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 11 + seed);
  return b;
}

// ---------------------------------------------------------------------------
// On-air corruption via the Medium tamper hook.
// ---------------------------------------------------------------------------

TEST(FaultOnAir, CorruptedDataFrameIsRetriedAndRecovered) {
  Testbench tb;
  // Flip one body bit of the first data-sized frame only; later frames fly
  // clean, so the retry succeeds.
  bool armed = true;
  tb.medium(Mode::A).tamper = [&armed](Bytes& f) {
    if (!armed || f.size() < 100) return false;
    f[60] ^= 0x10;
    armed = false;
    return true;
  };
  const auto out = tb.send_and_wait(Mode::A, payload(800), 2'000'000'000ull);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.retries, 1u);
  EXPECT_EQ(tb.medium(Mode::A).tampered_frames(), 1u);
  // The peer saw the corrupted copy (recorded, not ACKed) plus the clean one.
  ASSERT_EQ(tb.peer(Mode::A).received_data_frames().size(), 2u);
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), 1u);
  // The delivered retry is bit-exact despite the earlier corruption.
  const auto p = mac::wifi::parse_data_mpdu(tb.peer(Mode::A).received_data_frames()[1]);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->fcs_ok);
}

TEST(FaultOnAir, CorruptedAckForcesTimeoutRetry) {
  Testbench tb;
  // Corrupt the first ACK-sized frame (14 B) — the transmitter must treat it
  // as lost, re-send, and complete on the second, clean ACK.
  bool armed = true;
  tb.medium(Mode::A).tamper = [&armed](Bytes& f) {
    if (!armed || f.size() != mac::wifi::kAckBytes) return false;
    f[4] ^= 0x01;
    armed = false;
    return true;
  };
  const auto out = tb.send_and_wait(Mode::A, payload(500), 2'000'000'000ull);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.retries, 1u);
  // The corrupted ACK was dropped by the device's own FCS check.
  EXPECT_GE(tb.device().event_handler().rx_bad_frames(Mode::A), 1u);
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), 2u);
}

TEST(FaultOnAir, EveryMsduSurvivesOneCorruptionEach) {
  // Soak: the first transmission of every MSDU is corrupted; each recovers
  // with exactly one retry and all payloads arrive intact and in order.
  Testbench tb;
  u32 clean_since_corrupt = 0;
  tb.medium(Mode::A).tamper = [&](Bytes& f) {
    if (f.size() < 100) return false;  // Leave ACKs alone.
    if (clean_since_corrupt == 0) {
      f[70] ^= 0x20;
      clean_since_corrupt = 1;
      return true;
    }
    clean_since_corrupt = 0;
    return false;
  };
  for (int i = 0; i < 3; ++i) tb.send_async(Mode::A, payload(400, static_cast<u8>(i)));
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 3, 4'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 3u);
  EXPECT_EQ(tb.medium(Mode::A).tampered_frames(), 3u);
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), 3u);
}

// ---------------------------------------------------------------------------
// HCS vs FCS discrimination on the receive path.
// ---------------------------------------------------------------------------

Word rx_status(Testbench& tb, Mode m, hw::CtrlWord w) {
  return tb.device().memory().cpu_read(hw::ctrl_status_addr(m, w));
}

TEST(FaultRxChecks, HeaderCorruptionFailsHcsEvenWhenFcsIsPatched) {
  // Flip a header byte and recompute the FCS so only the HCS can catch it —
  // proving the header check is a separate, functioning stage (§2.3.2.1 #1).
  Testbench tb;
  auto frames = tb.make_peer_frames(Mode::A, payload(300), /*seq=*/1);
  ASSERT_EQ(frames.size(), 1u);
  Bytes f = frames[0];
  f[4] ^= 0x04;  // addr1 bit.
  const u32 fcs = crypto::Crc32::compute(
      std::span<const u8>(f.data(), f.size() - mac::wifi::kFcsBytes));
  for (std::size_t i = 0; i < 4; ++i) {
    f[f.size() - mac::wifi::kFcsBytes + i] = static_cast<u8>(fcs >> (8 * i));
  }
  tb.peer(Mode::A).inject_frame(f, tb.scheduler().now() + 10);
  ASSERT_TRUE(tb.run_until(
      [&] { return tb.device().event_handler().rx_bad_frames(Mode::A) >= 1; },
      200'000'000ull));
  EXPECT_EQ(rx_status(tb, Mode::A, hw::CtrlWord::kFcsOk), 1u);
  EXPECT_EQ(rx_status(tb, Mode::A, hw::CtrlWord::kHcsOk), 0u);
  EXPECT_TRUE(tb.delivered(Mode::A).empty());
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 0u) << "no ACK for a bad header";
}

TEST(FaultRxChecks, BodyCorruptionFailsFcsButNotHcs) {
  Testbench tb;
  auto frames = tb.make_peer_frames(Mode::A, payload(300), /*seq=*/1);
  Bytes f = frames[0];
  f[f.size() / 2] ^= 0x80;  // Body byte: header check still passes.
  tb.peer(Mode::A).inject_frame(f, tb.scheduler().now() + 10);
  ASSERT_TRUE(tb.run_until(
      [&] { return tb.device().event_handler().rx_bad_frames(Mode::A) >= 1; },
      200'000'000ull));
  EXPECT_EQ(rx_status(tb, Mode::A, hw::CtrlWord::kFcsOk), 0u);
  EXPECT_TRUE(tb.delivered(Mode::A).empty());
}

TEST(FaultRxChecks, UwbCorruptedDataIsNotImmAcked) {
  Testbench tb;
  auto frames = tb.make_peer_frames(Mode::C, payload(200), /*seq=*/1);
  ASSERT_FALSE(frames.empty());
  Bytes f = frames[0];
  f[f.size() - 6] ^= 0x01;  // Body/FCS region.
  tb.peer(Mode::C).inject_frame(f, tb.scheduler().now() + 10);
  ASSERT_TRUE(tb.run_until(
      [&] { return tb.device().event_handler().rx_bad_frames(Mode::C) >= 1; },
      200'000'000ull));
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 0u);
  EXPECT_TRUE(tb.delivered(Mode::C).empty());
}

TEST(FaultRxChecks, WimaxCorruptedGmhFailsHcs8) {
  Testbench tb;
  auto frames = tb.make_peer_frames(Mode::B, payload(200), /*seq=*/1);
  ASSERT_FALSE(frames.empty());
  Bytes f = frames[0];
  f[2] ^= 0x40;  // Inside the 6-byte generic MAC header: HCS-8 must catch it.
  tb.peer(Mode::B).inject_frame(f, tb.scheduler().now() + 10);
  ASSERT_TRUE(tb.run_until(
      [&] { return tb.device().event_handler().rx_bad_frames(Mode::B) >= 1; },
      400'000'000ull));
  EXPECT_TRUE(tb.delivered(Mode::B).empty());
}

// ---------------------------------------------------------------------------
// Deterministic fuzz over the frame codecs.
// ---------------------------------------------------------------------------

TEST(CodecFuzz, RandomBuffersNeverCrashAnyParser) {
  std::mt19937 rng(0xF00D);
  for (int i = 0; i < 3000; ++i) {
    const std::size_t n = rng() % 3000;
    Bytes buf(n);
    for (auto& b : buf) b = static_cast<u8>(rng());
    // Must not crash, throw, or read out of bounds (ASan-checked in debug
    // builds); structural acceptance of garbage is fine — the CRC flags and
    // downstream checks reject it.
    (void)mac::wifi::parse_data_mpdu(buf);
    (void)mac::wifi::parse_control(buf);
    (void)mac::uwb::parse_frame(buf);
    (void)mac::wimax::parse_mpdu(buf);
  }
}

class BitFlipFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(BitFlipFuzz, AnySingleBitFlipInWifiMpduIsDetected) {
  std::mt19937 rng(GetParam());
  mac::wifi::DataHeader h;
  h.addr1 = mac::MacAddr::from_u64(0x111111);
  h.addr2 = mac::MacAddr::from_u64(0x222222);
  h.seq_num = static_cast<u16>(rng() % 4096);
  const Bytes body = payload(1 + rng() % 800, static_cast<u8>(rng()));
  const Bytes mpdu = mac::wifi::build_data_mpdu(h, body);

  for (int trial = 0; trial < 200; ++trial) {
    Bytes f = mpdu;
    const std::size_t bit = rng() % (f.size() * 8);
    f[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    const auto p = mac::wifi::parse_data_mpdu(f);
    ASSERT_TRUE(p.has_value());
    // CRC-32 detects every single-bit error over its coverage; a flip in the
    // header additionally (or instead) trips the CRC-16 HCS.
    EXPECT_FALSE(p->hcs_ok && p->fcs_ok)
        << "undetected single-bit flip at bit " << bit;
  }
}

TEST_P(BitFlipFuzz, AnySingleBitFlipInControlFramesIsDetected) {
  std::mt19937 rng(GetParam());
  const std::array<Bytes, 3> frames = {
      mac::wifi::build_ack(mac::MacAddr::from_u64(0xA1)),
      mac::wifi::build_cts(mac::MacAddr::from_u64(0xB2)),
      mac::wifi::build_rts(mac::MacAddr::from_u64(0xC3), mac::MacAddr::from_u64(0xD4), 99),
  };
  for (const Bytes& base : frames) {
    for (int trial = 0; trial < 100; ++trial) {
      Bytes f = base;
      const std::size_t bit = rng() % (f.size() * 8);
      f[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
      const auto p = mac::wifi::parse_control(f);
      // Either the frame-control no longer decodes as a control frame, or
      // the FCS catches the flip.
      if (p.has_value()) {
        EXPECT_FALSE(p->fcs_ok) << "undetected flip at bit " << bit;
      }
    }
  }
}

TEST_P(BitFlipFuzz, AnySingleBitFlipInUwbFrameIsDetected) {
  std::mt19937 rng(GetParam());
  const Bytes body = payload(1 + rng() % 500, static_cast<u8>(rng()));
  mac::uwb::Header h;
  h.type = mac::uwb::FrameType::Data;
  h.pnid = 0xBEEF;
  h.src_id = 2;
  h.dest_id = 1;
  h.ack_policy = mac::uwb::AckPolicy::ImmAck;
  const Bytes frame = mac::uwb::build_data_frame(h, body);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes f = frame;
    const std::size_t bit = rng() % (f.size() * 8);
    f[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    const auto p = mac::uwb::parse_frame(f);
    if (p.has_value()) {
      EXPECT_FALSE(p->hcs_ok && p->fcs_ok) << "undetected flip at bit " << bit;
    }
  }
}

TEST_P(BitFlipFuzz, HeaderBitFlipInWimaxGmhIsDetected) {
  std::mt19937 rng(GetParam());
  const Bytes body = payload(1 + rng() % 500, static_cast<u8>(rng()));
  const Bytes frame =
      mac::wimax::build_mpdu(0x1234, mac::wimax::FragSubheader{}, body, /*with_crc=*/false);
  // The CRC-8 HCS covers the GMH; flip bits there only (the body is
  // uncovered when the optional CRC is off — the 802.16 trade).
  for (int trial = 0; trial < 100; ++trial) {
    Bytes f = frame;
    const std::size_t bit = rng() % (mac::wimax::kGmhBytes * 8);
    f[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    const auto p = mac::wimax::parse_mpdu(f);
    if (p.has_value()) {
      EXPECT_FALSE(p->hcs_ok) << "undetected GMH flip at bit " << bit;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitFlipFuzz, ::testing::Values(11u, 23u, 3571u));

// ---------------------------------------------------------------------------
// Crash recovery: a torn checkpoint write never costs the last good snapshot.
// ---------------------------------------------------------------------------

// Checkpoints publish atomically — bytes land in `path + ".tmp"`, then a
// rename. Simulate the worst-timed crash (process death mid-write, leaving a
// truncated .tmp behind): resume still finds the last *complete* snapshot
// under the final name and reproduces the uninterrupted digest, while the
// torn bytes themselves are refused with a typed error, not misparsed.
TEST(FaultCrashRecovery, TruncatedWriteKeepsLastCompleteSnapshot) {
  using scenario::FleetStats;
  using scenario::ScenarioEngine;
  using scenario::ScenarioSpec;

  const ScenarioSpec proto = ScenarioSpec::contended_wifi_cell(8, 1, 2);
  const FleetStats base = ScenarioEngine(proto).run();
  ASSERT_TRUE(base.all_drained);

  const std::string path = ::testing::TempDir() + "crash_recovery.snap";
  const Cycle stride = proto.lockstep_stride;
  Cycle half = base.lockstep_cycles / 2 / stride * stride;
  if (half == 0) half = stride;
  ScenarioSpec clamped = proto;
  clamped.max_cycles = half;
  ScenarioEngine saver(std::move(clamped));
  saver.checkpoint_every(half, path);
  (void)saver.run();  // One complete snapshot now sits at `path`.

  // The crash: a later checkpoint dies mid-write. Its torn bytes only ever
  // exist under the .tmp name — the rename never happened.
  Bytes torn;
  {
    std::ifstream f(path, std::ios::binary);
    ASSERT_TRUE(f);
    torn.assign((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  }
  torn.resize(torn.size() / 3);
  {
    std::ofstream f(path + ".tmp", std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(torn.data()),
            static_cast<std::streamsize>(torn.size()));
  }

  // The torn bytes are rejected with a typed snapshot error...
  EXPECT_THROW(sim::snap::Reader r(std::move(torn)), sim::snap::SnapshotError);

  // ...and recovery from the published path reproduces the uninterrupted run.
  ScenarioEngine resumer(proto);
  resumer.resume(path);
  const FleetStats resumed = resumer.run();
  EXPECT_EQ(resumed.full_digest(), base.full_digest());
  EXPECT_EQ(resumed.report(), base.report());

  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace drmp
