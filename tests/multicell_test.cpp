// Multi-cell co-channel coupling tests (docs/MULTICELL.md): foreign-carrier
// image physics on ContendedMedium (interval-arithmetic CCA/occupancy/jam
// verdicts, never delivered, counted only by the home cell), ChannelCoupler
// forwarding in both delivery modes, and the engine-level contracts — the
// reference single-scheduler coupling produces real inter-cell collisions,
// the lax window-edge exchange reproduces its digests bit-for-bit across
// worker pools and idle-skip, an all-zeros inter-cell reach is physically
// indistinguishable from no coupling at all, and malformed coupling specs
// fail loudly at construction.
#include <gtest/gtest.h>

#include <stdexcept>

#include "net/audibility.hpp"
#include "net/channel_coupler.hpp"
#include "net/contended_medium.hpp"
#include "scenario/scenario_engine.hpp"
#include "sim/multi_scheduler.hpp"
#include "sim/scheduler.hpp"

namespace drmp::net {
namespace {

struct Sink : phy::MediumClient {
  std::vector<Bytes> frames;
  std::vector<int> sources;
  void on_frame(const Bytes& f, Cycle, int source) override {
    frames.push_back(f);
    sources.push_back(source);
  }
};

Bytes pattern_frame(std::size_t n, u8 seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(seed + i * 3);
  return b;
}

class RemoteCarrierTest : public ::testing::Test {
 protected:
  RemoteCarrierTest() : tb(200e6), sched(200e6) {}

  ContendedMedium& make(ContendedMedium::Params p = {}) {
    medium = std::make_unique<ContendedMedium>(mac::Protocol::WiFi, tb, p);
    medium->attach(sink);
    sched.add(*medium, "medium", sim::Scheduler::kStageMedium);
    return *medium;
  }

  sim::TimeBase tb;
  sim::Scheduler sched;
  std::unique_ptr<ContendedMedium> medium;
  Sink sink;
};

TEST_F(RemoteCarrierTest, ImageRaisesCcaOverItsShiftedWindowOnly) {
  ContendedMedium& m = make();
  const Cycle lat = m.cca_latency_cycles();
  ASSERT_GT(lat, 0u);
  m.begin_remote_tx(/*start=*/500, /*end=*/900, /*source=*/77);
  EXPECT_EQ(m.remote_txs(), 1u);
  EXPECT_FALSE(m.busy());  // Future start: the air is still silent.
  sched.run_cycles(500 + lat - 1);
  EXPECT_FALSE(m.cca_busy());  // Perceived window opens at start+latency...
  sched.run_cycles(1);
  EXPECT_TRUE(m.cca_busy());
  sched.run_cycles(900 - 500);  // ...and closes at end+latency.
  EXPECT_FALSE(m.cca_busy());
  // Pure energy: nothing was delivered and no source stats were touched.
  EXPECT_TRUE(sink.frames.empty());
  EXPECT_EQ(m.source(77).frames, 0u);
  EXPECT_EQ(m.collided_frames(), 0u);
}

TEST_F(RemoteCarrierTest, ImageJamsOverlappingLocalTransmissionCountedOnce) {
  ContendedMedium& m = make();
  const Cycle end = m.begin_tx(pattern_frame(300, 3), 1);
  m.begin_remote_tx(/*start=*/end / 2, /*end=*/end + 50, /*source=*/77);
  sched.run_cycles(end + m.cca_latency_cycles() + 60);
  // The local frame collided with foreign energy and was withheld; the
  // image itself is the neighbour cell's to count.
  EXPECT_TRUE(sink.frames.empty());
  EXPECT_EQ(m.collided_frames(), 1u);
  EXPECT_EQ(m.dropped_frames(), 1u);
  EXPECT_EQ(m.source(1).collisions, 1u);
  EXPECT_EQ(m.source(77).frames, 0u);
  EXPECT_EQ(m.source(77).collisions, 0u);
}

TEST_F(RemoteCarrierTest, LocalFrameEndingBeforeTheImageStartsIsUntouched) {
  ContendedMedium& m = make();
  const Bytes f = pattern_frame(120, 5);
  const Cycle end = m.begin_tx(f, 1);
  // Overlap verdicts are interval arithmetic: an image injected *now* but
  // starting after the local frame's last bit must not jam it.
  m.begin_remote_tx(/*start=*/end + 100, /*end=*/end + 600, /*source=*/77);
  sched.run_cycles(end + 700 + m.cca_latency_cycles());
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0], f);
  EXPECT_EQ(m.collided_frames(), 0u);
}

TEST_F(RemoteCarrierTest, OccupancyAcrossTheSilentGapIsExactWhenTicked) {
  ContendedMedium& m = make();
  m.begin_remote_tx(/*start=*/500, /*end=*/700, /*source=*/77);
  sched.run_cycles(1'000);
  // The tx_end_ high-watermark would have bridged [0, 500) as busy; the
  // remote-aware occupancy scan must count the 200 on-air cycles only.
  EXPECT_EQ(m.busy_cycles(), 200u);
}

TEST_F(RemoteCarrierTest, OccupancyAcrossTheSilentGapIsExactWhenSkipped) {
  ContendedMedium& m = make();
  m.begin_remote_tx(/*start=*/500, /*end=*/700, /*source=*/77);
  sched.run_cycles_batched(1'000);
  EXPECT_EQ(m.busy_cycles(), 200u);  // skip_idle's union sweep, same answer.
  EXPECT_GT(sched.ticks_skipped(), 0u);  // And it really did skip.
}

TEST_F(RemoteCarrierTest, RejectsCaptureAndPastStartsAndPointToPoint) {
  ContendedMedium::Params cap;
  cap.capture_preamble_us = 5.0;
  ContendedMedium& m = make(cap);
  // Capture verdicts depend on processing order; window-edge exchange
  // deliberately gives that order up.
  EXPECT_THROW(m.begin_remote_tx(0, 100, 77), std::logic_error);

  ContendedMedium plain(mac::Protocol::WiFi, tb, {});
  sim::Scheduler s2(200e6);
  s2.add(plain, "m2", sim::Scheduler::kStageMedium);
  s2.run_cycles(100);
  EXPECT_THROW(plain.begin_remote_tx(50, 200, 77), std::logic_error);  // Past.
  EXPECT_THROW(plain.begin_remote_tx(300, 300, 77), std::logic_error);  // Empty.

  phy::Medium p2p(mac::Protocol::WiFi, tb);
  EXPECT_THROW(p2p.begin_remote_tx(0, 100, 77), std::logic_error);
}

// ---- ChannelCoupler forwarding -------------------------------------------

class CouplerTest : public ::testing::Test {
 protected:
  CouplerTest() : tb(200e6), sched(200e6) {}

  /// Two co-channel media on one scheduler — the reference-shape harness.
  void build(ChannelCoupler::Params p) {
    a = std::make_unique<ContendedMedium>(mac::Protocol::WiFi, tb);
    b = std::make_unique<ContendedMedium>(mac::Protocol::WiFi, tb);
    a->attach(sink_a);
    b->attach(sink_b);
    sched.add(*a, "a", sim::Scheduler::kStageMedium);
    sched.add(*b, "b", sim::Scheduler::kStageMedium);
    coupler = std::make_unique<ChannelCoupler>(std::move(p));
    coupler->attach(/*member=*/0, /*band=*/0, *a);
    coupler->attach(/*member=*/1, /*band=*/0, *b);
  }

  sim::TimeBase tb;
  sim::Scheduler sched;
  std::unique_ptr<ContendedMedium> a, b;
  std::unique_ptr<ChannelCoupler> coupler;
  Sink sink_a, sink_b;
};

TEST_F(CouplerTest, ImmediateModeMirrorsWithTheLatencyShift) {
  ChannelCoupler::Params p;
  p.latency = 250;
  p.immediate = true;
  build(std::move(p));
  const Cycle end = a->begin_tx(pattern_frame(200, 9), 1);
  EXPECT_EQ(coupler->forwarded(), 1u);
  EXPECT_EQ(b->remote_txs(), 1u);
  EXPECT_FALSE(b->busy());  // The image starts 250 cycles out.
  const Cycle lat = b->cca_latency_cycles();
  sched.run_cycles(250 + lat);
  EXPECT_TRUE(b->cca_busy());
  sched.run_cycles(end + 250 + lat);
  EXPECT_FALSE(b->cca_busy());
  EXPECT_TRUE(sink_b.frames.empty());  // Energy crossed cells; data did not.
  EXPECT_EQ(a->remote_txs(), 0u);      // No echo back into the source cell.
}

TEST_F(CouplerTest, LaxModeQueuesUntilExchange) {
  ChannelCoupler::Params p;
  p.latency = 400;
  build(std::move(p));
  a->begin_tx(pattern_frame(200, 9), 1);
  b->begin_tx(pattern_frame(200, 4), 2);
  EXPECT_EQ(coupler->forwarded(), 0u);  // Outboxed, not yet visible.
  EXPECT_EQ(a->remote_txs(), 0u);
  EXPECT_EQ(b->remote_txs(), 0u);
  coupler->exchange();
  EXPECT_EQ(coupler->forwarded(), 2u);
  EXPECT_EQ(a->remote_txs(), 1u);
  EXPECT_EQ(b->remote_txs(), 1u);
  coupler->exchange();  // Outboxes drained: a second edge forwards nothing.
  EXPECT_EQ(coupler->forwarded(), 2u);
}

TEST_F(CouplerTest, ReachGatesForwardingPerDirection) {
  ChannelCoupler::Params p;
  p.immediate = true;
  p.reach = AudibilityMatrix::asymmetric_pair(2, /*heard=*/1, /*deaf=*/0);
  build(std::move(p));
  // Cell 1 hears cell 0; cell 0 is deaf to cell 1 (one-way asymmetry).
  a->begin_tx(pattern_frame(100, 1), 1);
  EXPECT_EQ(b->remote_txs(), 1u);
  b->begin_tx(pattern_frame(100, 2), 2);
  EXPECT_EQ(a->remote_txs(), 0u);
  EXPECT_EQ(coupler->forwarded(), 1u);
}

TEST_F(CouplerTest, ConstructionGuards) {
  EXPECT_THROW(ChannelCoupler({/*latency=*/0, {}, false}), std::invalid_argument);
  ChannelCoupler::Params p;
  p.immediate = true;
  build(std::move(p));
  ChannelCoupler other({/*latency=*/1, {}, true});
  // One coupler per medium: the on_tx tap is already taken.
  EXPECT_THROW(other.attach(0, 0, *a), std::logic_error);
}

}  // namespace
}  // namespace drmp::net

// ---- Engine-level coupling contracts -------------------------------------

namespace drmp::scenario {
namespace {

FleetStats run_coupled(std::size_t cells, std::size_t stations, bool reference,
                       unsigned workers, bool idle_skip, u32 msdus = 3) {
  ScenarioSpec spec =
      ScenarioSpec::coupled_wifi_cells(cells, stations, /*seed=*/11, msdus);
  spec.coupled_reference = reference;
  spec.worker_threads = workers;
  spec.idle_skip = idle_skip;
  return ScenarioEngine(std::move(spec)).run();
}

TEST(MultiCell, ReferenceCouplingProducesInterCellCollisions) {
  // One station plus its AP per cell: intra-cell contention has a single
  // contender, so every collided frame was jammed by the neighbour cell's
  // carrier leaking across the coupling. The conventional single-scheduler
  // reference must show the physics before the lax path is measured
  // against it.
  const FleetStats fs = run_coupled(2, 1, /*reference=*/true, 1, true,
                                    /*msdus=*/6);
  ASSERT_TRUE(fs.all_drained);
  EXPECT_EQ(fs.cells.size(), 2u);
  EXPECT_GT(fs.total_collisions(), 0u) << fs.report();
  // The retry machinery recovers every inter-cell loss.
  for (const DeviceStats& ds : fs.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
  }
}

TEST(MultiCell, LaxCouplingMatchesReferenceAcrossWorkersAndIdleSkip) {
  // The tentpole pin: window-edge exchange with free-running lanes inside
  // the audibility horizon is bit-identical to immediate injection on one
  // shared clock — across worker pools and quiescence skipping.
  const FleetStats ref = run_coupled(2, 2, /*reference=*/true, 1, true);
  ASSERT_TRUE(ref.all_drained);
  EXPECT_GT(ref.total_collisions(), 0u);
  for (const unsigned workers : {1u, 0u}) {
    for (const bool idle_skip : {true, false}) {
      const FleetStats lax =
          run_coupled(2, 2, /*reference=*/false, workers, idle_skip);
      EXPECT_EQ(ref.full_digest(), lax.full_digest())
          << "workers=" << workers << " idle_skip=" << idle_skip;
    }
  }
  const FleetStats lax = run_coupled(2, 2, /*reference=*/false, 1, true);
  EXPECT_EQ(ref.report(), lax.report());
}

TEST(MultiCell, AllZerosReachIsBitIdenticalToNoCouplingAtAll) {
  // Full spatial reuse: a coupling whose reach has no off-diagonal hearing
  // must leave no trace — same digests as the identical spec with the
  // coupling erased.
  net::AudibilityMatrix silent = net::AudibilityMatrix::full(2);
  silent.hide_pair(0, 1);
  ScenarioSpec coupled =
      ScenarioSpec::coupled_wifi_cells(2, 2, /*seed=*/11, 3, silent);
  ScenarioSpec isolated = coupled;
  isolated.couplings.clear();
  for (CellSpec& c : isolated.cells) c.coupling_group = -1;
  const FleetStats a = ScenarioEngine(std::move(coupled)).run();
  const FleetStats b = ScenarioEngine(std::move(isolated)).run();
  EXPECT_EQ(a.full_digest(), b.full_digest());
  EXPECT_EQ(a.report(), b.report());
  EXPECT_EQ(a.total_collisions(), 0u);  // Single contender per cell, no leak.
}

TEST(MultiCell, StrideIsClampedToTheCouplingHorizon) {
  ScenarioSpec spec = ScenarioSpec::coupled_wifi_cells(2, 1);
  ASSERT_EQ(spec.lockstep_stride, sim::MultiScheduler::kDefaultStride);
  ScenarioEngine engine(std::move(spec));
  // 2 us of inter-cell latency at the 200 MHz architecture clock.
  EXPECT_EQ(engine.effective_stride(), 400u);
}

TEST(MultiCell, LegacyPathRefusesCoupledScenarios) {
  ScenarioEngine engine(ScenarioSpec::coupled_wifi_cells(2, 1));
  EXPECT_THROW(engine.run(ScenarioEngine::Path::kLegacy), std::logic_error);
}

TEST(MultiCell, MalformedCouplingSpecsFailAtConstruction) {
  {  // coupling_group out of range of ScenarioSpec::couplings.
    ScenarioSpec s = ScenarioSpec::contended_wifi_cell(2);
    s.cells[0].coupling_group = 0;
    EXPECT_THROW(ScenarioEngine{std::move(s)}, std::invalid_argument);
  }
  {  // A group needs at least two member cells.
    ScenarioSpec s = ScenarioSpec::contended_wifi_cell(2);
    s.couplings.emplace_back();
    s.cells[0].coupling_group = 0;
    EXPECT_THROW(ScenarioEngine{std::move(s)}, std::invalid_argument);
  }
  {  // Point-to-point cells cannot carry foreign carrier.
    ScenarioSpec s = ScenarioSpec::mixed_three_standard(2);
    s.couplings.emplace_back();
    for (CellSpec& c : s.cells) c.coupling_group = 0;
    EXPECT_THROW(ScenarioEngine{std::move(s)}, std::invalid_argument);
  }
  {  // The reach matrix must cover exactly the member cells.
    ScenarioSpec s = ScenarioSpec::coupled_wifi_cells(
        2, 1, 1, 3, net::AudibilityMatrix::full(3));
    EXPECT_THROW(ScenarioEngine{std::move(s)}, std::invalid_argument);
  }
  {  // Capture verdicts are order-dependent; coupling forbids them.
    ScenarioSpec s = ScenarioSpec::coupled_wifi_cells(2, 1);
    s.cells[0].contention.capture_preamble_us = 5.0;
    EXPECT_THROW(ScenarioEngine{std::move(s)}, std::invalid_argument);
  }
  {  // A connected coupling needs a positive latency.
    ScenarioSpec s = ScenarioSpec::coupled_wifi_cells(2, 1);
    s.couplings[0].latency_us = 0.0;
    EXPECT_THROW(ScenarioEngine{std::move(s)}, std::invalid_argument);
  }
}

}  // namespace
}  // namespace drmp::scenario
