// Checkpoint/resume tests (sim/checkpoint.hpp + ScenarioEngine resume).
//
// The contract under test: a run interrupted at any quiescent lockstep round
// edge and resumed from its snapshot — in a fresh process, under a different
// execution strategy (worker_threads, idle_skip) — reproduces the
// uninterrupted run's full_digest bit-for-bit. And the failure surface: a
// malformed snapshot (bad magic, wrong version, CRC damage, unknown or
// torn records) is rejected with the matching typed error before any
// component state is touched — refuse, never guess.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "scenario/scenario_engine.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/checkpoint.hpp"

namespace drmp::scenario {
namespace {

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

Bytes read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f) << "missing " << path;
  return Bytes((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Bytes& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

/// Rounds down to a lockstep round edge (stride multiple), at least one round.
Cycle aligned(Cycle c, Cycle stride) {
  const Cycle a = c / stride * stride;
  return a == 0 ? stride : a;
}

/// Runs `proto` up to the round edge at `snap_at` and snapshots there — the
/// "interrupted" half of every roundtrip below. The budget clamp stands in
/// for the crash: the engine never sees the rest of the workload.
void save_snapshot_at(const ScenarioSpec& proto, Cycle snap_at, const std::string& path) {
  ScenarioSpec clamped = proto;
  clamped.max_cycles = snap_at;
  ScenarioEngine saver(std::move(clamped));
  saver.checkpoint_every(snap_at, path);
  (void)saver.run();
}

/// Fresh engine, restored state, rest of the run — under a possibly different
/// execution strategy than the one that wrote the snapshot.
FleetStats resume_and_finish(const ScenarioSpec& proto, const std::string& path,
                             unsigned workers, bool idle_skip) {
  ScenarioSpec rest = proto;
  rest.worker_threads = workers;
  rest.idle_skip = idle_skip;
  ScenarioEngine resumer(std::move(rest));
  resumer.resume(path);
  return resumer.run();
}

// ---------------------------------------------------------------------------
// Roundtrip: interrupted + resumed == uninterrupted, bit for bit.
// ---------------------------------------------------------------------------

TEST(Checkpoint, InterruptedContendedCellReproducesDigest) {
  const ScenarioSpec proto = ScenarioSpec::contended_wifi_cell(8, 1, 2);
  const FleetStats base = ScenarioEngine(proto).run();
  ASSERT_TRUE(base.all_drained);

  const std::string path = tmp_path("ckpt_contended.snap");
  const Cycle half = aligned(base.lockstep_cycles / 2, proto.lockstep_stride);
  save_snapshot_at(proto, half, path);

  const FleetStats resumed = resume_and_finish(proto, path, 1, true);
  EXPECT_EQ(resumed.full_digest(), base.full_digest());
  EXPECT_EQ(resumed.completion_digest(), base.completion_digest());
  EXPECT_EQ(resumed.lockstep_cycles, base.lockstep_cycles);
  EXPECT_EQ(resumed.report(), base.report());
  std::remove(path.c_str());
}

// Randomized snapshot points, resumed across the execution-policy matrix:
// the snapshot edge is part of the simulated timeline, the strategy that
// finishes the run is not. worker_threads {1, 0(=cores)} x idle_skip on/off
// all land on the same full_digest — the same invariance the uninterrupted
// digest contract pins, carried through a restore.
TEST(Checkpoint, RandomSnapshotPointsAcrossExecutionMatrix) {
  const struct {
    const char* name;
    ScenarioSpec proto;
  } scenarios[] = {
      {"contended8", ScenarioSpec::contended_wifi_cell(8, 1, 2)},
      {"mixed8", ScenarioSpec::mixed_three_standard(8, 1, 1)},
  };
  u64 lcg = 0x9E3779B97F4A7C15ull;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  for (const auto& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    const FleetStats base = ScenarioEngine(sc.proto).run();
    ASSERT_TRUE(base.all_drained);
    const std::string path = tmp_path(std::string("ckpt_rand_") + sc.name + ".snap");

    // First random edge: the full 2x2 strategy matrix.
    const Cycle e1 = aligned(base.lockstep_cycles * (20 + next() % 60) / 100,
                             sc.proto.lockstep_stride);
    save_snapshot_at(sc.proto, e1, path);
    for (const unsigned workers : {1u, 0u}) {
      for (const bool skip : {true, false}) {
        SCOPED_TRACE(testing::Message() << "edge " << e1 << " workers " << workers
                                        << " idle_skip " << skip);
        const FleetStats resumed = resume_and_finish(sc.proto, path, workers, skip);
        EXPECT_EQ(resumed.full_digest(), base.full_digest());
        EXPECT_EQ(resumed.lockstep_cycles, base.lockstep_cycles);
      }
    }

    // Second random edge: serial default only (edge coverage, not matrix).
    const Cycle e2 = aligned(base.lockstep_cycles * (20 + next() % 60) / 100,
                             sc.proto.lockstep_stride);
    save_snapshot_at(sc.proto, e2, path);
    const FleetStats resumed = resume_and_finish(sc.proto, path, 1, true);
    EXPECT_EQ(resumed.full_digest(), base.full_digest()) << "edge " << e2;
    std::remove(path.c_str());
  }
}

TEST(Checkpoint, CoupledCellsRoundtrip) {
  // Two co-channel BSSs in one coupling group: the snapshot must carry the
  // coupler's pending cross-cell forwards and both lanes' clocks.
  const ScenarioSpec proto = ScenarioSpec::coupled_wifi_cells(2, 2, 3, 2);
  const FleetStats base = ScenarioEngine(proto).run();
  ASSERT_TRUE(base.all_drained);

  // Round edges are multiples of the *effective* stride (clamped to the
  // coupling group's horizon), not the spec's.
  const Cycle stride = ScenarioEngine(proto).effective_stride();
  const std::string path = tmp_path("ckpt_coupled.snap");
  const Cycle half = aligned(base.lockstep_cycles / 2, stride);
  save_snapshot_at(proto, half, path);

  const FleetStats resumed = resume_and_finish(proto, path, 1, true);
  EXPECT_EQ(resumed.full_digest(), base.full_digest());
  EXPECT_EQ(resumed.report(), base.report());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Folded device accounting (ScenarioSpec::fold_device_stats).
// ---------------------------------------------------------------------------

TEST(Checkpoint, FoldedDeviceStatsPinsDigestsAndTotals) {
  ScenarioSpec retained = ScenarioSpec::contended_wifi_cell(8, 1, 2);
  ScenarioSpec folded = retained;
  folded.fold_device_stats = true;
  const FleetStats a = ScenarioEngine(std::move(retained)).run();
  const FleetStats b = ScenarioEngine(std::move(folded)).run();

  // O(cells) live memory: no retained DeviceStats, only the running chain.
  EXPECT_EQ(a.devices.size(), 8u);
  EXPECT_TRUE(b.devices.empty());
  EXPECT_EQ(b.folded_devices, 8u);

  // Both digest chains and every aggregate are bit-identical to retention.
  EXPECT_EQ(a.full_digest(), b.full_digest());
  EXPECT_EQ(a.completion_digest(), b.completion_digest());
  EXPECT_EQ(a.device_cycles_total(), b.device_cycles_total());
  EXPECT_DOUBLE_EQ(a.fleet_raw_mw(), b.fleet_raw_mw());
  EXPECT_DOUBLE_EQ(a.fleet_gated_mw(), b.fleet_gated_mw());
  EXPECT_DOUBLE_EQ(a.fleet_dvfs_mw(), b.fleet_dvfs_mw());
}

// ---------------------------------------------------------------------------
// Malformed-snapshot rejection: typed errors, no partial restores.
// ---------------------------------------------------------------------------

Bytes small_envelope() {
  sim::snap::Writer w;
  w.begin_record("r");
  u64 v = 0x1122334455667788ull;
  w.io(v);
  w.end_record();
  return w.envelope();
}

TEST(CheckpointFormat, BadMagicIsRejected) {
  Bytes env = small_envelope();
  env[0] ^= 0xFF;
  EXPECT_THROW(sim::snap::Reader r(std::move(env)), sim::snap::BadMagicError);
}

TEST(CheckpointFormat, TruncationBelowHeaderIsRejected) {
  Bytes env = small_envelope();
  env.resize(10);
  EXPECT_THROW(sim::snap::Reader r(std::move(env)), sim::snap::BadMagicError);
}

TEST(CheckpointFormat, UnknownVersionIsRejectedNeverGuessed) {
  // The version-bump policy: a future (or corrupted) format version is
  // refused outright — this build never attempts a best-effort parse of a
  // layout it does not know. Bumping kSnapshotVersion invalidates every
  // older snapshot by construction.
  Bytes env = small_envelope();
  env[8] ^= 0x01;  // u32 version lives at offset 8.
  EXPECT_THROW(sim::snap::Reader r(std::move(env)), sim::snap::BadVersionError);
}

TEST(CheckpointFormat, PayloadCorruptionFailsCrc) {
  Bytes env = small_envelope();
  env[20] ^= 0x01;  // First payload byte (after the 20-byte header).
  EXPECT_THROW(sim::snap::Reader r(std::move(env)), sim::snap::CrcMismatchError);
}

TEST(CheckpointFormat, OverlongLengthPrefixIsRejected) {
  Bytes env = small_envelope();
  env[12] += 8;  // u64 payload length at offset 12: claim 8 phantom bytes.
  EXPECT_THROW(sim::snap::Reader r(std::move(env)), sim::snap::RecordOverrunError);
}

TEST(CheckpointFormat, TruncatedPayloadIsRejected) {
  Bytes env = small_envelope();
  env.resize(env.size() - 5);  // Lose the CRC and part of the payload.
  EXPECT_THROW(sim::snap::Reader r(std::move(env)), sim::snap::RecordOverrunError);
}

TEST(CheckpointFormat, UnexpectedRecordNameIsRejected) {
  sim::snap::Reader r(small_envelope());
  EXPECT_THROW(r.expect("engine"), sim::snap::UnknownRecordError);
}

TEST(CheckpointFormat, PartiallyConsumedRecordIsRejected) {
  sim::snap::Reader r(small_envelope());
  r.expect("r");
  u32 half = 0;
  r.io(half);  // Consume 4 of the record's 8 body bytes...
  EXPECT_THROW(r.leave(), sim::snap::RecordOverrunError);  // ...then bail.
}

TEST(CheckpointFormat, AbsurdElementCountIsRejectedBeforeAllocation) {
  sim::snap::Writer w;
  w.begin_record("v");
  u64 claimed = 1'000'000'000ull;  // A count no 8-byte body can hold.
  w.io(claimed);
  w.end_record();
  sim::snap::Reader r(w.envelope());
  r.expect("v");
  std::vector<u32> v;
  EXPECT_THROW(r.io(v), sim::snap::RecordOverrunError);
}

// ---------------------------------------------------------------------------
// Engine-level rejection: scenario identity and misuse.
// ---------------------------------------------------------------------------

/// A cheap real snapshot: a few thousand cycles into the contended cell.
void save_small_real_snapshot(const std::string& path) {
  const ScenarioSpec proto = ScenarioSpec::contended_wifi_cell(8, 1, 2);
  save_snapshot_at(proto, 8 * proto.lockstep_stride, path);
}

TEST(CheckpointEngine, MismatchedScenarioIsRejected) {
  const std::string path = tmp_path("ckpt_fp.snap");
  save_small_real_snapshot(path);

  // Same shape, different seed: different simulated timeline, refused.
  ScenarioEngine other_seed(ScenarioSpec::contended_wifi_cell(8, 2, 2));
  EXPECT_THROW(other_seed.resume(path), sim::snap::SnapshotError);

  // Different fleet shape entirely.
  ScenarioEngine other_shape(ScenarioSpec::mixed_three_standard(8, 1, 2));
  EXPECT_THROW(other_shape.resume(path), sim::snap::SnapshotError);

  // The matching scenario still loads (the rejections above were the
  // fingerprint, not the file).
  ScenarioEngine match(ScenarioSpec::contended_wifi_cell(8, 1, 2));
  EXPECT_NO_THROW(match.resume(path));
  std::remove(path.c_str());
}

TEST(CheckpointEngine, VersionBumpedFileIsRefusedByResume) {
  const std::string path = tmp_path("ckpt_ver.snap");
  save_small_real_snapshot(path);
  Bytes bytes = read_file(path);
  ASSERT_GT(bytes.size(), 24u);
  bytes[8] ^= 0x01;  // Bump the format version in place.
  write_file(path, bytes);
  ScenarioEngine engine(ScenarioSpec::contended_wifi_cell(8, 1, 2));
  EXPECT_THROW(engine.resume(path), sim::snap::BadVersionError);
  std::remove(path.c_str());
}

TEST(CheckpointEngine, MisuseIsRejectedUpFront) {
  ScenarioEngine engine(ScenarioSpec::contended_wifi_cell(4, 1, 1));
  EXPECT_THROW(engine.checkpoint_every(0, "x.snap"), std::invalid_argument);
  EXPECT_THROW(engine.checkpoint_every(1024, ""), std::invalid_argument);

  // Tracing keeps flight-recorder rings out of snapshots by refusing the
  // combination, not by silently dropping the rings.
  ScenarioSpec traced = ScenarioSpec::contended_wifi_cell(4, 1, 1);
  traced.trace.enabled = true;
  ScenarioEngine traced_engine(std::move(traced));
  EXPECT_THROW(traced_engine.checkpoint_every(1024, tmp_path("x.snap")),
               std::logic_error);
  EXPECT_THROW(traced_engine.resume(tmp_path("nope.snap")), std::logic_error);
}

// ---------------------------------------------------------------------------
// Golden snapshot: yesterday's file loads in today's build.
// ---------------------------------------------------------------------------

// A committed version-1 snapshot of the 4-station contended cell, halfway
// through its run. Guards the on-disk format itself: any accidental layout
// change in a persist() breaks this load loudly. Regenerate (only alongside
// a deliberate kSnapshotVersion bump or a simulation-behaviour change) with
//   DRMP_REGEN_GOLDEN=1 ./drmp_tests --gtest_filter='Checkpoint.Golden*'
TEST(Checkpoint, GoldenSnapshotLoadsAndFinishes) {
  const ScenarioSpec proto = ScenarioSpec::contended_wifi_cell(4, 5, 2);
  const FleetStats base = ScenarioEngine(proto).run();
  ASSERT_TRUE(base.all_drained);
  const Cycle half = aligned(base.lockstep_cycles / 2, proto.lockstep_stride);

  const std::string path =
      std::string(DRMP_SOURCE_DIR) + "/tests/golden/contended4_checkpoint.snap";
  if (std::getenv("DRMP_REGEN_GOLDEN") != nullptr) {
    save_snapshot_at(proto, half, path);
  }

  ScenarioEngine resumer(proto);
  ASSERT_NO_THROW(resumer.resume(path))
      << "tests/golden/contended4_checkpoint.snap no longer loads; if the "
         "format changed deliberately, bump kSnapshotVersion and regenerate";
  EXPECT_EQ(resumer.resume_base(), half);
  const FleetStats resumed = resumer.run();
  EXPECT_EQ(resumed.full_digest(), base.full_digest());
  EXPECT_EQ(resumed.report(), base.report());
}

}  // namespace
}  // namespace drmp::scenario
