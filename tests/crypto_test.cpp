// Known-answer tests for the crypto substrate (CRC-8/16/32, RC4, AES-128,
// DES/3DES) — the published vectors pin the RFU datapaths to the real
// algorithms the standards mandate.
#include <gtest/gtest.h>

#include "crypto/aes128.hpp"
#include "crypto/crc.hpp"
#include "crypto/des.hpp"
#include "crypto/rc4.hpp"

namespace drmp::crypto {
namespace {

Bytes ascii(const char* s) { return Bytes(s, s + std::string(s).size()); }

// ------------------------------------------------------------------- CRC

TEST(Crc32, CheckValue) {
  // Standard CRC-32 check value over "123456789".
  EXPECT_EQ(Crc32::compute(ascii("123456789")), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const Bytes data = ascii("The quick brown fox jumps over the lazy dog");
  Crc32 inc;
  for (u8 b : data) inc.update(b);
  EXPECT_EQ(inc.value(), Crc32::compute(data));
}

TEST(Crc32, ResidueProperty) {
  // Appending the little-endian CRC to the message drives the register to
  // the residue constant — the property the Rx RFU's on-the-fly check uses.
  Bytes data = ascii("residue property");
  const u32 crc = Crc32::compute(data);
  put_le32(data, crc);
  EXPECT_EQ(Crc32::compute(data), 0x2144DF1Cu);
}

TEST(Crc32, EmptyInput) { EXPECT_EQ(Crc32::compute({}), 0x00000000u); }

TEST(Crc16Ccitt, CheckValue) {
  EXPECT_EQ(Crc16Ccitt::compute(ascii("123456789")), 0x29B1u);
}

TEST(Crc16Ccitt, IncrementalMatchesOneShot) {
  const Bytes data = ascii("abcdefgh");
  Crc16Ccitt inc;
  inc.update(std::span<const u8>(data.data(), 3));
  inc.update(std::span<const u8>(data.data() + 3, data.size() - 3));
  EXPECT_EQ(inc.value(), Crc16Ccitt::compute(data));
}

TEST(Crc8, CheckValue) { EXPECT_EQ(Crc8::compute(ascii("123456789")), 0xF4u); }

TEST(Crc8, SingleBitErrorDetected) {
  Bytes gmh = {0x40, 0x00, 0x2E, 0x12, 0x34};
  const u8 hcs = Crc8::compute(gmh);
  gmh[2] ^= 0x01;
  EXPECT_NE(Crc8::compute(gmh), hcs);
}

// ------------------------------------------------------------------- RC4

TEST(Rc4, KeystreamVectorKey) {
  // RFC 6229-style: key "Key" -> keystream EB9F7781B734CA72A719...
  Rc4 rc4(ascii("Key"));
  const u8 expected[10] = {0xEB, 0x9F, 0x77, 0x81, 0xB7, 0x34, 0xCA, 0x72, 0xA7, 0x19};
  for (u8 e : expected) EXPECT_EQ(rc4.next(), e);
}

TEST(Rc4, PlaintextVector) {
  // Key "Key", plaintext "Plaintext" -> BBF316E8D940AF0AD3.
  Rc4 rc4(ascii("Key"));
  Bytes data = ascii("Plaintext");
  rc4.process(data);
  const Bytes expected = {0xBB, 0xF3, 0x16, 0xE8, 0xD9, 0x40, 0xAF, 0x0A, 0xD3};
  EXPECT_EQ(data, expected);
}

TEST(Rc4, RoundTrip) {
  const Bytes key = ascii("WEPKEY1234567");
  Bytes data(333);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7 + 1);
  const Bytes orig = data;
  Rc4(key).process(data);
  EXPECT_NE(data, orig);
  Rc4(key).process(data);
  EXPECT_EQ(data, orig);
}

// ------------------------------------------------------------------- AES

TEST(Aes128, Fips197Vector) {
  const Bytes key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                     0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  Bytes block = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const Bytes expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                          0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key);
  aes.encrypt_block(block);
  EXPECT_EQ(block, expected);
  aes.decrypt_block(block);
  const Bytes plain = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                       0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  EXPECT_EQ(block, plain);
}

TEST(Aes128, CtrRoundTripArbitraryLength) {
  const Bytes key = ascii("0123456789abcdef");
  const Bytes nonce(16, 0x42);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1500u}) {
    Bytes data(len);
    for (std::size_t i = 0; i < len; ++i) data[i] = static_cast<u8>(i);
    const Bytes orig = data;
    Aes128 aes(key);
    aes.ctr_process(nonce, data);
    if (len > 0) EXPECT_NE(data, orig);
    aes.ctr_process(nonce, data);
    EXPECT_EQ(data, orig) << "len=" << len;
  }
}

// ------------------------------------------------------------------- DES

TEST(Des, ClassicVector) {
  // Key 133457799BBCDFF1, plaintext 0123456789ABCDEF -> 85E813540F0AB405.
  const Bytes key = {0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1};
  Bytes block = {0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF};
  Des des(key);
  des.encrypt_block(block);
  const Bytes expected = {0x85, 0xE8, 0x13, 0x54, 0x0F, 0x0A, 0xB4, 0x05};
  EXPECT_EQ(block, expected);
  des.decrypt_block(block);
  const Bytes plain = {0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF};
  EXPECT_EQ(block, plain);
}

TEST(Des, CbcRoundTrip) {
  const Bytes key = ascii("8bytekey");
  const Bytes iv = ascii("initvect");
  Bytes data(64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(255 - i);
  const Bytes orig = data;
  Des des(key);
  des.cbc_encrypt(iv, data);
  EXPECT_NE(data, orig);
  des.cbc_decrypt(iv, data);
  EXPECT_EQ(data, orig);
}

TEST(TripleDes, EncryptDecrypt) {
  Bytes key24(24);
  for (std::size_t i = 0; i < 24; ++i) key24[i] = static_cast<u8>(i + 1);
  TripleDes tdes(key24);
  Bytes block = ascii("KEYXCHNG");
  const Bytes orig = block;
  tdes.encrypt_block(block);
  EXPECT_NE(block, orig);
  tdes.decrypt_block(block);
  EXPECT_EQ(block, orig);
}

TEST(TripleDes, DegeneratesToDesWithEqualKeys) {
  // EDE with K1=K2=K3 equals single DES.
  Bytes key24;
  const Bytes k8 = ascii("samekey!");
  for (int i = 0; i < 3; ++i) key24.insert(key24.end(), k8.begin(), k8.end());
  Bytes a = ascii("ABCDEFGH");
  Bytes b = a;
  TripleDes(key24).encrypt_block(a);
  Des(k8).encrypt_block(b);
  EXPECT_EQ(a, b);
}

// -------------------------------------------------- property-style sweeps

class CrcLinearity : public ::testing::TestWithParam<int> {};

TEST_P(CrcLinearity, AppendZerosShiftsRegister) {
  // CRC(m) fully determines CRC(m || tail) given the tail — incremental
  // updates from a snapshot must agree with a full recompute.
  const int seed = GetParam();
  Bytes msg(200 + seed);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<u8>((i * 31 + seed * 7) & 0xFF);
  }
  Crc32 inc;
  inc.update(std::span<const u8>(msg.data(), 100));
  inc.update(std::span<const u8>(msg.data() + 100, msg.size() - 100));
  EXPECT_EQ(inc.value(), Crc32::compute(msg));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrcLinearity, ::testing::Range(0, 8));

}  // namespace
}  // namespace drmp::crypto
