// Protocol-control edge cases: queued traffic, stray/late events, failure
// injection on each protocol, Event-Handler filtering, and the WiMAX ARQ
// window-full stall path.
#include <gtest/gtest.h>

#include "drmp/testbench.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp {
namespace {

Bytes patterned(std::size_t n, u8 seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i + seed);
  return b;
}

TEST(CtrlEdge, QueuedMsdusDrainInOrder) {
  Testbench tb;
  for (int i = 0; i < 4; ++i) tb.send_async(Mode::A, patterned(300, static_cast<u8>(i)));
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 4, 2'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 4u);
  // The peer saw them in queue order (sequence numbers ascend).
  const auto& frames = tb.peer(Mode::A).received_data_frames();
  ASSERT_EQ(frames.size(), 4u);
  u16 prev = 0;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const auto p = mac::wifi::parse_data_mpdu(frames[k]);
    ASSERT_TRUE(p.has_value());
    if (k > 0) {
      EXPECT_EQ(p->hdr.seq_num, prev + 1);
    }
    prev = p->hdr.seq_num;
    EXPECT_EQ(p->body.size(), 300u);
  }
}

TEST(CtrlEdge, StrayAckIsIgnored) {
  Testbench tb;
  // An unsolicited ACK arrives while the transmitter is idle: nothing breaks.
  const auto ack =
      mac::wifi::build_ack(mac::MacAddr::from_u64(tb.config().modes[0].ident.self_addr));
  tb.peer(Mode::A).inject_frame(ack, tb.scheduler().now() + 10);
  tb.run_cycles(2'000'000);
  EXPECT_EQ(tb.tx_completions(Mode::A), 0u);
  // And a normal transmission still works afterwards.
  EXPECT_TRUE(tb.send_and_wait(Mode::A, patterned(200, 1)).success);
}

TEST(CtrlEdge, WifiRecoversAfterFailedMsdu) {
  Testbench tb;
  tb.peer(Mode::A).set_auto_ack(false);
  const auto fail = tb.send_and_wait(Mode::A, patterned(100, 1), 2'000'000'000ull);
  ASSERT_TRUE(fail.completed);
  EXPECT_FALSE(fail.success);
  // Re-enable ACKs: the next MSDU must go through cleanly.
  tb.peer(Mode::A).set_auto_ack(true);
  const auto ok = tb.send_and_wait(Mode::A, patterned(100, 2), 2'000'000'000ull);
  EXPECT_TRUE(ok.success);
}

TEST(CtrlEdge, UwbRetriesOnLostAck) {
  Testbench tb;
  tb.peer(Mode::C).set_drop_every(2);  // Every second data frame unACKed.
  // Two MSDUs: statistically at least one retry happens; both must finish.
  ASSERT_TRUE(tb.send_and_wait(Mode::C, patterned(400, 1), 4'000'000'000ull).completed);
  ASSERT_TRUE(tb.send_and_wait(Mode::C, patterned(400, 2), 4'000'000'000ull).completed);
  // The peer saw more frames than MSDUs (retransmissions happened).
  EXPECT_GT(tb.peer(Mode::C).received_data_frames().size(), 2u);
  // Retried frames carry the retry bit.
  bool saw_retry = false;
  for (const auto& f : tb.peer(Mode::C).received_data_frames()) {
    const auto p = mac::uwb::parse_frame(f);
    if (p && p->hdr.retry) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry);
}

TEST(CtrlEdge, WimaxArqWindowFullStallsAndRecovers) {
  Testbench tb;
  // Default window = 16 blocks; send 18 MSDUs with no feedback: the 17th
  // ArqTag returns window-full and the controller re-tries on its timer.
  for (int i = 0; i < 17; ++i) tb.send_async(Mode::B, patterned(64, static_cast<u8>(i)));
  // Only 16 can complete while the window is closed.
  tb.run_cycles(60'000'000);  // 300 ms: plenty of TDD frames.
  EXPECT_EQ(tb.tx_successes(Mode::B), 16u);
  // Feedback acknowledging everything reopens the window.
  tb.peer(Mode::B).inject_frame(tb.make_arq_feedback(16), tb.scheduler().now() + 100);
  ASSERT_TRUE(tb.wait_tx_count(Mode::B, 17, 2'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::B), 17u);
}

TEST(CtrlEdge, WindowFullDuringPackingDoesNotDuplicateSdu) {
  // Regression: the window-full stall must not leave side effects. If the
  // prepare pass has already appended the SDU to the packing page before the
  // ArqTag reports window-full, the retry appends it again and the MPDU
  // carries a duplicated block.
  Testbench tb;
  // 15 large (unpacked) MSDUs occupy 15 of the 16 window blocks.
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(tb.send_and_wait(Mode::B, patterned(300, static_cast<u8>(i)), 160'000'000)
                    .success);
  }
  // A small packing pair: the first SDU takes the last block; the second
  // hits window-full and must retry without duplicating itself.
  tb.send_async(Mode::B, patterned(64, 0xA1));
  tb.send_async(Mode::B, patterned(64, 0xB2));
  tb.run_cycles(12'000'000);  // Let it stall on the full window.
  EXPECT_EQ(tb.tx_successes(Mode::B), 15u);
  tb.peer(Mode::B).inject_frame(tb.make_arq_feedback(15), tb.scheduler().now() + 100);
  ASSERT_TRUE(tb.wait_tx_count(Mode::B, 17, 2'000'000'000ull));
  // Completion means "handed to the TDD frame" — wait for the air time too.
  const auto& frames = tb.peer(Mode::B).received_data_frames();
  ASSERT_TRUE(tb.run_until([&] { return frames.size() >= 16; }, 400'000'000ull));

  // The packed MPDU on air must carry exactly the two distinct SDUs.
  ASSERT_EQ(frames.size(), 16u);  // 15 singles + 1 packed.
  const auto p = mac::wimax::parse_mpdu(frames.back());
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->gmh.type & mac::wimax::kTypePacking)
      << "expected the final MPDU to be the packed pair";
  EXPECT_EQ(p->packed.size(), 2u) << "window-full retry duplicated a packed SDU";
}

TEST(CtrlEdge, EventHandlerFiltersForeignWifiFrames) {
  Testbench tb;
  // A data frame addressed to some *other* station: no ACK, no delivery.
  mac::wifi::DataHeader h;
  h.fc.type = mac::wifi::FrameType::Data;
  h.addr1 = mac::MacAddr::from_u64(0xDEADBEEF0001ull);  // Not us.
  h.addr2 = mac::MacAddr::from_u64(tb.config().modes[0].ident.peer_addr);
  const auto frame = mac::wifi::build_data_mpdu(h, patterned(64, 1));
  tb.peer(Mode::A).inject_frame(frame, tb.scheduler().now() + 10);
  tb.run_cycles(4'000'000);
  EXPECT_TRUE(tb.delivered(Mode::A).empty());
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 0u);
}

TEST(CtrlEdge, CorruptUwbHeaderDropped) {
  Testbench tb;
  auto frames = tb.make_peer_frames(Mode::C, patterned(200, 1), 4);
  frames[0][2] ^= 0xFF;  // Corrupt the PNID -> HCS fails.
  tb.peer(Mode::C).inject_frame(frames[0], tb.scheduler().now() + 10);
  tb.run_cycles(8'000'000);
  EXPECT_TRUE(tb.delivered(Mode::C).empty());
  EXPECT_EQ(tb.device().event_handler().rx_bad_frames(Mode::C), 1u);
}

TEST(CtrlEdge, CorruptWimaxHcsDropped) {
  Testbench tb;
  auto frames = tb.make_peer_frames(Mode::B, patterned(200, 1), 0);
  frames[0][3] ^= 0x10;  // Corrupt the CID -> CRC-8 HCS fails.
  tb.peer(Mode::B).inject_frame(frames[0], tb.scheduler().now() + 10);
  tb.run_cycles(8'000'000);
  EXPECT_TRUE(tb.delivered(Mode::B).empty());
  EXPECT_EQ(tb.device().event_handler().rx_bad_frames(Mode::B), 1u);
}

TEST(CtrlEdge, BackToBackRxFramesAllDelivered) {
  Testbench tb;
  const Bytes m1 = patterned(300, 1), m2 = patterned(300, 2);
  const auto f1 = tb.make_peer_frames(Mode::A, m1, 1);
  const auto f2 = tb.make_peer_frames(Mode::A, m2, 2);
  const Cycle t0 = tb.scheduler().now() + 10;
  tb.peer(Mode::A).inject_frame(f1[0], t0);
  // Second frame queued right behind the first (peer serializes on air).
  tb.peer(Mode::A).inject_frame(f2[0], t0 + 1);
  ASSERT_TRUE(tb.run_until([&] { return tb.delivered(Mode::A).size() >= 2; },
                           400'000'000));
  EXPECT_EQ(tb.delivered(Mode::A)[0], m1);
  EXPECT_EQ(tb.delivered(Mode::A)[1], m2);
  EXPECT_EQ(tb.device().ack_rfu().acks_generated(), 2u);
}

TEST(CtrlEdge, UwbContentionAccessPeriodPath) {
  // 802.15.3's second access mechanism (thesis §2.3.2.1 #4): CSMA in the
  // CAP instead of a CTA slot — exercises the CsmaAccessUwb configuration
  // state of the access-timing RFU.
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.modes[2].ident.uwb_use_cap = true;
  Testbench tb(cfg);
  const auto out = tb.send_and_wait(Mode::C, patterned(500, 1), 4'000'000'000ull);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(tb.peer(Mode::C).acks_sent(), 1u);
  // The access RFU was configured into the UWB-CSMA state, and the data
  // frame was NOT aligned to the CTA slot boundary (it went out as soon as
  // the backoff won the idle channel).
  EXPECT_EQ(tb.device().backoff_rfu().config_state(), rfu::cfg::kAccessCsmaUwb);
  const double start_us =
      tb.device().timebase().cycles_to_us(tb.device().phy_tx(Mode::C)->last_tx_start());
  EXPECT_LT(start_us, 1000.0);  // Well before the +1 ms CTA offset.
}

TEST(CtrlEdge, ZeroLengthMsduRejectedGracefully) {
  // A 4-byte minimum MSDU (the API requires word-aligned non-empty payloads
  // for the streaming units) — degenerate small payload must still work.
  Testbench tb;
  const auto out = tb.send_and_wait(Mode::A, patterned(4, 1), 2'000'000'000ull);
  EXPECT_TRUE(out.success);
  const auto p = mac::wifi::parse_data_mpdu(tb.peer(Mode::A).received_data_frames()[0]);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->body.size(), 4u);
}

}  // namespace
}  // namespace drmp
