// RFU-level tests: each functional unit driven over the packet bus exactly
// as the TH_M drives it (command word, arguments, execute trigger, DONE
// handshake), including the reconfiguration mechanisms and the master/slave
// FCS snoop path.
#include <gtest/gtest.h>

#include "crypto/aes128.hpp"
#include "crypto/crc.hpp"
#include "crypto/des.hpp"
#include "crypto/rc4.hpp"
#include "hw/ctrl_layout.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"
#include "phy/buffers.hpp"
#include "rfu/ack_rfu.hpp"
#include "rfu/arq_rfu.hpp"
#include "rfu/backoff_rfu.hpp"
#include "rfu/classifier_rfu.hpp"
#include "rfu/crc_rfus.hpp"
#include "rfu/crypto_rfu.hpp"
#include "rfu/defrag_rfu.hpp"
#include "rfu/frag_rfu.hpp"
#include "rfu/header_rfu.hpp"
#include "rfu/pack_rfu.hpp"
#include "rfu/rx_rfu.hpp"
#include "rfu/seq_rfu.hpp"
#include "rfu/tx_rfu.hpp"
#include "sim/scheduler.hpp"

namespace drmp::rfu {
namespace {

using hw::Page;
using hw::page_base;

Bytes payload(std::size_t n, u8 seed = 3) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 11 + seed);
  return b;
}

/// Drives a single RFU the way a TH_M does.
class RfuHarness : public ::testing::Test {
 protected:
  RfuHarness() : sched(200e6), bus(mem, &stats), tb(200e6) {}

  Rfu::Env env() {
    Rfu::Env e;
    e.bus = &bus;
    e.rmem = &rmem;
    e.stats = &stats;
    e.timebase = &tb;
    return e;
  }

  void add(Rfu& r) {
    sched.add(bus, "bus");
    sched.add(r, "rfu");
    rfu_ = &r;
  }
  void add2(Rfu& a, Rfu& b) {
    sched.add(bus, "bus");
    sched.add(a, "a");
    sched.add(b, "b");
    rfu_ = &a;
  }

  void reconfigure(Rfu& r, u8 state) {
    r.rc_configure(state);
    ASSERT_TRUE(sched.run_until([&] { return r.rdone(); }, 1000));
    r.clear_rdone();
  }

  /// Full TH_M-style delegation; returns false on timeout.
  bool execute(Rfu& r, Op op, const std::vector<Word>& args, Cycle max_cycles = 4'000'000) {
    bus.request_for_irc(Mode::A);
    if (!sched.run_until([&] { return bus.granted_irc(Mode::A); }, 100)) return false;
    auto put = [&](Word w) {
      bus.write(hw::rfu_trigger_addr(r.id()), w);
      sched.run_cycles(1);
    };
    put(make_command_word(op, static_cast<u8>(args.size())));
    for (Word a : args) put(a);
    put(0);  // Execute.
    if (r.detached_execution()) {
      bus.release(Mode::A);
    } else {
      bus.request_for_rfu(Mode::A, r.id());
    }
    const bool ok = sched.run_until([&] { return r.done(); }, max_cycles);
    r.clear_done();
    if (!r.detached_execution()) bus.release(Mode::A);
    sched.run_cycles(2);
    return ok;
  }

  sim::Scheduler sched;
  hw::PacketMemory mem;
  sim::StatsRegistry stats;
  hw::PacketBus bus;
  hw::ReconfigMemory rmem;
  sim::TimeBase tb;
  Rfu* rfu_ = nullptr;
};

// ----------------------------------------------------------------- crypto

TEST_F(RfuHarness, CryptoRc4MatchesSoftwareReference) {
  CryptoRfu crypto(env());
  add(crypto);
  const Bytes key = payload(16, 9);
  rmem.load_blob(kCryptoRfu, cfg::kCryptoRc4, CryptoRfu::make_config_blob(cfg::kCryptoRc4, key));
  reconfigure(crypto, cfg::kCryptoRc4);

  const Bytes msdu = payload(700);
  mem.write_page_bytes(Mode::A, Page::Raw, msdu);
  ASSERT_TRUE(execute(crypto, Op::EncryptRc4,
                      {page_base(Mode::A, Page::Raw), page_base(Mode::A, Page::Crypt), 42, 0}));

  // Software reference: WEP-style IV||key.
  Bytes iv_key = {42, 0, 0};
  iv_key.insert(iv_key.end(), key.begin(), key.end());
  Bytes expected = msdu;
  crypto::Rc4 rc4(iv_key);
  rc4.process(expected);
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Crypt), expected);
}

TEST_F(RfuHarness, CryptoAesRoundTripThroughMemory) {
  CryptoRfu crypto(env());
  add(crypto);
  const Bytes key = payload(16, 5);
  rmem.load_blob(kCryptoRfu, cfg::kCryptoAes, CryptoRfu::make_config_blob(cfg::kCryptoAes, key));
  reconfigure(crypto, cfg::kCryptoAes);

  const Bytes msdu = payload(333);
  mem.write_page_bytes(Mode::A, Page::Raw, msdu);
  ASSERT_TRUE(execute(crypto, Op::EncryptAes,
                      {page_base(Mode::A, Page::Raw), page_base(Mode::A, Page::Crypt), 7, 8}));
  EXPECT_NE(mem.read_page_bytes(Mode::A, Page::Crypt), msdu);
  ASSERT_TRUE(execute(crypto, Op::DecryptAes,
                      {page_base(Mode::A, Page::Crypt), page_base(Mode::A, Page::Defrag), 7, 8}));
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Defrag), msdu);
}

TEST_F(RfuHarness, CryptoDesCbcRoundTrip) {
  CryptoRfu crypto(env());
  add(crypto);
  const Bytes key = payload(8, 7);
  rmem.load_blob(kCryptoRfu, cfg::kCryptoDes, CryptoRfu::make_config_blob(cfg::kCryptoDes, key));
  reconfigure(crypto, cfg::kCryptoDes);

  const Bytes msdu = payload(256);  // Whole DES blocks.
  mem.write_page_bytes(Mode::A, Page::Raw, msdu);
  ASSERT_TRUE(execute(crypto, Op::EncryptDes,
                      {page_base(Mode::A, Page::Raw), page_base(Mode::A, Page::Crypt), 1, 2}));
  ASSERT_TRUE(execute(crypto, Op::DecryptDes,
                      {page_base(Mode::A, Page::Crypt), page_base(Mode::A, Page::Defrag), 1, 2}));
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Defrag), msdu);
}

TEST_F(RfuHarness, MaReconfigLatencyScalesWithBlobSize) {
  CryptoRfu crypto(env());
  add(crypto);
  rmem.load_blob(kCryptoRfu, cfg::kCryptoRc4,
                 CryptoRfu::make_config_blob(cfg::kCryptoRc4, payload(16)));
  rmem.load_blob(kCryptoRfu, cfg::kCryptoAes,
                 CryptoRfu::make_config_blob(cfg::kCryptoAes, payload(16)));
  crypto.rc_configure(cfg::kCryptoRc4);
  Cycle t0 = sched.now();
  ASSERT_TRUE(sched.run_until([&] { return crypto.rdone(); }, 1000));
  const Cycle rc4_lat = sched.now() - t0;
  crypto.clear_rdone();
  crypto.rc_configure(cfg::kCryptoAes);
  t0 = sched.now();
  ASSERT_TRUE(sched.run_until([&] { return crypto.rdone(); }, 1000));
  const Cycle aes_lat = sched.now() - t0;
  // AES blob (48 words) takes longer to stream than the RC4 blob (8 words).
  EXPECT_GT(aes_lat, rc4_lat);
}

// ----------------------------------------------------------- CRC engines

TEST_F(RfuHarness, HcsAppendAndVerify16) {
  HdrCheckRfu hcs(env());
  add(hcs);
  reconfigure(hcs, cfg::kHcsCrc16);

  // A page holding hdr(24) + 2 zero bytes + body.
  mac::wifi::DataHeader h;
  h.seq_num = 77;
  Bytes frame = h.encode();
  frame.push_back(0);
  frame.push_back(0);
  const Bytes body = payload(100);
  frame.insert(frame.end(), body.begin(), body.end());
  mem.write_page_bytes(Mode::A, Page::Tx, frame);

  ASSERT_TRUE(execute(hcs, Op::HcsAppend16, {page_base(Mode::A, Page::Tx), 24}));
  const Bytes out = mem.read_page_bytes(Mode::A, Page::Tx);
  const u16 expect =
      crypto::Crc16Ccitt::compute(std::span<const u8>(out.data(), 24));
  EXPECT_EQ(get_le16(out, 24), expect);

  const u32 status = hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kHcsOk);
  ASSERT_TRUE(execute(hcs, Op::HcsVerify16, {page_base(Mode::A, Page::Tx), 24, status}));
  EXPECT_EQ(mem.read(status), 1u);

  // Corrupt the header; verify must fail.
  Bytes bad = out;
  bad[3] ^= 0x40;
  mem.write_page_bytes(Mode::A, Page::Tx, bad);
  ASSERT_TRUE(execute(hcs, Op::HcsVerify16, {page_base(Mode::A, Page::Tx), 24, status}));
  EXPECT_EQ(mem.read(status), 0u);
}

TEST_F(RfuHarness, HcsPatch8MatchesWimaxCodec) {
  HdrCheckRfu hcs(env());
  add(hcs);
  reconfigure(hcs, cfg::kHcsCrc8);

  mac::wimax::GenericMacHeader gh;
  gh.cid = 0x4242;
  gh.len = 200;
  Bytes gmh = gh.encode();
  gmh[5] = 0;  // Zero placeholder.
  mem.write_page_bytes(Mode::B, Page::Tx, gmh);
  ASSERT_TRUE(execute(hcs, Op::HcsPatch8, {page_base(Mode::B, Page::Tx)}));
  const Bytes out = mem.read_page_bytes(Mode::B, Page::Tx);
  bool ok = false;
  (void)mac::wimax::GenericMacHeader::decode(out, &ok);
  EXPECT_TRUE(ok);
}

TEST_F(RfuHarness, FcsAppendVerifyRoundTrip) {
  FcsRfu fcs(env());
  add(fcs);
  reconfigure(fcs, cfg::kFcsCrc32);

  const Bytes data = payload(200);
  mem.write_page_bytes(Mode::A, Page::Tx, data);
  ASSERT_TRUE(execute(fcs, Op::FcsAppend, {page_base(Mode::A, Page::Tx)}));
  const Bytes out = mem.read_page_bytes(Mode::A, Page::Tx);
  ASSERT_EQ(out.size(), data.size() + 4);
  EXPECT_EQ(get_le32(out, out.size() - 4), crypto::Crc32::compute(data));

  const u32 status = hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kFcsOk);
  ASSERT_TRUE(execute(fcs, Op::FcsVerify, {page_base(Mode::A, Page::Tx), status}));
  EXPECT_EQ(mem.read(status), 1u);
}

// ------------------------------------------------------ frag / defrag

TEST_F(RfuHarness, FragmentSliceAndReassemble) {
  FragRfu frag(env());
  DefragRfu defrag(env());
  add2(frag, defrag);
  reconfigure(frag, cfg::kProtoWifi);
  reconfigure(defrag, cfg::kProtoWifi);

  const Bytes msdu = payload(1500);
  mem.write_page_bytes(Mode::A, Page::Crypt, msdu);
  const u32 thr = 512;
  const u32 nfrags = 3;
  for (u32 k = 0; k < nfrags; ++k) {
    ASSERT_TRUE(execute(frag, Op::FragmentWifi,
                        {page_base(Mode::A, Page::Crypt), page_base(Mode::A, Page::Scratch),
                         thr, k}));
    const Bytes slice = mem.read_page_bytes(Mode::A, Page::Scratch);
    const std::size_t expect_len = std::min<std::size_t>(thr, msdu.size() - k * thr);
    EXPECT_EQ(slice.size(), expect_len);
    ASSERT_TRUE(execute(defrag, Op::DefragAppendWifi,
                        {page_base(Mode::A, Page::Scratch), page_base(Mode::A, Page::Defrag),
                         k == 0 ? 1u : 0u}));
  }
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Defrag), msdu);
}

TEST_F(RfuHarness, FragmentBeyondEndIsEmpty) {
  FragRfu frag(env());
  add(frag);
  reconfigure(frag, cfg::kProtoUwb);
  mem.write_page_bytes(Mode::A, Page::Crypt, payload(100));
  ASSERT_TRUE(execute(frag, Op::FragmentUwb,
                      {page_base(Mode::A, Page::Crypt), page_base(Mode::A, Page::Scratch),
                       512, 5}));
  EXPECT_EQ(mem.page_byte_len(Mode::A, Page::Scratch), 0u);
}

// ------------------------------------------------------- header / parse

TEST_F(RfuHarness, AssembleThenParseWifi) {
  HeaderRfu hdr(env());
  add(hdr);
  rmem.load_blob(kHeaderRfu, cfg::kProtoWifi, HeaderRfu::make_config_blob(cfg::kProtoWifi));
  reconfigure(hdr, cfg::kProtoWifi);

  // CPU side: header template into the Ctrl-page mini page.
  mac::wifi::DataHeader h;
  h.seq_num = 345;
  h.frag_num = 2;
  h.fc.more_frag = true;
  const Bytes tmpl = h.encode();
  const u32 tmpl_addr = hw::ctrl_hdr_tmpl_addr(Mode::A);
  mem.write(tmpl_addr + hw::kPageLenOffset, static_cast<Word>(tmpl.size()));
  const auto tw = pack_words(tmpl);
  for (std::size_t i = 0; i < tw.size(); ++i) {
    mem.write(tmpl_addr + hw::kPageDataOffset + static_cast<u32>(i), tw[i]);
  }

  const Bytes body = payload(200);
  mem.write_page_bytes(Mode::A, Page::Scratch, body);
  ASSERT_TRUE(execute(hdr, Op::AssembleWifi,
                      {tmpl_addr, page_base(Mode::A, Page::Scratch),
                       page_base(Mode::A, Page::Tx)}));
  const Bytes mpdu = mem.read_page_bytes(Mode::A, Page::Tx);
  // hdr(24) + HCS placeholder(2) + body.
  ASSERT_EQ(mpdu.size(), 24u + 2u + body.size());
  EXPECT_EQ(get_le16(mpdu, 24), 0u);  // Placeholder zeros.

  // Parse path needs a complete frame; use the codec to finish it.
  const Bytes full = mac::wifi::build_data_mpdu(h, body);
  mem.write_page_bytes(Mode::A, Page::Rx, full);
  const u32 status_base = hw::ctrl_status_addr(Mode::A, static_cast<hw::CtrlWord>(0));
  ASSERT_TRUE(execute(hdr, Op::ParseWifi, {page_base(Mode::A, Page::Rx), status_base}));
  EXPECT_EQ(mem.read(hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kParseOk)), 1u);
  EXPECT_EQ(mem.read(hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kSeq)), 345u);
  EXPECT_EQ(mem.read(hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kFrag)), 2u);
  EXPECT_EQ(mem.read(hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kMoreFrag)), 1u);

  // Extract: body only.
  ASSERT_TRUE(execute(hdr, Op::ExtractWifi,
                      {page_base(Mode::A, Page::Rx), page_base(Mode::A, Page::RxScratch)}));
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::RxScratch), body);
}

// ------------------------------------------------- tx with FCS snooping

TEST_F(RfuHarness, TxStreamsFrameAndSlaveAppendsFcs) {
  TxRfu tx(env());
  FcsRfu fcs(env());
  add2(tx, fcs);
  phy::TxBuffer buf;
  std::array<phy::TxBuffer*, kNumModes> bufs{&buf, nullptr, nullptr};
  tx.wire(&fcs, bufs, &tb);
  reconfigure(tx, cfg::kProtoWifi);
  reconfigure(fcs, cfg::kFcsCrc32);

  const Bytes frame_wo_fcs = payload(123);
  mem.write_page_bytes(Mode::A, Page::Tx, frame_wo_fcs);
  ASSERT_TRUE(execute(tx, Op::TxFrameWifi, {page_base(Mode::A, Page::Tx), 0, 1}));

  ASSERT_TRUE(buf.frame_pending());
  const auto entry = buf.pop();
  ASSERT_EQ(entry.bytes.size(), frame_wo_fcs.size() + 4);
  // On-the-fly FCS must equal the software CRC.
  EXPECT_EQ(get_le32(entry.bytes, entry.bytes.size() - 4),
            crypto::Crc32::compute(frame_wo_fcs));
  // The page was extended in place by the slave.
  EXPECT_EQ(mem.page_byte_len(Mode::A, Page::Tx), frame_wo_fcs.size() + 4);
  // And the CRC-32 residue check holds over the whole staged frame.
  EXPECT_EQ(crypto::Crc32::compute(entry.bytes), kCrc32Residue);
}

// --------------------------------------------------- rx with FCS check

TEST_F(RfuHarness, RxDrainChecksResidue) {
  RxRfu rx(env());
  FcsRfu fcs(env());
  add2(rx, fcs);
  phy::RxBuffer buf;
  std::array<phy::RxBuffer*, kNumModes> bufs{&buf, nullptr, nullptr};
  rx.wire(&fcs, bufs);
  reconfigure(rx, cfg::kProtoWifi);
  reconfigure(fcs, cfg::kFcsCrc32);

  mac::wifi::DataHeader h;
  Bytes frame = mac::wifi::build_data_mpdu(h, payload(99));
  buf.deliver(frame, 12345);

  const u32 status = hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kFcsOk);
  ASSERT_TRUE(execute(rx, Op::RxDrainWifi, {page_base(Mode::A, Page::Rx), 0, 1, status}));
  EXPECT_EQ(mem.read(status), 1u);
  EXPECT_EQ(mem.read_page_bytes(Mode::A, Page::Rx), frame);
  EXPECT_EQ(rx.last_rx_end(), 12345u);

  // A corrupted frame fails the residue check.
  frame[30] ^= 0x80;
  buf.deliver(frame, 20000);
  ASSERT_TRUE(execute(rx, Op::RxDrainWifi, {page_base(Mode::A, Page::Rx), 0, 1, status}));
  EXPECT_EQ(mem.read(status), 0u);
}

// --------------------------------------------------------------- AckRfu

TEST_F(RfuHarness, AckGenStagesSifsAlignedAck) {
  AckRfu ack(env());
  RxRfu rx(env());
  add2(ack, rx);
  phy::TxBuffer buf;
  std::array<phy::TxBuffer*, kNumModes> bufs{&buf, nullptr, nullptr};
  ack.wire(&rx, bufs, &tb);
  reconfigure(ack, cfg::kProtoWifi);

  const u64 ra = 0x112233445566ull;
  ASSERT_TRUE(execute(ack, Op::AckGenWifi,
                      {static_cast<Word>(ra), static_cast<Word>(ra >> 32), 0,
                       page_base(Mode::A, Page::Ack)}));
  ASSERT_TRUE(buf.frame_pending());
  const auto entry = buf.pop();
  EXPECT_TRUE(mac::wifi::is_ack(entry.bytes, mac::MacAddr::from_u64(ra)));
  // SIFS spacing: earliest start = rx_end(0) + 10 us = 2000 cycles @200 MHz.
  EXPECT_EQ(entry.earliest_start, 2000u);
}

// -------------------------------------------------------------- backoff

TEST_F(RfuHarness, CsmaWaitsAtLeastDifs) {
  BackoffRfu backoff(env());
  phy::Medium medium(mac::Protocol::WiFi, tb);
  sched.add(medium, "medium");
  add(backoff);
  std::array<phy::Medium*, kNumModes> media{&medium, nullptr, nullptr};
  backoff.wire(media, &tb);
  backoff.seed(77);
  reconfigure(backoff, cfg::kAccessCsmaWifi);

  const Cycle t0 = sched.now();
  ASSERT_TRUE(execute(backoff, Op::CsmaAccessWifi, {0, 0}, 10'000'000));
  const Cycle waited = sched.now() - t0;
  // At least DIFS (50 us = 10000 cycles).
  EXPECT_GE(waited, 10'000u);
  // And at most DIFS + CWmin slots (31 * 20 us) + overhead.
  EXPECT_LE(waited, 10'000u + 31u * 4000u + 1000u);
}

TEST_F(RfuHarness, TdmaWaitsForSlotBoundary) {
  BackoffRfu backoff(env());
  phy::Medium medium(mac::Protocol::WiMax, tb);
  sched.add(medium, "medium");
  add(backoff);
  std::array<phy::Medium*, kNumModes> media{&medium, nullptr, nullptr};
  backoff.wire(media, &tb);
  reconfigure(backoff, cfg::kAccessTdmaWimax);

  // 5 ms frame, slot at +500 us: first grant at cycle 100000 (500 us @200MHz).
  ASSERT_TRUE(execute(backoff, Op::TdmaAccessWimax, {0, 500, 5000}, 10'000'000));
  EXPECT_GE(medium.now(), 100'000u);
  EXPECT_LE(medium.now(), 101'000u);
}

// ------------------------------------------------------- pack / arq / etc

TEST_F(RfuHarness, PackAppendExtractRoundTrip) {
  PackRfu pack(env());
  add(pack);
  reconfigure(pack, cfg::kDefaultState);

  const Bytes sdu0 = payload(50, 1);
  const Bytes sdu1 = payload(77, 2);
  mem.write_page_bytes(Mode::B, Page::Crypt, sdu0);
  ASSERT_TRUE(execute(pack, Op::PackAppend,
                      {page_base(Mode::B, Page::Crypt), page_base(Mode::B, Page::Scratch),
                       0, 1}));
  mem.write_page_bytes(Mode::B, Page::Crypt, sdu1);
  ASSERT_TRUE(execute(pack, Op::PackAppend,
                      {page_base(Mode::B, Page::Crypt), page_base(Mode::B, Page::Scratch),
                       0, 0}));

  const u32 status = hw::ctrl_status_addr(Mode::B, hw::CtrlWord::kPackCount);
  ASSERT_TRUE(execute(pack, Op::PackExtract,
                      {page_base(Mode::B, Page::Scratch), page_base(Mode::B, Page::RxOut),
                       1, status}));
  EXPECT_EQ(mem.read_page_bytes(Mode::B, Page::RxOut), sdu1);
  EXPECT_NE(mem.read(status), 0xFFFFFFFFu);

  ASSERT_TRUE(execute(pack, Op::PackExtract,
                      {page_base(Mode::B, Page::Scratch), page_base(Mode::B, Page::RxOut),
                       2, status}));
  EXPECT_EQ(mem.read(status), 0xFFFFFFFFu);  // Out of range.
}

TEST_F(RfuHarness, ArqWindowTagAndFeedback) {
  ArqRfu arq(env());
  add(arq);
  rmem.load_blob(kArqRfu, cfg::kDefaultState, ArqRfu::make_config_blob(4, 16));
  reconfigure(arq, cfg::kDefaultState);

  const u32 status = hw::ctrl_status_addr(Mode::B, hw::CtrlWord::kArqOut);
  // Fill the window (size 4).
  for (u32 i = 0; i < 4; ++i) {
    ASSERT_TRUE(execute(arq, Op::ArqTag, {100, status}));
    EXPECT_EQ(mem.read(status), i);
  }
  ASSERT_TRUE(execute(arq, Op::ArqTag, {100, status}));
  EXPECT_EQ(mem.read(status), 0xFFFFFFFFu);  // Window full.

  // Cumulative feedback for BSN < 3 releases 3 slots.
  ASSERT_TRUE(execute(arq, Op::ArqFeedback, {100, 3, status}));
  EXPECT_EQ(mem.read(status), 3u);
  ASSERT_TRUE(execute(arq, Op::ArqTag, {100, status}));
  EXPECT_EQ(mem.read(status), 4u);
}

TEST_F(RfuHarness, ClassifierMatchesRuleTable) {
  ClassifierRfu cls(env());
  add(cls);
  rmem.load_blob(kClassifierRfu, cfg::kDefaultState,
                 ClassifierRfu::make_config_blob({{1, 0x100}, {2, 0x200}}));
  reconfigure(cls, cfg::kDefaultState);

  const u32 status = hw::ctrl_status_addr(Mode::B, hw::CtrlWord::kCid);
  ASSERT_TRUE(execute(cls, Op::Classify, {2, status}));
  EXPECT_EQ(mem.read(status), 0x200u);
  ASSERT_TRUE(execute(cls, Op::Classify, {9, status}));
  EXPECT_EQ(mem.read(status), 0xFFFFFFFFu);
}

TEST_F(RfuHarness, SeqAssignWrapsAtModulus) {
  SeqRfu seq(env());
  add(seq);
  seq.set_modulus(0, 4);
  reconfigure(seq, cfg::kDefaultState);

  const u32 status = hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kSeqOut);
  for (u32 i = 0; i < 6; ++i) {
    ASSERT_TRUE(execute(seq, Op::SeqAssign, {0, status}));
    EXPECT_EQ(mem.read(status), i % 4);
  }
}

TEST_F(RfuHarness, SeqCheckFlagsDuplicates) {
  SeqRfu seq(env());
  add(seq);
  reconfigure(seq, cfg::kDefaultState);
  const u32 status = hw::ctrl_status_addr(Mode::A, hw::CtrlWord::kDupFlag);
  ASSERT_TRUE(execute(seq, Op::SeqCheck, {0, 0xAB, 17, status}));
  EXPECT_EQ(mem.read(status), 0u);
  ASSERT_TRUE(execute(seq, Op::SeqCheck, {0, 0xAB, 17, status}));
  EXPECT_EQ(mem.read(status), 1u);  // Same (src, seq|frag) again.
  ASSERT_TRUE(execute(seq, Op::SeqCheck, {0, 0xAB, 18, status}));
  EXPECT_EQ(mem.read(status), 0u);
}

// ---- Quiescence bounds under randomized stimulus ------------------------

/// Runs a randomized trigger/reconfiguration script against one MA-RFU and
/// returns every observable checkpoint. The script is a pure function of
/// the seed — idle gaps, inter-argument gaps (the CollectArgs span), op and
/// reconfiguration choices all come from one LCG — so a legacy every-tick
/// run and a batched quiescence-skipping run see byte-identical stimulus at
/// identical cycles. Any over-estimated bound in the Idle, CollectArgs or
/// Reconfiguring phases (the trigger-driven spans of rfu.cpp) shows up as a
/// divergent busy/reconfig-cycle count, a missed completion inside a fixed
/// window, or a wrong output page.
std::vector<u64> drive_crypto_script(bool batched, u64 seed) {
  sim::Scheduler sched(200e6);
  hw::PacketMemory mem;
  sim::StatsRegistry stats;
  hw::PacketBus bus(mem, &stats);
  hw::ReconfigMemory rmem;
  sim::TimeBase tb(200e6);
  Rfu::Env env;
  env.bus = &bus;
  env.rmem = &rmem;
  env.stats = &stats;
  env.timebase = &tb;
  CryptoRfu crypto(env);
  sched.add(bus, "bus");
  sched.add(crypto, "rfu");
  auto run = [&](Cycle n) {
    if (batched) {
      sched.run_cycles_batched(n);
    } else {
      sched.run_cycles(n);
    }
  };

  const Bytes key = payload(16, 9);
  rmem.load_blob(kCryptoRfu, cfg::kCryptoRc4,
                 CryptoRfu::make_config_blob(cfg::kCryptoRc4, key));
  rmem.load_blob(kCryptoRfu, cfg::kCryptoAes,
                 CryptoRfu::make_config_blob(cfg::kCryptoAes, key));
  mem.write_page_bytes(Mode::A, Page::Raw, payload(160));

  u64 x = seed;
  auto rnd = [&x](u64 lim) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return (x >> 33) % lim;
  };
  std::vector<u64> log;
  u8 state = 0;  // 0 = not yet configured.
  for (int it = 0; it < 20; ++it) {
    run(1 + rnd(4000));  // Idle span: exercises the until-woken bound.
    if (state == 0 || rnd(3) == 0) {
      const u8 target = rnd(2) == 0 ? cfg::kCryptoRc4 : cfg::kCryptoAes;
      crypto.rc_configure(target);
      run(6000);  // Fixed window past the MA configuration stream.
      log.push_back(crypto.rdone());
      crypto.clear_rdone();
      state = target;
      continue;
    }
    bus.request_for_irc(Mode::A);
    run(16);
    log.push_back(bus.granted_irc(Mode::A));
    const bool rc4 = state == cfg::kCryptoRc4;
    const std::vector<Word> args =
        rc4 ? std::vector<Word>{page_base(Mode::A, Page::Raw),
                                page_base(Mode::A, Page::Crypt), 42, 0}
            : std::vector<Word>{page_base(Mode::A, Page::Raw),
                                page_base(Mode::A, Page::Crypt), 7, 8};
    // Random gaps between trigger words keep the RFU parked in CollectArgs
    // for randomized stretches — the span whose bound this test pins.
    auto put = [&](Word w) {
      bus.write(hw::rfu_trigger_addr(kCryptoRfu), w);
      run(1 + rnd(6));
    };
    put(make_command_word(rc4 ? Op::EncryptRc4 : Op::EncryptAes,
                          static_cast<u8>(args.size())));
    for (const Word a : args) put(a);
    put(0);  // Execute.
    bus.request_for_rfu(Mode::A, kCryptoRfu);
    run(400'000);  // Fixed window: generously past either cipher's runtime.
    log.push_back(crypto.done());
    crypto.clear_done();
    bus.release(Mode::A);
    run(4);
    log.push_back(crypto.busy_cycles());
    log.push_back(crypto.reconfig_cycles());
    log.push_back(crypto.exec_count());
    log.push_back(crypto.reconfig_count());
    u64 h = 1469598103934665603ull;  // FNV-1a over the output page.
    for (const u8 b : mem.read_page_bytes(Mode::A, Page::Crypt)) {
      h = (h ^ b) * 1099511628211ull;
    }
    log.push_back(h);
    log.push_back(sched.now());
  }
  return log;
}

TEST(RfuQuiescence, RandomizedScriptsMatchEveryTickExecution) {
  for (const u64 seed : {11ull, 29ull, 123ull}) {
    const std::vector<u64> legacy = drive_crypto_script(false, seed);
    const std::vector<u64> skipping = drive_crypto_script(true, seed);
    EXPECT_EQ(legacy, skipping) << "seed " << seed;
    // The fixed windows really did cover every completion: each logged
    // done/rdone/grant flag in the reference run is 1, so the equality
    // above pins real completions, not mutual timeouts.
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      if (legacy[i] <= 1) {
        EXPECT_EQ(legacy[i], 1u) << "checkpoint " << i;
      }
    }
  }
}

}  // namespace
}  // namespace drmp::rfu
