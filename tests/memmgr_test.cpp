// MemoryManager tests (thesis §3.6.3's "intermediate memory-manager module"
// option): allocation/free invariants, coalescing, quotas, double-free
// guard, and a randomized property sweep checking conservation and
// non-overlap across thousands of operations.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "hw/memory_manager.hpp"

namespace drmp::hw {
namespace {

MemoryManager::Config small_cfg() {
  MemoryManager::Config c;
  c.pool_words = 1024;
  c.block_words = 64;
  return c;
}

TEST(MemoryManagerTest, AllocRoundsUpToBlocks) {
  MemoryManager mm(small_cfg());
  const auto h = mm.alloc(Mode::A, 1);  // 1 byte -> 1 word -> 1 block.
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(mm.span_words(*h), 64u);
  const auto h2 = mm.alloc(Mode::A, 64 * 4 + 1);  // Just over one block.
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(mm.span_words(*h2), 128u);
  EXPECT_EQ(mm.words_in_use(), 192u);
}

TEST(MemoryManagerTest, RegionsNeverOverlap) {
  MemoryManager mm(small_cfg());
  std::vector<u32> handles;
  for (int i = 0; i < 16; ++i) {
    const auto h = mm.alloc(Mode::A, 256);  // 64-word regions fill the pool.
    ASSERT_TRUE(h.has_value()) << "allocation " << i;
    handles.push_back(*h);
  }
  EXPECT_FALSE(mm.alloc(Mode::A, 1).has_value());  // Pool exhausted.
  std::vector<std::pair<u32, u32>> spans;
  for (u32 h : handles) spans.emplace_back(mm.base_word(h), mm.span_words(h));
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].first, spans[i - 1].first + spans[i - 1].second)
        << "regions " << i - 1 << " and " << i << " overlap";
  }
}

TEST(MemoryManagerTest, FreeCoalescesNeighbours) {
  MemoryManager mm(small_cfg());
  const auto a = mm.alloc(Mode::A, 256);
  const auto b = mm.alloc(Mode::A, 256);
  const auto c = mm.alloc(Mode::A, 256);
  ASSERT_TRUE(a && b && c);
  // Free the middle, then the first, then the last: the free list must end
  // as a single extent covering the whole pool.
  EXPECT_TRUE(mm.free(*b));
  EXPECT_EQ(mm.free_extent_count(), 2u);  // Hole + tail.
  EXPECT_TRUE(mm.free(*a));
  EXPECT_EQ(mm.free_extent_count(), 2u);  // [a+b] + tail.
  EXPECT_TRUE(mm.free(*c));
  EXPECT_EQ(mm.free_extent_count(), 1u);
  EXPECT_EQ(mm.largest_free_extent_words(), 1024u);
  EXPECT_EQ(mm.words_in_use(), 0u);
}

TEST(MemoryManagerTest, DoubleFreeRejected) {
  MemoryManager mm(small_cfg());
  const auto h = mm.alloc(Mode::B, 100);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(mm.free(*h));
  EXPECT_FALSE(mm.free(*h));
  EXPECT_FALSE(mm.free(0xDEAD));
  EXPECT_EQ(mm.frees(), 1u);
}

TEST(MemoryManagerTest, ModeQuotaEnforced) {
  MemoryManager::Config c = small_cfg();
  c.mode_quota_words[index(Mode::C)] = 128;
  MemoryManager mm(c);
  const auto h1 = mm.alloc(Mode::C, 256);  // 64 words, fits.
  ASSERT_TRUE(h1.has_value());
  const auto h2 = mm.alloc(Mode::C, 256);  // 128 words total, at quota.
  ASSERT_TRUE(h2.has_value());
  EXPECT_FALSE(mm.alloc(Mode::C, 1).has_value());  // Over quota.
  EXPECT_EQ(mm.failed_allocs(), 1u);
  // Another mode is unaffected.
  EXPECT_TRUE(mm.alloc(Mode::A, 256).has_value());
  // Freeing restores headroom.
  EXPECT_TRUE(mm.free(*h1));
  EXPECT_TRUE(mm.alloc(Mode::C, 1).has_value());
}

TEST(MemoryManagerTest, HousekeepingCostAccrues) {
  MemoryManager::Config c = small_cfg();
  c.alloc_cost_cycles = 4;
  c.free_cost_cycles = 2;
  MemoryManager mm(c);
  const auto h = mm.alloc(Mode::A, 100);
  ASSERT_TRUE(h.has_value());
  mm.free(*h);
  // A failed alloc is still charged (the lookup happened).
  MemoryManager::Config tiny = c;
  tiny.pool_words = 64;
  MemoryManager mm2(tiny);
  const auto big = mm2.alloc(Mode::A, 10'000);
  EXPECT_FALSE(big.has_value());
  EXPECT_EQ(mm.housekeeping_cycles(), 6u);
  EXPECT_EQ(mm2.housekeeping_cycles(), 4u);
}

TEST(MemoryManagerTest, HighWaterTracksPeakNotCurrent) {
  MemoryManager mm(small_cfg());
  const auto a = mm.alloc(Mode::A, 256 * 4);  // 256 words.
  const auto b = mm.alloc(Mode::B, 256 * 4);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(mm.high_water_words(), 512u);
  mm.free(*a);
  mm.free(*b);
  EXPECT_EQ(mm.words_in_use(), 0u);
  EXPECT_EQ(mm.high_water_words(), 512u);
}

TEST(MemoryManagerTest, FragmentationCanBlockLargeAlloc) {
  // Alternate-free pattern leaves holes: conservation holds but a large
  // contiguous request fails — the cost of a dynamic scheme the fixed paging
  // never pays, reported honestly by largest_free_extent.
  MemoryManager mm(small_cfg());
  std::vector<u32> hs;
  for (int i = 0; i < 16; ++i) {
    const auto h = mm.alloc(Mode::A, 256);
    ASSERT_TRUE(h.has_value());
    hs.push_back(*h);
  }
  for (std::size_t i = 0; i < hs.size(); i += 2) EXPECT_TRUE(mm.free(hs[i]));
  EXPECT_EQ(mm.free_words(), 512u);
  EXPECT_EQ(mm.largest_free_extent_words(), 64u);
  EXPECT_FALSE(mm.alloc(Mode::A, 128 * 4).has_value());  // Needs 128 contiguous.
  EXPECT_TRUE(mm.alloc(Mode::A, 64 * 4).has_value());    // A hole fits this.
}

// ---------------------------------------------------------------------------
// Randomized property sweep: conservation, non-overlap, coalescing.
// ---------------------------------------------------------------------------

class MemMgrPropertyTest : public ::testing::TestWithParam<u32> {};

TEST_P(MemMgrPropertyTest, RandomAllocFreeKeepsInvariants) {
  std::mt19937 rng(GetParam());
  MemoryManager::Config c;
  c.pool_words = 8192;
  c.block_words = 32;
  MemoryManager mm(c);
  std::vector<u32> live;
  std::uniform_int_distribution<u32> size_dist(1, 3000);

  for (int step = 0; step < 4000; ++step) {
    const bool do_alloc = live.empty() || (rng() % 100) < 55;
    if (do_alloc) {
      const Mode m = mode_from_index(rng() % kNumModes);
      if (const auto h = mm.alloc(m, size_dist(rng))) live.push_back(*h);
    } else {
      const std::size_t i = rng() % live.size();
      ASSERT_TRUE(mm.free(live[i]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }

    // Conservation: free + allocated == pool.
    ASSERT_EQ(mm.free_words() + mm.words_in_use(), c.pool_words);
    // Per-mode attribution sums to the total.
    u32 mode_sum = 0;
    for (std::size_t mi = 0; mi < kNumModes; ++mi) {
      mode_sum += mm.mode_words(mode_from_index(mi));
    }
    ASSERT_EQ(mode_sum, mm.words_in_use());
  }

  // Non-overlap over the survivors.
  std::vector<std::pair<u32, u32>> spans;
  for (u32 h : live) spans.emplace_back(mm.base_word(h), mm.span_words(h));
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    ASSERT_GE(spans[i].first, spans[i - 1].first + spans[i - 1].second);
  }

  // Free everything: the pool must coalesce back to one extent.
  for (u32 h : live) ASSERT_TRUE(mm.free(h));
  EXPECT_EQ(mm.free_extent_count(), 1u);
  EXPECT_EQ(mm.largest_free_extent_words(), c.pool_words);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemMgrPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

}  // namespace
}  // namespace drmp::hw
