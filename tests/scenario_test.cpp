// Scenario-engine tests: fleet determinism (same seed => byte-identical
// aggregate stats), cross-device isolation (a device's results do not depend
// on fleet size), batched-vs-legacy path equivalence, and traffic-generator
// arrival shaping.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "mac/traffic_gen.hpp"
#include "scenario/scenario_engine.hpp"
#include "scenario/scenario_spec.hpp"

namespace drmp::scenario {
namespace {

// Small fleet + small workload keeps each engine run in the low millions of
// cycles; the full-size fleets live in bench_scenario_fleet.
ScenarioSpec small_fleet(std::size_t n_devices, u64 seed) {
  ScenarioSpec spec = ScenarioSpec::mixed_three_standard(n_devices, seed,
                                                         /*msdus_per_mode=*/2);
  spec.max_cycles = 30'000'000;
  return spec;
}

TEST(Scenario, MixedFleetDrainsAllThreeStandards) {
  ScenarioEngine engine(small_fleet(3, 7));
  const FleetStats fs = engine.run();
  ASSERT_EQ(fs.devices.size(), 3u);
  EXPECT_TRUE(fs.all_drained);
  std::array<u32, kNumModes> completed{};
  for (const DeviceStats& ds : fs.devices) {
    for (std::size_t m = 0; m < kNumModes; ++m) {
      EXPECT_EQ(ds.completed[m], ds.offered[m]) << "device " << ds.station_id;
      completed[m] += ds.completed[m];
    }
  }
  // The heterogeneous mix exercises WiFi on all devices, WiMAX and UWB on
  // subsets — but every standard sees traffic fleet-wide.
  EXPECT_GT(completed[0], 0u);  // WiFi.
  EXPECT_GT(completed[1], 0u);  // WiMAX.
  EXPECT_GT(completed[2], 0u);  // UWB.
}

TEST(Scenario, SameSeedSameStats) {
  const FleetStats a = ScenarioEngine(small_fleet(3, 42)).run();
  const FleetStats b = ScenarioEngine(small_fleet(3, 42)).run();
  EXPECT_EQ(a.full_digest(), b.full_digest());
  EXPECT_EQ(a.report(), b.report());
}

TEST(Scenario, DifferentSeedDifferentStats) {
  const FleetStats a = ScenarioEngine(small_fleet(3, 1)).run();
  const FleetStats b = ScenarioEngine(small_fleet(3, 2)).run();
  // Different seeds draw different MSDU sizes, so the offered-bytes counters
  // (and hence the digests) must diverge.
  EXPECT_NE(a.completion_digest(), b.completion_digest());
}

TEST(Scenario, CrossDeviceIsolation) {
  // Device 1's complete statistics are identical whether it runs alone or
  // inside a 4-device fleet: cells share nothing, and per-cell PRNG streams
  // are seeded by device index, not fleet size.
  const FleetStats solo = ScenarioEngine(small_fleet(1, 13)).run();
  const FleetStats fleet = ScenarioEngine(small_fleet(4, 13)).run();
  ASSERT_EQ(solo.devices.size(), 1u);
  ASSERT_EQ(fleet.devices.size(), 4u);
  sim::Digest ds, df;
  solo.devices[0].mix_full(ds);
  fleet.devices[0].mix_full(df);
  EXPECT_EQ(ds.value(), df.value());
}

TEST(Scenario, BatchedAndLegacyPathsCompleteTheSameWork) {
  const FleetStats batched = ScenarioEngine(small_fleet(2, 99)).run();
  const FleetStats legacy =
      ScenarioEngine(small_fleet(2, 99)).run(ScenarioEngine::Path::kLegacy);
  EXPECT_TRUE(batched.all_drained);
  EXPECT_TRUE(legacy.all_drained);
  // Completion-coupled counters are invariant to where each lane's clock
  // stops (the batched path overshoots a drained lane by < one stride).
  EXPECT_EQ(batched.completion_digest(), legacy.completion_digest());
}

TEST(Scenario, WorkerThreadsMatchSerialDigests) {
  // Parallel lockstep is a wall-clock optimisation only: a 4-worker fleet
  // must produce the same bytes as the serial reference.
  ScenarioSpec serial_spec = small_fleet(4, 21);
  ScenarioSpec parallel_spec = small_fleet(4, 21);
  parallel_spec.worker_threads = 4;
  const FleetStats serial = ScenarioEngine(std::move(serial_spec)).run();
  const FleetStats parallel = ScenarioEngine(std::move(parallel_spec)).run();
  EXPECT_EQ(serial.full_digest(), parallel.full_digest());
  EXPECT_EQ(serial.report(), parallel.report());
}

TEST(Scenario, LossyChannelForcesRetriesButEverythingCompletes) {
  ScenarioSpec spec = small_fleet(2, 5);
  spec.channel[0].loss_permille = 250;  // Brutal WiFi band.
  const FleetStats fs = ScenarioEngine(spec).run();
  EXPECT_TRUE(fs.all_drained);
  u64 tampered = 0, retries = 0;
  for (const DeviceStats& ds : fs.devices) {
    tampered += ds.tampered[0];
    retries += ds.retries[0];
    EXPECT_EQ(ds.completed[0], ds.offered[0]);
  }
  EXPECT_GT(tampered, 0u);
  EXPECT_GT(retries, 0u);
}

TEST(Scenario, CleanChannelDeliversEverythingFirstTry) {
  ScenarioSpec spec = small_fleet(2, 5);
  for (auto& ch : spec.channel) ch.loss_permille = 0;
  const FleetStats fs = ScenarioEngine(spec).run();
  EXPECT_TRUE(fs.all_drained);
  for (const DeviceStats& ds : fs.devices) {
    for (std::size_t m = 0; m < kNumModes; ++m) {
      EXPECT_EQ(ds.tx_ok[m], ds.offered[m]) << "device " << ds.station_id;
      EXPECT_EQ(ds.tampered[m], 0u);
    }
  }
}

TEST(Scenario, ReportListsEveryActiveDeviceMode) {
  ScenarioEngine engine(small_fleet(2, 3));
  const FleetStats fs = engine.run();
  const std::string report = fs.report();
  EXPECT_NE(report.find("mixed-three-standard-2"), std::string::npos);
  EXPECT_NE(report.find("digests:"), std::string::npos);
  EXPECT_EQ(report.find("BUDGET EXHAUSTED"), std::string::npos);
}

// ---- Shared-medium (contention) scenarios ------------------------------

TEST(Scenario, ContendedCellSeesCollisionsDefersAndDrains) {
  // The acceptance scenario: four WiFi CSMA stations on one shared medium
  // must actually collide and defer — the contention behaviour the
  // point-to-point fleets could never exhibit — and still drain their
  // workload through the timeout/retry/CW-growth machinery.
  ScenarioSpec spec = ScenarioSpec::contended_wifi_cell(4, 1, 6);
  const FleetStats fs = ScenarioEngine(spec).run();
  EXPECT_TRUE(fs.all_drained);
  ASSERT_EQ(fs.devices.size(), 4u);
  ASSERT_EQ(fs.cells.size(), 1u);
  EXPECT_GT(fs.total_collisions(), 0u);
  EXPECT_GT(fs.total_defers(), 0u);
  EXPECT_GT(fs.cells[0].collided_frames[0], 0u);
  EXPECT_EQ(fs.cells[0].stations, 4u);
  for (const DeviceStats& ds : fs.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
    EXPECT_GT(ds.airtime[0], 0u) << "station " << ds.station_id;
  }
  // The access point saw the uplink and acknowledged it.
  EXPECT_GT(fs.cells[0].ap_rx[0], 0u);
  EXPECT_GT(fs.cells[0].ap_acks[0], 0u);
}

TEST(Scenario, ContendedCellDigestsAreReproducible) {
  const FleetStats a = ScenarioEngine(ScenarioSpec::contended_wifi_cell(4, 1, 6)).run();
  const FleetStats b = ScenarioEngine(ScenarioSpec::contended_wifi_cell(4, 1, 6)).run();
  EXPECT_EQ(a.full_digest(), b.full_digest());
  EXPECT_EQ(a.report(), b.report());
}

TEST(Scenario, ContendedCellWorkerThreadsMatchSerial) {
  // worker_threads ∈ {1, 0}: the all-cores run must be byte-identical to the
  // serial reference even when a cell carries contending stations.
  ScenarioSpec serial_spec = ScenarioSpec::contended_wifi_cell(4, 1, 4);
  // Add a second cell so the parallel run actually distributes lanes.
  ScenarioSpec other = ScenarioSpec::mixed_three_standard(2, 1, 2);
  for (auto& c : other.cells) serial_spec.cells.push_back(std::move(c));
  ScenarioSpec parallel_spec = serial_spec;
  parallel_spec.worker_threads = 0;
  const FleetStats serial = ScenarioEngine(std::move(serial_spec)).run();
  const FleetStats parallel = ScenarioEngine(std::move(parallel_spec)).run();
  EXPECT_TRUE(serial.all_drained);
  EXPECT_EQ(serial.full_digest(), parallel.full_digest());
  EXPECT_EQ(serial.report(), parallel.report());
}

TEST(Scenario, MirroredPairReproducesTwoDeviceRtsCtsTopology) {
  // The twodevice_test topology as a first-class scenario: two full DRMP
  // devices on one shared medium, no scripted AP — each end's Event Handler
  // + AckRfu answers the other's RTS with a CTS and its data with an ACK —
  // with the RTS/CTS handshake forced on every MSDU.
  ScenarioSpec spec =
      ScenarioSpec::contended_wifi_cell(2, 5, 2, /*rts_threshold=*/128);
  spec.cells[0].access_point = false;
  const FleetStats fs = ScenarioEngine(spec).run();
  EXPECT_TRUE(fs.all_drained);
  ASSERT_EQ(fs.devices.size(), 2u);
  u32 rts = 0, cts = 0;
  for (const DeviceStats& ds : fs.devices) {
    EXPECT_EQ(ds.completed[0], ds.offered[0]) << "station " << ds.station_id;
    EXPECT_EQ(ds.tx_ok[0], ds.offered[0]) << "station " << ds.station_id;
    rts += ds.rts_sent;
    cts += ds.cts_received;
  }
  EXPECT_GT(rts, 0u);
  EXPECT_GT(cts, 0u);
}

TEST(Scenario, MixedTopologyFleetKeepsCellIsolation) {
  // A point-to-point station's complete statistics are unchanged by a
  // contended cell elsewhere in the fleet: cells share nothing.
  const FleetStats solo = ScenarioEngine(small_fleet(1, 13)).run();
  ScenarioSpec mixed = small_fleet(1, 13);
  ScenarioSpec contended = ScenarioSpec::contended_wifi_cell(3, 13, 2);
  for (auto& c : contended.cells) mixed.cells.push_back(std::move(c));
  mixed.max_cycles = 120'000'000;
  const FleetStats fleet = ScenarioEngine(std::move(mixed)).run();
  ASSERT_EQ(fleet.devices.size(), 4u);
  EXPECT_TRUE(fleet.all_drained);
  sim::Digest ds, df;
  solo.devices[0].mix_full(ds);
  fleet.devices[0].mix_full(df);
  EXPECT_EQ(ds.value(), df.value());
}

TEST(Scenario, FleetStatsCarryPowerEstimates) {
  ScenarioSpec spec = ScenarioSpec::contended_wifi_cell(2, 3, 2);
  const FleetStats fs = ScenarioEngine(spec).run();
  for (const DeviceStats& ds : fs.devices) {
    EXPECT_GT(ds.power.raw_mw, 0.0);
    EXPECT_GT(ds.power.gated_mw, 0.0);
    EXPECT_GT(ds.power.dvfs_mw, 0.0);
    // The §6.2 argument chain: each technique set strictly reduces power.
    EXPECT_LT(ds.power.gated_mw, ds.power.raw_mw);
    EXPECT_LT(ds.power.dvfs_mw, ds.power.gated_mw);
    EXPECT_GE(ds.power.cpu_activity, 0.0);
    EXPECT_LE(ds.power.cpu_activity, 1.0);
  }
  EXPECT_GT(fs.fleet_raw_mw(), fs.fleet_gated_mw());
  EXPECT_GT(fs.fleet_gated_mw(), fs.fleet_dvfs_mw());
  // Power stays out of the digests (derived floating-point views).
  FleetStats copy = fs;
  copy.devices[0].power.raw_mw += 1000.0;
  EXPECT_EQ(copy.full_digest(), fs.full_digest());
}

// ---- Quiescence-aware scheduling (idle skip) ---------------------------

TEST(Scenario, IdleSkipIsBitIdenticalToEveryTickScheduling) {
  // The acceptance contract of the quiescence scheduler: a fleet mixing
  // point-to-point and contended cells produces byte-identical aggregate
  // stats whether quiescent components are skipped or every component is
  // ticked every cycle.
  ScenarioSpec base = small_fleet(3, 77);
  ScenarioSpec contended = ScenarioSpec::contended_wifi_cell(4, 77, 3);
  for (auto& c : contended.cells) base.cells.push_back(std::move(c));
  base.max_cycles = 120'000'000;
  ScenarioSpec every_tick = base;
  every_tick.idle_skip = false;
  const FleetStats skipped = ScenarioEngine(std::move(base)).run();
  const FleetStats ticked = ScenarioEngine(std::move(every_tick)).run();
  EXPECT_TRUE(skipped.all_drained);
  EXPECT_EQ(skipped.full_digest(), ticked.full_digest());
  EXPECT_EQ(skipped.report(), ticked.report());
  // And the skip path really skipped: this workload is idle-dominated.
  EXPECT_GT(skipped.ticks_skipped, skipped.ticks_executed);
  EXPECT_EQ(ticked.ticks_skipped, 0u);
}

TEST(Scenario, ExecutionPolicyMatrixKeepsOneDigestPerWorkload) {
  // The scheduler-overhaul acceptance sweep: each workload produces exactly
  // ONE digest across its execution-policy matrix — worker_threads {1, 0}
  // x idle_skip {on, off}. Execution strategy (trigger-driven IRC bounds,
  // the timing wheel, frame arenas) must be invisible in every simulation
  // counter. The every-tick arms run on an 8-station cell and the 8-device
  // fleet; at 64 stations idle_skip=off means hundreds of billions of
  // component-ticks (the ~80x the skip path buys at that scale), so the
  // 64-station workload sweeps the worker axis on the skip path only.
  struct Arm {
    const char* workload;
    unsigned workers;
    bool skip;
  };
  const Arm arms[] = {
      {"contended-8", 1, true},  {"contended-8", 1, false},
      {"contended-8", 0, true},  {"contended-8", 0, false},
      {"fleet-8", 1, true},      {"fleet-8", 1, false},
      {"fleet-8", 0, true},      {"fleet-8", 0, false},
      {"contended-64", 1, true}, {"contended-64", 0, true},
  };
  std::map<std::string, std::pair<u64, std::string>> ref;
  for (const Arm& a : arms) {
    ScenarioSpec spec = std::string_view(a.workload) == "contended-8"
                            ? ScenarioSpec::contended_wifi_cell(8, 1, 2)
                        : std::string_view(a.workload) == "fleet-8"
                            ? ScenarioSpec::mixed_three_standard(8, 1, 1)
                            : ScenarioSpec::contended_wifi_cell(64, 1, 1);
    spec.worker_threads = a.workers;
    spec.idle_skip = a.skip;
    const FleetStats fs = ScenarioEngine(std::move(spec)).run();
    const std::string arm_name = std::string(a.workload) +
                                 " workers=" + std::to_string(a.workers) +
                                 " skip=" + std::to_string(a.skip);
    EXPECT_TRUE(fs.all_drained) << arm_name;
    auto [it, fresh] = ref.emplace(a.workload,
                                   std::make_pair(fs.full_digest(), fs.report()));
    EXPECT_EQ(fs.full_digest(), it->second.first) << arm_name;
    EXPECT_EQ(fs.report(), it->second.second) << arm_name;
    if (!fresh && fs.full_digest() != it->second.first) break;  // One arm is enough.
  }
}

// 64-device mixed fleet with a skewed traffic mix: a quarter of the
// stations stream large MSDUs, a quarter trickle small ones, the rest run
// the standard mix — the ROADMAP's "scale the fleet axis" open item.
ScenarioSpec skewed_64_fleet(u64 seed) {
  ScenarioSpec spec = ScenarioSpec::mixed_three_standard(64, seed,
                                                         /*msdus_per_mode=*/1);
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    for (DeviceSpec& d : spec.cells[i].stations) {
      for (auto& t : d.traffic) {
        if (!t.enabled) continue;
        if (i % 4 == 0) {
          t.msdu_min_bytes = 900;
          t.msdu_max_bytes = 1400;
        } else if (i % 4 == 1) {
          t.msdu_min_bytes = 64;
          t.msdu_max_bytes = 128;
        }
      }
    }
  }
  spec.max_cycles = 30'000'000;
  return spec;
}

TEST(Scenario, SixtyFourDeviceMixedFleetDrainsAcrossWorkersAndPaths) {
  const FleetStats serial = ScenarioEngine(skewed_64_fleet(2026)).run();
  EXPECT_TRUE(serial.all_drained);
  ASSERT_EQ(serial.devices.size(), 64u);
  for (const DeviceStats& ds : serial.devices) {
    for (std::size_t m = 0; m < kNumModes; ++m) {
      EXPECT_EQ(ds.completed[m], ds.offered[m]) << "device " << ds.station_id;
    }
  }
  ScenarioSpec par = skewed_64_fleet(2026);
  par.worker_threads = 0;  // All cores.
  const FleetStats parallel = ScenarioEngine(std::move(par)).run();
  EXPECT_EQ(serial.full_digest(), parallel.full_digest());
  EXPECT_EQ(serial.report(), parallel.report());
  const FleetStats legacy =
      ScenarioEngine(skewed_64_fleet(2026)).run(ScenarioEngine::Path::kLegacy);
  EXPECT_TRUE(legacy.all_drained);
  EXPECT_EQ(serial.completion_digest(), legacy.completion_digest());
}

TEST(TrafficGen, SlottedStreamPacesArrivalsByInterval) {
  sim::TimeBase tb(200e6);
  mac::TrafficSpec spec = mac::TrafficSpec::uwb_slotted_stream(3);
  spec.start_us = 10.0;
  spec.interval_us = 20.0;
  mac::TrafficGen gen(spec, tb, 1234);
  std::vector<Cycle> arrivals;
  Cycle now = 0;
  sim::Scheduler s(200e6);
  s.add(gen, "gen");
  gen.send = [&](Bytes b) {
    arrivals.push_back(now);
    EXPECT_GE(b.size(), spec.msdu_min_bytes);
    EXPECT_LE(b.size(), spec.msdu_max_bytes);
    gen.notify_tx_complete();  // Instant completion: no backpressure.
  };
  for (; now < 20'000; ++now) s.run_cycles(1);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], tb.us_to_cycles(10.0));
  EXPECT_EQ(arrivals[1] - arrivals[0], tb.us_to_cycles(20.0));
  EXPECT_EQ(arrivals[2] - arrivals[1], tb.us_to_cycles(20.0));
  EXPECT_TRUE(gen.drained());
}

TEST(TrafficGen, BackpressureDefersArrivalsUntilCompletions) {
  sim::TimeBase tb(200e6);
  mac::TrafficSpec spec = mac::TrafficSpec::wifi_csma_bursts(6);
  spec.start_us = 1.0;
  spec.interval_us = 5.0;
  spec.burst_len = 4;
  spec.max_inflight = 2;
  mac::TrafficGen gen(spec, tb, 77);
  u32 sent = 0;
  gen.send = [&](Bytes) { ++sent; };
  sim::Scheduler s(200e6);
  s.add(gen, "gen");
  s.run_cycles(tb.us_to_cycles(3.0));
  EXPECT_EQ(sent, 2u);  // Burst clamped to max_inflight.
  gen.notify_tx_complete();
  gen.notify_tx_complete();
  s.run_cycles(tb.us_to_cycles(5.0));
  EXPECT_EQ(sent, 4u);  // Next interval refills the window.
  EXPECT_FALSE(gen.drained());
}

}  // namespace
}  // namespace drmp::scenario
