// Extended-ISA model tests (thesis §4.2).
#include <gtest/gtest.h>

#include "cpu/ext_isa.hpp"

namespace drmp::cpu {
namespace {

TEST(ExtIsa, CatalogEntriesAreWellFormed) {
  for (const auto& e : ext_isa_catalog()) {
    EXPECT_GT(e.native_instr, e.extended_instr) << e.name;
    EXPECT_GE(e.extended_instr, 1u) << e.name;
    EXPECT_GT(e.uses_per_packet, 0u) << e.name;
    EXPECT_GT(e.gate_cost, 0u) << e.name;
  }
}

TEST(ExtIsa, SummarySumsCatalog) {
  const auto s = ext_isa_summary();
  u32 native = 0, ext = 0, gates = 0;
  for (const auto& e : ext_isa_catalog()) {
    native += e.native_instr * e.uses_per_packet;
    ext += e.extended_instr * e.uses_per_packet;
    gates += e.gate_cost;
  }
  EXPECT_EQ(s.native_instr_per_packet, native);
  EXPECT_EQ(s.extended_instr_per_packet, ext);
  EXPECT_EQ(s.total_gate_cost, gates);
  EXPECT_GT(s.speedup(), 2.0);  // Worth the silicon, per §4.2's premise.
}

TEST(ExtIsa, RepriceReducesButNeverZeroes) {
  const auto s = ext_isa_summary();
  // A big ISR keeps its control-flow share.
  const u32 big = s.native_instr_per_packet + 500;
  EXPECT_EQ(reprice_isr(big), 500 + s.extended_instr_per_packet);
  // A small ISR scales proportionally and stays >= 1.
  EXPECT_GE(reprice_isr(5), 1u);
  EXPECT_LT(reprice_isr(s.native_instr_per_packet), s.native_instr_per_packet);
}

TEST(ExtIsa, RepriceMonotonic) {
  u32 prev = 0;
  for (u32 n : {1u, 10u, 50u, 100u, 200u, 1000u}) {
    const u32 r = reprice_isr(n);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

}  // namespace
}  // namespace drmp::cpu
