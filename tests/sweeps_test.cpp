// Parameterized property sweeps over the extension features: RTS-threshold
// boundary behaviour, interconnect width monotonicity, memory-manager block
// granularity, and PCF poll-interval robustness. Each sweep checks an
// invariant across a parameter range rather than a single scenario.
#include <gtest/gtest.h>

#include "drmp/testbench.hpp"
#include "hw/interconnect_models.hpp"
#include "hw/memory_manager.hpp"
#include "mac/wifi_ctrl.hpp"

namespace drmp {
namespace {

Bytes payload(std::size_t n, u8 seed = 3) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 13 + seed);
  return b;
}

// ---------------------------------------------------------------------------
// RTS threshold boundary: MSDUs below never handshake, at/above always do.
// ---------------------------------------------------------------------------

class RtsThresholdSweep : public ::testing::TestWithParam<u32> {};

TEST_P(RtsThresholdSweep, HandshakeExactlyWhenAtOrAboveThreshold) {
  const u32 thr = GetParam();
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.modes[0].ident.rts_threshold = thr;
  Testbench tb(cfg);

  // One MSDU just below, one exactly at the threshold.
  const auto below = tb.send_and_wait(Mode::A, payload(thr - 1), 800'000'000ull);
  ASSERT_TRUE(below.completed);
  EXPECT_TRUE(below.success);
  auto& ctrl = static_cast<ctrl::WifiCtrl&>(tb.device().protocol_ctrl(Mode::A));
  EXPECT_EQ(ctrl.rts_sent, 0u) << "below-threshold MSDU must not handshake";

  const auto at = tb.send_and_wait(Mode::A, payload(thr), 800'000'000ull);
  ASSERT_TRUE(at.completed);
  EXPECT_TRUE(at.success);
  EXPECT_EQ(ctrl.rts_sent, 1u) << "at-threshold MSDU must handshake";
  EXPECT_EQ(ctrl.cts_received, 1u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, RtsThresholdSweep,
                         ::testing::Values(200u, 512u, 1000u));

// ---------------------------------------------------------------------------
// Interconnect: widening the bus never increases any flow's wait; adding
// buses never increases total wait.
// ---------------------------------------------------------------------------

class BusWidthSweep : public ::testing::TestWithParam<u32> {};

std::vector<hw::FlowTx> synthetic_contended_trace(u32 seed) {
  // Three flows with overlapping bursty demand (deterministic LCG).
  std::vector<hw::FlowTx> trace;
  u64 x = seed;
  auto rnd = [&x](u32 lim) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<u32>((x >> 33) % lim);
  };
  Cycle t = 0;
  for (int i = 0; i < 120; ++i) {
    hw::FlowTx tx;
    tx.flow = rnd(3);
    t += rnd(40);
    tx.request = t;
    tx.words = 8 + rnd(120);
    tx.stall = rnd(10);
    tx.segments = 1 + rnd(3);
    trace.push_back(tx);
  }
  return trace;
}

TEST_P(BusWidthSweep, WiderBusNeverIncreasesWait) {
  const auto trace = synthetic_contended_trace(GetParam());
  Cycle prev_total = ~0ull;
  for (u32 width : {1u, 2u, 4u, 8u}) {
    hw::InterconnectSpec spec;
    spec.kind = width == 1 ? hw::InterconnectSpec::Kind::SingleBus
                           : hw::InterconnectSpec::Kind::WideBus;
    spec.width_words = width;
    const auto res = hw::replay_interconnect(trace, spec);
    EXPECT_LE(res.total_wait(), prev_total) << "width " << width;
    prev_total = res.total_wait();
  }
}

TEST_P(BusWidthSweep, MoreBusesNeverIncreaseWait) {
  const auto trace = synthetic_contended_trace(GetParam() + 17);
  Cycle prev_total = ~0ull;
  for (u32 n : {1u, 2u, 3u}) {
    hw::InterconnectSpec spec;
    spec.kind = n == 1 ? hw::InterconnectSpec::Kind::SingleBus
                       : hw::InterconnectSpec::Kind::MultiBus;
    spec.num_buses = n;
    const auto res = hw::replay_interconnect(trace, spec);
    EXPECT_LE(res.total_wait(), prev_total) << n << " buses";
    prev_total = res.total_wait();
  }
}

TEST_P(BusWidthSweep, SegmentedDegeneratesToSingleWhenAllTxSpanBothSegments) {
  // When every transaction needs both segments, the segmented bus is one
  // serial resource — the schedule must match the single bus exactly. (It is
  // NOT generally true that segmented <= single: greedy non-preemptive
  // arbitration shows classic scheduling anomalies where a both-segment
  // transaction starves slightly behind single-segment slip-ins; the
  // interconnect bench reports this honestly.)
  auto trace = synthetic_contended_trace(GetParam() + 31);
  for (auto& tx : trace) tx.segments = hw::FlowTx::kSegMem | hw::FlowTx::kSegRfu;
  hw::InterconnectSpec seg;
  seg.kind = hw::InterconnectSpec::Kind::SegmentedBus;
  const auto s = hw::replay_interconnect(trace, seg);
  const auto single = hw::replay_interconnect(trace, {});
  EXPECT_EQ(s.total_wait(), single.total_wait());
  EXPECT_EQ(s.makespan, single.makespan);
}

TEST_P(BusWidthSweep, SegmentedEliminatesWaitForDisjointSegmentFlows) {
  // Two flows living on different segments never contend on the segmented
  // bus, whatever the single bus made them suffer.
  auto trace = synthetic_contended_trace(GetParam() + 47);
  for (auto& tx : trace) {
    tx.flow = tx.flow % 2;
    tx.segments = tx.flow == 0 ? hw::FlowTx::kSegMem : hw::FlowTx::kSegRfu;
  }
  hw::InterconnectSpec seg;
  seg.kind = hw::InterconnectSpec::Kind::SegmentedBus;
  const auto s = hw::replay_interconnect(trace, seg);
  EXPECT_EQ(s.total_wait(), 0u);
  const auto single = hw::replay_interconnect(trace, {});
  EXPECT_GE(single.total_wait(), s.total_wait());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusWidthSweep, ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// Memory manager: smaller blocks never increase the footprint of a fixed
// allocation sequence (internal fragmentation shrinks with granularity).
// ---------------------------------------------------------------------------

class BlockSizeSweep : public ::testing::TestWithParam<u32> {};

TEST_P(BlockSizeSweep, FinerBlocksNeverRaiseHighWater) {
  const u32 seed = GetParam();
  u64 x = seed;
  auto rnd = [&x](u32 lim) {
    x = x * 2862933555777941757ull + 3037000493ull;
    return static_cast<u32>((x >> 33) % lim);
  };
  // One deterministic alloc/free scenario replayed at every granularity.
  struct Step {
    bool alloc;
    u32 bytes;
    u32 victim;
  };
  std::vector<Step> steps;
  for (int i = 0; i < 300; ++i) {
    steps.push_back(Step{(rnd(100) < 60), 1 + rnd(2500), rnd(1000)});
  }

  u32 prev_hw = ~0u;
  for (const u32 block : {256u, 128u, 64u, 32u, 16u}) {
    hw::MemoryManager::Config c;
    c.pool_words = 65536;
    c.block_words = block;
    hw::MemoryManager mm(c);
    std::vector<u32> live;
    for (const Step& s : steps) {
      if (s.alloc || live.empty()) {
        if (const auto h = mm.alloc(Mode::A, s.bytes)) live.push_back(*h);
      } else {
        const std::size_t i = s.victim % live.size();
        ASSERT_TRUE(mm.free(live[i]));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    EXPECT_LE(mm.high_water_words(), prev_hw) << "block=" << block;
    prev_hw = mm.high_water_words();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockSizeSweep, ::testing::Values(5u, 23u, 77u));

// ---------------------------------------------------------------------------
// PCF poll interval: the polled station delivers regardless of poll cadence
// (as long as the interval covers the data air time).
// ---------------------------------------------------------------------------

class PcfIntervalSweep : public ::testing::TestWithParam<double> {};

TEST_P(PcfIntervalSweep, DataDeliveredAtAnyReasonableCadence) {
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.modes[0].ident.pcf_poll_mode = true;
  Testbench tb(cfg);
  tb.send_async(Mode::A, payload(300));
  tb.run_cycles(200'000);
  tb.peer(Mode::A).begin_cfp(
      tb.scheduler().now() + 1000, 4, GetParam(),
      mac::MacAddr::from_u64(tb.config().modes[0].ident.self_addr));
  ASSERT_TRUE(tb.wait_tx_count(Mode::A, 1, 2'000'000'000ull));
  EXPECT_EQ(tb.tx_successes(Mode::A), 1u);
  EXPECT_EQ(tb.peer(Mode::A).cfp_data_received(), 1u);
  EXPECT_EQ(tb.peer(Mode::A).acks_sent(), 0u);
}

INSTANTIATE_TEST_SUITE_P(IntervalsUs, PcfIntervalSweep,
                         ::testing::Values(400.0, 800.0, 1600.0, 3200.0));

}  // namespace
}  // namespace drmp
