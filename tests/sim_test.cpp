// Simulation-kernel tests: scheduler determinism, derived clocks, trace
// bookkeeping, statistics collectors.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace drmp::sim {
namespace {

class Counter : public Clockable {
 public:
  void tick() override { ++ticks; }
  Cycle ticks = 0;
};

TEST(Scheduler, RunsRegisteredComponentsEveryCycle) {
  Scheduler s(200e6);
  Counter a, b;
  s.add(a, "a");
  s.add(b, "b");
  s.run_cycles(100);
  EXPECT_EQ(a.ticks, 100u);
  EXPECT_EQ(b.ticks, 100u);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Scheduler, RunUntilStopsAtPredicate) {
  Scheduler s(200e6);
  Counter a;
  s.add(a, "a");
  EXPECT_TRUE(s.run_until([&] { return a.ticks >= 42; }, 1000));
  EXPECT_EQ(a.ticks, 42u);
}

TEST(Scheduler, RunUntilTimesOut) {
  Scheduler s(200e6);
  Counter a;
  s.add(a, "a");
  EXPECT_FALSE(s.run_until([&] { return false; }, 50));
  EXPECT_EQ(s.now(), 50u);
}

TEST(TimeBase, CycleConversionsAt200MHz) {
  TimeBase tb(200e6);
  EXPECT_EQ(tb.us_to_cycles(10.0), 2000u);       // SIFS = 10 us.
  EXPECT_DOUBLE_EQ(tb.cycles_to_us(2000), 10.0);
  EXPECT_EQ(tb.ns_to_cycles(5.0), 1u);           // One cycle = 5 ns.
}

TEST(DerivedClock, FractionalDividerLongRunAccuracy) {
  // 11 Mbps byte clock from a 200 MHz master: 1.375 M edges/s.
  TimeBase tb(200e6);
  DerivedClock byte_clk(200e6, 11e6 / 8.0);
  u64 edges = 0;
  const u64 cycles = 2'000'000;  // 10 ms.
  for (u64 i = 0; i < cycles; ++i) edges += byte_clk.advance();
  // 10 ms * 1.375 MHz = 13750 edges.
  EXPECT_NEAR(static_cast<double>(edges), 13750.0, 1.0);
}

TEST(Trace, ActiveCyclesAndValueAt) {
  TraceChannel ch("x");
  ch.record(0, 0);
  ch.record(10, 3);
  ch.record(20, 0);
  ch.record(30, 1);
  EXPECT_EQ(ch.active_cycles(0, 40), 10u + 10u);
  EXPECT_EQ(ch.value_at(5).value(), 0);
  EXPECT_EQ(ch.value_at(15).value(), 3);
  EXPECT_EQ(ch.value_at(25).value(), 0);
  EXPECT_EQ(ch.value_at(35).value(), 1);
}

TEST(Trace, RecordCollapsesDuplicates) {
  TraceChannel ch("x");
  ch.record(0, 5);
  ch.record(1, 5);
  ch.record(2, 5);
  EXPECT_EQ(ch.events().size(), 1u);
}

TEST(Trace, AsciiWaveformRenders) {
  TraceRecorder rec;
  rec.channel("sig").record(0, 0);
  rec.channel("sig").record(50, 1);
  rec.channel("sig").record(75, 0);
  const std::string wf = rec.ascii_waveform({"sig"}, 0, 100, 20);
  EXPECT_NE(wf.find("sig"), std::string::npos);
  EXPECT_NE(wf.find('1'), std::string::npos);
  EXPECT_NE(wf.find('.'), std::string::npos);
}

TEST(Stats, BusyCounterFraction) {
  BusyCounter c;
  for (int i = 0; i < 100; ++i) c.sample(i < 25);
  EXPECT_DOUBLE_EQ(c.busy_fraction(), 0.25);
}

TEST(Stats, StateOccupancyTotals) {
  StateOccupancy occ;
  for (int i = 0; i < 10; ++i) occ.sample(0);
  for (int i = 0; i < 5; ++i) occ.sample(2);
  EXPECT_EQ(occ.cycles_in(0), 10u);
  EXPECT_EQ(occ.cycles_in(2), 5u);
  EXPECT_EQ(occ.cycles_in(7), 0u);
  EXPECT_EQ(occ.total(), 15u);
}

TEST(Stats, LatencyPercentiles) {
  LatencyStats l;
  for (int i = 1; i <= 100; ++i) l.add(i);
  EXPECT_DOUBLE_EQ(l.min(), 1.0);
  EXPECT_DOUBLE_EQ(l.max(), 100.0);
  EXPECT_DOUBLE_EQ(l.mean(), 50.5);
  EXPECT_NEAR(l.percentile(0.5), 50.0, 1.0);
}

}  // namespace
}  // namespace drmp::sim
