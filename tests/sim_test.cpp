// Simulation-kernel tests: scheduler determinism, derived clocks, trace
// bookkeeping, statistics collectors.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/clock.hpp"
#include "sim/multi_scheduler.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace drmp::sim {
namespace {

class Counter : public Clockable {
 public:
  void tick() override { ++ticks; }
  Cycle ticks = 0;
};

/// Appends its id to a shared log on every tick — pins down exact tick order.
class OrderLogger : public Clockable {
 public:
  OrderLogger(std::vector<int>& log, int id) : log_(log), id_(id) {}
  void tick() override { log_.push_back(id_); }

 private:
  std::vector<int>& log_;
  int id_;
};

TEST(Scheduler, RunsRegisteredComponentsEveryCycle) {
  Scheduler s(200e6);
  Counter a, b;
  s.add(a, "a");
  s.add(b, "b");
  s.run_cycles(100);
  EXPECT_EQ(a.ticks, 100u);
  EXPECT_EQ(b.ticks, 100u);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Scheduler, RunUntilStopsAtPredicate) {
  Scheduler s(200e6);
  Counter a;
  s.add(a, "a");
  EXPECT_TRUE(s.run_until([&] { return a.ticks >= 42; }, 1000));
  EXPECT_EQ(a.ticks, 42u);
}

TEST(Scheduler, RunUntilTimesOut) {
  Scheduler s(200e6);
  Counter a;
  s.add(a, "a");
  EXPECT_FALSE(s.run_until([&] { return false; }, 50));
  EXPECT_EQ(s.now(), 50u);
}

TEST(Scheduler, BatchedMatchesLegacyCycleForCycle) {
  // Identical component populations through both execution paths must leave
  // identical state: same tick sequence, same tick counts, same clock.
  std::vector<int> legacy_log, batched_log;
  Scheduler legacy(200e6), batched(200e6);
  OrderLogger l0(legacy_log, 0), l1(legacy_log, 1), l2(legacy_log, 2);
  OrderLogger b0(batched_log, 0), b1(batched_log, 1), b2(batched_log, 2);
  legacy.add(l0, "a");
  legacy.add(l1, "b");
  legacy.add(l2, "c");
  batched.add(b0, "a");
  batched.add(b1, "b");
  batched.add(b2, "c");
  legacy.run_cycles(37);
  batched.run_cycles_batched(37);
  EXPECT_EQ(legacy.now(), batched.now());
  EXPECT_EQ(legacy_log, batched_log);
}

TEST(Scheduler, StagesOverrideRegistrationOrderInBothPaths) {
  // A medium-stage component registered last still ticks first; within a
  // stage, registration order is preserved.
  for (const bool use_batched : {false, true}) {
    std::vector<int> log;
    Scheduler s(200e6);
    OrderLogger dev1(log, 1), dev2(log, 2), probe(log, 3), medium(log, 0);
    s.add(dev1, "dev1");
    s.add(probe, "probe", Scheduler::kStageObserver);
    s.add(dev2, "dev2");
    s.add(medium, "medium", Scheduler::kStageMedium);
    if (use_batched) {
      s.run_cycles_batched(2);
    } else {
      s.run_cycles(2);
    }
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
    EXPECT_EQ(s.component_stage(1), Scheduler::kStageObserver);
    EXPECT_EQ(s.component_stage(3), Scheduler::kStageMedium);
    EXPECT_EQ(s.component_name(3), "medium");
  }
}

TEST(Scheduler, BatchedAdvancesNowEveryCycleAsSeenFromTicks) {
  // Components that sample now() mid-tick (latency bookkeeping does) must
  // observe the same clock under both paths.
  class NowSampler : public Clockable {
   public:
    explicit NowSampler(Scheduler& s) : s_(s) {}
    void tick() override { seen.push_back(s_.now()); }
    std::vector<Cycle> seen;

   private:
    Scheduler& s_;
  };
  Scheduler legacy(200e6), batched(200e6);
  NowSampler nl(legacy), nb(batched);
  legacy.add(nl, "n");
  batched.add(nb, "n");
  legacy.run_cycles(5);
  batched.run_cycles_batched(5);
  EXPECT_EQ(nl.seen, nb.seen);
  EXPECT_EQ(nb.seen, (std::vector<Cycle>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, BatchedZeroCyclesIsANoop) {
  Scheduler s(200e6);
  Counter a;
  s.add(a, "a");
  s.run_cycles_batched(0);
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(a.ticks, 0u);
}

TEST(MultiScheduler, LockstepMatchesIndividualRuns) {
  Scheduler s1(200e6), s2(200e6);
  Counter a, b;
  s1.add(a, "a");
  s2.add(b, "b");
  MultiScheduler multi;
  multi.add(s1);
  multi.add(s2);
  const auto res = multi.run(10'000, /*stride=*/64);
  EXPECT_EQ(res.cycles, 10'000u);
  EXPECT_EQ(a.ticks, 10'000u);
  EXPECT_EQ(b.ticks, 10'000u);
  EXPECT_EQ(s1.now(), s2.now());
  // Unpredicated lanes never "finish" but don't block all_finished.
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(res.lanes_finished, 0u);
}

TEST(MultiScheduler, EarlyExitStopsALaneAtStrideGranularity) {
  Scheduler s1(200e6), s2(200e6);
  Counter a, b;
  s1.add(a, "a");
  s2.add(b, "b");
  MultiScheduler multi;
  multi.add(s1, [&] { return a.ticks >= 100; });  // Fires inside stride 1.
  multi.add(s2, [&] { return b.ticks >= 5000; });
  const auto res = multi.run(100'000, /*stride=*/256);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(res.lanes_finished, 2u);
  // Lane 1 stopped at its first stride boundary after the predicate fired.
  EXPECT_EQ(a.ticks, 256u);
  EXPECT_TRUE(multi.lane_finished(0));
  EXPECT_EQ(multi.lane_cycles(0), 256u);
  // Lane 2 ran on without lane 1: 5000 rounded up to the stride boundary.
  EXPECT_EQ(b.ticks, 5120u);
  EXPECT_EQ(res.cycles, 5120u);
}

TEST(MultiScheduler, WorkerThreadsMatchSerialExactly) {
  // Lanes are independent clock domains, so a 4-worker run must leave every
  // lane in the same state as the serial run.
  constexpr std::size_t kLanes = 6;
  std::vector<std::unique_ptr<Scheduler>> serial_s, parallel_s;
  std::vector<std::unique_ptr<Counter>> serial_c, parallel_c;
  MultiScheduler serial, parallel;
  for (std::size_t i = 0; i < kLanes; ++i) {
    for (auto* side : {&serial_s, &parallel_s}) {
      side->push_back(std::make_unique<Scheduler>(200e6));
    }
    serial_c.push_back(std::make_unique<Counter>());
    parallel_c.push_back(std::make_unique<Counter>());
    serial_s[i]->add(*serial_c[i], "c");
    parallel_s[i]->add(*parallel_c[i], "c");
    const Cycle target = 1000 + 700 * i;
    Counter* sc = serial_c[i].get();
    Counter* pc = parallel_c[i].get();
    serial.add(*serial_s[i], [sc, target] { return sc->ticks >= target; });
    parallel.add(*parallel_s[i], [pc, target] { return pc->ticks >= target; });
  }
  const auto rs = serial.run(100'000, 256, /*workers=*/1);
  const auto rp = parallel.run(100'000, 256, /*workers=*/4);
  EXPECT_EQ(rs.cycles, rp.cycles);
  EXPECT_EQ(rs.lanes_finished, rp.lanes_finished);
  for (std::size_t i = 0; i < kLanes; ++i) {
    EXPECT_EQ(serial_c[i]->ticks, parallel_c[i]->ticks) << "lane " << i;
    EXPECT_EQ(serial.lane_cycles(i), parallel.lane_cycles(i)) << "lane " << i;
  }
}

TEST(MultiScheduler, BudgetExhaustionReportsUnfinishedLanes) {
  Scheduler s1(200e6);
  Counter a;
  s1.add(a, "a");
  MultiScheduler multi;
  multi.add(s1, [&] { return false; });
  const auto res = multi.run(1000, /*stride=*/300);
  EXPECT_FALSE(res.all_finished);
  EXPECT_EQ(res.lanes_finished, 0u);
  EXPECT_EQ(res.cycles, 1000u);  // Final partial stride honours the budget.
  EXPECT_EQ(a.ticks, 1000u);
}

TEST(MultiScheduler, AlreadyDrainedLaneNeverTicks) {
  Scheduler s1(200e6);
  Counter a;
  s1.add(a, "a");
  MultiScheduler multi;
  multi.add(s1, [] { return true; });
  const auto res = multi.run(1000);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(a.ticks, 0u);
  EXPECT_EQ(res.cycles, 0u);
}

TEST(Stats, DigestIsOrderSensitiveAndStable) {
  Digest d1, d2, d3;
  d1.mix(1).mix(2);
  d2.mix(1).mix(2);
  d3.mix(2).mix(1);
  EXPECT_EQ(d1.value(), d2.value());
  EXPECT_NE(d1.value(), d3.value());
  EXPECT_NE(Digest{}.value(), d1.value());
}

TEST(Trace, DisabledRecorderDropsEventsUntilReenabled) {
  TraceRecorder rec;
  rec.channel("sig").record(0, 1);
  rec.set_enabled(false);
  rec.channel("sig").record(10, 2);    // Dropped: existing channel muted.
  rec.channel("other").record(11, 7);  // Dropped: new channels inherit mute.
  EXPECT_EQ(rec.channel("sig").events().size(), 1u);
  EXPECT_EQ(rec.channel("other").events().size(), 0u);
  rec.set_enabled(true);
  rec.channel("sig").record(20, 3);
  EXPECT_EQ(rec.channel("sig").events().size(), 2u);
}

TEST(TimeBase, CycleConversionsAt200MHz) {
  TimeBase tb(200e6);
  EXPECT_EQ(tb.us_to_cycles(10.0), 2000u);       // SIFS = 10 us.
  EXPECT_DOUBLE_EQ(tb.cycles_to_us(2000), 10.0);
  EXPECT_EQ(tb.ns_to_cycles(5.0), 1u);           // One cycle = 5 ns.
}

TEST(DerivedClock, FractionalDividerLongRunAccuracy) {
  // 11 Mbps byte clock from a 200 MHz master: 1.375 M edges/s.
  TimeBase tb(200e6);
  DerivedClock byte_clk(200e6, 11e6 / 8.0);
  u64 edges = 0;
  const u64 cycles = 2'000'000;  // 10 ms.
  for (u64 i = 0; i < cycles; ++i) edges += byte_clk.advance();
  // 10 ms * 1.375 MHz = 13750 edges.
  EXPECT_NEAR(static_cast<double>(edges), 13750.0, 1.0);
}

TEST(Trace, ActiveCyclesAndValueAt) {
  TraceChannel ch("x");
  ch.record(0, 0);
  ch.record(10, 3);
  ch.record(20, 0);
  ch.record(30, 1);
  EXPECT_EQ(ch.active_cycles(0, 40), 10u + 10u);
  EXPECT_EQ(ch.value_at(5).value(), 0);
  EXPECT_EQ(ch.value_at(15).value(), 3);
  EXPECT_EQ(ch.value_at(25).value(), 0);
  EXPECT_EQ(ch.value_at(35).value(), 1);
}

TEST(Trace, RecordCollapsesDuplicates) {
  TraceChannel ch("x");
  ch.record(0, 5);
  ch.record(1, 5);
  ch.record(2, 5);
  EXPECT_EQ(ch.events().size(), 1u);
}

TEST(Trace, AsciiWaveformRenders) {
  TraceRecorder rec;
  rec.channel("sig").record(0, 0);
  rec.channel("sig").record(50, 1);
  rec.channel("sig").record(75, 0);
  const std::string wf = rec.ascii_waveform({"sig"}, 0, 100, 20);
  EXPECT_NE(wf.find("sig"), std::string::npos);
  EXPECT_NE(wf.find('1'), std::string::npos);
  EXPECT_NE(wf.find('.'), std::string::npos);
}

TEST(Stats, BusyCounterFraction) {
  BusyCounter c;
  for (int i = 0; i < 100; ++i) c.sample(i < 25);
  EXPECT_DOUBLE_EQ(c.busy_fraction(), 0.25);
}

TEST(Stats, StateOccupancyTotals) {
  StateOccupancy occ;
  for (int i = 0; i < 10; ++i) occ.sample(0);
  for (int i = 0; i < 5; ++i) occ.sample(2);
  EXPECT_EQ(occ.cycles_in(0), 10u);
  EXPECT_EQ(occ.cycles_in(2), 5u);
  EXPECT_EQ(occ.cycles_in(7), 0u);
  EXPECT_EQ(occ.total(), 15u);
}

TEST(Stats, LatencyPercentiles) {
  LatencyStats l;
  for (int i = 1; i <= 100; ++i) l.add(i);
  EXPECT_DOUBLE_EQ(l.min(), 1.0);
  EXPECT_DOUBLE_EQ(l.max(), 100.0);
  EXPECT_DOUBLE_EQ(l.mean(), 50.5);
  EXPECT_NEAR(l.percentile(0.5), 50.0, 1.0);
}

TEST(Stats, BulkSamplesMatchLoopedSamples) {
  BusyCounter a, b;
  for (int i = 0; i < 37; ++i) a.sample(true);
  for (int i = 0; i < 63; ++i) a.sample(false);
  b.sample_n(true, 37);
  b.sample_n(false, 63);
  EXPECT_EQ(a.busy_cycles(), b.busy_cycles());
  EXPECT_EQ(a.total_cycles(), b.total_cycles());
  StateOccupancy oa, ob;
  for (int i = 0; i < 12; ++i) oa.sample(3);
  ob.sample_n(3, 12);
  EXPECT_EQ(oa.cycles_in(3), ob.cycles_in(3));
}

// ---- Quiescence-aware batching -------------------------------------------

/// Periodic worker honouring the full quiescence contract: does real work
/// every `period` cycles, declares the gaps skippable, and keeps an internal
/// clock that must stay cycle-exact through skips.
class PeriodicWorker : public Clockable {
 public:
  explicit PeriodicWorker(Cycle period) : period_(period), next_due_(period) {}

  void tick() override {
    const Cycle t = clock_++;
    if (t >= next_due_) {
      work_log.push_back(t);
      next_due_ = t + period_;
    }
  }
  Cycle quiescent_for() const override {
    return next_due_ > clock_ ? next_due_ - clock_ : 0;
  }
  void skip_idle(Cycle n) override {
    clock_ += n;
    skipped += n;
  }

  Cycle clock() const noexcept { return clock_; }
  std::vector<Cycle> work_log;
  Cycle skipped = 0;

 private:
  Cycle period_;
  Cycle next_due_;
  Cycle clock_ = 0;
};

/// Mailbox consumer: sleeps indefinitely while empty; producers wake it.
class MailboxConsumer : public Clockable {
 public:
  void tick() override {
    const Cycle t = clock_++;
    if (pending_ > 0) {
      --pending_;
      rx_log.push_back(t);
    }
  }
  Cycle quiescent_for() const override { return pending_ > 0 ? 0 : kIdleForever; }
  void skip_idle(Cycle n) override { clock_ += n; }
  void push() {
    wake_self();
    ++pending_;
  }

  Cycle clock() const noexcept { return clock_; }
  std::vector<Cycle> rx_log;

 private:
  u32 pending_ = 0;
  Cycle clock_ = 0;
};

/// Producer ticked every cycle that pushes into a consumer at given cycles.
class ScriptedProducer : public Clockable {
 public:
  ScriptedProducer(MailboxConsumer& c, std::vector<Cycle> at)
      : consumer_(c), at_(std::move(at)) {}
  void tick() override {
    for (Cycle a : at_) {
      if (a == now_) consumer_.push();
    }
    ++now_;
  }

 private:
  MailboxConsumer& consumer_;
  std::vector<Cycle> at_;
  Cycle now_ = 0;
};

TEST(Quiescence, PeriodicWorkerSkipsButMatchesLegacyExactly) {
  Scheduler legacy(200e6), batched(200e6);
  PeriodicWorker wl(137), wb(137);
  legacy.add(wl, "w");
  batched.add(wb, "w");
  legacy.run_cycles(10'000);
  batched.run_cycles_batched(10'000);
  EXPECT_EQ(wl.work_log, wb.work_log);
  EXPECT_EQ(wl.clock(), wb.clock());
  EXPECT_EQ(batched.now(), legacy.now());
  EXPECT_GT(wb.skipped, 0u);                 // It really slept...
  EXPECT_GT(batched.ticks_skipped(), 0u);    // ...through the wake-wheel...
  EXPECT_GT(batched.cycles_fast_forwarded(), 0u);  // ...across global gaps.
  EXPECT_LT(batched.ticks_executed(), 10'000u);
}

TEST(Quiescence, WakeLandsOnTheLegacyCycleEitherSideOfTheProducer) {
  // The consumer must observe a push in the same cycle as under the legacy
  // path, whether its tick slot comes before or after the producer's.
  for (const bool consumer_first : {true, false}) {
    Scheduler legacy(200e6), batched(200e6);
    MailboxConsumer cl, cb;
    ScriptedProducer pl(cl, {100, 101, 500}), pb(cb, {100, 101, 500});
    if (consumer_first) {
      legacy.add(cl, "c");
      legacy.add(pl, "p");
      batched.add(cb, "c");
      batched.add(pb, "p");
    } else {
      legacy.add(pl, "p");
      legacy.add(cl, "c");
      batched.add(pb, "p");
      batched.add(cb, "c");
    }
    legacy.run_cycles(1'000);
    batched.run_cycles_batched(1'000);
    EXPECT_EQ(cl.rx_log, cb.rx_log) << "consumer_first=" << consumer_first;
    EXPECT_EQ(cl.clock(), cb.clock()) << "consumer_first=" << consumer_first;
  }
}

TEST(Quiescence, SplitRunsMatchOneRun) {
  // run_cycles_batched(a); run_cycles_batched(b) must equal one (a+b) run —
  // the settle/re-partition at the boundary is what MultiScheduler strides
  // rely on.
  Scheduler one(200e6), split(200e6);
  PeriodicWorker w1(97), w2(97);
  one.add(w1, "w");
  split.add(w2, "w");
  one.run_cycles_batched(4'000);
  split.run_cycles_batched(1'000);
  split.run_cycles_batched(512);
  split.run_cycles_batched(2'488);
  EXPECT_EQ(w1.work_log, w2.work_log);
  EXPECT_EQ(w1.clock(), w2.clock());
}

TEST(Quiescence, IdleSkipDisabledTicksEverything) {
  Scheduler s(200e6);
  s.set_idle_skip(false);
  PeriodicWorker w(50);
  s.add(w, "w");
  s.run_cycles_batched(1'000);
  EXPECT_EQ(w.skipped, 0u);
  EXPECT_EQ(w.clock(), 1'000u);
  EXPECT_EQ(s.ticks_executed(), 1'000u);
}

TEST(Quiescence, NextWakeReportsTheEarliestRealTick) {
  Scheduler s(200e6);
  PeriodicWorker w(1'000);
  s.add(w, "w");
  s.run_cycles_batched(100);  // Well inside the first idle stretch.
  EXPECT_EQ(s.next_wake(), 1'000u);
  Scheduler busy(200e6);
  Counter c;  // Default contract: never quiescent.
  busy.add(c, "c");
  busy.run_cycles_batched(100);
  EXPECT_EQ(busy.next_wake(), busy.now());
}

TEST(Quiescence, NextWakeRecomputedWhenIdleSkipTogglesMidRun) {
  // The hint published at the end of a batched run was computed under the
  // skip policy active then; flipping the policy must invalidate it at once.
  // A MultiScheduler consulting a stale far-future hint right after
  // set_idle_skip(false) would skip a lane that now needs every cycle ticked.
  Scheduler s(200e6);
  PeriodicWorker w(1'000);
  s.add(w, "w");
  s.run_cycles_batched(100);  // Idle until cycle 1'000 under skipping.
  ASSERT_EQ(s.next_wake(), 1'000u);
  s.set_idle_skip(false);
  EXPECT_EQ(s.next_wake(), s.now());  // Collapsed, not stale.
  s.run_cycles_batched(100);
  EXPECT_EQ(s.next_wake(), s.now());  // Non-skipping runs pin it to now.
  s.set_idle_skip(true);
  EXPECT_EQ(s.next_wake(), s.now());  // Conservative until the next run...
  s.run_cycles_batched(100);
  EXPECT_EQ(s.next_wake(), 1'000u);  // ...which re-establishes the bound.
  EXPECT_EQ(w.clock(), 300u);  // And the worker stayed cycle-exact throughout.
}

TEST(Quiescence, MultiSchedulerSkipsQuiescentLanesBitIdentically) {
  // Lane 0 works every 100 cycles, lane 1 every 40'000 (it skips whole
  // strides); both must land exactly where dispatch-every-round lands.
  for (const unsigned workers : {1u, 4u}) {
    Scheduler s0(200e6), s1(200e6);
    PeriodicWorker w0(100), w1(40'000);
    s0.add(w0, "w0");
    s1.add(w1, "w1");
    MultiScheduler multi;
    multi.add(s0);
    multi.add(s1);
    const auto res = multi.run(100'000, 1'024, workers);
    EXPECT_EQ(res.cycles, 100'000u);
    EXPECT_EQ(s0.now(), 100'000u);
    EXPECT_EQ(s1.now(), 100'000u);  // Flushed to the lockstep clock.
    EXPECT_EQ(multi.lane_cycles(0), 100'000u);
    EXPECT_EQ(multi.lane_cycles(1), 100'000u);
    Scheduler ref(200e6);
    PeriodicWorker wr(40'000);
    ref.add(wr, "w");
    ref.run_cycles_batched(100'000);
    EXPECT_EQ(w1.work_log, wr.work_log) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace drmp::sim
