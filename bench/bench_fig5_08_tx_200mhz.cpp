// Fig. 5.8 — Packet transmission at 200 MHz: the prototype operating point.
// Reports the per-phase latencies of a WiFi transmission and checks every
// protocol timing constraint, with the slack the architecture enjoys.
#include "bench_common.hpp"

namespace {

void run_at(double arch_mhz) {
  using namespace drmp;
  using namespace drmp::bench;

  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.arch_freq_hz = arch_mhz * 1e6;
  Testbench tb(cfg);

  const Bytes msdu = make_payload(1500);
  const auto out = tb.send_and_wait(Mode::A, msdu, 4'000'000'000ull);

  std::cout << "architecture clock: " << arch_mhz << " MHz, CPU "
            << cfg.cpu_freq_hz / 1e6 << " MHz\n";
  std::cout << "  tx completed=" << out.completed << " success=" << out.success
            << " end-to-end latency=" << est::Table::num(out.latency_us, 1) << " us\n";

  // ACK turnaround on the receive side (hard constraint): inject and check.
  const u64 sent_before = tb.device().phy_tx(Mode::A)->frames_sent();
  const auto delivered = tb.inject_and_wait(Mode::A, make_payload(400), 9, 4'000'000'000ull);
  tb.run_until([&] { return tb.device().phy_tx(Mode::A)->frames_sent() > sent_before; },
               40'000'000);
  const Cycle rx_end = tb.device().rx_rfu().last_rx_end();
  const Cycle ack_start = tb.device().phy_tx(Mode::A)->last_tx_start();
  const double turnaround_us = tb.device().timebase().cycles_to_us(ack_start - rx_end);
  std::cout << "  rx delivered=" << delivered.has_value()
            << "  ACK turnaround=" << est::Table::num(turnaround_us, 2)
            << " us (SIFS budget 10 us) -> "
            << (turnaround_us >= 10.0 && turnaround_us < 10.5 ? "constraint MET"
                                                              : "CHECK")
            << "\n";
  // RHCP processing slack: cycles the co-processor actually worked vs the
  // packet air time.
  Cycle rfu_busy = 0;
  for (const rfu::Rfu* r : tb.device().rfus()) rfu_busy += r->busy_cycles();
  const double busy_us = tb.device().timebase().cycles_to_us(rfu_busy);
  std::cout << "  total RFU busy time=" << est::Table::num(busy_us, 1)
            << " us over " << est::Table::num(tb.scheduler().now_us(), 1)
            << " us simulated -> slack="
            << est::Table::num(100.0 * (1.0 - busy_us / tb.scheduler().now_us()), 2)
            << "%\n";
}

}  // namespace

int main() {
  std::cout << "=== Fig 5.8: Packet Transmission at 200 MHz ===\n\n";
  run_at(200.0);
  return 0;
}
