// Ablation (§3.6.2.2) — CS-RFU vs MA-RFU reconfiguration: measured latency
// of the two mechanisms and the packet-by-packet switching cost under
// alternating-protocol traffic.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;
  using est::Table;

  std::cout << "=== Ablation: context-switch vs memory-access reconfiguration "
               "(thesis §3.6.2.2) ===\n\n";

  // Alternate WiFi and WiMAX packets so the crypto MA-RFU and the CS-RFUs
  // reconfigure on every packet.
  Testbench tb;
  for (int i = 0; i < 3; ++i) {
    tb.send_async(Mode::A, make_payload(600, static_cast<u8>(i)));
    tb.send_async(Mode::B, make_payload(600, static_cast<u8>(i + 50)));
  }
  tb.wait_tx_count(Mode::A, 3, 4'000'000'000ull);
  tb.wait_tx_count(Mode::B, 3, 4'000'000'000ull);

  Table t({"RFU", "Mechanism", "Reconfig count", "Total cycles", "Avg cycles/switch"});
  for (const rfu::Rfu* r : tb.device().rfus()) {
    if (r->reconfig_count() == 0) continue;
    t.add_row({r->name(),
               r->mechanism() == rfu::ReconfigMech::ContextSwitch ? "context-switch"
                                                                  : "memory-access",
               std::to_string(r->reconfig_count()), std::to_string(r->reconfig_cycles()),
               est::Table::num(static_cast<double>(r->reconfig_cycles()) /
                                   static_cast<double>(r->reconfig_count()),
                               1)});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: CS-RFUs switch in ~2 cycles (10 ns @200 MHz); the "
         "crypto MA-RFU pays tens of cycles to stream its key schedule — "
         "both orders of magnitude below the milliseconds of FPGA "
         "bitstream reconfiguration the thesis contrasts against (§2.1), and "
         "negligible against packet air times. This is why packet-by-packet "
         "reconfiguration is affordable.\n";
  return 0;
}
