// Micro-benchmarks (google-benchmark) of the datapath kernels inside the
// RFUs: CRC engines, RC4/AES/DES, frame codecs. These pin the host-side
// compute cost of the simulation and document the kernels' relative weights
// (mirroring the per-word stall ratios used in the RFU timing model).
#include <benchmark/benchmark.h>

#include "crypto/aes128.hpp"
#include "crypto/crc.hpp"
#include "crypto/des.hpp"
#include "crypto/rc4.hpp"
#include "mac/wifi_frames.hpp"

namespace {

using namespace drmp;

Bytes payload(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 7 + 3);
  return b;
}

void BM_Crc32(benchmark::State& state) {
  const Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Crc32::compute(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1500);

void BM_Crc16(benchmark::State& state) {
  const Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Crc16Ccitt::compute(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc16)->Arg(24);

void BM_Rc4(benchmark::State& state) {
  const Bytes key = payload(16);
  Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::Rc4 rc4(key);
    rc4.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Rc4)->Arg(1500);

void BM_Aes128Ctr(benchmark::State& state) {
  const Bytes key = payload(16);
  const Bytes nonce(16, 0x55);
  Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  crypto::Aes128 aes(key);
  for (auto _ : state) {
    aes.ctr_process(nonce, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(1500);

void BM_DesCbc(benchmark::State& state) {
  const Bytes key = payload(8);
  const Bytes iv = payload(8);
  Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  crypto::Des des(key);
  for (auto _ : state) {
    des.cbc_encrypt(iv, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DesCbc)->Arg(1496);

void BM_WifiBuildMpdu(benchmark::State& state) {
  mac::wifi::DataHeader h;
  const Bytes body = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac::wifi::build_data_mpdu(h, body));
  }
}
BENCHMARK(BM_WifiBuildMpdu)->Arg(1500);

void BM_WifiParseMpdu(benchmark::State& state) {
  mac::wifi::DataHeader h;
  const Bytes mpdu = mac::wifi::build_data_mpdu(h, payload(1500));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac::wifi::parse_data_mpdu(mpdu));
  }
}
BENCHMARK(BM_WifiParseMpdu);

}  // namespace

BENCHMARK_MAIN();
