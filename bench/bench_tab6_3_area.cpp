// Table 6.3 — Area of MAC Implementations at the 130 nm node.
#include <iostream>

#include "baseline/conventional.hpp"
#include "est/report.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::est;
  std::cout << "=== Table 6.3: Area of MAC Implementations (130 nm) ===\n\n";

  const baseline::ConventionalTriMac conv;
  const Design drmp_d = drmp_design();
  const Process p;

  Table t({"Implementation", "Logic+SRAM area (mm^2)"});
  t.add_row({conv.wifi.name(), Table::num(conv.wifi.area_mm2(p), 2)});
  t.add_row({conv.uwb.name(), Table::num(conv.uwb.area_mm2(p), 2)});
  t.add_row({conv.wimax.name(), Table::num(conv.wimax.area_mm2(p), 2)});
  t.add_row({"SUM of 3 conventional MACs", Table::num(conv.area_mm2(p), 2)});
  t.add_row({drmp_d.name(), Table::num(drmp_d.area_mm2(p), 2)});
  t.print(std::cout);

  std::cout << "\nDRMP area saving vs three separate MACs: "
            << Table::num(100.0 * (1.0 - drmp_d.area_mm2(p) / conv.area_mm2(p)), 1)
            << "%\n";
  return 0;
}
