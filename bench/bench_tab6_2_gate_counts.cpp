// Table 6.2 — Gate Count for MAC Implementations: the three conventional
// single-protocol MACs vs the single DRMP that replaces all of them.
#include <iostream>

#include "baseline/conventional.hpp"
#include "est/report.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::est;
  std::cout << "=== Table 6.2: Gate Count for MAC Implementations ===\n\n";

  const baseline::ConventionalTriMac conv;
  const Design drmp_d = drmp_design();

  Table t({"Implementation", "Gates", "SRAM (bits)"});
  t.add_row({conv.wifi.name(), Table::gates(conv.wifi.total_gates()),
             std::to_string(conv.wifi.total_sram_bits())});
  t.add_row({conv.uwb.name(), Table::gates(conv.uwb.total_gates()),
             std::to_string(conv.uwb.total_sram_bits())});
  t.add_row({conv.wimax.name(), Table::gates(conv.wimax.total_gates()),
             std::to_string(conv.wimax.total_sram_bits())});
  t.add_row({"SUM of 3 conventional MACs", Table::gates(conv.total_gates()),
             std::to_string(conv.total_sram_bits())});
  t.add_row({drmp_d.name() + " (replaces all three)", Table::gates(drmp_d.total_gates()),
             std::to_string(drmp_d.total_sram_bits())});
  t.print(std::cout);

  const double saving = 100.0 * (1.0 - static_cast<double>(drmp_d.total_gates()) /
                                           static_cast<double>(conv.total_gates()));
  std::cout << "\nDRMP logic saving vs three separate MACs: "
            << Table::num(saving, 1)
            << "% (one CPU instead of three; shared CRC/crypto/frag/seq RFUs; "
               "the IRC + reconfiguration overhead is the price of "
               "flexibility, §3.6.2)\n";
  return 0;
}
