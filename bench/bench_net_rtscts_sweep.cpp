// RTS/CTS policy sweep over hidden-node topologies — the repo's first
// scenario-diversity bench where *policy*, not scale, is the variable.
//
// Three 4-station WiFi cell topologies (scenario::ScenarioSpec::Reach):
//   full    — every station hears every other (explicit all-ones audibility
//             matrix through the per-listener machinery),
//   hidden  — stations 0 and 1 mutually deaf (the classic hidden pair),
//   chain   — a line: station i hears only i-1, i, i+1,
// each swept over RTS thresholds {0 = handshake off, 768 = large MSDUs only
// (the topology's 700-1000 byte MSDUs straddle it), 1 = every MSDU}, with
// NAV virtual carrier sense on. The textbook result this reproduces:
// carrier sense alone collapses under hidden nodes
// (collision rate far above the fully-connected cell), and the RTS/CTS
// handshake — short reservation frames plus NAV — buys the throughput back
// for the price of a little control airtime.
//
//   $ ./bench_net_rtscts_sweep [stations] [msdus_per_station] [--json[=PATH]]
//
//   --json writes the machine-readable sweep record to BENCH_rtscts.json
//   (or PATH): per (topology, threshold) collisions, collision rate per
//   offered MSDU, airtime efficiency (1 - collided/busy air), retries,
//   NAV defers and the full digest. CI gates on the hidden-vs-full
//   collision-rate ordering.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "scenario/scenario_engine.hpp"

namespace {

using drmp::scenario::FleetStats;
using drmp::scenario::ScenarioEngine;
using drmp::scenario::ScenarioSpec;

constexpr drmp::u64 kSeed = 1;

struct SweepPoint {
  std::string topo;
  drmp::u32 rts_threshold = 0;
  drmp::u64 collisions = 0;
  double collision_rate = 0.0;  ///< Collided frames per offered MSDU.
  double airtime_eff = 0.0;     ///< 1 - collided air / busy air.
  drmp::u64 retries = 0;
  drmp::u64 tx_ok = 0;
  drmp::u64 offered = 0;
  drmp::u64 nav_defers = 0;
  drmp::u64 full_digest = 0;
  FleetStats stats;  ///< Full run stats (add_profile keys for the baseline).
};

SweepPoint run_point(const char* name, ScenarioSpec::Reach reach,
                     std::size_t stations, drmp::u32 msdus, drmp::u32 thr) {
  ScenarioSpec spec =
      ScenarioSpec::contended_wifi_topology(stations, reach, kSeed, msdus, thr);
  const FleetStats fs = ScenarioEngine(std::move(spec)).run();
  SweepPoint p;
  p.topo = name;
  p.rts_threshold = thr;
  if (!fs.all_drained) {
    std::printf("BUDGET EXHAUSTED: %s rts=%u\n", name, thr);
    std::exit(1);
  }
  p.collisions = fs.cells.at(0).collided_frames[0];
  p.nav_defers = fs.total_nav_defers();
  for (const auto& ds : fs.devices) {
    p.offered += ds.offered[0];
    p.tx_ok += ds.tx_ok[0];
    p.retries += ds.retries[0];
  }
  p.collision_rate =
      p.offered > 0 ? static_cast<double>(p.collisions) / static_cast<double>(p.offered)
                    : 0.0;
  const auto busy = fs.cells.at(0).busy_cycles[0];
  const auto wasted = fs.cells.at(0).collided_airtime[0];
  p.airtime_eff =
      busy > 0 ? 1.0 - static_cast<double>(wasted) / static_cast<double>(busy) : 1.0;
  p.full_digest = fs.full_digest();
  p.stats = fs;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      drmp::bench::take_json_flag(argc, argv, "BENCH_rtscts.json");
  const std::size_t stations = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const drmp::u32 msdus =
      argc > 2 ? static_cast<drmp::u32>(std::strtoul(argv[2], nullptr, 10)) : 4;

  std::printf(
      "RTS/CTS policy sweep: %zu stations, %u MSDUs each, seed %llu, NAV on\n\n",
      stations, msdus, static_cast<unsigned long long>(kSeed));

  struct Topo {
    const char* name;
    ScenarioSpec::Reach reach;
  };
  const std::vector<Topo> topos = {
      {"full", ScenarioSpec::Reach::kFull},
      {"hidden", ScenarioSpec::Reach::kHiddenPair},
      {"chain", ScenarioSpec::Reach::kChain},
  };
  const std::vector<drmp::u32> thresholds = {0, 768, 1};

  std::vector<SweepPoint> points;
  std::printf("topology  rts_thr   coll  coll/msdu  air_eff%%  retries"
              "  ok/offered  nav_defers\n");
  for (const Topo& t : topos) {
    for (drmp::u32 thr : thresholds) {
      const SweepPoint p = run_point(t.name, t.reach, stations, msdus, thr);
      std::printf("%-8s %8u %6llu %10.3f %9.2f %8llu %6llu/%-6llu %8llu\n",
                  p.topo.c_str(), p.rts_threshold,
                  static_cast<unsigned long long>(p.collisions), p.collision_rate,
                  100.0 * p.airtime_eff, static_cast<unsigned long long>(p.retries),
                  static_cast<unsigned long long>(p.tx_ok),
                  static_cast<unsigned long long>(p.offered),
                  static_cast<unsigned long long>(p.nav_defers));
      points.push_back(p);
    }
    std::printf("\n");
  }

  // The textbook orderings this bench exists to demonstrate; failing them
  // means the hidden-node machinery regressed, not that a runner was noisy
  // (everything here is deterministic).
  auto find = [&](const char* topo, drmp::u32 thr) -> const SweepPoint& {
    for (const SweepPoint& p : points) {
      if (p.topo == topo && p.rts_threshold == thr) return p;
    }
    std::printf("missing sweep point %s/%u\n", topo, thr);
    std::exit(1);
  };
  const SweepPoint& hidden_off = find("hidden", 0);
  const SweepPoint& hidden_on = find("hidden", 1);
  const SweepPoint& full_off = find("full", 0);
  if (hidden_off.collision_rate <= full_off.collision_rate) {
    std::printf("ORDERING FAILURE: hidden-node collision rate (%.3f) must exceed "
                "the fully-connected cell's (%.3f)\n",
                hidden_off.collision_rate, full_off.collision_rate);
    return 1;
  }
  if (hidden_on.collisions * 5 > hidden_off.collisions) {
    std::printf("ORDERING FAILURE: RTS/CTS must cut hidden-pair collisions >=5x "
                "(off=%llu on=%llu)\n",
                static_cast<unsigned long long>(hidden_off.collisions),
                static_cast<unsigned long long>(hidden_on.collisions));
    return 1;
  }
  std::printf("orderings: hidden(%0.3f) > full(%0.3f) coll/msdu; RTS cuts hidden "
              "collisions %llux\n",
              hidden_off.collision_rate, full_off.collision_rate,
              static_cast<unsigned long long>(
                  hidden_off.collisions / std::max<drmp::u64>(1, hidden_on.collisions)));

  if (!json_path.empty()) {
    drmp::bench::JsonRecord rec;
    rec.str("bench", "net_rtscts_sweep");
    rec.num("stations", static_cast<drmp::u64>(stations));
    rec.num("msdus_per_station", msdus);
    rec.num("seed", kSeed);
    for (const SweepPoint& p : points) {
      const std::string k = p.topo + "_rts" + std::to_string(p.rts_threshold);
      rec.num(k + "_collisions", p.collisions);
      rec.num(k + "_collision_rate", p.collision_rate);
      rec.num(k + "_airtime_eff", p.airtime_eff);
      rec.num(k + "_retries", p.retries);
      rec.num(k + "_tx_ok", p.tx_ok);
      rec.num(k + "_nav_defers", p.nav_defers);
      rec.hex(k + "_full_digest", p.full_digest);
    }
    drmp::bench::add_profile(rec, find("full", 0).stats);
    if (!rec.write(json_path)) {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\njson record: %s\n", json_path.c_str());
  }
  return 0;
}
