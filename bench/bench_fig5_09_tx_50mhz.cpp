// Fig. 5.9 — Packet transmission at 50 MHz: the paper's low-clock run,
// showing the architecture still meets the protocol constraints with the
// clock (and hence power) reduced fourfold — the §5.5.2 frequency argument.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  std::cout << "=== Fig 5.9: Packet Transmission at 50 MHz ===\n\n";
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.arch_freq_hz = 50e6;
  cfg.cpu_freq_hz = 20e6;
  Testbench tb(cfg);

  const auto out = tb.send_and_wait(Mode::A, make_payload(1500), 4'000'000'000ull);
  std::cout << "architecture clock: 50 MHz, CPU 20 MHz\n";
  std::cout << "  tx completed=" << out.completed << " success=" << out.success
            << " end-to-end latency=" << est::Table::num(out.latency_us, 1) << " us\n";

  const u64 sent_before = tb.device().phy_tx(Mode::A)->frames_sent();
  const auto delivered = tb.inject_and_wait(Mode::A, make_payload(400), 9, 4'000'000'000ull);
  tb.run_until([&] { return tb.device().phy_tx(Mode::A)->frames_sent() > sent_before; },
               40'000'000);
  const Cycle rx_end = tb.device().rx_rfu().last_rx_end();
  const Cycle ack_start = tb.device().phy_tx(Mode::A)->last_tx_start();
  const double turnaround_us = tb.device().timebase().cycles_to_us(ack_start - rx_end);
  std::cout << "  rx delivered=" << delivered.has_value()
            << "  ACK turnaround=" << est::Table::num(turnaround_us, 2)
            << " us (SIFS budget 10 us) -> "
            << (turnaround_us >= 10.0 && turnaround_us < 12.0 ? "constraint MET" : "CHECK")
            << "\n";
  std::cout << "\nReading: at a quarter of the prototype clock the DRMP still "
               "meets WiFi's timing — the slack at 200 MHz (Fig. 5.8) is real "
               "frequency headroom (thesis §5.5.2). See bench_freq_sweep for "
               "the full curve and the breaking point.\n";
  return 0;
}
