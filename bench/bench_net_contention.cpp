// Contention bench: shared-medium WiFi cells at increasing station counts.
//
//   1. Correctness gates: a contended cell's digests are byte-identical
//      across repeat runs and across worker_threads in {1, 0} (the serial
//      reference and the all-cores pool).
//   2. Contention profile per station count: collisions, CSMA deferrals,
//      retries, channel occupancy (airtime share of the busy band), and the
//      per-fleet energy estimate — the saturation behaviour the DRMP's
//      power argument rides on.
//   3. Throughput: simulated device-cycles per host second of the batched
//      lockstep path over the contended cells.
//
//   $ ./bench_net_contention [max_stations] [msdus_per_station] [reps] [--json[=PATH]]
//
//   --json writes the machine-readable record of the largest cell (cycles,
//   wall seconds, cycles/sec, skip ratio, contention counters) to
//   BENCH_contention.json (or PATH).
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "scenario/scenario_engine.hpp"

namespace {

using drmp::scenario::FleetStats;
using drmp::scenario::ScenarioEngine;
using drmp::scenario::ScenarioSpec;

// The canonical acceptance seed (tests/scenario_test.cpp pins the same
// 4-station cell): backoff draws are slot-quantized, so whether two stations
// ever pick the same slot — a real collision — is seed-dependent.
constexpr drmp::u64 kSeed = 1;

FleetStats run_cell(std::size_t stations, drmp::u32 msdus, unsigned workers) {
  ScenarioSpec spec = ScenarioSpec::contended_wifi_cell(stations, kSeed, msdus);
  spec.worker_threads = workers;
  return ScenarioEngine(std::move(spec)).run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      drmp::bench::take_json_flag(argc, argv, "BENCH_contention.json");
  const std::size_t max_stations =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const drmp::u32 msdus =
      argc > 2 ? static_cast<drmp::u32>(std::strtoul(argv[2], nullptr, 10)) : 6;
  const int reps = std::max(1, argc > 3 ? std::atoi(argv[3]) : 2);

  std::printf("contention bench: up to %zu stations, %u MSDUs each, seed %llu\n\n",
              max_stations, msdus, static_cast<unsigned long long>(kSeed));

  // ---- Correctness gates on the 4-station cell ----
  {
    const FleetStats a = run_cell(4, msdus, 1);
    const FleetStats b = run_cell(4, msdus, 1);
    const FleetStats par = run_cell(4, msdus, 0);
    if (a.full_digest() != b.full_digest() || a.report() != b.report()) {
      std::printf("DETERMINISM FAILURE: repeat contended runs diverged\n");
      return 1;
    }
    if (a.full_digest() != par.full_digest()) {
      std::printf("PARALLEL MISMATCH: worker-pool contended run diverged\n");
      return 1;
    }
    if (!a.all_drained) {
      std::printf("BUDGET EXHAUSTED before the contended cell drained\n");
      return 1;
    }
    if (a.total_collisions() == 0 || a.total_defers() == 0) {
      std::printf("CONTENTION MISSING: expected collisions and defers > 0\n");
      return 1;
    }
    std::printf("gates: repeat + all-cores worker digests identical (%016llx), "
                "%llu collisions, %llu defers\n\n",
                static_cast<unsigned long long>(a.full_digest()),
                static_cast<unsigned long long>(a.total_collisions()),
                static_cast<unsigned long long>(a.total_defers()));
  }

  // ---- Saturation profile ----
  // One timing arm per station count, interleaved across the passes
  // (2,4,...,N,2,4,...) through bench_common's helper: sequential best-of-N
  // per point would hand the small cells the host's cold turbo headroom and
  // tilt the saturation curve.
  std::vector<std::size_t> points;
  for (std::size_t n = 2; n <= max_stations; n *= 2) points.push_back(n);
  std::vector<FleetStats> cell_stats(points.size());
  std::size_t exhausted_at = 0;
  std::vector<std::function<double()>> arms;
  arms.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    arms.push_back([&, i] {
      FleetStats fs = run_cell(points[i], msdus, 1);
      if (!fs.all_drained && exhausted_at == 0) exhausted_at = points[i];
      const double rate = fs.device_cycles_per_sec();
      cell_stats[i] = std::move(fs);
      return rate;
    });
  }
  const auto samples = drmp::bench::interleaved_samples(arms, reps);
  if (exhausted_at != 0) {
    std::printf("BUDGET EXHAUSTED at %zu stations\n", exhausted_at);
    return 1;
  }
  std::printf("stations   coll  defers retries  airtime%%  gated_mW  Mcyc/s\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FleetStats& fs = cell_stats[i];
    drmp::u64 retries = 0;
    for (const auto& ds : fs.devices) retries += ds.retries[0];
    double airshare = 0.0;
    if (!fs.cells.empty() && fs.lockstep_cycles > 0) {
      airshare = 100.0 * static_cast<double>(fs.cells[0].busy_cycles[0]) /
                 static_cast<double>(fs.lockstep_cycles);
    }
    std::printf("%8zu %6llu %7llu %7llu %9.2f %9.2f %7.2f\n", points[i],
                static_cast<unsigned long long>(fs.total_collisions()),
                static_cast<unsigned long long>(fs.total_defers()),
                static_cast<unsigned long long>(retries), airshare,
                fs.fleet_gated_mw(), drmp::bench::best_rate(samples[i]) / 1e6);
  }
  FleetStats largest = std::move(cell_stats.back());

  if (!json_path.empty()) {
    drmp::bench::JsonRecord rec;
    rec.str("bench", "net_contention");
    rec.num("stations", static_cast<drmp::u64>(largest.devices.size()));
    rec.num("msdus_per_station", msdus);
    rec.num("seed", kSeed);
    rec.num("lockstep_cycles", largest.lockstep_cycles);
    rec.num("device_cycles_total", largest.device_cycles_total());
    rec.num("wall_seconds", largest.wall_seconds);
    rec.num("device_cycles_per_sec", largest.device_cycles_per_sec());
    rec.num("collisions", largest.total_collisions());
    rec.num("defers", largest.total_defers());
    rec.num("ticks_executed", largest.ticks_executed);
    rec.num("ticks_skipped", largest.ticks_skipped);
    rec.num("skip_ratio", largest.skip_ratio());
    drmp::bench::add_profile(rec, largest);
    rec.hex("full_digest", largest.full_digest());
    if (!rec.write(json_path)) {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\njson record: %s\n", json_path.c_str());
  }
  return 0;
}
