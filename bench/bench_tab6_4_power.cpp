// Table 6.4 — Power of MAC Implementations: activity-based power using the
// *measured* busy fractions from the cycle simulation as the per-block
// activity factors (the paper's methodology: simulation slack -> power).
#include "bench_common.hpp"

#include "baseline/conventional.hpp"
#include "est/power.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::est;
  using namespace drmp::bench;

  std::cout << "=== Table 6.4: Power of MAC Implementations ===\n\n";

  // Measure activity under sustained 3-mode traffic.
  Testbench tb;
  run_three_mode_tx(tb, 3, 1000);
  const double total = static_cast<double>(tb.scheduler().now());
  std::map<std::string, double> activity;
  const auto& rfu_blocks = drmp_rfu_blocks();
  for (const rfu::Rfu* r : tb.device().rfus()) {
    auto it = rfu_blocks.find(r->name());
    if (it != rfu_blocks.end()) {
      activity[it->second.name] = static_cast<double>(r->busy_cycles()) / total;
    }
  }
  activity["cpu_core"] = tb.device().cpu().busy_fraction();
  activity["packet_bus+arbiter"] =
      static_cast<double>(tb.device().bus().busy_cycles()) / total;

  const Process p;
  const baseline::ConventionalTriMac conv;
  const Design drmp_d = drmp_design();

  // Conventional MACs: clock gating but always-on (each IP must stay live
  // for its protocol); ~8% default activity for accelerators.
  PowerTechniques conv_tech;
  conv_tech.clock_gating = true;
  const auto p_wifi = estimate_power(conv.wifi, p, 120e6, {}, 0.08, conv_tech);
  const auto p_uwb = estimate_power(conv.uwb, p, 120e6, {}, 0.08, conv_tech);
  const auto p_wimax = estimate_power(conv.wimax, p, 160e6, {}, 0.08, conv_tech);

  // DRMP at 200 MHz with measured activity + gating + PSO.
  PowerTechniques drmp_tech;
  drmp_tech.clock_gating = true;
  drmp_tech.power_shutoff = true;
  const auto p_drmp = estimate_power(drmp_d, p, 200e6, activity, 0.02, drmp_tech);

  Table t({"Implementation", "f (MHz)", "Dynamic (mW)", "Leakage (mW)", "Total (mW)"});
  auto row = [&](const std::string& n, double f, const PowerBreakdown& b) {
    t.add_row({n, Table::num(f / 1e6, 0), Table::num(b.dynamic_mw, 2),
               Table::num(b.leakage_mw, 2), Table::num(b.total_mw(), 2)});
  };
  row(conv.wifi.name(), 120e6, p_wifi);
  row(conv.uwb.name(), 120e6, p_uwb);
  row(conv.wimax.name(), 160e6, p_wimax);
  t.add_row({"SUM of 3 conventional MACs", "-", "-", "-",
             Table::num(p_wifi.total_mw() + p_uwb.total_mw() + p_wimax.total_mw(), 2)});
  row("DRMP (measured activity, gating+PSO)", 200e6, p_drmp);
  t.print(std::cout);

  std::cout << "\nDRMP power saving vs three always-on conventional MACs: "
            << Table::num(100.0 * (1.0 - p_drmp.total_mw() /
                                             (p_wifi.total_mw() + p_uwb.total_mw() +
                                              p_wimax.total_mw())),
                          1)
            << "% — driven by the measured idle slack (Fig. 6.1).\n";
  return 0;
}
