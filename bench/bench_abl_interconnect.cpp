// Ablation (§3.6.3, §5.5, §7.1.1) — interconnect alternatives.
//
// Part 1 records the packet-bus demand of the standard three-mode transmit
// workload and replays it through the topologies the thesis names as future
// work: a wider bus, a multi-bus network and a segmented bus. Part 2 runs the
// §3.1-footnote scaling experiment ("nothing in the architecture's basic
// design that limits it to three protocol modes ... the potential bottleneck
// is the interconnect"): synthetic N-flow workloads derived from the measured
// per-mode demand, swept until the single bus saturates.
#include "bench_common.hpp"
#include "hw/bus_trace.hpp"
#include "hw/interconnect_models.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;
  using est::Table;

  std::cout << "=== Ablation: packet-bus interconnect alternatives "
               "(thesis 3.6.3 / 7.1.1) ===\n\n";

  // ---- Capture the live three-mode demand. ----
  Testbench tb;
  hw::BusTraceRecorder rec;
  tb.device().bus().attach_recorder(&rec);
  run_three_mode_tx(tb, 4, 1200);
  rec.finish(tb.device().bus().total_cycles());
  const auto flows = hw::to_flow_trace(rec.transactions());
  const auto& tbase = tb.device().timebase();

  std::cout << "Captured " << rec.size() << " bus tenures over "
            << Table::num(tbase.cycles_to_us(tb.device().bus().total_cycles()), 1)
            << " us of three-mode traffic (measured single-bus utilization "
            << Table::num(100.0 * static_cast<double>(tb.device().bus().busy_cycles()) /
                              static_cast<double>(tb.device().bus().total_cycles()),
                          2)
            << "%).\n\n";

  // ---- Part 1: replay through each topology. ----
  std::vector<hw::InterconnectSpec> specs;
  specs.push_back({});  // Single 32-bit bus (the prototype).
  {
    hw::InterconnectSpec s;
    s.kind = hw::InterconnectSpec::Kind::WideBus;
    s.width_words = 2;
    specs.push_back(s);
    s.width_words = 4;
    specs.push_back(s);
  }
  {
    hw::InterconnectSpec s;
    s.kind = hw::InterconnectSpec::Kind::MultiBus;
    s.num_buses = 2;
    specs.push_back(s);
    s.num_buses = 3;
    specs.push_back(s);
  }
  {
    hw::InterconnectSpec s;
    s.kind = hw::InterconnectSpec::Kind::SegmentedBus;
    specs.push_back(s);
  }

  Table t({"Interconnect", "total wait (us)", "worst-mode wait (us)",
           "peak resource util (%)", "relative wire cost"});
  for (const auto& spec : specs) {
    const auto res = hw::replay_interconnect(flows, spec);
    t.add_row({spec.label(), Table::num(tbase.cycles_to_us(res.total_wait()), 2),
               Table::num(tbase.cycles_to_us(res.worst_flow_wait()), 2),
               Table::num(100.0 * res.peak_utilization, 2),
               Table::num(spec.wire_cost(), 2)});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: at the prototype's operating point the single bus is so "
         "lightly loaded that every alternative buys little — exactly why "
         "3.6.3 keeps the single bus ('feasible and adequate'). The options "
         "matter only as the mode count or line rates grow (below).\n\n";

  // ---- Part 2: scaling the number of concurrent modes (3.1 footnote). ----
  std::cout << "--- Scaling study: N concurrent modes on one bus (3.1 "
               "footnote) ---\n";
  // Compress mode A's demand pattern so each synthetic flow models a busier,
  // faster protocol (the 'faster protocols' of 3.6.3); phase-shift flows so
  // they interleave rather than collide artificially.
  std::vector<hw::FlowTx> pattern;
  for (const auto& f : flows) {
    if (f.flow != 0) continue;
    hw::FlowTx c = f;
    c.request /= 64;  // 64x line-rate compression.
    pattern.push_back(c);
  }
  Table t2({"concurrent modes N", "bus util (%)", "total wait (us)",
            "worst-flow wait (us)", "makespan stretch"});
  double base_makespan = 0.0;
  for (u32 n = 1; n <= 8; ++n) {
    const auto synth = hw::synthesize_n_flows(pattern, n, 293);
    const auto res = hw::replay_interconnect(synth, {});
    if (n == 1) base_makespan = static_cast<double>(res.makespan);
    t2.add_row({std::to_string(n), Table::num(100.0 * res.peak_utilization, 1),
                Table::num(tbase.cycles_to_us(res.total_wait()), 2),
                Table::num(tbase.cycles_to_us(res.worst_flow_wait()), 2),
                Table::num(static_cast<double>(res.makespan) / base_makespan, 2)});
  }
  t2.print(std::cout);

  // Where the alternatives rescue the saturated bus.
  std::cout << "\n--- Same 8-mode workload on the alternative topologies ---\n";
  const auto synth8 = hw::synthesize_n_flows(pattern, 8, 293);
  Table t3({"Interconnect", "total wait (us)", "worst-flow wait (us)",
            "peak resource util (%)"});
  for (const auto& spec : specs) {
    const auto res = hw::replay_interconnect(synth8, spec);
    t3.add_row({spec.label(), Table::num(tbase.cycles_to_us(res.total_wait()), 2),
                Table::num(tbase.cycles_to_us(res.worst_flow_wait()), 2),
                Table::num(100.0 * res.peak_utilization, 2)});
  }
  t3.print(std::cout);
  std::cout << "\nReading: contention grows superlinearly once the single bus "
               "passes ~50% utilization; widening the bus shortens transfers "
               "but not RFU-held stalls, while the multi-bus removes "
               "cross-mode contention at the highest wire cost — the trade "
               "3.6.3 sketches, quantified on measured demand. The segmented "
               "bus buys nothing at tenure granularity because nearly every "
               "tenure mixes RFU triggers with memory words — realizing its "
               "benefit needs the per-phase 'additional control operations' "
               "the thesis warns about.\n";
  return 0;
}
