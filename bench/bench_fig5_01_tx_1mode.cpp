// Fig. 5.1 — Packet Transmission, 1 protocol mode.
// One WiFi MSDU (1500 B, fragmented at 1024 B) transmitted while modes B/C
// are idle; prints the entity-activity waveform the Simulink scope showed,
// plus the per-phase event timeline.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  Probe::attach(tb);

  std::cout << "=== Fig 5.1: Packet Transmission - 1 Mode (WiFi, 1500 B MSDU, "
               "frag thr 1024 B, 200 MHz) ===\n\n";
  const Cycle t0 = tb.scheduler().now();
  const auto out = tb.send_and_wait(Mode::A, make_payload(1500));
  const Cycle t1 = tb.scheduler().now();
  tb.run_cycles(2000);

  std::cout << "outcome: completed=" << out.completed << " success=" << out.success
            << "  MSDU->ACKed latency = " << est::Table::num(out.latency_us, 1)
            << " us (2 fragments, DCF access + air time dominated)\n\n";
  print_waveform(tb, t0, t1 + 2000);
  std::cout << "\n";
  print_busy_table(tb, t0, t1, "Entity busy time during the transmission");

  std::cout << "\npeer: data frames received = "
            << tb.peer(Mode::A).received_data_frames().size()
            << ", ACKs sent = " << tb.peer(Mode::A).acks_sent() << "\n";
  return 0;
}
