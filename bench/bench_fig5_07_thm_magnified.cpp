// Fig. 5.7 — TH_M timing diagram magnified: a zoom into the first service
// request showing the statechart walk (WAIT4_OCT -> WAIT4_RFUT -> ... ->
// USE_PBUS -> WAIT4_RFUDONE -> USE_RFUT2) cycle by cycle.
#include "bench_common.hpp"

#include "irc/task_handler.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  Probe::attach(tb);

  std::cout << "=== Fig 5.7: TH_M timing diagram (magnified, mode A, first "
               "request) ===\n\n";
  // Kick off one WiFi transmission and capture the first ~1200 cycles of
  // TH_M.A activity.
  tb.send_async(Mode::A, make_payload(600));
  // Run until TH_M.A leaves IDLE.
  tb.run_until(
      [&] {
        return tb.device().irc().handler(Mode::A).thm_state() != irc::ThMState::Idle;
      },
      8'000'000);
  const Cycle t0 = tb.scheduler().now() > 4 ? tb.scheduler().now() - 4 : 0;
  tb.run_cycles(1200);
  const Cycle t1 = tb.scheduler().now();
  tb.wait_tx_count(Mode::A, 1, 400'000'000);

  std::cout << "state legend: ";
  for (int s = 0; s <= static_cast<int>(irc::ThMState::UseRfut2); ++s) {
    std::cout << s << "=" << to_string(static_cast<irc::ThMState>(s)) << " ";
  }
  std::cout << "\n\n";
  std::cout << tb.device().trace().ascii_waveform(
      {"thm.A", "thr.A", "bus", "rfu.seq", "rfu.crypto"}, t0, t1, 110);

  // State-by-state transition log for the window.
  std::cout << "\ntransition log (cycle: state):\n";
  const auto& ch = tb.device().trace().channel("thm.A");
  int printed = 0;
  for (const auto& e : ch.events()) {
    if (e.cycle < t0 || e.cycle >= t1) continue;
    std::cout << "  " << e.cycle << ": "
              << to_string(static_cast<irc::ThMState>(e.value)) << "\n";
    if (++printed > 40) {
      std::cout << "  ...\n";
      break;
    }
  }
  return 0;
}
