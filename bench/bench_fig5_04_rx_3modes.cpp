// Fig. 5.4 — Packet Reception, 3 concurrent protocol modes.
// Frames arrive simultaneously on all three media; the Event Handler and the
// IRC serialize the drains over the shared bus; every MSDU is delivered and
// the WiFi/UWB frames are ACKed on time.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  Probe::attach(tb);

  std::cout << "=== Fig 5.4: Packet Reception - 3 Concurrent Modes ===\n\n";
  const Bytes ma = make_payload(800, 1), mb = make_payload(800, 2), mc = make_payload(800, 3);
  const auto fa = tb.make_peer_frames(Mode::A, ma, 1);
  const auto fb = tb.make_peer_frames(Mode::B, mb, 1);
  const auto fc = tb.make_peer_frames(Mode::C, mc, 1);
  const Cycle t0 = tb.scheduler().now() + 10;
  tb.peer(Mode::A).inject_frame(fa[0], t0);
  tb.peer(Mode::B).inject_frame(fb[0], t0);
  tb.peer(Mode::C).inject_frame(fc[0], t0);

  const bool all = tb.run_until(
      [&] {
        return !tb.delivered(Mode::A).empty() && !tb.delivered(Mode::B).empty() &&
               !tb.delivered(Mode::C).empty();
      },
      400'000'000);
  const Cycle t1 = tb.scheduler().now();
  tb.run_cycles(4000);

  std::cout << "all three MSDUs delivered: " << (all ? "yes" : "NO") << "\n";
  std::cout << "  WiFi  intact=" << (tb.delivered(Mode::A)[0] == ma) << "\n";
  std::cout << "  WiMAX intact=" << (tb.delivered(Mode::B)[0] == mb) << "\n";
  std::cout << "  UWB   intact=" << (tb.delivered(Mode::C)[0] == mc) << "\n";
  std::cout << "autonomous ACKs generated (no CPU involvement): "
            << tb.device().ack_rfu().acks_generated() << " (WiFi + UWB)\n\n";
  print_waveform(tb, t0, t1 + 4000);
  std::cout << "\n";
  print_busy_table(tb, t0, t1, "Entity busy time, 3-mode reception");
  return 0;
}
