// Fleet scenario bench: an 8-device (override with argv[1]) three-standard
// mixed-traffic fleet over lossy channels.
//
//   1. Determinism: two batched runs with the same seed must produce
//      byte-identical aggregate stats, and the batched path must complete
//      exactly the work the legacy per-device loop completes.
//   2. Throughput: batched lockstep vs looping the legacy scheduler per
//      device (run_until, predicate every cycle), measured over alternating
//      repetitions with the median taken per path to suppress host noise.
//      A parallel-workers batched run is reported when the host has more
//      than one core (it is digest-identical to the serial run).
//
//   3. Quiescence: the batched path skips provably-idle component ticks
//      (sim/scheduler.hpp); the digests above pin that skipping is
//      bit-identical, and the skip ratio is reported as the workload's idle
//      dominance.
//
//   4. Scaling (--devices): a device-count sweep of the batched path,
//      reporting aggregate device-cycles/sec per point (reciprocal: host ns
//      per device-cycle) — the curve that proves the scheduler's per-device
//      cost stays flat as fleets grow. CI gates the 1k-device point at
//      >= 0.5x the 64-device rate.
//
//   $ ./bench_scenario_fleet [num_devices] [msdus_per_mode] [repetitions]
//         [--json[=PATH]] [--devices[=N1,N2,...]]
//
//   --json writes the machine-readable record (cycles, wall seconds,
//   cycles/sec, skip ratio, digests) to BENCH_fleet.json (or PATH).
//   --devices appends the scaling sweep (default points 64,256,1024,4096) to the
//   table and the JSON record as sweep_cpsd_<N> keys.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "scenario/scenario_engine.hpp"

namespace {

using drmp::scenario::FleetStats;
using drmp::scenario::ScenarioEngine;
using drmp::scenario::ScenarioSpec;

/// Consumes a `--devices` / `--devices=N1,N2,...` argument (anywhere in
/// argv). Returns the sweep points — the 64/256/1k/4k defaults for the bare
/// flag, empty when absent (no sweep).
std::vector<std::size_t> take_devices_flag(int& argc, char** argv) {
  bool present = false;
  std::string list;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--devices") == 0) {
      present = true;
      list.clear();
    } else if (std::strncmp(argv[r], "--devices=", 10) == 0) {
      present = true;
      list = argv[r] + 10;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  if (!present) return {};
  if (list.empty()) return {64, 256, 1024, 4096};
  std::vector<std::size_t> out;
  for (std::size_t pos = 0; pos < list.size();) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    out.push_back(std::strtoul(list.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

/// Consumes a `--checkpoint-roundtrip` argument (anywhere in argv).
bool take_checkpoint_flag(int& argc, char** argv) {
  bool present = false;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--checkpoint-roundtrip") == 0) {
      present = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return present;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      drmp::bench::take_json_flag(argc, argv, "BENCH_fleet.json");
  const std::vector<std::size_t> sweep_points = take_devices_flag(argc, argv);
  const bool checkpoint_roundtrip = take_checkpoint_flag(argc, argv);
  const std::size_t n_devices = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const drmp::u32 msdus =
      argc > 2 ? static_cast<drmp::u32>(std::strtoul(argv[2], nullptr, 10)) : 3;
  const int reps = std::max(1, argc > 3 ? std::atoi(argv[3]) : 3);
  constexpr drmp::u64 kSeed = 2008;

  const auto make_spec = [&](unsigned workers) {
    ScenarioSpec spec = ScenarioSpec::mixed_three_standard(n_devices, kSeed, msdus);
    spec.max_cycles = 60'000'000;
    spec.worker_threads = workers;
    if (workers != 1) spec.lockstep_stride = 32'768;
    return spec;
  };

  std::printf("fleet: %zu devices, %u MSDUs per active mode, seed %llu, %d reps\n\n",
              n_devices, msdus, static_cast<unsigned long long>(kSeed), reps);

  // ---- Correctness gates ----
  const FleetStats batched = ScenarioEngine(make_spec(1)).run();
  const FleetStats repeat = ScenarioEngine(make_spec(1)).run();
  const FleetStats legacy =
      ScenarioEngine(make_spec(1)).run(ScenarioEngine::Path::kLegacy);

  std::printf("%s\n", batched.report().c_str());

  if (batched.full_digest() != repeat.full_digest() ||
      batched.report() != repeat.report()) {
    std::printf("DETERMINISM FAILURE: two batched runs with the same seed diverged\n");
    return 1;
  }
  std::printf("determinism: two batched runs byte-identical (digest %016llx)\n",
              static_cast<unsigned long long>(batched.full_digest()));

  if (batched.completion_digest() != legacy.completion_digest()) {
    std::printf("PATH MISMATCH: batched and legacy completed different work\n");
    return 1;
  }
  if (!batched.all_drained || !legacy.all_drained) {
    std::printf("BUDGET EXHAUSTED before the fleet drained\n");
    return 1;
  }
  std::printf("equivalence: batched and legacy completion digests match\n");

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  if (cores > 1) {
    const FleetStats parallel = ScenarioEngine(make_spec(0)).run();
    if (parallel.completion_digest() != batched.completion_digest()) {
      std::printf("PARALLEL MISMATCH: worker-thread run diverged from serial\n");
      return 1;
    }
    std::printf("parallel:    %u-worker batched run matches serial digests\n", cores);
  }

  // ---- Checkpoint roundtrip gate (--checkpoint-roundtrip) ----
  // Half-run save, fresh-engine resume, digest assert: the interrupted-and-
  // resumed fleet must reproduce the uninterrupted full_digest bit-for-bit.
  double ckpt_resume_seconds = 0.0;
  drmp::u64 ckpt_snapshot_bytes = 0;
  drmp::Cycle ckpt_half_cycles = 0;
  if (checkpoint_roundtrip) {
    const std::string snap_path = "BENCH_fleet.snap";
    ScenarioSpec half = make_spec(1);
    const drmp::Cycle stride = half.lockstep_stride;
    drmp::Cycle half_cycles = batched.lockstep_cycles / 2 / stride * stride;
    if (half_cycles == 0) half_cycles = stride;
    ckpt_half_cycles = half_cycles;
    half.max_cycles = half_cycles;  // "crash" at the half-way round edge.
    ScenarioEngine saver(std::move(half));
    saver.checkpoint_every(half_cycles, snap_path);
    (void)saver.run();
    if (std::FILE* f = std::fopen(snap_path.c_str(), "rb")) {
      std::fseek(f, 0, SEEK_END);
      ckpt_snapshot_bytes = static_cast<drmp::u64>(std::ftell(f));
      std::fclose(f);
    }
    ScenarioEngine resumer(make_spec(1));
    const auto r0 = std::chrono::steady_clock::now();
    resumer.resume(snap_path);
    ckpt_resume_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
            .count();
    const FleetStats resumed = resumer.run();
    if (resumed.full_digest() != batched.full_digest() ||
        resumed.report() != batched.report()) {
      std::printf(
          "CHECKPOINT MISMATCH: the interrupted-and-resumed run diverged from "
          "the uninterrupted digest\n");
      return 1;
    }
    std::remove(snap_path.c_str());
    std::printf(
        "checkpoint:  half-run snapshot at cycle %llu (%llu bytes) resumed in "
        "%.3f ms; digests byte-identical\n",
        static_cast<unsigned long long>(half_cycles),
        static_cast<unsigned long long>(ckpt_snapshot_bytes),
        1e3 * ckpt_resume_seconds);
  }

  // ---- Throughput: interleaved passes (A,B,A,B), median per path ----
  std::vector<std::function<double()>> arms = {
      [&] { return ScenarioEngine(make_spec(1)).run().device_cycles_per_sec(); },
      [&] {
        return ScenarioEngine(make_spec(1))
            .run(ScenarioEngine::Path::kLegacy)
            .device_cycles_per_sec();
      },
  };
  if (cores > 1) {
    arms.push_back(
        [&] { return ScenarioEngine(make_spec(0)).run().device_cycles_per_sec(); });
  }
  const auto samples = drmp::bench::interleaved_samples(arms, reps);
  const double batched_rate = drmp::bench::median_rate(samples[0]);
  const double legacy_rate = drmp::bench::median_rate(samples[1]);
  std::printf("\nthroughput (simulated device-cycles / host second, median of %d):\n",
              reps);
  std::printf("  batched lockstep   : %12.3e\n", batched_rate);
  std::printf("  legacy per-device  : %12.3e\n", legacy_rate);
  if (samples.size() > 2) {
    std::printf("  batched x%-2u workers: %12.3e\n", cores,
                drmp::bench::median_rate(samples[2]));
  }
  if (legacy_rate > 0.0) {
    std::printf("  serial speedup     : %.3fx%s\n", batched_rate / legacy_rate,
                batched_rate >= legacy_rate * 0.97 ? "" : "  [SLOWER THAN LEGACY]");
  }
  std::printf("  idle-skip ratio    : %.2f skipped ticks per executed tick\n",
              batched.skip_ratio());

  // ---- Device-count scaling sweep (--devices) ----
  // One MSDU per active mode per device: enough traffic that every cell
  // exercises the full pipeline, short enough that the 1k point stays
  // CI-sized. The figure per point is the aggregate simulated
  // device-cycles per host second — its reciprocal is the host cost of one
  // device-cycle, so the curve is flat exactly when the scheduler's
  // per-device cost is constant (an O(N^2) structure would decay it by the
  // fleet-growth factor). Points are interleaved across the passes
  // (64,256,1k,64,...) and each reports its best pass — the
  // scheduler-scaling figure, not the host's thermal history.
  std::vector<double> sweep_cpsd(sweep_points.size(), 0.0);
  if (!sweep_points.empty()) {
    std::vector<std::function<double()>> sweep_arms;
    sweep_arms.reserve(sweep_points.size());
    for (const std::size_t n : sweep_points) {
      sweep_arms.push_back([&, n] {
        ScenarioSpec spec = ScenarioSpec::mixed_three_standard(n, kSeed, 1);
        spec.max_cycles = 60'000'000;
        spec.worker_threads = 1;
        const FleetStats fs = ScenarioEngine(std::move(spec)).run();
        return fs.device_cycles_per_sec();
      });
    }
    const auto sweep_samples = drmp::bench::interleaved_samples(sweep_arms, 2);
    std::printf(
        "\ndevice-count scaling (device-cycles/sec, best of 2 interleaved):\n");
    for (std::size_t k = 0; k < sweep_points.size(); ++k) {
      sweep_cpsd[k] = drmp::bench::best_rate(sweep_samples[k]);
      std::printf("  %5zu devices: %12.3e  (%6.1f ns per device-cycle, %.2fx the "
                  "%zu-device rate)\n",
                  sweep_points[k], sweep_cpsd[k],
                  sweep_cpsd[k] > 0.0 ? 1e9 / sweep_cpsd[k] : 0.0,
                  sweep_cpsd[0] > 0.0 ? sweep_cpsd[k] / sweep_cpsd[0] : 0.0,
                  sweep_points[0]);
    }
  }

  if (!json_path.empty()) {
    drmp::bench::JsonRecord rec;
    rec.str("bench", "scenario_fleet");
    rec.num("devices", static_cast<drmp::u64>(n_devices));
    rec.num("msdus_per_mode", msdus);
    rec.num("seed", kSeed);
    rec.num("lockstep_cycles", batched.lockstep_cycles);
    rec.num("device_cycles_total", batched.device_cycles_total());
    rec.num("wall_seconds", batched.wall_seconds);
    rec.num("device_cycles_per_sec", batched_rate);
    rec.num("legacy_device_cycles_per_sec", legacy_rate);
    rec.num("speedup_vs_legacy", legacy_rate > 0.0 ? batched_rate / legacy_rate : 0.0);
    rec.num("ticks_executed", batched.ticks_executed);
    rec.num("ticks_skipped", batched.ticks_skipped);
    rec.num("skip_ratio", batched.skip_ratio());
    if (checkpoint_roundtrip) {
      rec.num("checkpoint_roundtrip_ok", 1);
      rec.num("checkpoint_half_cycles", ckpt_half_cycles);
      rec.num("checkpoint_resume_seconds", ckpt_resume_seconds);
      rec.num("checkpoint_snapshot_bytes", ckpt_snapshot_bytes);
    }
    if (!sweep_points.empty()) {
      std::string pts;
      for (const std::size_t n : sweep_points) {
        if (!pts.empty()) pts += ",";
        pts += std::to_string(n);
      }
      rec.str("sweep_devices", pts);
      for (std::size_t k = 0; k < sweep_points.size(); ++k) {
        rec.num("sweep_cpsd_" + std::to_string(sweep_points[k]), sweep_cpsd[k]);
      }
    }
    drmp::bench::add_profile(rec, batched);
    rec.hex("full_digest", batched.full_digest());
    rec.hex("completion_digest", batched.completion_digest());
    if (!rec.write(json_path)) {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json record        : %s\n", json_path.c_str());
  }
  return 0;
}
