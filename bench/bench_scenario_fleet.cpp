// Fleet scenario bench: an 8-device (override with argv[1]) three-standard
// mixed-traffic fleet over lossy channels.
//
//   1. Determinism: two batched runs with the same seed must produce
//      byte-identical aggregate stats, and the batched path must complete
//      exactly the work the legacy per-device loop completes.
//   2. Throughput: batched lockstep vs looping the legacy scheduler per
//      device (run_until, predicate every cycle), measured over alternating
//      repetitions with the median taken per path to suppress host noise.
//      A parallel-workers batched run is reported when the host has more
//      than one core (it is digest-identical to the serial run).
//
//   3. Quiescence: the batched path skips provably-idle component ticks
//      (sim/scheduler.hpp); the digests above pin that skipping is
//      bit-identical, and the skip ratio is reported as the workload's idle
//      dominance.
//
//   $ ./bench_scenario_fleet [num_devices] [msdus_per_mode] [repetitions] [--json[=PATH]]
//
//   --json writes the machine-readable record (cycles, wall seconds,
//   cycles/sec, skip ratio, digests) to BENCH_fleet.json (or PATH).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "scenario/scenario_engine.hpp"

namespace {

using drmp::scenario::FleetStats;
using drmp::scenario::ScenarioEngine;
using drmp::scenario::ScenarioSpec;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      drmp::bench::take_json_flag(argc, argv, "BENCH_fleet.json");
  const std::size_t n_devices = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const drmp::u32 msdus =
      argc > 2 ? static_cast<drmp::u32>(std::strtoul(argv[2], nullptr, 10)) : 3;
  const int reps = std::max(1, argc > 3 ? std::atoi(argv[3]) : 3);
  constexpr drmp::u64 kSeed = 2008;

  const auto make_spec = [&](unsigned workers) {
    ScenarioSpec spec = ScenarioSpec::mixed_three_standard(n_devices, kSeed, msdus);
    spec.max_cycles = 60'000'000;
    spec.worker_threads = workers;
    if (workers != 1) spec.lockstep_stride = 32'768;
    return spec;
  };

  std::printf("fleet: %zu devices, %u MSDUs per active mode, seed %llu, %d reps\n\n",
              n_devices, msdus, static_cast<unsigned long long>(kSeed), reps);

  // ---- Correctness gates ----
  const FleetStats batched = ScenarioEngine(make_spec(1)).run();
  const FleetStats repeat = ScenarioEngine(make_spec(1)).run();
  const FleetStats legacy = ScenarioEngine(make_spec(1)).run(ScenarioEngine::Path::kLegacy);

  std::printf("%s\n", batched.report().c_str());

  if (batched.full_digest() != repeat.full_digest() ||
      batched.report() != repeat.report()) {
    std::printf("DETERMINISM FAILURE: two batched runs with the same seed diverged\n");
    return 1;
  }
  std::printf("determinism: two batched runs byte-identical (digest %016llx)\n",
              static_cast<unsigned long long>(batched.full_digest()));

  if (batched.completion_digest() != legacy.completion_digest()) {
    std::printf("PATH MISMATCH: batched and legacy completed different work\n");
    return 1;
  }
  if (!batched.all_drained || !legacy.all_drained) {
    std::printf("BUDGET EXHAUSTED before the fleet drained\n");
    return 1;
  }
  std::printf("equivalence: batched and legacy completion digests match\n");

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  if (cores > 1) {
    const FleetStats parallel = ScenarioEngine(make_spec(0)).run();
    if (parallel.completion_digest() != batched.completion_digest()) {
      std::printf("PARALLEL MISMATCH: worker-thread run diverged from serial\n");
      return 1;
    }
    std::printf("parallel:    %u-worker batched run matches serial digests\n", cores);
  }

  // ---- Throughput: alternating reps, median per path ----
  std::vector<double> batched_rates, legacy_rates, parallel_rates;
  for (int r = 0; r < reps; ++r) {
    batched_rates.push_back(ScenarioEngine(make_spec(1)).run().device_cycles_per_sec());
    legacy_rates.push_back(ScenarioEngine(make_spec(1))
                               .run(ScenarioEngine::Path::kLegacy)
                               .device_cycles_per_sec());
    if (cores > 1) {
      parallel_rates.push_back(ScenarioEngine(make_spec(0)).run().device_cycles_per_sec());
    }
  }
  const double batched_rate = median(batched_rates);
  const double legacy_rate = median(legacy_rates);
  std::printf("\nthroughput (simulated device-cycles / host second, median of %d):\n",
              reps);
  std::printf("  batched lockstep   : %12.3e\n", batched_rate);
  std::printf("  legacy per-device  : %12.3e\n", legacy_rate);
  if (!parallel_rates.empty()) {
    std::printf("  batched x%-2u workers: %12.3e\n", cores, median(parallel_rates));
  }
  if (legacy_rate > 0.0) {
    std::printf("  serial speedup     : %.3fx%s\n", batched_rate / legacy_rate,
                batched_rate >= legacy_rate * 0.97 ? "" : "  [SLOWER THAN LEGACY]");
  }
  std::printf("  idle-skip ratio    : %.2f skipped ticks per executed tick\n",
              batched.skip_ratio());

  if (!json_path.empty()) {
    drmp::bench::JsonRecord rec;
    rec.str("bench", "scenario_fleet");
    rec.num("devices", static_cast<drmp::u64>(n_devices));
    rec.num("msdus_per_mode", msdus);
    rec.num("seed", kSeed);
    rec.num("lockstep_cycles", batched.lockstep_cycles);
    rec.num("device_cycles_total", batched.device_cycles_total());
    rec.num("wall_seconds", batched.wall_seconds);
    rec.num("device_cycles_per_sec", batched_rate);
    rec.num("legacy_device_cycles_per_sec", legacy_rate);
    rec.num("speedup_vs_legacy", legacy_rate > 0.0 ? batched_rate / legacy_rate : 0.0);
    rec.num("ticks_executed", batched.ticks_executed);
    rec.num("ticks_skipped", batched.ticks_skipped);
    rec.num("skip_ratio", batched.skip_ratio());
    drmp::bench::add_profile(rec, batched);
    rec.hex("full_digest", batched.full_digest());
    rec.hex("completion_digest", batched.completion_digest());
    if (!rec.write(json_path)) {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json record        : %s\n", json_path.c_str());
  }
  return 0;
}
