// Fragment-burst policy bench — SIFS-spaced bursts vs per-fragment
// re-contention on the 4-station contended WiFi cell.
//
// Both arms run scenario::ScenarioSpec::contended_wifi_fragmented: 700-1000
// byte MSDUs split at a 256-byte threshold into 3-4 fragment bursts, NAV on,
// everything else identical — ModeIdentity::frag_burst_enabled is the single
// variable. Off, every fragment re-contends with DIFS + a fresh backoff (the
// PR-2 simplification), so each burst exposes 3-4 separate contention rounds
// to the other stations. On, the burst flies SIFS-spaced with chained
// Duration fields (802.11 §9.1.4): one contention round per MSDU, the rest
// of the burst inside the NAV it announces — mid-burst collisions fall.
//
//   $ ./bench_net_fragburst [stations] [msdus_per_station] [--json[=PATH]]
//
//   --json writes the machine-readable record to BENCH_fragburst.json (or
//   PATH): per arm collisions, collision rate per offered MSDU, airtime
//   efficiency, retries, expired responses and the full digest. The binary
//   self-checks (and CI re-asserts from the record) the headline ordering:
//   burst collisions < per-fragment collisions.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "scenario/scenario_engine.hpp"

namespace {

using drmp::scenario::FleetStats;
using drmp::scenario::ScenarioEngine;
using drmp::scenario::ScenarioSpec;

constexpr drmp::u64 kSeed = 5;

struct Arm {
  const char* name;
  bool burst;
  drmp::u64 collisions = 0;
  double collision_rate = 0.0;
  double airtime_eff = 0.0;
  drmp::u64 retries = 0;
  drmp::u64 tx_ok = 0;
  drmp::u64 offered = 0;
  drmp::u64 expired = 0;
  drmp::u64 nav_defers = 0;
  drmp::u64 full_digest = 0;
  FleetStats stats;  ///< Full run stats (add_profile keys for the burst arm).
};

Arm run_arm(const char* name, bool burst, std::size_t stations, drmp::u32 msdus) {
  ScenarioSpec spec =
      ScenarioSpec::contended_wifi_fragmented(stations, burst, kSeed, msdus);
  const FleetStats fs = ScenarioEngine(std::move(spec)).run();
  Arm a;
  a.name = name;
  a.burst = burst;
  if (!fs.all_drained) {
    std::printf("BUDGET EXHAUSTED: %s\n", name);
    std::exit(1);
  }
  a.collisions = fs.cells.at(0).collided_frames[0];
  a.nav_defers = fs.total_nav_defers();
  a.expired = fs.total_frames_expired();
  for (const auto& ds : fs.devices) {
    a.offered += ds.offered[0];
    a.tx_ok += ds.tx_ok[0];
    a.retries += ds.retries[0];
  }
  a.collision_rate =
      a.offered > 0 ? static_cast<double>(a.collisions) / static_cast<double>(a.offered)
                    : 0.0;
  const auto busy = fs.cells.at(0).busy_cycles[0];
  const auto wasted = fs.cells.at(0).collided_airtime[0];
  a.airtime_eff =
      busy > 0 ? 1.0 - static_cast<double>(wasted) / static_cast<double>(busy) : 1.0;
  a.full_digest = fs.full_digest();
  a.stats = fs;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      drmp::bench::take_json_flag(argc, argv, "BENCH_fragburst.json");
  const std::size_t stations = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const drmp::u32 msdus =
      argc > 2 ? static_cast<drmp::u32>(std::strtoul(argv[2], nullptr, 10)) : 3;

  std::printf("Fragment-burst sweep: %zu stations, %u MSDUs each (3-4 fragments "
              "per MSDU), seed %llu, NAV on\n\n",
              stations, msdus, static_cast<unsigned long long>(kSeed));

  const Arm per_frag = run_arm("per-fragment", false, stations, msdus);
  const Arm burst = run_arm("sifs-burst", true, stations, msdus);

  std::printf("arm           coll  coll/msdu  air_eff%%  retries  expired"
              "  ok/offered  nav_defers\n");
  for (const Arm* a : {&per_frag, &burst}) {
    std::printf("%-12s %5llu %10.3f %9.2f %8llu %8llu %6llu/%-6llu %8llu\n", a->name,
                static_cast<unsigned long long>(a->collisions), a->collision_rate,
                100.0 * a->airtime_eff, static_cast<unsigned long long>(a->retries),
                static_cast<unsigned long long>(a->expired),
                static_cast<unsigned long long>(a->tx_ok),
                static_cast<unsigned long long>(a->offered),
                static_cast<unsigned long long>(a->nav_defers));
  }

  // The ordering this bench exists to demonstrate. Deterministic (fixed
  // seed): a violation means the SIFS-anchored burst machinery regressed.
  if (per_frag.collisions == 0) {
    std::printf("\nORDERING FAILURE: the per-fragment arm must actually collide "
                "(got 0) for the comparison to mean anything\n");
    return 1;
  }
  if (burst.collisions >= per_frag.collisions) {
    std::printf("\nORDERING FAILURE: SIFS-spaced bursts must cut mid-burst "
                "collisions (burst=%llu per-fragment=%llu)\n",
                static_cast<unsigned long long>(burst.collisions),
                static_cast<unsigned long long>(per_frag.collisions));
    return 1;
  }
  std::printf("\nordering: burst %llu < per-fragment %llu collisions (%.1fx)\n",
              static_cast<unsigned long long>(burst.collisions),
              static_cast<unsigned long long>(per_frag.collisions),
              static_cast<double>(per_frag.collisions) /
                  static_cast<double>(std::max<drmp::u64>(1, burst.collisions)));

  if (!json_path.empty()) {
    drmp::bench::JsonRecord rec;
    rec.str("bench", "net_fragburst");
    rec.num("stations", static_cast<drmp::u64>(stations));
    rec.num("msdus_per_station", msdus);
    rec.num("seed", kSeed);
    for (const Arm* a : {&per_frag, &burst}) {
      const std::string k = a->burst ? "burst" : "perfrag";
      rec.num(k + "_collisions", a->collisions);
      rec.num(k + "_collision_rate", a->collision_rate);
      rec.num(k + "_airtime_eff", a->airtime_eff);
      rec.num(k + "_retries", a->retries);
      rec.num(k + "_expired", a->expired);
      rec.num(k + "_tx_ok", a->tx_ok);
      rec.num(k + "_nav_defers", a->nav_defers);
      rec.hex(k + "_full_digest", a->full_digest);
    }
    drmp::bench::add_profile(rec, burst.stats);
    if (!rec.write(json_path)) {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json record: %s\n", json_path.c_str());
  }
  return 0;
}
