// Fig. 6.1 — Time slack in the RHCP: over a sustained multi-packet 3-mode
// run, how much of the time each hardware resource is idle — the quantity
// the Chapter-6 power-saving techniques (clock gating, PSO, DVFS) convert
// into energy savings.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  std::cout << "=== Fig 6.1: Time Slack in the RHCP (3 modes x 3 packets, "
               "1000 B) ===\n\n";
  run_three_mode_tx(tb, 3, 1000);
  const Cycle total = tb.scheduler().now();
  const auto& tbase = tb.device().timebase();

  est::Table t({"Resource", "Busy (us)", "Slack (%)"});
  auto add = [&](const std::string& n, Cycle busy) {
    t.add_row({n, est::Table::num(tbase.cycles_to_us(busy), 1),
               est::Table::num(100.0 * (1.0 - static_cast<double>(busy) /
                                                  static_cast<double>(total)), 2)});
  };
  for (const rfu::Rfu* r : tb.device().rfus()) add("RFU " + r->name(), r->busy_cycles());
  add("packet bus", tb.device().bus().busy_cycles());
  add("CPU", tb.device().cpu().busy_cycles());
  t.print(std::cout);

  Cycle rfu_total = 0;
  for (const rfu::Rfu* r : tb.device().rfus()) rfu_total += r->busy_cycles();
  std::cout << "\naggregate RFU utilization: "
            << est::Table::num(100.0 * static_cast<double>(rfu_total) /
                                   (static_cast<double>(total) *
                                    static_cast<double>(tb.device().rfus().size())),
                               3)
            << "% -> slack > 99% — gating/PSO can cut dynamic and leakage "
               "power nearly proportionally (thesis §6.2; quantified in "
               "bench_power_ablation).\n";
  return 0;
}
