// Mobility & dynamic-topology bench (docs/CONTENTION.md, docs/MULTICELL.md).
//
//   1. Correctness gate: a frozen-position TopologyDriver (waypoints pinned
//      at the start positions) must reproduce the static explicit-matrix
//      cell byte-for-byte — the driver's derived matrix is the same object
//      the static cell was given, so every digest must match.
//   2. Hidden-station physics: the mid-run walk behind the wall must cost
//      collisions the static cell never pays, and arming RTS/CTS on the
//      same walk must claw back collided airtime.
//   3. Roaming: the two-cell walk-away workload must complete at least one
//      handoff with a nonzero reassociation latency.
//
//   $ ./bench_net_mobility [stations] [msdus] [--json[=PATH]]
//
//   --json writes the machine-readable record (digests, collision counts,
//   epochs, handoff latency, throughput) to BENCH_mobility.json (or PATH).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "scenario/scenario_engine.hpp"

namespace {

using drmp::scenario::DeviceStats;
using drmp::scenario::FleetStats;
using drmp::scenario::ScenarioEngine;
using drmp::scenario::ScenarioSpec;

constexpr drmp::u64 kSeed = 11;  // Matches the bench-family convention.

FleetStats run(ScenarioSpec spec) { return ScenarioEngine(std::move(spec)).run(); }

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      drmp::bench::take_json_flag(argc, argv, "BENCH_mobility.json");
  const std::size_t stations =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const drmp::u32 msdus =
      argc > 2 ? static_cast<drmp::u32>(std::strtoul(argv[2], nullptr, 10)) : 3;

  std::printf("mobility bench: %zu stations, %u MSDUs each, seed %llu\n\n",
              stations, msdus, static_cast<unsigned long long>(kSeed));

  // ---- Gate 1: frozen driver == static explicit matrix, bit-for-bit ----
  const FleetStats fixed = run(ScenarioSpec::contended_wifi_topology(
      stations, ScenarioSpec::Reach::kFull, kSeed, msdus));
  const FleetStats frozen = run(ScenarioSpec::mobile_wifi_cell(
      stations, /*frozen=*/true, /*associate=*/false, kSeed, msdus));
  if (!fixed.all_drained || !frozen.all_drained) {
    std::printf("BUDGET EXHAUSTED before the static arms drained\n");
    return 1;
  }
  // report() embeds the scenario name (which differs by arm); the digests
  // cover every integral quantity, so they are the comparison surface.
  if (frozen.full_digest() != fixed.full_digest() ||
      frozen.completion_digest() != fixed.completion_digest()) {
    std::printf("FROZEN MISMATCH: a motionless TopologyDriver diverged from "
                "the static explicit-matrix cell\n");
    return 1;
  }
  std::printf("gate: frozen driver == static matrix (%016llx), %llu "
              "topology epochs\n",
              static_cast<unsigned long long>(frozen.full_digest()),
              static_cast<unsigned long long>(frozen.total_topology_epochs()));

  // ---- Gate 2: the walk costs collisions; RTS/CTS claws airtime back ----
  const FleetStats mobile = run(ScenarioSpec::mobile_wifi_cell(
      stations, /*frozen=*/false, /*associate=*/false, kSeed, msdus));
  const FleetStats rts = run(ScenarioSpec::mobile_wifi_cell(
      stations, /*frozen=*/false, /*associate=*/false, kSeed, msdus,
      /*rts_threshold=*/700));
  if (!mobile.all_drained || !rts.all_drained) {
    std::printf("BUDGET EXHAUSTED before the mobile arms drained\n");
    return 1;
  }
  if (mobile.total_collisions() <= fixed.total_collisions()) {
    std::printf("WALK INERT: the hidden-station walk (%llu collisions) must "
                "out-collide the static cell (%llu)\n",
                static_cast<unsigned long long>(mobile.total_collisions()),
                static_cast<unsigned long long>(fixed.total_collisions()));
    return 1;
  }
  if (mobile.total_topology_epochs() == 0) {
    std::printf("DRIVER ASLEEP: the walk published no audibility revisions\n");
    return 1;
  }
  const drmp::Cycle mobile_air = mobile.cells[0].collided_airtime[0];
  const drmp::Cycle rts_air = rts.cells[0].collided_airtime[0];
  drmp::u32 rts_sent = 0, cts_received = 0;
  for (const DeviceStats& ds : rts.devices) {
    rts_sent += ds.rts_sent;
    cts_received += ds.cts_received;
  }
  if (rts_sent == 0 || cts_received == 0) {
    std::printf("RTS INERT: the handshake arm sent no RTS/CTS\n");
    return 1;
  }
  // The handshake shrinks the collided window from whole MSDUs to RTS
  // frames: anything under a 2x airtime recovery means it is not working.
  if (rts_air * 2 > mobile_air) {
    std::printf("RTS RECOVERY WEAK: collided airtime %llu with RTS vs %llu "
                "without (< 2x recovery)\n",
                static_cast<unsigned long long>(rts_air),
                static_cast<unsigned long long>(mobile_air));
    return 1;
  }
  std::printf("gate: walk collisions %llu > static %llu; RTS/CTS collided "
              "airtime %llu vs %llu (%.1fx recovery, %u RTS / %u CTS)\n",
              static_cast<unsigned long long>(mobile.total_collisions()),
              static_cast<unsigned long long>(fixed.total_collisions()),
              static_cast<unsigned long long>(rts_air),
              static_cast<unsigned long long>(mobile_air),
              static_cast<double>(mobile_air) /
                  static_cast<double>(rts_air ? rts_air : 1),
              rts_sent, cts_received);

  // ---- Gate 3: the two-cell walk-away hands off ----
  const FleetStats roam =
      run(ScenarioSpec::roaming_wifi_cells(stations, kSeed, msdus));
  if (!roam.all_drained) {
    std::printf("BUDGET EXHAUSTED before the roaming fleet drained\n");
    return 1;
  }
  if (roam.total_handoffs() == 0 || roam.total_reassociations() == 0) {
    std::printf("ROAMING INERT: the threshold walk completed no handoff\n");
    return 1;
  }
  std::printf("gate: %llu handoffs, %llu reassociations, mean latency %.0f "
              "cycles\n\n",
              static_cast<unsigned long long>(roam.total_handoffs()),
              static_cast<unsigned long long>(roam.total_reassociations()),
              roam.mean_handoff_latency_cycles());

  // ---- Profile ----
  std::printf("arm      coll   epochs  handoffs  Mcyc     skip    Mcyc/s\n");
  struct Row { const char* name; const FleetStats* fs; };
  for (const Row& r : {Row{"static", &fixed}, Row{"frozen", &frozen},
                       Row{"mobile", &mobile}, Row{"rts", &rts},
                       Row{"roaming", &roam}}) {
    std::printf("%-7s %5llu %8llu %9llu %7.2f %7.1f %9.2f\n", r.name,
                static_cast<unsigned long long>(r.fs->total_collisions()),
                static_cast<unsigned long long>(r.fs->total_topology_epochs()),
                static_cast<unsigned long long>(r.fs->total_handoffs()),
                static_cast<double>(r.fs->device_cycles_total()) / 1e6,
                r.fs->skip_ratio(), r.fs->device_cycles_per_sec() / 1e6);
  }

  if (!json_path.empty()) {
    drmp::bench::JsonRecord rec;
    rec.str("bench", "net_mobility");
    rec.num("stations", static_cast<drmp::u64>(stations));
    rec.num("msdus_per_station", msdus);
    rec.num("seed", kSeed);
    rec.hex("static_digest", fixed.full_digest());
    rec.hex("frozen_digest", frozen.full_digest());
    rec.hex("mobile_digest", mobile.full_digest());
    rec.num("static_collisions", fixed.total_collisions());
    rec.num("mobile_collisions", mobile.total_collisions());
    rec.num("mobile_collided_airtime", mobile_air);
    rec.num("rts_collided_airtime", rts_air);
    rec.num("rts_sent", rts_sent);
    rec.num("cts_received", cts_received);
    rec.num("topology_epochs", mobile.total_topology_epochs());
    rec.num("handoffs", roam.total_handoffs());
    rec.num("reassociations", roam.total_reassociations());
    rec.num("mean_handoff_latency_cycles", roam.mean_handoff_latency_cycles());
    rec.num("lockstep_cycles", mobile.lockstep_cycles);
    rec.num("device_cycles_total", mobile.device_cycles_total());
    rec.num("wall_seconds", mobile.wall_seconds);
    rec.num("device_cycles_per_sec", mobile.device_cycles_per_sec());
    rec.num("ticks_executed", mobile.ticks_executed);
    rec.num("ticks_skipped", mobile.ticks_skipped);
    rec.num("skip_ratio", mobile.skip_ratio());
    drmp::bench::add_profile(rec, mobile);
    rec.hex("full_digest", mobile.full_digest());
    if (!rec.write(json_path)) {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\njson record: %s\n", json_path.c_str());
  }
  return 0;
}
