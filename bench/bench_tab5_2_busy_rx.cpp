// Table 5.2 — Busy time of the various entities in the DRMP during
// reception (3-mode concurrent run).
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  Probe::attach(tb);
  std::cout << "=== Table 5.2: Busy Time of Various Entities in DRMP During "
               "Reception ===\n\n";

  const Bytes ma = make_payload(1000, 1), mb = make_payload(1000, 2),
              mc = make_payload(1000, 3);
  const Cycle t0 = tb.scheduler().now() + 10;
  tb.peer(Mode::A).inject_frame(tb.make_peer_frames(Mode::A, ma, 1)[0], t0);
  tb.peer(Mode::B).inject_frame(tb.make_peer_frames(Mode::B, mb, 1)[0], t0);
  tb.peer(Mode::C).inject_frame(tb.make_peer_frames(Mode::C, mc, 1)[0], t0);
  tb.run_until(
      [&] {
        return !tb.delivered(Mode::A).empty() && !tb.delivered(Mode::B).empty() &&
               !tb.delivered(Mode::C).empty();
      },
      400'000'000);
  const Cycle t1 = tb.scheduler().now();
  print_busy_table(tb, t0, t1, "3-mode reception (1000 B per mode)");

  std::cout << "\nautonomous path counters: event-handler frames="
            << tb.device().event_handler().rx_frames_handled(Mode::A) +
                   tb.device().event_handler().rx_frames_handled(Mode::B) +
                   tb.device().event_handler().rx_frames_handled(Mode::C)
            << ", ACKs generated without CPU=" << tb.device().ack_rfu().acks_generated()
            << ", CPU busy fraction="
            << est::Table::num(100.0 * tb.device().cpu().busy_fraction(), 3) << "%\n";
  return 0;
}
