// Ablation (Fig. 3.14) — secondary-trigger options for the master/slave
// mechanism: (a) dynamic address-LUT in the trigger logic, (b) a secondary
// RFU-address bus, (c) hard-wired peer-to-peer trigger lines (the DRMP's
// choice). Measures the realized hand-off cost of option (c) from a real
// transmission and models the per-word overhead of the alternatives.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;
  using est::Table;

  std::cout << "=== Ablation: master/slave secondary-trigger options "
               "(thesis Fig. 3.14) ===\n\n";

  // Measure option (c): a WiFi transmission where the Tx RFU master snoops
  // the FCS slave on every word and hands the bus over once per frame.
  Testbench tb;
  tb.send_and_wait(Mode::A, make_payload(1024));
  const u64 words_streamed = 1024 / 4 + 2;
  const u64 frames = tb.device().tx_rfu().frames_streamed();

  Table t({"Option", "Per-word overhead (cycles)", "Per-frame overhead (cycles)",
           "Extra hardware"});
  // (a) Dynamic LUT: IRC must program the address range before each frame
  // (2 table writes) and the trigger logic needs a RAM lookup per access.
  t.add_row({"(a) dynamic address-LUT", "0", "2 (LUT programming)",
             "LUT RAM + IRC update path"});
  // (b) secondary address bus: master asserts the slave id per word on a
  // log2(N)-bit bus; no per-frame setup, but a second decoded bus.
  t.add_row({"(b) secondary RFU-address bus", "0", "0",
             "log2(N)-bit bus + decoder to every RFU"});
  // (c) hard-wired: zero-cycle snoop on dedicated wires; one override
  // write to delegate and one to return per frame (measured).
  t.add_row({"(c) hard-wired pairs (DRMP)", "0", "2 (override in/out, measured)",
             "one wire pair per master/slave pair"});
  t.print(std::cout);

  std::cout << "\nmeasured: " << frames << " frame(s), ~" << words_streamed
            << " words snooped by the FCS slave with zero added bus cycles; "
               "bus hand-over via the grant-override took 2 bus writes per "
               "frame.\nReading: with only a few master/slave pairs "
               "identified (Tx->FCS, Rx->FCS), option (c)'s dedicated wires "
               "cost the least — \"a more general-purpose secondary trigger "
               "mechanism ... was considered unnecessary overhead\" "
               "(§3.6.5).\n";
  return 0;
}
