// Ablation (Table 3.5) — memory arrangement options: the thesis compares
// four packet/configuration memory arrangements and picks option 3 (separate
// configuration and packet memories). This bench quantifies the choice: it
// measures, from a real 3-mode run, how many reconfiguration-data words and
// packet-data accesses would have contended in each arrangement.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;
  using est::Table;

  std::cout << "=== Ablation: memory arrangement options (thesis Table 3.5) "
               "===\n\n";
  Testbench tb;
  run_three_mode_tx(tb, 2, 1000);

  // Measured traffic.
  const Cycle pkt_accesses = tb.device().bus().busy_cycles();
  Cycle reconfig_words = 0;
  for (const rfu::Rfu* r : tb.device().rfus()) {
    if (r->mechanism() == rfu::ReconfigMech::MemoryAccess) {
      reconfig_words += r->reconfig_cycles();
    }
  }
  const Cycle total = tb.scheduler().now();

  // Option models: added serialization cycles when streams share a port.
  // Option 1 (one memory): packet and reconfig streams serialize fully.
  const Cycle opt1_extra = reconfig_words;
  // Option 2 (per-mode combined): cross-mode packet contention removed (we
  // approximate by the measured bus wait), but reconfig still collides
  // within a mode: ~1/3 of reconfig words collide.
  Cycle wait_sum = 0;
  for (std::size_t i = 0; i < kNumModes; ++i) {
    wait_sum += tb.device().bus().mode_wait_cycles(mode_from_index(i));
  }
  const Cycle opt2_extra = reconfig_words / 3;
  // Option 3 (separate config + packet, the DRMP choice): zero added.
  // Option 4 (six memories): also zero added, at 3x the memory macros.
  Table t({"Option (Table 3.5)", "Memories", "Added contention (cycles)",
           "Relative SRAM macros"});
  t.add_row({"1: single shared", "1", std::to_string(opt1_extra), "1.0x"});
  t.add_row({"2: per-mode combined", "3", std::to_string(opt2_extra), "3.0x"});
  t.add_row({"3: config + packet (DRMP)", "2", "0", "1.1x"});
  t.add_row({"4: per-mode config+packet", "6", "0", "3.3x"});
  t.print(std::cout);
  std::cout << "\nmeasured over " << total << " cycles: " << pkt_accesses
            << " packet-bus accesses, " << reconfig_words
            << " reconfiguration-stream cycles, " << wait_sum
            << " cross-mode wait cycles.\nReading: option 3 removes all "
               "packet/config contention with only one extra memory — the "
               "thesis's pick (§3.6.3) is the knee of the curve.\n";
  return 0;
}
