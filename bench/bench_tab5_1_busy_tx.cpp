// Table 5.1 — Busy time of the various entities in the DRMP during
// transmission (3-mode concurrent run).
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  Probe::attach(tb);
  std::cout << "=== Table 5.1: Busy Time of Various Entities in DRMP During "
               "Transmission ===\n\n";
  const Cycle t0 = tb.scheduler().now();
  run_three_mode_tx(tb, 1, 1000);
  const Cycle t1 = tb.scheduler().now();
  print_busy_table(tb, t0, t1, "3-mode transmission (1000 B per mode)");

  // IRC controllers (busy = non-IDLE), from the statistics registry.
  const auto& busy = tb.device().stats().all_busy();
  const auto& tbase = tb.device().timebase();
  est::Table t({"IRC controller", "Busy (us)", "Busy (%)"});
  for (const auto& name : {"irc.thm.A", "irc.thm.B", "irc.thm.C", "irc.thr.A",
                           "irc.thr.B", "irc.thr.C", "irc.rc", "cpu"}) {
    auto it = busy.find(name);
    if (it == busy.end()) continue;
    t.add_row({name, est::Table::num(tbase.cycles_to_us(it->second.busy_cycles()), 1),
               est::Table::num(100.0 * it->second.busy_fraction(), 3)});
  }
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "\nReading: every entity is busy for a small fraction of the "
               "run — the \"proportionally large time that these resources "
               "are idle\" that promises modest power consumption (abstract).\n";
  return 0;
}
