// Ablation (§4.2) — extended ISA: re-prices the measured ISR workload with
// the dedicated short-datapath instructions the thesis proposes, reporting
// the CPU-load reduction against the pipeline-unit gate cost.
#include "bench_common.hpp"

#include "cpu/ext_isa.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;
  using est::Table;

  std::cout << "=== Ablation: extended instruction-set architecture "
               "(thesis §4.2) ===\n\n";

  Table cat({"Instruction", "Native instr", "Extended instr", "Uses/packet",
             "Gate cost"});
  for (const auto& e : cpu::ext_isa_catalog()) {
    cat.add_row({e.name, std::to_string(e.native_instr), std::to_string(e.extended_instr),
                 std::to_string(e.uses_per_packet), std::to_string(e.gate_cost)});
  }
  cat.print(std::cout);

  const auto s = cpu::ext_isa_summary();
  std::cout << "\nshort-datapath work per packet event: " << s.native_instr_per_packet
            << " native instr -> " << s.extended_instr_per_packet
            << " extended instr (" << Table::num(s.speedup(), 1) << "x) for "
            << s.total_gate_cost << " added gates\n\n";

  // Measured ISR workload under 3-mode traffic, re-priced.
  Testbench tb;
  run_three_mode_tx(tb, 3, 1000);
  const auto& cpu = tb.device().cpu();
  const double busy_native = 100.0 * cpu.busy_fraction();
  // Average ISR body ~ (busy cycles / invocations) scaled by the clock
  // ratio; the extended ISA collapses the datapath share of each handler.
  const double per_isr_instr =
      static_cast<double>(cpu.busy_cycles()) / static_cast<double>(cpu.isr_invocations()) *
      (cpu.config().cpu_freq_hz / cpu.config().arch_freq_hz);
  const double repriced = cpu::reprice_isr(static_cast<u32>(per_isr_instr));
  const double busy_ext = busy_native * repriced / per_isr_instr;

  Table t({"ISA", "Avg ISR cost (instr)", "CPU busy (%)",
           "Min CPU clock for 3 modes (MHz, 70% headroom)"});
  t.add_row({"native RISC", Table::num(per_isr_instr, 0), Table::num(busy_native, 3),
             Table::num(busy_native / 100.0 * 40.0 / 0.7, 2)});
  t.add_row({"with extended ISA", Table::num(repriced, 0), Table::num(busy_ext, 3),
             Table::num(busy_ext / 100.0 * 40.0 / 0.7, 2)});
  t.print(std::cout);
  std::cout << "\nReading: the extended instructions shave the short datapath "
               "work out of each handler, letting the protocol-control CPU "
               "clock (and voltage) drop further — the §4.2 proposal "
               "quantified.\n";
  return 0;
}
