// Fig. 5.12 — State occupation in the Task-handler: the fraction of time the
// TH_M/TH_R controllers spend in each statechart state over a sustained
// 3-mode run. The paper uses this to show the handlers idle most of the time
// and, when active, are dominated by waiting states (time slack).
#include "bench_common.hpp"

#include "irc/task_handler.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  std::cout << "=== Fig 5.12: State occupation in the Task-handlers "
               "(3 modes x 3 packets) ===\n\n";
  run_three_mode_tx(tb, 3, 1000);

  const auto& occ = tb.device().stats().all_occupancy();
  {
    est::Table t({"TH_M state", "mode A %", "mode B %", "mode C %"});
    for (int s = 0; s <= static_cast<int>(irc::ThMState::UseRfut2); ++s) {
      std::vector<std::string> row = {to_string(static_cast<irc::ThMState>(s))};
      for (const char* m : {"A", "B", "C"}) {
        const auto& o = occ.at(std::string("irc.thm.") + m);
        row.push_back(est::Table::num(
            100.0 * static_cast<double>(o.cycles_in(s)) / static_cast<double>(o.total()), 3));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }
  std::cout << "\n";
  {
    est::Table t({"TH_R state", "mode A %", "mode B %", "mode C %"});
    for (int s = 0; s <= static_cast<int>(irc::ThRState::UseRfut2); ++s) {
      std::vector<std::string> row = {to_string(static_cast<irc::ThRState>(s))};
      for (const char* m : {"A", "B", "C"}) {
        const auto& o = occ.at(std::string("irc.thr.") + m);
        row.push_back(est::Table::num(
            100.0 * static_cast<double>(o.cycles_in(s)) / static_cast<double>(o.total()), 3));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }
  std::cout << "\nReading: both handlers sit in IDLE for the overwhelming "
               "majority of cycles; active time is dominated by WAIT4_RFUDONE "
               "(TH_M, waiting on coarse-grained RFU latency) — the idle slack "
               "the paper's power argument builds on (§5.5.1).\n";
  return 0;
}
