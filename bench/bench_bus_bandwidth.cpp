// §3.6.3 / §5.5 — The single packet bus as the throughput bottleneck: drive
// increasing offered load (packets per mode, back to back) and report bus
// utilization and per-mode wait time. The thesis claims a single bus
// suffices for 3 concurrent modes at ~20 Mbps each at 200 MHz.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;
  using est::Table;

  std::cout << "=== Bus bandwidth headroom (thesis §3.6.3) ===\n\n";
  Table t({"Packets/mode", "Sim time (ms)", "Bus util (%)", "Wait A (us)",
           "Wait B (us)", "Wait C (us)", "All delivered"});
  for (u32 n : {1u, 2u, 4u, 8u}) {
    Testbench tb;
    run_three_mode_tx(tb, n, 1500);
    const auto& tbase = tb.device().timebase();
    const double util = 100.0 * static_cast<double>(tb.device().bus().busy_cycles()) /
                        static_cast<double>(tb.device().bus().total_cycles());
    const bool all = tb.tx_successes(Mode::A) == n && tb.tx_successes(Mode::B) == n &&
                     tb.tx_successes(Mode::C) == n;
    t.add_row({std::to_string(n), Table::num(tb.scheduler().now_us() / 1000.0, 2),
               Table::num(util, 3),
               Table::num(tbase.cycles_to_us(tb.device().bus().mode_wait_cycles(Mode::A)), 1),
               Table::num(tbase.cycles_to_us(tb.device().bus().mode_wait_cycles(Mode::B)), 1),
               Table::num(tbase.cycles_to_us(tb.device().bus().mode_wait_cycles(Mode::C)), 1),
               all ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nReading: even at sustained back-to-back traffic on all three "
               "modes the 32-bit single bus at 200 MHz (6.4 Gbps raw) runs at "
               "a few percent utilization — the protocols' aggregate ~50 Mbps "
               "line rate is the limiter, confirming §3.6.3's single-bus "
               "adequacy claim (the crossover would come with much faster "
               "protocols, where the thesis proposes multi-/segmented buses).\n";
  return 0;
}
