// Fig. 5.11 — Proportional time spent by a mode: how the shared resources
// (packet bus, CPU) divide among the three concurrent protocol modes.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  std::cout << "=== Fig 5.11: Proportional time spent by each mode "
               "(3 modes x 2 packets) ===\n\n";
  run_three_mode_tx(tb, 2, 1000);

  const auto& tbase = tb.device().timebase();
  const Cycle total = tb.scheduler().now();
  est::Table t({"Mode", "Protocol", "Bus hold (us)", "Bus hold (%)", "Bus wait (us)",
                "CPU time (us)"});
  Cycle hold_sum = 0;
  for (std::size_t i = 0; i < kNumModes; ++i) hold_sum += tb.device().bus().mode_hold_cycles(mode_from_index(i));
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const Mode m = mode_from_index(i);
    const Cycle hold = tb.device().bus().mode_hold_cycles(m);
    t.add_row({to_string(m), mac::to_string(tb.config().modes[i].ident.proto),
               est::Table::num(tbase.cycles_to_us(hold), 1),
               est::Table::num(100.0 * static_cast<double>(hold) / static_cast<double>(total), 3),
               est::Table::num(tbase.cycles_to_us(tb.device().bus().mode_wait_cycles(m)), 2),
               est::Table::num(tbase.cycles_to_us(tb.device().cpu().mode_cpu_cycles(m)), 1)});
  }
  t.print(std::cout);
  std::cout << "\ntotal simulated time: " << est::Table::num(tbase.cycles_to_us(total), 1)
            << " us; bus held " << est::Table::num(tbase.cycles_to_us(hold_sum), 1)
            << " us ("
            << est::Table::num(100.0 * static_cast<double>(hold_sum) / static_cast<double>(total), 2)
            << "% — the single bus is nowhere near saturation at these line "
               "rates, §3.6.3)\n";
  std::cout << "CPU busy fraction: "
            << est::Table::num(100.0 * tb.device().cpu().busy_fraction(), 3)
            << "% across " << tb.device().cpu().isr_invocations()
            << " short ISR invocations (§4.1.1)\n";
  return 0;
}
