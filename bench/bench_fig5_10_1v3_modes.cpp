// Fig. 5.10 — 1-mode vs 3-mode transmission: per-packet hardware processing
// time with and without cross-mode contention on the shared co-processor.
// The paper's point: concurrency costs a little (bus + RFU contention,
// packet-by-packet reconfiguration) but the constraints still hold.
#include "bench_common.hpp"

namespace {

/// Measures the RHCP processing cycles for one WiFi packet (excluding
/// channel access and air time): total RFU busy cycles consumed per packet.
struct RunResult {
  double latency_us;
  double rfu_busy_us;
  double bus_wait_us;
};

RunResult run(bool three_modes) {
  using namespace drmp;
  using namespace drmp::bench;
  Testbench tb;
  Cycle rfu0 = 0;
  if (three_modes) {
    tb.send_async(Mode::B, make_payload(1000, 9));
    tb.send_async(Mode::C, make_payload(1000, 8));
  }
  const auto out = tb.send_and_wait(Mode::A, make_payload(1000), 4'000'000'000ull);
  if (three_modes) {
    tb.wait_tx_count(Mode::B, 1, 4'000'000'000ull);
    tb.wait_tx_count(Mode::C, 1, 4'000'000'000ull);
  }
  Cycle rfu_busy = 0;
  for (const rfu::Rfu* r : tb.device().rfus()) rfu_busy += r->busy_cycles();
  const auto& tbase = tb.device().timebase();
  return RunResult{out.latency_us, tbase.cycles_to_us(rfu_busy - rfu0),
                   tbase.cycles_to_us(tb.device().bus().mode_wait_cycles(Mode::A))};
}

}  // namespace

int main() {
  using drmp::est::Table;
  std::cout << "=== Fig 5.10: 1-mode vs 3-mode transmission ===\n\n";
  const auto one = run(false);
  const auto three = run(true);

  Table t({"Scenario", "WiFi pkt latency (us)", "total RFU busy (us)",
           "mode-A bus wait (us)"});
  t.add_row({"1 mode (WiFi only)", Table::num(one.latency_us, 1),
             Table::num(one.rfu_busy_us, 1), Table::num(one.bus_wait_us, 2)});
  t.add_row({"3 modes concurrent", Table::num(three.latency_us, 1),
             Table::num(three.rfu_busy_us, 1), Table::num(three.bus_wait_us, 2)});
  t.print(std::cout);

  std::cout << "\nReading: the 3-mode run adds RFU work (three protocols' "
               "packets) and some bus-wait to mode A, but the WiFi packet "
               "latency stays in the same band — air time and channel access "
               "dominate, not co-processor contention (thesis §5.5.3).\n";
  return 0;
}
