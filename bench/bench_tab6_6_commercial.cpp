// Table 6.6 — Commercial Solutions for Various Wireless Standards: the
// qualitative comparison of thesis §6.4 (Figs. 6.2-6.5) between the DRMP and
// the era's commercial MAC silicon.
#include <iostream>

#include "est/report.hpp"

int main() {
  using drmp::est::Table;
  std::cout << "=== Table 6.6: Commercial Wireless MAC Solutions vs DRMP "
               "(thesis §6.4) ===\n\n";
  Table t({"Solution", "Standards", "MAC implementation", "Multi-standard",
           "Dynamic reconfig", "Target"});
  t.add_row({"Sequans SQN1010", "802.16", "RISC + fixed accelerators", "no", "no",
             "WiMAX subscriber station"});
  t.add_row({"Fujitsu MB87M3400", "802.16", "ARM926 + fixed MAC HW", "no", "no",
             "WiMAX SoC"});
  t.add_row({"Intel WiMAX 2250", "802.16", "ARM9 + fixed MAC HW", "no", "no",
             "WiMAX baseband"});
  t.add_row({"Intel IXP1200", "any (packet)", "StrongARM + 6 microengines",
             "software only", "no", "network infrastructure"});
  t.add_row({"picoChip PC102", "PHY-oriented", "DSP array (PHY focus)", "partial",
             "per-task", "basestation PHY"});
  t.add_row({"QuickSilver ACM", "SDR PHY", "heterogeneous fractal nodes", "yes (PHY)",
             "cycle-by-cycle", "signal processing"});
  t.add_row({"Chameleon CS2000", "basestation", "32-bit datapath fabric", "yes (PHY)",
             "background load", "basestation (power-insensitive)"});
  t.add_row({"DRMP (this work)", "802.11/.15.3/.16 MAC", "CPU + coarse-grained RFUs",
             "yes (3 concurrent)", "packet-by-packet", "power-sensitive handhelds"});
  t.print(std::cout);
  std::cout << "\nReading: commercial MAC silicon of the era is single-standard "
               "fixed hardware; the reconfigurable platforms target the PHY "
               "layer and/or infrastructure. The DRMP's niche — a dynamically "
               "reconfigurable multi-standard MAC for handhelds — is "
               "unoccupied (thesis §2.4, §6.4).\n";
  return 0;
}
