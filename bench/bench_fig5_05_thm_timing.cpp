// Fig. 5.5 — TH_M timing diagram: the per-mode MAC task-handler state traces
// during a 3-mode concurrent transmission, showing delegation, bus waits and
// sleep/wake contention on shared RFUs.
#include "bench_common.hpp"

#include "irc/task_handler.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  Probe::attach(tb);

  std::cout << "=== Fig 5.5: Task-Handler-for-MAC (TH_M) timing diagram, "
               "3-mode transmission ===\n\n";
  const Cycle t0 = tb.scheduler().now();
  run_three_mode_tx(tb, 1, 800);
  const Cycle t1 = tb.scheduler().now();

  std::cout << "state legend: ";
  for (int s = 0; s <= static_cast<int>(irc::ThMState::UseRfut2); ++s) {
    std::cout << s << "=" << to_string(static_cast<irc::ThMState>(s)) << " ";
  }
  std::cout << "\n\n";
  std::cout << tb.device().trace().ascii_waveform({"thm.A", "thm.B", "thm.C"}, t0, t1, 110);

  // Per-mode TH_M activity summary.
  est::Table t({"TH_M", "Active cycles", "Active (us)", "Requests completed"});
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const Mode m = mode_from_index(i);
    const auto& ch = tb.device().trace().channel("thm." + std::string(to_string(m)));
    const Cycle act = ch.active_cycles(t0, t1);
    t.add_row({to_string(m), std::to_string(act),
               est::Table::num(tb.device().timebase().cycles_to_us(act)),
               std::to_string(tb.device().irc().handler(m).requests_completed())});
  }
  std::cout << "\n";
  t.print(std::cout);
  return 0;
}
