// Table 6.5 — Estimates for the DRMP: the composed block-level budget of the
// DRMP itself (gates, SRAM, area, and the per-block power at measured
// activity), i.e. the paper's final architecture estimate.
#include "bench_common.hpp"

#include "est/power.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::est;
  using namespace drmp::bench;

  std::cout << "=== Table 6.5: Estimates for the DRMP ===\n\n";

  // Measured activity from a sustained run.
  Testbench tb;
  run_three_mode_tx(tb, 3, 1000);
  const double total = static_cast<double>(tb.scheduler().now());
  std::map<std::string, double> activity;
  for (const rfu::Rfu* r : tb.device().rfus()) {
    auto it = drmp_rfu_blocks().find(r->name());
    if (it != drmp_rfu_blocks().end()) {
      activity[it->second.name] = static_cast<double>(r->busy_cycles()) / total;
    }
  }
  activity["cpu_core"] = tb.device().cpu().busy_fraction();
  activity["packet_bus+arbiter"] =
      static_cast<double>(tb.device().bus().busy_cycles()) / total;

  const Design d = drmp_design();
  const Process p;
  PowerTechniques tech;
  tech.clock_gating = true;
  tech.power_shutoff = true;

  Table t({"Block", "Gates", "SRAM (bits)", "Activity (%)", "Power (mW)"});
  for (const auto& b : d.blocks()) {
    double alpha = 0.02;
    auto it = activity.find(b.name);
    if (it != activity.end()) alpha = it->second;
    Design single(b.name, {b});
    const auto pw = estimate_power(single, p, 200e6, activity, 0.02, tech);
    t.add_row({b.name, Table::gates(b.gates), std::to_string(b.sram_bits),
               Table::num(100.0 * alpha, 3), Table::num(pw.total_mw(), 3)});
  }
  const auto pw_total = estimate_power(d, p, 200e6, activity, 0.02, tech);
  t.add_row({"TOTAL", Table::gates(d.total_gates()), std::to_string(d.total_sram_bits()),
             "-", Table::num(pw_total.total_mw(), 2)});
  t.print(std::cout);
  std::cout << "\narea @" << p.name << ": " << Table::num(d.area_mm2(p), 2)
            << " mm^2; power at 200 MHz with measured activity + gating/PSO: "
            << Table::num(pw_total.total_mw(), 1)
            << " mW — hand-held-compatible (thesis §6.1.4)\n";
  return 0;
}
