// Shared infrastructure for the bench binaries that regenerate the paper's
// tables and figures (thesis Chs. 5-6). Each binary prints the same rows /
// series the paper reports; see EXPERIMENTS.md for the paper-vs-measured
// record.
#pragma once

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "drmp/testbench.hpp"
#include "est/report.hpp"
#include "scenario/fleet_stats.hpp"

namespace drmp::bench {

// ---- Machine-readable bench output (--json) --------------------------------
//
// The perf trajectory of the repo is tracked through flat JSON records the
// fleet benches emit next to their human-readable tables: cycles simulated,
// wall seconds, cycles/sec, skip ratio, digests. CI uploads the files as
// artifacts, so every commit carries its own measurement.

/// Ordered flat key->value JSON object writer. Values are emitted as given:
/// numbers unquoted, strings quoted (no escaping beyond what bench keys
/// need, i.e. none).
class JsonRecord {
 public:
  void num(const std::string& key, double v) {
    // std::to_chars, not a stream: stream float formatting honours the
    // global locale (a de_DE host would emit "3,14" and corrupt the JSON);
    // to_chars is locale-independent by definition, so BENCH_*.json is
    // byte-stable across hosts.
    char buf[48];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                   std::chars_format::general, 12);
    kv_.emplace_back(key, std::string(buf, res.ptr));
  }
  void num(const std::string& key, u64 v) { kv_.emplace_back(key, std::to_string(v)); }
  void num(const std::string& key, u32 v) { kv_.emplace_back(key, std::to_string(v)); }
  void num(const std::string& key, int v) { kv_.emplace_back(key, std::to_string(v)); }
  void str(const std::string& key, const std::string& v) {
    kv_.emplace_back(key, "\"" + v + "\"");
  }
  void hex(const std::string& key, u64 v) {
    // Fixed 16-digit zero-padded field, locale-independent by construction.
    char buf[16];
    for (int i = 15; i >= 0; --i) {
      buf[i] = "0123456789abcdef"[v & 0xF];
      v >>= 4;
    }
    kv_.emplace_back(key, "\"" + std::string(buf, 16) + "\"");
  }

  std::string dump() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      out += "  \"" + kv_[i].first + "\": " + kv_[i].second;
      out += i + 1 < kv_.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
  }

  bool write(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << dump();
    return static_cast<bool>(f);
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Consumes a trailing `--json` / `--json=PATH` argument (anywhere in argv)
/// so positional parsing stays untouched. Returns the output path — PATH if
/// given, `default_path` for the bare flag, empty when the flag is absent.
inline std::string take_json_flag(int& argc, char** argv,
                                  const std::string& default_path) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0) {
      path = default_path;
    } else if (std::strncmp(argv[r], "--json=", 7) == 0) {
      path = argv[r] + 7;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return path;
}

/// Folds the scheduler/lane execution profile of a fleet run into a bench
/// JSON record — the standing keys every BENCH_*.json carries (PR-7), so the
/// perf trajectory of the quiescence machinery is tracked per commit.
inline void add_profile(JsonRecord& rec, const scenario::FleetStats& fs) {
  rec.num("ff_cycles", static_cast<u64>(fs.ff_cycles));
  rec.num("ff_events", fs.ff_events);
  rec.num("wheel_depth_max", fs.wheel_depth_max);
  rec.num("wheel_cascades", fs.wheel_cascades);
  rec.num("wheel_purges", fs.wheel_purges);
  rec.num("medium_ticks_executed", fs.medium_ticks_executed);
  rec.num("medium_ticks_skipped", fs.medium_ticks_skipped);
  rec.num("lockstep_rounds", fs.lockstep_rounds);
  rec.num("lane_rounds_skipped", fs.lane_rounds_skipped);
  rec.num("lane_stall_cycles", static_cast<u64>(fs.lane_stall_cycles));
}

// ---- Interleaved A/B timing -----------------------------------------------
//
// Wall-clock comparisons on shared/thermally-drifting hosts must interleave
// their measurement passes (A,B,A,B), never exhaust one arm first (A,A,B,B):
// back-to-back passes hand whichever arm runs first the cold turbo headroom
// and bias every BENCH_*.json trajectory built from the ratio. Every timed
// arm pair in the bench binaries goes through these helpers.

/// Runs the timing arms interleaved — arm 0, arm 1, ..., then the next pass
/// over all arms again — for `passes` rounds, returning each arm's samples
/// in pass order. Reduce per arm with best_rate() (throughput: the least-
/// disturbed pass) or median_rate() (central tendency over many passes).
inline std::vector<std::vector<double>> interleaved_samples(
    const std::vector<std::function<double()>>& arms, int passes) {
  std::vector<std::vector<double>> samples(arms.size());
  for (int p = 0; p < passes; ++p) {
    for (std::size_t i = 0; i < arms.size(); ++i) {
      samples[i].push_back(arms[i]());
    }
  }
  return samples;
}

inline double best_rate(const std::vector<double>& v) {
  return *std::max_element(v.begin(), v.end());
}

inline double median_rate(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Samples system activity every cycle into trace channels so the bench can
/// render the waveforms of Figs. 5.1-5.7 (the Simulink-scope stand-in).
/// Register it last so it observes the completed cycle.
class Probe : public sim::Clockable {
 public:
  explicit Probe(Testbench& tb) : tb_(tb) {}

  void tick() override {
    const Cycle now = tb_.scheduler().now();
    auto& tr = tb_.device().trace();
    auto& dev = tb_.device();
    tr.channel("cpu").record(now, dev.cpu().busy() ? 1 : 0);
    tr.channel("bus").record(now, dev.bus().grant().kind == hw::PacketBus::MasterKind::None
                                      ? 0
                                      : static_cast<int>(index(grant_mode())) + 1);
    for (const rfu::Rfu* r : dev.rfus()) {
      tr.channel("rfu." + r->name()).record(now, r->busy() ? (r->reconfiguring() ? 2 : 1) : 0);
    }
    for (std::size_t i = 0; i < kNumModes; ++i) {
      if (!tb_.config().modes[i].enabled) continue;
      const Mode m = mode_from_index(i);
      tr.channel("medium." + std::string(to_string(m)))
          .record(now, tb_.medium(m).busy() ? 1 : 0);
      tr.channel("txbuf." + std::string(to_string(m)))
          .record(now, static_cast<i64>(dev.tx_buffer(m).depth()));
    }
    tr.channel("eh").record(now, 0);  // Placeholder kept for channel ordering.
  }

  /// Registers the probe with the testbench scheduler.
  static Probe& attach(Testbench& tb) {
    static thread_local std::vector<std::unique_ptr<Probe>> keep;
    keep.push_back(std::make_unique<Probe>(tb));
    tb.scheduler().add(*keep.back(), "probe");
    return *keep.back();
  }

 private:
  Mode grant_mode() const {
    const auto& g = tb_.device().bus().grant();
    return g.kind == hw::PacketBus::MasterKind::Irc ? g.mode : g.mode;
  }
  Testbench& tb_;
};

inline Bytes make_payload(std::size_t n, u8 seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(i * 3 + seed);
  return b;
}

/// Prints the ASCII waveform of the standard entity set over [from, to).
inline void print_waveform(Testbench& tb, Cycle from, Cycle to,
                           const std::vector<std::string>& extra = {}) {
  std::vector<std::string> chans = {"cpu", "bus"};
  for (const rfu::Rfu* r : tb.device().rfus()) chans.push_back("rfu." + r->name());
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (tb.config().modes[i].enabled) {
      chans.push_back("medium." + std::string(to_string(mode_from_index(i))));
    }
  }
  for (const auto& e : extra) chans.push_back(e);
  std::cout << "time axis: " << std::fixed << std::setprecision(1)
            << tb.device().timebase().cycles_to_us(from) << " us .. "
            << tb.device().timebase().cycles_to_us(to)
            << " us   ('.'=idle, 1=busy, 2=reconfiguring; bus column = holding mode)\n";
  std::cout << tb.device().trace().ascii_waveform(chans, from, to, 110);
}

/// Prints the busy-time table (Tables 5.1 / 5.2 format): entity, busy us,
/// busy % over the window.
inline void print_busy_table(Testbench& tb, Cycle from, Cycle to, const std::string& title) {
  const auto& tbs = tb.device().timebase();
  est::Table t({"Entity", "Busy (us)", "Busy (%)"});
  auto add = [&](const std::string& name, Cycle busy) {
    const double pct = 100.0 * static_cast<double>(busy) / static_cast<double>(to - from);
    t.add_row({name, est::Table::num(tbs.cycles_to_us(busy)), est::Table::num(pct)});
  };
  auto& tr = tb.device().trace();
  add("CPU", tr.channel("cpu").active_cycles(from, to));
  add("Packet bus", tr.channel("bus").active_cycles(from, to));
  for (const rfu::Rfu* r : tb.device().rfus()) {
    add("RFU " + r->name(), tr.channel("rfu." + r->name()).active_cycles(from, to));
  }
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!tb.config().modes[i].enabled) continue;
    const Mode m = mode_from_index(i);
    add("Medium " + std::string(to_string(m)) + " (" +
            mac::to_string(tb.config().modes[i].ident.proto) + ")",
        tr.channel("medium." + std::string(to_string(m))).active_cycles(from, to));
  }
  std::cout << title << "  (window " << est::Table::num(tbs.cycles_to_us(to - from), 1)
            << " us)\n";
  t.print(std::cout);
}

/// Standard three-mode transmit scenario used by several benches.
inline void run_three_mode_tx(Testbench& tb, u32 packets_per_mode, std::size_t msdu_bytes) {
  for (u32 p = 0; p < packets_per_mode; ++p) {
    tb.send_async(Mode::A, make_payload(msdu_bytes, static_cast<u8>(p)));
    tb.send_async(Mode::B, make_payload(msdu_bytes, static_cast<u8>(p + 40)));
    tb.send_async(Mode::C, make_payload(msdu_bytes, static_cast<u8>(p + 80)));
  }
  tb.wait_tx_count(Mode::A, packets_per_mode, 4'000'000'000ull);
  tb.wait_tx_count(Mode::B, packets_per_mode, 4'000'000'000ull);
  tb.wait_tx_count(Mode::C, packets_per_mode, 4'000'000'000ull);
}

}  // namespace drmp::bench
