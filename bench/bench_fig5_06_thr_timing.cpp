// Fig. 5.6 — TH_R timing diagram: the reconfiguration task-handlers running
// ahead of their TH_Ms, invoking the single Reconfiguration Controller.
#include "bench_common.hpp"

#include "irc/task_handler.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  Probe::attach(tb);

  std::cout << "=== Fig 5.6: Task-Handler-for-Reconfiguration (TH_R) timing "
               "diagram, 3-mode transmission ===\n\n";
  const Cycle t0 = tb.scheduler().now();
  run_three_mode_tx(tb, 1, 800);
  const Cycle t1 = tb.scheduler().now();

  std::cout << "state legend: ";
  for (int s = 0; s <= static_cast<int>(irc::ThRState::UseRfut2); ++s) {
    std::cout << s << "=" << to_string(static_cast<irc::ThRState>(s)) << " ";
  }
  std::cout << "\n\n";
  std::cout << tb.device().trace().ascii_waveform({"thr.A", "thr.B", "thr.C"}, t0, t1, 110);

  std::cout << "\nRC reconfigurations performed: "
            << tb.device().irc().rc().reconfigs_performed() << "\n";
  est::Table t({"RFU", "Reconfig count", "Reconfig cycles", "Mechanism"});
  for (const rfu::Rfu* r : tb.device().rfus()) {
    if (r->reconfig_count() == 0) continue;
    t.add_row({r->name(), std::to_string(r->reconfig_count()),
               std::to_string(r->reconfig_cycles()),
               r->mechanism() == rfu::ReconfigMech::ContextSwitch ? "context-switch"
                                                                  : "memory-access"});
  }
  t.print(std::cout);
  return 0;
}
