// Table 6.1 — Synthesis Results, WiFi MAC: block-level gate-count estimate
// of a conventional single-protocol 802.11 MAC SoC (the estimation baseline
// the thesis anchors its comparison on).
#include <iostream>

#include "est/gates.hpp"
#include "est/report.hpp"

int main() {
  using namespace drmp::est;
  std::cout << "=== Table 6.1: Synthesis Results - WiFi MAC (conventional, "
               "130 nm estimates) ===\n\n";
  const Design d = conventional_wifi_mac();
  const Process p;
  Table t({"Block", "Gates (NAND2-eq)", "SRAM (bits)"});
  for (const auto& b : d.blocks()) {
    t.add_row({b.name, Table::gates(b.gates), std::to_string(b.sram_bits)});
  }
  t.add_row({"TOTAL", Table::gates(d.total_gates()), std::to_string(d.total_sram_bits())});
  t.print(std::cout);
  std::cout << "\narea @" << p.name << ": " << Table::num(d.area_mm2(p), 2) << " mm^2 "
            << "(logic + embedded SRAM)\n";
  return 0;
}
