// Fig. 5.2 — Packet Reception, 1 protocol mode.
// A peer-originated WiFi MPDU arrives; the Event Handler drains/checks/
// parses it autonomously, the AckRfu answers within SIFS, and the CPU-side
// control extracts, reassembles and decrypts the MSDU.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  Probe::attach(tb);

  std::cout << "=== Fig 5.2: Packet Reception - 1 Mode (WiFi, 1200 B MSDU) ===\n\n";
  const Bytes msdu = make_payload(1200);
  const Cycle t0 = tb.scheduler().now();
  const auto delivered = tb.inject_and_wait(Mode::A, msdu, /*seq=*/3);
  const Cycle t1 = tb.scheduler().now();
  tb.run_cycles(4000);  // Let the ACK air.

  std::cout << "delivered: " << (delivered.has_value() ? "yes" : "NO") << " ("
            << (delivered ? delivered->size() : 0) << " bytes, intact="
            << (delivered && *delivered == msdu) << ")\n";
  const Cycle rx_end = tb.device().rx_rfu().last_rx_end();
  const Cycle ack_start = tb.device().phy_tx(Mode::A)->last_tx_start();
  std::cout << "ACK turnaround: rx_end -> ack_start = "
            << est::Table::num(tb.device().timebase().cycles_to_us(ack_start - rx_end), 2)
            << " us (SIFS = 10 us; constraint "
            << (ack_start >= rx_end + 2000 && ack_start <= rx_end + 2010 ? "MET exactly"
                                                                          : "violated!")
            << ")\n\n";
  print_waveform(tb, t0, t1 + 4000);
  std::cout << "\n";
  print_busy_table(tb, t0, t1, "Entity busy time during the reception");
  return 0;
}
