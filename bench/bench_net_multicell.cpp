// Multi-cell co-channel coupling bench (docs/MULTICELL.md).
//
//   1. Correctness gates: the lax window-edge coupling must be byte-identical
//      to the immediate single-scheduler reference on a 2-cell overlapping
//      BSS (serial and all-cores worker pool), and a coupling whose
//      inter-cell reach hears nothing must be byte-identical to the same
//      fleet with the coupling erased.
//   2. Coupled-vs-isolated physics: cells that hear each other must pay for
//      it in collisions; fully-reused spectrum (the isolated arm) must not.
//   3. Interference profile at 2 and 4 coupled cells, full inter-cell reach
//      vs a hidden far pair, with the lax path's throughput and skip ratio.
//
//   $ ./bench_net_multicell [max_cells] [stations_per_cell] [msdus] [--json[=PATH]]
//
//   --json writes the machine-readable record (digests of both coupling
//   modes, coupled/isolated collision counts, throughput) to
//   BENCH_multicell.json (or PATH).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "net/audibility.hpp"
#include "scenario/scenario_engine.hpp"

namespace {

using drmp::scenario::FleetStats;
using drmp::scenario::ScenarioEngine;
using drmp::scenario::ScenarioSpec;

constexpr drmp::u64 kSeed = 11;  // Matches the tests/multicell_test.cpp pins.

FleetStats run_coupled(std::size_t cells, std::size_t stations, drmp::u32 msdus,
                       drmp::net::AudibilityMatrix reach, bool reference,
                       unsigned workers) {
  ScenarioSpec spec =
      ScenarioSpec::coupled_wifi_cells(cells, stations, kSeed, msdus, std::move(reach));
  spec.coupled_reference = reference;
  spec.worker_threads = workers;
  return ScenarioEngine(std::move(spec)).run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      drmp::bench::take_json_flag(argc, argv, "BENCH_multicell.json");
  const std::size_t max_cells =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::size_t stations =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const drmp::u32 msdus =
      argc > 3 ? static_cast<drmp::u32>(std::strtoul(argv[3], nullptr, 10)) : 3;

  std::printf("multicell bench: up to %zu co-channel cells x %zu stations, "
              "%u MSDUs each, seed %llu\n\n",
              max_cells, stations, msdus, static_cast<unsigned long long>(kSeed));

  // ---- Gate 1: lax window-edge exchange == immediate reference ----
  const FleetStats ref = run_coupled(2, stations, msdus, {}, /*reference=*/true, 1);
  const FleetStats lax = run_coupled(2, stations, msdus, {}, /*reference=*/false, 1);
  const FleetStats lax_pool =
      run_coupled(2, stations, msdus, {}, /*reference=*/false, 0);
  if (!ref.all_drained || !lax.all_drained) {
    std::printf("BUDGET EXHAUSTED before the coupled cells drained\n");
    return 1;
  }
  if (lax.full_digest() != ref.full_digest() || lax.report() != ref.report()) {
    std::printf("COUPLING MISMATCH: lax run diverged from the immediate "
                "single-scheduler reference\n");
    return 1;
  }
  if (lax_pool.full_digest() != ref.full_digest()) {
    std::printf("PARALLEL MISMATCH: worker-pool lax coupling diverged\n");
    return 1;
  }
  std::printf("gates: lax == reference == all-cores pool (%016llx), "
              "%llu inter-cell collisions\n",
              static_cast<unsigned long long>(ref.full_digest()),
              static_cast<unsigned long long>(ref.total_collisions()));

  // ---- Gate 2: coupled cells collide; isolated spectrum reuse does not ----
  // One station per cell makes every collision an inter-cell one, and an
  // all-zeros reach (mutually hidden pair of cells) is full spatial reuse:
  // it must behave exactly like the same fleet with the coupling erased.
  const drmp::u32 gate_msdus = std::max<drmp::u32>(msdus, 6);
  const FleetStats coupled =
      run_coupled(2, 1, gate_msdus, {}, /*reference=*/false, 1);
  const FleetStats isolated = run_coupled(
      2, 1, gate_msdus, drmp::net::AudibilityMatrix::hidden_pair(2, 0, 1),
      /*reference=*/false, 1);
  ScenarioSpec erased = ScenarioSpec::coupled_wifi_cells(2, 1, kSeed, gate_msdus);
  erased.couplings.clear();
  for (auto& c : erased.cells) c.coupling_group = -1;
  const FleetStats uncoupled = ScenarioEngine(std::move(erased)).run();
  if (coupled.total_collisions() <= isolated.total_collisions()) {
    std::printf("COUPLING INERT: coupled cells (%llu collisions) must out-"
                "collide isolated spectrum reuse (%llu)\n",
                static_cast<unsigned long long>(coupled.total_collisions()),
                static_cast<unsigned long long>(isolated.total_collisions()));
    return 1;
  }
  if (isolated.full_digest() != uncoupled.full_digest()) {
    std::printf("ISOLATION LEAK: all-zeros inter-cell reach diverged from "
                "the uncoupled fleet\n");
    return 1;
  }
  std::printf("gates: coupled %llu collisions vs isolated %llu; all-zeros "
              "reach == uncoupled fleet\n\n",
              static_cast<unsigned long long>(coupled.total_collisions()),
              static_cast<unsigned long long>(isolated.total_collisions()));

  // ---- Interference profile (lax path) ----
  FleetStats largest;  // Largest full-reach fleet feeds the JSON record.
  std::printf("cells  reach    coll   defers  busy_Mcyc  skip     Mcyc/s\n");
  for (std::size_t n = 2; n <= max_cells; n *= 2) {
    for (const bool full : {true, false}) {
      // The partial arm hides the far pair (cells 0 and n-1): spatial reuse
      // at the edges of the deployment, interference in the middle.
      drmp::net::AudibilityMatrix reach =
          full ? drmp::net::AudibilityMatrix{}
               : drmp::net::AudibilityMatrix::hidden_pair(n, 0, n - 1);
      const FleetStats fs =
          run_coupled(n, stations, msdus, std::move(reach), false, 1);
      if (!fs.all_drained) {
        std::printf("BUDGET EXHAUSTED at %zu cells\n", n);
        return 1;
      }
      drmp::u64 busy = 0;
      for (const auto& cs : fs.cells) busy += cs.busy_cycles[0];
      std::printf("%5zu  %-7s %5llu %8llu %10.2f %5.1f %10.2f\n", n,
                  full ? "full" : "hidden",
                  static_cast<unsigned long long>(fs.total_collisions()),
                  static_cast<unsigned long long>(fs.total_defers()),
                  static_cast<double>(busy) / 1e6, fs.skip_ratio(),
                  fs.device_cycles_per_sec() / 1e6);
      if (full) largest = fs;
    }
  }

  if (!json_path.empty()) {
    drmp::bench::JsonRecord rec;
    rec.str("bench", "net_multicell");
    rec.num("cells", static_cast<drmp::u64>(largest.cells.size()));
    rec.num("stations_per_cell", static_cast<drmp::u64>(stations));
    rec.num("msdus_per_station", msdus);
    rec.num("seed", kSeed);
    rec.hex("lax_digest", lax.full_digest());
    rec.hex("ref_digest", ref.full_digest());
    rec.num("coupled_collisions", coupled.total_collisions());
    rec.num("isolated_collisions", isolated.total_collisions());
    rec.num("largest_collisions", largest.total_collisions());
    rec.num("lockstep_cycles", largest.lockstep_cycles);
    rec.num("device_cycles_total", largest.device_cycles_total());
    rec.num("wall_seconds", largest.wall_seconds);
    rec.num("device_cycles_per_sec", largest.device_cycles_per_sec());
    rec.num("ticks_executed", largest.ticks_executed);
    rec.num("ticks_skipped", largest.ticks_skipped);
    rec.num("skip_ratio", largest.skip_ratio());
    drmp::bench::add_profile(rec, largest);
    rec.hex("full_digest", largest.full_digest());
    if (!rec.write(json_path)) {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\njson record: %s\n", json_path.c_str());
  }
  return 0;
}
