// Ablation (§4.1.1) — run-to-completion handlers (thesis prototype) vs the
// proposed pre-emptive priority mechanism ("an interrupt from a higher
// priority protocol would pre-empt another mode's interrupt handler").
// Runs the identical three-mode transmit workload under both CPU policies and
// compares per-mode worst-case ISR dispatch latency and CPU cost.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;
  using est::Table;

  std::cout << "=== Ablation: run-to-completion vs pre-emptive ISR dispatch "
               "(thesis 4.1.1) ===\n\n";

  struct Run {
    const char* label;
    bool preemptive;
    std::array<double, kNumModes> worst_us{};
    double busy_pct = 0.0;
    u64 preemptions = 0;
    u64 isrs = 0;
  };
  std::array<Run, 2> runs{Run{"run-to-completion (prototype)", false, {}, 0, 0, 0},
                          Run{"pre-emptive priority (proposed)", true, {}, 0, 0, 0}};

  for (auto& run : runs) {
    DrmpConfig cfg = DrmpConfig::standard_three_mode();
    cfg.cpu_preemptive = run.preemptive;
    Testbench tb(cfg);
    run_three_mode_tx(tb, 4, 1200);
    const auto& cpu = tb.device().cpu();
    for (std::size_t i = 0; i < kNumModes; ++i) {
      run.worst_us[i] =
          tb.device().timebase().cycles_to_us(cpu.max_dispatch_latency(mode_from_index(i)));
    }
    run.busy_pct = 100.0 * cpu.busy_fraction();
    run.preemptions = cpu.preemptions();
    run.isrs = cpu.isr_invocations();
  }

  Table t({"CPU policy", "worst dispatch A (us)", "worst B (us)", "worst C (us)",
           "CPU busy (%)", "pre-emptions", "ISRs"});
  for (const auto& run : runs) {
    t.add_row({run.label, Table::num(run.worst_us[0], 2), Table::num(run.worst_us[1], 2),
               Table::num(run.worst_us[2], 2), Table::num(run.busy_pct, 2),
               std::to_string(run.preemptions), std::to_string(run.isrs)});
  }
  t.print(std::cout);

  std::cout << "\nReading: the DRMP's handlers are so brief (the 4.1.1 brevity "
               "requirement) that both policies give near-identical latency on "
               "the real workload — the prototype can ship without pre-emption."
               "\n\n";

  // Counterfactual: if the handlers were NOT brief (a design that partitions
  // more work to software, e.g. doing the datapath ops of 4.2 in the ISR),
  // pre-emption becomes the only way mode A keeps its deadline.
  std::cout << "--- Counterfactual: heavyweight handlers (800 instr, ~the ext-ISA "
               "ops of 4.2 done in software) ---\n";
  Table t2({"CPU policy", "worst dispatch A (us)", "A deadline (SIFS 10 us)"});
  for (const bool preemptive : {false, true}) {
    sim::Scheduler sched(200e6);
    cpu::CpuModel::Config cc;
    cc.cpu_freq_hz = 40e6;
    cc.arch_freq_hz = 200e6;
    cc.preemptive = preemptive;
    cpu::CpuModel cpu(cc);
    sched.add(cpu, "cpu");
    for (Mode m : {Mode::A, Mode::B, Mode::C}) {
      cpu.set_handler(m, [](const cpu::IsrContext&) { return 800u; });
    }
    // Saturating interleave: B and C fire every 3000 cycles, A every 7000.
    for (u32 k = 0; k < 40; ++k) {
      sched.run_until([&] { return false; }, 1500);
      cpu.raise_hw_interrupt(Mode::B, 1, 0);
      sched.run_until([&] { return false; }, 1500);
      cpu.raise_hw_interrupt(Mode::C, 1, 0);
      if (k % 2 == 1) cpu.raise_hw_interrupt(Mode::A, 1, 0);
    }
    sched.run_until([&] { return !cpu.busy(); }, 4'000'000);
    const double worst_a_us = sim::TimeBase(200e6).cycles_to_us(cpu.max_dispatch_latency(Mode::A));
    t2.add_row({preemptive ? "pre-emptive priority" : "run-to-completion",
                Table::num(worst_a_us, 2), worst_a_us <= 10.0 ? "met" : "MISSED"});
  }
  t2.print(std::cout);
  std::cout << "\nReading: with ~20 us handlers a run-to-completion CPU misses "
               "mode A's SIFS-class deadline; pre-emption restores it. This is "
               "the quantitative case for either handler brevity + extended "
               "ISA (the thesis route) or the 4.1.1 priority mechanism.\n";
  return 0;
}
