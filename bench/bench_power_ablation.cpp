// §6.2 — Power-efficiency improvements ablation: the DRMP's power with each
// technique the thesis discusses (clock gating, power shut-off, DVFS)
// enabled in turn, using measured activity factors.
#include "bench_common.hpp"

#include "est/power.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::est;
  using namespace drmp::bench;

  std::cout << "=== Power-saving techniques ablation (thesis §6.2) ===\n\n";

  Testbench tb;
  run_three_mode_tx(tb, 3, 1000);
  const double total = static_cast<double>(tb.scheduler().now());
  std::map<std::string, double> activity;
  for (const rfu::Rfu* r : tb.device().rfus()) {
    auto it = drmp_rfu_blocks().find(r->name());
    if (it != drmp_rfu_blocks().end()) {
      activity[it->second.name] = static_cast<double>(r->busy_cycles()) / total;
    }
  }
  activity["cpu_core"] = tb.device().cpu().busy_fraction();
  activity["packet_bus+arbiter"] =
      static_cast<double>(tb.device().bus().busy_cycles()) / total;

  const Design d = drmp_design();
  const Process p;
  Table t({"Configuration", "Dynamic (mW)", "Leakage (mW)", "Total (mW)",
           "vs baseline"});
  double base_total = 0.0;
  auto row = [&](const std::string& name, PowerTechniques tech) {
    const auto pw = estimate_power(d, p, 200e6, activity, 0.02, tech);
    if (base_total == 0.0) base_total = pw.total_mw();
    t.add_row({name, Table::num(pw.dynamic_mw, 2), Table::num(pw.leakage_mw, 2),
               Table::num(pw.total_mw(), 2),
               Table::num(100.0 * pw.total_mw() / base_total, 1) + "%"});
  };
  row("none (free-running clocks)", {});
  {
    PowerTechniques tech;
    tech.clock_gating = true;
    row("+ clock gating", tech);
  }
  {
    PowerTechniques tech;
    tech.clock_gating = true;
    tech.power_shutoff = true;
    row("+ power shut-off (PSO)", tech);
  }
  {
    PowerTechniques tech;
    tech.clock_gating = true;
    tech.power_shutoff = true;
    tech.dvfs = true;
    tech.dvfs_freq_scale = 0.25;  // 50 MHz still meets timing (Fig. 5.9).
    row("+ DVFS to 50 MHz", tech);
  }
  t.print(std::cout);
  std::cout << "\nReading: the measured >99% slack lets gating collapse the "
               "dynamic power, PSO the leakage, and the Fig. 5.9 headroom "
               "allows DVFS on top — the §6.2 chain reproduced "
               "quantitatively.\n";
  return 0;
}
