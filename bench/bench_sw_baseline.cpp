// §2.1 — The full-software baseline: "Panic et al. estimate that a processor
// will need to run at 1 GHz to keep up with the real-time requirements of a
// WiFi MAC." Reproduces the estimate from first principles and contrasts it
// with the DRMP's measured CPU requirement.
#include "bench_common.hpp"

#include "baseline/software_mac.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::baseline;
  using est::Table;
  using namespace drmp::bench;

  std::cout << "=== Software-only MAC baseline (thesis §2.1) ===\n\n";
  Table t({"Protocol", "SW instr/MPDU", "crypto %", "Throughput-bound (MHz)",
           "Turnaround-bound (MHz)", "Required CPU (MHz)"});
  for (auto proto : {mac::Protocol::WiFi, mac::Protocol::WiMax, mac::Protocol::Uwb}) {
    const auto cost = sw_cost_per_mpdu(proto, 1500);
    const auto freq = sw_required_frequency(proto, 1500);
    t.add_row({mac::to_string(proto), std::to_string(cost.total()),
               Table::num(100.0 * static_cast<double>(cost.crypto) /
                              static_cast<double>(cost.total()),
                          1),
               Table::num(freq.throughput_mhz, 0), Table::num(freq.turnaround_mhz, 0),
               Table::num(freq.required_mhz, 0)});
  }
  t.print(std::cout);

  // Sum for a three-protocol software device vs the DRMP's measured CPU.
  double sum = 0;
  for (auto proto : {mac::Protocol::WiFi, mac::Protocol::WiMax, mac::Protocol::Uwb}) {
    sum += sw_required_frequency(proto, 1500).required_mhz;
  }
  Testbench tb;
  run_three_mode_tx(tb, 2, 1500);
  const double cpu_need_mhz = tb.device().cpu().busy_fraction() *
                              tb.device().cpu().config().cpu_freq_hz / 1e6 / 0.7;
  std::cout << "\nthree concurrent protocols in software: ~" << Table::num(sum, 0)
            << " MHz of CPU — versus the DRMP's measured CPU demand of ~"
            << Table::num(cpu_need_mhz, 1) << " MHz (busy fraction "
            << Table::num(100.0 * tb.device().cpu().busy_fraction(), 2)
            << "% of a 40 MHz core at 70% headroom) — two to three orders of "
               "magnitude less, the §3.5 partition argument.\n";
  return 0;
}
