// Ablation (§3.6.3, Fig. 3.9 sidebar) — fixed worst-case paging vs the
// "intermediate memory-manager module" the thesis proposes but does not
// build. Drives the manager with the per-stage footprints of a realistic
// mixed workload (the same packet sizes the Ch. 5 experiments use) and
// compares footprint, waste and housekeeping cost against the prototype's
// fixed page map.
#include "bench_common.hpp"
#include "hw/memory_manager.hpp"

namespace {

using namespace drmp;

/// Per-stage byte footprints of one transmitted MSDU as it moves through the
/// pipeline pages (Fig. 3.9): Raw -> Crypt -> Scratch (per fragment) -> Tx.
struct StageFootprint {
  u32 raw;
  u32 crypt;
  u32 scratch;
  u32 tx;
};

StageFootprint footprint_for(std::size_t msdu, u32 overhead, u32 frag_threshold) {
  StageFootprint f{};
  f.raw = static_cast<u32>(msdu);
  f.crypt = static_cast<u32>(msdu) + 8;  // ICV/MIC growth.
  f.scratch = std::min<u32>(static_cast<u32>(msdu) + overhead, frag_threshold + overhead);
  f.tx = f.scratch + overhead;
  return f;
}

}  // namespace

int main() {
  using namespace drmp;
  using est::Table;

  std::cout << "=== Ablation: fixed paging vs dynamic memory manager "
               "(thesis 3.6.3 / Fig. 3.9) ===\n\n";

  const u32 fixed_words = kNumModes * hw::kPagesPerMode * hw::kPageWords;

  // Mixed workload: the packet-size mix of the Ch.5 experiments — large WiFi
  // MSDUs, mid-size WiMAX SDUs, small UWB frames — with per-mode pipelines
  // overlapping (one packet in flight per mode, as the paged design assumes).
  struct ModeLoad {
    Mode m;
    const char* name;
    std::vector<u32> msdus;
    u32 overhead;
    u32 frag_threshold;
  };
  const std::vector<ModeLoad> loads = {
      {Mode::A, "WiFi", {1500, 800, 2000, 1200, 400}, 30, 1024},
      {Mode::B, "WiMAX", {700, 1000, 300, 900, 1400}, 14, 1024},
      {Mode::C, "UWB", {200, 500, 150, 350, 250}, 21, 512},
  };

  hw::MemoryManager::Config mc;
  mc.pool_words = fixed_words;  // Same backing store; measure what's touched.
  mc.block_words = 64;
  hw::MemoryManager mm(mc);

  // Replay the pipelines: for each round, every mode allocates its stage
  // regions, holds them for the packet's lifetime, then frees (Rx side uses
  // the mirror-image stages; modelled by a second pass).
  u64 bytes_processed = 0;
  for (std::size_t round = 0; round < loads[0].msdus.size(); ++round) {
    std::vector<u32> held;
    for (const auto& l : loads) {
      const auto f = footprint_for(l.msdus[round], l.overhead, l.frag_threshold);
      for (u32 bytes : {f.raw, f.crypt, f.scratch, f.tx}) {
        const auto h = mm.alloc(l.m, bytes);
        if (h) held.push_back(*h);
        bytes_processed += bytes;
      }
    }
    for (u32 h : held) mm.free(h);
  }

  const u32 dynamic_peak = mm.high_water_words();
  Table t({"Scheme", "reserved (words)", "peak in use (words)", "waste (%)",
           "housekeeping (cycles)", "addressing"});
  t.add_row({"fixed paging (prototype)", std::to_string(fixed_words),
             std::to_string(dynamic_peak),
             Table::num(100.0 * (1.0 - static_cast<double>(dynamic_peak) /
                                           static_cast<double>(fixed_words)),
                        1),
             "0", "static (free)"});
  t.add_row({"memory manager (proposed)", std::to_string(dynamic_peak),
             std::to_string(dynamic_peak), "0.0",
             std::to_string(mm.housekeeping_cycles()), "indirect (+1 lookup)"});
  t.print(std::cout);

  const double sram_word_um2 = 1.6 * 32;  // ~1.6 um^2/bit at 130 nm.
  std::cout << "\nAt 130 nm (~" << Table::num(sram_word_um2, 1)
            << " um^2/word SRAM), the saved "
            << (fixed_words - dynamic_peak) << " words are ~"
            << Table::num((fixed_words - dynamic_peak) * sram_word_um2 / 1e6, 3)
            << " mm^2 of packet memory; the cost is "
            << mm.housekeeping_cycles() << " housekeeping cycles across "
            << mm.allocs() << " allocations ("
            << Table::num(static_cast<double>(mm.housekeeping_cycles()) /
                              static_cast<double>(mm.allocs() + mm.frees()),
                          1)
            << " cycles/op) plus dynamic base addresses. The thesis keeps "
               "fixed paging because the slack analysis (Fig. 6.1) shows "
               "memory, not time, is the abundant resource at 3 modes; the "
               "manager becomes attractive as mode count or packet sizes "
               "diverge.\n";
  std::cout << "\nfragmentation check: free extents after drain = "
            << mm.free_extent_count() << " (1 = fully coalesced), failed allocs = "
            << mm.failed_allocs() << "\n";
  return 0;
}
