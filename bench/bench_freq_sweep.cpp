// §5.5.2 — Frequency of operation: sweep the architecture clock and check
// whether the protocol constraints still hold (the generalization of
// Figs. 5.8/5.9). Reports the ACK turnaround vs the SIFS budget and the
// end-to-end transmit health at each point, locating the breaking clock.
#include "bench_common.hpp"

namespace {

struct Point {
  double arch_mhz;
  bool tx_ok;
  bool rx_ok;
  double ack_turnaround_us;
  bool sifs_met;
};

Point run(double arch_mhz) {
  using namespace drmp;
  using namespace drmp::bench;
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  cfg.arch_freq_hz = arch_mhz * 1e6;
  cfg.cpu_freq_hz = std::min(40e6, arch_mhz * 1e6 / 2.0);
  Testbench tb(cfg);

  Point pt{arch_mhz, false, false, 0.0, false};
  const auto out = tb.send_and_wait(Mode::A, make_payload(1500), 4'000'000'000ull);
  pt.tx_ok = out.success;

  const u64 sent_before = tb.device().phy_tx(Mode::A)->frames_sent();
  const auto delivered = tb.inject_and_wait(Mode::A, make_payload(400), 9, 4'000'000'000ull);
  pt.rx_ok = delivered.has_value();
  tb.run_until([&] { return tb.device().phy_tx(Mode::A)->frames_sent() > sent_before; },
               400'000'000);
  if (tb.device().phy_tx(Mode::A)->frames_sent() > sent_before) {
    const Cycle rx_end = tb.device().rx_rfu().last_rx_end();
    const Cycle ack_start = tb.device().phy_tx(Mode::A)->last_tx_start();
    pt.ack_turnaround_us = tb.device().timebase().cycles_to_us(ack_start - rx_end);
    // The ACK may start at SIFS exactly; "met" = within half a slot of SIFS
    // (the peer would time out at SIFS + slot).
    pt.sifs_met = pt.ack_turnaround_us <= 10.0 + 10.0;
  }
  return pt;
}

}  // namespace

int main() {
  using drmp::est::Table;
  std::cout << "=== Frequency sweep (thesis §5.5.2): at which clock does the "
               "DRMP stop meeting WiFi timing? ===\n\n";
  Table t({"Arch clock (MHz)", "Tx OK", "Rx OK", "ACK turnaround (us)",
           "SIFS budget met"});
  for (double mhz : {5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0}) {
    const auto p = run(mhz);
    t.add_row({Table::num(p.arch_mhz, 0), p.tx_ok ? "yes" : "NO",
               p.rx_ok ? "yes" : "NO", Table::num(p.ack_turnaround_us, 2),
               p.sifs_met ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nReading: the 200 MHz prototype point has large headroom; "
               "timing holds down to tens of MHz and degrades only at "
               "single-digit clocks where the RHCP can no longer stage the "
               "ACK within SIFS — matching the thesis's conclusion that the "
               "clock (and supply) can be scaled down for power (§5.5.1-2).\n";
  return 0;
}
