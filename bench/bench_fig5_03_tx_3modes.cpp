// Fig. 5.3 — Packet Transmission, 3 concurrent protocol modes.
// WiFi, WiMAX and UWB each transmit an MSDU concurrently on the single
// co-processor; the IRC interleaves them, reconfiguring the shared RFUs
// packet-by-packet.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;

  Testbench tb;
  Probe::attach(tb);

  std::cout << "=== Fig 5.3: Packet Transmission - 3 Concurrent Modes "
               "(WiFi + WiMAX + UWB, 1000 B each) ===\n\n";
  const Cycle t0 = tb.scheduler().now();
  run_three_mode_tx(tb, 1, 1000);
  const Cycle t1 = tb.scheduler().now();

  for (std::size_t i = 0; i < kNumModes; ++i) {
    const Mode m = mode_from_index(i);
    std::cout << "mode " << to_string(m) << " ("
              << mac::to_string(tb.config().modes[i].ident.proto)
              << "): completions=" << tb.tx_completions(m)
              << " successes=" << tb.tx_successes(m);
    if (!tb.tx_latencies_us(m).empty()) {
      std::cout << " latency=" << est::Table::num(tb.tx_latencies_us(m).back(), 1) << " us";
    }
    std::cout << "\n";
  }
  std::cout << "crypto RFU reconfigurations (packet-by-packet switching): "
            << tb.device().crypto_rfu().reconfig_count() << "\n\n";
  print_waveform(tb, t0, t1);
  std::cout << "\n";
  print_busy_table(tb, t0, t1, "Entity busy time, 3-mode transmission");
  return 0;
}
