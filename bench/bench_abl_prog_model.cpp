// Ablation (Fig. 4.1) — programming-model alternatives: the thesis's
// interrupt-driven protocol control vs a conventional scheduler/OS-kernel
// model. Measures the DRMP's realized ISR profile and models the scheduler
// alternative's overhead on the same event trace.
#include "bench_common.hpp"

int main() {
  using namespace drmp;
  using namespace drmp::bench;
  using est::Table;

  std::cout << "=== Ablation: interrupt-driven vs scheduler-based protocol "
               "control (thesis Fig. 4.1) ===\n\n";

  Testbench tb;
  run_three_mode_tx(tb, 3, 1000);
  const auto& cpu = tb.device().cpu();
  const double busy_us = tb.device().timebase().cycles_to_us(cpu.busy_cycles());
  const u64 invocations = cpu.isr_invocations();
  const double per_isr_us = busy_us / static_cast<double>(invocations);
  const double dispatch_worst_us =
      tb.device().timebase().cycles_to_us(cpu.max_dispatch_latency());

  // Scheduler model: every event wakes the kernel: context switch into the
  // scheduler (~120 instr), run queue management (~80 instr), context switch
  // into the protocol process (~120 instr), plus a 1 ms tick even when idle.
  const double cpu_mhz = cpu.config().cpu_freq_hz / 1e6;
  const double sched_overhead_us = (120.0 + 80.0 + 120.0) / cpu_mhz;
  const double sched_busy_us =
      busy_us + static_cast<double>(invocations) * sched_overhead_us;
  const double sim_ms = tb.scheduler().now_us() / 1000.0;
  const double tick_us = sim_ms * (50.0 / cpu_mhz);  // 1 kHz tick, ~50 instr.

  Table t({"Model", "CPU busy (us)", "Events", "Avg cost/event (us)",
           "Worst dispatch latency (us)"});
  t.add_row({"interrupt-driven (DRMP, measured)", Table::num(busy_us, 1),
             std::to_string(invocations), Table::num(per_isr_us, 2),
             Table::num(dispatch_worst_us, 2)});
  t.add_row({"scheduler/OS kernel (modelled)", Table::num(sched_busy_us + tick_us, 1),
             std::to_string(invocations), Table::num(per_isr_us + sched_overhead_us, 2),
             Table::num(dispatch_worst_us + sched_overhead_us, 2)});
  t.print(std::cout);

  std::cout << "\nReading: the interrupt-driven model keeps each handler "
               "invocation to a few microseconds on a 40 MHz core, so three "
               "concurrent protocol state machines fit with "
            << Table::num(100.0 * cpu.busy_fraction(), 2)
            << "% CPU utilization; a scheduler-based design roughly doubles "
               "the per-event cost and adds idle ticks — the rationale for "
               "Fig. 4.1(b) (§4.1).\n";
  return 0;
}
