#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <stdexcept>

namespace drmp::obs {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kOffered: return "offered";
    case EventKind::kTxStart: return "tx_start";
    case EventKind::kCollision: return "collision";
    case EventKind::kDelivery: return "delivery";
    case EventKind::kGarbled: return "garbled";
    case EventKind::kDrop: return "drop";
    case EventKind::kComplete: return "complete";
    case EventKind::kExpiry: return "expiry";
    case EventKind::kNavArm: return "nav_arm";
    case EventKind::kNavReset: return "nav_reset";
    case EventKind::kCcaBusy: return "cca_busy";
    case EventKind::kCcaIdle: return "cca_idle";
    case EventKind::kCcaDefer: return "cca_defer";
    case EventKind::kNavDefer: return "nav_defer";
    case EventKind::kEifsWait: return "eifs_wait";
    case EventKind::kRemoteCarrier: return "remote_carrier";
    case EventKind::kTopologyEpoch: return "topology_epoch";
    case EventKind::kAssociate: return "associate";
    case EventKind::kReassociate: return "reassociate";
    case EventKind::kHandoff: return "handoff";
    case EventKind::kRateChange: return "rate_change";
    case EventKind::kSkipSpan: return "skip_span";
    case EventKind::kFastForward: return "fast_forward";
  }
  return "?";
}

bool protocol_domain(EventKind k) noexcept {
  return k < EventKind::kSkipSpan;
}

bool is_span(EventKind k) noexcept {
  return k == EventKind::kTxStart || k == EventKind::kRemoteCarrier ||
         k == EventKind::kSkipSpan || k == EventKind::kFastForward;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  proto_.buf.reserve(std::min<std::size_t>(capacity_, std::size_t{1} << 12));
}

u16 FlightRecorder::track(const std::string& name) {
  const auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  if (track_names_.size() >= 0xFFFF) {
    throw std::length_error("FlightRecorder: track id space exhausted");
  }
  const auto id = static_cast<u16>(track_names_.size());
  track_names_.push_back(name);
  track_ids_.emplace(name, id);
  return id;
}

void FlightRecorder::Ring::push(const Event& ev, std::size_t capacity) {
  if (buf.size() < capacity) {
    buf.push_back(ev);
    return;
  }
  // Full: overwrite the oldest entry so a long run keeps its tail, which is
  // where the interesting divergence usually is.
  buf[head] = ev;
  head = (head + 1) % capacity;
  ++dropped;
}

void FlightRecorder::Ring::append_to(std::vector<Event>& out) const {
  for (std::size_t i = head; i < buf.size(); ++i) out.push_back(buf[i]);
  for (std::size_t i = 0; i < head; ++i) out.push_back(buf[i]);
}

void FlightRecorder::log(Cycle cycle, EventKind kind, u16 track, i64 a,
                         i64 b) {
  const Event ev{cycle, track, kind, a, b};
  (protocol_domain(kind) ? proto_ : exec_).push(ev, capacity_);
}

std::size_t FlightRecorder::size() const noexcept {
  return proto_.buf.size() + exec_.buf.size();
}

std::vector<Event> FlightRecorder::events() const {
  std::vector<Event> out;
  out.reserve(size());
  proto_.append_to(out);
  exec_.append_to(out);
  return out;
}

}  // namespace drmp::obs
