#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace drmp::obs {

void Histogram::observe(u64 v) noexcept {
  ++buckets[static_cast<std::size_t>(std::bit_width(v))];
  ++count;
  sum += v;
  max = std::max(max, v);
}

void Histogram::merge(const Histogram& o) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
  max = std::max(max, o.max);
}

void MetricsRegistry::add(const std::string& name, u64 delta) {
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, i64 v) {
  gauges_[name] = v;
}

void MetricsRegistry::max_gauge(const std::string& name, i64 v) {
  const auto [it, fresh] = gauges_.try_emplace(name, v);
  if (!fresh) it->second = std::max(it->second, v);
}

void MetricsRegistry::observe(const std::string& name, u64 v) {
  hists_[name].observe(v);
}

std::optional<u64> MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  return it->second;
}

std::optional<i64> MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  const auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other,
                                 const std::string& prefix) {
  for (const auto& [name, v] : other.counters_) counters_[prefix + name] += v;
  for (const auto& [name, v] : other.gauges_) max_gauge(prefix + name, v);
  for (const auto& [name, h] : other.hists_) hists_[prefix + name].merge(h);
}

std::string MetricsRegistry::to_text() const {
  // std::map iteration is name-sorted, so the dump is deterministic.
  std::ostringstream os;
  for (const auto& [name, v] : counters_) os << name << " " << v << "\n";
  for (const auto& [name, v] : gauges_) os << name << " " << v << "\n";
  for (const auto& [name, h] : hists_) {
    os << name << " count=" << h.count << " sum=" << h.sum << " max=" << h.max
       << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  const auto key = [&](const std::string& name) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":";
  };
  for (const auto& [name, v] : counters_) {
    key(name);
    os << v;
  }
  for (const auto& [name, v] : gauges_) {
    key(name);
    os << v;
  }
  for (const auto& [name, h] : hists_) {
    key(name);
    os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"max\":" << h.max << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace drmp::obs
