// Flight recorder — per-cell, cycle-stamped structured event log.
//
// Components log fixed-size events (frame lifecycle, NAV arm/defer/reset,
// CCA edges, scheduler skip spans, cross-cell carrier images) into a ring
// buffer through the DRMP_OBS macro, which compiles to nothing under
// -DDRMP_OBS_DISABLE and to a null-checked append otherwise. Exporters in
// obs/trace_export.hpp turn the ring into Chrome trace-event JSON (one
// Perfetto track per station/medium) and a deterministic text timeline for
// golden tests.
//
// Determinism contract (the reason the recorder can sit in golden tests):
// protocol-domain events are logged only from executed component ticks, at
// the exact cycle a protocol edge occurs. The quiescence machinery
// guarantees those ticks execute at identical cycles whether idle-skip is
// on or off, and per-cell recorders mean lockstep workers never interleave
// one buffer — so the recorded stream is byte-identical across
// worker_threads {1,0} x idle_skip on/off. Execution-domain events
// (skip spans, fast-forwards) describe the engine itself, differ across
// those knobs by construction, and are segregated so exporters can keep
// them out of golden comparisons.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace drmp::obs {

enum class EventKind : u8 {
  // ---- Protocol domain: deterministic across schedulers and skip modes ----
  kOffered = 0,     // a = payload bytes, b = mode index
  kTxStart,         // a = source id, b = airtime cycles (span)
  kCollision,       // a = source id of the garbled transmission
  kDelivery,        // a = source id, b = frame bytes
  kGarbled,         // a = source id, b = frame bytes
  kDrop,            // a = source id, b = frame bytes
  kComplete,        // a = 1 delivered / 0 failed, b = retries
  kExpiry,          // a = frame kind, b = mode index
  kNavArm,          // a = NAV expiry cycle
  kNavReset,        // a = NAV expiry cycle it cut short
  kCcaBusy,         // carrier latch rose
  kCcaIdle,         // carrier latch fell
  kCcaDefer,        // backoff deferred on physical carrier
  kNavDefer,        // backoff deferred on virtual carrier only
  kEifsWait,        // IFS stretched to EIFS after a garbled reception
  kRemoteCarrier,   // a = remote source id, b = image cycles (span)
  kTopologyEpoch,   // a = new epoch number, b = matrix station count
  kAssociate,       // a = station id, b = serving cell (-1 = home AP)
  kReassociate,     // a = station id, b = serving cell after the handoff
  kHandoff,         // a = station id, b = target cell
  kRateChange,      // a = new rate index, b = +1 step-up / -1 step-down
  // ---- Execution domain: engine introspection, varies with skip/workers --
  kSkipSpan,        // b = skipped cycles (span)
  kFastForward,     // b = globally-quiescent cycles (span)
};

const char* to_string(EventKind k) noexcept;

/// True for events that describe the simulated protocol (stable across
/// execution strategies); false for engine-execution events.
bool protocol_domain(EventKind k) noexcept;

/// True for events whose `b` field is a duration (rendered as a Chrome
/// "complete" slice instead of an instant).
bool is_span(EventKind k) noexcept;

struct Event {
  Cycle cycle;
  u16 track;
  EventKind kind;
  i64 a;
  i64 b;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Registers (or looks up) a named track — one per station, per medium
  /// band, per engine facet. Track ids are dense and assigned in
  /// registration order, so deterministic construction order gives
  /// deterministic ids.
  u16 track(const std::string& name);
  const std::vector<std::string>& tracks() const noexcept {
    return track_names_;
  }

  void log(Cycle cycle, EventKind kind, u16 track, i64 a = 0, i64 b = 0);

  std::size_t size() const noexcept;
  std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten after their ring filled (oldest-first eviction).
  u64 dropped() const noexcept { return proto_.dropped + exec_.dropped; }

  /// The retained events: the protocol-domain ring oldest-first, then the
  /// execution-domain ring oldest-first. Consumers that need a merged
  /// timeline sort by cycle; the golden text exporter only reads the
  /// protocol prefix anyway.
  std::vector<Event> events() const;

 private:
  // The two domains get separate rings of `capacity_` events each. Skip
  // spans outnumber protocol edges by orders of magnitude on idle-heavy
  // runs, and they only exist when idle-skip is on — sharing one ring
  // would let them evict protocol history in exactly one of the two skip
  // modes, silently breaking the cross-config byte-identity contract once
  // a trace wraps.
  struct Ring {
    std::vector<Event> buf;
    std::size_t head = 0;  // Next overwrite position once full.
    u64 dropped = 0;
    void push(const Event& ev, std::size_t capacity);
    void append_to(std::vector<Event>& out) const;
  };
  Ring proto_;
  Ring exec_;
  std::size_t capacity_;
  std::vector<std::string> track_names_;
  std::map<std::string, u16> track_ids_;
};

}  // namespace drmp::obs

// The logging macro every instrumented component uses. Compiles out whole
// under -DDRMP_OBS_DISABLE (no argument evaluation); otherwise a null
// recorder pointer means "not tracing" and costs one branch.
#if defined(DRMP_OBS_DISABLE)
#define DRMP_OBS(rec, ...) ((void)0)
#else
#define DRMP_OBS(rec, ...)                        \
  do {                                            \
    if ((rec) != nullptr) (rec)->log(__VA_ARGS__); \
  } while (0)
#endif
