// Unified metrics registry — named counter/gauge/histogram aggregates with
// hierarchical merge (device -> cell -> fleet).
//
// The fleet reports grew by hand-threading every new counter through
// DeviceStats/CellStats and a bespoke total_*() accessor. The registry
// replaces that pattern with named handles: a component (or its assembler)
// registers `mac/defers`, `medium.A/collided_frames`, ... once, and
// aggregation is a generic merge instead of a new struct field per counter.
// Merging with a prefix builds the hierarchy: a cell merges its devices
// under `station<id>/`, the fleet merges its cells under `cell<n>/` while
// also folding the unprefixed names together into fleet-wide totals — the
// shape the planned sharded fleet needs, where shards ship registries
// instead of keeping every DeviceStats alive.
//
// Everything is integral and stored in ordered maps, so to_text()/to_json()
// are deterministic and digest-safe to compare across runs. The registry is
// a plain value (copyable); scenario::FleetStats carries one per run.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>

#include "common/types.hpp"

namespace drmp::obs {

/// Log2-bucketed histogram of u64 samples: bucket i counts samples whose
/// bit width is i (bucket 0 is the value 0). Mergeable by bucket addition.
struct Histogram {
  static constexpr std::size_t kBuckets = 65;
  std::array<u64, kBuckets> buckets{};
  u64 count = 0;
  u64 sum = 0;
  u64 max = 0;

  void observe(u64 v) noexcept;
  void merge(const Histogram& o) noexcept;
};

class MetricsRegistry {
 public:
  /// Accumulates `delta` into the named counter (creating it at zero).
  void add(const std::string& name, u64 delta);
  /// Overwrites the named gauge.
  void set_gauge(const std::string& name, i64 v);
  /// Raises the named gauge to at least `v` (merge-friendly high-watermark).
  void max_gauge(const std::string& name, i64 v);
  /// Folds one sample into the named histogram.
  void observe(const std::string& name, u64 v);

  std::optional<u64> counter(const std::string& name) const;
  std::optional<i64> gauge(const std::string& name) const;
  const Histogram* histogram(const std::string& name) const;

  /// Merges `other` into this registry: counters and histogram buckets add,
  /// gauges take the maximum (the only order-independent choice). A
  /// non-empty `prefix` namespaces every merged name — the hierarchy step.
  void merge_from(const MetricsRegistry& other, const std::string& prefix = {});

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && hists_.empty();
  }
  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + hists_.size();
  }

  /// Deterministic line-per-metric dump (sorted by name, integers only).
  std::string to_text() const;
  /// Deterministic flat JSON object (sorted keys; histograms as count/sum/max).
  std::string to_json() const;

 private:
  std::map<std::string, u64> counters_;
  std::map<std::string, i64> gauges_;
  std::map<std::string, Histogram> hists_;
};

}  // namespace drmp::obs
