// Exporters over flight-recorder rings.
//
// chrome_trace() emits Chrome trace-event JSON (the array-of-events form
// Perfetto and chrome://tracing both load): one process per cell, one
// thread track per registered track name, complete "X" slices for spans
// and "i" instants otherwise. Timestamps are raw integer cycles — the
// viewer's microsecond label reads as cycles, which keeps the file
// byte-stable (no floats anywhere).
//
// text_timeline() renders only protocol-domain events, in log order, as
// fixed-format lines — the golden-test surface. Execution-domain events
// are excluded because they legitimately differ across idle-skip and
// worker-count settings.
#pragma once

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace drmp::obs {

std::string chrome_trace(const std::vector<const FlightRecorder*>& cells);
std::string text_timeline(const std::vector<const FlightRecorder*>& cells);

}  // namespace drmp::obs
