#include "obs/trace_export.hpp"

#include <cstdio>
#include <sstream>

namespace drmp::obs {

namespace {

// Everything emitted is integral, so plain operator<< is locale-proof.
void chrome_event(std::ostringstream& os, std::size_t pid, const Event& ev) {
  os << R"({"name":")" << to_string(ev.kind) << R"(","ph":")"
     << (is_span(ev.kind) ? 'X' : 'i') << R"(","ts":)" << ev.cycle
     << R"(,"pid":)" << pid << R"(,"tid":)" << ev.track;
  if (is_span(ev.kind)) {
    os << R"(,"dur":)" << (ev.b > 0 ? ev.b : 1);
  } else {
    os << R"(,"s":"t")";  // Thread-scoped instant.
  }
  os << R"(,"args":{"a":)" << ev.a << R"(,"b":)" << ev.b << "}}";
}

}  // namespace

std::string chrome_trace(const std::vector<const FlightRecorder*>& cells) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (std::size_t pid = 0; pid < cells.size(); ++pid) {
    if (cells[pid] == nullptr) continue;
    sep();
    os << R"({"name":"process_name","ph":"M","pid":)" << pid
       << R"(,"args":{"name":"cell)" << pid << R"("}})";
    const auto& tracks = cells[pid]->tracks();
    for (std::size_t t = 0; t < tracks.size(); ++t) {
      sep();
      os << R"({"name":"thread_name","ph":"M","pid":)" << pid << R"(,"tid":)"
         << t << R"(,"args":{"name":")" << tracks[t] << R"("}})";
    }
    for (const Event& ev : cells[pid]->events()) {
      sep();
      chrome_event(os, pid, ev);
    }
  }
  os << "]}\n";
  return os.str();
}

std::string text_timeline(const std::vector<const FlightRecorder*>& cells) {
  std::ostringstream os;
  char line[160];
  for (std::size_t pid = 0; pid < cells.size(); ++pid) {
    if (cells[pid] == nullptr) continue;
    const auto& tracks = cells[pid]->tracks();
    for (const Event& ev : cells[pid]->events()) {
      if (!protocol_domain(ev.kind)) continue;
      const char* track = ev.track < tracks.size()
                              ? tracks[ev.track].c_str()
                              : "?";
      std::snprintf(line, sizeof(line),
                    "cell%zu @%012llu %-12s %-14s a=%lld b=%lld\n", pid,
                    static_cast<unsigned long long>(ev.cycle), track,
                    to_string(ev.kind), static_cast<long long>(ev.a),
                    static_cast<long long>(ev.b));
      os << line;
    }
  }
  return os.str();
}

}  // namespace drmp::obs
