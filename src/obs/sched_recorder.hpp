// Adapter from sim::SchedulerObserver onto a FlightRecorder: execution-
// domain events (skip spans, fast-forwards) land on per-component tracks
// prefixed "sched/". These events describe the engine, not the protocol —
// they legitimately differ across idle-skip and worker settings, and the
// text-timeline exporter excludes them for exactly that reason.
#pragma once

#include <string>
#include <string_view>

#include "obs/flight_recorder.hpp"
#include "sim/scheduler.hpp"

namespace drmp::obs {

class SchedRecorder final : public sim::SchedulerObserver {
 public:
  explicit SchedRecorder(FlightRecorder& rec)
      : rec_(&rec), ff_track_(rec.track("sched/fast_forward")) {}

  void on_skip_span(std::string_view name, Cycle from, Cycle len) override {
    const u16 track = rec_->track("sched/" + std::string(name));
    rec_->log(from, EventKind::kSkipSpan, track, 0, static_cast<i64>(len));
  }

  void on_fast_forward(Cycle from, Cycle len) override {
    rec_->log(from, EventKind::kFastForward, ff_track_, 0,
              static_cast<i64>(len));
  }

 private:
  FlightRecorder* rec_;
  u16 ff_track_;
};

}  // namespace drmp::obs
