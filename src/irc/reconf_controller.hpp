// The Reconfiguration Controller (thesis §3.6.1.2, Fig. 3.7): "There is just
// one instance of this controller in the IRC because only one RFU can be
// configured at a time." It triggers an RFU to switch configuration (the
// CS/MA mechanism is transparent to it), waits for RDONE, then updates the
// rfu_table.
#pragma once

#include <array>
#include <optional>

#include "irc/tables.hpp"
#include "rfu/rfu.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace drmp::irc {

class ReconfController : public sim::Clockable {
 public:
  /// Statechart states (Fig. 3.7).
  enum class State : u8 { Idle = 0, Wait4Oct, TriggerRcnfgWait, Wait4Rfut, UpdateRfut };

  struct Env {
    OpCodeTable* oct = nullptr;
    RfuTable* rfut = nullptr;
    TableMutex* oct_mutex = nullptr;
    TableMutex* rfut_mutex = nullptr;
    std::array<rfu::Rfu*, hw::kMaxRfus>* rfus = nullptr;
    sim::StatsRegistry* stats = nullptr;
  };

  explicit ReconfController(Env env) : env_(env) {}

  /// TH_R submits a reconfiguration request; one outstanding per mode.
  void submit(Mode mode, u8 rfu_id, u8 target_state);

  /// TH_R polls for (and consumes) the RC_DONE event of its request.
  bool take_done(Mode mode);

  /// Non-consuming RC_DONE peek — feeds the requesting TH_R's quiescence
  /// bound without disturbing the take_done handshake.
  bool done_pending(Mode mode) const noexcept { return done_[index(mode)]; }

  State state() const noexcept { return state_; }
  u64 reconfigs_performed() const noexcept { return count_; }
  void tick() override;

  /// True when a tick is pure statistics sampling (Irc-level quiescence).
  bool quiescent() const noexcept {
    if (state_ != State::Idle) return false;
    for (const auto& p : pending_) {
      if (p.has_value()) return false;
    }
    return true;
  }

  /// Per-state quiescence bound feeding Irc::quiescent_for(): the only
  /// long-lived wait, TriggerRcnfgWait, is released by the RFU's RDONE
  /// transition, which fires the completion waker registered by
  /// Irc::register_rfu — so the IRC can sleep through the whole
  /// reconfiguration stream instead of polling RFU_RDONE every cycle.
  Cycle quiescent_for_bound() const noexcept {
    switch (state_) {
      case State::Idle: {
        for (const auto& p : pending_) {
          if (p.has_value()) return 0;
        }
        return sim::Clockable::kIdleForever;
      }
      case State::TriggerRcnfgWait: {
        const Request& r = *pending_[index(serving_)];
        return (*env_.rfus)[r.rfu_id]->rdone() ? 0 : sim::Clockable::kIdleForever;
      }
      default:
        return 0;
    }
  }
  /// Bulk-accounts n skipped constant-Idle ticks.
  void skip_idle(Cycle n) override;

  /// Checkpoint support (sim/checkpoint.hpp).
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(state_);
    ar.io(pending_);
    ar.io(done_);
    ar.io(serving_);
    ar.io(count_);
  }

 private:
  struct Request {
    u8 rfu_id;
    u8 target_state;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(rfu_id);
      ar.io(target_state);
    }
  };

  Env env_;
  State state_ = State::Idle;
  std::array<std::optional<Request>, kNumModes> pending_{};
  std::array<bool, kNumModes> done_{};
  Mode serving_ = Mode::A;
  u64 count_ = 0;
  /// Cached stats sinks (string-keyed lookup is too hot for the tick path).
  sim::BusyCounter* busy_stat_ = nullptr;
  sim::StateOccupancy* occ_stat_ = nullptr;
};

}  // namespace drmp::irc
