#include "irc/task_handler.hpp"

#include <algorithm>
#include <cassert>

#include "hw/memory_map.hpp"

namespace drmp::irc {

const char* to_string(ThRState s) {
  switch (s) {
    case ThRState::Idle: return "IDLE";
    case ThRState::Wait4Oct: return "WAIT4_OCT";
    case ThRState::Wait4Rfut: return "WAIT4_RFUT";
    case ThRState::Sleep: return "SLEEP";
    case ThRState::UseRfut1: return "USE_RFUT1";
    case ThRState::Wait4Rc: return "WAIT4_RC";
    case ThRState::UseRcWait: return "USE_RC_WAIT";
    case ThRState::Wait4Rfut2: return "WAIT4_RFUT2";
    case ThRState::UseRfut2: return "USE_RFUT2";
  }
  return "?";
}

const char* to_string(ThMState s) {
  switch (s) {
    case ThMState::Idle: return "IDLE";
    case ThMState::Wait4Oct: return "WAIT4_OCT";
    case ThMState::Wait4Rfut: return "WAIT4_RFUT";
    case ThMState::Sleep1: return "SLEEP1";
    case ThMState::Sleep2: return "SLEEP2";
    case ThMState::UseRfut1: return "USE_RFUT1";
    case ThMState::Wait4Pbus: return "WAIT4_PBUS";
    case ThMState::UsePbus: return "USE_PBUS";
    case ThMState::Wait4RfuDone: return "WAIT4_RFUDONE";
    case ThMState::Wait4Rfut2: return "WAIT4_RFUT2";
    case ThMState::UseRfut2: return "USE_RFUT2";
  }
  return "?";
}

void TaskHandler::start(ServiceRequest req) {
  assert(!active_ && "task handler busy: In-Interface must queue requests");
  assert(!req.ops.empty());
  req_ = std::move(req);
  active_ = true;
  thr_cleared_.assign(req_.ops.size(), false);
  thr_queue_.clear();
  for (std::size_t i = 0; i < req_.ops.size(); ++i) thr_queue_.push_back(i);
  thr_state_ = ThRState::Idle;
  thm_state_ = ThMState::Idle;
  thm_started_ = false;
  thm_idx_ = 0;
  pbus_seq_ = 0;
  thr_woken_ = thm_woken_ = false;
}

void TaskHandler::wake(ThKind kind) {
  if (kind == ThKind::ThR) {
    thr_woken_ = true;
  } else {
    thm_woken_ = true;
  }
}

void TaskHandler::thr_clear_op(std::size_t idx) {
  thr_cleared_[idx] = true;
  if (idx == 0 || !thm_started_) {
    // "As soon as the TH_R has cleared the first op-code of the
    // super-op-code, it triggers the corresponding TH_M" (§3.6.1.2).
    thm_started_ = true;
  }
  // TICK: wake TH_M if it sleeps on this op's preparation.
  if (thm_state_ == ThMState::Sleep1 && thm_idx_ == idx) {
    thm_woken_ = true;
  }
}

void TaskHandler::thm_request_redo(std::size_t idx) {
  thr_cleared_[idx] = false;
  thr_queue_.push_back(idx);
}

void TaskHandler::release_rfu_and_wake(u8 rfu_id) {
  auto& e = env_.rfut->entry(rfu_id);
  e.in_use = false;
  e.reserved_by_thr = false;
  // Wake every queued waiter; the freed unit is re-arbitrated among them on
  // their next table access (losers re-queue). Waking only the queue head
  // deadlocks when the woken controller declines the unit — e.g. it finds
  // the configuration state changed and hands the op back to its TH_R —
  // because the declined unit stays free while the tail waiter sleeps
  // forever. Popping in queue order preserves the Table 3.4 FCFS intent:
  // the earlier waiter re-checks first within the cycle.
  while (auto waiter = env_.rfut->pop_waiter(rfu_id)) {
    (*env_.handlers)[index(waiter->mode)]->wake(waiter->kind);
  }
}

void TaskHandler::complete_request() {
  active_ = false;
  ++completed_;
  if (on_complete) on_complete(mode_, req_);
}

void TaskHandler::ensure_sinks() {
  if (sinks_.ready) return;
  // One-time sink resolution: string-keyed lookups are too hot for the
  // per-cycle path (they dominated simulation wall time).
  const std::string m = to_string(mode_);
  if (env_.stats != nullptr) {
    sinks_.thr_occ = &env_.stats->occupancy("irc.thr." + m);
    sinks_.thm_occ = &env_.stats->occupancy("irc.thm." + m);
    sinks_.thr_busy = &env_.stats->busy("irc.thr." + m);
    sinks_.thm_busy = &env_.stats->busy("irc.thm." + m);
  }
  if (env_.trace != nullptr) {
    sinks_.thr_chan = &env_.trace->channel("thr." + m);
    sinks_.thm_chan = &env_.trace->channel("thm." + m);
  }
  sinks_.ready = true;
}

Cycle TaskHandler::quiescent_for_bound() const noexcept {
  if (!active_) return sim::Clockable::kIdleForever;  // Both charts in Idle.
  Cycle thr_q;
  switch (thr_state_) {
    case ThRState::Idle:
      thr_q = thr_queue_.empty() ? sim::Clockable::kIdleForever : 0;
      break;
    case ThRState::Sleep:
      // Released by release_rfu_and_wake from a sibling handler — which can
      // only run while this IRC ticks, so a sleeping IRC cannot miss it.
      thr_q = thr_woken_ ? 0 : sim::Clockable::kIdleForever;
      break;
    case ThRState::UseRcWait:
      // RC_DONE is produced by the RC statechart; while it is outstanding
      // the RC's own bound keeps the IRC awake, and once flagged the next
      // tick consumes it.
      thr_q = env_.rc->done_pending(mode_) ? 0 : sim::Clockable::kIdleForever;
      break;
    default:
      thr_q = 0;
      break;
  }
  if (thr_q == 0) return 0;
  Cycle thm_q;
  switch (thm_state_) {
    case ThMState::Idle:
      thm_q = (thm_started_ && thm_idx_ < req_.ops.size())
                  ? 0
                  : sim::Clockable::kIdleForever;
      break;
    case ThMState::Sleep1:
    case ThMState::Sleep2:
      thm_q = thm_woken_ ? 0 : sim::Clockable::kIdleForever;
      break;
    case ThMState::Wait4RfuDone: {
      // The unit's DONE transition fires the completion waker registered by
      // Irc::register_rfu, so sleeping through the execution span observes
      // DONE on exactly the tick the per-cycle poll would have.
      const rfu::Rfu* unit = (*env_.rfus)[thm_entry_.rfu_id];
      thm_q = unit->done() ? 0 : sim::Clockable::kIdleForever;
      break;
    }
    default:
      thm_q = 0;
      break;
  }
  return std::min(thr_q, thm_q);
}

void TaskHandler::skip_idle(Cycle n) {
  ensure_sinks();
  if (sinks_.thr_occ != nullptr) {
    sinks_.thr_occ->sample_n(static_cast<int>(thr_state_), n);
    sinks_.thm_occ->sample_n(static_cast<int>(thm_state_), n);
    sinks_.thr_busy->sample_n(thr_state_ != ThRState::Idle, n);
    sinks_.thm_busy->sample_n(thm_state_ != ThMState::Idle, n);
  }
}

void TaskHandler::tick() {
  tick_thr();
  tick_thm();
  ensure_sinks();
  if (sinks_.thr_occ != nullptr) {
    sinks_.thr_occ->sample(static_cast<int>(thr_state_));
    sinks_.thm_occ->sample(static_cast<int>(thm_state_));
    sinks_.thr_busy->sample(thr_state_ != ThRState::Idle);
    sinks_.thm_busy->sample(thm_state_ != ThMState::Idle);
  }
  if (sinks_.thr_chan != nullptr) {
    // Recorded every tick; the channel stores change events only.
    const Cycle now = env_.bus->total_cycles();
    sinks_.thr_chan->record(now, static_cast<int>(thr_state_));
    sinks_.thm_chan->record(now, static_cast<int>(thm_state_));
  }
}

// --------------------------------------------------------------------- TH_R

void TaskHandler::tick_thr() {
  const u8 self = mutex_owner(mode_, ThKind::ThR);
  switch (thr_state_) {
    case ThRState::Idle: {
      if (!active_ || thr_queue_.empty()) return;
      thr_cur_ = thr_queue_.front();
      thr_state_ = ThRState::Wait4Oct;  // GO / read service-request op-code.
      return;
    }
    case ThRState::Wait4Oct: {
      if (!env_.oct_mutex->try_lock(self)) return;
      const rfu::Op op = req_.ops[thr_cur_].op;
      assert(env_.oct->contains(op) && "unknown op-code in service request");
      thr_entry_ = env_.oct->lookup(op);
      env_.oct_mutex->unlock(self);
      thr_state_ = ThRState::Wait4Rfut;
      return;
    }
    case ThRState::Wait4Rfut: {
      if (!env_.rfut_mutex->try_lock(self)) return;
      auto& e = env_.rfut->entry(thr_entry_.rfu_id);
      const bool needs_reconf = (e.c_state != thr_entry_.reconf_state);
      if (e.in_use) {
        if (e.owner == mode_ && e.reserved_by_thr) {
          // Our own earlier reservation (redo path): continue with it.
          env_.rfut_mutex->unlock(self);
          if (!needs_reconf) {
            thr_queue_.pop_front();
            thr_clear_op(thr_cur_);
            thr_state_ = ThRState::Idle;
          } else {
            thr_state_ = ThRState::Wait4Rc;
          }
          return;
        }
        // "[RFU in use by other mode] / Queue in RFUT" -> SLEEP.
        const bool queued = env_.rfut->queue_waiter(
            thr_entry_.rfu_id, {mode_, ThKind::ThR, static_cast<u8>(index(mode_))});
        env_.rfut_mutex->unlock(self);
        if (queued) {
          thr_state_ = ThRState::Sleep;
        }  // else retry the lookup next cycle (both queue slots full).
        return;
      }
      if (!needs_reconf) {
        // "[RFU already in required config. state]": clear without reserving.
        env_.rfut_mutex->unlock(self);
        thr_queue_.pop_front();
        thr_clear_op(thr_cur_);
        thr_state_ = ThRState::Idle;
        return;
      }
      // Reserve for reconfiguration.
      e.in_use = true;
      e.owner = mode_;
      e.reserved_by_thr = true;
      env_.rfut_mutex->unlock(self);
      thr_state_ = ThRState::UseRfut1;
      return;
    }
    case ThRState::Sleep: {
      if (!thr_woken_) return;
      thr_woken_ = false;
      thr_state_ = ThRState::Wait4Rfut;
      return;
    }
    case ThRState::UseRfut1: {
      // "Update RFU Table 'in_use'; check its state" — one table cycle.
      thr_state_ = ThRState::Wait4Rc;
      return;
    }
    case ThRState::Wait4Rc: {
      env_.rc->submit(mode_, thr_entry_.rfu_id, thr_entry_.reconf_state);
      thr_state_ = ThRState::UseRcWait;
      return;
    }
    case ThRState::UseRcWait: {
      if (!env_.rc->take_done(mode_)) return;  // Await RC_DONE.
      thr_state_ = ThRState::Wait4Rfut2;
      return;
    }
    case ThRState::Wait4Rfut2: {
      if (!env_.rfut_mutex->try_lock(self)) return;
      thr_state_ = ThRState::UseRfut2;
      return;
    }
    case ThRState::UseRfut2: {
      // Reservation stays (owner = this mode) for TH_M to claim.
      env_.rfut_mutex->unlock(self);
      thr_queue_.pop_front();
      thr_clear_op(thr_cur_);
      thr_state_ = ThRState::Idle;
      return;
    }
  }
}

// --------------------------------------------------------------------- TH_M

void TaskHandler::tick_thm() {
  const u8 self = mutex_owner(mode_, ThKind::ThM);
  switch (thm_state_) {
    case ThMState::Idle: {
      if (!active_ || !thm_started_) return;
      if (thm_idx_ >= req_.ops.size()) return;  // complete_request handles exit.
      thm_state_ = ThMState::Wait4Oct;  // GO_THM / read op-code.
      return;
    }
    case ThMState::Wait4Oct: {
      if (!env_.oct_mutex->try_lock(self)) return;
      thm_entry_ = env_.oct->lookup(req_.ops[thm_idx_].op);
      env_.oct_mutex->unlock(self);
      thm_state_ = ThMState::Wait4Rfut;
      return;
    }
    case ThMState::Wait4Rfut: {
      if (!thr_cleared_[thm_idx_]) {
        // "[RFU in use by same mode's TH_R]" -> SLEEP1, woken by TICK.
        thm_state_ = ThMState::Sleep1;
        return;
      }
      if (!env_.rfut_mutex->try_lock(self)) return;
      auto& e = env_.rfut->entry(thm_entry_.rfu_id);
      if (e.in_use) {
        if (e.owner == mode_) {
          if (e.c_state != thm_entry_.reconf_state) {
            // Stale configuration under our own reservation: redo.
            env_.rfut_mutex->unlock(self);
            thm_request_redo(thm_idx_);
            thm_state_ = ThMState::Sleep1;
            return;
          }
          e.reserved_by_thr = false;  // Claim the TH_R reservation.
          env_.rfut_mutex->unlock(self);
          thm_state_ = ThMState::UseRfut1;
          return;
        }
        // "[RFU in use by other mode] / Queue in RFUT" -> SLEEP2.
        const bool queued = env_.rfut->queue_waiter(
            thm_entry_.rfu_id, {mode_, ThKind::ThM, static_cast<u8>(index(mode_))});
        env_.rfut_mutex->unlock(self);
        if (queued) {
          thm_state_ = ThMState::Sleep2;
        }
        return;
      }
      if (e.c_state != thm_entry_.reconf_state) {
        // Free but reconfigured away by another mode since TH_R checked:
        // hand the op back to TH_R.
        env_.rfut_mutex->unlock(self);
        thm_request_redo(thm_idx_);
        thm_state_ = ThMState::Sleep1;
        return;
      }
      e.in_use = true;
      e.owner = mode_;
      e.reserved_by_thr = false;
      env_.rfut_mutex->unlock(self);
      thm_state_ = ThMState::UseRfut1;
      return;
    }
    case ThMState::Sleep1: {
      if (!thm_woken_) return;
      thm_woken_ = false;
      thm_state_ = ThMState::Wait4Rfut;
      return;
    }
    case ThMState::Sleep2: {
      if (!thm_woken_) return;
      thm_woken_ = false;
      thm_state_ = ThMState::Wait4Rfut;
      return;
    }
    case ThMState::UseRfut1: {
      // Assert in_use — one table cycle — then request the packet bus.
      env_.bus->request_for_irc(mode_);
      thm_state_ = ThMState::Wait4Pbus;
      return;
    }
    case ThMState::Wait4Pbus: {
      if (!env_.bus->granted_irc(mode_)) return;
      pbus_seq_ = 0;
      thm_state_ = ThMState::UsePbus;
      return;
    }
    case ThMState::UsePbus: {
      if (!env_.bus->can_access()) return;
      const OpCall& call = req_.ops[thm_idx_];
      assert(call.args.size() == thm_entry_.nargs &&
             "op-code argument count mismatch with op_code_table");
      const u32 trig = hw::rfu_trigger_addr(thm_entry_.rfu_id);
      const u32 total = 1 + thm_entry_.nargs + 1;  // cmd + args + execute.
      if (pbus_seq_ == 0) {
        env_.bus->write(trig, rfu::make_command_word(call.op, thm_entry_.nargs));
      } else if (pbus_seq_ <= thm_entry_.nargs) {
        env_.bus->write(trig, call.args[pbus_seq_ - 1]);
      } else {
        env_.bus->write(trig, 0);  // Execute trigger.
      }
      if (++pbus_seq_ < total) return;
      if (thm_entry_.detached) {
        // Channel-access style RFUs run without the bus.
        env_.bus->release(mode_);
        env_.bus->triggers().clear_triggered_flag(thm_entry_.rfu_id);
      } else {
        // Hand the bus to the RFU (grant-delay promotes once the trigger has
        // been observed).
        env_.bus->request_for_rfu(mode_, thm_entry_.rfu_id);
      }
      thm_state_ = ThMState::Wait4RfuDone;
      return;
    }
    case ThMState::Wait4RfuDone: {
      rfu::Rfu* unit = (*env_.rfus)[thm_entry_.rfu_id];
      if (!unit->done()) return;
      unit->clear_done();
      if (!thm_entry_.detached) env_.bus->release(mode_);
      thm_state_ = ThMState::Wait4Rfut2;
      return;
    }
    case ThMState::Wait4Rfut2: {
      if (!env_.rfut_mutex->try_lock(self)) return;
      thm_state_ = ThMState::UseRfut2;
      return;
    }
    case ThMState::UseRfut2: {
      release_rfu_and_wake(thm_entry_.rfu_id);
      env_.rfut_mutex->unlock(mutex_owner(mode_, ThKind::ThM));
      ++thm_idx_;
      thm_state_ = ThMState::Idle;
      if (thm_idx_ >= req_.ops.size()) {
        complete_request();
      }
      return;
    }
  }
}

}  // namespace drmp::irc
