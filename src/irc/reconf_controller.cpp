#include "irc/reconf_controller.hpp"

#include <cassert>

namespace drmp::irc {

void ReconfController::submit(Mode mode, u8 rfu_id, u8 target_state) {
  assert(!pending_[index(mode)].has_value() && "RC: one outstanding request per mode");
  pending_[index(mode)] = Request{rfu_id, target_state};
  done_[index(mode)] = false;
}

bool ReconfController::take_done(Mode mode) {
  if (!done_[index(mode)]) return false;
  done_[index(mode)] = false;
  return true;
}

void ReconfController::skip_idle(Cycle n) {
  if (env_.stats != nullptr) {
    if (busy_stat_ == nullptr) {
      busy_stat_ = &env_.stats->busy("irc.rc");
      occ_stat_ = &env_.stats->occupancy("irc.rc");
    }
    busy_stat_->sample_n(state_ != State::Idle, n);
    occ_stat_->sample_n(static_cast<int>(state_), n);
  }
}

void ReconfController::tick() {
  if (env_.stats != nullptr) {
    if (busy_stat_ == nullptr) {
      busy_stat_ = &env_.stats->busy("irc.rc");
      occ_stat_ = &env_.stats->occupancy("irc.rc");
    }
    busy_stat_->sample(state_ != State::Idle);
    occ_stat_->sample(static_cast<int>(state_));
  }

  switch (state_) {
    case State::Idle: {
      // Serve pending requests in mode-priority order (A > B > C).
      for (std::size_t i = 0; i < kNumModes; ++i) {
        if (pending_[i]) {
          serving_ = mode_from_index(i);
          state_ = State::Wait4Oct;
          return;
        }
      }
      return;
    }
    case State::Wait4Oct: {
      // Read the op-code table (config vector lookup) under its mutex.
      if (!env_.oct_mutex->try_lock(kMutexOwnerRc)) return;
      env_.oct_mutex->unlock(kMutexOwnerRc);
      // Trigger the RFU's reconfiguration (RC_en + RC_cnfgst).
      const Request& r = *pending_[index(serving_)];
      rfu::Rfu* unit = (*env_.rfus)[r.rfu_id];
      assert(unit != nullptr && "RC: reconfiguring an unregistered RFU");
      unit->rc_configure(r.target_state);
      state_ = State::TriggerRcnfgWait;
      return;
    }
    case State::TriggerRcnfgWait: {
      const Request& r = *pending_[index(serving_)];
      rfu::Rfu* unit = (*env_.rfus)[r.rfu_id];
      if (!unit->rdone()) return;  // Wait for RFU_RDONE.
      unit->clear_rdone();
      state_ = State::Wait4Rfut;
      return;
    }
    case State::Wait4Rfut: {
      if (!env_.rfut_mutex->try_lock(kMutexOwnerRc)) return;
      state_ = State::UpdateRfut;
      return;
    }
    case State::UpdateRfut: {
      const Request r = *pending_[index(serving_)];
      auto& e = env_.rfut->entry(r.rfu_id);
      e.c_state = r.target_state;
      e.nstates = (*env_.rfus)[r.rfu_id]->nstates();
      env_.rfut_mutex->unlock(kMutexOwnerRc);
      pending_[index(serving_)].reset();
      done_[index(serving_)] = true;  // RC_DONE to the requesting TH_R.
      ++count_;
      state_ = State::Idle;
      return;
    }
  }
}

}  // namespace drmp::irc
