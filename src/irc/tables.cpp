#include "irc/tables.hpp"

namespace drmp::irc {

using rfu::Op;
namespace cfg = rfu::cfg;

OpCodeTable::OpCodeTable() {
  // Crypto (MA-RFU; one state per cipher).
  add(Op::EncryptRc4, {rfu::kCryptoRfu, cfg::kCryptoRc4, 4, false});
  add(Op::DecryptRc4, {rfu::kCryptoRfu, cfg::kCryptoRc4, 4, false});
  add(Op::EncryptAes, {rfu::kCryptoRfu, cfg::kCryptoAes, 4, false});
  add(Op::DecryptAes, {rfu::kCryptoRfu, cfg::kCryptoAes, 4, false});
  add(Op::EncryptDes, {rfu::kCryptoRfu, cfg::kCryptoDes, 4, false});
  add(Op::DecryptDes, {rfu::kCryptoRfu, cfg::kCryptoDes, 4, false});
  // Header check.
  add(Op::HcsAppend16, {rfu::kHdrCheckRfu, cfg::kHcsCrc16, 2, false});
  add(Op::HcsVerify16, {rfu::kHdrCheckRfu, cfg::kHcsCrc16, 3, false});
  add(Op::HcsPatch8, {rfu::kHdrCheckRfu, cfg::kHcsCrc8, 1, false});
  add(Op::HcsVerify8, {rfu::kHdrCheckRfu, cfg::kHcsCrc8, 2, false});
  // FCS.
  add(Op::FcsAppend, {rfu::kFcsRfu, cfg::kFcsCrc32, 1, false});
  add(Op::FcsVerify, {rfu::kFcsRfu, cfg::kFcsCrc32, 2, false});
  // Fragmentation.
  add(Op::FragmentWifi, {rfu::kFragRfu, cfg::kProtoWifi, 4, false});
  add(Op::FragmentUwb, {rfu::kFragRfu, cfg::kProtoUwb, 4, false});
  add(Op::FragmentWimax, {rfu::kFragRfu, cfg::kProtoWimax, 4, false});
  add(Op::DefragAppendWifi, {rfu::kDefragRfu, cfg::kProtoWifi, 3, false});
  add(Op::DefragAppendUwb, {rfu::kDefragRfu, cfg::kProtoUwb, 3, false});
  add(Op::DefragAppendWimax, {rfu::kDefragRfu, cfg::kProtoWimax, 3, false});
  // Assembly / parse.
  add(Op::AssembleWifi, {rfu::kHeaderRfu, cfg::kProtoWifi, 3, false});
  add(Op::AssembleUwb, {rfu::kHeaderRfu, cfg::kProtoUwb, 3, false});
  add(Op::AssembleWimax, {rfu::kHeaderRfu, cfg::kProtoWimax, 3, false});
  add(Op::ParseWifi, {rfu::kHeaderRfu, cfg::kProtoWifi, 2, false});
  add(Op::ParseUwb, {rfu::kHeaderRfu, cfg::kProtoUwb, 2, false});
  add(Op::ParseWimax, {rfu::kHeaderRfu, cfg::kProtoWimax, 2, false});
  add(Op::ExtractWifi, {rfu::kHeaderRfu, cfg::kProtoWifi, 2, false});
  add(Op::ExtractUwb, {rfu::kHeaderRfu, cfg::kProtoUwb, 2, false});
  add(Op::ExtractWimax, {rfu::kHeaderRfu, cfg::kProtoWimax, 2, false});
  // Tx / Rx.
  add(Op::TxFrameWifi, {rfu::kTxRfu, cfg::kProtoWifi, 3, false});
  // Two words more than TxFrameWifi: the latched SIFS anchor (lo, hi).
  add(Op::TxFrameWifiAnchored, {rfu::kTxRfu, cfg::kProtoWifi, 5, false});
  add(Op::TxFrameUwb, {rfu::kTxRfu, cfg::kProtoUwb, 3, false});
  add(Op::TxFrameWimax, {rfu::kTxRfu, cfg::kProtoWimax, 3, false});
  add(Op::RxDrainWifi, {rfu::kRxRfu, cfg::kProtoWifi, 4, false});
  add(Op::RxDrainUwb, {rfu::kRxRfu, cfg::kProtoUwb, 4, false});
  add(Op::RxDrainWimax, {rfu::kRxRfu, cfg::kProtoWimax, 4, false});
  // ACK generation.
  add(Op::AckGenWifi, {rfu::kAckRfu, cfg::kProtoWifi, 4, false});
  add(Op::AckGenUwb, {rfu::kAckRfu, cfg::kProtoUwb, 4, false});
  // One word more than AckGen: the CTS carries the remaining NAV duration.
  add(Op::CtsGenWifi, {rfu::kAckRfu, cfg::kProtoWifi, 5, false});
  // Likewise for the mid-burst fragment ACK (NAV chained to the next
  // fragment's ACK).
  add(Op::AckGenWifiDur, {rfu::kAckRfu, cfg::kProtoWifi, 5, false});
  // Channel access (detached: no bus held while counting).
  add(Op::CsmaAccessWifi, {rfu::kBackoffRfu, cfg::kAccessCsmaWifi, 2, true});
  add(Op::CsmaAccessUwb, {rfu::kBackoffRfu, cfg::kAccessCsmaUwb, 2, true});
  add(Op::TdmaAccessWimax, {rfu::kBackoffRfu, cfg::kAccessTdmaWimax, 3, true});
  add(Op::TdmaAccessUwb, {rfu::kBackoffRfu, cfg::kAccessTdmaUwb, 3, true});
  add(Op::PcfRespondWifi, {rfu::kBackoffRfu, cfg::kAccessPcfWifi, 1, true});
  // WiMAX packing.
  add(Op::PackAppend, {rfu::kPackRfu, cfg::kDefaultState, 4, false});
  add(Op::PackExtract, {rfu::kPackRfu, cfg::kDefaultState, 4, false});
  // WiMAX ARQ.
  add(Op::ArqTag, {rfu::kArqRfu, cfg::kDefaultState, 2, false});
  add(Op::ArqFeedback, {rfu::kArqRfu, cfg::kDefaultState, 3, false});
  // Classification.
  add(Op::Classify, {rfu::kClassifierRfu, cfg::kDefaultState, 2, false});
  // Sequencing.
  add(Op::SeqAssign, {rfu::kSeqRfu, cfg::kDefaultState, 2, false});
  add(Op::SeqCheck, {rfu::kSeqRfu, cfg::kDefaultState, 4, false});
}

bool RfuTable::queue_waiter(u8 rfu_id, QueueEntry q) {
  auto& e = entries_.at(rfu_id);
  if (!e.qreq1) {
    e.qreq1 = q;
    return true;
  }
  if (!e.qreq2) {
    e.qreq2 = q;
    return true;
  }
  return false;
}

std::optional<QueueEntry> RfuTable::pop_waiter(u8 rfu_id) {
  auto& e = entries_.at(rfu_id);
  if (!e.qreq1) return std::nullopt;
  if (policy_ == QueuePolicy::Priority && e.qreq2 &&
      e.qreq2->priority < e.qreq1->priority) {
    auto q = e.qreq2;
    e.qreq2.reset();
    return q;
  }
  auto q = e.qreq1;
  e.qreq1 = e.qreq2;
  e.qreq2.reset();
  return q;
}

}  // namespace drmp::irc
