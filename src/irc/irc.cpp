#include "irc/irc.hpp"

#include <algorithm>
#include <cassert>

#include "hw/memory_map.hpp"

namespace drmp::irc {

using namespace drmp::hw;

Irc::Irc(Env env) : env_(env) {
  ReconfController::Env rc_env;
  rc_env.oct = &oct_;
  rc_env.rfut = &rfut_;
  rc_env.oct_mutex = &oct_mutex_;
  rc_env.rfut_mutex = &rfut_mutex_;
  rc_env.rfus = &rfus_;
  rc_env.stats = env_.stats;
  rc_ = std::make_unique<ReconfController>(rc_env);

  ThEnv th_env;
  th_env.oct = &oct_;
  th_env.rfut = &rfut_;
  th_env.oct_mutex = &oct_mutex_;
  th_env.rfut_mutex = &rfut_mutex_;
  th_env.rc = rc_.get();
  th_env.bus = env_.bus;
  th_env.rfus = &rfus_;
  th_env.handlers = &handlers_;
  th_env.stats = env_.stats;
  th_env.trace = env_.trace;
  for (std::size_t i = 0; i < kNumModes; ++i) {
    handler_storage_[i] = std::make_unique<TaskHandler>(mode_from_index(i), th_env);
    handlers_[i] = handler_storage_[i].get();
    handlers_[i]->on_complete = [this](Mode m, const ServiceRequest& req) {
      if (on_complete) on_complete(m, req);
    };
  }

  // Doorbell writes arrive through plain memory stores (the device driver's
  // side of Table 3.2); watch them so a sleeping IRC is woken to poll.
  if (env_.mem != nullptr) {
    for (std::size_t i = 0; i < kNumModes; ++i) {
      env_.mem->watch_write(iface_base(mode_from_index(i)) + kDoorbellOffset, this);
    }
  }
}

void Irc::register_rfu(rfu::Rfu* unit) {
  assert(unit != nullptr);
  unit->set_completion_waker(this);  // DONE/RDONE release controller waits.
  rfus_[unit->id()] = unit;
  auto& e = rfut_.entry(unit->id());
  e.c_state = unit->config_state();
  e.nstates = unit->nstates();
}

u32 Irc::submit(Mode mode, ServiceRequest req) {
  wake_self();  // A queued request dispatches on the next tick.
  if (req.tag == 0) req.tag = next_tag_++;
  const u32 tag = req.tag;
  pending_[index(mode)].push_back(std::move(req));
  return tag;
}

Cycle Irc::quiescent_for() const {
  if (env_.trace != nullptr && env_.trace->enabled()) return 0;
  for (std::size_t i = 0; i < kNumModes; ++i) {
    // A queued request is only actionable once its handler is idle, and a
    // handler goes idle inside complete_request — during an (awake) IRC
    // tick — so a request parked behind an active one cannot pin the IRC
    // to a per-cycle dispatch poll.
    if (!pending_[i].empty() && handlers_[i]->idle()) return 0;
  }
  if (env_.mem != nullptr) {
    for (std::size_t i = 0; i < kNumModes; ++i) {
      if (env_.mem->cpu_read(iface_base(mode_from_index(i)) + kDoorbellOffset) != 0) {
        return 0;
      }
    }
  }
  // Every controller contributes a per-state bound: 0 while a statechart can
  // transition, kIdleForever when it is parked in a wait whose release is
  // guaranteed to wake this component (submit(), the doorbell watch, or an
  // RFU's DONE/RDONE completion waker) — so requests in flight no longer pin
  // the IRC to a per-cycle poll across long RFU execution and
  // reconfiguration spans.
  Cycle q = rc_->quiescent_for_bound();
  for (const TaskHandler* th : handlers_) {
    if (q == 0) return 0;
    q = std::min(q, th->quiescent_for_bound());
  }
  return q;
}

void Irc::skip_idle(Cycle n) {
  for (TaskHandler* th : handlers_) th->skip_idle(n);
  rc_->skip_idle(n);
}

Irc::IrqInfo Irc::irq_take() {
  assert(!irq_queue_.empty());
  IrqInfo info = irq_queue_.front();
  irq_queue_.pop_front();
  return info;
}

void Irc::irq_raise(Mode mode, IrqEvent ev, Word param) {
  irq_queue_.push_back(IrqInfo{mode, ev, param});
  // Mirror into the memory-mapped source registers (Table 3.2: "the software
  // will respond to the interrupt by reading a memory-mapped hardware
  // register ... to indicate the source of the interrupt").
  if (env_.mem != nullptr) {
    const Word src = env_.mem->cpu_read(kIrqSourceReg);
    env_.mem->cpu_write(kIrqSourceReg, src | (1u << index(mode)));
    env_.mem->cpu_write(kIrqEventReg0 + static_cast<u32>(index(mode)),
                        static_cast<Word>(ev));
    env_.mem->cpu_write(kIrqParamReg0 + static_cast<u32>(index(mode)), param);
  }
}

void Irc::poll_doorbells() {
  if (env_.mem == nullptr) return;
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const Mode m = mode_from_index(i);
    const u32 base = iface_base(m);
    const Word nwords = env_.mem->cpu_read(base + kDoorbellOffset);
    if (nwords == 0) continue;
    // Parse the serialized super-op-code.
    ServiceRequest req;
    u32 at = base + kSopBufOffset;
    const Word head = env_.mem->cpu_read(at++);
    const u32 n_ops = head & 0xFF;
    req.tag = head >> 8;
    req.from_cpu = true;
    for (u32 k = 0; k < n_ops; ++k) {
      const Word opw = env_.mem->cpu_read(at++);
      OpCall call;
      call.op = rfu::command_op(opw);
      const u8 nargs = rfu::command_nargs(opw);
      for (u8 a = 0; a < nargs; ++a) call.args.push_back(env_.mem->cpu_read(at++));
      req.ops.push_back(std::move(call));
    }
    env_.mem->cpu_write(base + kDoorbellOffset, 0);  // Accept the request.
    submit(m, std::move(req));
  }
}

void Irc::dispatch() {
  for (std::size_t i = 0; i < kNumModes; ++i) {
    auto& q = pending_[i];
    if (q.empty()) continue;
    TaskHandler& th = *handlers_[i];
    if (!th.idle()) continue;
    th.start(std::move(q.front()));
    q.pop_front();
  }
}

void Irc::tick() {
  poll_doorbells();
  dispatch();
  // The seven controllers of the IRC run concurrently (§3.6.1.1): three
  // TH_R/TH_M pairs and the RC. Deterministic order: mode A, B, C, then RC.
  for (auto* th : handlers_) th->tick();
  rc_->tick();
}

void write_super_op_code(hw::PacketMemory& mem, Mode mode, const ServiceRequest& req) {
  const u32 base = iface_base(mode);
  u32 at = base + kSopBufOffset;
  u32 count = 0;
  mem.cpu_write(at++, static_cast<Word>(req.ops.size() & 0xFF) | (req.tag << 8));
  ++count;
  for (const OpCall& call : req.ops) {
    mem.cpu_write(at++, rfu::make_command_word(call.op, static_cast<u8>(call.args.size())));
    ++count;
    for (Word a : call.args) {
      mem.cpu_write(at++, a);
      ++count;
    }
  }
  assert(count <= kSopBufWords && "super-op-code exceeds interface buffer");
  mem.cpu_write(base + kDoorbellOffset, count);  // Ring the doorbell.
}

}  // namespace drmp::irc
