// The IRC's two look-up tables (thesis §3.6.1.1):
//
//   * op_code_table (Table 3.3) — static: op-code -> {rfu_id, reconf_state,
//     nargs}. "Hardwired at fabrication time ... best implemented in Flash /
//     EEPROM so that it can be updated by a designer at compile time."
//   * rfu_table (Table 3.4) — dynamic: rfu_id -> {c_state, nstates, in_use,
//     Qreq1/Qreq2}. Held in a separate physical memory near the IRC so one
//     mode can look up tables while another uses the packet memory.
//
// Contention on the tables is handled "by using mutex variables that a
// task-handler asserts when it is reading a table" (§3.6.4).
#pragma once

#include <array>
#include <optional>

#include "common/types.hpp"
#include "hw/memory_map.hpp"
#include "rfu/rfu_ids.hpp"

namespace drmp::irc {

struct OpCodeEntry {
  u8 rfu_id = 0;
  u8 reconf_state = 0;
  u8 nargs = 0;
  /// RFUs flagged detached execute without holding the packet bus.
  bool detached = false;

  template <class Ar>
  void persist(Ar& ar) {
    ar.io(rfu_id);
    ar.io(reconf_state);
    ar.io(nargs);
    ar.io(detached);
  }
};

class OpCodeTable {
 public:
  OpCodeTable();

  bool contains(rfu::Op op) const { return entries_[static_cast<u8>(op)].has_value(); }
  const OpCodeEntry& lookup(rfu::Op op) const { return *entries_[static_cast<u8>(op)]; }

 private:
  void add(rfu::Op op, OpCodeEntry e) { entries_[static_cast<u8>(op)] = e; }
  std::array<std::optional<OpCodeEntry>, 256> entries_{};
};

/// Which of a mode's two task-handler controllers queued on an RFU.
enum class ThKind : u8 { ThR = 0, ThM = 1 };

struct QueueEntry {
  Mode mode;
  ThKind kind;
  /// Request priority (Table 3.4's PrQreq1/PrQreq2 fields, 2 bits; lower
  /// value = more urgent, matching the bus arbiter's mode-A-highest rule).
  /// "Not used in the prototype" — honoured only under QueuePolicy::Priority.
  u8 priority = 0;

  template <class Ar>
  void persist(Ar& ar) {
    ar.io(mode);
    ar.io(kind);
    ar.io(priority);
  }
};

struct RfuTableEntry {
  u8 c_state = 0;   ///< 0 = uninitialized (Table 3.4).
  u8 nstates = 0;
  bool in_use = false;
  Mode owner = Mode::A;
  /// Reservation placed by the owning mode's TH_R while it reconfigures the
  /// RFU ahead of its TH_M's use.
  bool reserved_by_thr = false;
  /// "Two requests can be queued, served on a first-come first-served basis
  /// in the prototype" (Table 3.4, Qreq1/Qreq2).
  std::optional<QueueEntry> qreq1;
  std::optional<QueueEntry> qreq2;

  template <class Ar>
  void persist(Ar& ar) {
    ar.io(c_state);
    ar.io(nstates);
    ar.io(in_use);
    ar.io(owner);
    ar.io(reserved_by_thr);
    ar.io(qreq1);
    ar.io(qreq2);
  }
};

class RfuTable {
 public:
  /// How a freed RFU picks among queued waiters. Fcfs is the thesis
  /// prototype ("served on a first-come first-served basis"); Priority
  /// activates the PrQreq fields that the prototype leaves unused.
  enum class QueuePolicy : u8 { Fcfs, Priority };

  RfuTableEntry& entry(u8 rfu_id) { return entries_.at(rfu_id); }
  const RfuTableEntry& entry(u8 rfu_id) const { return entries_.at(rfu_id); }

  void set_queue_policy(QueuePolicy p) noexcept { policy_ = p; }
  QueuePolicy queue_policy() const noexcept { return policy_; }

  /// Queues a waiter; returns false if both queue slots are occupied.
  bool queue_waiter(u8 rfu_id, QueueEntry q);

  /// Pops the next queued waiter: oldest under Fcfs, most urgent (ties to
  /// the older request) under Priority.
  std::optional<QueueEntry> pop_waiter(u8 rfu_id);

  /// Checkpoint support (sim/checkpoint.hpp); the policy is configuration.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(entries_);
  }

 private:
  std::array<RfuTableEntry, hw::kMaxRfus> entries_{};
  QueuePolicy policy_ = QueuePolicy::Fcfs;
};

/// A single-owner mutex register. Owners are small ids (task handlers, RC).
class TableMutex {
 public:
  bool try_lock(u8 owner) {
    if (locked_) return owner_ == owner;
    locked_ = true;
    owner_ = owner;
    return true;
  }
  void unlock(u8 owner) {
    if (locked_ && owner_ == owner) locked_ = false;
  }
  bool locked() const noexcept { return locked_; }

  template <class Ar>
  void persist(Ar& ar) {
    ar.io(locked_);
    ar.io(owner_);
  }

 private:
  bool locked_ = false;
  u8 owner_ = 0;
};

/// Mutex owner ids: TH_R of mode m = 2m, TH_M of mode m = 2m+1, RC = 6.
constexpr u8 mutex_owner(Mode m, ThKind k) {
  return static_cast<u8>(2 * static_cast<u8>(m) + static_cast<u8>(k));
}
inline constexpr u8 kMutexOwnerRc = 6;

}  // namespace drmp::irc
