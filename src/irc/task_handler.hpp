// Per-mode Task Handler (thesis §3.6.1): "The control task of the IC is
// delegated to three Task Handlers (TH), one for each of the three protocol
// modes ... Each of these task handlers is composed of a task-handler for
// reconfiguration (TH_R), and a task-handler for MAC operations (TH_M)."
//
// The two controllers run concurrently over the same service request: TH_R
// walks the op-codes ahead, reserving and reconfiguring RFUs via the RC;
// TH_M executes them in order — looking up the tables under mutexes,
// queueing/sleeping on busy RFUs, passing arguments over the packet bus and
// waiting for DONE. State names follow Figs. 3.5/3.6 so the state-occupancy
// statistics reproduce Fig. 5.12 directly.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <vector>

#include "hw/bus.hpp"
#include "irc/reconf_controller.hpp"
#include "irc/tables.hpp"
#include "rfu/rfu.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace drmp::irc {

/// One op-code call within a super-op-code.
struct OpCall {
  rfu::Op op;
  std::vector<Word> args;

  template <class Ar>
  void persist(Ar& ar) {
    ar.io(op);
    ar.io(args);
  }
};

/// A decoded super-op-code: "One software request may consist of multiple
/// op-codes, and hence the request may be termed a super-op-code" (§3.6.1.2).
struct ServiceRequest {
  std::vector<OpCall> ops;
  bool from_cpu = true;  ///< false: originated by the Event Handler.
  u32 tag = 0;

  template <class Ar>
  void persist(Ar& ar) {
    ar.io(ops);
    ar.io(from_cpu);
    ar.io(tag);
  }
};

/// TH_R statechart states (Fig. 3.5).
enum class ThRState : u8 {
  Idle = 0,
  Wait4Oct,
  Wait4Rfut,
  Sleep,
  UseRfut1,
  Wait4Rc,
  UseRcWait,
  Wait4Rfut2,
  UseRfut2,
};

/// TH_M statechart states (Fig. 3.6).
enum class ThMState : u8 {
  Idle = 0,
  Wait4Oct,
  Wait4Rfut,
  Sleep1,  ///< RFU held / being prepared by the same mode's TH_R.
  Sleep2,  ///< RFU in use by another mode (queued in the rfu_table).
  UseRfut1,
  Wait4Pbus,
  UsePbus,
  Wait4RfuDone,
  Wait4Rfut2,
  UseRfut2,
};

const char* to_string(ThRState s);
const char* to_string(ThMState s);

class TaskHandler;

struct ThEnv {
  OpCodeTable* oct = nullptr;
  RfuTable* rfut = nullptr;
  TableMutex* oct_mutex = nullptr;
  TableMutex* rfut_mutex = nullptr;
  ReconfController* rc = nullptr;
  hw::PacketBus* bus = nullptr;
  std::array<rfu::Rfu*, hw::kMaxRfus>* rfus = nullptr;
  std::array<TaskHandler*, kNumModes>* handlers = nullptr;  ///< WAKE routing.
  sim::StatsRegistry* stats = nullptr;
  sim::TraceRecorder* trace = nullptr;
};

class TaskHandler : public sim::Clockable {
 public:
  TaskHandler(Mode mode, ThEnv env) : mode_(mode), env_(env) {}

  Mode mode() const noexcept { return mode_; }
  bool idle() const noexcept { return !active_; }

  /// Accepts a new service request (the In-Interface dispatches here).
  void start(ServiceRequest req);

  /// WAKE signal: another mode's TH_M released an RFU we queued on.
  void wake(ThKind kind);

  /// Invoked when the last op-code of the request completes.
  std::function<void(Mode, const ServiceRequest&)> on_complete;

  void tick() override;

  /// Per-state quiescence bound feeding Irc::quiescent_for(): 0 when either
  /// statechart can transition on its next tick, kIdleForever when both are
  /// parked in a wait whose release path is guaranteed to wake the IRC —
  /// Idle (submit/doorbell wakes), Sleep* (released by a sibling handler of
  /// the same IRC, which only runs while the IRC is awake), Wait4RfuDone /
  /// UseRcWait (the RFU's DONE/RDONE completion waker). Every other state
  /// polls externally-paced conditions (bus grants, table mutexes) and
  /// returns 0.
  Cycle quiescent_for_bound() const noexcept;
  /// Bulk-accounts n skipped ticks (constant-Idle occupancy/busy samples).
  /// Trace channels store change events only, so a skipped constant-state
  /// stretch records exactly what the per-tick path would.
  void skip_idle(Cycle n) override;

  ThRState thr_state() const noexcept { return thr_state_; }
  ThMState thm_state() const noexcept { return thm_state_; }
  u64 requests_completed() const noexcept { return completed_; }

  /// Checkpoint support (sim/checkpoint.hpp): both statecharts and the
  /// in-flight request context. The sinks cache is wiring.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(req_);
    ar.io(active_);
    ar.io(thr_cleared_);
    ar.io(completed_);
    ar.io(thr_state_);
    ar.io(thr_queue_);
    ar.io(thr_cur_);
    ar.io(thr_entry_);
    ar.io(thr_woken_);
    ar.io(thm_state_);
    ar.io(thm_started_);
    ar.io(thm_idx_);
    ar.io(thm_entry_);
    ar.io(thm_woken_);
    ar.io(pbus_seq_);
  }

 private:
  void ensure_sinks();
  void tick_thr();
  void tick_thm();
  /// TH_R finished preparing op `idx` (reconfig done or not needed).
  void thr_clear_op(std::size_t idx);
  /// TH_M found a stale configuration; hand the op back to TH_R.
  void thm_request_redo(std::size_t idx);
  void release_rfu_and_wake(u8 rfu_id);
  void complete_request();

  Mode mode_;
  ThEnv env_;

  // Shared request context.
  ServiceRequest req_;
  bool active_ = false;
  std::vector<bool> thr_cleared_;
  u64 completed_ = 0;

  // TH_R context.
  ThRState thr_state_ = ThRState::Idle;
  std::deque<std::size_t> thr_queue_;  ///< Op indices awaiting preparation.
  std::size_t thr_cur_ = 0;
  OpCodeEntry thr_entry_{};
  bool thr_woken_ = false;

  // TH_M context.
  ThMState thm_state_ = ThMState::Idle;
  bool thm_started_ = false;  ///< GO_THM received from TH_R.
  std::size_t thm_idx_ = 0;
  OpCodeEntry thm_entry_{};
  bool thm_woken_ = false;
  u32 pbus_seq_ = 0;

  // Cached per-tick instrumentation sinks (string-keyed lookups are far too
  // hot for a per-cycle path).
  struct Sinks {
    sim::StateOccupancy* thr_occ = nullptr;
    sim::StateOccupancy* thm_occ = nullptr;
    sim::BusyCounter* thr_busy = nullptr;
    sim::BusyCounter* thm_busy = nullptr;
    sim::TraceChannel* thr_chan = nullptr;
    sim::TraceChannel* thm_chan = nullptr;
    bool ready = false;
  } sinks_;
};

}  // namespace drmp::irc
