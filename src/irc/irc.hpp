// The Interface and Reconfiguration Controller (thesis §3.6.1, Fig. 3.4) —
// "a combination of interacting controllers ... an Interface Controller and a
// Reconfiguration Controller. The IC has two interface modules: one that
// receives the service requests from the CPU, and the other that interrupts
// the MPU. The control task of the IC is delegated to three Task Handlers."
//
// Service requests arrive either from the CPU (super-op-codes written to the
// memory-mapped interface registers, Table 3.2) or from the Event Handler
// ("A service request to the IRC can thus originate from either the CPU or
// the Event-handler. The source of the request is transparent to the IRC",
// §3.6.6).
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>

#include "hw/bus.hpp"
#include "hw/packet_memory.hpp"
#include "irc/reconf_controller.hpp"
#include "irc/task_handler.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace drmp::irc {

/// Interrupt event codes written to the per-mode event register.
enum class IrqEvent : u8 {
  None = 0,
  ReqDone = 1,   ///< A CPU-originated service request completed.
  RxInd = 2,     ///< A data frame was received, checked and parsed.
  RxAckInd = 3,  ///< An ACK/control frame was received.
  RxBad = 4,     ///< A frame failed its redundancy checks (for statistics).
};

class Irc : public sim::Clockable {
 public:
  struct Env {
    hw::PacketBus* bus = nullptr;
    hw::PacketMemory* mem = nullptr;  ///< Interface-register access (direct).
    sim::StatsRegistry* stats = nullptr;
    sim::TraceRecorder* trace = nullptr;
  };

  explicit Irc(Env env);

  /// Registers an RFU with the pool (id taken from the unit).
  void register_rfu(rfu::Rfu* unit);

  /// Direct submission path (Event Handler, tests). Returns the request tag.
  u32 submit(Mode mode, ServiceRequest req);

  /// Completion notification: invoked when any request finishes.
  std::function<void(Mode, const ServiceRequest&)> on_complete;

  /// Interrupt generator: pending-interrupt line to the CPU. The CPU model
  /// reads the source registers via its own port and calls irq_ack.
  bool irq_line() const noexcept { return !irq_queue_.empty(); }
  struct IrqInfo {
    Mode mode;
    IrqEvent event;
    Word param;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(mode);
      ar.io(event);
      ar.io(param);
    }
  };
  /// CPU-side: pop the oldest pending interrupt (reads + clears the
  /// memory-mapped source registers).
  IrqInfo irq_take();
  void irq_raise(Mode mode, IrqEvent ev, Word param = 0);

  void tick() override;

  // ---- Quiescence contract (sim/scheduler.hpp) ----
  /// The IRC — the single most expensive idle ticker of a device (three
  /// TH_R/TH_M pairs plus the RC, each sampling occupancy statistics every
  /// cycle) — is skippable when no request is queued, no doorbell is rung,
  /// and every controller statechart sits in a wait whose release is
  /// trigger-driven: Idle (submit() / the doorbell PacketMemory watch wake
  /// it), Sleep* (released only by sibling handlers of this same IRC), and
  /// Wait4RfuDone / TriggerRcnfgWait / UseRcWait (an RFU's DONE/RDONE
  /// transition fires the completion waker installed by register_rfu). Any
  /// state polling an externally-paced condition — bus grants, table
  /// mutexes — bounds the IRC to 0. Gated off while an attached trace
  /// recorder is enabled: the task handlers record state channels against
  /// the bus cycle counter, which lazy accounting would skew.
  Cycle quiescent_for() const override;
  void skip_idle(Cycle n) override;

  TaskHandler& handler(Mode m) { return *handlers_[index(m)]; }
  ReconfController& rc() { return *rc_; }
  RfuTable& rfu_table() { return rfut_; }
  const OpCodeTable& op_code_table() const { return oct_; }
  std::array<rfu::Rfu*, hw::kMaxRfus>& rfu_pool() { return rfus_; }

  std::size_t queued_requests(Mode m) const { return pending_[index(m)].size(); }

  /// Checkpoint support (sim/checkpoint.hpp): the whole IRC complex — both
  /// look-up tables' dynamic halves, mutexes, the three task handlers, the
  /// RC and the queues. The op-code table is fabrication-time constant.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(rfut_);
    ar.io(oct_mutex_);
    ar.io(rfut_mutex_);
    ar.io(*rc_);
    for (auto& h : handler_storage_) ar.io(*h);
    ar.io(pending_);
    ar.io(irq_queue_);
    ar.io(next_tag_);
  }

 private:
  void poll_doorbells();
  void dispatch();

  Env env_;
  OpCodeTable oct_;
  RfuTable rfut_;
  TableMutex oct_mutex_;
  TableMutex rfut_mutex_;
  std::array<rfu::Rfu*, hw::kMaxRfus> rfus_{};
  std::unique_ptr<ReconfController> rc_;
  std::array<std::unique_ptr<TaskHandler>, kNumModes> handler_storage_;
  std::array<TaskHandler*, kNumModes> handlers_{};

  std::array<std::deque<ServiceRequest>, kNumModes> pending_;
  std::deque<IrqInfo> irq_queue_;
  u32 next_tag_ = 1;
};

/// Serializes a ServiceRequest into the mode's interface-register block
/// (what the device-driver side of the API does, Table 3.2) — used by the
/// CPU model; the In-Interface parses it back.
void write_super_op_code(hw::PacketMemory& mem, Mode mode, const ServiceRequest& req);

}  // namespace drmp::irc
