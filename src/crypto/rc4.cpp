#include "crypto/rc4.hpp"

#include <utility>

namespace drmp::crypto {

void Rc4::rekey(std::span<const u8> key) {
  for (unsigned i = 0; i < 256; ++i) s_[i] = static_cast<u8>(i);
  u8 j = 0;
  for (unsigned i = 0; i < 256; ++i) {
    j = static_cast<u8>(j + s_[i] + key[i % key.size()]);
    std::swap(s_[i], s_[j]);
  }
  i_ = 0;
  j_ = 0;
}

u8 Rc4::next() noexcept {
  i_ = static_cast<u8>(i_ + 1);
  j_ = static_cast<u8>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<u8>(s_[i_] + s_[j_])];
}

}  // namespace drmp::crypto
