#include "crypto/crc.hpp"

#include <array>

namespace drmp::crypto {
namespace {

constexpr std::array<u32, 256> make_crc32_table() {
  std::array<u32, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<u16, 256> make_crc16_table() {
  std::array<u16, 256> t{};
  for (u16 i = 0; i < 256; ++i) {
    u16 c = static_cast<u16>(i << 8);
    for (int k = 0; k < 8; ++k) {
      c = static_cast<u16>((c & 0x8000) ? ((c << 1) ^ 0x1021) : (c << 1));
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<u8, 256> make_crc8_table() {
  std::array<u8, 256> t{};
  for (u16 i = 0; i < 256; ++i) {
    u8 c = static_cast<u8>(i);
    for (int k = 0; k < 8; ++k) {
      c = static_cast<u8>((c & 0x80) ? ((c << 1) ^ 0x07) : (c << 1));
    }
    t[i] = c;
  }
  return t;
}

const auto kCrc32Table = make_crc32_table();
const auto kCrc16Table = make_crc16_table();
const auto kCrc8Table = make_crc8_table();

}  // namespace

void Crc32::update(u8 byte) noexcept {
  state_ = kCrc32Table[(state_ ^ byte) & 0xFFu] ^ (state_ >> 8);
}

void Crc32::update(std::span<const u8> bytes) noexcept {
  for (u8 b : bytes) update(b);
}

u32 Crc32::compute(std::span<const u8> bytes) noexcept {
  Crc32 c;
  c.update(bytes);
  return c.value();
}

void Crc16Ccitt::update(u8 byte) noexcept {
  state_ = static_cast<u16>(kCrc16Table[((state_ >> 8) ^ byte) & 0xFFu] ^ (state_ << 8));
}

void Crc16Ccitt::update(std::span<const u8> bytes) noexcept {
  for (u8 b : bytes) update(b);
}

u16 Crc16Ccitt::compute(std::span<const u8> bytes) noexcept {
  Crc16Ccitt c;
  c.update(bytes);
  return c.value();
}

void Crc8::update(u8 byte) noexcept { state_ = kCrc8Table[state_ ^ byte]; }

void Crc8::update(std::span<const u8> bytes) noexcept {
  for (u8 b : bytes) update(b);
}

u8 Crc8::compute(std::span<const u8> bytes) noexcept {
  Crc8 c;
  c.update(bytes);
  return c.value();
}

}  // namespace drmp::crypto
