// DES / 3DES — "WiMAX uses Triple Data Encryption Standard (3DES) for passing
// keys ... DES is used for data encryption" (thesis §2.3.2.1, commonality
// #17b). The Crypto RFU's DES configuration state wraps this block cipher in
// CBC mode as IEEE 802.16 (DES-CBC) does for payload confidentiality.
#pragma once

#include <array>
#include <span>

#include "common/types.hpp"

namespace drmp::crypto {

class Des {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 8;

  explicit Des(std::span<const u8> key) { rekey(key); }

  /// Runs the 16-round key schedule for an 8-byte key (parity bits ignored).
  void rekey(std::span<const u8> key);

  void encrypt_block(std::span<u8> block) const;
  void decrypt_block(std::span<u8> block) const;

  /// CBC-mode encryption / decryption over whole blocks (data size must be a
  /// multiple of 8; callers pad beforehand as 802.16 does).
  void cbc_encrypt(std::span<const u8> iv, std::span<u8> data) const;
  void cbc_decrypt(std::span<const u8> iv, std::span<u8> data) const;

 private:
  u64 process(u64 block, bool decrypt) const;

  std::array<u64, 16> subkeys_{};
};

/// 3DES (EDE) with a 24-byte key, used for key exchange in 802.16.
class TripleDes {
 public:
  explicit TripleDes(std::span<const u8> key24)
      : k1_(key24.subspan(0, 8)), k2_(key24.subspan(8, 8)), k3_(key24.subspan(16, 8)) {}

  void encrypt_block(std::span<u8> block) const {
    k1_.encrypt_block(block);
    k2_.decrypt_block(block);
    k3_.encrypt_block(block);
  }
  void decrypt_block(std::span<u8> block) const {
    k3_.decrypt_block(block);
    k2_.encrypt_block(block);
    k1_.decrypt_block(block);
  }

 private:
  Des k1_, k2_, k3_;
};

}  // namespace drmp::crypto
