#include "crypto/des.hpp"

namespace drmp::crypto {
namespace {

// Standard DES tables (FIPS 46-3). Bit numbering is 1-based from the MSB as
// in the standard.
constexpr int kIp[64] = {58, 50, 42, 34, 26, 18, 10, 2,  60, 52, 44, 36, 28, 20, 12, 4,
                         62, 54, 46, 38, 30, 22, 14, 6,  64, 56, 48, 40, 32, 24, 16, 8,
                         57, 49, 41, 33, 25, 17, 9,  1,  59, 51, 43, 35, 27, 19, 11, 3,
                         61, 53, 45, 37, 29, 21, 13, 5,  63, 55, 47, 39, 31, 23, 15, 7};

constexpr int kFp[64] = {40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
                         38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
                         36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
                         34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr int kE[48] = {32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
                        12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
                        22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr int kP[32] = {16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
                        2,  8, 24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr int kPc1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
                          10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
                          63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
                          14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr int kPc2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10, 23, 19, 12, 4,
                          26, 8,  16, 7,  27, 20, 13, 2,  41, 52, 31, 37, 47, 55, 30, 40,
                          51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr int kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr u8 kSboxes[8][64] = {
    {14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6,
     12, 11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2,
     4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13},
    {15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0,
     1, 10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1,
     3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9},
    {10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8,
     5, 14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0,
     6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12},
    {7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7,
     2, 12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6,
     10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14},
    {2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0,
     15, 10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7,
     1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3},
    {12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1,
     13, 14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12,
     9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13},
    {4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3,
     5, 12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8,
     1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12},
    {13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5,
     6, 11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7,
     4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11}};

u64 bytes_to_u64(std::span<const u8> b) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

void u64_to_bytes(u64 v, std::span<u8> b) {
  for (int i = 7; i >= 0; --i) {
    b[i] = static_cast<u8>(v & 0xFF);
    v >>= 8;
  }
}

/// Permutes `in` (in_bits wide, bit 1 = MSB) through `table` of size n.
u64 permute(u64 in, int in_bits, const int* table, int n) {
  u64 out = 0;
  for (int i = 0; i < n; ++i) {
    out = (out << 1) | ((in >> (in_bits - table[i])) & 1);
  }
  return out;
}

u32 feistel(u32 r, u64 subkey) {
  const u64 expanded = permute(r, 32, kE, 48) ^ subkey;
  u32 out = 0;
  for (int i = 0; i < 8; ++i) {
    const u8 six = static_cast<u8>((expanded >> (42 - 6 * i)) & 0x3F);
    const int row = ((six & 0x20) >> 4) | (six & 1);
    const int col = (six >> 1) & 0xF;
    out = (out << 4) | kSboxes[i][row * 16 + col];
  }
  return static_cast<u32>(permute(out, 32, kP, 32));
}

}  // namespace

void Des::rekey(std::span<const u8> key) {
  const u64 k = bytes_to_u64(key);
  const u64 pc1 = permute(k, 64, kPc1, 56);
  u32 c = static_cast<u32>((pc1 >> 28) & 0x0FFFFFFF);
  u32 d = static_cast<u32>(pc1 & 0x0FFFFFFF);
  for (int r = 0; r < 16; ++r) {
    const int s = kShifts[r];
    c = ((c << s) | (c >> (28 - s))) & 0x0FFFFFFF;
    d = ((d << s) | (d >> (28 - s))) & 0x0FFFFFFF;
    const u64 cd = (static_cast<u64>(c) << 28) | d;
    subkeys_[r] = permute(cd, 56, kPc2, 48);
  }
}

u64 Des::process(u64 block, bool decrypt) const {
  const u64 ip = permute(block, 64, kIp, 64);
  u32 l = static_cast<u32>(ip >> 32);
  u32 r = static_cast<u32>(ip & 0xFFFFFFFF);
  for (int i = 0; i < 16; ++i) {
    const u64 sk = subkeys_[decrypt ? 15 - i : i];
    const u32 nl = r;
    r = l ^ feistel(r, sk);
    l = nl;
  }
  const u64 preout = (static_cast<u64>(r) << 32) | l;  // Final swap.
  return permute(preout, 64, kFp, 64);
}

void Des::encrypt_block(std::span<u8> block) const {
  u64_to_bytes(process(bytes_to_u64(block), false), block);
}

void Des::decrypt_block(std::span<u8> block) const {
  u64_to_bytes(process(bytes_to_u64(block), true), block);
}

void Des::cbc_encrypt(std::span<const u8> iv, std::span<u8> data) const {
  u8 chain[8];
  for (int i = 0; i < 8; ++i) chain[i] = iv[i];
  for (std::size_t off = 0; off + 8 <= data.size(); off += 8) {
    for (int i = 0; i < 8; ++i) data[off + i] ^= chain[i];
    encrypt_block(data.subspan(off, 8));
    for (int i = 0; i < 8; ++i) chain[i] = data[off + i];
  }
}

void Des::cbc_decrypt(std::span<const u8> iv, std::span<u8> data) const {
  u8 chain[8];
  u8 next_chain[8];
  for (int i = 0; i < 8; ++i) chain[i] = iv[i];
  for (std::size_t off = 0; off + 8 <= data.size(); off += 8) {
    for (int i = 0; i < 8; ++i) next_chain[i] = data[off + i];
    decrypt_block(data.subspan(off, 8));
    for (int i = 0; i < 8; ++i) data[off + i] ^= chain[i];
    for (int i = 0; i < 8; ++i) chain[i] = next_chain[i];
  }
}

}  // namespace drmp::crypto
