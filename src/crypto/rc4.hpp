// RC4 stream cipher — "WiFi uses RSA's RC4 encryption" (thesis §2.3.2.1,
// commonality #17a); used by the Crypto RFU's WEP configuration state.
#pragma once

#include <array>
#include <span>

#include "common/types.hpp"

namespace drmp::crypto {

class Rc4 {
 public:
  explicit Rc4(std::span<const u8> key) { rekey(key); }

  /// Re-initializes the keystream with a new key (KSA).
  void rekey(std::span<const u8> key);

  /// Next keystream byte (PRGA).
  u8 next() noexcept;

  /// XOR-encrypts/decrypts in place (RC4 is symmetric).
  void process(std::span<u8> data) noexcept {
    for (u8& b : data) b ^= next();
  }

 private:
  std::array<u8, 256> s_{};
  u8 i_ = 0;
  u8 j_ = 0;
};

}  // namespace drmp::crypto
