// CRC engines used by the MAC protocols under study (thesis §2.3.2.1):
//   * CRC-16-CCITT — Header Check Sequence of WiFi and UWB ("the exact same
//     16-bit CRC", commonality #1).
//   * CRC-8        — Header Check Sequence of the WiMAX generic MAC header
//     (polynomial x^8+x^2+x+1 per IEEE 802.16).
//   * CRC-32       — Frame Check Sequence of all three (commonality #2;
//     optional for WiMAX).
//
// All engines support incremental (streaming) update so the hardware RFUs can
// snoop data word-by-word on the packet bus (master/slave mechanism, §3.6.5).
#pragma once

#include <span>

#include "common/types.hpp"

namespace drmp::crypto {

/// CRC-32 (IEEE 802.3 reflected, poly 0xEDB88320). check("123456789") = 0xCBF43926.
class Crc32 {
 public:
  void update(u8 byte) noexcept;
  void update(std::span<const u8> bytes) noexcept;
  u32 value() const noexcept { return state_ ^ 0xFFFFFFFFu; }
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

  /// Raw streaming state, for checkpointing a mid-stream engine (the FCS
  /// RFU's bus snoopers). Distinct from value(): no final inversion.
  u32 raw_state() const noexcept { return state_; }
  void set_raw_state(u32 s) noexcept { state_ = s; }

  /// Checkpoint support (sim/checkpoint.hpp).
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(state_);
  }

  static u32 compute(std::span<const u8> bytes) noexcept;

 private:
  u32 state_ = 0xFFFFFFFFu;
};

/// CRC-16-CCITT-FALSE (poly 0x1021, init 0xFFFF). check("123456789") = 0x29B1.
class Crc16Ccitt {
 public:
  void update(u8 byte) noexcept;
  void update(std::span<const u8> bytes) noexcept;
  u16 value() const noexcept { return state_; }
  void reset() noexcept { state_ = 0xFFFFu; }

  static u16 compute(std::span<const u8> bytes) noexcept;

 private:
  u16 state_ = 0xFFFFu;
};

/// CRC-8 as used by the IEEE 802.16 HCS (poly 0x07, init 0x00).
/// check("123456789") = 0xF4.
class Crc8 {
 public:
  void update(u8 byte) noexcept;
  void update(std::span<const u8> bytes) noexcept;
  u8 value() const noexcept { return state_; }
  void reset() noexcept { state_ = 0; }

  static u8 compute(std::span<const u8> bytes) noexcept;

 private:
  u8 state_ = 0;
};

}  // namespace drmp::crypto
