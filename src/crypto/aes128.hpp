// AES-128 (FIPS-197) — "Advanced Encryption Standard" used by WiFi (802.11i),
// WiMAX and UWB (thesis §2.3.2.1, commonality #17c). The Crypto RFU's AES
// configuration state wraps this block cipher in CTR mode (the payload-
// confidentiality part of CCM, which all three standards build on).
#pragma once

#include <array>
#include <span>

#include "common/types.hpp"

namespace drmp::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  explicit Aes128(std::span<const u8> key) { rekey(key); }

  /// Runs the key schedule for a new 16-byte key.
  void rekey(std::span<const u8> key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::span<u8> block) const;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(std::span<u8> block) const;

  /// CTR-mode keystream application (encrypt == decrypt). `nonce` is the
  /// initial 16-byte counter block; the low 4 bytes are the big-endian block
  /// counter starting at 0.
  void ctr_process(std::span<const u8> nonce, std::span<u8> data) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::array<u8, 16>, 11> round_keys_{};
};

}  // namespace drmp::crypto
