#include "scenario/fleet_stats.hpp"

#include <cstdio>

namespace drmp::scenario {

void DeviceStats::mix_completion(sim::Digest& d) const {
  d.mix(static_cast<u64>(station_id));
  for (std::size_t i = 0; i < kNumModes; ++i) {
    d.mix(offered[i]).mix(offered_bytes[i]).mix(completed[i]).mix(tx_ok[i]).mix(
        retries[i]);
  }
}

void DeviceStats::mix_full(sim::Digest& d) const {
  mix_completion(d);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    d.mix(peer_rx[i]).mix(peer_acks[i]).mix(tampered[i]);
  }
  d.mix(cycles_run);
}

u64 FleetStats::device_cycles_total() const {
  u64 total = 0;
  for (const DeviceStats& ds : devices) total += ds.cycles_run;
  return total;
}

double FleetStats::device_cycles_per_sec() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(device_cycles_total()) / wall_seconds;
}

u64 FleetStats::completion_digest() const {
  sim::Digest d;
  for (const DeviceStats& ds : devices) ds.mix_completion(d);
  return d.value();
}

u64 FleetStats::full_digest() const {
  sim::Digest d;
  for (const DeviceStats& ds : devices) ds.mix_full(d);
  d.mix(lockstep_cycles).mix(all_drained ? 1 : 0);
  return d.value();
}

std::string FleetStats::report() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line), "scenario %s: %zu devices, %llu lockstep cycles%s\n",
                scenario_name.c_str(), devices.size(),
                static_cast<unsigned long long>(lockstep_cycles),
                all_drained ? "" : " [BUDGET EXHAUSTED]");
  out += line;
  out += "  dev mode offered  bytes complete  ok retries peer_rx  acks tampered\n";
  for (const DeviceStats& ds : devices) {
    for (std::size_t i = 0; i < kNumModes; ++i) {
      if (ds.offered[i] == 0 && ds.completed[i] == 0 && ds.peer_rx[i] == 0) continue;
      std::snprintf(line, sizeof(line),
                    "  %3d    %c %7u %6llu %8u %3u %7llu %7u %5llu %8llu\n",
                    ds.station_id, "ABC"[i], ds.offered[i],
                    static_cast<unsigned long long>(ds.offered_bytes[i]), ds.completed[i],
                    ds.tx_ok[i], static_cast<unsigned long long>(ds.retries[i]),
                    ds.peer_rx[i], static_cast<unsigned long long>(ds.peer_acks[i]),
                    static_cast<unsigned long long>(ds.tampered[i]));
      out += line;
    }
  }
  std::snprintf(line, sizeof(line), "  digests: completion=%016llx full=%016llx\n",
                static_cast<unsigned long long>(completion_digest()),
                static_cast<unsigned long long>(full_digest()));
  out += line;
  return out;
}

}  // namespace drmp::scenario
