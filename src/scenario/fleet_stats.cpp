#include "scenario/fleet_stats.hpp"

#include <cstdio>

namespace drmp::scenario {

void DeviceStats::mix_completion(sim::Digest& d) const {
  d.mix(static_cast<u64>(station_id));
  for (std::size_t i = 0; i < kNumModes; ++i) {
    d.mix(offered[i]).mix(offered_bytes[i]).mix(completed[i]).mix(tx_ok[i]).mix(
        retries[i]);
  }
}

void DeviceStats::mix_full(sim::Digest& d) const {
  mix_completion(d);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    d.mix(peer_rx[i]).mix(peer_acks[i]).mix(tampered[i]);
    d.mix(collisions[i]).mix(airtime[i]);
  }
  d.mix(defers).mix(rts_sent).mix(cts_received);
  d.mix(cycles_run);
}

void CellStats::mix_full(sim::Digest& d) const {
  d.mix(cell_index).mix(stations);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    d.mix(collided_frames[i]).mix(dropped_frames[i]).mix(capture_wins[i]);
    d.mix(tampered[i]).mix(busy_cycles[i]).mix(ap_rx[i]).mix(ap_acks[i]);
  }
  d.mix(ap_ctss);
}

void FleetStats::fold_retired(const DeviceStats& ds) {
  sim::Digest c = folded_devices ? sim::Digest(folded_completion) : sim::Digest();
  ds.mix_completion(c);
  folded_completion = c.value();
  sim::Digest f = folded_devices ? sim::Digest(folded_full) : sim::Digest();
  ds.mix_full(f);
  folded_full = f.value();
  ++folded_devices;
  folded_cycles += ds.cycles_run;
  folded_raw_mw += ds.power.raw_mw;
  folded_gated_mw += ds.power.gated_mw;
  folded_dvfs_mw += ds.power.dvfs_mw;
}

u64 FleetStats::device_cycles_total() const {
  u64 total = folded_cycles;
  for (const DeviceStats& ds : devices) total += ds.cycles_run;
  return total;
}

double FleetStats::device_cycles_per_sec() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(device_cycles_total()) / wall_seconds;
}

double FleetStats::fleet_raw_mw() const {
  double mw = folded_raw_mw;
  for (const DeviceStats& ds : devices) mw += ds.power.raw_mw;
  return mw;
}

double FleetStats::fleet_gated_mw() const {
  double mw = folded_gated_mw;
  for (const DeviceStats& ds : devices) mw += ds.power.gated_mw;
  return mw;
}

double FleetStats::fleet_dvfs_mw() const {
  double mw = folded_dvfs_mw;
  for (const DeviceStats& ds : devices) mw += ds.power.dvfs_mw;
  return mw;
}

// The total_*() accessors are views over the metrics registry when the
// engine populated it; the DeviceStats fallback keeps hand-assembled
// FleetStats values (tests, tools) working without a registry.
u64 FleetStats::total_collisions() const {
  if (const auto v = metrics.counter("medium/collisions")) return *v;
  u64 n = 0;
  for (const DeviceStats& ds : devices) {
    for (std::size_t i = 0; i < kNumModes; ++i) n += ds.collisions[i];
  }
  return n;
}

u64 FleetStats::total_defers() const {
  if (const auto v = metrics.counter("mac/defers")) return *v;
  u64 n = 0;
  for (const DeviceStats& ds : devices) n += ds.defers;
  return n;
}

u64 FleetStats::total_nav_defers() const {
  if (const auto v = metrics.counter("mac/nav_defers")) return *v;
  u64 n = 0;
  for (const DeviceStats& ds : devices) n += ds.nav_defers;
  return n;
}

u64 FleetStats::total_eifs_waits() const {
  if (const auto v = metrics.counter("mac/eifs_waits")) return *v;
  u64 n = 0;
  for (const DeviceStats& ds : devices) n += ds.eifs_waits;
  return n;
}

u64 FleetStats::total_frames_expired() const {
  if (const auto v = metrics.counter("phy/frames_expired")) return *v;
  u64 n = 0;
  for (const DeviceStats& ds : devices) n += ds.frames_expired;
  return n;
}

u64 FleetStats::total_reassociations() const {
  if (const auto v = metrics.counter("mac/reassociations")) return *v;
  u64 n = 0;
  for (const DeviceStats& ds : devices) n += ds.reassociations;
  return n;
}

u64 FleetStats::total_handoffs() const {
  if (const auto v = metrics.counter("mac/handoffs")) return *v;
  u64 n = 0;
  for (const DeviceStats& ds : devices) n += ds.handoffs;
  return n;
}

u64 FleetStats::total_rate_shifts() const {
  if (const auto v = metrics.counter("mac/rate_shifts")) return *v;
  u64 n = 0;
  for (const DeviceStats& ds : devices) n += ds.rate_shifts;
  return n;
}

u64 FleetStats::total_link_loss_drops() const {
  if (const auto v = metrics.counter("mac/link_loss_drops")) return *v;
  u64 n = 0;
  for (const DeviceStats& ds : devices) n += ds.link_loss_drops;
  return n;
}

u64 FleetStats::total_topology_epochs() const {
  u64 n = 0;
  for (const CellStats& cs : cells) {
    for (std::size_t i = 0; i < kNumModes; ++i) n += cs.topology_epochs[i];
  }
  return n;
}

double FleetStats::mean_handoff_latency_cycles() const {
  u64 count = 0;
  Cycle total = 0;
  for (const DeviceStats& ds : devices) {
    count += ds.reassociations;
    total += ds.handoff_latency;
  }
  return count == 0 ? 0.0
                    : static_cast<double>(total) / static_cast<double>(count);
}

u64 FleetStats::completion_digest() const {
  sim::Digest d = folded_devices ? sim::Digest(folded_completion) : sim::Digest();
  for (const DeviceStats& ds : devices) ds.mix_completion(d);
  return d.value();
}

u64 FleetStats::full_digest() const {
  sim::Digest d = folded_devices ? sim::Digest(folded_full) : sim::Digest();
  for (const DeviceStats& ds : devices) ds.mix_full(d);
  for (const CellStats& cs : cells) cs.mix_full(d);
  d.mix(lockstep_cycles).mix(all_drained ? 1 : 0);
  return d.value();
}

std::string FleetStats::report() const {
  std::string out;
  char line[224];
  std::snprintf(line, sizeof(line), "scenario %s: %zu devices, %llu lockstep cycles%s\n",
                scenario_name.c_str(),
                devices.size() + static_cast<std::size_t>(folded_devices),
                static_cast<unsigned long long>(lockstep_cycles),
                all_drained ? "" : " [BUDGET EXHAUSTED]");
  out += line;
  out += "  dev mode offered  bytes complete  ok retries peer_rx  acks tampered "
         "coll  airtime\n";
  for (const DeviceStats& ds : devices) {
    for (std::size_t i = 0; i < kNumModes; ++i) {
      if (ds.offered[i] == 0 && ds.completed[i] == 0 && ds.peer_rx[i] == 0) continue;
      std::snprintf(line, sizeof(line),
                    "  %3d    %c %7u %6llu %8u %3u %7llu %7u %5llu %8llu %4llu %8llu\n",
                    ds.station_id, "ABC"[i], ds.offered[i],
                    static_cast<unsigned long long>(ds.offered_bytes[i]), ds.completed[i],
                    ds.tx_ok[i], static_cast<unsigned long long>(ds.retries[i]),
                    ds.peer_rx[i], static_cast<unsigned long long>(ds.peer_acks[i]),
                    static_cast<unsigned long long>(ds.tampered[i]),
                    static_cast<unsigned long long>(ds.collisions[i]),
                    static_cast<unsigned long long>(ds.airtime[i]));
      out += line;
    }
  }
  for (const CellStats& cs : cells) {
    for (std::size_t i = 0; i < kNumModes; ++i) {
      if (cs.collided_frames[i] == 0 && cs.ap_rx[i] == 0 && cs.busy_cycles[i] == 0) {
        continue;
      }
      std::snprintf(line, sizeof(line),
                    "  cell %u mode %c: %u stations, %llu collided (%llu dropped, "
                    "%llu captured), ap_rx %u, ap_acks %llu, busy %llu\n",
                    cs.cell_index, "ABC"[i], cs.stations,
                    static_cast<unsigned long long>(cs.collided_frames[i]),
                    static_cast<unsigned long long>(cs.dropped_frames[i]),
                    static_cast<unsigned long long>(cs.capture_wins[i]), cs.ap_rx[i],
                    static_cast<unsigned long long>(cs.ap_acks[i]),
                    static_cast<unsigned long long>(cs.busy_cycles[i]));
      out += line;
    }
  }
  for (const DeviceStats& ds : devices) {
    std::snprintf(line, sizeof(line),
                  "  dev %3d power: %7.2f mW raw, %6.2f mW gated+PSO, %6.2f mW "
                  "+DVFS/2 (cpu %4.1f%%, bus %4.1f%%)\n",
                  ds.station_id, ds.power.raw_mw, ds.power.gated_mw, ds.power.dvfs_mw,
                  100.0 * ds.power.cpu_activity, 100.0 * ds.power.bus_activity);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  fleet power: %.2f mW raw, %.2f mW gated+PSO, %.2f mW +DVFS/2; "
                "%llu collisions, %llu defers\n",
                fleet_raw_mw(), fleet_gated_mw(), fleet_dvfs_mw(),
                static_cast<unsigned long long>(total_collisions()),
                static_cast<unsigned long long>(total_defers()));
  out += line;
  std::snprintf(line, sizeof(line), "  digests: completion=%016llx full=%016llx\n",
                static_cast<unsigned long long>(completion_digest()),
                static_cast<unsigned long long>(full_digest()));
  out += line;
  return out;
}

}  // namespace drmp::scenario
