#include "scenario/scenario_spec.hpp"

namespace drmp::scenario {

ScenarioSpec ScenarioSpec::mixed_three_standard(std::size_t n_devices, u64 seed,
                                                u32 msdus_per_mode) {
  ScenarioSpec spec;
  spec.name = "mixed-three-standard-" + std::to_string(n_devices);
  spec.seed = seed;

  // WiFi contends per-frame, so it tolerates loss; UWB retries inside its
  // slots; WiMAX recovery is ARQ-feedback-driven, keep its band clean here.
  spec.channel[0] = ChannelSpec{/*loss_permille=*/120, /*min_frame_bytes=*/64};
  spec.channel[2] = ChannelSpec{/*loss_permille=*/60, /*min_frame_bytes=*/64};

  DrmpConfig base = DrmpConfig::standard_three_mode();
  // Tighter TDD frame / superframe than the thesis defaults (5 ms / 8 ms):
  // fleet runs spend their cycles on MAC work instead of idle slot waits.
  base.modes[1].ident.tdma_period_us = 2000.0;
  base.modes[2].ident.tdma_period_us = 2000.0;

  spec.devices.reserve(n_devices);
  for (std::size_t i = 0; i < n_devices; ++i) {
    DeviceSpec d;
    d.cfg = base.for_station(static_cast<int>(i) + 1);
    // Heterogeneous mix: WiFi everywhere, UWB on even stations, WiMAX on two
    // of every three.
    d.traffic[0] = mac::TrafficSpec::wifi_csma_bursts(msdus_per_mode);
    if (i % 2 == 0) {
      d.traffic[2] = mac::TrafficSpec::uwb_slotted_stream(msdus_per_mode);
    } else {
      d.cfg.modes[2].enabled = false;
    }
    if (i % 3 != 2) {
      d.traffic[1] = mac::TrafficSpec::wimax_framed_uplink(msdus_per_mode);
    } else {
      d.cfg.modes[1].enabled = false;
    }
    spec.devices.push_back(std::move(d));
  }
  return spec;
}

}  // namespace drmp::scenario
