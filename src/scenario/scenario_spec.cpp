#include "scenario/scenario_spec.hpp"

#include <stdexcept>
#include <string>

namespace drmp::scenario {

void ScenarioSpec::validate() const {
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const CellSpec& cell = cells[ci];
    const std::string where = "cell " + std::to_string(ci) + ": ";
    const net::AudibilityMatrix& m = cell.contention.audibility;
    if (!m.trivial()) {
      if (cell.topology != Topology::kSharedMedium) {
        throw net::AudibilityError(
            where + "audibility matrices require a shared-medium cell");
      }
      if (m.n != cell.stations.size()) {
        throw net::AudibilityError(
            where + "audibility matrix covers " + std::to_string(m.n) +
            " stations, cell has " + std::to_string(cell.stations.size()));
      }
      for (std::size_t i = 0; i < m.n; ++i) {
        if (!m.hears(i, i)) {
          throw net::AudibilityError(where +
                                     "audibility diagonal must stay 1");
        }
      }
    }
    if (cell.mobility.enabled) {
      if (cell.topology != Topology::kSharedMedium || !cell.access_point) {
        throw net::AudibilityError(
            where + "mobility requires a shared-medium cell with an AP");
      }
      if (!m.trivial()) {
        throw net::AudibilityError(
            where +
            "mobility and an explicit audibility matrix are mutually "
            "exclusive (the driver derives the matrix)");
      }
      if (cell.contention.capture_preamble_us > 0.0) {
        throw net::AudibilityError(
            where + "mobility is incompatible with the capture effect");
      }
      try {
        cell.mobility.validate(cell.stations.size());
      } catch (const net::AudibilityError& e) {
        throw net::AudibilityError(where + e.what());
      }
    }
  }
  for (std::size_t g = 0; g < couplings.size(); ++g) {
    const CouplingSpec& c = couplings[g];
    double prev = -1.0;
    for (const CouplingSpec::ReachRevision& rev : c.reach_script) {
      if (!(rev.at_us > prev)) {
        throw std::invalid_argument(
            "coupling group " + std::to_string(g) +
            ": reach_script times must strictly ascend");
      }
      prev = rev.at_us;
    }
  }
}

std::size_t ScenarioSpec::station_count() const {
  std::size_t n = 0;
  for (const CellSpec& c : cells) n += c.stations.size();
  return n;
}

void ScenarioSpec::add_station(DeviceSpec d) {
  CellSpec cell;
  cell.topology = Topology::kPointToPoint;
  cell.stations.push_back(std::move(d));
  cells.push_back(std::move(cell));
}

ScenarioSpec ScenarioSpec::mixed_three_standard(std::size_t n_devices, u64 seed,
                                                u32 msdus_per_mode) {
  ScenarioSpec spec;
  spec.name = "mixed-three-standard-" + std::to_string(n_devices);
  spec.seed = seed;

  // WiFi contends per-frame, so it tolerates loss; UWB retries inside its
  // slots; WiMAX recovery is ARQ-feedback-driven, keep its band clean here.
  spec.channel[0] = ChannelSpec{/*loss_permille=*/120, /*min_frame_bytes=*/64};
  spec.channel[2] = ChannelSpec{/*loss_permille=*/60, /*min_frame_bytes=*/64};

  DrmpConfig base = DrmpConfig::standard_three_mode();
  // Tighter TDD frame / superframe than the thesis defaults (5 ms / 8 ms):
  // fleet runs spend their cycles on MAC work instead of idle slot waits.
  base.modes[1].ident.tdma_period_us = 2000.0;
  base.modes[2].ident.tdma_period_us = 2000.0;

  spec.cells.reserve(n_devices);
  for (std::size_t i = 0; i < n_devices; ++i) {
    DeviceSpec d;
    d.cfg = base.for_station(static_cast<int>(i) + 1);
    // Heterogeneous mix: WiFi everywhere, UWB on even stations, WiMAX on two
    // of every three.
    d.traffic[0] = mac::TrafficSpec::wifi_csma_bursts(msdus_per_mode);
    if (i % 2 == 0) {
      d.traffic[2] = mac::TrafficSpec::uwb_slotted_stream(msdus_per_mode);
    } else {
      d.cfg.modes[2].enabled = false;
    }
    if (i % 3 != 2) {
      d.traffic[1] = mac::TrafficSpec::wimax_framed_uplink(msdus_per_mode);
    } else {
      d.cfg.modes[1].enabled = false;
    }
    spec.add_station(std::move(d));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::contended_wifi_cell(std::size_t n_stations, u64 seed,
                                               u32 msdus_per_station,
                                               u32 rts_threshold) {
  ScenarioSpec spec;
  spec.name = "contended-wifi-" + std::to_string(n_stations);
  spec.seed = seed;
  spec.max_cycles = 120'000'000;

  DrmpConfig base = DrmpConfig::standard_three_mode();
  base.modes[1].enabled = false;  // WiFi only: contention is the workload.
  base.modes[2].enabled = false;
  base.modes[0].ident.rts_threshold = rts_threshold;

  CellSpec cell;
  cell.topology = Topology::kSharedMedium;
  cell.stations.reserve(n_stations);
  for (std::size_t i = 0; i < n_stations; ++i) {
    DeviceSpec d;
    d.cfg = base.for_station(static_cast<int>(i) + 1);
    d.traffic[0] = mac::TrafficSpec::wifi_csma_bursts(msdus_per_station);
    // Aligned arrivals and modest sizes: every interval boundary fires a
    // burst on every station, so each round is a genuine contention round
    // while a cell run stays within the cycle budget. Two-deep bursts keep a
    // station re-contending with a fresh backoff draw right after each
    // completion — fresh draws against the other stations' residuals are
    // where same-slot collisions come from.
    d.traffic[0].start_us = 150.0;
    d.traffic[0].interval_us = 2500.0;
    d.traffic[0].msdu_min_bytes = 256;
    d.traffic[0].msdu_max_bytes = 640;
    d.traffic[0].burst_len = 2;
    d.traffic[0].max_inflight = 2;
    cell.stations.push_back(std::move(d));
  }
  spec.cells.push_back(std::move(cell));
  return spec;
}

ScenarioSpec ScenarioSpec::contended_wifi_topology(std::size_t n_stations, Reach reach,
                                                   u64 seed, u32 msdus_per_station,
                                                   u32 rts_threshold) {
  ScenarioSpec spec =
      contended_wifi_cell(n_stations, seed, msdus_per_station, rts_threshold);
  CellSpec& cell = spec.cells[0];
  switch (reach) {
    case Reach::kFull:
      // Explicit all-ones: same physics as the trivial default, but through
      // the per-listener machinery (the digest-equivalence pin rides on it).
      cell.contention.audibility = net::AudibilityMatrix::full(n_stations);
      spec.name += "-full";
      break;
    case Reach::kHiddenPair:
      cell.contention.audibility =
          net::AudibilityMatrix::hidden_pair(n_stations, 0, 1);
      spec.name += "-hidden";
      break;
    case Reach::kChain:
      cell.contention.audibility = net::AudibilityMatrix::chain(n_stations);
      spec.name += "-chain";
      break;
    case Reach::kAsymmetric:
      cell.contention.audibility =
          net::AudibilityMatrix::asymmetric_pair(n_stations, 0, 1);
      spec.name += "-asym";
      break;
  }
  // Hidden (and one-way-deaf) nodes without virtual carrier sense collide
  // forever; NAV is the mechanism RTS/CTS protects exchanges with, so the
  // whole topology family runs with it on (policy — the RTS threshold —
  // stays the variable).
  // Long single-fragment MSDUs replace the canonical cell's modest sizes: a
  // 700-1000 byte frame occupies the air longer than the whole CW_min
  // backoff spread, so mutually-deaf stations overlap almost every aligned
  // attempt — exactly the regime the RTS threshold exists for (a 20-byte
  // RTS risks a ~35 us collision window instead of ~700 us of data). One
  // MSDU per round, with the round interval wide enough for a collided
  // exchange to resolve its retries, so *every* round re-aligns the
  // stations into a fresh hidden-node confrontation instead of the
  // completion-gated drift of the canonical cell.
  for (DeviceSpec& d : cell.stations) {
    d.cfg.modes[0].ident.nav_enabled = true;
    d.traffic[0].msdu_min_bytes = 700;
    d.traffic[0].msdu_max_bytes = 1000;
    d.traffic[0].burst_len = 1;
    d.traffic[0].max_inflight = 1;
    d.traffic[0].interval_us = 20'000.0;
  }
  return spec;
}

ScenarioSpec ScenarioSpec::coupled_wifi_cells(std::size_t n_cells,
                                              std::size_t stations_per_cell,
                                              u64 seed, u32 msdus_per_station,
                                              net::AudibilityMatrix reach) {
  // Each cell is the canonical contended cell; the composition couples them
  // on one channel. Reusing the factory keeps the isolation pin sharp: with
  // an all-zeros reach (or no coupling at all) the fleet must reproduce the
  // per-cell digests of n independent contended_wifi_cell runs placed in
  // one spec.
  ScenarioSpec spec;
  spec.name = "coupled-wifi-" + std::to_string(n_cells) + "x" +
              std::to_string(stations_per_cell);
  spec.seed = seed;
  spec.max_cycles = 120'000'000;
  CouplingSpec coupling;
  coupling.reach = std::move(reach);
  spec.couplings.push_back(std::move(coupling));
  for (std::size_t c = 0; c < n_cells; ++c) {
    ScenarioSpec one =
        contended_wifi_cell(stations_per_cell, seed, msdus_per_station);
    one.cells[0].coupling_group = 0;
    spec.cells.push_back(std::move(one.cells[0]));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::mobile_wifi_cell(std::size_t n_stations, bool frozen,
                                            bool associate, u64 seed,
                                            u32 msdus_per_station,
                                            u32 rts_threshold) {
  // The topology-family cell (long aligned MSDU rounds, NAV on), with the
  // static matrix replaced by driver-derived audibility.
  ScenarioSpec spec = contended_wifi_topology(n_stations, Reach::kFull, seed,
                                              msdus_per_station, rts_threshold);
  spec.name = "mobile-wifi-" + std::to_string(n_stations) +
              (frozen ? "-frozen" : "") + (associate ? "-assoc" : "");
  CellSpec& cell = spec.cells[0];
  cell.contention.audibility = net::AudibilityMatrix{};  // Driver-derived.
  net::MobilitySpec& mob = cell.mobility;
  mob.enabled = true;
  mob.range_m = 100.0;
  mob.stations.resize(n_stations);
  // Geometry: station 0 at (30,0), station 1 far left at (-60,0) — their
  // distance is 90 m, inside range. Stations 2..n cluster at ((j-2)*6, 12),
  // within range of both (n <= 9 keeps station 1 connected to the whole
  // cluster). The walk takes station 0 to (48,0): only the (0,1) distance
  // crosses 100 m (at x = 40), everyone still reaches the omni AP — the
  // walk-behind-a-wall shape.
  if (n_stations > 0) mob.stations[0] = net::MobilityPath{30.0, 0.0, {}};
  if (n_stations > 1) mob.stations[1] = net::MobilityPath{-60.0, 0.0, {}};
  for (std::size_t j = 2; j < n_stations; ++j) {
    mob.stations[j] =
        net::MobilityPath{static_cast<double>(j - 2) * 6.0, 12.0, {}};
  }
  if (!frozen && n_stations > 0) {
    mob.stations[0].waypoints = {
        net::Waypoint{30.0, 0.0, 5'000.0},   // Hold, then
        net::Waypoint{48.0, 0.0, 30'000.0},  // walk out (hidden from ~19 ms),
        net::Waypoint{48.0, 0.0, 45'000.0},  // linger behind the wall,
        net::Waypoint{30.0, 0.0, 70'000.0},  // and walk back (~56 ms reheal).
    };
  }
  mob.ap_x_m = 0.0;
  mob.ap_y_m = 6.0;
  if (associate) {
    mob.associate = true;
    mob.adapt_rate = true;
  }
  return spec;
}

ScenarioSpec ScenarioSpec::roaming_wifi_cells(std::size_t stations_per_cell,
                                              u64 seed, u32 msdus_per_station) {
  ScenarioSpec spec;
  spec.name = "roaming-wifi-2x" + std::to_string(stations_per_cell);
  spec.seed = seed;
  spec.max_cycles = 120'000'000;
  CouplingSpec coupling;  // Trivial reach: both cells hear each other.
  spec.couplings.push_back(std::move(coupling));
  for (std::size_t c = 0; c < 2; ++c) {
    ScenarioSpec one = contended_wifi_topology(stations_per_cell, Reach::kFull,
                                               seed, msdus_per_station);
    one.cells[0].coupling_group = 0;
    spec.cells.push_back(std::move(one.cells[0]));
  }
  // Cell 0 roams; cell 1 stays a static co-channel neighbour.
  CellSpec& cell = spec.cells[0];
  cell.contention.audibility = net::AudibilityMatrix{};  // Driver-derived.
  net::MobilitySpec& mob = cell.mobility;
  mob.enabled = true;
  // Wide station-to-station range: intra-cell audibility stays full for the
  // whole walk, so the run isolates the handoff/reassociation flow (zero
  // topology epochs, pinned by tests).
  mob.range_m = 1000.0;
  mob.stations.resize(stations_per_cell);
  if (stations_per_cell > 0) {
    mob.stations[0] = net::MobilityPath{
        20.0,
        0.0,
        {net::Waypoint{20.0, 0.0, 5'000.0},
         net::Waypoint{280.0, 0.0, 45'000.0}},  // Crosses 150 m at ~25 ms.
    };
  }
  for (std::size_t j = 1; j < stations_per_cell; ++j) {
    mob.stations[j] =
        net::MobilityPath{static_cast<double>(j) * 5.0, 10.0, {}};
  }
  mob.ap_x_m = 0.0;
  mob.ap_y_m = 0.0;
  mob.roam_out_m = 150.0;
  mob.neighbor_aps = {net::NeighborAp{1, 300.0, 0.0}};
  mob.associate = true;
  return spec;
}

ScenarioSpec ScenarioSpec::contended_wifi_fragmented(std::size_t n_stations,
                                                     bool frag_burst, u64 seed,
                                                     u32 msdus_per_station) {
  ScenarioSpec spec = contended_wifi_cell(n_stations, seed, msdus_per_station);
  spec.name += frag_burst ? "-fragburst" : "-fragmented";
  for (DeviceSpec& d : spec.cells[0].stations) {
    auto& ident = d.cfg.modes[0].ident;
    // 700-1000 byte MSDUs against a 256-byte threshold: 3-4 fragment
    // bursts, the regime where per-fragment re-contention multiplies the
    // collision exposure. NAV on for both arms so the Duration chaining the
    // burst announces is actually honoured — keeping the flag the single
    // variable between the two specs.
    ident.frag_threshold = 256;
    ident.nav_enabled = true;
    ident.frag_burst_enabled = frag_burst;
    d.traffic[0].msdu_min_bytes = 700;
    d.traffic[0].msdu_max_bytes = 1000;
    d.traffic[0].burst_len = 1;
    d.traffic[0].max_inflight = 1;
    // Wide aligned rounds, like the topology family: every round restarts a
    // full contention confrontation, and a collided burst has room to
    // resolve its retries inside its own round.
    d.traffic[0].interval_us = 25'000.0;
  }
  return spec;
}

}  // namespace drmp::scenario
