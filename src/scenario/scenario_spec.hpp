// Declarative scenario descriptions for multi-device fleet simulation.
//
// A ScenarioSpec is a plain value: N device specs (full DRMP configuration
// plus a per-mode traffic shape), a shared lossy-channel model, a seed and a
// cycle budget. The ScenarioEngine turns one into a running fleet; two
// engines built from equal specs produce byte-identical aggregate statistics.
//
// Field reference (also recorded in ROADMAP.md):
//   ScenarioSpec.name            — label used in reports.
//   ScenarioSpec.seed            — master seed; every PRNG in the run (traffic
//                                  sizes/contents, channel corruption) derives
//                                  from (seed, device index, mode).
//   ScenarioSpec.max_cycles      — per-device cycle budget.
//   ScenarioSpec.lockstep_stride — MultiScheduler lockstep granularity.
//   ScenarioSpec.channel[mode]   — shared channel model applied to that
//                                  protocol band on every device.
//   ScenarioSpec.devices[i]      — one DRMP device: its DrmpConfig (use
//                                  DrmpConfig::for_station for unique fleet
//                                  identities) and one TrafficSpec per mode.
//   ChannelSpec.loss_permille    — per-frame corruption probability (‰).
//   ChannelSpec.min_frame_bytes  — frames below this size fly clean, so short
//                                  control responses (ACK/CTS) are not hit.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "drmp/device.hpp"
#include "mac/traffic_gen.hpp"
#include "sim/multi_scheduler.hpp"

namespace drmp::scenario {

/// Lossy-channel model for one protocol band, shared fleet-wide.
struct ChannelSpec {
  u32 loss_permille = 0;  ///< Chance a data-sized frame is corrupted on air.
  std::size_t min_frame_bytes = 64;  ///< Control frames stay clean below this.
};

/// One DRMP device in the fleet and the traffic offered to it.
struct DeviceSpec {
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  std::array<mac::TrafficSpec, kNumModes> traffic{};
};

struct ScenarioSpec {
  std::string name = "scenario";
  u64 seed = 1;
  Cycle max_cycles = 40'000'000;
  Cycle lockstep_stride = sim::MultiScheduler::kDefaultStride;
  /// Worker threads for the batched path. 1 = serial (the default, and the
  /// reference for bit-identical digests — parallel runs match it exactly);
  /// 0 = one per hardware core. Workers persist across lockstep rounds;
  /// larger strides still amortise the per-round wakeup on small fleets.
  unsigned worker_threads = 1;
  std::array<ChannelSpec, kNumModes> channel{};
  std::vector<DeviceSpec> devices;

  /// The canonical fleet workload: n devices with heterogeneous traffic
  /// mixes over all three prototype standards — every device carries WiFi
  /// CSMA bursts, every second a UWB slotted stream, and two of every three
  /// a WiMAX framed uplink — over a lossy WiFi/UWB channel. TDD/superframe
  /// periods are tightened versus the thesis defaults so a fleet run stays
  /// in the millions-of-cycles range.
  static ScenarioSpec mixed_three_standard(std::size_t n_devices, u64 seed = 1,
                                           u32 msdus_per_mode = 3);
};

}  // namespace drmp::scenario
