// Declarative scenario descriptions for multi-device fleet simulation.
//
// A ScenarioSpec is a plain value: a list of *cells*, a fleet-wide
// lossy-channel model, a seed and a cycle budget. The ScenarioEngine turns
// one into a running fleet; two engines built from equal specs produce
// byte-identical aggregate statistics.
//
// A cell is one radio neighbourhood advanced by one scheduler (clock
// domain). Two topologies:
//   * kPointToPoint — one DRMP device against a scripted far-end peer on a
//     private, collision-free medium per mode (the paper's experiment
//     shape; PR-1 fleets are lists of these).
//   * kSharedMedium — N full DRMP devices contending on one
//     net::ContendedMedium per mode, either against a scripted access point
//     that ACKs/CTSes uplink traffic, or (access_point = false, exactly two
//     stations) against each other in the mirrored two-device topology.
//     Collisions, carrier-sense latency and the capture effect follow
//     ContentionSpec.
//
// Field reference (also recorded in ROADMAP.md):
//   ScenarioSpec.name            — label used in reports.
//   ScenarioSpec.seed            — master seed; every PRNG in the run (traffic
//                                  sizes/contents, channel corruption) derives
//                                  from (seed, station, mode).
//   ScenarioSpec.max_cycles      — per-cell cycle budget.
//   ScenarioSpec.lockstep_stride — MultiScheduler lockstep granularity.
//   ScenarioSpec.channel[mode]   — fleet-wide channel model; a cell may
//                                  override it with CellSpec.channel.
//   ScenarioSpec.cells[i]        — one cell (see above).
//   CellSpec.stations[j]         — one DRMP device: its DrmpConfig (use
//                                  DrmpConfig::for_station for unique fleet
//                                  identities; shared-medium cells re-derive
//                                  cell-consistent identities themselves) and
//                                  one TrafficSpec per mode.
//   ChannelSpec.loss_permille    — per-frame corruption probability (‰).
//   ChannelSpec.min_frame_bytes  — frames below this size fly clean, so short
//                                  control responses (ACK/CTS) are not hit.
//   ContentionSpec               — mirrors net::ContendedMedium::Params.
//   ScenarioSpec.couplings[g]    — co-channel coupling groups (inter-cell
//                                  latency/horizon + cell-granular reach);
//                                  CellSpec.coupling_group joins a cell to
//                                  one. See docs/MULTICELL.md.
//   ScenarioSpec.coupled_reference — single-scheduler reference coupling
//                                  (immediate injection) instead of lax-sync
//                                  lanes; digest-identical, pinned.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "drmp/device.hpp"
#include "mac/traffic_gen.hpp"
#include "net/audibility.hpp"
#include "net/topology_driver.hpp"
#include "sim/multi_scheduler.hpp"

namespace drmp::scenario {

/// Lossy-channel model for one protocol band.
struct ChannelSpec {
  u32 loss_permille = 0;  ///< Chance a data-sized frame is corrupted on air.
  std::size_t min_frame_bytes = 64;  ///< Control frames stay clean below this.
};

/// One DRMP device in the fleet and the traffic offered to it.
struct DeviceSpec {
  DrmpConfig cfg = DrmpConfig::standard_three_mode();
  std::array<mac::TrafficSpec, kNumModes> traffic{};
};

enum class Topology : u8 { kPointToPoint, kSharedMedium };

/// Shared-medium physics, mirroring net::ContendedMedium::Params.
struct ContentionSpec {
  /// Carrier-sense detection latency (the collision window); negative
  /// selects the protocol default of one contention slot.
  double cca_latency_us = -1.0;
  /// Capture effect preamble lock-in; 0 disables capture.
  double capture_preamble_us = 0.0;
  /// Deliver collided frames garbled instead of dropping them.
  bool deliver_garbled = false;
  /// Per-station reachability over the cell's *local station indices*
  /// (net/audibility.hpp). The default (trivial) matrix keeps every station
  /// in every other's footprint through the original code paths; a
  /// non-trivial matrix must cover exactly the cell's station count (the
  /// scripted access point is omnidirectional and needs no row).
  net::AudibilityMatrix audibility;
};

/// Co-channel coupling between the cells of one coupling group (see
/// net/channel_coupler.hpp and docs/MULTICELL.md). Cells of a group share
/// spectrum: every transmission in one member is forwarded into each member
/// that hears it as a foreign-carrier image, shifted by the inter-cell
/// latency — which doubles as the lax-sync lookahead horizon the engine
/// clamps the lockstep stride to.
struct CouplingSpec {
  /// Lumped inter-cell propagation + energy-detection latency. Also the
  /// lookahead horizon: smaller couplings synchronize lanes more often.
  double latency_us = 2.0;
  /// Cell-granular reach over the group's members in cell order:
  /// hears(listener_cell, tx_cell). Trivial = every member hears every
  /// other; a matrix with no off-diagonal hearing means full spatial reuse
  /// — the group is physically isolated and runs exactly like uncoupled
  /// cells (bit-identical digests, pinned).
  net::AudibilityMatrix reach;

  /// A scripted cell-granular reach revision: at `at_us` the group's reach
  /// becomes `reach` (same member coverage as the base matrix).
  struct ReachRevision {
    double at_us = 0.0;
    net::AudibilityMatrix reach;
  };
  /// Scripted reach revisions in strictly ascending at_us order. The engine
  /// applies each at the first lockstep round edge at or after its time —
  /// reach is piecewise-constant per round, which is what keeps lax-sync
  /// and immediate-injection reference digests identical through a
  /// revision (events generated during a round are judged under the reach
  /// that was live when the round began, on both paths).
  std::vector<ReachRevision> reach_script;

  /// True when any member can hear any other (the group actually couples).
  bool connected(std::size_t members) const {
    if (reach.trivial()) return members > 1;
    for (std::size_t l = 0; l < members; ++l) {
      for (std::size_t t = 0; t < members; ++t) {
        if (l != t && reach.hears(l, t)) return true;
      }
    }
    return false;
  }
};

/// One radio cell: its topology, member stations and channel physics.
struct CellSpec {
  Topology topology = Topology::kPointToPoint;
  /// kPointToPoint: exactly one station. kSharedMedium: two or more.
  std::vector<DeviceSpec> stations;
  /// kSharedMedium only: attach a scripted access point that ACKs data and
  /// answers RTS with CTS. false requires exactly two stations, which are
  /// then mirrored onto each other (the twodevice_test topology: both ends
  /// of the link are full DRMP devices).
  bool access_point = true;
  ContentionSpec contention;
  /// Per-cell channel override; unset inherits ScenarioSpec::channel.
  std::optional<std::array<ChannelSpec, kNumModes>> channel;
  /// Index into ScenarioSpec::couplings, or -1 (isolated — the default).
  /// Coupled cells must be kSharedMedium, share one arch_freq_hz across the
  /// group and run without the capture effect.
  int coupling_group = -1;
  /// Scripted waypoint mobility (net/topology_driver.hpp). Enabling it
  /// replaces ContentionSpec::audibility (which must stay trivial) with the
  /// driver-derived matrix and registers a TopologyDriver on the cell's
  /// scheduler; kSharedMedium with an access point only, capture off.
  net::MobilitySpec mobility;
};

/// Flight-recorder opt-in (src/obs/). Off by default: recorder-off runs are
/// bit-identical to a build without the subsystem (digests pinned). When
/// enabled, every cell owns a ring-buffer recorder with one track per
/// station and per medium band; the engine exposes Chrome-trace and text-
/// timeline exporters over them, plus scheduler execution-domain events.
struct TraceSpec {
  bool enabled = false;
  /// Ring capacity in events per cell per domain (oldest evicted past
  /// this; protocol and execution events evict independently).
  std::size_t capacity = std::size_t{1} << 18;
};

struct ScenarioSpec {
  std::string name = "scenario";
  u64 seed = 1;
  Cycle max_cycles = 40'000'000;
  Cycle lockstep_stride = sim::MultiScheduler::kDefaultStride;
  /// Worker threads for the batched path. 1 = serial (the default, and the
  /// reference for bit-identical digests — parallel runs match it exactly);
  /// 0 = one per hardware core. Workers persist across lockstep rounds;
  /// larger strides still amortise the per-round wakeup on small fleets.
  unsigned worker_threads = 1;
  /// Quiescence-aware scheduling on the batched path (sim/scheduler.hpp):
  /// skip components that prove their ticks are no-ops, fast-forward
  /// globally-idle stretches, and skip lockstep rounds for fully-quiescent
  /// lanes. Bit-identical to false (every component ticked every cycle);
  /// the equivalence tests pin that, so keep the flag only as the baseline
  /// for comparisons and for debugging suspected skip bugs.
  bool idle_skip = true;
  /// Structured event tracing (see TraceSpec). Orthogonal to idle_skip and
  /// worker_threads: the recorded protocol-event stream is pinned identical
  /// across all four combinations.
  TraceSpec trace;
  /// Fold each station's DeviceStats into FleetStats' running aggregates at
  /// collection (FleetStats::fold_retired) instead of retaining one entry
  /// per station, and drop the per-station metrics namespace: O(cells) live
  /// result memory for huge fleets. Digests and fleet totals are pinned
  /// bit-identical to the retained accounting; only the per-station
  /// breakdown views disappear.
  bool fold_device_stats = false;
  std::array<ChannelSpec, kNumModes> channel{};
  std::vector<CellSpec> cells;
  /// Co-channel coupling groups; CellSpec::coupling_group indexes this.
  std::vector<CouplingSpec> couplings;
  /// Run every connected coupling group on ONE shared scheduler with
  /// immediate cross-cell injection — the conventional conservative
  /// reference the lax-sync lane path is pinned digest-identical to. Slower
  /// (coupled cells lose lane parallelism and round skipping); exists for
  /// the equivalence tests and as the baseline bench arm.
  bool coupled_reference = false;

  /// Total stations across all cells.
  std::size_t station_count() const;
  /// Appends a single-station point-to-point cell (the PR-1 fleet shape).
  void add_station(DeviceSpec d);

  /// Structural validation, run by the engine before any cell is built:
  /// per-cell audibility matrices must cover exactly the cell's station
  /// count with an intact diagonal, mobility specs must be coherent
  /// (net::MobilitySpec::validate) and must not compete with an explicit
  /// matrix, and coupling reach scripts must cover their groups with
  /// strictly ascending times. Throws net::AudibilityError with cell
  /// context for topology shape errors, std::invalid_argument otherwise.
  void validate() const;

  /// The canonical point-to-point fleet workload: n devices, each in its own
  /// cell, with heterogeneous traffic mixes over all three prototype
  /// standards — every device carries WiFi CSMA bursts, every second a UWB
  /// slotted stream, and two of every three a WiMAX framed uplink — over a
  /// lossy WiFi/UWB channel. TDD/superframe periods are tightened versus the
  /// thesis defaults so a fleet run stays in the millions-of-cycles range.
  static ScenarioSpec mixed_three_standard(std::size_t n_devices, u64 seed = 1,
                                           u32 msdus_per_mode = 3);

  /// The canonical contention workload: one shared-medium cell of
  /// `n_stations` WiFi-only stations uplinking CSMA bursts to a scripted
  /// access point. Arrivals are aligned across stations so every burst
  /// contends; `rts_threshold` > 0 precedes MSDUs of that size or more with
  /// an RTS/CTS handshake.
  static ScenarioSpec contended_wifi_cell(std::size_t n_stations, u64 seed = 1,
                                          u32 msdus_per_station = 3,
                                          u32 rts_threshold = 0);

  /// Reachability shapes for the hidden-node workloads.
  enum class Reach : u8 {
    kFull,        ///< Every station hears every other (explicit all-ones).
    kHiddenPair,  ///< Stations 0 and 1 are mutually deaf; the rest a clique.
    kChain,       ///< A line: station i hears only stations i-1, i, i+1.
    /// One-way gap: station 1 is deaf to station 0 while station 0 still
    /// hears station 1 — the asymmetric link (power/antenna imbalance) the
    /// hidden-pair shape cannot express. The deaf side transmits over
    /// frames it cannot sense and collides; RTS/CTS + NAV (the AP's CTS is
    /// omnidirectional) and EIFS after the garbled pile-ups recover it.
    kAsymmetric,
  };

  /// The hidden-node variant of contended_wifi_cell: same stations, traffic
  /// and access point, but with a per-station audibility matrix shaped by
  /// `reach` and NAV virtual carrier sense enabled on every station — the
  /// regime where the RTS/CTS handshake (rts_threshold) earns its keep.
  static ScenarioSpec contended_wifi_topology(std::size_t n_stations, Reach reach,
                                              u64 seed = 1, u32 msdus_per_station = 3,
                                              u32 rts_threshold = 0);

  /// The fragmentation-under-contention workload: the canonical contended
  /// cell with a fragmentation threshold small enough that every MSDU
  /// (700-1000 bytes against a 256-byte threshold) splits into a 3-4
  /// fragment burst, NAV virtual carrier sense on. With `frag_burst` the
  /// burst flies SIFS-spaced with chained durations (802.11 §9.1.4); off,
  /// every fragment re-contends — the PR-2 simplification — so the pair of
  /// specs isolates exactly the mid-burst collision exposure the
  /// SIFS-spacing removes (`bench_net_fragburst` sweeps both).
  static ScenarioSpec contended_wifi_fragmented(std::size_t n_stations,
                                                bool frag_burst, u64 seed = 1,
                                                u32 msdus_per_station = 3);

  /// The overlapping-BSS workload: `n_cells` co-channel WiFi cells of
  /// `stations_per_cell` stations each (every cell its own AP and BSS, all
  /// on one channel), coupled into one group with `reach` over cell
  /// indices. Stations cannot decode the neighbour BSS's frames but their
  /// CCA hears them — inter-cell contention without inter-cell traffic, the
  /// regime docs/MULTICELL.md treats. Trivial reach = every cell hears
  /// every other; AudibilityMatrix::hidden_pair etc. build inter-cell
  /// hidden-node shapes. Arrivals are aligned across cells so every round
  /// contends across BSS boundaries.
  static ScenarioSpec coupled_wifi_cells(std::size_t n_cells,
                                         std::size_t stations_per_cell,
                                         u64 seed = 1, u32 msdus_per_station = 3,
                                         net::AudibilityMatrix reach = {});

  /// The mobility workload: the contended_wifi_topology cell (long aligned
  /// MSDU rounds, NAV on) with scripted waypoint mobility instead of a
  /// static matrix. Station 1 sits far left, the rest cluster near the
  /// origin, and station 0 — unless `frozen` — walks away until the (0,1)
  /// link crosses the audibility range mid-run (the walk-behind-a-wall
  /// shape), then returns. `frozen` drops the waypoints: every position
  /// holds, the derived matrix is full connectivity, and the run must
  /// reproduce the static Reach::kFull digests bit-for-bit (pinned).
  /// `associate` gates traffic behind the probe/assoc exchange and enables
  /// rate adaptation. Supports up to 9 stations (cluster geometry).
  static ScenarioSpec mobile_wifi_cell(std::size_t n_stations, bool frozen,
                                       bool associate, u64 seed = 1,
                                       u32 msdus_per_station = 3,
                                       u32 rts_threshold = 0);

  /// The roaming workload: two coupled co-channel cells; cell 0's station 0
  /// walks from its home AP at (0,0) toward cell 1's AP at (300,0),
  /// crossing the 150 m roam-out threshold mid-run and handing off. The
  /// station-to-station range is wide, so intra-cell audibility stays full
  /// — the run isolates the handoff/reassociation flow. Association is on
  /// in cell 0; cell 1 is a static contended cell.
  static ScenarioSpec roaming_wifi_cells(std::size_t stations_per_cell,
                                         u64 seed = 1,
                                         u32 msdus_per_station = 3);
};

}  // namespace drmp::scenario
