#include "scenario/scenario_engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "sim/multi_scheduler.hpp"

namespace drmp::scenario {

namespace {
// Peer station ids live far above fleet station ids (which start at 1).
constexpr int kPeerStationBase = 1000;
}  // namespace

struct ScenarioEngine::Cell {
  std::unique_ptr<sim::Scheduler> sched;
  std::array<std::unique_ptr<phy::Medium>, kNumModes> media{};
  std::array<std::unique_ptr<phy::ScriptedPeer>, kNumModes> peers{};
  std::unique_ptr<DrmpDevice> device;
  std::array<std::unique_ptr<mac::TrafficGen>, kNumModes> gens{};
  std::array<u64, kNumModes> channel_rng{};
  // Completion counters fed by the device callbacks.
  std::array<u32, kNumModes> completed{};
  std::array<u32, kNumModes> tx_ok{};
  std::array<u64, kNumModes> retries{};
};

ScenarioEngine::ScenarioEngine(ScenarioSpec spec) : spec_(std::move(spec)) {
  cells_.reserve(spec_.devices.size());
  for (std::size_t i = 0; i < spec_.devices.size(); ++i) build_cell(i);
}

ScenarioEngine::~ScenarioEngine() = default;

void ScenarioEngine::build_cell(std::size_t dev_index) {
  const DeviceSpec& dspec = spec_.devices[dev_index];
  const DrmpConfig& cfg = dspec.cfg;
  const int station_id = static_cast<int>(dev_index) + 1;

  auto cell = std::make_unique<Cell>();
  cell->sched = std::make_unique<sim::Scheduler>(cfg.arch_freq_hz);
  const sim::TimeBase tb(cfg.arch_freq_hz);

  // Media lead the cycle (their now() is what everything else samples).
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (!cfg.modes[m].enabled) continue;
    cell->media[m] = std::make_unique<phy::Medium>(cfg.modes[m].ident.proto, tb);
    cell->sched->add(*cell->media[m], "medium." + std::string(to_string(mode_from_index(m))),
                     sim::Scheduler::kStageMedium);

    // Shared lossy-channel model, one PRNG stream per (seed, device, mode).
    const ChannelSpec& chan = spec_.channel[m];
    cell->channel_rng[m] = spec_.seed ^ (0xC4A11D5Cull * (dev_index + 1)) ^ (m << 16);
    if (chan.loss_permille > 0) {
      u64* rng = &cell->channel_rng[m];
      cell->media[m]->tamper = [chan, rng](Bytes& frame) {
        if (frame.size() < chan.min_frame_bytes) return false;
        if (splitmix64(*rng) % 1000 >= chan.loss_permille) return false;
        const u64 r = splitmix64(*rng);
        frame[r % frame.size()] ^= static_cast<u8>(1u << ((r >> 32) % 8));
        return true;
      };
    }
  }

  cell->device = std::make_unique<DrmpDevice>(*cell->sched, cfg, station_id);
  cell->device->trace().set_enabled(false);  // No per-cycle trace work in fleets.
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (!cfg.modes[m].enabled) continue;
    cell->device->attach_medium(mode_from_index(m), cell->media[m].get());
  }

  // Scripted far ends, mirroring the device's per-mode peer identities.
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (!cfg.modes[m].enabled) continue;
    cell->peers[m] = std::make_unique<phy::ScriptedPeer>(
        *cell->media[m], cell->device->timebase(),
        kPeerStationBase + station_id * static_cast<int>(kNumModes) + static_cast<int>(m));
    cell->peers[m]->set_wifi_addr(mac::MacAddr::from_u64(cfg.modes[m].ident.peer_addr));
    cell->peers[m]->set_uwb_ids(cfg.modes[m].ident.pnid, cfg.modes[m].ident.peer_dev_id);
    cell->sched->add(*cell->peers[m], "peer." + std::string(to_string(mode_from_index(m))));
  }

  // Traffic generators, one per enabled mode with an enabled traffic spec.
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (!cfg.modes[m].enabled || !dspec.traffic[m].enabled) continue;
    const u64 seed = spec_.seed ^ (0x7D3F00D5ull * (dev_index + 1)) ^ (m << 24);
    cell->gens[m] = std::make_unique<mac::TrafficGen>(dspec.traffic[m],
                                                      cell->device->timebase(), seed);
    DrmpDevice* dev = cell->device.get();
    const Mode mode = mode_from_index(m);
    cell->gens[m]->send = [dev, mode](Bytes b) { dev->host_send(mode, std::move(b)); };
    cell->sched->add(*cell->gens[m], "traffic." + std::string(to_string(mode)));
  }

  Cell* c = cell.get();
  cell->device->on_tx_complete = [c](Mode m, bool ok, u32 retry_count) {
    const std::size_t i = index(m);
    ++c->completed[i];
    if (ok) ++c->tx_ok[i];
    c->retries[i] += retry_count;
    if (c->gens[i]) c->gens[i]->notify_tx_complete();
  };

  cells_.push_back(std::move(cell));
}

bool ScenarioEngine::cell_drained(const Cell& cell) {
  for (const auto& gen : cell.gens) {
    if (gen && !gen->drained()) return false;
  }
  return true;
}

FleetStats ScenarioEngine::run(Path path) {
  // One-shot: a second run would see every traffic generator already
  // exhausted and return plausible-looking zero-cycle stats. Fail loudly in
  // every build type.
  if (ran_) {
    throw std::logic_error("ScenarioEngine::run is one-shot; build a fresh engine");
  }
  ran_ = true;

  const auto t0 = std::chrono::steady_clock::now();
  Cycle lockstep_cycles = 0;
  bool all_drained = true;

  if (path == Path::kBatched) {
    sim::MultiScheduler multi;
    for (auto& cell : cells_) {
      Cell* c = cell.get();
      multi.add(*c->sched, [c] { return cell_drained(*c); });
    }
    const unsigned workers = spec_.worker_threads != 0
                                 ? spec_.worker_threads
                                 : std::max(1u, std::thread::hardware_concurrency());
    const auto res = multi.run(spec_.max_cycles, spec_.lockstep_stride, workers);
    lockstep_cycles = res.cycles;
    all_drained = res.all_finished;
  } else {
    for (auto& cell : cells_) {
      Cell* c = cell.get();
      const bool drained =
          c->sched->run_until([c] { return cell_drained(*c); }, spec_.max_cycles);
      all_drained = all_drained && drained;
      lockstep_cycles = std::max(lockstep_cycles, c->sched->now());
    }
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return collect(lockstep_cycles, all_drained, wall);
}

FleetStats ScenarioEngine::collect(Cycle lockstep_cycles, bool all_drained,
                                   double wall_seconds) const {
  FleetStats fs;
  fs.scenario_name = spec_.name;
  fs.lockstep_cycles = lockstep_cycles;
  fs.all_drained = all_drained;
  fs.wall_seconds = wall_seconds;
  fs.devices.reserve(cells_.size());
  for (const auto& cell : cells_) {
    DeviceStats ds;
    ds.station_id = cell->device->station_id();
    ds.cycles_run = cell->sched->now();
    for (std::size_t m = 0; m < kNumModes; ++m) {
      if (cell->gens[m]) {
        ds.offered[m] = cell->gens[m]->offered();
        ds.offered_bytes[m] = cell->gens[m]->offered_bytes();
      }
      ds.completed[m] = cell->completed[m];
      ds.tx_ok[m] = cell->tx_ok[m];
      ds.retries[m] = cell->retries[m];
      if (cell->peers[m]) {
        ds.peer_rx[m] = static_cast<u32>(cell->peers[m]->received_data_frames().size());
        ds.peer_acks[m] = cell->peers[m]->acks_sent();
      }
      if (cell->media[m]) ds.tampered[m] = cell->media[m]->tampered_frames();
    }
    fs.devices.push_back(ds);
  }
  return fs;
}

DrmpDevice& ScenarioEngine::device(std::size_t i) { return *cells_.at(i)->device; }

sim::Scheduler& ScenarioEngine::scheduler(std::size_t i) { return *cells_.at(i)->sched; }

}  // namespace drmp::scenario
