#include "scenario/scenario_engine.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "net/cell.hpp"
#include "net/channel_coupler.hpp"
#include "obs/trace_export.hpp"
#include "sim/checkpoint.hpp"
#include "sim/multi_scheduler.hpp"

namespace drmp::scenario {

void ScenarioEngine::resolve_couplings() {
  groups_.assign(spec_.couplings.size(), Group{});
  for (std::size_t i = 0; i < spec_.cells.size(); ++i) {
    const CellSpec& cell = spec_.cells[i];
    if (cell.coupling_group < 0) continue;
    const auto g = static_cast<std::size_t>(cell.coupling_group);
    if (g >= groups_.size()) {
      throw std::invalid_argument(
          "ScenarioEngine: CellSpec::coupling_group outside "
          "ScenarioSpec::couplings");
    }
    if (cell.topology != Topology::kSharedMedium) {
      throw std::invalid_argument(
          "ScenarioEngine: only shared-medium cells can join a coupling group "
          "(a point-to-point medium cannot carry foreign carrier)");
    }
    groups_[g].members.push_back(i);
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    Group& group = groups_[g];
    const CouplingSpec& cs = spec_.couplings[g];
    if (group.members.size() < 2) {
      throw std::invalid_argument(
          "ScenarioEngine: a coupling group needs at least two member cells");
    }
    if (!cs.reach.trivial() && cs.reach.n != group.members.size()) {
      throw std::invalid_argument(
          "ScenarioEngine: the inter-cell reach matrix must cover exactly the "
          "group's member cells");
    }
    for (const CouplingSpec::ReachRevision& rr : cs.reach_script) {
      if (!rr.reach.trivial() && rr.reach.n != group.members.size()) {
        throw std::invalid_argument(
            "ScenarioEngine: every scripted reach revision must cover exactly "
            "the group's member cells");
      }
    }
    const double freq =
        spec_.cells[group.members[0]].stations[0].cfg.arch_freq_hz;
    for (const std::size_t i : group.members) {
      if (spec_.cells[i].stations[0].cfg.arch_freq_hz != freq) {
        throw std::invalid_argument(
            "ScenarioEngine: every cell of a coupling group must share one "
            "arch_freq_hz (one lookahead horizon, one lockstep clock)");
      }
    }
    group.connected = cs.connected(group.members.size());
    if (!group.connected) {
      if (!cs.reach_script.empty()) {
        throw std::invalid_argument(
            "ScenarioEngine: a reach script needs an initially-connected "
            "coupling group (isolated groups never build a coupler)");
      }
      continue;  // Full spatial reuse: stays isolated.
    }
    for (const std::size_t i : group.members) {
      if (spec_.cells[i].contention.capture_preamble_us > 0.0) {
        throw std::invalid_argument(
            "ScenarioEngine: the capture effect is incompatible with "
            "co-channel coupling (order-dependent verdicts)");
      }
    }
    if (!(cs.latency_us > 0.0)) {
      throw std::invalid_argument(
          "ScenarioEngine: a connected coupling needs a positive inter-cell "
          "latency");
    }
    const sim::TimeBase tb(freq);
    group.horizon = std::max<Cycle>(1, tb.us_to_cycles(cs.latency_us));
  }
}

void ScenarioEngine::build_couplers() {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const Group& group = groups_[g];
    if (!group.connected) continue;
    net::ChannelCoupler::Params p;
    p.latency = group.horizon;
    p.reach = spec_.couplings[g].reach;
    p.immediate = spec_.coupled_reference;
    auto coupler = std::make_unique<net::ChannelCoupler>(std::move(p));
    for (std::size_t m = 0; m < group.members.size(); ++m) {
      net::Cell& cell = *cells_[group.members[m]];
      for (std::size_t band = 0; band < kNumModes; ++band) {
        phy::Medium* medium = cell.medium(mode_from_index(band));
        if (medium == nullptr) continue;
        // Shared-medium topology is validated, so every medium here is the
        // contended backend.
        coupler->attach(m, band, static_cast<net::ContendedMedium&>(*medium));
      }
    }
    couplers_.push_back(std::move(coupler));
  }
}

ScenarioEngine::ScenarioEngine(ScenarioSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  resolve_couplings();

  // Reference coupling: every connected group becomes one clock domain.
  group_scheds_.resize(groups_.size());
  std::vector<sim::Scheduler*> cell_sched(spec_.cells.size(), nullptr);
  if (spec_.coupled_reference) {
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      if (!groups_[g].connected) continue;
      group_scheds_[g] = std::make_unique<sim::Scheduler>(
          spec_.cells[groups_[g].members[0]].stations[0].cfg.arch_freq_hz);
      for (const std::size_t i : groups_[g].members) {
        cell_sched[i] = group_scheds_[g].get();
      }
    }
  }

  cells_.reserve(spec_.cells.size());
  int next_station_id = 1;
  for (std::size_t i = 0; i < spec_.cells.size(); ++i) {
    cells_.push_back(std::make_unique<net::Cell>(spec_.cells[i], spec_.channel,
                                                 spec_.seed, i, next_station_id,
                                                 cell_sched[i], spec_.trace));
    cells_.back()->scheduler().set_idle_skip(spec_.idle_skip);
    next_station_id += static_cast<int>(spec_.cells[i].stations.size());
  }

  build_couplers();

  // Scripted reach revisions, quantized *up* to lockstep round edges and
  // sorted: with the reach piecewise-constant per round, the lax path
  // (drain at the edge) and the immediate reference path (forward at
  // generation time) judge every event under the same matrix.
  const Cycle stride = effective_stride();
  std::size_t coupler_idx = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (!groups_[g].connected) continue;
    const sim::TimeBase tb(
        spec_.cells[groups_[g].members[0]].stations[0].cfg.arch_freq_hz);
    for (const CouplingSpec::ReachRevision& rr : spec_.couplings[g].reach_script) {
      const Cycle raw = tb.us_to_cycles(rr.at_us);
      const Cycle edge = (raw + stride - 1) / stride * stride;
      reach_events_.push_back(ReachEvent{edge, coupler_idx, rr.reach});
    }
    ++coupler_idx;
  }
  std::stable_sort(reach_events_.begin(), reach_events_.end(),
                   [](const ReachEvent& a, const ReachEvent& b) {
                     return a.edge < b.edge;
                   });
}

ScenarioEngine::~ScenarioEngine() = default;

Cycle ScenarioEngine::effective_stride() const noexcept {
  Cycle stride = spec_.lockstep_stride;
  for (const Group& g : groups_) {
    if (g.connected) stride = std::min(stride, g.horizon);
  }
  return stride;
}

u64 ScenarioEngine::fingerprint() const {
  sim::Digest d;
  d.mix(spec_.seed).mix(effective_stride()).mix(spec_.coupled_reference ? 1 : 0);
  d.mix(static_cast<u64>(spec_.cells.size()));
  for (const CellSpec& c : spec_.cells) {
    d.mix(static_cast<u64>(c.topology));
    d.mix(static_cast<u64>(c.stations.size()));
    d.mix(static_cast<u64>(c.coupling_group) + 1);
  }
  d.mix(static_cast<u64>(spec_.couplings.size()));
  return d.value();
}

void ScenarioEngine::write_snapshot(Cycle lockstep_now) const {
  sim::snap::Writer w;
  w.begin_record("engine");
  u64 fp = fingerprint();
  w.io(fp);
  u64 base = lockstep_now;
  w.io(base);
  u64 ncouplers = couplers_.size();
  w.io(ncouplers);
  for (const auto& coupler : couplers_) coupler->persist(w);
  w.end_record();
  // One record per unique scheduler, in cell order: reference-coupled groups
  // share one clock domain and must save (and restore) it exactly once.
  std::set<const sim::Scheduler*> seen;
  std::size_t k = 0;
  for (const auto& cell : cells_) {
    if (!seen.insert(&cell->scheduler()).second) continue;
    w.begin_record("sched" + std::to_string(k++));
    cell->scheduler().save_state(w);
    w.end_record();
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    w.begin_record("cell" + std::to_string(i));
    cells_[i]->save_state(w);
    w.end_record();
  }
  w.write_file(checkpoint_path_);
}

void ScenarioEngine::checkpoint_every(Cycle every, std::string path) {
  if (every == 0 || path.empty()) {
    throw std::invalid_argument(
        "ScenarioEngine::checkpoint_every needs a positive period and a path");
  }
  if (spec_.trace.enabled) {
    throw std::logic_error(
        "ScenarioEngine: checkpointing is incompatible with tracing "
        "(flight-recorder rings are not serialized)");
  }
  checkpoint_every_ = every;
  checkpoint_path_ = std::move(path);
}

void ScenarioEngine::resume(const std::string& path) {
  if (ran_) {
    throw std::logic_error("ScenarioEngine::resume must precede run()");
  }
  if (spec_.trace.enabled) {
    throw std::logic_error(
        "ScenarioEngine: resuming is incompatible with tracing "
        "(flight-recorder rings are not serialized)");
  }
  sim::snap::Reader r(path);
  r.expect("engine");
  u64 fp = 0;
  r.io(fp);
  if (fp != fingerprint()) {
    throw sim::snap::SnapshotError(
        "snapshot fingerprint does not match this scenario (seed, stride, "
        "cells, stations and couplings must be identical; only the execution "
        "strategy — worker_threads, idle_skip — may differ)");
  }
  u64 base = 0;
  r.io(base);
  u64 ncouplers = 0;
  r.io(ncouplers);
  if (ncouplers != couplers_.size()) {
    throw sim::snap::SnapshotError(
        "snapshot coupler count does not match this scenario");
  }
  for (auto& coupler : couplers_) coupler->persist(r);
  r.leave();
  std::set<const sim::Scheduler*> seen;
  std::size_t k = 0;
  for (auto& cell : cells_) {
    if (!seen.insert(&cell->scheduler()).second) continue;
    r.expect("sched" + std::to_string(k++));
    cell->scheduler().load_state(r);
    r.leave();
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    r.expect("cell" + std::to_string(i));
    cells_[i]->load_state(r);
    r.leave();
  }
  if (!r.at_end()) {
    throw sim::snap::RecordOverrunError(
        "snapshot payload carries trailing bytes past the last cell record");
  }
  resume_base_ = static_cast<Cycle>(base);
}

FleetStats ScenarioEngine::run(Path path) {
  // One-shot: a second run would see every traffic generator already
  // exhausted and return plausible-looking zero-cycle stats. Fail loudly in
  // every build type.
  if (ran_) {
    throw std::logic_error("ScenarioEngine::run is one-shot; build a fresh engine");
  }
  ran_ = true;

  const auto t0 = std::chrono::steady_clock::now();
  Cycle lockstep_cycles = 0;
  bool all_drained = true;

  if (path == Path::kBatched) {
    sim::MultiScheduler multi;
    // Group membership decides each cell's early-exit predicate: coupled
    // cells stay on the air for their neighbours until the whole group
    // drains, so every member retires at one common round edge and the
    // digested cycle counts match between the lax and reference couplings.
    std::vector<int> group_of(cells_.size(), -1);
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      if (!groups_[g].connected) continue;
      for (const std::size_t i : groups_[g].members) {
        group_of[i] = static_cast<int>(g);
      }
    }
    std::set<const sim::Scheduler*> added;  // Reference groups share lanes.
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (!added.insert(&cells_[i]->scheduler()).second) continue;
      if (group_of[i] >= 0) {
        const Group* g = &groups_[static_cast<std::size_t>(group_of[i])];
        multi.add(cells_[i]->scheduler(), [this, g] {
          for (const std::size_t m : g->members) {
            if (!cells_[m]->drained()) return false;
          }
          return true;
        });
      } else {
        net::Cell* c = cells_[i].get();
        multi.add(c->scheduler(), [c] { return c->drained(); });
      }
    }
    // Fast-forward reach revisions a resumed run already lived through (the
    // reach itself is not persisted — re-application re-derives it and the
    // coupler epoch deterministically).
    hook_edge_ = resume_base_;
    while (reach_applied_ < reach_events_.size() &&
           reach_events_[reach_applied_].edge <= resume_base_) {
      const ReachEvent& ev = reach_events_[reach_applied_++];
      couplers_[ev.coupler]->set_reach(ev.reach);
    }
    // The round hook drains lax outboxes (a no-op under immediate reference
    // injection) and then applies reach revisions due at this edge — after
    // the drain, so the drained round's events were judged under the reach
    // live when the round began, exactly like the immediate path's
    // generation-time reads. Reference mode installs it only when a reach
    // script actually needs edge processing.
    if (!couplers_.empty() &&
        (!spec_.coupled_reference || !reach_events_.empty())) {
      const Cycle stride = effective_stride();
      multi.set_round_hook([this, stride] {
        for (const auto& coupler : couplers_) coupler->exchange();
        hook_edge_ += stride;
        while (reach_applied_ < reach_events_.size() &&
               reach_events_[reach_applied_].edge <= hook_edge_) {
          const ReachEvent& ev = reach_events_[reach_applied_++];
          couplers_[ev.coupler]->set_reach(ev.reach);
        }
      });
    }
    if (checkpoint_every_ != 0) {
      // The hook runs with every lane flushed onto the round edge — exactly
      // the quiescent state the snapshot format is defined over. Cycles are
      // run-relative; a resumed run keeps stamping fleet-absolute edges.
      multi.set_edge_hook(checkpoint_every_, [this](Cycle run_cycles) {
        write_snapshot(resume_base_ + run_cycles);
      });
    }
    const unsigned workers = spec_.worker_threads != 0
                                 ? spec_.worker_threads
                                 : std::max(1u, std::thread::hardware_concurrency());
    // A resumed engine spends only the budget the interrupted run left: its
    // lanes already sit at resume_base_, and round edges realign with the
    // uninterrupted run's because snapshots land on stride multiples.
    const Cycle budget =
        spec_.max_cycles > resume_base_ ? spec_.max_cycles - resume_base_ : 0;
    const auto res = multi.run(budget, effective_stride(), workers);
    lockstep_cycles = resume_base_ + res.cycles;
    all_drained = res.all_finished;
    run_profile_.rounds = res.rounds;
    for (std::size_t i = 0; i < multi.lane_count(); ++i) {
      run_profile_.lane_rounds_skipped += multi.lane_rounds_skipped(i);
      run_profile_.lane_stall_cycles += multi.lane_stall_cycles(i);
    }
  } else {
    if (!couplers_.empty()) {
      throw std::logic_error(
          "ScenarioEngine: the legacy path runs cells sequentially to "
          "completion and cannot order cross-cell carrier events causally; "
          "coupled scenarios need Path::kBatched");
    }
    if (checkpoint_every_ != 0 || resume_base_ != 0) {
      throw std::logic_error(
          "ScenarioEngine: checkpoint/resume is defined over lockstep round "
          "edges and needs Path::kBatched");
    }
    for (auto& cell : cells_) {
      net::Cell* c = cell.get();
      const bool drained =
          c->scheduler().run_until([c] { return c->drained(); }, spec_.max_cycles);
      all_drained = all_drained && drained;
      lockstep_cycles = std::max(lockstep_cycles, c->scheduler().now());
    }
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return collect(lockstep_cycles, all_drained, wall);
}

FleetStats ScenarioEngine::collect(Cycle lockstep_cycles, bool all_drained,
                                   double wall_seconds) const {
  FleetStats fs;
  fs.scenario_name = spec_.name;
  fs.lockstep_cycles = lockstep_cycles;
  fs.all_drained = all_drained;
  fs.wall_seconds = wall_seconds;
  if (!spec_.fold_device_stats) fs.devices.reserve(spec_.station_count());
  std::vector<DeviceStats> batch;  // fold_device_stats: one cell at a time.
  std::set<const sim::Scheduler*> counted;  // Shared clock domains count once.
  for (const auto& cell : cells_) {
    if (spec_.fold_device_stats) {
      batch.clear();
      cell->collect(batch, fs.cells);
      for (const DeviceStats& ds : batch) fs.fold_retired(ds);
    } else {
      cell->collect(fs.devices, fs.cells);
    }
    cell->export_metrics(fs.metrics, !spec_.fold_device_stats);
    if (counted.insert(&cell->scheduler()).second) {
      fs.ticks_executed += cell->scheduler().ticks_executed();
      fs.ticks_skipped += cell->scheduler().ticks_skipped();
      const sim::SchedulerProfile p = cell->scheduler().profile();
      fs.ff_cycles += p.ff_cycles;
      fs.ff_events += p.ff_events;
      fs.wheel_depth_max = std::max(fs.wheel_depth_max, p.wheel_depth_max);
      fs.wheel_cascades += p.wheel_cascades;
      fs.wheel_purges += p.wheel_purges;
      for (const sim::SchedulerProfile::Stage& st : p.stages) {
        if (st.stage == sim::Scheduler::kStageMedium) {
          fs.medium_ticks_executed += st.executed;
          fs.medium_ticks_skipped += st.skipped;
        }
      }
    }
  }
  fs.lockstep_rounds = run_profile_.rounds;
  fs.lane_rounds_skipped = run_profile_.lane_rounds_skipped;
  fs.lane_stall_cycles = run_profile_.lane_stall_cycles;
  // Engine-profile names in the registry, next to the protocol counters, so
  // trace tooling reads one namespace.
  fs.metrics.add("sched/ff_cycles", fs.ff_cycles);
  fs.metrics.add("sched/ff_events", fs.ff_events);
  fs.metrics.max_gauge("sched/wheel_depth_max", static_cast<i64>(fs.wheel_depth_max));
  fs.metrics.add("sched/wheel_cascades", fs.wheel_cascades);
  fs.metrics.add("sched/wheel_purges", fs.wheel_purges);
  fs.metrics.add("sched/lockstep_rounds", fs.lockstep_rounds);
  fs.metrics.add("sched/lane_rounds_skipped", fs.lane_rounds_skipped);
  fs.metrics.add("sched/lane_stall_cycles", fs.lane_stall_cycles);
  return fs;
}

bool ScenarioEngine::tracing() const noexcept { return spec_.trace.enabled; }

std::string ScenarioEngine::chrome_trace() const {
  std::vector<const obs::FlightRecorder*> recs;
  for (const auto& cell : cells_) recs.push_back(cell->recorder());
  return obs::chrome_trace(recs);
}

std::string ScenarioEngine::text_timeline() const {
  std::vector<const obs::FlightRecorder*> recs;
  for (const auto& cell : cells_) recs.push_back(cell->recorder());
  return obs::text_timeline(recs);
}

std::size_t ScenarioEngine::device_count() const noexcept {
  std::size_t n = 0;
  for (const auto& cell : cells_) n += cell->station_count();
  return n;
}

net::Cell& ScenarioEngine::cell(std::size_t i) { return *cells_.at(i); }

DrmpDevice& ScenarioEngine::device(std::size_t i) {
  for (const auto& cell : cells_) {
    if (i < cell->station_count()) return cell->device(i);
    i -= cell->station_count();
  }
  throw std::out_of_range("ScenarioEngine::device: index past the last station");
}

}  // namespace drmp::scenario
