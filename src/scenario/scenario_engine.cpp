#include "scenario/scenario_engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "net/cell.hpp"
#include "sim/multi_scheduler.hpp"

namespace drmp::scenario {

ScenarioEngine::ScenarioEngine(ScenarioSpec spec) : spec_(std::move(spec)) {
  cells_.reserve(spec_.cells.size());
  int next_station_id = 1;
  for (std::size_t i = 0; i < spec_.cells.size(); ++i) {
    cells_.push_back(std::make_unique<net::Cell>(spec_.cells[i], spec_.channel,
                                                 spec_.seed, i, next_station_id));
    cells_.back()->scheduler().set_idle_skip(spec_.idle_skip);
    next_station_id += static_cast<int>(spec_.cells[i].stations.size());
  }
}

ScenarioEngine::~ScenarioEngine() = default;

FleetStats ScenarioEngine::run(Path path) {
  // One-shot: a second run would see every traffic generator already
  // exhausted and return plausible-looking zero-cycle stats. Fail loudly in
  // every build type.
  if (ran_) {
    throw std::logic_error("ScenarioEngine::run is one-shot; build a fresh engine");
  }
  ran_ = true;

  const auto t0 = std::chrono::steady_clock::now();
  Cycle lockstep_cycles = 0;
  bool all_drained = true;

  if (path == Path::kBatched) {
    sim::MultiScheduler multi;
    for (auto& cell : cells_) {
      net::Cell* c = cell.get();
      multi.add(c->scheduler(), [c] { return c->drained(); });
    }
    const unsigned workers = spec_.worker_threads != 0
                                 ? spec_.worker_threads
                                 : std::max(1u, std::thread::hardware_concurrency());
    const auto res = multi.run(spec_.max_cycles, spec_.lockstep_stride, workers);
    lockstep_cycles = res.cycles;
    all_drained = res.all_finished;
  } else {
    for (auto& cell : cells_) {
      net::Cell* c = cell.get();
      const bool drained =
          c->scheduler().run_until([c] { return c->drained(); }, spec_.max_cycles);
      all_drained = all_drained && drained;
      lockstep_cycles = std::max(lockstep_cycles, c->scheduler().now());
    }
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return collect(lockstep_cycles, all_drained, wall);
}

FleetStats ScenarioEngine::collect(Cycle lockstep_cycles, bool all_drained,
                                   double wall_seconds) const {
  FleetStats fs;
  fs.scenario_name = spec_.name;
  fs.lockstep_cycles = lockstep_cycles;
  fs.all_drained = all_drained;
  fs.wall_seconds = wall_seconds;
  fs.devices.reserve(spec_.station_count());
  for (const auto& cell : cells_) {
    cell->collect(fs.devices, fs.cells);
    fs.ticks_executed += cell->scheduler().ticks_executed();
    fs.ticks_skipped += cell->scheduler().ticks_skipped();
  }
  return fs;
}

std::size_t ScenarioEngine::device_count() const noexcept {
  std::size_t n = 0;
  for (const auto& cell : cells_) n += cell->station_count();
  return n;
}

net::Cell& ScenarioEngine::cell(std::size_t i) { return *cells_.at(i); }

DrmpDevice& ScenarioEngine::device(std::size_t i) {
  for (const auto& cell : cells_) {
    if (i < cell->station_count()) return cell->device(i);
    i -= cell->station_count();
  }
  throw std::out_of_range("ScenarioEngine::device: index past the last station");
}

}  // namespace drmp::scenario
