// Aggregate statistics of one fleet scenario run.
//
// Two digests with different stability contracts:
//   * completion_digest() covers only counters coupled to MSDU completion
//     (offered/completed/ok/retries/bytes). These are invariant to *when* a
//     lane's clock stops after its workload drains, so the batched lockstep
//     path (which overshoots a drained lane by up to stride-1 cycles) and the
//     legacy per-cycle path produce equal completion digests.
//   * full_digest() additionally covers delivery/peer/channel/contention
//     counters and per-lane cycle counts — everything integral. Equal specs
//     through the same execution path must produce equal full digests; that
//     is the determinism contract the tests pin down.
//
// Power estimates (DevicePower) are derived floating-point views of the
// integral busy counters — deterministic for a given build, but kept out of
// both digests so the digest contract stays a pure integer-counter property.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace drmp::scenario {

/// Activity-weighted power estimate of one device over its run, through
/// est::estimate_power with the §6.2 technique sets.
struct DevicePower {
  double raw_mw = 0.0;    ///< No power management (worst case).
  double gated_mw = 0.0;  ///< Clock gating + power shut-off.
  double dvfs_mw = 0.0;   ///< Gating + PSO + half-rate DVFS.
  double cpu_activity = 0.0;  ///< Measured CPU busy fraction.
  double bus_activity = 0.0;  ///< Measured packet-bus busy fraction.
  /// Duty-weighted mean rate fraction from mac::LinkMgr rate adaptation
  /// (1.0 = full rate, or no adaptation).
  double rate_scale = 1.0;
  /// gated_mw re-estimated with measured activity scaled by rate_scale —
  /// the adaptation-aware est::estimate_power report. Equals gated_mw when
  /// rate_scale is 1.0.
  double adapted_mw = 0.0;
};

struct DeviceStats {
  int station_id = 0;
  std::array<u32, kNumModes> offered{};    ///< MSDUs the traffic gen handed over.
  std::array<u64, kNumModes> offered_bytes{};
  std::array<u32, kNumModes> completed{};  ///< on_tx_complete callbacks.
  std::array<u32, kNumModes> tx_ok{};      ///< ... of which successful.
  std::array<u64, kNumModes> retries{};    ///< Summed per-MSDU retry counts.
  std::array<u32, kNumModes> peer_rx{};    ///< Data frames the peer accepted.
  std::array<u64, kNumModes> peer_acks{};  ///< ACK/Imm-ACK frames the peer sent.
  std::array<u64, kNumModes> tampered{};   ///< Frames the channel corrupted.
  // ---- Contention counters (shared-medium cells; zero on point-to-point) --
  std::array<u64, kNumModes> collisions{};  ///< Own transmissions that collided.
  std::array<Cycle, kNumModes> airtime{};   ///< Cycles this station held each band.
  u64 defers = 0;          ///< CSMA deferrals to a busy medium (BackoffRfu).
  u32 rts_sent = 0;        ///< WiFi RTS frames sent.
  u32 cts_received = 0;    ///< WiFi CTS responses received.
  // NAV (virtual carrier sense) counters. Like the power estimates these
  // stay out of both digests: the digest composition is frozen at its PR-3
  // shape so an all-ones audibility matrix (and NAV-off runs generally)
  // reproduce historic digests bit-for-bit. NAV-on runs differ in the
  // mixed counters anyway — equality across execution paths still pins
  // these indirectly through the timeline they shape.
  u64 nav_defers = 0;  ///< Deferrals where only the NAV held (CCA silent).
  u64 nav_arms = 0;    ///< Overheard reservations honoured.
  // Timing-conformance counters (same digest exemption as the NAV set: the
  // digest composition stays frozen at its PR-3 shape).
  u64 nav_resets = 0;  ///< CF-End NAV truncations honoured.
  /// Reservation cycles still pending when the cell clock stopped. Bounded
  /// by the largest announceable Duration field: an expired response must
  /// never strand a reservation past its announced horizon (pinned).
  Cycle nav_hangover = 0;
  u64 frames_expired = 0;     ///< Perishable responses abandoned (all kinds).
  u64 expired_acks = 0;       ///< ... of which SIFS ACKs.
  u64 expired_ctss = 0;       ///< ... of which SIFS CTSs.
  u64 expired_sifs_data = 0;  ///< ... of which SIFS-anchored data.
  u64 eifs_waits = 0;         ///< Pre-contention waits stretched to EIFS.
  // Mobility / link-management counters (mac::LinkMgr; zero on static
  // cells). Same digest exemption as the NAV set — the digest composition
  // stays frozen at its PR-3 shape, which is also what lets a frozen
  // mobility driver reproduce static-cell digests bit-for-bit.
  u64 reassociations = 0;  ///< Completed post-handoff re-exchanges.
  u64 handoffs = 0;        ///< Serving-AP retargets (TopologyDriver).
  u64 rate_shifts = 0;     ///< Rate-adaptation steps taken (both ways).
  u64 link_loss_drops = 0; ///< Traffic MSDUs lost to retry exhaustion.
  u32 rate_index = 0;      ///< Final rate-ladder position (0 = full rate).
  /// Summed handoff-to-reassociated latency over completed handoffs.
  Cycle handoff_latency = 0;
  Cycle cycles_run = 0;
  DevicePower power;

  void mix_completion(sim::Digest& d) const;
  void mix_full(sim::Digest& d) const;
};

/// Channel-level statistics of one shared-medium cell.
struct CellStats {
  u32 cell_index = 0;
  u32 stations = 0;
  std::array<u64, kNumModes> collided_frames{};  ///< All parties counted.
  std::array<u64, kNumModes> dropped_frames{};   ///< Collided, withheld from rx.
  std::array<u64, kNumModes> capture_wins{};     ///< Survived via capture.
  std::array<u64, kNumModes> tampered{};         ///< Channel-corrupted frames.
  std::array<Cycle, kNumModes> busy_cycles{};    ///< Channel occupancy per band.
  /// Air cycles burnt by collided transmissions (outside both digests, like
  /// the NAV counters): 1 - collided/busy is the band's airtime efficiency.
  std::array<Cycle, kNumModes> collided_airtime{};
  std::array<u32, kNumModes> ap_rx{};    ///< Data frames the AP accepted.
  std::array<u64, kNumModes> ap_acks{};  ///< ACKs the AP sent.
  u64 ap_ctss = 0;                       ///< CTS responses the AP sent.
  /// Audibility revisions each band's medium applied (outside both digests,
  /// like the NAV counters; zero on static cells).
  std::array<u64, kNumModes> topology_epochs{};

  void mix_full(sim::Digest& d) const;
};

struct FleetStats {
  std::string scenario_name;
  std::vector<DeviceStats> devices;
  std::vector<CellStats> cells;  ///< One entry per shared-medium cell.
  // ---- Folded-aggregate accounting (ScenarioSpec::fold_device_stats) ----
  // Retired stations chain into these running aggregates instead of living
  // in `devices`: O(cells) live result memory instead of O(devices). Both
  // digest chains are FNV-sequential, so folded devices contribute first and
  // in fold (= cell) order — which is exactly collection order, making the
  // folded digests bit-identical to the retained ones (pinned).
  u64 folded_devices = 0;        ///< Stations folded away so far.
  u64 folded_completion = 0;     ///< Running completion-digest chain state.
  u64 folded_full = 0;           ///< Running full-digest chain state.
  u64 folded_cycles = 0;         ///< Sum of folded stations' cycles_run.
  double folded_raw_mw = 0.0;    ///< Folded power-estimate sums.
  double folded_gated_mw = 0.0;
  double folded_dvfs_mw = 0.0;

  /// Folds one retired station's stats into the running aggregates and both
  /// digest chains; the DeviceStats object can then be dropped. Must be fed
  /// stations in the same order collect() would have appended them.
  void fold_retired(const DeviceStats& ds);
  Cycle lockstep_cycles = 0;  ///< Fleet-clock cycles (max over lanes).
  bool all_drained = false;   ///< Every device finished its workload.
  double wall_seconds = 0.0;  ///< Host time; never part of a digest.
  // Quiescence-skip accounting, summed over lanes. Execution-strategy
  // artefacts, not simulation results: both stay out of the digests and the
  // report so skip-on and skip-off runs compare byte-identical.
  u64 ticks_executed = 0;  ///< Component-ticks actually run (batched path).
  u64 ticks_skipped = 0;   ///< Component-ticks replaced by bulk accounting.
  // ---- Observability surface (PR-7). Everything below shares the digest
  // exemption above: the engine's execution profile and the metrics registry
  // must never feed a digest, or skip-on/skip-off and worker-count runs
  // would stop comparing equal.
  /// Hierarchical counter registry: fleet totals unprefixed, per-cell
  /// breakdown under `cell<n>/station<id>/`. The total_*() accessors below
  /// are views over this when populated (with a DeviceStats fallback for
  /// hand-built FleetStats values).
  obs::MetricsRegistry metrics;
  Cycle ff_cycles = 0;  ///< Globally-quiescent cycles crossed by fast-forwards.
  u64 ff_events = 0;    ///< Fast-forward jumps taken.
  u64 wheel_depth_max = 0;        ///< Wake-wheel high-watermark (max over lanes).
  u64 wheel_cascades = 0;         ///< Timing-wheel buckets re-hashed downward.
  u64 wheel_purges = 0;           ///< Stale-majority wake-wheel sweeps.
  u64 medium_ticks_executed = 0;  ///< kStageMedium component-ticks run.
  u64 medium_ticks_skipped = 0;   ///< kStageMedium component-ticks skipped.
  u64 lockstep_rounds = 0;        ///< MultiScheduler rounds (batched path).
  u64 lane_rounds_skipped = 0;    ///< Quiescent lane-round skips, summed.
  Cycle lane_stall_cycles = 0;    ///< Cycles lanes sat parked in skipped rounds.
  /// Skipped-to-executed component-tick ratio (the fleet's idle dominance).
  double skip_ratio() const {
    return ticks_executed == 0 ? 0.0
                               : static_cast<double>(ticks_skipped) /
                                     static_cast<double>(ticks_executed);
  }

  u64 device_cycles_total() const;
  /// Fleet throughput: simulated device-cycles per host second.
  double device_cycles_per_sec() const;

  // ---- Fleet energy totals (sums of the per-device estimates) ----
  double fleet_raw_mw() const;
  double fleet_gated_mw() const;
  double fleet_dvfs_mw() const;

  u64 total_collisions() const;
  u64 total_defers() const;
  /// NAV-only deferrals (virtual carrier sense held, CCA silent) fleet-wide.
  u64 total_nav_defers() const;
  /// Pre-contention waits stretched to EIFS fleet-wide.
  u64 total_eifs_waits() const;
  /// Perishable responses abandoned past latest_start fleet-wide.
  u64 total_frames_expired() const;
  // ---- Mobility totals (same metrics-view-with-fallback idiom) ----
  u64 total_reassociations() const;
  u64 total_handoffs() const;
  u64 total_rate_shifts() const;
  u64 total_link_loss_drops() const;
  /// Audibility revisions applied fleet-wide (sum over cells and bands).
  u64 total_topology_epochs() const;
  /// Mean handoff-to-reassociated latency in cycles (0 when none).
  double mean_handoff_latency_cycles() const;

  u64 completion_digest() const;
  u64 full_digest() const;

  /// Deterministic multi-line table (no wall-clock content).
  std::string report() const;
};

}  // namespace drmp::scenario
