// Aggregate statistics of one fleet scenario run.
//
// Two digests with different stability contracts:
//   * completion_digest() covers only counters coupled to MSDU completion
//     (offered/completed/ok/retries/bytes). These are invariant to *when* a
//     lane's clock stops after its workload drains, so the batched lockstep
//     path (which overshoots a drained lane by up to stride-1 cycles) and the
//     legacy per-cycle path produce equal completion digests.
//   * full_digest() additionally covers delivery/peer/channel counters and
//     per-lane cycle counts — everything. Equal specs through the same
//     execution path must produce equal full digests; that is the
//     determinism contract the tests pin down.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/stats.hpp"

namespace drmp::scenario {

struct DeviceStats {
  int station_id = 0;
  std::array<u32, kNumModes> offered{};    ///< MSDUs the traffic gen handed over.
  std::array<u64, kNumModes> offered_bytes{};
  std::array<u32, kNumModes> completed{};  ///< on_tx_complete callbacks.
  std::array<u32, kNumModes> tx_ok{};      ///< ... of which successful.
  std::array<u64, kNumModes> retries{};    ///< Summed per-MSDU retry counts.
  std::array<u32, kNumModes> peer_rx{};    ///< Data frames the peer accepted.
  std::array<u64, kNumModes> peer_acks{};  ///< ACK/Imm-ACK frames the peer sent.
  std::array<u64, kNumModes> tampered{};   ///< Frames the channel corrupted.
  Cycle cycles_run = 0;

  void mix_completion(sim::Digest& d) const;
  void mix_full(sim::Digest& d) const;
};

struct FleetStats {
  std::string scenario_name;
  std::vector<DeviceStats> devices;
  Cycle lockstep_cycles = 0;  ///< Fleet-clock cycles (max over lanes).
  bool all_drained = false;   ///< Every device finished its workload.
  double wall_seconds = 0.0;  ///< Host time; never part of a digest.

  u64 device_cycles_total() const;
  /// Fleet throughput: simulated device-cycles per host second.
  double device_cycles_per_sec() const;

  u64 completion_digest() const;
  u64 full_digest() const;

  /// Deterministic multi-line table (no wall-clock content).
  std::string report() const;
};

}  // namespace drmp::scenario
