// ScenarioEngine — turns a ScenarioSpec into a running multi-device fleet.
//
// Every device is one *cell*: its own Scheduler (clock domain), its own
// protocol media with a ScriptedPeer at the far end, a full DrmpDevice, and
// one TrafficGen per enabled mode. Cells are fully independent — separate
// packet memories, IRCs, statistics and PRNG streams — so cross-device
// isolation holds by construction and a device's results do not depend on
// fleet size. The shared lossy-channel model (ScenarioSpec::channel) is
// applied to every cell's media through the Medium fault injector, with the
// corruption PRNG seeded per (scenario seed, device, mode).
//
// Two execution paths over the same cells:
//   * Path::kBatched — MultiScheduler lockstep over Scheduler::
//     run_cycles_batched with per-cell drained() early-exit predicates
//     evaluated once per stride. The fleet hot path.
//   * Path::kLegacy  — each cell in sequence through Scheduler::run_until,
//     predicate evaluated every cycle. The baseline the bench compares
//     against.
// Both paths complete the same workload; completion-coupled statistics are
// path-invariant (see fleet_stats.hpp).
#pragma once

#include <memory>

#include "drmp/device.hpp"
#include "phy/channel.hpp"
#include "scenario/fleet_stats.hpp"
#include "scenario/scenario_spec.hpp"

namespace drmp::scenario {

class ScenarioEngine {
 public:
  enum class Path { kBatched, kLegacy };

  explicit ScenarioEngine(ScenarioSpec spec);
  ~ScenarioEngine();

  /// Runs the scenario to completion (or budget exhaustion). One-shot.
  FleetStats run(Path path = Path::kBatched);

  const ScenarioSpec& spec() const noexcept { return spec_; }
  std::size_t device_count() const noexcept { return cells_.size(); }
  DrmpDevice& device(std::size_t i);
  sim::Scheduler& scheduler(std::size_t i);

 private:
  struct Cell;

  void build_cell(std::size_t dev_index);
  static bool cell_drained(const Cell& cell);
  FleetStats collect(Cycle lockstep_cycles, bool all_drained, double wall_seconds) const;

  ScenarioSpec spec_;
  std::vector<std::unique_ptr<Cell>> cells_;
  bool ran_ = false;
};

}  // namespace drmp::scenario
