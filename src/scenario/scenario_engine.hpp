// ScenarioEngine — turns a ScenarioSpec into a running multi-cell fleet.
//
// Every CellSpec becomes one net::Cell: its own Scheduler (clock domain), its
// own media — point-to-point with a ScriptedPeer far end, or a shared
// net::ContendedMedium carrying N contending DRMP stations — plus per-station
// traffic generators. Cells share nothing with each other: separate packet
// memories, IRCs, statistics and PRNG streams, so cross-cell isolation holds
// by construction and a cell's results do not depend on fleet composition.
// The lossy-channel model (ScenarioSpec::channel, overridable per cell) is
// applied through the Medium fault injector.
//
// Two execution paths over the same cells:
//   * Path::kBatched — MultiScheduler lockstep over Scheduler::
//     run_cycles_batched with per-cell drained() early-exit predicates
//     evaluated once per stride. The fleet hot path; optional worker threads
//     are bit-identical to serial.
//   * Path::kLegacy  — each cell in sequence through Scheduler::run_until,
//     predicate evaluated every cycle. The baseline the bench compares
//     against. Unavailable once cells couple (below): sequential
//     cell-at-a-time execution cannot order cross-cell events causally.
// Both paths complete the same workload; completion-coupled statistics are
// path-invariant (see fleet_stats.hpp).
//
// Co-channel coupling (ScenarioSpec::couplings + CellSpec::coupling_group,
// docs/MULTICELL.md): connected groups get one net::ChannelCoupler each.
// The lockstep stride is clamped to the smallest group horizon in every
// mode, each member lane's early-exit predicate becomes "every cell of the
// group drained" (members retire at one common round edge — their digested
// cycle counts must match the reference), and on the lax path the couplers'
// exchange runs as the MultiScheduler round hook. With coupled_reference
// the engine instead places each connected group on one shared scheduler
// with immediate injection. A group whose reach has no off-diagonal hearing
// is physically isolated and built exactly like uncoupled cells.
#pragma once

#include <memory>
#include <vector>

#include "drmp/device.hpp"
#include "scenario/fleet_stats.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/scheduler.hpp"

namespace drmp::net {
class Cell;
class ChannelCoupler;
}

namespace drmp::scenario {

class ScenarioEngine {
 public:
  enum class Path { kBatched, kLegacy };

  explicit ScenarioEngine(ScenarioSpec spec);
  ~ScenarioEngine();

  /// Runs the scenario to completion (or budget exhaustion). One-shot.
  FleetStats run(Path path = Path::kBatched);

  // ---- Checkpoint/resume (sim/checkpoint.hpp; batched path only) ----
  /// Arms periodic snapshots: at the first lockstep round edge at or past
  /// every multiple of `every` run-relative cycles, the full fleet state is
  /// written into `path` — atomically, via `path + ".tmp"` and a rename, so
  /// the file on disk is always the last *complete* snapshot even if the
  /// process dies mid-write. Incompatible with tracing (flight-recorder
  /// rings are deliberately not serialized). Call before run().
  void checkpoint_every(Cycle every, std::string path);

  /// Restores a snapshot written by checkpoint_every into this freshly
  /// built engine; the following run() continues from the snapshot edge and
  /// reproduces the uninterrupted run's digests bit-for-bit. The engine
  /// must be built from the same scenario — seed, stride, cells, stations
  /// and couplings are fingerprint-checked — while the execution strategy
  /// (worker_threads, idle_skip) may differ freely, exactly as the digest
  /// contract allows. Throws sim::snap::SnapshotError subtypes on malformed
  /// or mismatched snapshots; on throw no partial state sticks (the engine
  /// must be discarded). Call before run().
  void resume(const std::string& path);

  /// The lockstep cycle the engine will resume from (0 unless resume() ran).
  Cycle resume_base() const noexcept { return resume_base_; }

  const ScenarioSpec& spec() const noexcept { return spec_; }
  std::size_t cell_count() const noexcept { return cells_.size(); }
  /// Total stations across all cells.
  std::size_t device_count() const noexcept;
  net::Cell& cell(std::size_t i);
  /// Station access by fleet-global index (0-based, cells in order).
  DrmpDevice& device(std::size_t i);

  /// The lockstep stride actually used: the spec's, clamped to the smallest
  /// connected coupling group's horizon (identical on both coupling modes —
  /// the digested lockstep cycle count depends on it).
  Cycle effective_stride() const noexcept;

  /// True when the spec asked for flight recorders (TraceSpec::enabled).
  bool tracing() const noexcept;
  /// Chrome trace-event JSON over every cell's recorder (Perfetto-viewable).
  /// Valid any time; empty event list when tracing is off.
  std::string chrome_trace() const;
  /// Deterministic protocol-domain text timeline (the golden-test surface).
  std::string text_timeline() const;

 private:
  /// One coupling group's resolved shape (members in reach-index order).
  struct Group {
    std::vector<std::size_t> members;
    bool connected = false;
    Cycle horizon = 1;
  };

  void resolve_couplings();
  void build_couplers();
  FleetStats collect(Cycle lockstep_cycles, bool all_drained, double wall_seconds) const;
  /// Spec identity the resume() check pins: seed, stride, coupling shape and
  /// the per-cell topology/station layout — everything that shapes the
  /// simulated timeline, nothing that is pure execution strategy.
  u64 fingerprint() const;
  void write_snapshot(Cycle lockstep_now) const;

  /// Batched-path execution profile captured by run() for collect().
  struct RunProfile {
    u64 rounds = 0;
    u64 lane_rounds_skipped = 0;
    Cycle lane_stall_cycles = 0;
  };

  /// One scripted reach revision, quantized up to a lockstep round edge.
  struct ReachEvent {
    Cycle edge = 0;
    std::size_t coupler = 0;  ///< Index into couplers_.
    net::AudibilityMatrix reach;
  };

  ScenarioSpec spec_;
  std::vector<Group> groups_;
  RunProfile run_profile_;
  std::vector<ReachEvent> reach_events_;  ///< Sorted by edge.
  std::size_t reach_applied_ = 0;
  Cycle hook_edge_ = 0;  ///< Last round edge the round hook processed.
  /// Reference-mode shared clock domains, one per connected group (null
  /// otherwise). Declared before cells_: components die before their clock.
  std::vector<std::unique_ptr<sim::Scheduler>> group_scheds_;
  std::vector<std::unique_ptr<net::Cell>> cells_;
  std::vector<std::unique_ptr<net::ChannelCoupler>> couplers_;
  bool ran_ = false;
  Cycle checkpoint_every_ = 0;  ///< 0 = checkpointing off.
  std::string checkpoint_path_;
  Cycle resume_base_ = 0;  ///< Lockstep cycle the restored state sits at.
};

}  // namespace drmp::scenario
