// ScenarioEngine — turns a ScenarioSpec into a running multi-cell fleet.
//
// Every CellSpec becomes one net::Cell: its own Scheduler (clock domain), its
// own media — point-to-point with a ScriptedPeer far end, or a shared
// net::ContendedMedium carrying N contending DRMP stations — plus per-station
// traffic generators. Cells share nothing with each other: separate packet
// memories, IRCs, statistics and PRNG streams, so cross-cell isolation holds
// by construction and a cell's results do not depend on fleet composition.
// The lossy-channel model (ScenarioSpec::channel, overridable per cell) is
// applied through the Medium fault injector.
//
// Two execution paths over the same cells:
//   * Path::kBatched — MultiScheduler lockstep over Scheduler::
//     run_cycles_batched with per-cell drained() early-exit predicates
//     evaluated once per stride. The fleet hot path; optional worker threads
//     are bit-identical to serial.
//   * Path::kLegacy  — each cell in sequence through Scheduler::run_until,
//     predicate evaluated every cycle. The baseline the bench compares
//     against.
// Both paths complete the same workload; completion-coupled statistics are
// path-invariant (see fleet_stats.hpp).
#pragma once

#include <memory>

#include "drmp/device.hpp"
#include "scenario/fleet_stats.hpp"
#include "scenario/scenario_spec.hpp"

namespace drmp::net {
class Cell;
}

namespace drmp::scenario {

class ScenarioEngine {
 public:
  enum class Path { kBatched, kLegacy };

  explicit ScenarioEngine(ScenarioSpec spec);
  ~ScenarioEngine();

  /// Runs the scenario to completion (or budget exhaustion). One-shot.
  FleetStats run(Path path = Path::kBatched);

  const ScenarioSpec& spec() const noexcept { return spec_; }
  std::size_t cell_count() const noexcept { return cells_.size(); }
  /// Total stations across all cells.
  std::size_t device_count() const noexcept;
  net::Cell& cell(std::size_t i);
  /// Station access by fleet-global index (0-based, cells in order).
  DrmpDevice& device(std::size_t i);

 private:
  FleetStats collect(Cycle lockstep_cycles, bool all_drained, double wall_seconds) const;

  ScenarioSpec spec_;
  std::vector<std::unique_ptr<net::Cell>> cells_;
  bool ran_ = false;
};

}  // namespace drmp::scenario
