// Full-software MAC baseline (thesis §2.1): "Panic et al. estimate that a
// processor will need to run at 1 GHz to keep up with the real-time
// requirements of a WiFi MAC."
//
// This model counts the CPU instructions a pure-software MAC spends per
// packet — running the *actual* algorithms (RC4/AES/DES, CRCs, header
// assembly) on a cycle-cost-instrumented byte processor — and derives the
// clock frequency required to meet each protocol's real-time constraints
// (SIFS-bounded ACK turnaround, line-rate sustained throughput).
#pragma once

#include "common/types.hpp"
#include "mac/protocol.hpp"

namespace drmp::baseline {

/// Per-packet software cost breakdown, in CPU instructions.
struct SwCostBreakdown {
  u64 crypto = 0;
  u64 crc = 0;
  u64 header = 0;
  u64 frag = 0;
  u64 control = 0;
  u64 copies = 0;
  u64 total() const { return crypto + crc + header + frag + control + copies; }
};

/// Instruction-cost parameters of the modelled embedded core (ARM-class,
/// load/store, no crypto ISA extensions).
struct SwCostParams {
  double instr_per_byte_rc4 = 8.0;
  double instr_per_byte_aes = 28.0;   // T-table software AES.
  double instr_per_byte_des = 45.0;
  double instr_per_byte_crc = 5.0;    // Table-driven, per CRC pass.
  double instr_per_byte_copy = 2.0;
  double instr_header = 400.0;        // Build/parse + state machine step.
  double instr_control_per_frame = 900.0;
  /// ISR entry/exit with cache refill on the critical turnaround path.
  double instr_isr_entry = 1500.0;
  /// Fraction of SIFS actually available to the MAC software: the RF/PHY
  /// receive pipeline and the transmit ramp-up consume the rest.
  double sifs_budget_fraction = 0.5;
  double cpi = 1.4;                   // Cycles per instruction.
};

/// Computes the software cost of processing one MPDU of `payload_bytes`
/// in the given protocol (transmit path: encrypt + CRC x2 + header + copy).
SwCostBreakdown sw_cost_per_mpdu(mac::Protocol proto, std::size_t payload_bytes,
                                 const SwCostParams& params = {});

struct SwFrequencyResult {
  double throughput_mhz;   ///< Clock needed to sustain line rate.
  double turnaround_mhz;   ///< Clock needed to parse+ACK within SIFS.
  double required_mhz;     ///< max of the two.
};

/// Required CPU frequency for a full-software MAC of the protocol
/// (the §2.1 argument; WiFi lands near 1 GHz with these parameters).
SwFrequencyResult sw_required_frequency(mac::Protocol proto,
                                        std::size_t payload_bytes = 1500,
                                        const SwCostParams& params = {});

}  // namespace drmp::baseline
