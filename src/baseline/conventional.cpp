#include "baseline/conventional.hpp"

#include <algorithm>

#include "crypto/aes128.hpp"
#include "crypto/des.hpp"
#include "crypto/rc4.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp::baseline {

namespace {

Bytes encrypt_msdu(const GoldenTxParams& p, Bytes data) {
  switch (p.proto) {
    case mac::Protocol::WiFi: {
      Bytes iv_key;
      iv_key.push_back(static_cast<u8>(p.seq));
      iv_key.push_back(static_cast<u8>(p.seq >> 8));
      iv_key.push_back(static_cast<u8>(p.seq >> 16));
      iv_key.insert(iv_key.end(), p.key.begin(), p.key.end());
      crypto::Rc4 rc4(iv_key);
      rc4.process(data);
      return data;
    }
    case mac::Protocol::Uwb: {
      crypto::Aes128 aes(p.key);
      u8 nonce[16] = {};
      for (int i = 0; i < 4; ++i) nonce[i] = static_cast<u8>(p.seq >> (8 * i));
      aes.ctr_process(std::span<const u8>(nonce, 16), data);
      return data;
    }
    case mac::Protocol::WiMax: {
      crypto::Des des(p.key);
      u8 iv[8] = {};
      for (int i = 0; i < 4; ++i) iv[i] = static_cast<u8>(p.cid >> (8 * i));
      const std::size_t whole = data.size() - data.size() % 8;
      des.cbc_encrypt(std::span<const u8>(iv, 8), std::span<u8>(data.data(), whole));
      return data;
    }
  }
  return data;
}

}  // namespace

std::vector<Bytes> golden_tx_frames(const GoldenTxParams& p, const Bytes& msdu) {
  std::vector<Bytes> frames;
  const Bytes enc = encrypt_msdu(p, msdu);
  // WiMAX sends the whole (packed/unfragmented) payload in one MPDU here.
  const u32 thr = p.proto == mac::Protocol::WiMax
                      ? static_cast<u32>(std::max<std::size_t>(enc.size(), 1))
                      : p.frag_threshold;
  const u32 nfrags = std::max<u32>(1, (static_cast<u32>(enc.size()) + thr - 1) / thr);
  for (u32 k = 0; k < nfrags; ++k) {
    const std::size_t begin = static_cast<std::size_t>(k) * thr;
    const std::size_t end = std::min<std::size_t>(begin + thr, enc.size());
    const std::span<const u8> slice(enc.data() + begin, end - begin);
    switch (p.proto) {
      case mac::Protocol::WiFi: {
        mac::wifi::DataHeader h;
        h.fc.type = mac::wifi::FrameType::Data;
        h.fc.more_frag = (k + 1 < nfrags);
        h.fc.protected_frame = true;
        h.duration_us = 150;  // NAV convention shared with the DRMP control sw.
        h.addr1 = mac::MacAddr::from_u64(p.dst_addr);
        h.addr2 = mac::MacAddr::from_u64(p.src_addr);
        h.addr3 = mac::MacAddr::from_u64(p.dst_addr);
        h.seq_num = static_cast<u16>(p.seq);
        h.frag_num = static_cast<u8>(k);
        frames.push_back(mac::wifi::build_data_mpdu(h, slice));
        break;
      }
      case mac::Protocol::Uwb: {
        mac::uwb::Header h;
        h.type = mac::uwb::FrameType::Data;
        h.ack_policy = mac::uwb::AckPolicy::ImmAck;
        h.sec = true;
        h.pnid = p.pnid;
        h.dest_id = p.dest_id;
        h.src_id = p.src_id;
        h.msdu_num = static_cast<u16>(p.seq & 0x1FF);
        h.frag_num = static_cast<u8>(k);
        h.last_frag_num = static_cast<u8>(nfrags - 1);
        h.stream_index = 1;
        frames.push_back(mac::uwb::build_data_frame(h, slice));
        break;
      }
      case mac::Protocol::WiMax: {
        frames.push_back(
            mac::wimax::build_mpdu(p.cid, {}, slice, /*with_crc=*/true, /*encrypted=*/true));
        break;
      }
    }
  }
  return frames;
}

std::optional<Bytes> golden_rx_msdu(const GoldenTxParams& p,
                                    const std::vector<Bytes>& frames) {
  Bytes enc;
  for (const auto& f : frames) {
    switch (p.proto) {
      case mac::Protocol::WiFi: {
        const auto parsed = mac::wifi::parse_data_mpdu(f);
        if (!parsed || !parsed->hcs_ok || !parsed->fcs_ok) return std::nullopt;
        enc.insert(enc.end(), parsed->body.begin(), parsed->body.end());
        break;
      }
      case mac::Protocol::Uwb: {
        const auto parsed = mac::uwb::parse_frame(f);
        if (!parsed || !parsed->hcs_ok || !parsed->fcs_ok) return std::nullopt;
        enc.insert(enc.end(), parsed->body.begin(), parsed->body.end());
        break;
      }
      case mac::Protocol::WiMax: {
        const auto parsed = mac::wimax::parse_mpdu(f);
        if (!parsed || !parsed->hcs_ok || (parsed->crc_present && !parsed->crc_ok)) {
          return std::nullopt;
        }
        enc.insert(enc.end(), parsed->payload.begin(), parsed->payload.end());
        break;
      }
    }
  }
  // Decrypt (all three ciphers are symmetric in these modes except DES-CBC,
  // which has a proper decrypt path).
  switch (p.proto) {
    case mac::Protocol::WiFi:
    case mac::Protocol::Uwb:
      return encrypt_msdu(p, std::move(enc));
    case mac::Protocol::WiMax: {
      crypto::Des des(p.key);
      u8 iv[8] = {};
      for (int i = 0; i < 4; ++i) iv[i] = static_cast<u8>(p.cid >> (8 * i));
      const std::size_t whole = enc.size() - enc.size() % 8;
      des.cbc_decrypt(std::span<const u8>(iv, 8), std::span<u8>(enc.data(), whole));
      return enc;
    }
  }
  return std::nullopt;
}

}  // namespace drmp::baseline
