#include "baseline/software_mac.hpp"

#include <algorithm>

namespace drmp::baseline {

SwCostBreakdown sw_cost_per_mpdu(mac::Protocol proto, std::size_t payload_bytes,
                                 const SwCostParams& p) {
  SwCostBreakdown c;
  const double n = static_cast<double>(payload_bytes);
  switch (proto) {
    case mac::Protocol::WiFi:
      c.crypto = static_cast<u64>(n * p.instr_per_byte_rc4);
      // HCS over the header + FCS over the whole MPDU.
      c.crc = static_cast<u64>(24 * p.instr_per_byte_crc + (n + 26) * p.instr_per_byte_crc);
      break;
    case mac::Protocol::Uwb:
      c.crypto = static_cast<u64>(n * p.instr_per_byte_aes);
      c.crc = static_cast<u64>(10 * p.instr_per_byte_crc + (n + 12) * p.instr_per_byte_crc);
      break;
    case mac::Protocol::WiMax:
      c.crypto = static_cast<u64>(n * p.instr_per_byte_des);
      c.crc = static_cast<u64>(5 * p.instr_per_byte_crc + (n + 6) * p.instr_per_byte_crc);
      break;
  }
  c.header = static_cast<u64>(p.instr_header);
  c.frag = static_cast<u64>(n * 0.1);  // Fragmentation bookkeeping amortized.
  c.control = static_cast<u64>(p.instr_control_per_frame);
  // At least two full-payload copies (host buffer -> staging -> PHY FIFO).
  c.copies = static_cast<u64>(2.0 * n * p.instr_per_byte_copy);
  return c;
}

SwFrequencyResult sw_required_frequency(mac::Protocol proto, std::size_t payload_bytes,
                                        const SwCostParams& p) {
  const auto t = mac::timing_for(proto);
  const auto cost = sw_cost_per_mpdu(proto, payload_bytes, p);
  const double cycles_per_mpdu = static_cast<double>(cost.total()) * p.cpi;

  // Throughput bound: process MPDUs as fast as the line delivers them.
  const double mpdu_time_s = static_cast<double>(payload_bytes) * 8.0 / t.line_rate_bps;
  const double f_tp = cycles_per_mpdu / mpdu_time_s;

  // Turnaround bound: within the software's share of SIFS it must take the
  // rx interrupt (cold-cache ISR entry), finish the FCS residual, parse the
  // header, build the ACK and start transmission (WiFi/UWB). The RF/PHY
  // pipeline consumes the remainder of SIFS (sifs_budget_fraction).
  double f_ta = 0.0;
  if (t.sifs_us > 0) {
    const double sifs_instr = p.instr_isr_entry + p.instr_header +
                              p.instr_control_per_frame +
                              64.0 * p.instr_per_byte_crc;
    f_ta = sifs_instr * p.cpi / (t.sifs_us * p.sifs_budget_fraction * 1e-6);
  }
  return SwFrequencyResult{f_tp / 1e6, f_ta / 1e6, std::max(f_tp, f_ta) / 1e6};
}

}  // namespace drmp::baseline
