// Conventional implementation baseline (thesis §4.4.1 / Fig. 4.6): "a
// hardware/software partitioned approach ... The control logic is
// implemented in a CPU, while a fixed-logic hardware accelerator implements
// the datapath operations. Each MAC implementation is a separate IP."
//
// A multi-standard device then needs *three* such IPs, each with its own
// CPU, accelerators and memories. This model composes the three
// single-protocol designs (gate catalog, est/gates.hpp) and provides a
// functional golden path (codec + crypto in plain software) the DRMP's
// hardware datapath is differential-tested against.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "est/gates.hpp"
#include "mac/protocol.hpp"

namespace drmp::baseline {

/// The three-IP conventional device (gate/area composition).
struct ConventionalTriMac {
  est::Design wifi = est::conventional_wifi_mac();
  est::Design uwb = est::conventional_uwb_mac();
  est::Design wimax = est::conventional_wimax_mac();

  u32 total_gates() const {
    return wifi.total_gates() + uwb.total_gates() + wimax.total_gates();
  }
  u32 total_sram_bits() const {
    return wifi.total_sram_bits() + uwb.total_sram_bits() + wimax.total_sram_bits();
  }
  double area_mm2(const est::Process& p) const {
    return wifi.area_mm2(p) + uwb.area_mm2(p) + wimax.area_mm2(p);
  }
};

/// Golden functional reference: produces the exact on-air MPDU bytes a
/// correct transmitter must emit for a given MSDU (encrypt + fragment +
/// header + HCS + FCS), used to differential-test the DRMP datapath.
struct GoldenTxParams {
  mac::Protocol proto;
  Bytes key;
  u32 seq = 0;
  u32 frag_threshold = 1024;
  // WiFi addressing.
  u64 src_addr = 0;
  u64 dst_addr = 0;
  // UWB addressing.
  u16 pnid = 0;
  u8 src_id = 0;
  u8 dest_id = 0;
  // WiMAX.
  u16 cid = 0;
};

std::vector<Bytes> golden_tx_frames(const GoldenTxParams& p, const Bytes& msdu);

/// Golden receive: recovers the MSDU from the on-air frames (or nullopt if
/// any redundancy check fails).
std::optional<Bytes> golden_rx_msdu(const GoldenTxParams& p,
                                    const std::vector<Bytes>& frames);

}  // namespace drmp::baseline
