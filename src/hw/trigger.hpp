// RFU Trigger Logic (thesis §3.6.5, Fig. 3.13): decodes the packet address
// bus and generates a primary trigger for an RFU when the corresponding
// address is asserted with write-enable. "It then calculates the ID of the
// addressed RFU by calculating the offset of the asserted address from a
// known base-address."
//
// Each trigger carries the word on the data bus: the TH_M "asserts its
// address on the packet-address-bus, which generates a trigger for the RFU,
// and the argument on the data-bus" (§3.6.1.2 step 7). Triggers are latched
// per-RFU until the RFU consumes them on its clock edge.
#pragma once

#include <array>
#include <deque>
#include <optional>

#include "common/types.hpp"
#include "hw/memory_map.hpp"
#include "sim/scheduler.hpp"

namespace drmp::hw {

class RfuTriggerLogic {
 public:
  /// Called by the bus on every write. Returns true if the address decoded
  /// to an RFU trigger (the write is then *not* a memory write). Wakes the
  /// addressed RFU: a latched trigger invalidates its quiescence bound.
  bool decode_write(u32 addr, Word data);

  /// Registers the component to wake when a trigger latches for `rfu_id`
  /// (the RFU itself; wired at RFU construction).
  void set_waker(u8 rfu_id, sim::Clockable* c) { wakers_[rfu_id] = c; }

  /// Pure address-range predicate (no side effects): would a write to `addr`
  /// decode as an RFU trigger?
  static bool decodes(u32 addr) { return is_rfu_trigger_addr(addr); }

  /// RFU-side: consume the oldest pending trigger, if any.
  std::optional<Word> take(u8 rfu_id);

  bool pending(u8 rfu_id) const { return !latched_[rfu_id].empty(); }

  /// True once the RFU has been triggered at least once since the flag was
  /// last cleared; used by the bus Grant Delay Logic (Fig. 3.12).
  bool triggered_flag(u8 rfu_id) const { return triggered_flag_[rfu_id]; }
  void clear_triggered_flag(u8 rfu_id) { triggered_flag_[rfu_id] = false; }

  /// Checkpoint support (sim/checkpoint.hpp); wakers are wiring, not state.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(latched_);
    ar.io(triggered_flag_);
  }

 private:
  std::array<std::deque<Word>, kMaxRfus> latched_{};
  std::array<bool, kMaxRfus> triggered_flag_{};
  std::array<sim::Clockable*, kMaxRfus> wakers_{};
};

}  // namespace drmp::hw
