// Layout of each mode's Ctrl page (Page::Ctrl). The Ctrl page is the shared
// blackboard between the CPU protocol control (which only ever touches
// header/control data, thesis §3.5), the header/parse RFUs (which deposit
// parsed fields and verify results) and the Event Handler (which reads them
// to format autonomous service requests, §3.6.6).
#pragma once

#include "common/types.hpp"
#include "hw/memory_map.hpp"

namespace drmp::hw {

/// Status/parse word slots at the start of the Ctrl page payload.
enum class CtrlWord : u32 {
  kHcsOk = 0,
  kFcsOk = 1,
  kParseOk = 2,
  kFrameType = 3,   ///< Protocol-specific frame type / subtype code.
  kSeq = 4,         ///< Sequence number (WiFi seq / UWB MSDU num / WiMAX FSN).
  kFrag = 5,        ///< Fragment number.
  kMoreFrag = 6,    ///< More-fragments flag / UWB last_frag_num.
  kRetry = 7,
  kSrcLo = 8,       ///< Transmitter address, low 32 bits (WiFi) / ids.
  kSrcHi = 9,       ///< Transmitter address, high 16 bits.
  kBodyLen = 10,
  kAckPolicy = 11,  ///< 1 if the received frame requests an ACK.
  kCid = 12,        ///< WiMAX connection id (classifier output / parsed).
  kPackCount = 13,  ///< WiMAX: number of packed SDUs.
  kDupFlag = 14,    ///< SeqRfu duplicate-detection result.
  kSeqOut = 15,     ///< SeqRfu assigned sequence number.
  kArqOut = 16,     ///< ArqRfu output (assigned BSN / newly-acked count).
  kCryptParam = 17, ///< Scratch for control software.
  kDstLo = 18,      ///< Receiver address, low 32 bits (address filtering).
  kDstHi = 19,      ///< Receiver address, high 16 bits.
  /// Response-anchor latch: the rx-end cycle of the last FCS-clean CTS or
  /// ACK addressed to this station, written by the Event Handler's
  /// delivery-time snoop (a hardware latch beside the Rx buffer, like the
  /// NAV comparator). The protocol control reads it when arming a
  /// SIFS-anchored follow-on (CTS-released data, fragment-burst data) so the
  /// anchor is pinned to the *releasing* frame — a bystander frame drained
  /// between the release and the transmit op cannot re-anchor it.
  kRespRxEndLo = 20,
  kRespRxEndHi = 21,
};

/// Header-template mini-page: the CPU writes the prepared per-fragment MAC
/// header here (length word + data words), and the Header RFU assembles the
/// MPDU from it. Placed after the status words within the Ctrl page payload.
inline constexpr u32 kHdrTmplWordOffset = 24;

constexpr u32 ctrl_status_addr(Mode m, CtrlWord w) {
  return page_base(m, Page::Ctrl) + kPageDataOffset + static_cast<u32>(w);
}

/// Address usable as a page base (length word + payload) for the header
/// template inside the Ctrl page.
constexpr u32 ctrl_hdr_tmpl_addr(Mode m) {
  return page_base(m, Page::Ctrl) + kPageDataOffset + kHdrTmplWordOffset - kPageDataOffset;
}

}  // namespace drmp::hw
