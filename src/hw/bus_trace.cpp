#include "hw/bus_trace.hpp"

#include <algorithm>

namespace drmp::hw {

void BusTraceRecorder::on_request(Mode m, Cycle now) {
  auto& o = open_[index(m)];
  if (o.active) return;  // Re-assertion within an open tenure.
  o.active = true;
  o.any_access = false;
  o.tx = BusTransaction{};
  o.tx.mode = m;
  o.tx.request = now;
  o.tx.first_access = now;
  o.tx.last_access = now;
}

void BusTraceRecorder::close(std::size_t i, Cycle now) {
  auto& o = open_[i];
  if (!o.active) return;
  if (!o.any_access) {
    // A tenure that moved no words still occupied the arbiter for its span;
    // give it a one-cycle footprint at the release point.
    o.tx.first_access = now;
    o.tx.last_access = now;
  }
  done_.push_back(o.tx);
  o.active = false;
}

void BusTraceRecorder::on_release(Mode m, Cycle now) { close(index(m), now); }

void BusTraceRecorder::on_access(Mode origin, Cycle now, bool rfu_region) {
  auto& o = open_[index(origin)];
  if (!o.active) {
    // Access outside a recorded request window (e.g. recorder attached
    // mid-run): open an implicit tenure so the demand is not lost.
    on_request(origin, now);
  }
  auto& t = open_[index(origin)];
  if (!t.any_access) {
    t.tx.first_access = now;
    t.any_access = true;
  }
  t.tx.last_access = now;
  ++t.tx.words;
  if (rfu_region) {
    t.tx.touched_rfu = true;
  } else {
    t.tx.touched_mem = true;
  }
}

void BusTraceRecorder::finish(Cycle now) {
  for (std::size_t i = 0; i < kNumModes; ++i) close(i, now);
  std::sort(done_.begin(), done_.end(),
            [](const BusTransaction& a, const BusTransaction& b) {
              return a.request < b.request;
            });
}

void BusTraceRecorder::clear() {
  done_.clear();
  for (auto& o : open_) o.active = false;
}

}  // namespace drmp::hw
