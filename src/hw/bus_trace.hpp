// Bus-transaction recorder for interconnect exploration (thesis §3.6.3,
// §5.5, §7.1.1).
//
// The thesis identifies the single packet bus as the throughput bottleneck
// and names the alternatives it would explore as future work: "One could
// simply increase the bus-width for higher throughput. A multi-bus network
// [100] may be used to allow two or three RFUs to simultaneously function for
// different protocol modes. A segmented bus [100] could also achieve similar
// results." This recorder captures the live single-bus workload —
// request/release of each mode's task handler plus every data-phase cycle —
// so interconnect_models.hpp can replay the identical demand through those
// alternative topologies.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"

namespace drmp::hw {

/// One bus tenure by one mode: from the task handler raising its request
/// line to its release, with the data-phase profile observed in between.
struct BusTransaction {
  Mode mode = Mode::A;
  Cycle request = 0;       ///< Cycle the request line went active.
  Cycle first_access = 0;  ///< First data-phase cycle (== request if none).
  Cycle last_access = 0;   ///< Last data-phase cycle.
  u32 words = 0;           ///< Word transfers performed during the tenure.
  bool touched_mem = false;  ///< Any access hit the packet memory.
  bool touched_rfu = false;  ///< Any access decoded as RFU trigger/argument.

  /// Cycles the master held the bus without moving a word (RFU-internal
  /// processing, trigger hand-off) — these do not shrink with bus width.
  Cycle stall_cycles() const {
    if (words == 0) return 0;
    const Cycle span = last_access - first_access + 1;
    return span > words ? span - words : 0;
  }
};

/// Passive observer attached to the PacketBus; builds the transaction list
/// consumed by the interconnect replay models.
class BusTraceRecorder {
 public:
  void on_request(Mode m, Cycle now);
  void on_release(Mode m, Cycle now);
  /// `rfu_region` — the access decoded as an RFU trigger/argument (or the
  /// override address) rather than a packet-memory word.
  void on_access(Mode origin, Cycle now, bool rfu_region);

  /// Closes any still-open tenures (end of recording window).
  void finish(Cycle now);

  const std::vector<BusTransaction>& transactions() const { return done_; }
  std::size_t size() const { return done_.size(); }
  void clear();

 private:
  struct Open {
    bool active = false;
    bool any_access = false;
    BusTransaction tx;
  };
  void close(std::size_t i, Cycle now);

  std::array<Open, kNumModes> open_{};
  std::vector<BusTransaction> done_;
};

}  // namespace drmp::hw
