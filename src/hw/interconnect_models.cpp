#include "hw/interconnect_models.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace drmp::hw {

std::vector<FlowTx> to_flow_trace(std::span<const BusTransaction> trace) {
  std::vector<FlowTx> out;
  out.reserve(trace.size());
  for (const BusTransaction& t : trace) {
    FlowTx f;
    f.flow = static_cast<u32>(index(t.mode));
    f.request = t.request;
    f.words = std::max<u32>(1, t.words);
    f.stall = t.stall_cycles();
    f.segments = 0;
    if (t.touched_mem) f.segments |= FlowTx::kSegMem;
    if (t.touched_rfu) f.segments |= FlowTx::kSegRfu;
    if (f.segments == 0) f.segments = FlowTx::kSegMem;
    out.push_back(f);
  }
  std::sort(out.begin(), out.end(),
            [](const FlowTx& a, const FlowTx& b) { return a.request < b.request; });
  return out;
}

std::vector<FlowTx> synthesize_n_flows(std::span<const FlowTx> trace, u32 n_flows,
                                       Cycle phase) {
  std::vector<FlowTx> out;
  for (u32 f = 0; f < n_flows; ++f) {
    for (const FlowTx& t : trace) {
      if (t.flow != 0) continue;
      FlowTx c = t;
      c.flow = f;
      c.request = t.request + static_cast<Cycle>(f) * phase;
      out.push_back(c);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlowTx& a, const FlowTx& b) { return a.request < b.request; });
  return out;
}

std::string InterconnectSpec::label() const {
  switch (kind) {
    case Kind::SingleBus:
      return "single bus (32-bit)";
    case Kind::WideBus:
      return "wide bus (" + std::to_string(32 * width_words) + "-bit)";
    case Kind::MultiBus:
      return "multi-bus x" + std::to_string(num_buses);
    case Kind::SegmentedBus:
      return "segmented bus (mem|rfu)";
  }
  return "?";
}

double InterconnectSpec::wire_cost() const {
  // Rough relative wiring/area proxy, single 32-bit bus = 1.0: a W-word bus
  // is ~W x the data wires; N buses are ~N x wires plus N-way multiplexing at
  // the memory port; a segmented bus reuses the same wire length split in two
  // with a bridge ("lower resources but with some additional control",
  // §3.6.3).
  switch (kind) {
    case Kind::SingleBus:
      return 1.0;
    case Kind::WideBus:
      return static_cast<double>(width_words);
    case Kind::MultiBus:
      return 1.15 * static_cast<double>(num_buses);
    case Kind::SegmentedBus:
      return 1.2;
  }
  return 1.0;
}

Cycle ReplayResult::total_wait() const {
  Cycle sum = 0;
  for (const auto& f : flows) sum += f.wait;
  return sum;
}

Cycle ReplayResult::worst_flow_wait() const {
  Cycle worst = 0;
  for (const auto& f : flows) worst = std::max(worst, f.wait);
  return worst;
}

namespace {

/// Resource indices a transaction occupies under `spec`.
void resources_for(const InterconnectSpec& spec, const FlowTx& tx,
                   std::vector<u32>& out) {
  out.clear();
  switch (spec.kind) {
    case InterconnectSpec::Kind::SingleBus:
    case InterconnectSpec::Kind::WideBus:
      out.push_back(0);
      break;
    case InterconnectSpec::Kind::MultiBus:
      out.push_back(tx.flow % std::max<u32>(1, spec.num_buses));
      break;
    case InterconnectSpec::Kind::SegmentedBus:
      if ((tx.segments & FlowTx::kSegMem) != 0) out.push_back(0);
      if ((tx.segments & FlowTx::kSegRfu) != 0) out.push_back(1);
      if (out.empty()) out.push_back(0);
      break;
  }
}

Cycle service_cycles(const InterconnectSpec& spec, const FlowTx& tx) {
  const u32 width =
      spec.kind == InterconnectSpec::Kind::WideBus ? std::max<u32>(1, spec.width_words) : 1;
  const Cycle transfer = (tx.words + width - 1) / width;
  return std::max<Cycle>(1, transfer + tx.stall);
}

}  // namespace

ReplayResult replay_interconnect(std::span<const FlowTx> trace,
                                 const InterconnectSpec& spec) {
  u32 n_flows = 0;
  for (const FlowTx& t : trace) n_flows = std::max(n_flows, t.flow + 1);

  const u32 n_resources = spec.kind == InterconnectSpec::Kind::MultiBus
                              ? std::max<u32>(1, spec.num_buses)
                          : spec.kind == InterconnectSpec::Kind::SegmentedBus ? 2u
                                                                              : 1u;

  // Per-flow FIFO of its transactions (a mode's task handler issues one bus
  // tenure at a time, so per-flow transactions are sequential).
  std::vector<std::deque<FlowTx>> queues(n_flows);
  for (const FlowTx& t : trace) queues[t.flow].push_back(t);
  for (auto& q : queues) {
    std::sort(q.begin(), q.end(),
              [](const FlowTx& a, const FlowTx& b) { return a.request < b.request; });
  }

  ReplayResult res;
  res.flows.assign(n_flows, FlowReplayStats{});
  std::vector<Cycle> free_at(n_resources, 0);
  std::vector<Cycle> busy(n_resources, 0);
  std::vector<Cycle> ready(n_flows, 0);
  for (u32 f = 0; f < n_flows; ++f) {
    ready[f] = queues[f].empty() ? 0 : queues[f].front().request;
  }

  std::vector<u32> needed;
  std::size_t remaining = trace.size();
  while (remaining > 0) {
    // Non-preemptive fixed-priority arbitration: among flows with a pending
    // transaction, the one that can start earliest wins; ties go to the
    // lower flow id (flow 0 = mode A = highest priority, §3.6.4).
    u32 best = n_flows;
    Cycle best_start = 0;
    for (u32 f = 0; f < n_flows; ++f) {
      if (queues[f].empty()) continue;
      resources_for(spec, queues[f].front(), needed);
      Cycle start = ready[f];
      for (u32 r : needed) start = std::max(start, free_at[r]);
      if (best == n_flows || start < best_start) {
        best = f;
        best_start = start;
      }
    }
    assert(best != n_flows);

    const FlowTx tx = queues[best].front();
    queues[best].pop_front();
    --remaining;

    const Cycle dur = service_cycles(spec, tx);
    const Cycle end = best_start + dur;
    resources_for(spec, tx, needed);
    for (u32 r : needed) {
      free_at[r] = end;
      busy[r] += dur;
    }
    auto& st = res.flows[best];
    st.wait += best_start - ready[best];
    st.hold += dur;
    ++st.transactions;
    res.makespan = std::max(res.makespan, end);

    // The flow's next transaction may not start before its original demand
    // time nor before this one completes (one tenure per task handler).
    if (!queues[best].empty()) {
      ready[best] = std::max(queues[best].front().request, end);
    }
  }

  if (res.makespan > 0) {
    Cycle peak = 0;
    for (u32 r = 0; r < n_resources; ++r) peak = std::max(peak, busy[r]);
    res.peak_utilization = static_cast<double>(peak) / static_cast<double>(res.makespan);
  }
  return res;
}

}  // namespace drmp::hw
