#include "hw/trigger.hpp"

namespace drmp::hw {

bool RfuTriggerLogic::decode_write(u32 addr, Word data) {
  if (!is_rfu_trigger_addr(addr)) return false;
  const u8 id = static_cast<u8>(addr - kRfuTriggerBase);
  if (wakers_[id] != nullptr) wakers_[id]->wake_self();
  latched_[id].push_back(data);
  triggered_flag_[id] = true;
  return true;
}

std::optional<Word> RfuTriggerLogic::take(u8 rfu_id) {
  auto& q = latched_[rfu_id];
  if (q.empty()) return std::nullopt;
  const Word w = q.front();
  q.pop_front();
  return w;
}

}  // namespace drmp::hw
