// Packet-memory manager (thesis §3.6.3, Fig. 3.9 sidebar).
//
// The prototype fixes one worst-case-sized page per (mode, processing stage)
// so that "the starting address of packet-data at various stages is
// completely fixed, and the RHCP's IRC or the CPU are relieved from any
// memory-management tasks" — at the price of "a potential waste of memory".
// The thesis twice points at the remedy it leaves unbuilt: "An intermediate
// memory-manager module could both minimize address house-keeping as well as
// keep the memory use optimal."
//
// This module builds that option: a block-granular, first-fit allocator with
// extent coalescing, per-mode quotas and housekeeping-cost accounting, so the
// footprint-vs-housekeeping trade can be measured against the fixed paging of
// memory_map.hpp (bench_abl_memory_manager).
#pragma once

#include <array>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "hw/memory_map.hpp"

namespace drmp::hw {

class MemoryManager {
 public:
  struct Config {
    /// Backing pool (words). Defaults to the prototype's page-region size so
    /// comparisons are like-for-like.
    u32 pool_words = kNumModes * kPagesPerMode * kPageWords;
    /// Allocation granule (words); regions round up to whole blocks — the
    /// hardware free-list tracks blocks, not bytes.
    u32 block_words = 64;
    /// Housekeeping cost per operation (cycles): the "additional control
    /// operations" the thesis weighs against the memory saved.
    u32 alloc_cost_cycles = 4;
    u32 free_cost_cycles = 2;
    /// Per-mode cap on allocated words; 0 = unlimited.
    std::array<u32, kNumModes> mode_quota_words{};
  };

  explicit MemoryManager(Config cfg);

  /// Allocates a region of at least `bytes` bytes for mode `m`.
  /// Returns a handle, or nullopt when the pool, a contiguous extent, or the
  /// mode's quota is exhausted.
  std::optional<u32> alloc(Mode m, u32 bytes);

  /// Releases a region. Returns false (and changes nothing) for an unknown
  /// or already-freed handle — the double-free guard.
  bool free(u32 handle);

  /// Base word address of a live region (valid handle only).
  u32 base_word(u32 handle) const;
  /// Allocated span in words (block-rounded).
  u32 span_words(u32 handle) const;
  bool live(u32 handle) const { return regions_.contains(handle); }

  // ---- Instrumentation ----
  u32 words_in_use() const noexcept { return words_in_use_; }
  u32 high_water_words() const noexcept { return high_water_; }
  u32 mode_words(Mode m) const { return mode_words_[index(m)]; }
  u64 allocs() const noexcept { return allocs_; }
  u64 frees() const noexcept { return frees_; }
  u64 failed_allocs() const noexcept { return failed_; }
  /// Total housekeeping cycles charged so far.
  Cycle housekeeping_cycles() const noexcept { return housekeeping_; }
  /// Number of disjoint free extents (1 when fully coalesced and untouched).
  std::size_t free_extent_count() const noexcept { return free_.size(); }
  u32 largest_free_extent_words() const;
  u32 free_words() const;

  const Config& config() const noexcept { return cfg_; }

 private:
  struct Extent {
    u32 base;
    u32 span;
  };
  struct Region {
    Mode mode;
    u32 base;
    u32 span;
  };

  u32 round_up_blocks(u32 bytes) const;

  Config cfg_;
  std::vector<Extent> free_;  ///< Sorted by base, coalesced.
  std::unordered_map<u32, Region> regions_;
  u32 next_handle_ = 1;
  u32 words_in_use_ = 0;
  u32 high_water_ = 0;
  std::array<u32, kNumModes> mode_words_{};
  u64 allocs_ = 0;
  u64 frees_ = 0;
  u64 failed_ = 0;
  Cycle housekeeping_ = 0;
};

}  // namespace drmp::hw
