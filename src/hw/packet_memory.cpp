#include "hw/packet_memory.hpp"

#include <stdexcept>

namespace drmp::hw {

void PacketMemory::write_page_bytes(Mode m, Page p, std::span<const u8> bytes) {
  if (bytes.size() > kPagePayloadBytes) {
    throw std::length_error("packet page overflow");
  }
  const u32 base = page_base(m, p);
  words_.at(base + kPageLenOffset) = static_cast<Word>(bytes.size());
  const auto packed = pack_words(bytes);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    words_.at(base + kPageDataOffset + i) = packed[i];
  }
}

Bytes PacketMemory::read_page_bytes(Mode m, Page p) const {
  const u32 base = page_base(m, p);
  const u32 len = words_.at(base + kPageLenOffset);
  std::vector<Word> w(words_for_bytes(len));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = words_.at(base + kPageDataOffset + i);
  }
  return unpack_bytes(w, len);
}

}  // namespace drmp::hw
