#include "hw/memory_manager.hpp"

#include <algorithm>
#include <cassert>

namespace drmp::hw {

MemoryManager::MemoryManager(Config cfg) : cfg_(cfg) {
  assert(cfg_.block_words > 0);
  free_.push_back(Extent{0, cfg_.pool_words});
}

u32 MemoryManager::round_up_blocks(u32 bytes) const {
  const u32 words = (bytes + 3) / 4;
  const u32 blocks = (words + cfg_.block_words - 1) / cfg_.block_words;
  return std::max<u32>(1, blocks) * cfg_.block_words;
}

std::optional<u32> MemoryManager::alloc(Mode m, u32 bytes) {
  housekeeping_ += cfg_.alloc_cost_cycles;
  const u32 span = round_up_blocks(bytes);

  const u32 quota = cfg_.mode_quota_words[index(m)];
  if (quota != 0 && mode_words_[index(m)] + span > quota) {
    ++failed_;
    return std::nullopt;
  }

  // First fit over the sorted free list.
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].span < span) continue;
    const u32 base = free_[i].base;
    if (free_[i].span == span) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      free_[i].base += span;
      free_[i].span -= span;
    }
    const u32 handle = next_handle_++;
    regions_.emplace(handle, Region{m, base, span});
    words_in_use_ += span;
    mode_words_[index(m)] += span;
    high_water_ = std::max(high_water_, words_in_use_);
    ++allocs_;
    return handle;
  }
  ++failed_;
  return std::nullopt;
}

bool MemoryManager::free(u32 handle) {
  const auto it = regions_.find(handle);
  if (it == regions_.end()) return false;  // Unknown or double free.
  housekeeping_ += cfg_.free_cost_cycles;

  const Region r = it->second;
  regions_.erase(it);
  words_in_use_ -= r.span;
  mode_words_[index(r.mode)] -= r.span;

  // Insert sorted and coalesce with both neighbours. (The insert may
  // reallocate, so take begin() only afterwards.)
  const auto pos = std::lower_bound(
      free_.begin(), free_.end(), r.base,
      [](const Extent& e, u32 base) { return e.base < base; });
  const auto inserted = free_.insert(pos, Extent{r.base, r.span});
  const std::size_t i = static_cast<std::size_t>(inserted - free_.begin());
  if (i + 1 < free_.size() && free_[i].base + free_[i].span == free_[i + 1].base) {
    free_[i].span += free_[i + 1].span;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  }
  if (i > 0 && free_[i - 1].base + free_[i - 1].span == free_[i].base) {
    free_[i - 1].span += free_[i].span;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  ++frees_;
  return true;
}

u32 MemoryManager::base_word(u32 handle) const { return regions_.at(handle).base; }

u32 MemoryManager::span_words(u32 handle) const { return regions_.at(handle).span; }

u32 MemoryManager::largest_free_extent_words() const {
  u32 best = 0;
  for (const Extent& e : free_) best = std::max(best, e.span);
  return best;
}

u32 MemoryManager::free_words() const {
  u32 sum = 0;
  for (const Extent& e : free_) sum += e.span;
  return sum;
}

}  // namespace drmp::hw
