// Reconfiguration memory (thesis §3.6.3): a separate physical memory with its
// own bus holding the configuration data of Memory-Access RFUs, "so that one
// RFU can configure itself while another RFU carries out operation on the
// packet data". The single Reconfiguration Controller means the reconfig bus
// never sees contention (§3.6.4), so a simple word store suffices; the MA-RFU
// reconfiguration latency is blob-length words at one word per cycle.
#pragma once

#include <map>
#include <vector>

#include "common/types.hpp"

namespace drmp::hw {

class ReconfigMemory {
 public:
  /// Loads a configuration blob for (rfu, state) at start-up (thesis §3.4:
  /// "Start-up configuration will be external").
  void load_blob(u8 rfu_id, u8 state, std::vector<Word> words);

  bool has_blob(u8 rfu_id, u8 state) const { return blobs_.count(key(rfu_id, state)) != 0; }

  /// Number of words an MA-RFU must stream to switch into `state`.
  u32 blob_len(u8 rfu_id, u8 state) const;

  const std::vector<Word>& blob(u8 rfu_id, u8 state) const { return blobs_.at(key(rfu_id, state)); }

 private:
  static u16 key(u8 rfu_id, u8 state) { return static_cast<u16>((rfu_id << 8) | state); }
  std::map<u16, std::vector<Word>> blobs_;
};

}  // namespace drmp::hw
