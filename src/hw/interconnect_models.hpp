// Interconnect alternatives for the RHCP (thesis §3.6.3, §5.5, §7.1.1).
//
// "While a single-bus network has been shown to be enough for 3 concurrent
// protocol modes with a bandwidth of 20 Mbps at a moderate clock frequency of
// 200 MHz, it may become a bottleneck for faster protocols. ... One could
// simply increase the bus-width for higher throughput. A multi-bus network
// [100] may be used to allow two or three RFUs to simultaneously function for
// different protocol modes. A segmented bus [100] could also achieve similar
// results, with lower resources but with some additional control operations
// involved." (§3.6.3)
//
// These models replay a recorded single-bus workload (hw/bus_trace.hpp)
// through each alternative topology and report the contention each flow would
// see, so the architectural trade the thesis defers to future work can be
// quantified on the real demand pattern. The replay preserves each flow's
// *demand* timeline — a transaction may never start before its original
// request cycle — and scales only the transfer portion of each tenure with
// bus width; master-held stall cycles (RFU-internal processing) are
// width-invariant.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "hw/bus_trace.hpp"

namespace drmp::hw {

/// A replayable transaction, decoupled from the 3-mode `Mode` type so the
/// same machinery drives the N-flow scaling study (§3.1 footnote: "nothing in
/// the architecture's basic design that limits it to three protocol modes...
/// the potential bottleneck is the interconnect").
struct FlowTx {
  u32 flow = 0;      ///< Flow id; doubles as fixed priority (0 = highest).
  Cycle request = 0; ///< Earliest cycle the transaction may start.
  u32 words = 0;     ///< Word transfers (shrink with a wider bus).
  Cycle stall = 0;   ///< Width-invariant cycles held without a transfer.
  /// Segment usage bitmask for the segmented-bus model.
  static constexpr u8 kSegMem = 1;
  static constexpr u8 kSegRfu = 2;
  u8 segments = kSegMem;
};

/// Converts a recorded bus trace into replayable flow transactions
/// (mode index becomes the flow id / priority).
std::vector<FlowTx> to_flow_trace(std::span<const BusTransaction> trace);

/// Synthesizes an N-flow workload by replicating flow 0's transaction
/// pattern of `trace` across `n_flows` flows, each offset by `phase` cycles —
/// the §3.1-footnote scaling experiment.
std::vector<FlowTx> synthesize_n_flows(std::span<const FlowTx> trace, u32 n_flows,
                                       Cycle phase);

struct InterconnectSpec {
  enum class Kind : u8 {
    SingleBus,    ///< The prototype: one bus, one word per cycle.
    WideBus,      ///< §3.6.3 "increase the bus-width": width_words per cycle.
    MultiBus,     ///< §3.6.3 multi-bus network: flow f uses bus f % num_buses.
    SegmentedBus, ///< §3.6.3 segmented bus: memory + RFU segments, bridged.
  };
  Kind kind = Kind::SingleBus;
  u32 width_words = 1;  ///< WideBus only (1 = 32-bit, 2 = 64-bit, ...).
  u32 num_buses = 1;    ///< MultiBus only.

  std::string label() const;
  /// Relative interconnect wiring cost (32-bit single bus = 1.0) — the
  /// resource-cost axis of the §3.6.3 trade ("with lower resources but with
  /// some additional control operations" for the segmented option).
  double wire_cost() const;
};

struct FlowReplayStats {
  Cycle wait = 0;  ///< Cycles spent queued behind other flows.
  Cycle hold = 0;  ///< Cycles holding a bus resource.
  u32 transactions = 0;
};

struct ReplayResult {
  Cycle makespan = 0;  ///< Completion cycle of the last transaction.
  std::vector<FlowReplayStats> flows;
  /// Utilization of the busiest single resource over the makespan.
  double peak_utilization = 0.0;

  Cycle total_wait() const;
  Cycle worst_flow_wait() const;
};

/// Replays `trace` through the interconnect described by `spec` under fixed
/// flow-priority arbitration (flow 0 highest, matching §3.6.4).
ReplayResult replay_interconnect(std::span<const FlowTx> trace, const InterconnectSpec& spec);

}  // namespace drmp::hw
