// The packet memory's map (thesis Fig. 3.9):
//   * CPU interface registers (service-request doorbells + super-op-code
//     buffers, one block per mode; interrupt-source registers),
//   * one address per RFU used to pass arguments / trigger it,
//   * a reserved override address for the master/slave grant hand-off,
//   * per-mode pages, fixed-size, one page per processing stage, so "the
//     starting address of packet-data at various stages is completely fixed,
//     and the RHCP's IRC or the CPU are relieved from any memory-management
//     tasks" (thesis §3.6.3).
#pragma once

#include "common/types.hpp"

namespace drmp::hw {

// ---- CPU interface registers --------------------------------------------
inline constexpr u32 kIfaceRegsBase = 0x0000;
inline constexpr u32 kIfaceRegsPerMode = 0x20;
/// Doorbell: CPU writes the number of super-op-code words ready; the IRC
/// In-Interface clears it when the request is accepted.
inline constexpr u32 kDoorbellOffset = 0x00;
/// Super-op-code buffer (op/nargs words followed by argument words).
inline constexpr u32 kSopBufOffset = 0x02;
inline constexpr u32 kSopBufWords = kIfaceRegsPerMode - kSopBufOffset;

constexpr u32 iface_base(Mode m) noexcept {
  return kIfaceRegsBase + kIfaceRegsPerMode * static_cast<u32>(m);
}

// ---- Interrupt registers --------------------------------------------------
/// Bitmask of modes with a pending interrupt (bit i = mode i).
inline constexpr u32 kIrqSourceReg = 0x0060;
/// Per-mode event-code register, read by the ISR to find the cause.
inline constexpr u32 kIrqEventReg0 = 0x0061;  // +1 per mode
/// Per-mode event-payload register (e.g. rx byte count).
inline constexpr u32 kIrqParamReg0 = 0x0064;  // +1 per mode

// ---- RFU trigger addresses ------------------------------------------------
inline constexpr u32 kRfuTriggerBase = 0x0080;
inline constexpr u32 kMaxRfus = 32;
/// Reserved address: the current bus-master RFU writes the slave RFU's id
/// here to hand the bus over (Grant Override Logic, thesis §3.6.5), and
/// writes it again to hand the bus back.
inline constexpr u32 kOverrideAddr = 0x00FF;

constexpr u32 rfu_trigger_addr(u8 rfu_id) noexcept { return kRfuTriggerBase + rfu_id; }
constexpr bool is_rfu_trigger_addr(u32 addr) noexcept {
  return addr >= kRfuTriggerBase && addr < kRfuTriggerBase + kMaxRfus;
}

// ---- Per-mode pages --------------------------------------------------------
inline constexpr u32 kModePagesBase = 0x0100;
/// 640 words = 2560 bytes per page; larger than the biggest MPDU of the three
/// protocols (2346 B for 802.11), per the worst-case page sizing of §3.6.3.
inline constexpr u32 kPageWords = 640;
inline constexpr u32 kPagesPerMode = 10;

/// Processing stages; each has a fixed page (thesis: "each page corresponding
/// to a certain stage the data is in while it is being processed, e.g.
/// post-fragmentation, post-encryption etc."). Transmit and receive flows use
/// disjoint pages so one mode can overlap them.
enum class Page : u8 {
  Ctrl = 0,       ///< Protocol state / header template, CPU-visible.
  Raw = 1,        ///< MSDU from the host, pre-processing.
  Crypt = 2,      ///< Post-encryption payload.
  Tx = 3,         ///< Assembled MPDU awaiting transmission.
  Rx = 4,         ///< Received MPDU.
  Defrag = 5,     ///< Reassembly buffer.
  Scratch = 6,    ///< Transmit-side intermediate (fragment slice, packing).
  Ack = 7,        ///< Auto-generated control frames (ACKs).
  RxScratch = 8,  ///< Receive-side intermediate (extracted body).
  RxOut = 9,      ///< Delivered MSDU (post-decrypt).
};

constexpr u32 page_base(Mode m, Page p) noexcept {
  return kModePagesBase +
         (static_cast<u32>(m) * kPagesPerMode + static_cast<u32>(p)) * kPageWords;
}

inline constexpr u32 kMemWords = kModePagesBase + kNumModes * kPagesPerMode * kPageWords;

// Page payload layout: word 0 holds the byte length, payload starts at word 1.
inline constexpr u32 kPageLenOffset = 0;
inline constexpr u32 kPageDataOffset = 1;
inline constexpr u32 kPagePayloadBytes = (kPageWords - kPageDataOffset) * 4;

}  // namespace drmp::hw
