#include "hw/reconfig_memory.hpp"

namespace drmp::hw {

void ReconfigMemory::load_blob(u8 rfu_id, u8 state, std::vector<Word> words) {
  blobs_[key(rfu_id, state)] = std::move(words);
}

u32 ReconfigMemory::blob_len(u8 rfu_id, u8 state) const {
  auto it = blobs_.find(key(rfu_id, state));
  return it == blobs_.end() ? 0 : static_cast<u32>(it->second.size());
}

}  // namespace drmp::hw
