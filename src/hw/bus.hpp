// The single shared packet bus and its arbiter (thesis §3.6.3-3.6.5,
// Figs. 3.10-3.12):
//
//   * Single-bus interconnect connecting the IRC, the RFU pool and the packet
//     memory; "the same packet-bus can be used for: the IRC writing data to
//     RFU, the IRC writing data to the packet memory, an RFU writing data to
//     the packet memory or an RFU writing data to another RFU."
//   * Fixed-priority arbitration between the three mode task-handlers
//     ("mode 1 has the highest priority and mode 3 the lowest", §3.6.4);
//     non-preemptive — a granted transaction holds the bus until released.
//   * Grant Delay Logic (Fig. 3.12): when the IRC requests the bus on behalf
//     of an RFU, the grant is delayed until the IRC has triggered that RFU.
//   * Grant Override Logic (Fig. 3.11, §3.6.5): the current master RFU writes
//     the reserved override address with a slave RFU id to hand the bus over,
//     and the slave writes it again to hand it back. "Only the RFU that
//     already has access to the bus can override the grant."
#pragma once

#include <array>
#include <cassert>
#include <vector>

#include "common/types.hpp"
#include "hw/bus_trace.hpp"
#include "hw/memory_map.hpp"
#include "hw/packet_memory.hpp"
#include "hw/trigger.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace drmp::hw {

class PacketBus : public sim::Clockable {
 public:
  enum class MasterKind : u8 { None, Irc, Rfu };

  struct Grant {
    MasterKind kind = MasterKind::None;
    Mode mode = Mode::A;   // Valid when kind == Irc.
    u8 rfu_id = 0xFF;      // Valid when kind == Rfu.
    bool operator==(const Grant&) const = default;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(kind);
      ar.io(mode);
      ar.io(rfu_id);
    }
  };

  struct ModeRequest {
    bool active = false;
    bool for_rfu = false;  // IRC requesting on behalf of an RFU.
    u8 rfu_id = 0xFF;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(active);
      ar.io(for_rfu);
      ar.io(rfu_id);
    }
  };

  PacketBus(PacketMemory& mem, sim::StatsRegistry* stats);

  // ---- Request lines (driven by the mode task handlers) ----
  void request_for_irc(Mode m);
  void request_for_rfu(Mode m, u8 rfu_id);
  void release(Mode m);
  const ModeRequest& mode_request(Mode m) const { return requests_[index(m)]; }

  // ---- Grant queries ----
  const Grant& grant() const noexcept { return grant_; }
  bool granted_irc(Mode m) const {
    return grant_.kind == MasterKind::Irc && grant_.mode == m;
  }
  bool granted_rfu(u8 rfu_id) const {
    return grant_.kind == MasterKind::Rfu && grant_.rfu_id == rfu_id;
  }

  // ---- Transactions (current master only; at most one per cycle) ----
  Word read(u32 addr);
  void write(u32 addr, Word data);
  bool can_access() const noexcept { return !accessed_this_cycle_; }

  // ---- Trigger logic access (RFU side) ----
  RfuTriggerLogic& triggers() noexcept { return triggers_; }

  // ---- Arbitration (once per architecture cycle) ----
  void tick() override;

  // ---- Quiescence contract (sim/scheduler.hpp) ----
  /// Skippable while no request line is asserted and no grant is held (an
  /// idle tick is pure cycle accounting plus a no-op arbitrate). Request
  /// lines wake the bus. Disabled while a transaction recorder or an enabled
  /// trace recorder is attached: both consume total_cycles() from other
  /// components' ticks, which a lazily-accounted bus would serve stale.
  Cycle quiescent_for() const override;
  void skip_idle(Cycle n) override;
  /// Trace recorder whose enabled() gates bus quiescence (see above);
  /// wired by DrmpDevice, null = no gate.
  void set_trace_gate(const sim::TraceRecorder* t) noexcept { trace_gate_ = t; }

  // ---- Instrumentation ----
  Cycle busy_cycles() const noexcept { return busy_cycles_; }
  Cycle total_cycles() const noexcept { return total_cycles_; }
  Cycle mode_hold_cycles(Mode m) const { return mode_hold_cycles_[index(m)]; }
  /// Cycles a mode spent requesting without owning the bus (contention).
  Cycle mode_wait_cycles(Mode m) const { return mode_wait_cycles_[index(m)]; }

  /// Attaches a transaction recorder for interconnect exploration
  /// (§3.6.3/§7.1 alternatives); pass nullptr to detach.
  void attach_recorder(BusTraceRecorder* r) noexcept { recorder_ = r; }

  /// Checkpoint support (sim/checkpoint.hpp). The arbiter state machine,
  /// the trigger latches and every cycle counter travel; the memory, stats
  /// sinks and recorders are wiring owned elsewhere.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(triggers_);
    ar.io(requests_);
    ar.io(grant_);
    ar.io(override_stack_);
    ar.io(accessed_this_cycle_);
    ar.io(busy_cycles_);
    ar.io(total_cycles_);
    ar.io(mode_hold_cycles_);
    ar.io(mode_wait_cycles_);
  }

 private:
  Mode grant_origin_mode() const;
  void arbitrate();

  PacketMemory& mem_;
  sim::StatsRegistry* stats_;
  sim::BusyCounter* busy_stat_ = nullptr;  ///< Cached per-tick stats sink.
  BusTraceRecorder* recorder_ = nullptr;
  const sim::TraceRecorder* trace_gate_ = nullptr;
  RfuTriggerLogic triggers_;

  std::array<ModeRequest, kNumModes> requests_{};
  Grant grant_{};
  std::vector<Grant> override_stack_;

  bool accessed_this_cycle_ = false;
  Cycle busy_cycles_ = 0;
  Cycle total_cycles_ = 0;
  std::array<Cycle, kNumModes> mode_hold_cycles_{};
  std::array<Cycle, kNumModes> mode_wait_cycles_{};
};

}  // namespace drmp::hw
