#include "hw/bus.hpp"

namespace drmp::hw {

PacketBus::PacketBus(PacketMemory& mem, sim::StatsRegistry* stats)
    : mem_(mem), stats_(stats) {}

void PacketBus::request_for_irc(Mode m) {
  wake_self();  // An asserted request line re-enters arbitration next tick.
  auto& r = requests_[index(m)];
  if (recorder_ != nullptr && !r.active) recorder_->on_request(m, total_cycles_);
  r.active = true;
  r.for_rfu = false;
  r.rfu_id = 0xFF;
}

void PacketBus::request_for_rfu(Mode m, u8 rfu_id) {
  wake_self();
  auto& r = requests_[index(m)];
  if (recorder_ != nullptr && !r.active) recorder_->on_request(m, total_cycles_);
  r.active = true;
  r.for_rfu = true;
  r.rfu_id = rfu_id;
}

void PacketBus::release(Mode m) {
  assert(override_stack_.empty() &&
         "bus released by IRC while a grant override is outstanding");
  if (recorder_ != nullptr && requests_[index(m)].active) {
    recorder_->on_release(m, total_cycles_);
  }
  requests_[index(m)] = ModeRequest{};
}

Word PacketBus::read(u32 addr) {
  assert(grant_.kind != MasterKind::None && "bus read without a master");
  assert(!accessed_this_cycle_ && "second bus access in one cycle");
  accessed_this_cycle_ = true;
  if (recorder_ != nullptr) {
    recorder_->on_access(grant_origin_mode(), total_cycles_, /*rfu_region=*/false);
  }
  return mem_.read(addr);
}

void PacketBus::write(u32 addr, Word data) {
  assert(grant_.kind != MasterKind::None && "bus write without a master");
  assert(!accessed_this_cycle_ && "second bus access in one cycle");
  accessed_this_cycle_ = true;
  if (recorder_ != nullptr) {
    const bool rfu_region = addr == kOverrideAddr || triggers_.decodes(addr);
    recorder_->on_access(grant_origin_mode(), total_cycles_, rfu_region);
  }

  if (addr == kOverrideAddr) {
    // Grant Override Logic (thesis §3.6.5): only the current RFU master may
    // override. Writing another RFU's id delegates the bus to that slave;
    // writing its own id (or 0xFF) hands the bus back to the saved master.
    assert(grant_.kind == MasterKind::Rfu && "only an RFU master can override the grant");
    const u8 target = static_cast<u8>(data);
    if (target == grant_.rfu_id || target == 0xFF) {
      assert(!override_stack_.empty() && "override return without a saved master");
      grant_ = override_stack_.back();
      override_stack_.pop_back();
    } else {
      override_stack_.push_back(grant_);
      grant_ = Grant{MasterKind::Rfu, grant_.mode, target};
    }
    return;
  }

  if (triggers_.decode_write(addr, data)) {
    return;  // Write decoded as an RFU trigger; not a memory write.
  }
  mem_.write(addr, data);
}

Mode PacketBus::grant_origin_mode() const {
  // Which mode's request produced the current grant (for statistics).
  if (grant_.kind == MasterKind::Irc) return grant_.mode;
  if (grant_.kind == MasterKind::Rfu) {
    // Find the mode whose delegated RFU is the master (or, for an override
    // slave, the mode that installed the original master).
    const u8 master = override_stack_.empty() ? grant_.rfu_id : override_stack_.front().rfu_id;
    for (std::size_t i = 0; i < kNumModes; ++i) {
      const auto& r = requests_[i];
      if (r.active && r.for_rfu && r.rfu_id == master) return mode_from_index(i);
    }
  }
  return grant_.mode;
}

void PacketBus::arbitrate() {
  // Keep the current grant while its originating request is still active
  // (non-preemptive time-multiplexing, §3.6.3).
  if (grant_.kind != MasterKind::None) {
    bool still_active = false;
    for (std::size_t i = 0; i < kNumModes; ++i) {
      const auto& r = requests_[i];
      if (!r.active) continue;
      const Mode m = mode_from_index(i);
      if (!r.for_rfu && grant_.kind == MasterKind::Irc && grant_.mode == m) still_active = true;
      if (r.for_rfu &&
          ((grant_.kind == MasterKind::Rfu) ||
           (grant_.kind == MasterKind::Irc && grant_.mode == m))) {
        // During the grant-delay window the IRC of mode m holds the bus; once
        // delegated, the RFU (or its override slave) holds it.
        still_active = true;
      }
    }
    if (still_active) {
      // Grant Delay Logic: promote IRC-held grant to the requested RFU once
      // the RFU's trigger has been observed (Fig. 3.12).
      for (std::size_t i = 0; i < kNumModes; ++i) {
        const auto& r = requests_[i];
        const Mode m = mode_from_index(i);
        if (r.active && r.for_rfu && grant_.kind == MasterKind::Irc && grant_.mode == m &&
            triggers_.triggered_flag(r.rfu_id)) {
          triggers_.clear_triggered_flag(r.rfu_id);
          grant_ = Grant{MasterKind::Rfu, m, r.rfu_id};
        }
      }
      return;
    }
    grant_ = Grant{};
    override_stack_.clear();
  }

  // New arbitration: fixed priority, mode A highest (§3.6.4).
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const auto& r = requests_[i];
    if (!r.active) continue;
    const Mode m = mode_from_index(i);
    if (!r.for_rfu) {
      grant_ = Grant{MasterKind::Irc, m, 0xFF};
    } else if (triggers_.triggered_flag(r.rfu_id)) {
      triggers_.clear_triggered_flag(r.rfu_id);
      grant_ = Grant{MasterKind::Rfu, m, r.rfu_id};
    } else {
      // Request on behalf of a not-yet-triggered RFU: grant the IRC so it can
      // perform the trigger (delay semantics).
      grant_ = Grant{MasterKind::Irc, m, 0xFF};
    }
    break;
  }
}

Cycle PacketBus::quiescent_for() const {
  if (recorder_ != nullptr) return 0;
  if (trace_gate_ != nullptr && trace_gate_->enabled()) return 0;
  if (accessed_this_cycle_ || grant_.kind != MasterKind::None) return 0;
  for (const ModeRequest& r : requests_) {
    if (r.active) return 0;
  }
  return sim::Clockable::kIdleForever;
}

void PacketBus::skip_idle(Cycle n) {
  total_cycles_ += n;
  if (stats_ != nullptr) {
    if (busy_stat_ == nullptr) busy_stat_ = &stats_->busy("packet_bus");
    busy_stat_->sample_n(false, n);
  }
}

void PacketBus::tick() {
  // Account the cycle that just completed.
  ++total_cycles_;
  if (accessed_this_cycle_) ++busy_cycles_;
  if (stats_ != nullptr) {
    if (busy_stat_ == nullptr) busy_stat_ = &stats_->busy("packet_bus");
    busy_stat_->sample(accessed_this_cycle_);
  }
  accessed_this_cycle_ = false;

  arbitrate();

  // Hold/wait accounting for the cycle now starting (post-arbitration, so
  // the very first granted cycle does not count as contention).
  if (grant_.kind != MasterKind::None) {
    ++mode_hold_cycles_[index(grant_origin_mode())];
  }
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const auto& r = requests_[i];
    if (r.active) {
      const Mode m = mode_from_index(i);
      const bool owns = (grant_.kind != MasterKind::None) && (grant_origin_mode() == m);
      if (!owns) ++mode_wait_cycles_[i];
    }
  }
}

}  // namespace drmp::hw
