// Dual-port packet memory (thesis §3.6.3, memory option 3 of Table 3.5):
// port A serves the packet bus (RFUs / IRC), port B gives the CPU direct
// access so "one mode may be accessing packet-data in the RHCP ... while
// another mode may be reading header data and carrying out control operations
// through the CPU".
#pragma once

#include <vector>

#include "common/types.hpp"
#include "hw/memory_map.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace drmp::hw {

class PacketMemory {
 public:
  PacketMemory() : words_(kMemWords, 0) {}

  // ---- Port A (packet bus) ----
  Word read(u32 addr) const { return words_.at(addr); }
  void write(u32 addr, Word data) { words_.at(addr) = data; }

  // ---- Port B (CPU direct access) ----
  Word cpu_read(u32 addr) const { return words_.at(addr); }
  void cpu_write(u32 addr, Word data) {
    words_.at(addr) = data;
    if (!watches_.empty()) notify_watchers(addr);
  }

  /// Address watch: wakes `c` whenever port B writes `addr`. Used for the
  /// doorbell registers, where the CPU's device driver rings the IRC without
  /// any signal the IRC could otherwise sleep against. The set is tiny (one
  /// doorbell per mode), so the hot-path cost is one emptiness branch.
  void watch_write(u32 addr, sim::Clockable* c) { watches_.push_back({addr, c}); }

  // ---- Page helpers (byte-level view used by software models & tests) ----
  void write_page_bytes(Mode m, Page p, std::span<const u8> bytes);
  Bytes read_page_bytes(Mode m, Page p) const;
  u32 page_byte_len(Mode m, Page p) const { return words_.at(page_base(m, p) + kPageLenOffset); }
  void set_page_byte_len(Mode m, Page p, u32 len) {
    words_.at(page_base(m, p) + kPageLenOffset) = len;
  }

  std::size_t size_words() const noexcept { return words_.size(); }

  /// Checkpoint support (sim/checkpoint.hpp); watches are wiring, not state.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(words_);
  }

 private:
  struct Watch {
    u32 addr;
    sim::Clockable* component;
  };
  void notify_watchers(u32 addr) const {
    for (const Watch& w : watches_) {
      if (w.addr == addr) w.component->wake_self();
    }
  }

  std::vector<Word> words_;
  std::vector<Watch> watches_;
};

}  // namespace drmp::hw
