#include "mac/traffic_gen.hpp"

#include <algorithm>

namespace drmp::mac {

const char* to_string(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::kCsmaBursts: return "csma-bursts";
    case TrafficPattern::kSlottedStream: return "slotted-stream";
    case TrafficPattern::kFramedUplink: return "framed-uplink";
  }
  return "?";
}

TrafficSpec TrafficSpec::wifi_csma_bursts(u32 count) {
  TrafficSpec s;
  s.enabled = true;
  s.pattern = TrafficPattern::kCsmaBursts;
  s.msdu_count = count;
  s.msdu_min_bytes = 256;
  s.msdu_max_bytes = 1200;
  s.start_us = 100.0;
  s.interval_us = 1500.0;
  s.burst_len = 2;
  s.max_inflight = 2;
  return s;
}

TrafficSpec TrafficSpec::uwb_slotted_stream(u32 count) {
  TrafficSpec s;
  s.enabled = true;
  s.pattern = TrafficPattern::kSlottedStream;
  s.msdu_count = count;
  s.msdu_min_bytes = 512;
  s.msdu_max_bytes = 768;
  s.start_us = 200.0;
  s.interval_us = 2000.0;  // One MSDU per CTA slot period.
  s.burst_len = 1;
  s.max_inflight = 1;  // Isochronous: next sample waits for the slot.
  return s;
}

TrafficSpec TrafficSpec::wimax_framed_uplink(u32 count) {
  TrafficSpec s;
  s.enabled = true;
  s.pattern = TrafficPattern::kFramedUplink;
  s.msdu_count = count;
  s.msdu_min_bytes = 256;
  s.msdu_max_bytes = 640;
  s.start_us = 150.0;
  s.interval_us = 2000.0;  // One MSDU per TDD frame.
  s.burst_len = 1;
  s.max_inflight = 2;
  return s;
}

TrafficGen::TrafficGen(TrafficSpec spec, const sim::TimeBase& tb, u64 seed)
    : spec_(spec),
      next_event_(tb.us_to_cycles(spec.start_us)),
      interval_cycles_(std::max<Cycle>(1, tb.us_to_cycles(spec.interval_us))),
      rng_state_(seed) {}

u64 TrafficGen::next_rand() noexcept { return splitmix64(rng_state_); }

Bytes TrafficGen::make_payload() {
  const u32 lo = std::min(spec_.msdu_min_bytes, spec_.msdu_max_bytes);
  const u32 hi = std::max(spec_.msdu_min_bytes, spec_.msdu_max_bytes);
  const u32 size = lo + static_cast<u32>(next_rand() % (hi - lo + 1));
  Bytes b(size);
  u64 fill = 0;  // Drawn on the first iteration.
  for (u32 i = 0; i < size; ++i) {
    if (i % 8 == 0) fill = next_rand();
    b[i] = static_cast<u8>(fill >> (8 * (i % 8)));
  }
  return b;
}

void TrafficGen::tick() {
  const Cycle t = now_++;
  if (!spec_.enabled || gated_ || exhausted() || t < next_event_) return;
  next_event_ = t + interval_cycles_;
  const u32 want = spec_.pattern == TrafficPattern::kCsmaBursts ? spec_.burst_len : 1;
  const u32 inflight = offered_ - completed_;
  const u32 room = spec_.max_inflight > inflight ? spec_.max_inflight - inflight : 0;
  u32 n = std::min({want, spec_.msdu_count - offered_, room});
  while (n-- > 0) {
    Bytes payload = make_payload();
    offered_bytes_ += payload.size();
    ++offered_;
    send(std::move(payload));
  }
}

}  // namespace drmp::mac
