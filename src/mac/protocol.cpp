#include "mac/protocol.hpp"

namespace drmp::mac {

ProtocolTiming timing_for(Protocol p) {
  switch (p) {
    case Protocol::WiFi:
      // IEEE 802.11b DSSS PHY timing.
      return ProtocolTiming{
          .sifs_us = 10.0,
          .difs_us = 50.0,
          .slot_us = 20.0,
          .cw_min = 31,
          .cw_max = 1023,
          .line_rate_bps = 11e6,
          .frame_us = 0.0,
          .ack_timeout_us = 300.0,
          .max_retries = 7,
      };
    case Protocol::WiMax:
      // IEEE 802.16-2004, 5 ms TDD frame; contention only for BW requests.
      return ProtocolTiming{
          .sifs_us = 0.0,
          .difs_us = 0.0,
          .slot_us = 0.0,
          .cw_min = 0,
          .cw_max = 0,
          .line_rate_bps = 20e6,
          .frame_us = 5000.0,
          .ack_timeout_us = 10000.0,  // ARQ feedback expected within ~2 frames.
          .max_retries = 4,
      };
    case Protocol::Uwb:
      // IEEE 802.15.3-2003 base rate 22 Mbps; SIFS 10 us, superframe ~65 ms
      // max (we default to a short 8 ms superframe for simulation economy).
      return ProtocolTiming{
          .sifs_us = 10.0,
          .difs_us = 10.0,  // BIFS ~ SIFS in the CAP.
          .slot_us = 8.0,
          .cw_min = 7,
          .cw_max = 63,
          .line_rate_bps = 22e6,
          .frame_us = 8000.0,
          .ack_timeout_us = 300.0,
          .max_retries = 3,
      };
  }
  return {};
}

}  // namespace drmp::mac
