// IEEE 802.11 (WiFi) frame codec — the demonstrative subset the thesis models
// (Ch. 5 simulates WiFi transmission and reception).
//
// Layout of a data MPDU as the DRMP processes it:
//   [24 B MAC header][2 B HCS][body][4 B FCS]
//
// NOTE on the HCS: baseline 802.11 carries its 16-bit CRC in the PLCP (PHY)
// header, but the thesis treats the Header Error Check as a MAC function
// shared between WiFi and UWB ("for WiFi and UWB, it is the exact same 16-bit
// CRC", §2.3.2.1 #1), so the codec follows the thesis and places a
// CRC-16-CCITT HCS after the MAC header. The FCS is the standard CRC-32 over
// everything before it.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "mac/frame.hpp"
#include "mac/protocol.hpp"

namespace drmp::mac::wifi {

inline constexpr std::size_t kHdrBytes = 24;
inline constexpr std::size_t kHcsBytes = 2;
inline constexpr std::size_t kFcsBytes = 4;
inline constexpr std::size_t kAckBytes = 14;  // fc(2) dur(2) ra(6) fcs(4).
inline constexpr std::size_t kCtsBytes = 14;  // Same layout as ACK.
inline constexpr std::size_t kRtsBytes = 20;  // fc(2) dur(2) ra(6) ta(6) fcs(4).
inline constexpr std::size_t kCfEndBytes = 20;  // fc(2) dur(2) ra(6) bssid(6) fcs(4).
inline constexpr std::size_t kMaxMpduBytes = 2346;

enum class FrameType : u8 { Management = 0, Control = 1, Data = 2 };

enum class Subtype : u8 {
  Data = 0,
  // PCF data subtypes (§2.3.2.1 #5 polling, #11 piggybacked ACKs): the point
  // coordinator's poll can carry the CF-Ack for the previous uplink data.
  Null = 4,          // data subtype 4: no data (polled station, empty queue)
  CfPoll = 6,        // data subtype 6: CF-Poll (no data)
  CfAckCfPoll = 7,   // data subtype 7: CF-Ack + CF-Poll
  Beacon = 8,        // management subtype 8
  Rts = 11,          // control subtype 11
  Cts = 12,          // control subtype 12
  Ack = 13,          // control subtype 13
  CfEnd = 14,        // control subtype 14: end of contention-free period
  CfEndAck = 15,     // control subtype 15: CF-End + CF-Ack
};

struct FrameControl {
  FrameType type = FrameType::Data;
  Subtype subtype = Subtype::Data;
  bool to_ds = false;
  bool from_ds = false;
  bool more_frag = false;
  bool retry = false;
  bool pwr_mgmt = false;
  bool more_data = false;
  bool protected_frame = false;

  u16 encode() const;
  static FrameControl decode(u16 v);
  bool operator==(const FrameControl&) const = default;
};

struct DataHeader {
  FrameControl fc;
  u16 duration_us = 0;
  MacAddr addr1;  ///< Receiver.
  MacAddr addr2;  ///< Transmitter.
  MacAddr addr3;  ///< BSSID / destination.
  u16 seq_num = 0;  ///< 12-bit sequence number.
  u8 frag_num = 0;  ///< 4-bit fragment number.

  Bytes encode() const;  ///< 24 bytes, no HCS.
  static DataHeader decode(std::span<const u8> hdr24);
  bool operator==(const DataHeader&) const = default;
};

/// Builds a complete data MPDU: header + HCS + body + FCS.
Bytes build_data_mpdu(const DataHeader& hdr, std::span<const u8> body);

/// Builds an ACK control frame addressed to `ra`.
Bytes build_ack(const MacAddr& ra, u16 duration_us = 0);

/// Builds an RTS control frame: the optional handshake unique to WiFi among
/// the thesis's three protocols ("A Request-to-send/Clear-to-send handshake
/// option is only present in WiFi", §2.3.2.2 #10). `ta` is the transmitter
/// (this station); `duration_us` reserves the medium (NAV).
Bytes build_rts(const MacAddr& ra, const MacAddr& ta, u16 duration_us);

/// Builds a CTS control frame addressed back to the RTS transmitter.
Bytes build_cts(const MacAddr& ra, u16 duration_us = 0);

/// 802.11 duration arithmetic for a CTS responder: the RTS reservation
/// minus the SIFS gap and the CTS's own air time (floored at 0). This is
/// the field a hidden station's NAV arms from — every responder (device
/// Event Handler, scripted AP) must announce the same remainder.
u16 cts_duration_from_rts(u16 rts_duration_us, const ProtocolTiming& t);

/// Air time of one 14-byte ACK/CTS control frame at the protocol line rate.
/// The single source for every place that must agree on it by construction:
/// the chained Duration fields of a fragment burst, the EIFS figure
/// (SIFS + this + DIFS) and the CTS/ACK duration remainders.
inline double ack_air_us(const ProtocolTiming& t) {
  return static_cast<double>(kAckBytes) * 8.0 / t.line_rate_bps * 1e6;
}

/// 802.11 duration arithmetic for the ACK of a fragment with More Fragments
/// set (§9.1.4): the received frame's Duration covered SIFS + this ACK +
/// the rest of the burst; the ACK re-announces the remainder (minus one SIFS
/// and its own air time) so the NAV chains through the SIFS-spaced burst at
/// stations that hear only the receiver. Same arithmetic as the CTS
/// remainder — an ACK and a CTS share the 14-byte layout.
inline u16 ack_duration_from_data(u16 data_duration_us, const ProtocolTiming& t) {
  return cts_duration_from_rts(data_duration_us, t);
}

/// Builds a CF-End (or CF-End+CF-Ack) control frame closing a contention-
/// free period (PCF, §2.3.2.1 #5/#8). `ra` is broadcast in real 802.11.
Bytes build_cf_end(const MacAddr& ra, const MacAddr& bssid, bool with_ack);

/// Beacon body (§2.3.2.1 #13 "WiFi and UWB ... use beacon frames to
/// synchronize themselves" and #15 passive scanning): TSF timestamp plus the
/// beacon interval — the subset the scanning/sync machinery needs.
struct BeaconBody {
  u64 timestamp_us = 0;
  u16 interval_us = 0;

  Bytes encode() const;
  static std::optional<BeaconBody> decode(std::span<const u8> body);
  bool operator==(const BeaconBody&) const = default;
};

/// Builds a broadcast beacon management frame from `bssid`.
Bytes build_beacon(const MacAddr& bssid, u16 seq, const BeaconBody& body);

/// Parsed control frame (ACK / CTS / RTS).
struct ParsedCtl {
  FrameControl fc;
  u16 duration_us = 0;
  MacAddr ra;  ///< Receiver address.
  MacAddr ta;  ///< Transmitter address (RTS only; zero otherwise).
  bool fcs_ok = false;
};

/// Parses an ACK/CTS/RTS control frame; nullopt if the size/type does not
/// match any control layout.
std::optional<ParsedCtl> parse_control(std::span<const u8> frame);

struct ParsedMpdu {
  DataHeader hdr;
  Bytes body;
  bool hcs_ok = false;
  bool fcs_ok = false;
};

/// Parses and validates a data MPDU; returns nullopt if structurally invalid
/// (too short). CRC failures are reported via the flags.
std::optional<ParsedMpdu> parse_data_mpdu(std::span<const u8> mpdu);

/// True if `frame` is an ACK control frame with a valid FCS.
bool is_ack(std::span<const u8> frame, const MacAddr& expected_ra);

}  // namespace drmp::mac::wifi
