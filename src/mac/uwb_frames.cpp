#include "mac/uwb_frames.hpp"

#include "crypto/crc.hpp"

namespace drmp::mac::uwb {

Bytes Header::encode() const {
  Bytes out;
  out.reserve(kHdrBytes);
  ByteWriter w(out);
  u16 fc = 0;
  fc |= static_cast<u16>(static_cast<u8>(type) & 0x7) << 3;
  if (sec) fc |= 1u << 6;
  fc |= static_cast<u16>(static_cast<u8>(ack_policy) & 0x3) << 7;
  if (retry) fc |= 1u << 9;
  if (more_data) fc |= 1u << 10;
  w.u16le(fc);
  w.u16le(pnid);
  w.u8_(dest_id);
  w.u8_(src_id);
  // Fragmentation control: msdu(9) | frag(7) | last_frag(7), one padding bit.
  const u32 fctl = static_cast<u32>(msdu_num & 0x1FF) |
                   (static_cast<u32>(frag_num & 0x7F) << 9) |
                   (static_cast<u32>(last_frag_num & 0x7F) << 16);
  w.u8_(static_cast<u8>(fctl & 0xFF));
  w.u8_(static_cast<u8>((fctl >> 8) & 0xFF));
  w.u8_(static_cast<u8>((fctl >> 16) & 0xFF));
  w.u8_(stream_index);
  return out;
}

Header Header::decode(std::span<const u8> hdr10) {
  ByteReader r(hdr10);
  Header h;
  const u16 fc = r.u16le();
  h.type = static_cast<FrameType>((fc >> 3) & 0x7);
  h.sec = (fc >> 6) & 1;
  h.ack_policy = static_cast<AckPolicy>((fc >> 7) & 0x3);
  h.retry = (fc >> 9) & 1;
  h.more_data = (fc >> 10) & 1;
  h.pnid = r.u16le();
  h.dest_id = r.u8_();
  h.src_id = r.u8_();
  const u32 fctl = static_cast<u32>(r.u8_()) | (static_cast<u32>(r.u8_()) << 8) |
                   (static_cast<u32>(r.u8_()) << 16);
  h.msdu_num = static_cast<u16>(fctl & 0x1FF);
  h.frag_num = static_cast<u8>((fctl >> 9) & 0x7F);
  h.last_frag_num = static_cast<u8>((fctl >> 16) & 0x7F);
  h.stream_index = r.u8_();
  return h;
}

Bytes build_data_frame(const Header& hdr, std::span<const u8> body) {
  Bytes out = hdr.encode();
  const u16 hcs = crypto::Crc16Ccitt::compute(out);
  put_le16(out, hcs);
  out.insert(out.end(), body.begin(), body.end());
  const u32 fcs = crypto::Crc32::compute(out);
  put_le32(out, fcs);
  return out;
}

Bytes build_imm_ack(u16 pnid, u8 dest_id, u8 src_id) {
  Header h;
  h.type = FrameType::ImmAck;
  h.pnid = pnid;
  h.dest_id = dest_id;
  h.src_id = src_id;
  Bytes out = h.encode();
  const u16 hcs = crypto::Crc16Ccitt::compute(out);
  put_le16(out, hcs);
  return out;
}

std::optional<ParsedFrame> parse_frame(std::span<const u8> frame) {
  if (frame.size() < kHdrBytes + kHcsBytes) return std::nullopt;
  ParsedFrame p;
  p.hdr = Header::decode(frame.subspan(0, kHdrBytes));
  const u16 hcs = get_le16(frame, kHdrBytes);
  p.hcs_ok = (hcs == crypto::Crc16Ccitt::compute(frame.subspan(0, kHdrBytes)));
  if (frame.size() == kHdrBytes + kHcsBytes) {
    p.fcs_ok = true;  // Header-only frame (Imm-ACK).
    return p;
  }
  if (frame.size() < kHdrBytes + kHcsBytes + kFcsBytes) return std::nullopt;
  const std::size_t body_len = frame.size() - kHdrBytes - kHcsBytes - kFcsBytes;
  const auto body = frame.subspan(kHdrBytes + kHcsBytes, body_len);
  p.body.assign(body.begin(), body.end());
  const u32 fcs = get_le32(frame, frame.size() - kFcsBytes);
  p.fcs_ok = (fcs == crypto::Crc32::compute(frame.subspan(0, frame.size() - kFcsBytes)));
  return p;
}

}  // namespace drmp::mac::uwb
