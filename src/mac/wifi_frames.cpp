#include "mac/wifi_frames.hpp"

#include "crypto/crc.hpp"

namespace drmp::mac::wifi {

u16 FrameControl::encode() const {
  u16 v = 0;
  v |= static_cast<u16>(static_cast<u8>(type) & 0x3) << 2;
  v |= static_cast<u16>(static_cast<u8>(subtype) & 0xF) << 4;
  if (to_ds) v |= 1u << 8;
  if (from_ds) v |= 1u << 9;
  if (more_frag) v |= 1u << 10;
  if (retry) v |= 1u << 11;
  if (pwr_mgmt) v |= 1u << 12;
  if (more_data) v |= 1u << 13;
  if (protected_frame) v |= 1u << 14;
  return v;
}

FrameControl FrameControl::decode(u16 v) {
  FrameControl fc;
  fc.type = static_cast<FrameType>((v >> 2) & 0x3);
  fc.subtype = static_cast<Subtype>((v >> 4) & 0xF);
  fc.to_ds = (v >> 8) & 1;
  fc.from_ds = (v >> 9) & 1;
  fc.more_frag = (v >> 10) & 1;
  fc.retry = (v >> 11) & 1;
  fc.pwr_mgmt = (v >> 12) & 1;
  fc.more_data = (v >> 13) & 1;
  fc.protected_frame = (v >> 14) & 1;
  return fc;
}

Bytes DataHeader::encode() const {
  Bytes out;
  out.reserve(kHdrBytes);
  ByteWriter w(out);
  w.u16le(fc.encode());
  w.u16le(duration_us);
  w.bytes(addr1.b);
  w.bytes(addr2.b);
  w.bytes(addr3.b);
  w.u16le(static_cast<u16>((seq_num << 4) | (frag_num & 0xF)));
  return out;
}

DataHeader DataHeader::decode(std::span<const u8> hdr24) {
  ByteReader r(hdr24);
  DataHeader h;
  h.fc = FrameControl::decode(r.u16le());
  h.duration_us = r.u16le();
  auto a1 = r.bytes(6), a2 = r.bytes(6), a3 = r.bytes(6);
  std::copy(a1.begin(), a1.end(), h.addr1.b.begin());
  std::copy(a2.begin(), a2.end(), h.addr2.b.begin());
  std::copy(a3.begin(), a3.end(), h.addr3.b.begin());
  const u16 sc = r.u16le();
  h.seq_num = static_cast<u16>(sc >> 4);
  h.frag_num = static_cast<u8>(sc & 0xF);
  return h;
}

Bytes build_data_mpdu(const DataHeader& hdr, std::span<const u8> body) {
  Bytes out = hdr.encode();
  const u16 hcs = crypto::Crc16Ccitt::compute(out);
  put_le16(out, hcs);
  out.insert(out.end(), body.begin(), body.end());
  const u32 fcs = crypto::Crc32::compute(out);
  put_le32(out, fcs);
  return out;
}

Bytes build_ack(const MacAddr& ra, u16 duration_us) {
  Bytes out;
  ByteWriter w(out);
  FrameControl fc;
  fc.type = FrameType::Control;
  fc.subtype = Subtype::Ack;
  w.u16le(fc.encode());
  w.u16le(duration_us);
  w.bytes(ra.b);
  const u32 fcs = crypto::Crc32::compute(out);
  put_le32(out, fcs);
  return out;
}

std::optional<ParsedMpdu> parse_data_mpdu(std::span<const u8> mpdu) {
  if (mpdu.size() < kHdrBytes + kHcsBytes + kFcsBytes) return std::nullopt;
  ParsedMpdu p;
  p.hdr = DataHeader::decode(mpdu.subspan(0, kHdrBytes));
  const u16 hcs = get_le16(mpdu, kHdrBytes);
  p.hcs_ok = (hcs == crypto::Crc16Ccitt::compute(mpdu.subspan(0, kHdrBytes)));
  const std::size_t body_len = mpdu.size() - kHdrBytes - kHcsBytes - kFcsBytes;
  const auto body = mpdu.subspan(kHdrBytes + kHcsBytes, body_len);
  p.body.assign(body.begin(), body.end());
  const u32 fcs = get_le32(mpdu, mpdu.size() - kFcsBytes);
  p.fcs_ok = (fcs == crypto::Crc32::compute(mpdu.subspan(0, mpdu.size() - kFcsBytes)));
  return p;
}

Bytes build_rts(const MacAddr& ra, const MacAddr& ta, u16 duration_us) {
  Bytes out;
  ByteWriter w(out);
  FrameControl fc;
  fc.type = FrameType::Control;
  fc.subtype = Subtype::Rts;
  w.u16le(fc.encode());
  w.u16le(duration_us);
  w.bytes(ra.b);
  w.bytes(ta.b);
  const u32 fcs = crypto::Crc32::compute(out);
  put_le32(out, fcs);
  return out;
}

Bytes build_cts(const MacAddr& ra, u16 duration_us) {
  Bytes out;
  ByteWriter w(out);
  FrameControl fc;
  fc.type = FrameType::Control;
  fc.subtype = Subtype::Cts;
  w.u16le(fc.encode());
  w.u16le(duration_us);
  w.bytes(ra.b);
  const u32 fcs = crypto::Crc32::compute(out);
  put_le32(out, fcs);
  return out;
}

u16 cts_duration_from_rts(u16 rts_duration_us, const ProtocolTiming& t) {
  // A CTS shares the 14-byte ACK layout; ack_air_us is the single source
  // for the control-frame air time (see its declaration).
  const double spent_us = t.sifs_us + ack_air_us(t);
  return rts_duration_us > spent_us
             ? static_cast<u16>(static_cast<double>(rts_duration_us) - spent_us)
             : 0;
}

Bytes build_cf_end(const MacAddr& ra, const MacAddr& bssid, bool with_ack) {
  Bytes out;
  ByteWriter w(out);
  FrameControl fc;
  fc.type = FrameType::Control;
  fc.subtype = with_ack ? Subtype::CfEndAck : Subtype::CfEnd;
  w.u16le(fc.encode());
  w.u16le(0);  // Duration 0: the CFP is over, NAVs reset.
  w.bytes(ra.b);
  w.bytes(bssid.b);
  const u32 fcs = crypto::Crc32::compute(out);
  put_le32(out, fcs);
  return out;
}

Bytes BeaconBody::encode() const {
  Bytes out;
  ByteWriter w(out);
  w.u32le(static_cast<u32>(timestamp_us));
  w.u32le(static_cast<u32>(timestamp_us >> 32));
  w.u16le(interval_us);
  return out;
}

std::optional<BeaconBody> BeaconBody::decode(std::span<const u8> body) {
  if (body.size() < 10) return std::nullopt;
  BeaconBody b;
  b.timestamp_us = static_cast<u64>(get_le32(body, 0)) |
                   (static_cast<u64>(get_le32(body, 4)) << 32);
  b.interval_us = get_le16(body, 8);
  return b;
}

Bytes build_beacon(const MacAddr& bssid, u16 seq, const BeaconBody& body) {
  DataHeader h;
  h.fc.type = FrameType::Management;
  h.fc.subtype = Subtype::Beacon;
  h.addr1 = MacAddr::from_u64(0xFFFFFFFFFFFFull);  // Broadcast.
  h.addr2 = bssid;
  h.addr3 = bssid;
  h.seq_num = seq;
  return build_data_mpdu(h, body.encode());
}

std::optional<ParsedCtl> parse_control(std::span<const u8> frame) {
  if (frame.size() != kAckBytes && frame.size() != kRtsBytes) return std::nullopt;
  ParsedCtl p;
  p.fc = FrameControl::decode(get_le16(frame, 0));
  if (p.fc.type != FrameType::Control) return std::nullopt;
  const bool short_form = frame.size() == kAckBytes;
  if (short_form && p.fc.subtype != Subtype::Ack && p.fc.subtype != Subtype::Cts) {
    return std::nullopt;
  }
  if (!short_form && p.fc.subtype != Subtype::Rts && p.fc.subtype != Subtype::CfEnd &&
      p.fc.subtype != Subtype::CfEndAck) {
    return std::nullopt;
  }
  p.duration_us = get_le16(frame, 2);
  std::copy(frame.begin() + 4, frame.begin() + 10, p.ra.b.begin());
  if (!short_form) {
    std::copy(frame.begin() + 10, frame.begin() + 16, p.ta.b.begin());
  }
  const u32 fcs = get_le32(frame, frame.size() - kFcsBytes);
  p.fcs_ok = (fcs == crypto::Crc32::compute(frame.subspan(0, frame.size() - kFcsBytes)));
  return p;
}

bool is_ack(std::span<const u8> frame, const MacAddr& expected_ra) {
  if (frame.size() != kAckBytes) return false;
  const auto fc = FrameControl::decode(get_le16(frame, 0));
  if (fc.type != FrameType::Control || fc.subtype != Subtype::Ack) return false;
  MacAddr ra;
  std::copy(frame.begin() + 4, frame.begin() + 10, ra.b.begin());
  if (!(ra == expected_ra)) return false;
  const u32 fcs = get_le32(frame, frame.size() - kFcsBytes);
  return fcs == crypto::Crc32::compute(frame.subspan(0, frame.size() - kFcsBytes));
}

}  // namespace drmp::mac::wifi
