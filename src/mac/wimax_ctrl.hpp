// WiMAX (IEEE 802.16) protocol control — the WiMAX-unique machinery the
// thesis enumerates in §2.3.2.2: CID classification (#5/#9), packing of
// multiple MSDUs into one MPDU (#1), the ARQ state machine (#3), optional
// CRC, and TDD frame scheduling (#4/#11). Payloads are DES-protected per SDU
// (subheaders stay in the clear).
#pragma once

#include "mac/ctrl_common.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp::ctrl {

class WimaxCtrl final : public ProtocolCtrl {
 public:
  explicit WimaxCtrl(CtrlEnv env) : ProtocolCtrl(std::move(env)) {}

  u32 on_isr(const cpu::IsrContext& ctx) override;

  enum TxState : u32 {
    kIdle = 0,
    kClassifying,
    kTagging,        ///< ARQ window probe in flight (retried while full).
    kPreparing,      ///< Encrypt (+ pack append) in flight, tag granted.
    kSending,        ///< Assemble/HCS/TDMA/Tx in flight.
  };

  /// MSDUs at or under this size are packed two-per-MPDU when queued
  /// back-to-back (packing showcase).
  static constexpr std::size_t kPackLimit = 256;

  u32 arq_blocks_acked = 0;

  void save_state(sim::snap::Writer& w) override {
    ProtocolCtrl::save_state(w);
    persist(w);
  }
  void load_state(sim::snap::Reader& r) override {
    ProtocolCtrl::load_state(r);
    persist(r);
  }

 private:
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(arq_blocks_acked);
    ar.io(tx_tag_);
    ar.io(rx_tag_);
    ar.io(arq_tag_);
    ar.io(rx_phase_);
    ar.io(rx_packed_);
    ar.io(rx_sdu_index_);
    ar.io(rx_cid_);
    ar.io(tx_cid_);
    ar.io(packing_);
    ar.io(packed_count_);
    ar.io(pending_payload_bytes_);
  }

  u32 start_next_msdu();
  u32 handle_req_done(u32 tag);
  u32 handle_rx_ind();
  u32 send_mpdu();
  Bytes build_gmh_template() const;

  u32 tx_tag_ = 0;
  u32 rx_tag_ = 0;
  u32 arq_tag_ = 0;
  enum class RxPhase : u8 { Idle, Extract, Single, Sdu } rx_phase_ = RxPhase::Idle;
  bool rx_packed_ = false;
  u32 rx_sdu_index_ = 0;
  u16 rx_cid_ = 0;

  u16 tx_cid_ = 0;
  bool packing_ = false;
  u32 packed_count_ = 0;
  std::size_t pending_payload_bytes_ = 0;
};

}  // namespace drmp::ctrl
