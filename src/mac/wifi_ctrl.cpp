#include "mac/wifi_ctrl.hpp"

#include <algorithm>

#include "irc/irc.hpp"

namespace drmp::ctrl {

using api::Command;
using hw::CtrlWord;
using hw::Page;
using irc::IrqEvent;

namespace {
/// Instruction-count estimates for handler bodies (the short, per-packet
/// control operations of §4.1.1).
constexpr u32 kSmallBody = 30;
}  // namespace

u32 WifiCtrl::send_fragment_pcf(u32 frag_idx, bool retry) {
  // Polled transmission: identical header/datapath, contention-free access.
  auto& ps = env_.api->ps(env_.mode);
  write_hdr_template(build_fragment_header(frag_idx, retry));
  u32 cost = 0;
  tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWifiTxFragmentPcf,
                                           {frag_idx, ps.fragmentation_threshold}, &cost);
  ps.my_state = kSendingPcf;
  ++polls_answered_with_data;
  return kSmallBody + 40 /* header build */ + cost;
}

u32 WifiCtrl::send_null_pcf() {
  // Polled with nothing to send: answer with a Null data frame so the point
  // coordinator can move on. All header — the CPU may build it.
  mac::wifi::DataHeader h;
  h.fc.type = mac::wifi::FrameType::Data;
  h.fc.subtype = mac::wifi::Subtype::Null;
  h.addr1 = mac::MacAddr::from_u64(env_.ident.peer_addr);
  h.addr2 = mac::MacAddr::from_u64(env_.ident.self_addr);
  h.addr3 = mac::MacAddr::from_u64(env_.ident.peer_addr);
  Bytes image = h.encode();
  image.resize(image.size() + mac::wifi::kHcsBytes, 0);  // HCS slot; patched
                                                         // by HcsAppend16.
  env_.mem->write_page_bytes(env_.mode, Page::Scratch, image);
  u32 cost = 0;
  env_.api->Request_RHCP_Service(env_.mode, Command::kWifiSendNull, {}, &cost);
  ++polls_answered_with_null;
  return kSmallBody + 20 /* header build */ + cost;
}

u32 WifiCtrl::consume_cf_ack() {
  // Books the ack only — the caller decides the single follow-on request
  // (the interface registers hold one outstanding request per mode, so an
  // ISR must never issue two).
  auto& ps = env_.api->ps(env_.mode);
  ++cf_acks_received;
  ps.retry_count = 0;
  ++ps.fragments_counter;
  if (ps.fragments_counter >= ps.fragments_total) {
    ++ps.tx_pdu_count;
    ++tx_ok;
    ps.my_state = kIdle;
    if (on_tx_complete) on_tx_complete(true, ps.msdu_retries);
    return 0;
  }
  ps.my_state = kAwaitPoll;  // Next fragment goes out on the next poll.
  return 0;
}

u32 WifiCtrl::handle_cf_poll(bool piggyback_ack) {
  auto& ps = env_.api->ps(env_.mode);
  if (ps.my_state == kWaitCfAck) {
    if (piggyback_ack) {
      consume_cf_ack();
      // The same poll also invites the next transmission: the next prepared
      // fragment, or — with a fresh MSDU queued — its prepare pass (the AP
      // tolerates silence for this poll), or a Null frame.
      if (ps.my_state == kAwaitPoll) {
        return kSmallBody + send_fragment_pcf(ps.fragments_counter, false);
      }
      if (!tx_queue_.empty()) return kSmallBody + start_next_msdu();
      return kSmallBody + send_null_pcf();
    }
    // Poll without CF-Ack: the previous fragment was lost — retransmit.
    ++ps.retry_count;
    ++ps.msdu_retries;
    const auto t = mac::timing_for(mac::Protocol::WiFi);
    if (ps.retry_count > t.max_retries) {
      ++tx_failed;
      ps.my_state = kIdle;
      if (on_tx_complete) on_tx_complete(false, ps.msdu_retries);
      if (!tx_queue_.empty()) return kSmallBody + start_next_msdu();
      return kSmallBody + send_null_pcf();
    }
    return send_fragment_pcf(ps.fragments_counter, true);
  }
  if (ps.my_state == kAwaitPoll) {
    return send_fragment_pcf(ps.fragments_counter, false);
  }
  if (ps.my_state == kIdle && env_.ident.pcf_poll_mode) {
    if (!tx_queue_.empty()) return kSmallBody + start_next_msdu();
    return send_null_pcf();
  }
  return kSmallBody;  // Mid-prepare or mid-DCF exchange: no CFP response.
}

u32 WifiCtrl::handle_cfp_end(bool piggyback_ack) {
  auto& ps = env_.api->ps(env_.mode);
  if (ps.my_state == kWaitCfAck) {
    if (piggyback_ack) {
      consume_cf_ack();
      // Prepare the next queued MSDU for the following CFP.
      if (ps.my_state == kIdle && !tx_queue_.empty()) {
        return kSmallBody + start_next_msdu();
      }
      return kSmallBody;
    }
    // CFP closed without the ack: retry when the next CFP polls us.
    ++ps.retry_count;
    ++ps.msdu_retries;
    ps.my_state = kAwaitPoll;
  }
  return kSmallBody;
}

u16 WifiCtrl::fragment_duration_us(u32 frag_idx) const {
  const auto& ps = env_.api->ps(env_.mode);
  if (!env_.ident.frag_burst_enabled) {
    // Legacy rough NAV — ACK time + SIFS headroom. Frozen: flag-off digests
    // are pinned to it.
    return 150;
  }
  const auto t = mac::timing_for(mac::Protocol::WiFi);
  const double ack_air_us = mac::wifi::ack_air_us(t);
  if (frag_idx + 1 >= ps.fragments_total) {
    // Final fragment: the reservation covers just SIFS + its ACK.
    return static_cast<u16>(t.sifs_us + ack_air_us + 1.0);
  }
  // More fragments coming (802.11 §9.1.4): chain the NAV through the next
  // fragment and its ACK — SIFS+ACK, SIFS+next fragment, SIFS+ACK. The
  // modelled receive chain (drain + parse + ISR + frag/asm/HCS) sits
  // between the ACK and the next fragment where the real MAC has a bare
  // SIFS, so the announced reservation adds that processing slack, exactly
  // like the RTS duration does — under-reserving would hand a bystander
  // the gap mid-burst, which is the failure this field exists to prevent.
  constexpr double kProcessingSlackUs = 100.0;
  const u32 next_off = (frag_idx + 1) * ps.fragmentation_threshold;
  const u32 next_bytes =
      std::min(ps.fragmentation_threshold,
               ps.psdu_size > next_off ? ps.psdu_size - next_off : ps.fragmentation_threshold);
  const double next_air_us =
      (static_cast<double>(next_bytes) + 30.0) * 8.0 / t.line_rate_bps * 1e6;
  const double dur = 3.0 * t.sifs_us + 2.0 * ack_air_us + next_air_us + kProcessingSlackUs;
  return static_cast<u16>(std::min(dur, 65535.0));
}

Bytes WifiCtrl::build_fragment_header(u32 frag_idx, bool retry) const {
  auto& ps = env_.api->ps(env_.mode);
  mac::wifi::DataHeader h;
  h.fc.type = mac::wifi::FrameType::Data;
  h.fc.subtype = mac::wifi::Subtype::Data;
  h.fc.more_frag = (frag_idx + 1 < ps.fragments_total);
  h.fc.retry = retry;
  h.fc.protected_frame = true;
  h.addr1 = mac::MacAddr::from_u64(env_.ident.peer_addr);
  h.addr2 = mac::MacAddr::from_u64(env_.ident.self_addr);
  h.addr3 = mac::MacAddr::from_u64(env_.ident.peer_addr);
  h.seq_num = static_cast<u16>(ps.seq_num);
  h.frag_num = static_cast<u8>(frag_idx);
  h.duration_us = fragment_duration_us(frag_idx);
  return h.encode();
}

Cycle WifiCtrl::resp_rx_end() const {
  return static_cast<Cycle>(read_status(CtrlWord::kRespRxEndLo)) |
         (static_cast<Cycle>(read_status(CtrlWord::kRespRxEndHi)) << 32);
}

u32 WifiCtrl::start_next_msdu() {
  auto& ps = env_.api->ps(env_.mode);
  if (tx_queue_.empty() || ps.my_state != kIdle) return 0;
  // Host DMA: the MSDU lands in the Raw page without CPU involvement.
  const Bytes msdu = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  env_.mem->write_page_bytes(env_.mode, Page::Raw, msdu);
  ps.psdu_size = static_cast<u32>(msdu.size());
  const u32 thr = env_.ident.frag_threshold;
  ps.fragmentation_threshold = thr;
  ps.fragments_total = (ps.psdu_size + thr - 1) / thr;
  if (ps.fragments_total == 0) ps.fragments_total = 1;
  ps.fragments_counter = 0;
  ps.retry_count = 0;
  ps.msdu_retries = 0;
  ps.MacHdrLng = mac::wifi::kHdrBytes;
  u32 cost = 0;
  tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWifiPrepareTx, {}, &cost);
  ps.my_state = kSeqAssigned;
  return kSmallBody + cost;
}

u32 WifiCtrl::send_fragment(u32 frag_idx, bool retry, bool sifs_release) {
  auto& ps = env_.api->ps(env_.mode);
  write_hdr_template(build_fragment_header(frag_idx, retry));
  u32 cost = 0;
  // A fragment released by a CTS — or, with the fragment burst enabled, by
  // the previous fragment's ACK — flies SIFS after the releasing frame
  // (802.11's protected exchange is SIFS-separated throughout); everything
  // else contends. The anchor is latched *now*, at arm time, from the
  // snoop's response latch: a bystander frame drained between this ISR and
  // the transmit op's execution cannot re-anchor the data.
  if (sifs_release) {
    const Cycle anchor = resp_rx_end();
    tx_tag_ = env_.api->Request_RHCP_Service(
        env_.mode, Command::kWifiTxFragmentProtected,
        {frag_idx, ps.fragmentation_threshold,
         static_cast<Word>(anchor & 0xFFFFFFFFull), static_cast<Word>(anchor >> 32)},
        &cost);
  } else {
    tx_tag_ = env_.api->Request_RHCP_Service(
        env_.mode, Command::kWifiTxFragment,
        {frag_idx, ps.fragmentation_threshold, ps.retry_count}, &cost);
  }
  ps.my_state = kSending;
  return kSmallBody + 40 /* header build */ + cost;
}

bool WifiCtrl::use_rts() const {
  const auto& ps = env_.api->ps(env_.mode);
  return env_.ident.rts_threshold != 0 && ps.psdu_size >= env_.ident.rts_threshold;
}

double WifiCtrl::contention_margin_us() const {
  if (env_.ident.contenders == 0) return 0.0;
  const auto t = mac::timing_for(mac::Protocol::WiFi);
  // Per winning contender: its own access (DIFS + a fresh contention
  // window), a maximum-length fragment on the air, and the SIFS + ACK that
  // close its exchange.
  const double max_air_us =
      (static_cast<double>(env_.ident.frag_threshold) + 30.0 + 14.0) * 8.0 /
      t.line_rate_bps * 1e6;
  const double per_winner_us = t.difs_us +
                               static_cast<double>(t.cw_min) * t.slot_us + max_air_us +
                               t.sifs_us;
  return static_cast<double>(env_.ident.contenders) * per_winner_us;
}

u32 WifiCtrl::send_rts() {
  // The RTS is pure header data, so the CPU may build it (Fig. 3.9: "The CPU
  // would however only access the header data"); it lands in the Scratch
  // page and the RHCP appends the FCS, contends and transmits.
  auto& ps = env_.api->ps(env_.mode);
  const auto t = mac::timing_for(mac::Protocol::WiFi);
  // NAV covers CTS + first fragment + ACK with their SIFS gaps. A real
  // station's data follows its CTS at exactly SIFS; here the receive chain
  // (drain + parse + ISR + fragment/assemble/HCS and the access-RFU context
  // switch) sits between them, so the announced reservation adds that
  // processing slack — under-reserving would expose the exchange's tail to
  // a hidden station's next access, which is the failure the handshake
  // exists to prevent. Over-reserving merely delays bystanders slightly.
  constexpr double kProcessingSlackUs = 100.0;
  const double frag_air_us =
      (static_cast<double>(std::min(ps.psdu_size, ps.fragmentation_threshold)) + 30.0) *
      8.0 / t.line_rate_bps * 1e6;
  const double nav_us = 3.0 * t.sifs_us +
                        (mac::wifi::kCtsBytes + mac::wifi::kAckBytes) * 8.0 /
                            t.line_rate_bps * 1e6 +
                        frag_air_us + kProcessingSlackUs;
  const Bytes rts = mac::wifi::build_rts(
      mac::MacAddr::from_u64(env_.ident.peer_addr),
      mac::MacAddr::from_u64(env_.ident.self_addr),
      static_cast<u16>(std::min(nav_us, 65535.0)));
  // Strip the FCS the codec appended: TxFrameWifi recomputes it on the way
  // out (append-FCS flag), keeping the FCS path in hardware.
  Bytes image(rts.begin(), rts.end() - static_cast<std::ptrdiff_t>(mac::wifi::kFcsBytes));
  env_.mem->write_page_bytes(env_.mode, Page::Scratch, image);
  u32 cost = 0;
  tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWifiSendRts,
                                           {ps.retry_count}, &cost);
  ps.my_state = kSendingRts;
  ++rts_sent;
  return kSmallBody + 30 /* frame build */ + cost;
}

u32 WifiCtrl::handle_req_done(u32 tag) {
  auto& ps = env_.api->ps(env_.mode);
  u32 cost = 0;
  if (tag == tx_tag_) {
    switch (ps.my_state) {
      case kSeqAssigned: {
        ps.seq_num = read_status(CtrlWord::kSeqOut);
        tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWifiEncrypt,
                                                 {ps.seq_num}, &cost);
        ps.my_state = kEncrypting;
        return kSmallBody + cost;
      }
      case kEncrypting:
        if (env_.ident.pcf_poll_mode) {
          // CF-pollable station: hold the prepared MSDU for the next poll.
          ps.my_state = kAwaitPoll;
          return kSmallBody;
        }
        // Large MSDUs reserve the medium with an RTS first (§2.3.2.2 #10).
        return use_rts() ? send_rts() : send_fragment(0, false);
      case kSendingRts: {
        // RTS staged; arm the CTS timeout (worst-case access + RTS air +
        // SIFS + CTS air, mirroring the ACK-timeout arithmetic).
        const auto t = mac::timing_for(mac::Protocol::WiFi);
        const double rts_air_us =
            static_cast<double>(mac::wifi::kRtsBytes) * 8.0 / t.line_rate_bps * 1e6;
        const double cts_air_us =
            static_cast<double>(mac::wifi::kCtsBytes) * 8.0 / t.line_rate_bps * 1e6;
        u64 cw = (static_cast<u64>(t.cw_min) + 1) << std::min<u32>(ps.retry_count, 16);
        cw = std::min<u64>(cw - 1, t.cw_max);
        const double access_us =
            t.difs_us + static_cast<double>(cw) * t.slot_us + contention_margin_us();
        const double timeout_us =
            access_us + rts_air_us + t.sifs_us + cts_air_us + t.ack_timeout_us;
        env_.cpu->set_timer(env_.mode, kCtsTimeoutTimer, env_.tb->us_to_cycles(timeout_us));
        ps.my_state = kWaitCts;
        return kSmallBody + 15;
      }
      case kSendingPcf:
        // Polled fragment staged; the piggybacked CF-Ack on the point
        // coordinator's next poll (or the CF-End) acknowledges it — no ACK
        // timer in the contention-free period.
        ps.my_state = kWaitCfAck;
        return kSmallBody;
      case kSending: {
        // Fragment staged for the air; arm the ACK timeout. The timer starts
        // at staging, so it must cover the worst-case channel access (DIFS +
        // the full contention window at the current retry count), the
        // fragment's air time, SIFS and the ACK air time (Fig. 4.7 timing).
        const auto t = mac::timing_for(mac::Protocol::WiFi);
        const u32 frag_bytes =
            std::min(ps.fragmentation_threshold,
                     ps.psdu_size - ps.fragments_counter * ps.fragmentation_threshold);
        const double mpdu_bytes = static_cast<double>(frag_bytes) + 30.0;
        const double air_us = mpdu_bytes * 8.0 / t.line_rate_bps * 1e6;
        u64 cw = (static_cast<u64>(t.cw_min) + 1) << std::min<u32>(ps.retry_count, 16);
        cw = std::min<u64>(cw - 1, t.cw_max);
        const double access_us =
            t.difs_us + static_cast<double>(cw) * t.slot_us + contention_margin_us();
        const double ack_air_us = 14.0 * 8.0 / t.line_rate_bps * 1e6;
        const double timeout_us =
            access_us + air_us + t.sifs_us + ack_air_us + t.ack_timeout_us;
        env_.cpu->set_timer(env_.mode, kAckTimeoutTimer, env_.tb->us_to_cycles(timeout_us));
        ps.my_state = kWaitAck;
        return kSmallBody + 15;
      }
      default:
        return kSmallBody;
    }
  }
  if (tag == rx_tag_) {
    switch (rx_phase_) {
      case RxPhase::Check: {
        const bool dup = read_status(CtrlWord::kDupFlag) != 0;
        if (dup) {
          ++rx_duplicates;
          rx_phase_ = RxPhase::Idle;
          if (rx_release) rx_release();
          return kSmallBody;
        }
        rx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWifiRxExtract,
                                                 {rx_frag_ == 0 ? 1u : 0u}, &cost);
        rx_phase_ = RxPhase::Extract;
        return kSmallBody + cost;
      }
      case RxPhase::Extract: {
        if (rx_release) rx_release();  // Rx page consumed.
        if (rx_more_frag_) {
          rx_phase_ = RxPhase::Idle;  // Await the next fragment.
          return kSmallBody;
        }
        rx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWifiRxFinish,
                                                 {rx_seq_}, &cost);
        rx_phase_ = RxPhase::Finish;
        return kSmallBody + cost;
      }
      case RxPhase::Finish: {
        auto msdu = env_.mem->read_page_bytes(env_.mode, Page::RxOut);
        ++rx_delivered;
        ++ps.rx_pdu_count;
        if (on_deliver) on_deliver(msdu);
        rx_phase_ = RxPhase::Idle;
        return kSmallBody + 10;
      }
      default:
        return kSmallBody;
    }
  }
  return kSmallBody;
}

u32 WifiCtrl::handle_ack_ind(Word param) {
  auto& ps = env_.api->ps(env_.mode);
  if (param == kAckParamCts) {
    // CTS: the handshake completed — release the data fragment SIFS-spaced
    // (inside the NAV window the CTS armed at every overhearing station).
    if (ps.my_state != kWaitCts) return kSmallBody;  // Stray/late CTS.
    env_.cpu->cancel_timer(env_.mode, kCtsTimeoutTimer);
    ++cts_received;
    return send_fragment(ps.fragments_counter, ps.retry_count != 0,
                         /*sifs_release=*/true);
  }
  if (ps.my_state != kWaitAck) return kSmallBody;  // Stray/late ACK.
  env_.cpu->cancel_timer(env_.mode, kAckTimeoutTimer);
  ps.retry_count = 0;
  ++ps.fragments_counter;
  if (ps.fragments_counter < ps.fragments_total) {
    // Follow-on fragment. With the burst enabled it rides the ACK
    // SIFS-spaced — the burst holds the medium like real DCF, inside the
    // NAV the previous fragment's Duration chained at every bystander —
    // instead of re-contending with DIFS+backoff (the PR-2 simplification,
    // kept bit-exact when the flag is off).
    return send_fragment(ps.fragments_counter, false,
                         /*sifs_release=*/env_.ident.frag_burst_enabled);
  }
  // Terminal state: report success to the application processor (Fig. 4.7).
  ++ps.tx_pdu_count;
  ++tx_ok;
  ps.my_state = kIdle;
  if (on_tx_complete) on_tx_complete(true, ps.msdu_retries);
  return kSmallBody + start_next_msdu();
}

u32 WifiCtrl::handle_ack_timeout() {
  auto& ps = env_.api->ps(env_.mode);
  if (ps.my_state != kWaitAck) return kSmallBody;
  ++ps.retry_count;
  ++ps.msdu_retries;
  const auto t = mac::timing_for(mac::Protocol::WiFi);
  if (ps.retry_count > t.max_retries) {
    ++tx_failed;
    ps.my_state = kIdle;
    if (on_tx_complete) on_tx_complete(false, ps.msdu_retries);
    return kSmallBody + start_next_msdu();
  }
  // Data retries re-reserve the medium when the handshake is active.
  return use_rts() ? send_rts() : send_fragment(ps.fragments_counter, true);
}

u32 WifiCtrl::handle_cts_timeout() {
  auto& ps = env_.api->ps(env_.mode);
  if (ps.my_state != kWaitCts) return kSmallBody;
  ++ps.retry_count;
  ++ps.msdu_retries;
  const auto t = mac::timing_for(mac::Protocol::WiFi);
  if (ps.retry_count > t.max_retries) {
    ++tx_failed;
    ps.my_state = kIdle;
    if (on_tx_complete) on_tx_complete(false, ps.msdu_retries);
    return kSmallBody + start_next_msdu();
  }
  return send_rts();  // Re-contend with the grown window.
}

u32 WifiCtrl::handle_beacon() {
  // Passive scanning (§2.3.2.1 #15): record the BSS. Beacons are management
  // frames, so their body is control-plane data the CPU may read (like the
  // WiMAX ARQ feedback payload).
  const u64 bssid = static_cast<u64>(read_status(CtrlWord::kSrcLo)) |
                    (static_cast<u64>(read_status(CtrlWord::kSrcHi)) << 32);
  const Bytes frame = env_.mem->read_page_bytes(env_.mode, Page::Rx);
  const std::size_t body_off = mac::wifi::kHdrBytes + mac::wifi::kHcsBytes;
  std::optional<mac::wifi::BeaconBody> body;
  if (frame.size() >= body_off + mac::wifi::kFcsBytes) {
    body = mac::wifi::BeaconBody::decode(
        std::span<const u8>(frame.data() + body_off,
                            frame.size() - body_off - mac::wifi::kFcsBytes));
  }
  if (rx_release) rx_release();
  if (!body) return kSmallBody;
  for (auto& bss : scan_) {
    if (bss.bssid == bssid) {
      bss.last_timestamp_us = body->timestamp_us;
      bss.interval_us = body->interval_us;
      ++bss.beacons;
      return kSmallBody + 10;
    }
  }
  scan_.push_back(BssInfo{bssid, body->timestamp_us, body->interval_us, 1});
  return kSmallBody + 10;
}

u32 WifiCtrl::handle_rx_ind(Word param) {
  // PCF events ride the RxInd line with distinguishing params (the poll and
  // CF-End frames carry nothing for the receive datapath).
  if (param == kRxParamCfPoll || param == kRxParamCfPollAck) {
    return handle_cf_poll(param == kRxParamCfPollAck);
  }
  if (param == kRxParamCfEnd || param == kRxParamCfEndAck) {
    return handle_cfp_end(param == kRxParamCfEndAck);
  }
  if (param == kRxParamBeacon) {
    return handle_beacon();
  }
  // The Event Handler has drained, checked, parsed and ACKed the frame; the
  // parse fields sit in the Ctrl status words.
  rx_seq_ = read_status(CtrlWord::kSeq);
  rx_frag_ = read_status(CtrlWord::kFrag);
  rx_more_frag_ = read_status(CtrlWord::kMoreFrag) != 0;
  const u32 src_key = read_status(CtrlWord::kSrcLo);
  u32 cost = 0;
  rx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWifiRxCheck,
                                           {src_key, (rx_seq_ << 4) | rx_frag_}, &cost);
  rx_phase_ = RxPhase::Check;
  return kSmallBody + cost;
}

u32 WifiCtrl::on_isr(const cpu::IsrContext& ctx) {
  switch (ctx.cause) {
    case cpu::IsrCause::HostRequest:
      return start_next_msdu();
    case cpu::IsrCause::Timer:
      if (ctx.event == kAckTimeoutTimer) return handle_ack_timeout();
      if (ctx.event == kCtsTimeoutTimer) return handle_cts_timeout();
      return kSmallBody;
    case cpu::IsrCause::HwInterrupt: {
      switch (static_cast<IrqEvent>(ctx.event)) {
        case IrqEvent::ReqDone:
          return handle_req_done(ctx.param);
        case IrqEvent::RxInd:
          return handle_rx_ind(ctx.param);
        case IrqEvent::RxAckInd:
          return handle_ack_ind(ctx.param);
        case IrqEvent::RxBad:
        default:
          return kSmallBody;
      }
    }
  }
  return kSmallBody;
}

}  // namespace drmp::ctrl
