// LinkMgr — association, roaming reassociation and rate adaptation for one
// shared-cell station.
//
// Static cells associate stations by fiat; motion forces the flows real
// MACs run. The link manager holds a station's traffic source gated until a
// probe/assoc exchange completes against the serving access point, re-runs
// the exchange after a roaming handoff (net::TopologyDriver retargets the
// serving AP and calls handoff()), and adapts the ModeIdentity-level rate
// index from traffic-completion quality — step-down after consecutive lossy
// completions, step-up after a clean run (cf. traffic-aware adaptation,
// arXiv:1809.07862). The adapted rate is report-only: it feeds the
// est::estimate_power duty model through rate_scale(), never the PHY
// timing, so enabling adaptation cannot perturb digest-bearing state.
//
// Management frames are ordinary MSDUs submitted through the device's
// host_send path and acknowledged by the scripted AP like any data frame.
// Routing their completions back here relies on a structural property of
// the device pipeline: MSDUs of one mode are processed strictly serially
// from one tx_queue_, so completions are FIFO with submissions — the
// manager records each submission's kind (traffic vs management) in a
// deque and pops it at completion time. A handoff is serving-AP
// bookkeeping plus this reassociation exchange on the home medium: the
// station never changes clock domains, which is what keeps lax-sync and
// reference multi-cell coupling digest-identical through a handoff.
//
// Quiescence: the only scheduled work is launching the initial probe at
// its staggered start cycle; every later transition runs synchronously
// inside completion or handoff callbacks, so after the probe the manager
// sleeps forever (kIdleForever) and costs the batched scheduler nothing.
#pragma once

#include <deque>
#include <functional>

#include "common/types.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/clock.hpp"
#include "sim/scheduler.hpp"

namespace drmp::mac {

class LinkMgr final : public sim::Clockable {
 public:
  struct Params {
    int station_id = 0;      ///< For flight-recorder events.
    double start_us = 50.0;  ///< Initial probe launch time (staggered).
    u32 probe_bytes = 32;
    u32 assoc_bytes = 48;
    bool adapt_rate = false;
    u32 rate_down_after = 2;  ///< Lossy completions before a step-down.
    u32 rate_up_after = 4;    ///< Clean completions before a step-up.
    u32 rate_steps = 4;       ///< Ladder depth; index 0 = full rate.
  };

  /// `clock` supplies cycle stamps for events and duty integration (the
  /// manager's own tick clock stops advancing once it sleeps forever).
  LinkMgr(Params p, const sim::TimeBase& tb, const sim::Scheduler& clock);

  /// Management-frame submission path (the device's host_send).
  std::function<void(Bytes)> send;
  /// Traffic gate: open(true) once associated, closed during reassociation.
  std::function<void(bool open)> gate;

  void set_recorder(obs::FlightRecorder* rec, u16 track) noexcept {
    rec_ = rec;
    track_ = track;
  }

  /// Call before host_send on the traffic path: records the submission so
  /// the FIFO completion router can tell traffic from management.
  void note_traffic_submit() { pending_.push_back(kKindTraffic); }
  /// Completion router (call from the device's on_tx_complete). Returns
  /// true when the completed MSDU was management — the caller must then NOT
  /// forward the completion to the traffic generator.
  bool notify_complete(bool ok, u32 retries);
  /// Roaming handoff (net::TopologyDriver::on_handoff): retargets the
  /// serving AP; when currently associated, closes the gate and starts the
  /// reassociation exchange.
  void handoff(u32 target_cell);

  bool associated() const noexcept { return state_ == kAssociated; }
  /// Gate state the traffic generators must mirror.
  bool gate_open() const noexcept { return state_ == kAssociated; }
  /// True when no management exchange is in flight — fleet lanes drain
  /// only once the final (re)association completes.
  bool settled() const noexcept;

  // ---- Counters (FleetStats; all outside the digests) ----
  u64 reassociations() const noexcept { return reassociations_; }
  u64 handoffs() const noexcept { return handoffs_; }
  u64 rate_shifts() const noexcept { return rate_shifts_; }
  u64 link_loss_drops() const noexcept { return link_loss_drops_; }
  u32 rate_index() const noexcept { return rate_idx_; }
  u32 serving_cell() const noexcept { return serving_; }
  /// Total handoff-to-reassociated latency over all completed handoffs.
  Cycle handoff_latency_total() const noexcept { return handoff_latency_total_; }
  /// Duty-weighted mean rate fraction since cycle 0 (1.0 = full rate the
  /// whole run); the est::estimate_power folding input.
  double rate_scale(Cycle at) const noexcept;

  void tick() override;
  Cycle quiescent_for() const override {
    if (started_) return kIdleForever;
    return start_cycle_ > now_ ? start_cycle_ - now_ : 0;
  }
  void skip_idle(Cycle n) override { now_ += n; }

  /// Checkpoint state (written only for mobility cells — static-cell
  /// snapshot layouts stay untouched).
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(now_);
    ar.io(started_);
    ar.io(state_);
    ar.io(pending_);
    ar.io(reassoc_pending_);
    ar.io(serving_);
    ar.io(handoff_started_);
    ar.io(handoff_latency_total_);
    ar.io(reassociations_);
    ar.io(handoffs_);
    ar.io(rate_shifts_);
    ar.io(link_loss_drops_);
    ar.io(bad_run_);
    ar.io(good_run_);
    ar.io(rate_idx_);
    ar.io(rate_duty_);
    ar.io(rate_since_);
  }

 private:
  static constexpr u8 kKindTraffic = 0;
  static constexpr u8 kKindMgmt = 1;
  // Association states (u8 for direct persistence).
  static constexpr u8 kIdle = 0;         ///< Waiting for the probe launch.
  static constexpr u8 kProbing = 1;      ///< Probe in flight.
  static constexpr u8 kAssociating = 2;  ///< Assoc request in flight.
  static constexpr u8 kAssociated = 3;   ///< Gate open, traffic flows.

  void submit_mgmt(u32 bytes, u8 fill);
  void on_traffic_complete(bool ok, u32 retries);
  /// Rate ladder fraction: each step halves the effective rate.
  double fraction(u32 idx) const noexcept {
    return 1.0 / static_cast<double>(u64{1} << idx);
  }
  void shift_rate(bool down);

  Params p_;
  const sim::Scheduler& clock_;
  Cycle start_cycle_;

  Cycle now_ = 0;
  bool started_ = false;
  u8 state_ = kIdle;
  /// Submission kinds in flight, FIFO with the mode's tx queue.
  std::deque<u8> pending_;
  bool reassoc_pending_ = false;
  u32 serving_ = 0xFFFFFFFFu;  ///< kHomeCell sentinel: the home AP.
  Cycle handoff_started_ = 0;
  Cycle handoff_latency_total_ = 0;

  u64 reassociations_ = 0;
  u64 handoffs_ = 0;
  u64 rate_shifts_ = 0;
  u64 link_loss_drops_ = 0;

  u32 bad_run_ = 0;
  u32 good_run_ = 0;
  u32 rate_idx_ = 0;
  /// Duty integral of fraction() over cycles up to rate_since_.
  double rate_duty_ = 0.0;
  Cycle rate_since_ = 0;

  obs::FlightRecorder* rec_ = nullptr;
  u16 track_ = 0;
};

}  // namespace drmp::mac
