#include "mac/wimax_ctrl.hpp"

#include "irc/irc.hpp"

namespace drmp::ctrl {

using api::Command;
using hw::CtrlWord;
using hw::Page;
using irc::IrqEvent;

namespace {
constexpr u32 kSmallBody = 30;
}

Bytes WimaxCtrl::build_gmh_template() const {
  mac::wimax::GenericMacHeader h;
  h.ec = true;
  h.cid = tx_cid_;
  h.ci = true;  // CRC-32 appended.
  if (packing_) h.type |= mac::wimax::kTypePacking;
  // LEN = GMH + payload + CRC; payload size known to the control software.
  h.len = static_cast<u16>(mac::wimax::kGmhBytes + pending_payload_bytes_ +
                           mac::wimax::kCrcBytes);
  Bytes gmh = h.encode();
  gmh[5] = 0;  // HCS placeholder; patched by the HdrCheck RFU (HcsPatch8).
  return gmh;
}

u32 WimaxCtrl::start_next_msdu() {
  auto& ps = env_.api->ps(env_.mode);
  if (tx_queue_.empty() || ps.my_state != kIdle) return 0;
  // Decide on packing: two small MSDUs queued back-to-back share one MPDU.
  packing_ = tx_queue_.size() >= 2 && tx_queue_[0].size() <= kPackLimit &&
             tx_queue_[1].size() <= kPackLimit;
  packed_count_ = 0;
  const Bytes msdu = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  env_.mem->write_page_bytes(env_.mode, Page::Raw, msdu);
  ps.psdu_size = static_cast<u32>(msdu.size());
  ps.MacHdrLng = mac::wimax::kGmhBytes;
  u32 cost = 0;
  // Classify the flow to a CID (flow meta: 1 = data service).
  tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWimaxClassify, {1}, &cost);
  ps.my_state = kClassifying;
  return kSmallBody + cost;
}

u32 WimaxCtrl::send_mpdu() {
  auto& ps = env_.api->ps(env_.mode);
  // Compute the payload size the GMH LEN field must carry.
  const Page body_page = packing_ ? Page::Scratch : Page::Crypt;
  pending_payload_bytes_ = env_.mem->page_byte_len(env_.mode, body_page);
  write_hdr_template(build_gmh_template());
  u32 cost = 0;
  tx_tag_ = env_.api->Request_RHCP_Service(
      env_.mode, Command::kWimaxTxMpdu,
      {static_cast<Word>(env_.ident.tdma_offset_us),
       static_cast<Word>(env_.ident.tdma_period_us), 1 /* with CRC */,
       packing_ ? 1u : 0u},
      &cost);
  ps.my_state = kSending;
  return kSmallBody + 30 + cost;
}

u32 WimaxCtrl::handle_req_done(u32 tag) {
  auto& ps = env_.api->ps(env_.mode);
  u32 cost = 0;
  if (tag == tx_tag_) {
    switch (ps.my_state) {
      case kClassifying: {
        const Word cid = read_status(CtrlWord::kCid);
        tx_cid_ = (cid == 0xFFFFFFFF) ? env_.ident.basic_cid : static_cast<u16>(cid);
        // Probe the ARQ window first; the datapath pass only runs once the
        // tag is granted, so a window-full stall has no side effects.
        tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWimaxArqTag,
                                                 {tx_cid_}, &cost);
        ps.my_state = kTagging;
        return kSmallBody + cost;
      }
      case kTagging: {
        // BSN assigned (window-full handling: retry after one frame).
        const Word bsn = read_status(CtrlWord::kArqOut);
        if (bsn == 0xFFFFFFFF) {
          env_.cpu->set_timer(env_.mode, kRetryBackoffTimer,
                              env_.tb->us_to_cycles(env_.ident.tdma_period_us));
          return kSmallBody;
        }
        tx_tag_ = env_.api->Request_RHCP_Service(
            env_.mode, Command::kWimaxEncryptPack,
            {tx_cid_ /* DES IV = CID */, packing_ ? 1u : 0u,
             packed_count_ == 0 ? 1u : 0u},
            &cost);
        ps.my_state = kPreparing;
        return kSmallBody + cost;
      }
      case kPreparing: {
        ++packed_count_;
        if (packing_ && packed_count_ < 2 && !tx_queue_.empty()) {
          // DMA the second small MSDU and run its tag+prepare pass.
          const Bytes next = std::move(tx_queue_.front());
          tx_queue_.pop_front();
          env_.mem->write_page_bytes(env_.mode, Page::Raw, next);
          tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWimaxArqTag,
                                                   {tx_cid_}, &cost);
          ps.my_state = kTagging;
          return kSmallBody + cost;
        }
        return send_mpdu();
      }
      case kSending: {
        // One completion report per MSDU carried (a packed MPDU carries two)
        // so the host contract stays one host_send -> one outcome, matching
        // the WiFi/UWB controllers. WiMAX reports "handed to the TDD frame";
        // ARQ closes the loop later.
        const u32 sdus = std::max<u32>(1, packed_count_);
        ps.tx_pdu_count += sdus;
        tx_ok += sdus;
        ps.my_state = kIdle;
        if (on_tx_complete) {
          for (u32 k = 0; k < sdus; ++k) on_tx_complete(true, 0);
        }
        return kSmallBody + start_next_msdu();
      }
      default:
        return kSmallBody;
    }
  }
  if (tag == rx_tag_) {
    switch (rx_phase_) {
      case RxPhase::Extract: {
        if (rx_release) rx_release();
        if (rx_cid_ == kArqFeedbackCid) {
          // ARQ feedback payload: 4-byte cumulative BSN (management data —
          // control-plane, so the CPU may read it).
          const Bytes fb = env_.mem->read_page_bytes(env_.mode, Page::RxScratch);
          const u32 bsn = fb.size() >= 4 ? get_le32(fb, 0) : 0;
          arq_tag_ = env_.api->Request_RHCP_Service(
              env_.mode, Command::kWimaxArqFeedback, {env_.ident.basic_cid, bsn}, &cost);
          rx_phase_ = RxPhase::Idle;
          return kSmallBody + cost;
        }
        if (rx_packed_) {
          rx_sdu_index_ = 0;
          rx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWimaxRxSdu,
                                                   {rx_sdu_index_, rx_cid_}, &cost);
          rx_phase_ = RxPhase::Sdu;
        } else {
          rx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWimaxRxSingle,
                                                   {rx_cid_}, &cost);
          rx_phase_ = RxPhase::Single;
        }
        return kSmallBody + cost;
      }
      case RxPhase::Single: {
        auto& psr = env_.api->ps(env_.mode);
        auto msdu = env_.mem->read_page_bytes(env_.mode, Page::RxOut);
        ++rx_delivered;
        ++psr.rx_pdu_count;
        if (on_deliver) on_deliver(msdu);
        rx_phase_ = RxPhase::Idle;
        return kSmallBody + 10;
      }
      case RxPhase::Sdu: {
        const Word sh = read_status(CtrlWord::kPackCount);
        if (sh == 0xFFFFFFFF) {
          rx_phase_ = RxPhase::Idle;  // No more packed SDUs.
          return kSmallBody;
        }
        auto msdu = env_.mem->read_page_bytes(env_.mode, Page::RxOut);
        ++rx_delivered;
        ++ps.rx_pdu_count;
        if (on_deliver) on_deliver(msdu);
        ++rx_sdu_index_;
        rx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWimaxRxSdu,
                                                 {rx_sdu_index_, rx_cid_}, &cost);
        return kSmallBody + 10 + cost;
      }
      default:
        return kSmallBody;
    }
  }
  if (tag == arq_tag_) {
    arq_blocks_acked += read_status(CtrlWord::kArqOut);
    return kSmallBody;
  }
  return kSmallBody;
}

u32 WimaxCtrl::handle_rx_ind() {
  rx_cid_ = static_cast<u16>(read_status(CtrlWord::kCid));
  const Word type = read_status(CtrlWord::kFrameType);
  rx_packed_ = (type & mac::wimax::kTypePacking) != 0;
  u32 cost = 0;
  rx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWimaxRxExtract, {}, &cost);
  rx_phase_ = RxPhase::Extract;
  return kSmallBody + cost;
}

u32 WimaxCtrl::on_isr(const cpu::IsrContext& ctx) {
  switch (ctx.cause) {
    case cpu::IsrCause::HostRequest:
      return start_next_msdu();
    case cpu::IsrCause::Timer: {
      if (ctx.event == kRetryBackoffTimer) {
        // Retry the stalled ARQ tag — the probe alone, so the repeated
        // attempts leave no datapath side effects.
        auto& ps = env_.api->ps(env_.mode);
        if (ps.my_state == kTagging) {
          u32 cost = 0;
          tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kWimaxArqTag,
                                                   {tx_cid_}, &cost);
          return kSmallBody + cost;
        }
      }
      return kSmallBody;
    }
    case cpu::IsrCause::HwInterrupt:
      switch (static_cast<IrqEvent>(ctx.event)) {
        case IrqEvent::ReqDone:
          return handle_req_done(ctx.param);
        case IrqEvent::RxInd:
          return handle_rx_ind();
        default:
          return kSmallBody;
      }
  }
  return kSmallBody;
}

}  // namespace drmp::ctrl
