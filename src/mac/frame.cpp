#include "mac/frame.hpp"

// Header-only helpers; TU anchors the build target.
namespace drmp::mac {
namespace {
[[maybe_unused]] const MacAddr kAnchor{};
}
}  // namespace drmp::mac
