// WiFi (IEEE 802.11 DCF) protocol control — the interrupt-driven state
// machine of thesis Figs. 4.7-4.9, which the prototype simulations of Ch. 5
// exercise. Transmit: sequence assignment, WEP(RC4) encryption, per-fragment
// assemble/HCS/CSMA-CA/transmit, ACK await with retry and CW growth.
// Receive: duplicate detection, body extraction, reassembly, decryption and
// delivery (the ACK itself was already sent autonomously by the AckRfu).
#pragma once

#include <vector>

#include "mac/ctrl_common.hpp"
#include "mac/wifi_frames.hpp"

namespace drmp::ctrl {

class WifiCtrl final : public ProtocolCtrl {
 public:
  explicit WifiCtrl(CtrlEnv env) : ProtocolCtrl(std::move(env)) {}

  u32 on_isr(const cpu::IsrContext& ctx) override;

  /// Protocol state-machine states (ProtocolState::my_state).
  enum TxState : u32 {
    kIdle = 0,
    kSeqAssigned,   ///< Waiting for SeqAssign request completion.
    kEncrypting,    ///< Waiting for encryption completion.
    kSending,       ///< Fragment request in flight (frag+asm+hcs+csma+tx).
    kWaitAck,       ///< Frame staged; awaiting the peer's ACK.
    kSendingRts,    ///< RTS request in flight (csma+tx of the Scratch frame).
    kWaitCts,       ///< RTS staged; awaiting the peer's CTS (§2.3.2.2 #10).
    kAwaitPoll,     ///< PCF: MSDU prepared, waiting for a CF-Poll.
    kSendingPcf,    ///< PCF: polled fragment in flight (frag+asm+hcs+pcf+tx).
    kWaitCfAck,     ///< PCF: fragment sent, awaiting the piggybacked CF-Ack.
  };

  TxState tx_state() const {
    return static_cast<TxState>(env_.api->ps(env_.mode).my_state);
  }

  // ---- Statistics (RTS/CTS handshake) ----
  u32 rts_sent = 0;
  u32 cts_received = 0;
  // ---- Statistics (PCF) ----
  u32 polls_answered_with_data = 0;
  u32 polls_answered_with_null = 0;
  u32 cf_acks_received = 0;

  // ---- Passive scanning (§2.3.2.1 #13/#15) ----
  /// One discovered BSS, accumulated from received beacons.
  struct BssInfo {
    u64 bssid = 0;
    u64 last_timestamp_us = 0;
    u16 interval_us = 0;
    u32 beacons = 0;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(bssid);
      ar.io(last_timestamp_us);
      ar.io(interval_us);
      ar.io(beacons);
    }
  };
  const std::vector<BssInfo>& scan_results() const { return scan_; }

  void save_state(sim::snap::Writer& w) override {
    ProtocolCtrl::save_state(w);
    persist(w);
  }
  void load_state(sim::snap::Reader& r) override {
    ProtocolCtrl::load_state(r);
    persist(r);
  }

 private:
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(rts_sent);
    ar.io(cts_received);
    ar.io(polls_answered_with_data);
    ar.io(polls_answered_with_null);
    ar.io(cf_acks_received);
    ar.io(tx_tag_);
    ar.io(rx_tag_);
    ar.io(rx_phase_);
    ar.io(rx_more_frag_);
    ar.io(rx_seq_);
    ar.io(rx_frag_);
    ar.io(scan_);
  }

  u32 start_next_msdu();
  /// `sifs_release`: the fragment was released by a CTS or (fragment burst)
  /// by the previous fragment's ACK and flies SIFS after the releasing
  /// frame's latched rx-end instead of contending.
  u32 send_fragment(u32 frag_idx, bool retry, bool sifs_release = false);
  /// Duration field for fragment `frag_idx` (802.11 §9.1.4): with the
  /// fragment burst enabled and more fragments to come, the reservation
  /// chains through the next fragment's ACK; otherwise the legacy rough
  /// SIFS+ACK figure (kept bit-exact for flag-off digests).
  u16 fragment_duration_us(u32 frag_idx) const;
  /// Reads the response-anchor latch (CtrlWord::kRespRxEndLo/Hi): the
  /// rx-end of the CTS/ACK this ISR is answering, captured at delivery time
  /// by the Event Handler's snoop.
  Cycle resp_rx_end() const;
  u32 send_rts();
  bool use_rts() const;
  /// Extra worst-case access time on a shared medium: every contender may
  /// win the channel — one access plus one full frame exchange — ahead of
  /// this station per attempt. 0 on a point-to-point link.
  double contention_margin_us() const;
  u32 send_fragment_pcf(u32 frag_idx, bool retry);
  u32 send_null_pcf();
  u32 handle_cf_poll(bool piggyback_ack);
  u32 handle_cfp_end(bool piggyback_ack);
  u32 handle_beacon();
  /// Books the piggybacked CF-Ack for the in-flight fragment; returns the
  /// instruction cost of any follow-on work it triggers.
  u32 consume_cf_ack();
  u32 handle_req_done(u32 tag);
  u32 handle_rx_ind(Word param);
  u32 handle_ack_ind(Word param);
  u32 handle_ack_timeout();
  u32 handle_cts_timeout();
  Bytes build_fragment_header(u32 frag_idx, bool retry) const;

  // Pending request tags for correlation.
  u32 tx_tag_ = 0;
  u32 rx_tag_ = 0;
  enum class RxPhase : u8 { Idle, Check, Extract, Finish } rx_phase_ = RxPhase::Idle;
  bool rx_more_frag_ = false;
  u32 rx_seq_ = 0;
  u32 rx_frag_ = 0;
  std::vector<BssInfo> scan_;
};

}  // namespace drmp::ctrl
