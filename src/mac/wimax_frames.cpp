#include "mac/wimax_frames.hpp"

#include "crypto/crc.hpp"

namespace drmp::mac::wimax {
namespace {

Bytes encode_gmh_fields(const GenericMacHeader& h) {
  Bytes out;
  out.push_back(static_cast<u8>((h.ec ? 0x40 : 0x00) | (h.type & 0x3F)));
  out.push_back(static_cast<u8>((h.ci ? 0x40 : 0x00) | ((h.eks & 0x3) << 4) |
                                ((h.len >> 8) & 0x07)));
  out.push_back(static_cast<u8>(h.len & 0xFF));
  out.push_back(static_cast<u8>(h.cid >> 8));
  out.push_back(static_cast<u8>(h.cid & 0xFF));
  return out;
}

}  // namespace

Bytes GenericMacHeader::encode() const {
  Bytes out = encode_gmh_fields(*this);
  out.push_back(crypto::Crc8::compute(out));
  return out;
}

std::optional<GenericMacHeader> GenericMacHeader::decode(std::span<const u8> gmh,
                                                         bool* hcs_ok) {
  if (gmh.size() < kGmhBytes) return std::nullopt;
  if ((gmh[0] & 0x80) != 0) return std::nullopt;  // HT=1 (BW request) unsupported.
  GenericMacHeader h;
  h.ec = (gmh[0] & 0x40) != 0;
  h.type = gmh[0] & 0x3F;
  h.ci = (gmh[1] & 0x40) != 0;
  h.eks = (gmh[1] >> 4) & 0x3;
  h.len = static_cast<u16>(((gmh[1] & 0x07) << 8) | gmh[2]);
  h.cid = static_cast<u16>((gmh[3] << 8) | gmh[4]);
  if (hcs_ok != nullptr) {
    *hcs_ok = (gmh[5] == crypto::Crc8::compute(gmh.subspan(0, 5)));
  }
  return h;
}

Bytes build_mpdu(u16 cid, const FragSubheader& frag, std::span<const u8> payload,
                 bool with_crc, bool encrypted, u8 eks) {
  GenericMacHeader h;
  h.ec = encrypted;
  h.eks = eks;
  h.cid = cid;
  h.ci = with_crc;
  const bool has_frag = frag.fc != FragState::Unfragmented || frag.fsn != 0;
  if (has_frag) h.type |= kTypeFragmentation;
  const std::size_t total = kGmhBytes + (has_frag ? 1 : 0) + payload.size() +
                            (with_crc ? kCrcBytes : 0);
  h.len = static_cast<u16>(total);

  Bytes out = h.encode();
  if (has_frag) out.push_back(frag.encode());
  out.insert(out.end(), payload.begin(), payload.end());
  if (with_crc) {
    const u32 crc = crypto::Crc32::compute(out);
    put_le32(out, crc);
  }
  return out;
}

Bytes build_packed_mpdu(u16 cid, const std::vector<PackedSdu>& sdus, bool with_crc,
                        bool encrypted, u8 eks) {
  GenericMacHeader h;
  h.ec = encrypted;
  h.eks = eks;
  h.cid = cid;
  h.ci = with_crc;
  h.type |= kTypePacking;
  std::size_t total = kGmhBytes + (with_crc ? kCrcBytes : 0);
  for (const auto& s : sdus) total += 2 + s.payload.size();
  h.len = static_cast<u16>(total);

  Bytes out = h.encode();
  for (const auto& s : sdus) {
    PackSubheader sh = s.sh;
    sh.len = static_cast<u16>(s.payload.size());
    put_le16(out, sh.encode());
    out.insert(out.end(), s.payload.begin(), s.payload.end());
  }
  if (with_crc) {
    const u32 crc = crypto::Crc32::compute(out);
    put_le32(out, crc);
  }
  return out;
}

std::optional<ParsedMpdu> parse_mpdu(std::span<const u8> mpdu) {
  if (mpdu.size() < kGmhBytes) return std::nullopt;
  ParsedMpdu p;
  const auto h = GenericMacHeader::decode(mpdu.subspan(0, kGmhBytes), &p.hcs_ok);
  if (!h) return std::nullopt;
  p.gmh = *h;
  // Bound the untrusted length field both ways: a len below the header size
  // would underflow the payload span (fuzz-found).
  if (p.gmh.len < kGmhBytes || p.gmh.len > mpdu.size()) return std::nullopt;
  std::span<const u8> rest = mpdu.subspan(kGmhBytes, p.gmh.len - kGmhBytes);

  p.crc_present = p.gmh.ci;
  if (p.crc_present) {
    if (rest.size() < kCrcBytes) return std::nullopt;
    const u32 crc = get_le32(rest, rest.size() - kCrcBytes);
    p.crc_ok =
        (crc == crypto::Crc32::compute(mpdu.subspan(0, p.gmh.len - kCrcBytes)));
    rest = rest.subspan(0, rest.size() - kCrcBytes);
  }

  if (p.gmh.type & kTypePacking) {
    ByteReader r(rest);
    while (r.remaining() >= 2) {
      PackedSdu s;
      s.sh = PackSubheader::decode(r.u16le());
      if (s.sh.len > r.remaining()) return std::nullopt;
      s.payload = r.bytes(s.sh.len);
      p.packed.push_back(std::move(s));
    }
  } else if (p.gmh.type & kTypeFragmentation) {
    if (rest.empty()) return std::nullopt;
    p.frag = FragSubheader::decode(rest[0]);
    p.payload.assign(rest.begin() + 1, rest.end());
  } else {
    p.payload.assign(rest.begin(), rest.end());
  }
  return p;
}

}  // namespace drmp::mac::wimax
