// IEEE 802.15.3 (UWB / high-rate WPAN) frame codec subset.
//
// MAC header (10 bytes, 802.15.3-2003 §7.2):
//   frame control (2) | PNID (2) | DestID (1) | SrcID (1) |
//   fragmentation control (3: MSDU number 9b, fragment number 7b,
//   last fragment number 7b, padded to 24 bits) | stream index (1)
// followed by a 2-byte HCS — "the exact same 16-bit CRC" as WiFi (thesis
// §2.3.2.1 #1) — then the body and a CRC-32 FCS.
//
// The 1-byte device ids replace the 6-byte MAC addresses at association
// (thesis §2.3.2.1 #9). Imm-ACK frames are header-only (§7.2.7).
#pragma once

#include <optional>

#include "common/types.hpp"
#include "mac/frame.hpp"

namespace drmp::mac::uwb {

inline constexpr std::size_t kHdrBytes = 10;
inline constexpr std::size_t kHcsBytes = 2;
inline constexpr std::size_t kFcsBytes = 4;
inline constexpr std::size_t kImmAckBytes = kHdrBytes + kHcsBytes;

enum class FrameType : u8 {
  Beacon = 0,
  ImmAck = 1,
  DlyAck = 2,
  Command = 3,
  Data = 4,
};

enum class AckPolicy : u8 { NoAck = 0, ImmAck = 1, DlyAck = 2 };

struct Header {
  FrameType type = FrameType::Data;
  bool sec = false;
  AckPolicy ack_policy = AckPolicy::NoAck;
  bool retry = false;
  bool more_data = false;
  u16 pnid = 0;     ///< Piconet identifier.
  u8 dest_id = 0;   ///< 1-byte device id.
  u8 src_id = 0;
  u16 msdu_num = 0;      ///< 9-bit MSDU number.
  u8 frag_num = 0;       ///< 7-bit fragment number.
  u8 last_frag_num = 0;  ///< 7-bit last-fragment number.
  u8 stream_index = 0;

  Bytes encode() const;  ///< 10 bytes, no HCS.
  static Header decode(std::span<const u8> hdr10);
  bool operator==(const Header&) const = default;
};

/// Builds a data frame: header + HCS + body + FCS.
Bytes build_data_frame(const Header& hdr, std::span<const u8> body);

/// Builds an Imm-ACK (header + HCS only).
Bytes build_imm_ack(u16 pnid, u8 dest_id, u8 src_id);

struct ParsedFrame {
  Header hdr;
  Bytes body;
  bool hcs_ok = false;
  bool fcs_ok = false;  ///< Always true for header-only frames.
};

std::optional<ParsedFrame> parse_frame(std::span<const u8> frame);

}  // namespace drmp::mac::uwb
