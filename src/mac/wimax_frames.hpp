// IEEE 802.16 (WiMAX) frame codec subset.
//
// Generic MAC header (6 bytes, 802.16-2004 §6.3.2.1.1):
//   byte 0: HT(1)=0 | EC(1) | Type(6)   (Type bits flag subheaders)
//   byte 1: rsv(1) | CI(1) | EKS(2) | rsv(1) | LEN[10:8](3)
//   byte 2: LEN[7:0]
//   byte 3..4: CID (16 bits)
//   byte 5: HCS — CRC-8 over bytes 0..4 ("for WiMAX its an 8-bit sequence",
//           thesis §2.3.2.1 #1)
//
// Subset of the per-PDU machinery the thesis calls out as WiMAX-unique
// (§2.3.2.2): packing of multiple MSDUs into one MPDU (#1), ARQ (#3),
// Connection IDs (#5), optional CRC (#2 of commonalities: "for WiMAX its
// optional", signalled by the CI bit).
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "mac/frame.hpp"

namespace drmp::mac::wimax {

inline constexpr std::size_t kGmhBytes = 6;
inline constexpr std::size_t kCrcBytes = 4;
inline constexpr std::size_t kMaxMpduBytes = 2047;  // 11-bit LEN field.

/// Type-field subheader indication bits (subset).
inline constexpr u8 kTypeFragmentation = 0x04;
inline constexpr u8 kTypePacking = 0x02;
inline constexpr u8 kTypeArqFeedback = 0x10;

/// Fragmentation control states (FC field).
enum class FragState : u8 { Unfragmented = 0, Last = 1, First = 2, Middle = 3 };

struct GenericMacHeader {
  bool ec = false;   ///< Encryption control.
  u8 type = 0;       ///< Subheader indication bits.
  bool ci = false;   ///< CRC indicator (CRC-32 appended when set).
  u8 eks = 0;        ///< Encryption key sequence.
  u16 len = 0;       ///< Total MPDU length incl. header and CRC (11 bits).
  u16 cid = 0;       ///< Connection identifier.

  Bytes encode() const;  ///< 6 bytes including the computed HCS.
  /// Decodes 6 bytes; hcs_ok reports whether the CRC-8 matched.
  static std::optional<GenericMacHeader> decode(std::span<const u8> gmh, bool* hcs_ok);
  bool operator==(const GenericMacHeader&) const = default;
};

/// Fragmentation subheader (1 byte): FC(2) | FSN(6).
struct FragSubheader {
  FragState fc = FragState::Unfragmented;
  u8 fsn = 0;  ///< 6-bit fragment sequence number.
  u8 encode() const { return static_cast<u8>((static_cast<u8>(fc) << 6) | (fsn & 0x3F)); }
  static FragSubheader decode(u8 v) {
    return FragSubheader{static_cast<FragState>(v >> 6), static_cast<u8>(v & 0x3F)};
  }
  bool operator==(const FragSubheader&) const = default;
};

/// Packing subheader (2 bytes): FC(2) | FSN(3) | LEN(11).
struct PackSubheader {
  FragState fc = FragState::Unfragmented;
  u8 fsn = 0;
  u16 len = 0;  ///< Length of the packed SDU fragment that follows.
  u16 encode() const {
    return static_cast<u16>((static_cast<u16>(fc) << 14) | ((fsn & 0x7) << 11) | (len & 0x7FF));
  }
  static PackSubheader decode(u16 v) {
    return PackSubheader{static_cast<FragState>(v >> 14), static_cast<u8>((v >> 11) & 0x7),
                         static_cast<u16>(v & 0x7FF)};
  }
  bool operator==(const PackSubheader&) const = default;
};

/// A packed SDU block inside an MPDU.
struct PackedSdu {
  PackSubheader sh;
  Bytes payload;
};

/// Builds an MPDU carrying a single (possibly fragmented) payload.
Bytes build_mpdu(u16 cid, const FragSubheader& frag, std::span<const u8> payload,
                 bool with_crc, bool encrypted = false, u8 eks = 0);

/// Builds an MPDU packing several SDU fragments (thesis §2.3.2.2 #1).
Bytes build_packed_mpdu(u16 cid, const std::vector<PackedSdu>& sdus, bool with_crc,
                        bool encrypted = false, u8 eks = 0);

struct ParsedMpdu {
  GenericMacHeader gmh;
  bool hcs_ok = false;
  bool crc_present = false;
  bool crc_ok = false;
  // Exactly one of the following is populated depending on gmh.type.
  std::optional<FragSubheader> frag;
  std::vector<PackedSdu> packed;
  Bytes payload;  ///< Single-payload case.
};

std::optional<ParsedMpdu> parse_mpdu(std::span<const u8> mpdu);

}  // namespace drmp::mac::wimax
