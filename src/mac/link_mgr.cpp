#include "mac/link_mgr.hpp"

#include <cstdint>

namespace drmp::mac {

LinkMgr::LinkMgr(Params p, const sim::TimeBase& tb, const sim::Scheduler& clock)
    : p_(p), clock_(clock), start_cycle_(tb.us_to_cycles(p.start_us)) {}

void LinkMgr::submit_mgmt(u32 bytes, u8 fill) {
  Bytes b(bytes);
  for (u32 i = 0; i < bytes; ++i) b[i] = static_cast<u8>(fill + i);
  pending_.push_back(kKindMgmt);
  send(std::move(b));
}

void LinkMgr::tick() {
  const Cycle t = now_++;
  if (started_ || t < start_cycle_) return;
  started_ = true;
  state_ = kProbing;
  submit_mgmt(p_.probe_bytes, 0x50);
}

bool LinkMgr::settled() const noexcept {
  for (u8 k : pending_) {
    if (k == kKindMgmt) return false;
  }
  return true;
}

bool LinkMgr::notify_complete(bool ok, u32 retries) {
  u8 kind = kKindTraffic;
  if (!pending_.empty()) {
    kind = pending_.front();
    pending_.pop_front();
  }
  if (kind == kKindTraffic) {
    on_traffic_complete(ok, retries);
    return false;
  }
  if (!ok) {
    // The exchange frame burnt its retries (collisions, hidden interferers):
    // relaunch the current stage rather than stranding the station.
    if (state_ == kProbing) {
      submit_mgmt(p_.probe_bytes, 0x50);
    } else if (state_ == kAssociating) {
      submit_mgmt(p_.assoc_bytes, 0xA0);
    }
    return true;
  }
  if (state_ == kProbing) {
    state_ = kAssociating;
    submit_mgmt(p_.assoc_bytes, 0xA0);
  } else if (state_ == kAssociating) {
    state_ = kAssociated;
    const auto serving_signed = static_cast<i64>(static_cast<std::int32_t>(serving_));
    if (reassoc_pending_) {
      reassoc_pending_ = false;
      ++reassociations_;
      handoff_latency_total_ += clock_.now() - handoff_started_;
      DRMP_OBS(rec_, clock_.now(), obs::EventKind::kReassociate, track_,
               p_.station_id, serving_signed);
    } else {
      DRMP_OBS(rec_, clock_.now(), obs::EventKind::kAssociate, track_,
               p_.station_id, serving_signed);
    }
    if (gate) gate(true);
  }
  return true;
}

void LinkMgr::handoff(u32 target_cell) {
  ++handoffs_;
  serving_ = target_cell;
  DRMP_OBS(rec_, clock_.now(), obs::EventKind::kHandoff, track_, p_.station_id,
           static_cast<i64>(static_cast<std::int32_t>(target_cell)));
  if (state_ == kAssociated) {
    // Drop the serving link: close the gate and re-run the exchange against
    // the new AP. In-flight traffic completes against the old link and is
    // judged by on_traffic_complete as usual.
    if (gate) gate(false);
    state_ = kProbing;
    reassoc_pending_ = true;
    handoff_started_ = clock_.now();
    submit_mgmt(p_.probe_bytes, 0x50);
  } else if (state_ == kProbing || state_ == kAssociating) {
    // Exchange already in flight: it now completes toward the new serving
    // AP — only the target bookkeeping changes.
    if (!reassoc_pending_ && started_) {
      reassoc_pending_ = true;
      handoff_started_ = clock_.now();
    }
  }
  // kIdle: the initial probe has not launched; serving retarget suffices.
}

void LinkMgr::on_traffic_complete(bool ok, u32 retries) {
  if (!ok) ++link_loss_drops_;  // Retry exhaustion: the link lost the MSDU.
  if (!p_.adapt_rate) return;
  if (!ok || retries > 0) {
    good_run_ = 0;
    if (++bad_run_ >= p_.rate_down_after) {
      bad_run_ = 0;
      shift_rate(/*down=*/true);
    }
  } else {
    bad_run_ = 0;
    if (++good_run_ >= p_.rate_up_after) {
      good_run_ = 0;
      shift_rate(/*down=*/false);
    }
  }
}

void LinkMgr::shift_rate(bool down) {
  const u32 prev = rate_idx_;
  if (down) {
    if (rate_idx_ + 1 < p_.rate_steps) ++rate_idx_;
  } else {
    if (rate_idx_ > 0) --rate_idx_;
  }
  if (rate_idx_ == prev) return;
  const Cycle at = clock_.now();
  rate_duty_ += static_cast<double>(at - rate_since_) * fraction(prev);
  rate_since_ = at;
  ++rate_shifts_;
  DRMP_OBS(rec_, at, obs::EventKind::kRateChange, track_,
           static_cast<int>(rate_idx_), down ? i64{-1} : i64{1});
}

double LinkMgr::rate_scale(Cycle at) const noexcept {
  if (at == 0) return 1.0;
  const double duty =
      rate_duty_ +
      static_cast<double>(at > rate_since_ ? at - rate_since_ : 0) *
          fraction(rate_idx_);
  return duty / static_cast<double>(at);
}

}  // namespace drmp::mac
