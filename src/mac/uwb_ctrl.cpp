#include "mac/uwb_ctrl.hpp"

#include "irc/irc.hpp"

namespace drmp::ctrl {

using api::Command;
using hw::CtrlWord;
using hw::Page;
using irc::IrqEvent;

namespace {
constexpr u32 kSmallBody = 30;
}

Bytes UwbCtrl::build_fragment_header(u32 frag_idx, bool retry) const {
  auto& ps = env_.api->ps(env_.mode);
  mac::uwb::Header h;
  h.type = mac::uwb::FrameType::Data;
  h.ack_policy = mac::uwb::AckPolicy::ImmAck;
  h.sec = true;
  h.retry = retry;
  h.pnid = env_.ident.pnid;
  h.dest_id = env_.ident.peer_dev_id;
  h.src_id = env_.ident.dev_id;
  h.msdu_num = static_cast<u16>(ps.seq_num & 0x1FF);
  h.frag_num = static_cast<u8>(frag_idx);
  h.last_frag_num = static_cast<u8>(ps.fragments_total - 1);
  h.stream_index = 1;
  return h.encode();
}

u32 UwbCtrl::start_next_msdu() {
  auto& ps = env_.api->ps(env_.mode);
  if (tx_queue_.empty() || ps.my_state != kIdle) return 0;
  const Bytes msdu = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  env_.mem->write_page_bytes(env_.mode, Page::Raw, msdu);
  ps.psdu_size = static_cast<u32>(msdu.size());
  const u32 thr = env_.ident.frag_threshold;
  ps.fragmentation_threshold = thr;
  ps.fragments_total = std::max<u32>(1, (ps.psdu_size + thr - 1) / thr);
  ps.fragments_counter = 0;
  ps.retry_count = 0;
  ps.msdu_retries = 0;
  ps.MacHdrLng = mac::uwb::kHdrBytes;
  u32 cost = 0;
  tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kUwbPrepareTx, {}, &cost);
  ps.my_state = kSeqAssigned;
  return kSmallBody + cost;
}

u32 UwbCtrl::send_fragment(u32 frag_idx, bool retry) {
  auto& ps = env_.api->ps(env_.mode);
  write_hdr_template(build_fragment_header(frag_idx, retry));
  u32 cost = 0;
  if (env_.ident.uwb_use_cap) {
    // Contention access period: CSMA with the UWB backoff parameters.
    tx_tag_ = env_.api->Request_RHCP_Service(
        env_.mode, Command::kUwbTxFragmentCap,
        {frag_idx, ps.fragmentation_threshold, ps.retry_count}, &cost);
  } else {
    tx_tag_ = env_.api->Request_RHCP_Service(
        env_.mode, Command::kUwbTxFragment,
        {frag_idx, ps.fragmentation_threshold,
         static_cast<Word>(env_.ident.tdma_offset_us),
         static_cast<Word>(env_.ident.tdma_period_us)},
        &cost);
  }
  ps.my_state = kSending;
  return kSmallBody + 36 + cost;
}

u32 UwbCtrl::handle_req_done(u32 tag) {
  auto& ps = env_.api->ps(env_.mode);
  u32 cost = 0;
  if (tag == tx_tag_) {
    switch (ps.my_state) {
      case kSeqAssigned: {
        ps.seq_num = read_status(CtrlWord::kSeqOut);
        tx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kUwbEncrypt,
                                                 {ps.seq_num, 0}, &cost);
        ps.my_state = kEncrypting;
        return kSmallBody + cost;
      }
      case kEncrypting:
        return send_fragment(0, false);
      case kSending: {
        const auto t = mac::timing_for(mac::Protocol::Uwb);
        // The TDMA wait is part of the hardware request; the ACK timeout must
        // cover a whole superframe period plus turnaround.
        env_.cpu->set_timer(
            env_.mode, kAckTimeoutTimer,
            env_.tb->us_to_cycles(env_.ident.tdma_period_us + t.ack_timeout_us));
        ps.my_state = kWaitAck;
        return kSmallBody;
      }
      default:
        return kSmallBody;
    }
  }
  if (tag == rx_tag_) {
    switch (rx_phase_) {
      case RxPhase::Extract: {
        if (rx_release) rx_release();
        if (rx_more_frag_) {
          rx_phase_ = RxPhase::Idle;
          return kSmallBody;
        }
        rx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kUwbRxFinish,
                                                 {rx_seq_, 0}, &cost);
        rx_phase_ = RxPhase::Finish;
        return kSmallBody + cost;
      }
      case RxPhase::Finish: {
        auto msdu = env_.mem->read_page_bytes(env_.mode, Page::RxOut);
        ++rx_delivered;
        ++ps.rx_pdu_count;
        if (on_deliver) on_deliver(msdu);
        rx_phase_ = RxPhase::Idle;
        return kSmallBody + 10;
      }
      default:
        return kSmallBody;
    }
  }
  return kSmallBody;
}

u32 UwbCtrl::handle_ack_ind() {
  auto& ps = env_.api->ps(env_.mode);
  if (ps.my_state != kWaitAck) return kSmallBody;
  env_.cpu->cancel_timer(env_.mode, kAckTimeoutTimer);
  ps.retry_count = 0;
  ++ps.fragments_counter;
  if (ps.fragments_counter < ps.fragments_total) {
    return send_fragment(ps.fragments_counter, false);
  }
  ++ps.tx_pdu_count;
  ++tx_ok;
  ps.my_state = kIdle;
  if (on_tx_complete) on_tx_complete(true, ps.msdu_retries);
  return kSmallBody + start_next_msdu();
}

u32 UwbCtrl::handle_ack_timeout() {
  auto& ps = env_.api->ps(env_.mode);
  if (ps.my_state != kWaitAck) return kSmallBody;
  ++ps.retry_count;
  ++ps.msdu_retries;
  const auto t = mac::timing_for(mac::Protocol::Uwb);
  if (ps.retry_count > t.max_retries) {
    ++tx_failed;
    ps.my_state = kIdle;
    if (on_tx_complete) on_tx_complete(false, ps.msdu_retries);
    return kSmallBody + start_next_msdu();
  }
  return send_fragment(ps.fragments_counter, true);
}

u32 UwbCtrl::handle_rx_ind() {
  rx_seq_ = read_status(CtrlWord::kSeq);
  rx_frag_ = read_status(CtrlWord::kFrag);
  const u32 last_frag = read_status(CtrlWord::kMoreFrag);
  rx_more_frag_ = last_frag != 0;
  const u32 src = read_status(CtrlWord::kSrcLo);
  // Software duplicate filter (9-bit MSDU number + fragment).
  const u32 key = (src << 16) | (rx_seq_ << 7) | rx_frag_;
  const bool retry = read_status(CtrlWord::kRetry) != 0;
  if (retry && key == last_rx_key_) {
    ++rx_duplicates;
    if (rx_release) rx_release();
    return kSmallBody;
  }
  last_rx_key_ = key;
  u32 cost = 0;
  rx_tag_ = env_.api->Request_RHCP_Service(env_.mode, Command::kUwbRxExtract,
                                           {rx_frag_ == 0 ? 1u : 0u}, &cost);
  rx_phase_ = RxPhase::Extract;
  return kSmallBody + cost;
}

u32 UwbCtrl::on_isr(const cpu::IsrContext& ctx) {
  switch (ctx.cause) {
    case cpu::IsrCause::HostRequest:
      return start_next_msdu();
    case cpu::IsrCause::Timer:
      if (ctx.event == kAckTimeoutTimer) return handle_ack_timeout();
      return kSmallBody;
    case cpu::IsrCause::HwInterrupt:
      switch (static_cast<IrqEvent>(ctx.event)) {
        case IrqEvent::ReqDone:
          return handle_req_done(ctx.param);
        case IrqEvent::RxInd:
          return handle_rx_ind();
        case IrqEvent::RxAckInd:
          return handle_ack_ind();
        default:
          return kSmallBody;
      }
  }
  return kSmallBody;
}

}  // namespace drmp::ctrl
