// UWB (IEEE 802.15.3) protocol control. Data flows in contention-free CTA
// slots of the superframe (TDMA), payloads are AES-protected, fragments carry
// the MSDU-number / fragment-number / last-fragment-number triple, and the
// Imm-ACK policy requires the peer's ACK one SIFS after each frame (thesis
// §2.3.2.1: superframes #8, Imm-ACK #10, device ids #9).
#pragma once

#include "mac/ctrl_common.hpp"
#include "mac/uwb_frames.hpp"

namespace drmp::ctrl {

class UwbCtrl final : public ProtocolCtrl {
 public:
  explicit UwbCtrl(CtrlEnv env) : ProtocolCtrl(std::move(env)) {}

  u32 on_isr(const cpu::IsrContext& ctx) override;

  enum TxState : u32 {
    kIdle = 0,
    kSeqAssigned,
    kEncrypting,
    kSending,
    kWaitAck,
  };

  void save_state(sim::snap::Writer& w) override {
    ProtocolCtrl::save_state(w);
    persist(w);
  }
  void load_state(sim::snap::Reader& r) override {
    ProtocolCtrl::load_state(r);
    persist(r);
  }

 private:
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(tx_tag_);
    ar.io(rx_tag_);
    ar.io(rx_phase_);
    ar.io(rx_more_frag_);
    ar.io(rx_seq_);
    ar.io(rx_frag_);
    ar.io(last_rx_key_);
  }

  u32 start_next_msdu();
  u32 send_fragment(u32 frag_idx, bool retry);
  u32 handle_req_done(u32 tag);
  u32 handle_rx_ind();
  u32 handle_ack_ind();
  u32 handle_ack_timeout();
  Bytes build_fragment_header(u32 frag_idx, bool retry) const;

  u32 tx_tag_ = 0;
  u32 rx_tag_ = 0;
  enum class RxPhase : u8 { Idle, Extract, Finish } rx_phase_ = RxPhase::Idle;
  bool rx_more_frag_ = false;
  u32 rx_seq_ = 0;
  u32 rx_frag_ = 0;
  u32 last_rx_key_ = 0xFFFFFFFF;  ///< Software duplicate filter (src|seq|frag).
};

}  // namespace drmp::ctrl
