// Per-standard traffic generators for multi-device scenario runs.
//
// One TrafficGen drives one protocol mode of one device with the offered-load
// shape that standard sees in practice:
//   * kCsmaBursts    — WiFi: bursts of MSDUs arriving together (web-page
//                      style traffic), contended onto the medium by CSMA/CA.
//   * kSlottedStream — UWB: an isochronous stream, one MSDU per CTA slot
//                      period (the thesis's media-streaming use case).
//   * kFramedUplink  — WiMAX: one uplink MSDU per TDD frame period.
//
// The generator is a Clockable registered in the device's scheduler, so
// arrival times are deterministic simulated time, not host time. Payload
// sizes and contents come from a splitmix64 PRNG seeded per (scenario,
// device, mode), making every scenario run bit-reproducible. Completions are
// fed back via notify_tx_complete() and gate new arrivals (max_inflight), so
// an overloaded device backpressures the source instead of growing its MSDU
// queue without bound.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "sim/clock.hpp"
#include "sim/scheduler.hpp"

namespace drmp::mac {

enum class TrafficPattern : u8 { kCsmaBursts, kSlottedStream, kFramedUplink };

const char* to_string(TrafficPattern p) noexcept;

struct TrafficSpec {
  bool enabled = false;
  TrafficPattern pattern = TrafficPattern::kCsmaBursts;
  u32 msdu_count = 0;        ///< Total MSDUs this generator offers.
  u32 msdu_min_bytes = 128;  ///< Payload size range (inclusive).
  u32 msdu_max_bytes = 1024;
  double start_us = 100.0;      ///< First arrival.
  double interval_us = 2000.0;  ///< Burst interval / slot period / frame period.
  u32 burst_len = 2;            ///< MSDUs per arrival event (kCsmaBursts only).
  u32 max_inflight = 2;         ///< Offered-but-uncompleted bound (backpressure).

  /// Era-typical shapes for the three prototype standards.
  static TrafficSpec wifi_csma_bursts(u32 count);
  static TrafficSpec uwb_slotted_stream(u32 count);
  static TrafficSpec wimax_framed_uplink(u32 count);
};

class TrafficGen : public sim::Clockable {
 public:
  TrafficGen(TrafficSpec spec, const sim::TimeBase& tb, u64 seed);

  /// Wired to DrmpDevice::host_send for this generator's mode.
  std::function<void(Bytes)> send;

  /// Call from the device's on_tx_complete for this mode.
  void notify_tx_complete() noexcept { ++completed_; }

  /// Association gate (mac::LinkMgr): while closed, arrival events are held
  /// — the overdue event fires on the first tick after the gate opens, then
  /// the normal interval cadence resumes from there. Toggling wakes the
  /// generator's lane, so a sleeping gated generator re-arms correctly.
  void set_gated(bool gated) {
    if (gated_ == gated) return;
    gated_ = gated;
    wake_self();
  }
  bool gated() const noexcept { return gated_; }

  void tick() override;

  // ---- Quiescence contract (sim/scheduler.hpp) ----
  /// A generator ticks for real only at its arrival events; everything in
  /// between (and everything after exhaustion) is a pure clock increment.
  /// Completions change nothing before the next event, so no wake is needed.
  /// A gated generator is a no-op until set_gated(false) wakes it.
  Cycle quiescent_for() const override {
    if (!spec_.enabled || exhausted() || gated_) return kIdleForever;
    return next_event_ > now_ ? next_event_ - now_ : 0;
  }
  void skip_idle(Cycle n) override { now_ += n; }

  u32 offered() const noexcept { return offered_; }
  u32 completed() const noexcept { return completed_; }
  u64 offered_bytes() const noexcept { return offered_bytes_; }
  /// All MSDUs offered.
  bool exhausted() const noexcept { return offered_ >= spec_.msdu_count; }
  /// All MSDUs offered and every one of them reported complete — the
  /// early-exit predicate for fleet lanes.
  bool drained() const noexcept { return exhausted() && completed_ >= offered_; }

  const TrafficSpec& spec() const noexcept { return spec_; }

  /// Checkpoint support (sim/checkpoint.hpp): the arrival clock and the PRNG
  /// stream position. The spec and the derived interval are configuration.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(now_);
    ar.io(next_event_);
    ar.io(offered_);
    ar.io(completed_);
    ar.io(offered_bytes_);
    ar.io(rng_state_);
  }

 private:
  u64 next_rand() noexcept;
  Bytes make_payload();

  TrafficSpec spec_;
  Cycle now_ = 0;
  Cycle next_event_;
  Cycle interval_cycles_;
  u32 offered_ = 0;
  u32 completed_ = 0;
  u64 offered_bytes_ = 0;
  u64 rng_state_;
  /// Not persisted: derived from the owning link manager's state, which the
  /// cell re-applies after a checkpoint load — keeping the pre-existing
  /// generator record layout (and the committed golden snapshot) intact.
  bool gated_ = false;
};

}  // namespace drmp::mac
