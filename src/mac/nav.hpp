// NAV — the Network Allocation Vector, 802.11's *virtual* carrier sense.
//
// Every WiFi frame carries a duration field announcing how long the medium
// stays reserved after it ends (SIFS gaps + the rest of the exchange). A
// station that overhears a frame addressed to somebody else arms its NAV for
// that long and treats the medium as busy even when its CCA hears nothing —
// which is exactly what rescues the hidden-node topology: the hidden station
// cannot hear the data frame it would collide with, but it *can* hear the
// AP's CTS, whose duration covers the whole protected exchange.
//
// One NavTimer per (device, mode). The Event Handler arms it from overheard
// RTS/CTS/ACK/data durations and truncates it on CF-End / CF-End+CF-Ack
// (drmp/event_handler.cpp); the BackoffRfu consults it alongside physical
// CCA as a combined virtual-or-physical busy gate (rfu/backoff_rfu.cpp).
// Arming AND resetting wake the subscribed access RFU so the quiescence
// contract holds: a sleeping backoff countdown must re-evaluate when a
// reservation lands or collapses, and its sleep bounds respect expiry().
#pragma once

#include <vector>

#include "common/types.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/scheduler.hpp"

namespace drmp::mac {

class NavTimer {
 public:
  /// Arms (extends) the reservation until `until`. `now` gates no-op arms:
  /// a zero/expired duration neither counts nor wakes anyone. The NAV only
  /// ever grows — a shorter overheard reservation inside a longer one is
  /// already covered.
  void arm(Cycle until, Cycle now) {
    if (until <= now) return;
    ++arms_;
    DRMP_OBS(rec_, now, obs::EventKind::kNavArm, rec_track_,
             static_cast<i64>(until));
    if (until > until_) {
      // Wake before mutating (sim/scheduler.hpp contract): a sleeping
      // access RFU is settled against the pre-arm state first.
      for (sim::Clockable* c : subs_) c->wake_self();
      until_ = until;
    }
  }

  /// Truncates a live reservation at `now` (802.11 CF-End: "stations
  /// receiving a CF-End frame shall reset their NAV"). A sleeping deferrer's
  /// bound was the old expiry, so subscribers are woken *before* the
  /// mutation — they settle against the pre-reset state, then re-evaluate
  /// immediately instead of sleeping out a reservation that no longer
  /// exists. A lapsed NAV neither counts nor wakes anyone.
  void reset(Cycle now) {
    if (until_ <= now) return;
    ++resets_;
    DRMP_OBS(rec_, now, obs::EventKind::kNavReset, rec_track_,
             static_cast<i64>(until_));
    for (sim::Clockable* c : subs_) c->wake_self();
    until_ = now;
  }

  /// Virtual carrier: is the medium reserved at clock value `at`?
  bool active(Cycle at) const noexcept { return at < until_; }
  /// First clock value at which the current reservation has lapsed (a sleep
  /// bound: only arm() — which wakes subscribers — can push it later;
  /// reset() only pulls it earlier, and also wakes).
  Cycle expiry() const noexcept { return until_; }
  /// Overheard reservations honoured over the device's lifetime.
  u64 arms() const noexcept { return arms_; }
  /// CF-End truncations honoured over the device's lifetime.
  u64 resets() const noexcept { return resets_; }

  /// Registers a component to wake when a reservation lands. Idempotent.
  void subscribe(sim::Clockable& c) {
    for (const sim::Clockable* s : subs_) {
      if (s == &c) return;
    }
    subs_.push_back(&c);
  }

  /// Attaches a flight recorder (null detaches): arm/reset edges land on
  /// `track`. Both sites run inside executed device ticks, so the stream is
  /// deterministic across skip modes.
  void set_recorder(obs::FlightRecorder* rec, u16 track) noexcept {
    rec_ = rec;
    rec_track_ = track;
  }

  /// Checkpoint support (sim/checkpoint.hpp); subscribers are wiring.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(until_);
    ar.io(arms_);
    ar.io(resets_);
  }

 private:
  Cycle until_ = 0;
  u64 arms_ = 0;
  u64 resets_ = 0;
  std::vector<sim::Clockable*> subs_;
  obs::FlightRecorder* rec_ = nullptr;
  u16 rec_track_ = 0;
};

}  // namespace drmp::mac
