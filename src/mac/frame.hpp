// Byte-stream reader/writer helpers shared by the three frame codecs.
#pragma once

#include <array>
#include <span>
#include <stdexcept>

#include "common/types.hpp"

namespace drmp::mac {

/// Sequential byte writer over a growing buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8_(u8 v) { out_.push_back(v); }
  void u16le(u16 v) { put_le16(out_, v); }
  void u32le(u32 v) { put_le32(out_, v); }
  void bytes(std::span<const u8> b) { out_.insert(out_.end(), b.begin(), b.end()); }

 private:
  Bytes& out_;
};

/// Sequential byte reader with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> in) : in_(in) {}

  u8 u8_() { return in_[need(1)]; }
  u16 u16le() {
    const auto off = need(2);
    return get_le16(in_, off);
  }
  u32 u32le() {
    const auto off = need(4);
    return get_le32(in_, off);
  }
  Bytes bytes(std::size_t n) {
    const auto off = need(n);
    return Bytes(in_.begin() + static_cast<std::ptrdiff_t>(off),
                 in_.begin() + static_cast<std::ptrdiff_t>(off + n));
  }
  std::size_t remaining() const noexcept { return in_.size() - pos_; }
  std::size_t pos() const noexcept { return pos_; }

 private:
  std::size_t need(std::size_t n) {
    if (pos_ + n > in_.size()) throw std::out_of_range("frame truncated");
    const std::size_t off = pos_;
    pos_ += n;
    return off;
  }
  std::span<const u8> in_;
  std::size_t pos_ = 0;
};

/// A 48-bit IEEE 802 MAC address (used by WiFi; UWB swaps these for 1-byte
/// device ids at association, thesis §2.3.2.1 commonality #9).
struct MacAddr {
  std::array<u8, 6> b{};
  bool operator==(const MacAddr&) const = default;
  static MacAddr from_u64(u64 v) {
    MacAddr a;
    for (int i = 0; i < 6; ++i) a.b[i] = static_cast<u8>(v >> (8 * i));
    return a;
  }
  u64 to_u64() const {
    u64 v = 0;
    for (int i = 0; i < 6; ++i) v |= static_cast<u64>(b[i]) << (8 * i);
    return v;
  }
};

inline constexpr u64 kBroadcastMac = 0xFFFFFFFFFFFFull;

}  // namespace drmp::mac
