// Protocol identities and MAC timing parameters for the three standards the
// DRMP prototype targets (thesis §1.2): WiFi (IEEE 802.11), WiMAX (IEEE
// 802.16) and UWB / High-rate WPAN (IEEE 802.15.3).
#pragma once

#include "common/types.hpp"

namespace drmp::mac {

enum class Protocol : u8 { WiFi = 0, WiMax = 1, Uwb = 2 };

inline const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::WiFi: return "WiFi(802.11)";
    case Protocol::WiMax: return "WiMAX(802.16)";
    case Protocol::Uwb: return "UWB(802.15.3)";
  }
  return "?";
}

/// MAC-level timing constants. Values follow the base standards of the era
/// the thesis studies (802.11b DSSS, 802.15.3-2003, 802.16-2004).
struct ProtocolTiming {
  double sifs_us;       ///< Short inter-frame space (ACK turnaround budget).
  double difs_us;       ///< DIFS (WiFi) / backoff IFS (UWB CAP); 0 if unused.
  double slot_us;       ///< Contention slot time; 0 if unused.
  u32 cw_min;           ///< Min contention window (slots); 0 if unused.
  u32 cw_max;           ///< Max contention window (slots).
  double line_rate_bps; ///< PHY payload rate the MAC must sustain.
  double frame_us;      ///< TDD frame period (WiMAX) / superframe (UWB); 0 if n/a.
  double ack_timeout_us;///< How long a transmitter waits for an ACK.
  u32 max_retries;      ///< Retry limit before the MPDU is dropped.
};

ProtocolTiming timing_for(Protocol p);

/// The protocol's CCA detection-latency default: one contention slot, or
/// SIFS where the protocol has no slotted contention. Single source for
/// net::ContendedMedium's collision window and the perishable-response
/// tolerances below.
inline double cca_latency_default_us(const ProtocolTiming& t) {
  return t.slot_us > 0.0 ? t.slot_us : t.sifs_us;
}

/// Lateness tolerance for a perishable SIFS response (ACK/CTS/CTS-released
/// data): the trigger frame's perceived tail (detection latency) plus one
/// SIFS of grace. A response that cannot *start* within this window belongs
/// to an exchange that has moved on and is abandoned to the peer's
/// timeout/retry machinery (see phy::TxFrameEntry::latest_start).
inline double response_slack_us(const ProtocolTiming& t) {
  return cca_latency_default_us(t) + t.sifs_us;
}

/// Broadcast / reserved addressing constants.
inline constexpr u16 kUwbBroadcastDevId = 0xFF;

}  // namespace drmp::mac
