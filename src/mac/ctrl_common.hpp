// Shared scaffolding for the per-protocol control software (thesis Ch. 4):
// the interrupt-driven protocol state machines that run on the CPU model.
// "The interrupt-handler for a protocol mode loads the current state of the
// protocol state-machine when invoked. It then runs the state-machine to the
// next state, where it either requests service from the Hardware
// Co-processor, or — if it is a terminal state — returns results to the
// application processor" (§4.1).
#pragma once

#include <deque>
#include <functional>

#include "cpu/cpu_model.hpp"
#include "drmp/api.hpp"
#include "hw/packet_memory.hpp"
#include "mac/protocol.hpp"
#include "sim/checkpoint.hpp"
#include "sim/clock.hpp"

namespace drmp::ctrl {

/// Host (application-processor) request ids.
inline constexpr u32 kHostTxRequest = 1;

/// Software timer ids.
inline constexpr u32 kAckTimeoutTimer = 1;
inline constexpr u32 kRetryBackoffTimer = 2;
inline constexpr u32 kCtsTimeoutTimer = 3;

/// RxAckInd interrupt param values: which WiFi control frame arrived.
inline constexpr Word kAckParamAck = 0;
inline constexpr Word kAckParamCts = 1;

/// RxInd interrupt param values (WiFi PCF, §2.3.2.1 #5/#8/#11).
inline constexpr Word kRxParamData = 0;       ///< Normal data delivered upward.
inline constexpr Word kRxParamCfPoll = 2;     ///< CF-Poll (no piggyback ack).
inline constexpr Word kRxParamCfPollAck = 3;  ///< CF-Ack + CF-Poll.
inline constexpr Word kRxParamCfEnd = 4;      ///< CF-End.
inline constexpr Word kRxParamCfEndAck = 5;   ///< CF-End + CF-Ack.
inline constexpr Word kRxParamBeacon = 6;     ///< Beacon (passive scanning).

/// Per-mode identity / medium parameters from the device configuration.
struct ModeIdentity {
  mac::Protocol proto = mac::Protocol::WiFi;
  u64 self_addr = 0;   ///< WiFi MAC address.
  u64 peer_addr = 0;   ///< Default destination.
  u16 pnid = 0;        ///< UWB piconet id.
  u8 dev_id = 0;       ///< UWB device id.
  u8 peer_dev_id = 0;  ///< UWB destination device id.
  u16 basic_cid = 0;   ///< WiMAX connection id fallback.
  double tdma_offset_us = 0.0;
  double tdma_period_us = 0.0;
  u32 frag_threshold = 1024;  ///< Bytes; must be word-aligned.
  /// WiFi RTS/CTS handshake threshold (§2.3.2.2 #10): MSDUs of this many
  /// bytes or more are preceded by an RTS. 0 disables the handshake (the
  /// thesis prototype's setting).
  u32 rts_threshold = 0;
  /// WiFi NAV virtual carrier sense: honour the duration fields of overheard
  /// frames (RTS/CTS/ACK/data addressed elsewhere) as medium reservations
  /// alongside physical CCA. Off by default — the thesis prototype and the
  /// PR-2/3 contention workloads defer on carrier sense alone, and their
  /// digests are pinned; hidden-node scenarios switch it on.
  bool nav_enabled = false;
  /// WiFi EIFS (802.11 §9.2.3.4): after a reception whose FCS failed, defer
  /// EIFS = SIFS + ACK air time + DIFS instead of DIFS before contending —
  /// the damaged frame may have been data whose invisible ACK must not be
  /// stepped on. A subsequent clean reception cancels the extension. Off by
  /// default: PR-2/3/4 contention timelines treat garbled receptions as
  /// silent drops, and their digests are pinned.
  bool eifs_enabled = false;
  /// WiFi SIFS-spaced fragment bursts (802.11 §9.1.4): follow-on fragments
  /// of a fragmented MSDU fly SIFS after their ACK — anchored perishable
  /// responses like the CTS-released data — with each fragment's (and ACK's)
  /// Duration field chaining the NAV through the next fragment's ACK, so the
  /// burst holds the medium. Off by default: historic cells re-contend per
  /// fragment (the documented PR-2 simplification) and their digests are
  /// pinned.
  bool frag_burst_enabled = false;
  /// WiFi PCF (§2.3.2.1 #5/#8): as a CF-pollable station, transmit only when
  /// polled by the point coordinator; uplink data is acknowledged by the
  /// piggybacked CF-Ack on the next poll (#11). Off = plain DCF.
  bool pcf_poll_mode = false;
  /// UWB: use the contention access period (CSMA) instead of a CTA slot.
  bool uwb_use_cap = false;
  /// Stations this mode contends with on a shared medium (0 on a
  /// point-to-point link). Widens the worst-case channel-access estimate in
  /// the ACK/CTS timeout budgets: each contender may win the channel once —
  /// access plus a full frame exchange — ahead of us per attempt.
  u32 contenders = 0;
};

/// WiMAX ARQ-feedback frames are addressed to this reserved CID.
inline constexpr u16 kArqFeedbackCid = 0xFEED;

struct CtrlEnv {
  Mode mode = Mode::A;
  ModeIdentity ident;
  api::cDRMP* api = nullptr;
  hw::PacketMemory* mem = nullptr;
  cpu::CpuModel* cpu = nullptr;
  const sim::TimeBase* tb = nullptr;
};

/// Base class for the three protocol controllers.
class ProtocolCtrl {
 public:
  explicit ProtocolCtrl(CtrlEnv env) : env_(std::move(env)) {}
  virtual ~ProtocolCtrl() = default;

  /// The mode's interrupt handler body; returns the instruction count
  /// executed (fed to the CPU cost model).
  virtual u32 on_isr(const cpu::IsrContext& ctx) = 0;

  /// Host side: enqueue an MSDU for transmission (DMA into the Raw page
  /// happens when the controller starts on it) and interrupt the CPU.
  void host_enqueue(Bytes msdu) {
    tx_queue_.push_back(std::move(msdu));
    env_.cpu->post_host_request(env_.mode, kHostTxRequest);
  }

  /// Upward delivery of a reassembled, decrypted MSDU.
  std::function<void(const Bytes&)> on_deliver;
  /// Transmission outcome report to the application.
  std::function<void(bool success, u32 retries)> on_tx_complete;
  /// Ask the Event Handler to free the Rx page for the next frame.
  std::function<void()> rx_release;

  // ---- Statistics ----
  u32 tx_ok = 0;
  u32 tx_failed = 0;
  u32 rx_delivered = 0;
  u32 rx_duplicates = 0;

  // ---- Checkpoint support (sim/checkpoint.hpp) ----
  /// Base queue + outcome counters; subclasses extend the pair with their
  /// state-machine context (the durable half lives in api::ProtocolState,
  /// serialized with the cDRMP API object).
  virtual void save_state(sim::snap::Writer& w) { persist_base(w); }
  virtual void load_state(sim::snap::Reader& r) { persist_base(r); }

 protected:
  template <class Ar>
  void persist_base(Ar& ar) {
    ar.io(tx_queue_);
    ar.io(tx_ok);
    ar.io(tx_failed);
    ar.io(rx_delivered);
    ar.io(rx_duplicates);
  }

  Word read_status(hw::CtrlWord w) const {
    return env_.mem->cpu_read(hw::ctrl_status_addr(env_.mode, w));
  }
  void write_hdr_template(const Bytes& hdr) {
    // The header template is a mini-page inside the Ctrl page payload.
    const u32 base = hw::ctrl_hdr_tmpl_addr(env_.mode);
    env_.mem->cpu_write(base + hw::kPageLenOffset, static_cast<Word>(hdr.size()));
    const auto words = pack_words(hdr);
    for (std::size_t i = 0; i < words.size(); ++i) {
      env_.mem->cpu_write(base + hw::kPageDataOffset + static_cast<u32>(i), words[i]);
    }
  }

  CtrlEnv env_;
  std::deque<Bytes> tx_queue_;
};

}  // namespace drmp::ctrl
