#include "est/gates.hpp"

namespace drmp::est {

u32 Design::total_gates() const {
  u32 g = 0;
  for (const auto& b : blocks_) g += b.gates;
  return g;
}

u32 Design::total_sram_bits() const {
  u32 s = 0;
  for (const auto& b : blocks_) s += b.sram_bits;
  return s;
}

double Design::area_mm2(const Process& p) const {
  const double logic = static_cast<double>(total_gates()) * p.um2_per_gate;
  const double mem = static_cast<double>(total_sram_bits()) * p.um2_per_sram_bit;
  return (logic + mem) / 1e6;
}

// ---------------------------------------------------------------- Catalog
//
// Gate counts are NAND2-equivalents anchored to published figures of the
// era (2005-2008): ARM7TDMI-class core ~70-100k gates; AES-128 cores
// 20-30k; DES ~15k; RC4 ~10k; CRC engines 1-3k; 802.11 MAC accelerators
// (Panic et al.) ~200k gates total with CPU; 802.16 MAC SoCs ~350k.

namespace {

Block cpu_core(u32 gates = 90'000) { return {"cpu_core", gates, 16 * 1024 * 8}; }

}  // namespace

Design conventional_wifi_mac() {
  return Design("WiFi MAC (conventional)",
                {
                    cpu_core(80'000),
                    {"tx_rx_fsm", 18'000, 0},
                    {"crc32_fcs", 2'800, 0},
                    {"crc16_hcs", 1'500, 0},
                    {"wep_rc4", 11'000, 2048},
                    {"aes_ccmp", 24'000, 1024},
                    {"frag_defrag", 7'500, 0},
                    {"backoff_timer", 5'200, 0},
                    {"host_dma_if", 9'000, 0},
                    {"phy_if", 4'000, 0},
                    {"buffers_sram", 2'000, 64 * 1024 * 8},
                });
}

Design conventional_uwb_mac() {
  return Design("UWB MAC (conventional)",
                {
                    cpu_core(70'000),
                    {"tx_rx_fsm", 16'000, 0},
                    {"crc32_fcs", 2'800, 0},
                    {"crc16_hcs", 1'500, 0},
                    {"aes_ccm", 26'000, 1024},
                    {"frag_defrag", 7'000, 0},
                    {"superframe_timer", 6'500, 0},
                    {"imm_ack_gen", 3'500, 0},
                    {"host_dma_if", 9'000, 0},
                    {"phy_if", 4'500, 0},
                    {"buffers_sram", 2'000, 48 * 1024 * 8},
                });
}

Design conventional_wimax_mac() {
  return Design("WiMAX MAC (conventional)",
                {
                    cpu_core(100'000),
                    {"tx_rx_fsm", 22'000, 0},
                    {"crc32", 2'800, 0},
                    {"crc8_hcs", 900, 0},
                    {"des_3des", 16'000, 1024},
                    {"aes", 24'000, 1024},
                    {"pack_frag", 12'000, 0},
                    {"arq_engine", 15'000, 4096},
                    {"classifier", 8'000, 8192},
                    {"scheduler_tdd", 11'000, 0},
                    {"host_dma_if", 9'000, 0},
                    {"phy_if", 5'000, 0},
                    {"buffers_sram", 2'000, 96 * 1024 * 8},
                });
}

const std::map<std::string, Block>& drmp_rfu_blocks() {
  // The DRMP's coarse-grained, function-specific RFUs. Each carries a small
  // reconfiguration overhead (interface logic + context registers) over the
  // equivalent fixed block — the price of flexibility the thesis accepts in
  // exchange for sharing the unit across three protocols (§3.6.2).
  static const std::map<std::string, Block> blocks = {
      {"crypto", {"rfu_crypto(RC4/AES/DES)", 34'000, 4096}},
      {"hdr_check", {"rfu_hdr_check(CRC16/8)", 2'600, 128}},
      {"fcs", {"rfu_fcs(CRC32+snoop)", 4'200, 256}},
      {"frag", {"rfu_frag", 4'800, 128}},
      {"defrag", {"rfu_defrag", 4'800, 128}},
      {"header", {"rfu_header(asm/parse)", 13'000, 1024}},
      {"tx", {"rfu_tx_fsm", 7'500, 256}},
      {"rx", {"rfu_rx_fsm", 7'500, 256}},
      {"ack", {"rfu_ack_gen", 4'000, 128}},
      {"backoff", {"rfu_access_timing", 6'800, 256}},
      {"pack", {"rfu_pack", 6'000, 128}},
      {"arq", {"rfu_arq", 12'000, 4096}},
      {"classifier", {"rfu_classifier", 5'500, 8192}},
      {"seq", {"rfu_seq", 2'200, 512}},
  };
  return blocks;
}

Design drmp_design() {
  std::vector<Block> blocks = {
      cpu_core(80'000),  // One CPU replaces three (§1.3).
      {"irc(7 controllers+tables)", 14'000, 2048},
      {"packet_bus+arbiter", 3'500, 0},
      {"trigger_logic", 1'200, 0},
      {"event_handler", 3'000, 0},
      {"tx_rx_buffers", 3'600, 3 * 8 * 1024 * 8},
      {"packet_memory", 1'000, 76 * 1024 * 8},
      {"reconfig_memory", 500, 8 * 1024 * 8},
      {"phy_if_wrappers", 6'000, 0},
      {"host_dma_if", 9'000, 0},
  };
  for (const auto& [k, b] : drmp_rfu_blocks()) blocks.push_back(b);
  return Design("DRMP", std::move(blocks));
}

}  // namespace drmp::est
