// Gate-count catalog and area model (thesis §6.1, Tables 6.1-6.3).
//
// The thesis derives its area/power estimates from third-party synthesis
// reports of single-protocol MAC SoCs (Panic et al. for WiFi, Sung for
// WiMAX, hardware-accelerated 802.15.3 implementations for UWB) and then
// budgets the DRMP by composing its blocks. This library reproduces that
// estimation methodology: a per-block gate catalog anchored to era-typical
// published figures, plus process scaling to silicon area.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace drmp::est {

/// A synthesizable block with an estimated NAND2-equivalent gate count and
/// an optional SRAM macro (bits counted separately — memory dominates area
/// but not gate count).
struct Block {
  std::string name;
  u32 gates = 0;       ///< NAND2-equivalent gate count.
  u32 sram_bits = 0;   ///< Embedded memory bits.
};

/// Process node parameters for area conversion.
struct Process {
  std::string name = "130nm";
  /// NAND2 area including routing overhead (um^2/gate). ~6.5 um^2 raw at
  /// 130 nm; x1.8 routed.
  double um2_per_gate = 11.7;
  /// SRAM density (um^2/bit), 130 nm single-port.
  double um2_per_sram_bit = 2.5;
  double vdd = 1.2;
  /// Switched capacitance per gate (F) for the dynamic-power model.
  double cap_per_gate_f = 1.1e-15;
  /// Leakage per gate (W) at 130 nm.
  double leak_per_gate_w = 2.0e-9;
};

/// A composed design: a named set of blocks.
class Design {
 public:
  Design(std::string name, std::vector<Block> blocks)
      : name_(std::move(name)), blocks_(std::move(blocks)) {}

  const std::string& name() const { return name_; }
  const std::vector<Block>& blocks() const { return blocks_; }

  u32 total_gates() const;
  u32 total_sram_bits() const;
  /// Logic + memory area in mm^2 for the given process.
  double area_mm2(const Process& p) const;

 private:
  std::string name_;
  std::vector<Block> blocks_;
};

// ---- Catalog builders --------------------------------------------------

/// Table 6.1 stand-in: block-level synthesis estimate of a conventional
/// single-protocol WiFi MAC (CPU + fixed accelerators), anchored to Panic
/// et al.'s 802.11 MAC SoC breakdown.
Design conventional_wifi_mac();
/// Conventional UWB (802.15.3) MAC.
Design conventional_uwb_mac();
/// Conventional WiMAX (802.16) MAC.
Design conventional_wimax_mac();

/// The DRMP: one CPU, the IRC, the heterogeneous RFU pool, memories and
/// interconnect — replacing the three conventional MACs above.
Design drmp_design();

/// Per-RFU gate estimates (keyed by the RFU names used in the simulator) so
/// power can be weighted by measured per-RFU activity.
const std::map<std::string, Block>& drmp_rfu_blocks();

}  // namespace drmp::est
