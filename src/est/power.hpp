// Activity-based power model (thesis §6.1-6.2, Tables 6.4-6.5).
//
// P_dyn = alpha * C_eff * Vdd^2 * f summed over blocks, plus leakage.
// The activity factor alpha per block comes from the *measured busy
// fractions of the cycle-accurate simulation* — reproducing the paper's
// argument chain: large time slack (Fig. 6.1) -> clock gating / power
// shut-off / DVFS (§6.2) -> hand-held-compatible power.
#pragma once

#include <map>
#include <string>

#include "est/gates.hpp"

namespace drmp::est {

/// Power-management technique set (§6.2 discusses clock gating, PSO/power
/// shut-off and DVFS as the techniques the DRMP's idle slack enables).
struct PowerTechniques {
  bool clock_gating = false;  ///< Dynamic power scales with busy fraction.
  bool power_shutoff = false; ///< Leakage scales with busy fraction (+10% floor).
  bool dvfs = false;          ///< Voltage tracks the minimum viable frequency.
  double dvfs_freq_scale = 1.0;  ///< f_min / f_nominal when dvfs is on.
};

struct PowerBreakdown {
  double dynamic_mw = 0.0;
  double leakage_mw = 0.0;
  double total_mw() const { return dynamic_mw + leakage_mw; }
};

/// Computes the power of a design at frequency `f_hz`, with per-block
/// activity factors (default activity used when a block has no entry).
PowerBreakdown estimate_power(const Design& d, const Process& p, double f_hz,
                              const std::map<std::string, double>& activity,
                              double default_activity, PowerTechniques tech = {});

/// Voltage scaling rule of thumb for DVFS: V ~ V_nom * (0.4 + 0.6 * f/f_nom),
/// clamped to >= 0.6 * V_nom.
double dvfs_voltage(double vdd_nominal, double freq_scale);

}  // namespace drmp::est
