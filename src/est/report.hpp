// Tabular report formatting for the Chapter-6 bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace drmp::est {

/// A simple fixed-width text table (the benches print the same rows the
/// paper's tables report).
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  void print(std::ostream& os) const;

  static std::string num(double v, int precision = 2);
  static std::string gates(u32 g);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace drmp::est
