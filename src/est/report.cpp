#include "est/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace drmp::est {

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::gates(u32 g) {
  std::ostringstream os;
  if (g >= 1000) {
    os << std::fixed << std::setprecision(1) << static_cast<double>(g) / 1000.0 << "k";
  } else {
    os << g;
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  auto line = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto row = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < r.size() ? r[i] : "";
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  line();
  row(headers_);
  line();
  for (const auto& r : rows_) row(r);
  line();
}

}  // namespace drmp::est
