#include "est/power.hpp"

#include <algorithm>

namespace drmp::est {

double dvfs_voltage(double vdd_nominal, double freq_scale) {
  const double v = vdd_nominal * (0.4 + 0.6 * freq_scale);
  return std::max(v, 0.6 * vdd_nominal);
}

PowerBreakdown estimate_power(const Design& d, const Process& p, double f_hz,
                              const std::map<std::string, double>& activity,
                              double default_activity, PowerTechniques tech) {
  PowerBreakdown out;
  const double f = tech.dvfs ? f_hz * tech.dvfs_freq_scale : f_hz;
  const double vdd = tech.dvfs ? dvfs_voltage(p.vdd, tech.dvfs_freq_scale) : p.vdd;

  for (const auto& b : d.blocks()) {
    double alpha = default_activity;
    auto it = activity.find(b.name);
    if (it != activity.end()) alpha = it->second;

    // Without clock gating the clock tree toggles regardless of work:
    // effective switching activity has a fixed floor.
    const double eff_alpha = tech.clock_gating ? alpha : std::max(alpha, 0.25);

    const double cap = static_cast<double>(b.gates) * p.cap_per_gate_f +
                       static_cast<double>(b.sram_bits) * 0.05e-15;
    out.dynamic_mw += eff_alpha * cap * vdd * vdd * f * 1e3;

    double leak = static_cast<double>(b.gates) * p.leak_per_gate_w;
    if (tech.power_shutoff) {
      // Power-gated blocks leak only while powered; 10% always-on floor
      // (retention + wake logic).
      leak *= std::max(alpha, 0.10);
    }
    out.leakage_mw += leak * 1e3 * (vdd / p.vdd) * (vdd / p.vdd);
  }
  return out;
}

}  // namespace drmp::est
