#include "phy/phy_model.hpp"

#include <stdexcept>

namespace drmp::phy {

Cycle Medium::begin_tx(Bytes frame, int source) {
  if (busy()) {
    // Point-to-point contract violation. This used to be assert()-only,
    // which compiles out under NDEBUG and let Release builds overwrite an
    // in-flight frame silently; overlap is now a defined outcome in every
    // build type: a hard error here, a counted collision in
    // net::ContendedMedium.
    throw std::logic_error(
        "phy::Medium::begin_tx: overlapping transmission on the point-to-point "
        "medium (source " +
        std::to_string(source) + "); use net::ContendedMedium for contention");
  }
  const Cycle end = now_ + frame_air_cycles(frame.size());
  tx_end_ = end;
  in_flight_.push_back(InFlight{std::move(frame), end, source});
  return end;
}

void Medium::deliver(Bytes& frame, Cycle rx_end_cycle, int source) {
  if (tamper && tamper(frame)) ++tampered_;
  for (MediumClient* c : clients_) c->on_frame(frame, rx_end_cycle, source);
}

void Medium::tick() {
  if (busy()) ++busy_cycles_;
  ++now_;
  // Deliver frames whose last byte has now arrived.
  for (std::size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].end <= now_) {
      deliver(in_flight_[i].frame, in_flight_[i].end, in_flight_[i].source);
      in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void PhyTx::tick() {
  if (!buf_.frame_pending()) return;
  const TxFrameEntry& f = buf_.front();
  if (medium_.now() < f.earliest_start) return;
  // Half-duplex: the radio knows it is transmitting without CCA — with a
  // contended medium's detection latency it cannot *hear* its own signal,
  // and popping the next queued frame early would collide with itself.
  if (transmitting()) return;
  if (medium_.cca_busy()) return;
  TxFrameEntry e = buf_.pop();
  last_tx_start_ = medium_.now();
  last_tx_end_ = medium_.begin_tx(std::move(e.bytes), source_id_);
  ++frames_sent_;
}

}  // namespace drmp::phy
