#include "phy/phy_model.hpp"

#include <stdexcept>

#include "sim/checkpoint.hpp"

namespace drmp::phy {

Cycle Medium::begin_tx(Bytes frame, int source) {
  wake_subscribers();
  if (busy()) {
    // Point-to-point contract violation. This used to be assert()-only,
    // which compiles out under NDEBUG and let Release builds overwrite an
    // in-flight frame silently; overlap is now a defined outcome in every
    // build type: a hard error here, a counted collision in
    // net::ContendedMedium.
    throw std::logic_error(
        "phy::Medium::begin_tx: overlapping transmission on the point-to-point "
        "medium (source " +
        std::to_string(source) + "); use net::ContendedMedium for contention");
  }
  const Cycle end = now_ + frame_air_cycles(frame.size());
  tx_end_ = end;
  in_flight_.push_back(InFlight{std::move(frame), end, source});
  if (on_tx) on_tx(now_, end, source);
  return end;
}

void Medium::begin_remote_tx(Cycle /*start*/, Cycle /*end*/, int source) {
  throw std::logic_error(
      "phy::Medium::begin_remote_tx: the point-to-point medium cannot carry "
      "foreign carrier (source " +
      std::to_string(source) + "); co-channel coupling needs net::ContendedMedium");
}

void Medium::deliver(Bytes& frame, Cycle rx_end_cycle, int source, bool pre_damaged) {
  bool bad = pre_damaged;
  if (tamper && tamper(frame)) {
    ++tampered_;
    bad = true;
  }
  record_rx_quality(source, rx_end_cycle, bad);
  for (const Attached& a : clients_) a.client->on_frame(frame, rx_end_cycle, source);
}

void Medium::tick() {
  if (busy()) ++busy_cycles_;
  ++now_;
  // Deliver frames whose last byte has now arrived; their storage goes back
  // to the cell arena for the next staged frame.
  for (std::size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].end <= now_) {
      deliver(in_flight_[i].frame, in_flight_[i].end, in_flight_[i].source);
      arena_.release(std::move(in_flight_[i].frame));
      in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

Cycle Medium::quiescent_for() const {
  // now_ equals the index of the next tick at both contract evaluation
  // points. The only tick with an effect beyond occupancy accounting is a
  // delivery, first executed at cycle end-1 (the tick whose increment makes
  // end <= now_).
  if (in_flight_.empty()) return sim::Clockable::kIdleForever;
  Cycle next_end = sim::Clockable::kIdleForever;
  for (const InFlight& f : in_flight_) next_end = std::min(next_end, f.end);
  return sim::ticks_until_reading(next_end, now_);
}

void Medium::skip_idle(Cycle n) {
  account_busy_skip(n);
  now_ += n;
}

Cycle PhyTx::quiescent_for() const {
  if (!buf_.frame_pending()) return sim::Clockable::kIdleForever;
  const TxFrameEntry& f = buf_.front();
  // The first tick that could transmit observes `ready`, the first clock
  // value every gate admits. Carrier extensions only push `ready` later and
  // wake us through the medium's subscriber list. A perishable frame that
  // cannot make its deadline is dropped by the tick observing the expiry
  // instead — that tick may unblock the next queued frame, so it must run.
  Cycle ready =
      std::max({f.earliest_start, last_tx_end_, medium_.cca_clear_at(source_id_)});
  if (f.latest_start < ready) ready = f.latest_start + 1;  // The drop tick.
  return sim::ticks_until_reading(ready, medium_.now());
}

void PhyTx::tick() {
  if (!buf_.frame_pending()) return;
  const TxFrameEntry& f = buf_.front();
  if (f.latest_start < medium_.now()) {
    // Perishable response past its deadline: abandon it (the peer's
    // timeout/retry machinery recovers). Deferring it to the next carrier-
    // clear edge would release every station's stale response on the same
    // cycle — a guaranteed pile-up.
    ++expired_by_kind_[static_cast<std::size_t>(f.kind)];
    DRMP_OBS(rec_, medium_.now(), obs::EventKind::kExpiry, rec_track_,
             static_cast<i64>(f.kind));
    TxFrameEntry dead = buf_.pop();
    medium_.frame_arena().release(std::move(dead.bytes));
    ++frames_expired_;
    return;
  }
  if (medium_.now() < f.earliest_start) return;
  // Half-duplex: the radio knows it is transmitting without CCA — with a
  // contended medium's detection latency it cannot *hear* its own signal,
  // and popping the next queued frame early would collide with itself.
  if (transmitting()) return;
  if (medium_.cca_busy(source_id_)) return;
  TxFrameEntry e = buf_.pop();
  last_tx_start_ = medium_.now();
  last_tx_end_ = medium_.begin_tx(std::move(e.bytes), source_id_);
  ++frames_sent_;
}


void Medium::save_state(sim::snap::Writer& w) { persist_medium(w); }

void Medium::load_state(sim::snap::Reader& r) { persist_medium(r); }

}  // namespace drmp::phy
