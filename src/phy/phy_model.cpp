#include "phy/phy_model.hpp"

#include <cassert>

namespace drmp::phy {

Cycle Medium::begin_tx(Bytes frame, int source) {
  assert(!busy() && "collision: begin_tx on a busy medium");
  const Cycle end = now_ + frame_air_cycles(frame.size());
  tx_end_ = end;
  in_flight_.push_back(InFlight{std::move(frame), end, source});
  return end;
}

void Medium::tick() {
  if (busy()) ++busy_cycles_;
  ++now_;
  // Deliver frames whose last byte has now arrived.
  for (std::size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].end <= now_) {
      if (tamper && tamper(in_flight_[i].frame)) ++tampered_;
      for (MediumClient* c : clients_) {
        c->on_frame(in_flight_[i].frame, in_flight_[i].end, in_flight_[i].source);
      }
      in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void PhyTx::tick() {
  if (!buf_.frame_pending()) return;
  const TxFrameEntry& f = buf_.front();
  if (medium_.now() < f.earliest_start) return;
  if (medium_.busy()) return;
  TxFrameEntry e = buf_.pop();
  last_tx_start_ = medium_.now();
  last_tx_end_ = medium_.begin_tx(std::move(e.bytes), source_id_);
  ++frames_sent_;
}

}  // namespace drmp::phy
