#include "phy/channel.hpp"

#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp::phy {

ScriptedPeer::ScriptedPeer(Medium& medium, const sim::TimeBase& tb, int self_id)
    : medium_(medium), tb_(tb), self_id_(self_id) {
  medium_.attach(*this, self_id);  // Listener-qualified on contended media.
  medium_.subscribe_wake(*this);  // Carrier extensions re-gate queued sends.
}

void ScriptedPeer::inject_frame(Bytes frame, Cycle at_cycle) {
  schedule_tx(std::move(frame), at_cycle);
}

void ScriptedPeer::schedule_tx(Bytes frame, Cycle earliest) {
  wake_self();  // New scheduled work invalidates any sleep bound.
  pending_tx_.push_back(Pending{std::move(frame), earliest});
}

void ScriptedPeer::on_frame(const Bytes& frame, Cycle rx_end_cycle, int source) {
  if (source == self_id_) return;
  wake_self();  // Responses may be scheduled below; CFP/ack state advances.
  const Cycle sifs = static_cast<Cycle>(medium_.timing().sifs_us * 1e-6 * tb_.arch_freq());

  switch (medium_.protocol()) {
    case mac::Protocol::WiFi: {
      // RTS handshake: a real peer answers CTS after SIFS (§2.3.2.2 #10).
      if (const auto ctl = mac::wifi::parse_control(frame)) {
        if (ctl->fc.subtype == mac::wifi::Subtype::Rts && ctl->fcs_ok &&
            ctl->ra == wifi_addr_) {
          ++rts_seen_;
          if (auto_cts_ && rx_end_cycle >= cts_nav_until_) {
            // The CTS inherits the RTS reservation minus the SIFS gap and
            // its own air time (802.11 duration arithmetic) — this is the
            // field a hidden station's NAV arms from, since it may hear the
            // responder but not the RTS originator.
            const u16 dur =
                mac::wifi::cts_duration_from_rts(ctl->duration_us, medium_.timing());
            schedule_tx(mac::wifi::build_cts(ctl->ta, dur), rx_end_cycle + sifs);
            ++ctss_sent_;
            // A CTS responder honours its own virtual carrier (802.11: "a
            // STA that receives an RTS shall transmit CTS only if its NAV
            // indicates idle"): granting one exchange reserves the medium,
            // and a hidden station's RTS arriving mid-reservation must go
            // unanswered (it will CTS-timeout and re-contend) instead of
            // double-granting two overlapping protected exchanges.
            cts_nav_until_ =
                rx_end_cycle + sifs + medium_.frame_air_cycles(mac::wifi::kCtsBytes) +
                tb_.us_to_cycles(static_cast<double>(dur));
          }
        }
        return;
      }
      const auto parsed = mac::wifi::parse_data_mpdu(frame);
      if (!parsed || parsed->hdr.fc.type != mac::wifi::FrameType::Data) return;
      if (cfp_active()) {
        // Point-coordinator role: data from the polled station is
        // acknowledged by piggyback on the next poll; Null answers are just
        // bookkeeping. No ACK frames inside the CFP (§2.3.2.1 #11).
        if (parsed->hdr.fc.subtype == mac::wifi::Subtype::Null) {
          ++cfp_nulls_rx_;
          return;
        }
        if (parsed->hdr.fc.subtype == mac::wifi::Subtype::Data && parsed->fcs_ok &&
            parsed->hcs_ok) {
          received_.push_back(frame);
          ++cfp_data_rx_;
          cfp_ack_pending_ = true;
        }
        return;
      }
      received_.push_back(frame);
      ++data_seen_;
      if (drop_every_ != 0 && data_seen_ % drop_every_ == 0) {
        ++dropped_;
        return;
      }
      if (auto_ack_ && parsed->fcs_ok) {
        // ACK the transmitter (addr2) after SIFS — the hard real-time
        // response the DRMP's own ACK path must also honour. Inside a
        // SIFS-spaced fragment burst the ACK chains the NAV to the next
        // fragment's ACK (enabled per cell; historic ACKs carry 0).
        const u16 dur = ack_dur_chain_ && parsed->hdr.fc.more_frag
                            ? mac::wifi::ack_duration_from_data(
                                  parsed->hdr.duration_us, medium_.timing())
                            : 0;
        schedule_tx(mac::wifi::build_ack(parsed->hdr.addr2, dur), rx_end_cycle + sifs);
        ++acks_sent_;
      }
      break;
    }
    case mac::Protocol::Uwb: {
      const auto parsed = mac::uwb::parse_frame(frame);
      if (!parsed || parsed->hdr.type != mac::uwb::FrameType::Data) return;
      received_.push_back(frame);
      ++data_seen_;
      if (drop_every_ != 0 && data_seen_ % drop_every_ == 0) {
        ++dropped_;
        return;
      }
      if (auto_ack_ && parsed->fcs_ok &&
          parsed->hdr.ack_policy == mac::uwb::AckPolicy::ImmAck) {
        schedule_tx(mac::uwb::build_imm_ack(parsed->hdr.pnid, parsed->hdr.src_id, uwb_dev_id_),
                    rx_end_cycle + sifs);
        ++acks_sent_;
      }
      break;
    }
    case mac::Protocol::WiMax: {
      const auto parsed = mac::wimax::parse_mpdu(frame);
      if (!parsed) return;
      received_.push_back(frame);
      ++data_seen_;
      // ARQ feedback is produced by the base-station model in the control
      // software tests; the scripted peer just records.
      break;
    }
  }
}

void ScriptedPeer::begin_cfp(Cycle start_at, u32 polls, double interval_us,
                             const mac::MacAddr& station) {
  wake_self();
  cfp_polls_left_ = polls;
  cfp_end_pending_ = polls > 0;
  cfp_ack_pending_ = false;
  cfp_interval_ = static_cast<Cycle>(interval_us * 1e-6 * tb_.arch_freq());
  cfp_next_poll_ = start_at;
  cfp_station_ = station;
}

void ScriptedPeer::cfp_tick() {
  if (!cfp_active() || medium_.now() < cfp_next_poll_ || !clear_to_send()) return;

  if (cfp_polls_left_ > 0) {
    // CF-Poll (with a piggybacked CF-Ack when uplink data arrived since the
    // previous poll). The point coordinator owns the medium: no contention.
    mac::wifi::DataHeader h;
    h.fc.type = mac::wifi::FrameType::Data;
    h.fc.subtype = cfp_ack_pending_ ? mac::wifi::Subtype::CfAckCfPoll
                                    : mac::wifi::Subtype::CfPoll;
    h.addr1 = cfp_station_;
    h.addr2 = wifi_addr_;
    h.addr3 = wifi_addr_;  // BSSID = the point coordinator.
    cfp_ack_pending_ = false;
    own_tx_end_ = medium_.begin_tx(mac::wifi::build_data_mpdu(h, {}), self_id_);
    ++cfp_polls_sent_;
    --cfp_polls_left_;
    cfp_next_poll_ += cfp_interval_;
    return;
  }

  // Polls exhausted: close the CFP, carrying the last CF-Ack if one is owed.
  own_tx_end_ =
      medium_.begin_tx(mac::wifi::build_cf_end(mac::MacAddr::from_u64(0xFFFFFFFFFFFFull),
                                               wifi_addr_, cfp_ack_pending_),
                       self_id_);
  cfp_ack_pending_ = false;
  cfp_end_pending_ = false;
}

void ScriptedPeer::start_beacons(Cycle start_at, u32 count, double interval_us) {
  wake_self();
  beacons_left_ = count;
  next_beacon_ = start_at;
  beacon_interval_ = static_cast<Cycle>(interval_us * 1e-6 * tb_.arch_freq());
  beacon_interval_us_ = static_cast<u16>(interval_us);
}

Cycle ScriptedPeer::quiescent_for() const {
  // Earliest due event among the three transmit sources...
  Cycle due = sim::Clockable::kIdleForever;
  if (beacons_left_ > 0) due = std::min(due, next_beacon_);
  if (cfp_active()) due = std::min(due, cfp_next_poll_);
  if (!pending_tx_.empty()) due = std::min(due, pending_tx_.front().earliest);
  if (due == sim::Clockable::kIdleForever) return due;
  // ... gated by the shared half-duplex/carrier window: the first tick that
  // could transmit observes `ready`.
  const Cycle ready = std::max({due, own_tx_end_, medium_.cca_clear_at(self_id_)});
  return sim::ticks_until_reading(ready, medium_.now());
}

void ScriptedPeer::tick() {
  if (beacons_left_ > 0 && medium_.now() >= next_beacon_ && clear_to_send()) {
    mac::wifi::BeaconBody body;
    body.timestamp_us =
        static_cast<u64>(static_cast<double>(medium_.now()) / tb_.arch_freq() * 1e6);
    body.interval_us = beacon_interval_us_;
    own_tx_end_ = medium_.begin_tx(mac::wifi::build_beacon(wifi_addr_, beacon_seq_++, body),
                                   self_id_);
    ++beacons_sent_;
    --beacons_left_;
    next_beacon_ += beacon_interval_;
  }
  cfp_tick();
  if (pending_tx_.empty()) return;
  Pending& p = pending_tx_.front();
  if (medium_.now() < p.earliest || !clear_to_send()) return;
  own_tx_end_ = medium_.begin_tx(std::move(p.frame), self_id_);
  pending_tx_.pop_front();
}

}  // namespace drmp::phy
