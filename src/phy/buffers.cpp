#include "phy/buffers.hpp"

// Header-only; TU anchors the build target.
namespace drmp::phy {
namespace {
[[maybe_unused]] const TxBuffer kAnchor{};
}
}  // namespace drmp::phy
