// Translational buffers at the MAC-PHY boundary (thesis §3.6.6, Fig. 3.15).
//
// "These buffers translate between 1) 32 bit data words of the architecture
// and data width required by the PHY (e.g. byte-wide transfer in case of
// WiFi); and 2) architecture frequency and protocol frequency." Each buffer
// is controlled by two interacting asynchronous state machines: the DRMP side
// runs at architecture frequency and word width (the Tx/Rx RFUs burst frames
// in and out quickly, leaving the co-processor free for other modes), the PHY
// side at protocol frequency and byte width.
#pragma once

#include <functional>
#include <optional>

#include "common/arena.hpp"
#include "common/types.hpp"

namespace drmp::phy {

/// What a staged frame is, for the per-kind expiry accounting: when a
/// perishable response dies (PhyTx drops it past latest_start), the
/// recovery path differs by kind — an expired ACK/CTS leaves the exchange
/// to the *initiator's* timeout, expired SIFS-anchored data to its own —
/// and the fleet reports break the counts out accordingly.
enum class TxKind : u8 {
  kData = 0,      ///< Channel-access-granted frame (never expires).
  kAck = 1,       ///< Autonomous SIFS ACK / Imm-ACK.
  kCts = 2,       ///< Autonomous SIFS CTS.
  kSifsData = 3,  ///< SIFS-anchored data (CTS-released / fragment burst).
};
inline constexpr std::size_t kNumTxKinds = 4;

/// A frame staged for transmission.
struct TxFrameEntry {
  Bytes bytes;
  /// Earliest architecture cycle at which the PHY may start sending it
  /// (channel-access grant for data, rx-end + SIFS for ACKs).
  Cycle earliest_start = 0;
  /// Latest cycle at which the transmission may still begin. SIFS-anchored
  /// responses (ACK/CTS, CTS-released data) are perishable: they belong to
  /// an exchange with hard timing, and one that cannot start roughly on
  /// time must be abandoned — the peer's timeout machinery retries — rather
  /// than deferred to a carrier-clear edge, where every other station's
  /// deferred response releases on the same cycle and collides forever.
  /// Channel-access-granted frames never expire.
  Cycle latest_start = ~Cycle{0};
  TxKind kind = TxKind::kData;

  template <class Ar>
  void persist(Ar& ar) {
    ar.io(bytes);
    ar.io(earliest_start);
    ar.io(latest_start);
    ar.io(kind);
  }
};

/// Transmission buffer: DRMP side pushes words at architecture rate, PHY side
/// drains bytes at protocol rate (drain handled by PhyTx).
class TxBuffer {
 public:
  // ---- DRMP side (word-wide, architecture frequency) ----
  void begin_frame() {
    if (arena_ != nullptr && staging_.capacity() == 0) staging_ = arena_->acquire();
    staging_.clear();
  }
  void push_word(Word w) {
    for (int i = 0; i < 4; ++i) staging_.push_back(static_cast<u8>(w >> (8 * i)));
  }
  void push_byte(u8 b) { staging_.push_back(b); }
  void end_frame(std::size_t nbytes, Cycle earliest_start,
                 Cycle latest_start = ~Cycle{0}, TxKind kind = TxKind::kData) {
    staging_.resize(nbytes);
    TxFrameEntry& e = queue_.push_slot();
    e.bytes = std::move(staging_);
    e.earliest_start = earliest_start;
    e.latest_start = latest_start;
    e.kind = kind;
    staging_ = Bytes{};
    if (on_push) on_push();
  }

  /// Binds the per-cell frame arena (wired by DrmpDevice at attach time):
  /// begin_frame draws retired storage from it instead of the heap. The
  /// medium — where a staged frame's bytes end their life — releases into
  /// the same arena, closing the steady-state allocation loop.
  void bind_arena(ByteArena* a) noexcept { arena_ = a; }

  /// Wake hook: invoked when a frame is staged, so a quiescent PhyTx
  /// re-evaluates its sleep bound (wired by DrmpDevice).
  std::function<void()> on_push;

  // ---- PHY side ----
  bool frame_pending() const noexcept { return !queue_.empty(); }
  const TxFrameEntry& front() const { return queue_.front(); }
  TxFrameEntry pop() {
    TxFrameEntry e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }

  std::size_t depth() const noexcept { return queue_.size(); }

  /// Checkpoint support (sim/checkpoint.hpp): staging plus the queued
  /// frames; the arena binding and the wake hook are wiring.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(staging_);
    ar.io(queue_);
  }

 private:
  Bytes staging_;
  RingQueue<TxFrameEntry> queue_;
  ByteArena* arena_ = nullptr;
};

/// A frame received from the PHY.
struct RxFrameEntry {
  Bytes bytes;
  Cycle rx_end_cycle = 0;  ///< When the last byte arrived (SIFS reference).

  template <class Ar>
  void persist(Ar& ar) {
    ar.io(bytes);
    ar.io(rx_end_cycle);
  }
};

/// Reception buffer: PHY side deposits whole frames as their last byte
/// arrives; DRMP side (RxRfu) drains words at architecture rate.
class RxBuffer {
 public:
  // ---- PHY side ----
  /// Deposits a copy of `frame` (the medium fans one buffer out to every
  /// listener, so the buffer must copy). The copy lands in a retired ring
  /// slot via assign(), reusing its capacity — in steady state a delivery
  /// touches the heap only while the ring is still priming.
  void deliver(const Bytes& frame, Cycle rx_end_cycle) {
    RxFrameEntry& e = queue_.push_slot();
    e.bytes.assign(frame.begin(), frame.end());
    e.rx_end_cycle = rx_end_cycle;
    if (on_deliver) on_deliver();
  }

  /// Wake hook: invoked on each delivered frame, so a quiescent Event
  /// Handler re-evaluates (wired by DrmpDevice).
  std::function<void()> on_deliver;

  /// The frame most recently deposited (valid inside on_deliver: the PHY
  /// side just pushed it). The Event Handler's NAV snoop reads the duration
  /// field here, at frame end, like real MAC hardware.
  const RxFrameEntry& last_delivered() const { return queue_.back(); }

  // ---- DRMP side ----
  bool frame_ready() const noexcept { return !queue_.empty(); }
  std::size_t frame_bytes() const { return queue_.front().bytes.size(); }
  Cycle frame_rx_end() const { return queue_.front().rx_end_cycle; }

  /// Reads the i-th word of the frame at the head of the queue.
  Word peek_word(std::size_t word_idx) const {
    Word w = 0;
    const Bytes& b = queue_.front().bytes;
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t idx = word_idx * 4 + i;
      if (idx < b.size()) w |= static_cast<Word>(b[idx]) << (8 * i);
    }
    return w;
  }

  /// Moves the head frame out (test/introspection convenience; takes its
  /// storage with it). The hot path uses drop_front() instead.
  RxFrameEntry pop() {
    RxFrameEntry e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }

  /// Retires the head frame in place, keeping its storage in the ring for
  /// the next delivery (the zero-allocation drain path: read what you need
  /// via frame_rx_end()/peek_word() first).
  void drop_front() { queue_.pop_front(); }

  std::size_t depth() const noexcept { return queue_.size(); }

  /// Checkpoint support (sim/checkpoint.hpp).
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(queue_);
  }

 private:
  RingQueue<RxFrameEntry> queue_;
};

}  // namespace drmp::phy
