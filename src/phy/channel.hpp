// Scripted remote peer: the traffic generator / responder at the far end of
// each medium. It stands in for the remote station of the paper's
// transmission/reception experiments — acknowledging data frames after SIFS
// and injecting scripted downlink frames for the reception runs.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "mac/protocol.hpp"
#include "mac/frame.hpp"
#include "phy/phy_model.hpp"
#include "sim/clock.hpp"

namespace drmp::phy {

class ScriptedPeer : public MediumClient, public sim::Clockable {
 public:
  ScriptedPeer(Medium& medium, const sim::TimeBase& tb, int self_id);

  // ---- Behaviour switches ----
  /// Acknowledge received data frames after SIFS (on by default for WiFi and
  /// UWB; WiMAX uses ARQ feedback frames instead).
  void set_auto_ack(bool v) { auto_ack_ = v; }
  /// Answer WiFi RTS frames with a CTS after SIFS (on by default).
  void set_auto_cts(bool v) { auto_cts_ = v; }
  /// Drop every n-th data frame without acknowledging (loss injection for
  /// retry-path tests). 0 disables.
  void set_drop_every(u32 n) { drop_every_ = n; }
  /// Chain ACK durations across fragment bursts (802.11 §9.1.4): the ACK of
  /// a fragment with More Fragments set re-announces the remaining
  /// reservation from the fragment's own Duration field. Off by default —
  /// historic workloads' ACKs carry Duration 0 and their digests are
  /// pinned; net::Cell switches it on when a member station runs
  /// SIFS-spaced fragment bursts.
  void set_ack_duration_chaining(bool v) { ack_dur_chain_ = v; }

  /// WiFi identity used when forging ACKs.
  void set_wifi_addr(const mac::MacAddr& a) { wifi_addr_ = a; }
  /// UWB identity.
  void set_uwb_ids(u16 pnid, u8 dev_id) {
    pnid_ = pnid;
    uwb_dev_id_ = dev_id;
  }

  /// Schedules a raw frame for transmission at (not before) `at_cycle`.
  void inject_frame(Bytes frame, Cycle at_cycle);

  // ---- Point-coordinator role (WiFi PCF, §2.3.2.1 #5/#8/#11) ----
  /// Starts a contention-free period: `polls` CF-Polls to `station`,
  /// `interval_us` apart, the first at `start_at`; data received during the
  /// CFP is acknowledged by piggybacking CF-Ack on the next poll (or the
  /// closing CF-End). No ACK frames are sent during the CFP.
  void begin_cfp(Cycle start_at, u32 polls, double interval_us,
                 const mac::MacAddr& station);
  bool cfp_active() const noexcept { return cfp_polls_left_ > 0 || cfp_end_pending_; }
  u64 cfp_data_received() const noexcept { return cfp_data_rx_; }
  u64 cfp_nulls_received() const noexcept { return cfp_nulls_rx_; }
  u64 cfp_polls_sent() const noexcept { return cfp_polls_sent_; }

  // ---- Beaconing AP role (WiFi passive scanning, §2.3.2.1 #13/#15) ----
  /// Broadcasts `count` beacons, `interval_us` apart, the first at
  /// `start_at`; the TSF timestamp advances with the medium clock.
  void start_beacons(Cycle start_at, u32 count, double interval_us);
  u64 beacons_sent() const noexcept { return beacons_sent_; }

  // ---- Introspection for tests/benches ----
  const std::vector<Bytes>& received_data_frames() const { return received_; }
  u64 acks_sent() const noexcept { return acks_sent_; }
  u64 frames_dropped() const noexcept { return dropped_; }
  u64 rts_received() const noexcept { return rts_seen_; }
  u64 ctss_sent() const noexcept { return ctss_sent_; }

  // MediumClient:
  void on_frame(const Bytes& frame, Cycle rx_end_cycle, int source) override;
  // Clockable:
  void tick() override;

  // ---- Quiescence contract (sim/scheduler.hpp) ----
  /// With nothing scheduled the peer sleeps until a frame arrives (on_frame
  /// wakes it); with scheduled work it sleeps to the first cycle the next
  /// due event could clear every transmit gate. No per-tick state, so
  /// skipped ticks need no accounting.
  Cycle quiescent_for() const override;

  /// Checkpoint support (sim/checkpoint.hpp): everything a run mutates —
  /// scheduled/pending frames, the responder NAV, CFP/beacon progress and
  /// the counters. The behaviour switches and identities are configuration.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(own_tx_end_);
    ar.io(data_seen_);
    ar.io(cts_nav_until_);
    ar.io(acks_sent_);
    ar.io(dropped_);
    ar.io(rts_seen_);
    ar.io(ctss_sent_);
    ar.io(pending_tx_);
    ar.io(received_);
    ar.io(cfp_polls_left_);
    ar.io(cfp_end_pending_);
    ar.io(cfp_ack_pending_);
    ar.io(cfp_next_poll_);
    ar.io(cfp_interval_);
    ar.io(cfp_station_.b);
    ar.io(cfp_data_rx_);
    ar.io(cfp_nulls_rx_);
    ar.io(cfp_polls_sent_);
    ar.io(beacons_left_);
    ar.io(next_beacon_);
    ar.io(beacon_interval_);
    ar.io(beacon_interval_us_);
    ar.io(beacon_seq_);
    ar.io(beacons_sent_);
  }

 private:
  void schedule_tx(Bytes frame, Cycle earliest);
  void cfp_tick();
  /// Half-duplex gate shared by every transmit path (listener-qualified
  /// carrier sense: a hidden transmission does not gate this peer).
  bool clear_to_send() const {
    return medium_.now() >= own_tx_end_ && !medium_.cca_busy(self_id_);
  }

  Medium& medium_;
  Cycle own_tx_end_ = 0;
  const sim::TimeBase& tb_;
  int self_id_;
  bool auto_ack_ = true;
  bool auto_cts_ = true;
  bool ack_dur_chain_ = false;
  u32 drop_every_ = 0;
  u32 data_seen_ = 0;
  /// Responder-side NAV: the end of the last exchange this peer granted
  /// with a CTS; RTSs arriving before it go unanswered.
  Cycle cts_nav_until_ = 0;
  u64 acks_sent_ = 0;
  u64 dropped_ = 0;
  u64 rts_seen_ = 0;
  u64 ctss_sent_ = 0;
  mac::MacAddr wifi_addr_ = mac::MacAddr::from_u64(0x0A0B0C0D0E0Full);
  u16 pnid_ = 0xBEEF;
  u8 uwb_dev_id_ = 2;

  struct Pending {
    Bytes frame;
    Cycle earliest;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(frame);
      ar.io(earliest);
    }
  };
  std::deque<Pending> pending_tx_;
  std::vector<Bytes> received_;

  // Point-coordinator state.
  u32 cfp_polls_left_ = 0;
  bool cfp_end_pending_ = false;
  bool cfp_ack_pending_ = false;
  Cycle cfp_next_poll_ = 0;
  Cycle cfp_interval_ = 0;
  mac::MacAddr cfp_station_{};
  u64 cfp_data_rx_ = 0;
  u64 cfp_nulls_rx_ = 0;
  u64 cfp_polls_sent_ = 0;

  // Beaconing state.
  u32 beacons_left_ = 0;
  Cycle next_beacon_ = 0;
  Cycle beacon_interval_ = 0;
  u16 beacon_interval_us_ = 0;
  u16 beacon_seq_ = 0;
  u64 beacons_sent_ = 0;
};

}  // namespace drmp::phy
