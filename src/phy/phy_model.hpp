// PHY substrate: a shared medium per protocol band plus per-device PHY
// transmit/receive pipes running at the protocol line rate.
//
// The paper's testbed drives the DRMP model with PHY interface signals for
// three protocols (Fig. 3.3); radio hardware is outside its scope too — the
// Simulink testbench generated and consumed PHY byte streams. This model does
// the same: frames occupy the medium for len*8/line_rate seconds, carrier
// sense (CCA) is exposed for the CSMA/CA access RFU, and attached clients
// receive each frame when its last byte arrives.
//
// `Medium` is the channel interface with two backends:
//   * this base class — the point-to-point backend of the paper's
//     single-station-plus-peer experiments. It is collision-free by
//     *contract*: overlapping transmissions are a hard error in every build
//     type (clients gate on cca_busy(), so a trip means an assembly bug).
//   * net::ContendedMedium — real shared-channel semantics for multi-station
//     cells: overlap is a defined, counted outcome (collisions), carrier
//     sense has a detection latency (the collision window), and an optional
//     capture effect lets an established frame survive a late interferer.
#pragma once

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"
#include "mac/protocol.hpp"
#include "obs/flight_recorder.hpp"
#include "phy/buffers.hpp"
#include "sim/clock.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace drmp::phy {

class Medium;

/// Anything that can receive frames from a medium.
class MediumClient {
 public:
  virtual ~MediumClient() = default;
  /// Called when a frame's last byte arrives. `source` identifies the sender
  /// so clients can ignore their own transmissions.
  virtual void on_frame(const Bytes& frame, Cycle rx_end_cycle, int source) = 0;
};

/// One wireless channel (band) shared by all stations of one protocol mode.
/// This base class is the point-to-point backend; see the header comment.
class Medium : public sim::Clockable {
 public:
  Medium(mac::Protocol proto, const sim::TimeBase& tb)
      : proto_(proto), byte_cycles_(tb.arch_freq() * 8.0 / timing().line_rate_bps) {}

  /// Listener id for receivers outside any audibility matrix (access points,
  /// point-to-point peers, passive sinks): they hear every transmitter.
  static constexpr int kOmniListener = -1;

  /// Attaches a receiver. `listener_id` names the client on contended media
  /// with a non-trivial audibility matrix (same id space as begin_tx
  /// sources); the default is omnidirectional, which every backend treats
  /// exactly like the historic unqualified attach.
  void attach(MediumClient& c, int listener_id = kOmniListener) {
    clients_.push_back(Attached{&c, listener_id});
  }

  mac::Protocol protocol() const noexcept { return proto_; }
  const mac::ProtocolTiming& timing() const {
    static thread_local mac::ProtocolTiming t;
    t = mac::timing_for(proto_);
    return t;
  }

  /// Ground truth: is any transmission on the air this cycle?
  bool busy() const noexcept { return now_ < tx_end_; }
  Cycle now() const noexcept { return now_; }
  /// Cycles the medium has been continuously idle (for DIFS checks).
  Cycle idle_for() const noexcept { return busy() ? 0 : now_ - tx_end_; }

  /// Carrier sense as a station's CCA circuit perceives it. Device-side
  /// transmit gates (PhyTx, BackoffRfu, ScriptedPeer) must use this view,
  /// never busy(): contended backends add a detection latency, and the
  /// window between a transmission starting and becoming audible is exactly
  /// where collisions live.
  virtual bool cca_busy() const noexcept { return busy(); }
  /// Continuously-idle cycles as perceived by CCA (DIFS/SIFS reference).
  virtual Cycle cca_idle_for() const noexcept { return idle_for(); }
  /// Earliest clock value at which cca_busy() could read false, given the
  /// transmissions currently on the air (new ones only push it later). A
  /// conservative sleep bound for transmit gates waiting on a clear channel.
  virtual Cycle cca_clear_at() const noexcept { return std::max(now_, tx_end_); }
  /// Earliest clock value at which cca_busy() could turn true *without* a
  /// new transmission. Always "never" on this live-view backend (only
  /// begin_tx — which wakes subscribers — can raise the carrier), but a
  /// contended backend's detection latency schedules perceived onsets into
  /// the future, and a component whose tick behaviour depends on the
  /// carrier (the access RFU's defer accounting) must not sleep past one.
  virtual Cycle cca_busy_onset_at() const noexcept { return sim::Clockable::kIdleForever; }

  // ---- Listener-qualified carrier sense ----
  // On a contended medium with a per-station audibility matrix, carrier
  // sense is a property of the *listener*: a hidden transmission raises no
  // CCA at a station outside its footprint. Transmit gates pass their own
  // station id; this point-to-point base (and any trivial matrix) ignores
  // it, so the qualified and unqualified views are identical there.
  virtual bool cca_busy(int /*listener*/) const noexcept { return cca_busy(); }
  virtual Cycle cca_idle_for(int /*listener*/) const noexcept { return cca_idle_for(); }
  virtual Cycle cca_clear_at(int /*listener*/) const noexcept { return cca_clear_at(); }
  virtual Cycle cca_busy_onset_at(int /*listener*/) const noexcept {
    return cca_busy_onset_at();
  }

  /// Cycles one byte occupies on air.
  double byte_cycles() const noexcept { return byte_cycles_; }
  Cycle frame_air_cycles(std::size_t nbytes) const {
    return static_cast<Cycle>(byte_cycles_ * static_cast<double>(nbytes) + 0.5);
  }

  /// Starts a transmission; returns the cycle at which it completes. The
  /// point-to-point backend treats overlap as a hard error in all build
  /// types (it would silently garble the experiment); contended backends
  /// turn overlap into counted collisions.
  virtual Cycle begin_tx(Bytes frame, int source);

  /// Foreign-carrier image: energy from a transmission on a *different*
  /// medium (a co-channel neighbour cell) occupying this channel over
  /// [start, end). No frame is ever delivered from it — it is carrier and
  /// collision physics only; net::ChannelCoupler forwards begin_tx events
  /// between coupled media through it, already shifted by the inter-cell
  /// propagation+detection latency, so `start` is never in this medium's
  /// past. The point-to-point backend has no notion of co-channel
  /// neighbours and rejects it in every build type.
  virtual void begin_remote_tx(Cycle start, Cycle end, int source);

  /// Observer hook: invoked at the end of every begin_tx with the
  /// transmission's air window and source (same idiom as `tamper`).
  /// net::ChannelCoupler uses it to mirror local transmissions into
  /// co-channel neighbour cells; begin_remote_tx does NOT fire it, so
  /// forwarded carrier never cascades.
  std::function<void(Cycle start, Cycle end, int source)> on_tx;

  void tick() override;

  // ---- Quiescence contract (sim/scheduler.hpp) ----
  /// A medium's visible state is time-derived — now(), idle_for() and
  /// cca_idle_for() advance every cycle and are polled live by transmit
  /// gates and access RFUs — so it is only skipped across globally-
  /// quiescent gaps, where nothing can observe it, and its bound is the
  /// distance to its next delivery event.
  bool global_skip_only() const final { return true; }
  Cycle quiescent_for() const override;
  void skip_idle(Cycle n) override;

  /// Registers a component to wake whenever a transmission starts: transmit
  /// gates sleeping against this medium's carrier must re-evaluate when new
  /// energy appears on the air. Idempotent (re-wiring is common).
  void subscribe_wake(sim::Clockable& c) {
    for (const sim::Clockable* s : wake_subs_) {
      if (s == &c) return;
    }
    wake_subs_.push_back(&c);
  }

  Cycle busy_cycles() const noexcept { return busy_cycles_; }

  /// Fault injector: invoked on each frame as its last byte arrives, before
  /// delivery to the clients; return true if the frame was modified. Models
  /// on-air corruption ("higher chances of data corruption/distortion during
  /// transmission", thesis §2.3.1) for the redundancy-check failure paths.
  std::function<bool(Bytes&)> tamper;
  u64 tampered_frames() const noexcept { return tampered_; }

  // ---- Receive-quality reference (EIFS, 802.11 §9.2.3.4) ----
  /// True while this listener's most recent reception was damaged — its FCS
  /// would fail (collided, garbled, or channel-corrupted) — with no clean
  /// reception since. The access RFU extends its pre-contention defer from
  /// DIFS to EIFS while this holds: the undecodable frame may have been
  /// data whose ACK the listener cannot anticipate, so it must leave room
  /// for it. A subsequent clean reception cancels the condition, exactly
  /// like the standard's NAV-update rule. The flip can only happen at a
  /// delivery edge, which every affected listener perceives as carrier
  /// (audible through end + latency), so a transmit gate that re-evaluates
  /// on carrier edges — as the quiescence contract already requires — can
  /// never observe a stale value.
  bool eifs_pending(int listener) const noexcept {
    const auto it = rx_quality_.find(listener);
    return it != rx_quality_.end() && it->second.bad_end > it->second.good_end;
  }
  /// Switches the per-listener receive-quality records on. Off by default —
  /// the only consumer is eifs_pending(), so media in flag-off workloads
  /// skip the bookkeeping entirely. The access RFU enables it on the media
  /// of EIFS-honouring modes at wire-up; tests driving a medium directly
  /// call it themselves.
  void track_rx_quality() { track_rx_quality_ = true; }

  /// Per-cell frame arena: a frame's bytes die here (delivered or expired),
  /// and the cell's TxBuffers draw next-frame storage from the same pool
  /// (bound by DrmpDevice at attach time), so steady-state traffic recycles
  /// a fixed set of buffers instead of hitting the heap per frame.
  ByteArena& frame_arena() noexcept { return arena_; }

  // ---- Checkpoint support (sim/checkpoint.hpp) ----
  /// The channel clock, in-flight physics and receive-quality records.
  /// Virtual so net::ContendedMedium extends the pair with its on-air set.
  virtual void save_state(sim::snap::Writer& w);
  virtual void load_state(sim::snap::Reader& r);

 protected:
  template <class Ar>
  void persist_medium(Ar& ar) {
    ar.io(now_);
    ar.io(tx_end_);
    ar.io(busy_cycles_);
    ar.io(tampered_);
    ar.io(rx_quality_);
    ar.io(in_flight_);
  }

  /// One attached receiver and the listener id it perceives the channel as.
  struct Attached {
    MediumClient* client = nullptr;
    int listener_id = kOmniListener;
  };

  /// Applies the fault injector and fans the frame out to every client.
  /// `pre_damaged` marks a frame the channel already garbled (collision in
  /// deliver-garbled mode) so the receive-quality records stay honest even
  /// when the injector leaves it alone.
  void deliver(Bytes& frame, Cycle rx_end_cycle, int source, bool pre_damaged = false);
  /// True when `listener` was itself transmitting as the frame's last byte
  /// arrived: a half-duplex radio receives nothing of a frame whose end it
  /// talked over, so neither a bad nor a clean record applies. The base
  /// (point-to-point) backend cannot overlap, so nobody is ever deaf.
  virtual bool listener_deaf_at(int /*listener*/, Cycle /*end*/) const noexcept {
    return false;
  }
  /// Records one listener's reception outcome at `end` (EIFS reference).
  void note_rx_quality(int listener_id, Cycle end, bool bad) {
    if (!track_rx_quality_ || listener_deaf_at(listener_id, end)) return;
    auto& q = rx_quality_[listener_id];
    (bad ? q.bad_end : q.good_end) = std::max(bad ? q.bad_end : q.good_end, end);
  }
  /// Records `bad`/clean at `end` for every attached listener except the
  /// transmitter itself (a half-duplex radio receives nothing while it
  /// sends). Used for frames withheld from delivery: a dropped collision is
  /// still undecodable energy at every receiver that heard it.
  void record_rx_quality(int source, Cycle end, bool bad) {
    if (!track_rx_quality_) return;
    for (const Attached& a : clients_) {
      if (a.listener_id != source) note_rx_quality(a.listener_id, end, bad);
    }
  }
  /// Wakes every carrier subscriber (call from begin_tx overrides).
  void wake_subscribers() {
    for (sim::Clockable* c : wake_subs_) c->wake_self();
  }
  /// Replays n ticks' worth of channel-occupancy accounting.
  void account_busy_skip(Cycle n) {
    busy_cycles_ += tx_end_ > now_ ? std::min(n, tx_end_ - now_) : 0;
  }

  mac::Protocol proto_;
  double byte_cycles_;
  Cycle now_ = 0;
  Cycle tx_end_ = 0;
  std::vector<Attached> clients_;
  std::vector<sim::Clockable*> wake_subs_;
  Cycle busy_cycles_ = 0;
  u64 tampered_ = 0;

  /// Last damaged / last clean reception end per listener id (EIFS).
  struct RxQuality {
    Cycle bad_end = 0;
    Cycle good_end = 0;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(bad_end);
      ar.io(good_end);
    }
  };
  std::map<int, RxQuality> rx_quality_;
  bool track_rx_quality_ = false;
  ByteArena arena_;  ///< See frame_arena().

 private:
  struct InFlight {
    Bytes frame;
    Cycle end;
    int source;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(frame);
      ar.io(end);
      ar.io(source);
    }
  };

  std::vector<InFlight> in_flight_;
};

/// Device-side PHY transmitter: the PHY-side FSM of the Tx translational
/// buffer (Fig. 3.15b). Watches the TxBuffer, and when a staged frame's
/// earliest-start has passed and the medium is (perceived) idle, puts it on
/// the air.
class PhyTx : public sim::Clockable {
 public:
  PhyTx(TxBuffer& buf, Medium& medium, int source_id)
      : buf_(buf), medium_(medium), source_id_(source_id) {
    medium.subscribe_wake(*this);  // Re-evaluate when new carrier appears.
  }

  void tick() override;

  /// Quiescence: nothing staged -> sleep until the buffer push hook wakes
  /// us; a staged frame sleeps to the first cycle every transmit gate
  /// (earliest_start, own half-duplex window, perceived-idle carrier) could
  /// pass. No per-tick state, so skipped ticks need no accounting.
  Cycle quiescent_for() const override;

  /// Number of frames fully handed to the medium.
  u64 frames_sent() const noexcept { return frames_sent_; }
  /// Perishable (SIFS-anchored) frames abandoned because they could not
  /// start by their latest_start — the exchange they belonged to has moved
  /// on; the peer's timeout machinery carries the recovery.
  u64 frames_expired() const noexcept { return frames_expired_; }
  /// Expiries broken out by what the dead frame was. An expired ACK or CTS
  /// means a *responder* went silent: the initiator's ACK/CTS timeout is
  /// the only recovery, and any NAV its exchange armed simply runs out —
  /// the fleet tests pin that no reservation outlives its announced expiry.
  u64 frames_expired(TxKind k) const noexcept {
    return expired_by_kind_[static_cast<std::size_t>(k)];
  }
  Cycle last_tx_start() const noexcept { return last_tx_start_; }
  Cycle last_tx_end() const noexcept { return last_tx_end_; }
  bool transmitting() const noexcept { return medium_.now() < last_tx_end_; }

  /// Attaches a flight recorder (null detaches): frame-expiry edges land on
  /// `track`. The drop tick always executes (the quiescence bound points at
  /// it), so the stream is deterministic across skip modes.
  void set_recorder(obs::FlightRecorder* rec, u16 track) noexcept {
    rec_ = rec;
    rec_track_ = track;
  }

  /// Checkpoint support (sim/checkpoint.hpp).
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(frames_sent_);
    ar.io(frames_expired_);
    ar.io(expired_by_kind_);
    ar.io(last_tx_start_);
    ar.io(last_tx_end_);
  }

 private:
  TxBuffer& buf_;
  Medium& medium_;
  int source_id_;
  u64 frames_sent_ = 0;
  u64 frames_expired_ = 0;
  std::array<u64, kNumTxKinds> expired_by_kind_{};
  Cycle last_tx_start_ = 0;
  Cycle last_tx_end_ = 0;
  obs::FlightRecorder* rec_ = nullptr;
  u16 rec_track_ = 0;
};

/// Device-side PHY receiver: deposits frames addressed over this medium into
/// the RxBuffer (PHY-side FSM of the Rx translational buffer).
class PhyRx : public MediumClient {
 public:
  PhyRx(RxBuffer& buf, int self_id) : buf_(buf), self_id_(self_id) {}

  void on_frame(const Bytes& frame, Cycle rx_end_cycle, int source) override {
    if (source == self_id_) return;
    buf_.deliver(frame, rx_end_cycle);
    ++frames_received_;
  }

  u64 frames_received() const noexcept { return frames_received_; }

  /// Checkpoint support (sim/checkpoint.hpp).
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(frames_received_);
  }

 private:
  RxBuffer& buf_;
  int self_id_;
  u64 frames_received_ = 0;
};

}  // namespace drmp::phy
