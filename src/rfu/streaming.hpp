// StreamingRfu: a micro-sequencer shared by the word-streaming RFUs.
//
// Coarse-grained RFUs move packet data through the single packet bus at one
// word per cycle (§3.6.3); compute-bound units add stall cycles per word.
// Subclasses enqueue micro-operations (read page, stall, write page, patch
// bytes) and drive them one bus access per cycle from work_step().
#pragma once

#include <deque>

#include "hw/memory_map.hpp"
#include "rfu/rfu.hpp"

namespace drmp::rfu {

class StreamingRfu : public Rfu {
 public:
  using Rfu::Rfu;

 protected:
  /// Queues a read of a page header (length word) and its payload words into
  /// in_bytes_.
  void q_read_page(u32 page_addr);
  /// Queues a read of `nwords` raw words starting at `addr` into in_words_.
  void q_read_words(u32 addr, u32 nwords);
  /// Queues a write of out_bytes_ as a page (length word + payload).
  void q_write_page(u32 page_addr);
  /// Queues a byte-patch of out_bytes_ at byte offset `byte_off` within the
  /// payload of the page at `page_addr` (read-modify-write on word bounds).
  void q_patch_bytes(u32 page_addr, u32 byte_off);
  /// Queues a write of the page length word only.
  void q_write_len(u32 page_addr, u32 len_bytes);
  /// Queues `n` pure compute cycles.
  void q_stall(Cycle n);

  /// Executes one cycle of the queued micro-ops. Returns true when the whole
  /// queue has drained.
  bool io_step();

  bool io_idle() const { return ops_.empty(); }
  void io_clear() {
    ops_.clear();
    in_bytes_.clear();
    in_words_.clear();
  }

  /// Checkpoint support: the whole micro-op queue and its scratch —
  /// streaming subclasses call this from their persist before their own
  /// fields, so a snapshot can land mid-stream.
  template <class Ar>
  void persist_streaming(Ar& ar) {
    ar.io(in_bytes_);
    ar.io(in_words_);
    ar.io(out_bytes_);
    ar.io(ops_);
    ar.io(staged_words_);
    ar.io(pending_len_);
    ar.io(patch_words_);
    ar.io(patch_word0_);
    ar.io(patch_nwords_);
    ar.io(patch_loaded_);
  }

  Bytes in_bytes_;                ///< Result of q_read_page.
  std::vector<Word> in_words_;    ///< Result of q_read_words.
  Bytes out_bytes_;               ///< Source for q_write_page / q_patch_bytes.

 private:
  struct IoOp {
    enum class Kind : u8 { ReadLen, ReadData, ReadWords, WriteLen, WriteData, Patch, Stall };
    Kind kind;
    u32 addr = 0;      // Page or word address.
    u32 a = 0;         // Kind-specific (nwords / byte_off / len / stall count).
    u32 progress = 0;  // Words done so far.

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(kind);
      ar.io(addr);
      ar.io(a);
      ar.io(progress);
    }
  };

  bool step_op(IoOp& op);

  std::deque<IoOp> ops_;
  std::vector<Word> staged_words_;  // Packed out_bytes_ for the active write.
  u32 pending_len_ = 0;             // Byte length read by ReadLen.
  // Patch scratch.
  std::vector<Word> patch_words_;
  u32 patch_word0_ = 0;
  u32 patch_nwords_ = 0;
  bool patch_loaded_ = false;
};

}  // namespace drmp::rfu
