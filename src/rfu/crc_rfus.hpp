// CRC RFUs:
//
//   * HdrCheckRfu — Header Check Sequence engine. Configuration state 1 is
//     the CRC-16-CCITT shared verbatim by WiFi and UWB (thesis §2.3.2.1 #1:
//     "the exact same 16-bit CRC"), so switching between those two protocols
//     needs *no* reconfiguration — the overlap the DRMP exploits. State 2 is
//     the WiMAX CRC-8, patched into byte 5 of the GMH.
//
//   * FcsRfu — CRC-32 Frame Check Sequence engine (identical for all three
//     protocols, §2.3.2.1 #2). Besides its primary ops it acts as the
//     hard-wired *slave* of the Tx and Rx RFUs: the master raises the
//     secondary trigger for every word it streams so the FCS accumulates on
//     the fly, then hands the bus over via the grant override so the slave
//     can append/verify the checksum (thesis §3.6.5 and footnote 10).
#pragma once

#include <array>
#include <map>

#include "crypto/crc.hpp"
#include "rfu/streaming.hpp"

namespace drmp::rfu {

class HdrCheckRfu final : public StreamingRfu {
 public:
  explicit HdrCheckRfu(Env env)
      : StreamingRfu(kHdrCheckRfu, "hdr_check", ReconfigMech::ContextSwitch, env) {}

  u8 nstates() const override { return 2; }

 protected:
  // Ops:
  //   HcsAppend16 [page_addr, hdr_len]           — CRC16 over hdr, patch at hdr_len.
  //   HcsVerify16 [page_addr, hdr_len, status]   — verify, write 1/0 to status.
  //   HcsPatch8   [page_addr]                    — WiMAX: CRC8 over GMH[0..4] into GMH[5].
  //   HcsVerify8  [page_addr, status]            — verify GMH HCS.
  void on_execute(Op op) override;
  bool work_step() override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(status_addr_);
    ar.io(verify_);
    ar.io(wimax_);
    ar.io(page_addr_);
    ar.io(hdr_len_);
    ar.io(last_status_);
  }

  int stage_ = 0;
  u32 status_addr_ = 0;
  bool verify_ = false;
  bool wimax_ = false;
  u32 page_addr_ = 0;
  u32 hdr_len_ = 0;
  bool last_status_ = false;
};

class FcsRfu final : public StreamingRfu {
 public:
  explicit FcsRfu(Env env) : StreamingRfu(kFcsRfu, "fcs", ReconfigMech::ContextSwitch, env) {}

  u8 nstates() const override { return 1; }

  // ---- Hard-wired slave interface (secondary trigger + override) ----
  /// Master resets its snoop context before streaming a frame.
  void slave_reset(u8 master_id);
  /// Secondary trigger: `nbytes` of `data` (LSB first) pass the master.
  void on_secondary_trigger(u8 master_id, Word data, u8 nbytes) override;
  /// Snooped CRC-32 so far for this master.
  u32 slave_crc(u8 master_id) const;
  /// Master asks the slave to append its snooped CRC at byte offset `len`
  /// of the page at `page_addr` and update the page length. Executed when
  /// the master hands the bus over with a grant override; `slave_busy`
  /// becomes false once the slave has handed the bus back.
  void slave_request_append(u8 master_id, u32 page_addr, u32 len_bytes);
  bool slave_busy() const noexcept { return slave_pending_; }

 protected:
  // Primary ops:
  //   FcsAppend [page_addr]           — CRC32 over page, append 4 bytes.
  //   FcsVerify [page_addr, status]   — CRC32 over page-4, compare, status.
  void on_execute(Op op) override;
  bool work_step() override;
  void slave_step() override;
  /// The slave append keeps the FCS engine awake until the bus is handed
  /// back; slave_request_append wakes it. Pure snoop accumulation
  /// (on_secondary_trigger) does not affect tick behaviour and needs no wake.
  Cycle slave_quiescent_for() const override {
    return slave_pending_ ? 0 : kIdleForever;
  }

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(verify_);
    ar.io(page_addr_);
    ar.io(status_addr_);
    ar.io(last_status_);
    ar.io(snoop_);
    ar.io(slave_pending_);
    ar.io(slave_master_);
    ar.io(slave_page_);
    ar.io(slave_len_);
    ar.io(slave_stage_);
  }

  int stage_ = 0;
  bool verify_ = false;
  u32 page_addr_ = 0;
  u32 status_addr_ = 0;
  bool last_status_ = false;

  std::map<u8, crypto::Crc32> snoop_;

  // Slave append state.
  bool slave_pending_ = false;
  u8 slave_master_ = 0;
  u32 slave_page_ = 0;
  u32 slave_len_ = 0;
  int slave_stage_ = 0;
};

}  // namespace drmp::rfu
