#include "rfu/ack_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <cassert>

#include "hw/memory_map.hpp"
#include "mac/protocol.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"

namespace drmp::rfu {

void AckRfu::on_execute(Op op) {
  stage_ = 0;
  mode_idx_ = args_.at(2);
  ack_page_ = args_.at(3);
  assert(mode_idx_ < kNumModes);
  assert(buffers_[mode_idx_] != nullptr && "AckRfu not wired to buffers");

  switch (op) {
    case Op::AckGenWifi:
    case Op::AckGenWifiDur: {
      // The Dur form carries the ACK's Duration field (fifth argument): a
      // mid-burst fragment ACK chains the NAV through the next fragment's
      // ACK (802.11 §9.1.4), so bystanders keep deferring across the
      // SIFS-spaced burst they may only partially hear.
      assert(c_state_ == cfg::kProtoWifi);
      const u64 ra = static_cast<u64>(args_.at(0)) |
                     (static_cast<u64>(args_.at(1)) << 32);
      const u16 dur =
          op == Op::AckGenWifiDur ? static_cast<u16>(args_.at(4)) : 0;
      out_bytes_ = mac::wifi::build_ack(mac::MacAddr::from_u64(ra), dur);
      const auto t = mac::timing_for(mac::Protocol::WiFi);
      sifs_us_ = t.sifs_us;
      slack_us_ = mac::response_slack_us(t);
      kind_ = phy::TxKind::kAck;
      break;
    }
    case Op::CtsGenWifi: {
      // CTS back to the RTS transmitter — same autonomous SIFS-deadline path
      // as the ACK (the CPU never sees the RTS, §3.5). The fifth argument is
      // the remaining reservation (RTS duration minus SIFS and the CTS air
      // time), the field a hidden station's NAV arms from.
      assert(c_state_ == cfg::kProtoWifi);
      const u64 ra = static_cast<u64>(args_.at(0)) |
                     (static_cast<u64>(args_.at(1)) << 32);
      const u16 dur = static_cast<u16>(args_.at(4));
      out_bytes_ = mac::wifi::build_cts(mac::MacAddr::from_u64(ra), dur);
      const auto t = mac::timing_for(mac::Protocol::WiFi);
      sifs_us_ = t.sifs_us;
      slack_us_ = mac::response_slack_us(t);
      kind_ = phy::TxKind::kCts;
      ++ctss_;
      break;
    }
    case Op::AckGenUwb: {
      assert(c_state_ == cfg::kProtoUwb);
      const u16 pnid = static_cast<u16>(args_.at(0) >> 16);
      const u8 src_of_data = static_cast<u8>(args_.at(0) & 0xFF);
      const u8 self_id = static_cast<u8>(args_.at(1) & 0xFF);
      out_bytes_ = mac::uwb::build_imm_ack(pnid, src_of_data, self_id);
      const auto t = mac::timing_for(mac::Protocol::Uwb);
      sifs_us_ = t.sifs_us;
      slack_us_ = mac::response_slack_us(t);
      kind_ = phy::TxKind::kAck;
      break;
    }
    default:
      assert(false && "AckRfu: unknown op");
  }
  // Stage the frame image in the Ack page (audit trail + realistic bus cost).
  q_write_page(ack_page_);
}

bool AckRfu::work_step() {
  switch (stage_) {
    case 0: {
      if (!io_step()) return false;
      // Push the ACK into the Tx buffer with the SIFS-aligned start time.
      // The response is perishable: it may start late by at most the CCA
      // detection latency (its trigger frame's perceived tail) plus one
      // SIFS of grace; beyond that the exchange has moved on and the frame
      // is abandoned rather than deferred into somebody else's airtime.
      phy::TxBuffer& buf = *buffers_[mode_idx_];
      buf.begin_frame();
      for (u8 b : out_bytes_) buf.push_byte(b);
      const Cycle sifs = tb_ != nullptr ? tb_->us_to_cycles(sifs_us_) : 0;
      const Cycle slack = tb_ != nullptr ? tb_->us_to_cycles(slack_us_) : 0;
      const Cycle rx_end = rx_ != nullptr ? rx_->last_rx_end() : 0;
      buf.end_frame(out_bytes_.size(), rx_end + sifs, rx_end + sifs + slack, kind_);
      ++acks_;
      return true;
    }
    default:
      return true;
  }
}


void AckRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void AckRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
