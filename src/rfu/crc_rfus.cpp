#include "rfu/crc_rfus.hpp"

#include "sim/checkpoint.hpp"

#include <cassert>

#include "hw/memory_map.hpp"

namespace drmp::rfu {

// ---------------------------------------------------------------- HdrCheck

void HdrCheckRfu::on_execute(Op op) {
  stage_ = 0;
  page_addr_ = args_.at(0);
  switch (op) {
    case Op::HcsAppend16:
      assert(c_state_ == cfg::kHcsCrc16);
      wimax_ = false;
      verify_ = false;
      hdr_len_ = args_.at(1);
      break;
    case Op::HcsVerify16:
      assert(c_state_ == cfg::kHcsCrc16);
      wimax_ = false;
      verify_ = true;
      hdr_len_ = args_.at(1);
      status_addr_ = args_.at(2);
      break;
    case Op::HcsPatch8:
      assert(c_state_ == cfg::kHcsCrc8);
      wimax_ = true;
      verify_ = false;
      hdr_len_ = 5;  // CRC-8 covers GMH bytes 0..4.
      break;
    case Op::HcsVerify8:
      assert(c_state_ == cfg::kHcsCrc8);
      wimax_ = true;
      verify_ = true;
      hdr_len_ = 5;
      status_addr_ = args_.at(1);
      break;
    default:
      assert(false && "HdrCheckRfu: unknown op");
  }
  // Read the header words (including the HCS slot for verify).
  const u32 span = hdr_len_ + (wimax_ ? 1 : 2);
  q_read_words(page_addr_ + hw::kPageDataOffset, static_cast<u32>(words_for_bytes(span)));
}

bool HdrCheckRfu::work_step() {
  if (stage_ == 0) {
    if (!io_step()) return false;
    const u32 span = hdr_len_ + (wimax_ ? 1 : 2);
    const Bytes hdr_and_hcs = unpack_bytes(in_words_, span);
    const std::span<const u8> hdr(hdr_and_hcs.data(), hdr_len_);
    if (!verify_) {
      out_bytes_.clear();
      if (wimax_) {
        out_bytes_.push_back(crypto::Crc8::compute(hdr));
      } else {
        const u16 hcs = crypto::Crc16Ccitt::compute(hdr);
        out_bytes_.push_back(static_cast<u8>(hcs & 0xFF));
        out_bytes_.push_back(static_cast<u8>(hcs >> 8));
      }
      q_patch_bytes(page_addr_, hdr_len_);
      stage_ = 1;
      return false;
    }
    // Verify: compare the stored HCS with the recomputed one.
    bool ok = false;
    if (wimax_) {
      ok = hdr_and_hcs[5] == crypto::Crc8::compute(hdr);
    } else {
      const u16 stored = static_cast<u16>(hdr_and_hcs[hdr_len_] |
                                          (hdr_and_hcs[hdr_len_ + 1] << 8));
      ok = stored == crypto::Crc16Ccitt::compute(hdr);
    }
    last_status_ = ok;
    stage_ = 2;
    return false;
  }
  if (stage_ == 1) {
    return io_step();  // Patch write-back.
  }
  // stage_ == 2: write the verify status word.
  if (!bus_granted() || !bus_free()) return false;
  bus_write(status_addr_, last_status_ ? 1 : 0);
  return true;
}

// --------------------------------------------------------------------- FCS

void FcsRfu::slave_reset(u8 master_id) { snoop_[master_id] = crypto::Crc32{}; }

void FcsRfu::on_secondary_trigger(u8 master_id, Word data, u8 nbytes) {
  auto& crc = snoop_[master_id];
  for (u8 i = 0; i < nbytes; ++i) {
    crc.update(static_cast<u8>(data >> (8 * i)));
  }
}

u32 FcsRfu::slave_crc(u8 master_id) const {
  auto it = snoop_.find(master_id);
  return it == snoop_.end() ? 0 : it->second.value();
}

void FcsRfu::slave_request_append(u8 master_id, u32 page_addr, u32 len_bytes) {
  assert(!slave_pending_);
  wake_self();  // Slave work pending: the Idle-phase quiescence bound is void.
  slave_pending_ = true;
  slave_master_ = master_id;
  slave_page_ = page_addr;
  slave_len_ = len_bytes;
  slave_stage_ = 0;
  out_bytes_.clear();
  const u32 crc = slave_crc(master_id);
  out_bytes_.push_back(static_cast<u8>(crc & 0xFF));
  out_bytes_.push_back(static_cast<u8>((crc >> 8) & 0xFF));
  out_bytes_.push_back(static_cast<u8>((crc >> 16) & 0xFF));
  out_bytes_.push_back(static_cast<u8>((crc >> 24) & 0xFF));
  q_patch_bytes(slave_page_, slave_len_);
  q_write_len(slave_page_, slave_len_ + 4);
}

void FcsRfu::slave_step() {
  if (!slave_pending_) return;
  // The slave acts only while the master has handed it the bus (override).
  if (!bus_granted()) return;
  if (slave_stage_ == 0) {
    if (io_step()) slave_stage_ = 1;
    return;
  }
  // Hand the bus back by writing our own id to the override address.
  if (!bus_free()) return;
  bus_write(hw::kOverrideAddr, id());
  slave_pending_ = false;
}

void FcsRfu::on_execute(Op op) {
  stage_ = 0;
  page_addr_ = args_.at(0);
  verify_ = (op == Op::FcsVerify);
  if (verify_) status_addr_ = args_.at(1);
  q_read_page(page_addr_);
}

bool FcsRfu::work_step() {
  if (stage_ == 0) {
    if (!io_step()) return false;
    if (!verify_) {
      const u32 crc = crypto::Crc32::compute(in_bytes_);
      out_bytes_ = in_bytes_;
      put_le32(out_bytes_, crc);
      q_write_page(page_addr_);
      stage_ = 1;
      return false;
    }
    bool ok = false;
    if (in_bytes_.size() >= 4) {
      const std::span<const u8> head(in_bytes_.data(), in_bytes_.size() - 4);
      const u32 stored = get_le32(in_bytes_, in_bytes_.size() - 4);
      ok = stored == crypto::Crc32::compute(head);
    }
    last_status_ = ok;
    stage_ = 2;
    return false;
  }
  if (stage_ == 1) return io_step();
  if (!bus_granted() || !bus_free()) return false;
  bus_write(status_addr_, last_status_ ? 1 : 0);
  return true;
}


void HdrCheckRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void HdrCheckRfu::load_extra(sim::snap::Reader& r) { persist(r); }

void FcsRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void FcsRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
