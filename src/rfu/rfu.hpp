// Reconfigurable Functional Unit base class (thesis §3.6.2).
//
// Standardized RFU interface (Fig. 3.8): primary trigger (via the packet-bus
// address decode), optional secondary trigger (hard-wired master/slave
// lines), RC_en/RC_cnfgst from the Reconfiguration Controller, DONE and
// RDONE outputs, packet-bus mastership and (for MA-RFUs) reconfiguration-bus
// access.
//
// Two reconfiguration mechanisms (§3.6.2.2), transparent to the RC:
//   * CS-RFU  — context switch, RDONE after 1-2 cycles;
//   * MA-RFU  — streams its configuration blob from the reconfiguration
//               memory at one word per cycle, then RDONE.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "hw/bus.hpp"
#include "hw/reconfig_memory.hpp"
#include "rfu/rfu_ids.hpp"
#include "sim/clock.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace drmp::rfu {

enum class ReconfigMech : u8 { ContextSwitch, MemoryAccess };

class Rfu : public sim::Clockable {
 public:
  struct Env {
    hw::PacketBus* bus = nullptr;
    hw::ReconfigMemory* rmem = nullptr;
    sim::StatsRegistry* stats = nullptr;
    const sim::TimeBase* timebase = nullptr;
  };

  Rfu(u8 id, std::string name, ReconfigMech mech, Env env);
  ~Rfu() override = default;

  u8 id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  ReconfigMech mechanism() const noexcept { return mech_; }

  // ---- IRC-facing signals ----
  bool done() const noexcept { return done_; }
  void clear_done() noexcept { done_ = false; }
  bool rdone() const noexcept { return rdone_; }
  void clear_rdone() noexcept { rdone_ = false; }
  u8 config_state() const noexcept { return c_state_; }
  bool busy() const noexcept { return phase_ != Phase::Idle; }
  bool reconfiguring() const noexcept { return phase_ == Phase::Reconfiguring; }

  /// Number of valid configuration states (rfu_table 'nstates' field).
  virtual u8 nstates() const { return 3; }

  /// True for RFUs that execute without holding the packet bus (e.g. the
  /// channel-access timer); the TH_M releases the bus after triggering them.
  virtual bool detached_execution() const { return false; }

  /// RC interface: RC_en + RC_cnfgst (starts the reconfiguration).
  void rc_configure(u8 new_state);

  /// Registers the component woken when DONE or RDONE asserts (the IRC):
  /// both lines are level signals the controllers otherwise poll, so the
  /// wake lets the IRC sleep through a unit's whole execution span.
  void set_completion_waker(sim::Clockable* w) noexcept { completion_waker_ = w; }

  /// Hard-wired secondary trigger from a master RFU (thesis §3.6.5 option c).
  virtual void on_secondary_trigger(u8 master_id, Word data, u8 nbytes);

  void tick() final;

  // ---- Quiescence contract (sim/scheduler.hpp) ----
  /// An RFU is skippable while Idle with no latched trigger (trigger pushes
  /// wake it through the RfuTriggerLogic waker), bounded by its slave role;
  /// subclasses may additionally declare quiescent stretches of the Running
  /// phase (e.g. the channel-access RFU waiting for a TDMA slot boundary).
  Cycle quiescent_for() const final;
  void skip_idle(Cycle n) final;

  // ---- Checkpoint support (sim/checkpoint.hpp) ----
  /// Serializes the base execution engine (phase, latched command/arguments,
  /// DONE/RDONE lines, reconfiguration progress, counters), then the
  /// subclass state via save_extra/load_extra. The completion waker and the
  /// stats-sink cache are wiring and stay untouched.
  void save_state(sim::snap::Writer& w);
  void load_state(sim::snap::Reader& r);

  // ---- Instrumentation ----
  Cycle busy_cycles() const noexcept { return busy_cycles_; }
  Cycle reconfig_cycles() const noexcept { return reconfig_cycles_; }
  u64 reconfig_count() const noexcept { return reconfig_count_; }
  u64 exec_count() const noexcept { return exec_count_; }

 protected:
  /// Runs every cycle regardless of phase — used by RFUs with a hard-wired
  /// slave role (e.g. the FCS engine finishing a master's stream after a
  /// grant override) whose slave work is independent of the primary-trigger
  /// state machine.
  virtual void slave_step() {}

  /// Quiescence bound of the slave role: RFUs whose slave_step can have work
  /// pending must return 0 while it does (and wake_self when it is posted).
  virtual Cycle slave_quiescent_for() const { return kIdleForever; }
  /// Quiescence bound while Phase::Running — for access/timer RFUs whose
  /// work_step merely polls a known-future condition. A subclass returning
  /// a non-zero bound here must account the skipped work_step calls in
  /// on_running_skip (busy cycles and stats are handled by the base).
  virtual Cycle running_quiescent_for() const { return 0; }
  virtual void on_running_skip(Cycle /*n*/) {}

  /// Called when the execute trigger fires (arguments latched in args_).
  virtual void on_execute(Op op) = 0;
  /// One cycle of work while running; return true when the task is complete.
  virtual bool work_step() = 0;
  /// Called when a reconfiguration completes; the blob (possibly empty for
  /// CS-RFUs) is the configuration data just loaded.
  virtual void on_reconfigured(u8 /*new_state*/, const std::vector<Word>& /*blob*/) {}

  /// Checkpoint extras: subclasses forward both directions to one shared
  /// `template <class Ar> void persist(Ar&)` so the field list cannot drift.
  virtual void save_extra(sim::snap::Writer& /*w*/) {}
  virtual void load_extra(sim::snap::Reader& /*r*/) {}

  // Bus helpers for subclasses.
  bool bus_granted() const { return env_.bus->granted_rfu(id_); }
  bool bus_free() const { return env_.bus->can_access(); }
  Word bus_read(u32 addr) { return env_.bus->read(addr); }
  void bus_write(u32 addr, Word w) { env_.bus->write(addr, w); }

  Env env_;
  Op current_op_ = Op::Nop;
  std::vector<Word> args_;
  u8 c_state_ = 0;

 private:
  enum class Phase : u8 { Idle, CollectArgs, Running, Reconfiguring };

  template <class Ar>
  void persist_base(Ar& ar) {
    ar.io(current_op_);
    ar.io(args_);
    ar.io(c_state_);
    ar.io(phase_);
    ar.io(expected_args_);
    ar.io(command_word_);
    ar.io(pending_state_);
    ar.io(reconfig_remaining_);
    ar.io(done_);
    ar.io(rdone_);
    ar.io(busy_cycles_);
    ar.io(reconfig_cycles_);
    ar.io(reconfig_count_);
    ar.io(exec_count_);
  }

  u8 id_;
  std::string name_;
  ReconfigMech mech_;

  Phase phase_ = Phase::Idle;
  u8 expected_args_ = 0;
  Word command_word_ = 0;

  u8 pending_state_ = 0;
  Cycle reconfig_remaining_ = 0;

  bool done_ = false;
  bool rdone_ = false;
  sim::Clockable* completion_waker_ = nullptr;

  Cycle busy_cycles_ = 0;
  Cycle reconfig_cycles_ = 0;
  u64 reconfig_count_ = 0;
  u64 exec_count_ = 0;
  /// Cached stats sink (string-keyed lookup is too hot for the tick path).
  sim::BusyCounter* busy_stat_ = nullptr;
};

}  // namespace drmp::rfu
