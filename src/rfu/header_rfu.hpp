// Header RFU — MPDU assembly and header parsing for the three protocols.
// A Memory-Access RFU: its configuration blob carries the per-protocol frame
// format descriptor (header length, HCS placement), modelling the "general
// parameterized architecture containing configurable hardware blocks" lineage
// the thesis builds on (§2.4, Iliopoulos et al.).
//
// Assembly: copies the CPU-prepared header template (the CPU only ever
// touches header data, §3.5) from the Ctrl page, inserts an HCS placeholder
// (patched later by HdrCheckRfu), and appends the payload page.
// Parsing: decodes the received frame's header and deposits the fields into
// the Ctrl page status words for the Event Handler and the CPU.
#pragma once

#include "rfu/streaming.hpp"

namespace drmp::rfu {

class HeaderRfu final : public StreamingRfu {
 public:
  explicit HeaderRfu(Env env)
      : StreamingRfu(kHeaderRfu, "header", ReconfigMech::MemoryAccess, env) {}

  /// Format descriptor blob for a protocol state.
  static std::vector<Word> make_config_blob(u8 state);

 protected:
  // Ops:
  //   Assemble{Wifi,Uwb,Wimax} [hdr_tmpl_page, body_page, dst_page]
  //   Parse{Wifi,Uwb,Wimax}    [src_page, status_base_addr]
  //   Extract{Wifi,Uwb,Wimax}  [src_page, dst_page] — MPDU body only.
  void on_execute(Op op) override;
  bool work_step() override;
  void on_reconfigured(u8 new_state, const std::vector<Word>& blob) override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(task_);
    ar.io(stage_);
    ar.io(parse_);
    ar.io(body_page_);
    ar.io(dst_page_);
    ar.io(status_base_);
    ar.io(hdr_bytes_);
    ar.io(status_out_);
    ar.io(status_idx_);
    ar.io(fmt_hdr_len_);
    ar.io(fmt_hcs_len_);
    ar.io(fmt_hcs_in_header_);
  }

  void do_parse();
  void do_extract();

  enum class Task : u8 { Assemble, Parse, Extract };
  Task task_ = Task::Assemble;
  int stage_ = 0;
  bool parse_ = false;
  u32 body_page_ = 0;
  u32 dst_page_ = 0;
  u32 status_base_ = 0;
  Bytes hdr_bytes_;
  std::vector<std::pair<u32, Word>> status_out_;  ///< (ctrl-word index, value).
  std::size_t status_idx_ = 0;

  // Format descriptor (from config blob).
  u32 fmt_hdr_len_ = 0;
  u32 fmt_hcs_len_ = 0;
  bool fmt_hcs_in_header_ = false;
};

}  // namespace drmp::rfu
