// Sequence-number RFU — "Sequencing is done by all three protocols to keep
// track of MPDUs and their fragments. They all use modulo-x style counters"
// (thesis §2.3.2.1 #18). Assigns transmit sequence numbers per mode and
// performs receive-side duplicate detection against a per-source cache.
#pragma once

#include <array>
#include <map>

#include "rfu/streaming.hpp"

namespace drmp::rfu {

class SeqRfu final : public StreamingRfu {
 public:
  explicit SeqRfu(Env env) : StreamingRfu(kSeqRfu, "seq", ReconfigMech::ContextSwitch, env) {}

  u8 nstates() const override { return 1; }

  /// Sequence modulus per mode (4096 for WiFi's 12-bit field, 512 for UWB's
  /// 9-bit MSDU number, 64 for the WiMAX FSN). Set at device assembly.
  void set_modulus(std::size_t mode_idx, u32 modulus) { moduli_[mode_idx] = modulus; }

 protected:
  // Ops:
  //   SeqAssign [mode_idx, status_addr] — status := next sequence number.
  //   SeqCheck  [mode_idx, src_key, seq_frag_word, status_addr]
  //       status := 1 if (src_key, seq, frag) was already seen (duplicate).
  void on_execute(Op op) override;
  bool work_step() override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(status_addr_);
    ar.io(status_word_);
    ar.io(counters_);
    ar.io(last_seen_);
  }

  int stage_ = 0;
  u32 status_addr_ = 0;
  Word status_word_ = 0;

  std::array<u32, kNumModes> counters_{};
  std::array<u32, kNumModes> moduli_{4096, 4096, 4096};
  /// (mode, src_key) -> last seen seq|frag word.
  std::array<std::map<u32, u32>, kNumModes> last_seen_;
};

}  // namespace drmp::rfu
