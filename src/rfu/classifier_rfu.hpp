// Classifier RFU — "A Classifier is required in WiMAX only, to determine
// which packet should go to which CID" (thesis §2.3.2.2 #9). A Memory-Access
// RFU whose configuration blob is the classification rule table mapping a
// flow descriptor (service type / priority word) to a connection id.
#pragma once

#include <vector>

#include "rfu/streaming.hpp"

namespace drmp::rfu {

class ClassifierRfu final : public StreamingRfu {
 public:
  explicit ClassifierRfu(Env env)
      : StreamingRfu(kClassifierRfu, "classifier", ReconfigMech::MemoryAccess, env) {}

  u8 nstates() const override { return 1; }

  struct Rule {
    u32 meta;  ///< Flow descriptor to match.
    u16 cid;   ///< Connection id.

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(meta);
      ar.io(cid);
    }
  };

  /// Configuration blob: [n_rules, meta0, cid0, meta1, cid1, ...].
  static std::vector<Word> make_config_blob(const std::vector<Rule>& rules);

 protected:
  // Op: Classify [meta_word, status_addr] — status := matched CID, or
  // 0xFFFFFFFF when no rule matches (the CPU then uses the basic CID).
  void on_execute(Op op) override;
  bool work_step() override;
  void on_reconfigured(u8 new_state, const std::vector<Word>& blob) override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(status_addr_);
    ar.io(status_word_);
    ar.io(rules_);
  }

  int stage_ = 0;
  u32 status_addr_ = 0;
  Word status_word_ = 0;
  std::vector<Rule> rules_;
};

}  // namespace drmp::rfu
