#include "rfu/header_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <cassert>

#include "hw/ctrl_layout.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp::rfu {

using hw::CtrlWord;

std::vector<Word> HeaderRfu::make_config_blob(u8 state) {
  // [hdr_len, hcs_len, hcs_in_header, reserved...]; padded to model realistic
  // format-descriptor volume.
  std::vector<Word> blob;
  switch (state) {
    case cfg::kProtoWifi:
      blob = {mac::wifi::kHdrBytes, 2, 0};
      break;
    case cfg::kProtoUwb:
      blob = {mac::uwb::kHdrBytes, 2, 0};
      break;
    case cfg::kProtoWimax:
      blob = {mac::wimax::kGmhBytes, 1, 1};  // HCS is GMH byte 5.
      break;
    default:
      blob = {0, 0, 0};
      break;
  }
  while (blob.size() < 12) blob.push_back(0);
  return blob;
}

void HeaderRfu::on_reconfigured(u8 /*state*/, const std::vector<Word>& blob) {
  if (blob.size() < 3) return;
  fmt_hdr_len_ = blob[0];
  fmt_hcs_len_ = blob[1];
  fmt_hcs_in_header_ = blob[2] != 0;
}

void HeaderRfu::on_execute(Op op) {
  stage_ = 0;
  status_idx_ = 0;
  switch (op) {
    case Op::AssembleWifi:
    case Op::AssembleUwb:
    case Op::AssembleWimax: {
      task_ = Task::Assemble;
      parse_ = false;
      const u32 hdr_tmpl = args_.at(0);
      body_page_ = args_.at(1);
      dst_page_ = args_.at(2);
      q_read_page(hdr_tmpl);   // Header template bytes -> in_bytes_.
      break;
    }
    case Op::ParseWifi:
    case Op::ParseUwb:
    case Op::ParseWimax: {
      task_ = Task::Parse;
      parse_ = true;
      const u32 src = args_.at(0);
      status_base_ = args_.at(1);
      q_read_page(src);
      break;
    }
    case Op::ExtractWifi:
    case Op::ExtractUwb:
    case Op::ExtractWimax: {
      task_ = Task::Extract;
      parse_ = false;
      const u32 src = args_.at(0);
      dst_page_ = args_.at(1);
      q_read_page(src);
      break;
    }
    default:
      assert(false && "HeaderRfu: unknown op");
  }
}

void HeaderRfu::do_extract() {
  // Pull the MPDU body out via the protocol codec (byte-shifting copy).
  out_bytes_.clear();
  switch (c_state_) {
    case cfg::kProtoWifi: {
      if (const auto p = mac::wifi::parse_data_mpdu(in_bytes_)) out_bytes_ = p->body;
      break;
    }
    case cfg::kProtoUwb: {
      if (const auto p = mac::uwb::parse_frame(in_bytes_)) out_bytes_ = p->body;
      break;
    }
    case cfg::kProtoWimax: {
      if (const auto p = mac::wimax::parse_mpdu(in_bytes_)) {
        if (!p->packed.empty()) {
          // Packed MPDU: emit the concatenated subheader+payload blocks so
          // the Pack RFU can extract individual SDUs downstream.
          for (const auto& s : p->packed) {
            put_le16(out_bytes_, s.sh.encode());
            out_bytes_.insert(out_bytes_.end(), s.payload.begin(), s.payload.end());
          }
        } else {
          out_bytes_ = p->payload;
        }
      }
      break;
    }
    default:
      break;
  }
}

void HeaderRfu::do_parse() {
  // Decode in_bytes_ per the configured protocol; produce sparse status-word
  // writes (only the fields this parse actually determines — the FCS result
  // written earlier by the Rx RFU must not be clobbered).
  status_out_.clear();
  auto set = [&](CtrlWord w, Word v) {
    status_out_.emplace_back(static_cast<u32>(w), v);
  };
  set(CtrlWord::kParseOk, 0);
  switch (c_state_) {
    case cfg::kProtoWifi: {
      // Control frames (ACK/CTS/RTS) are shorter than a data MPDU; recognize
      // them first so the Event Handler can raise RxAckInd or respond with a
      // CTS (§2.3.2.2 #10 — the handshake is unique to WiFi).
      if (in_bytes_.size() == mac::wifi::kAckBytes ||
          in_bytes_.size() == mac::wifi::kRtsBytes) {
        if (const auto c = mac::wifi::parse_control(in_bytes_)) {
          set(CtrlWord::kParseOk, 1);
          set(CtrlWord::kHcsOk, 1);  // Control frames carry no HCS.
          set(CtrlWord::kFrameType,
              (static_cast<Word>(c->fc.type) << 8) | static_cast<Word>(c->fc.subtype));
          set(CtrlWord::kAckPolicy, 0);
          const u64 ra = c->ra.to_u64();
          set(CtrlWord::kDstLo, static_cast<Word>(ra));
          set(CtrlWord::kDstHi, static_cast<Word>(ra >> 32));
          const u64 ta = c->ta.to_u64();  // Zero except for RTS.
          set(CtrlWord::kSrcLo, static_cast<Word>(ta));
          set(CtrlWord::kSrcHi, static_cast<Word>(ta >> 32));
          break;
        }
      }
      const auto p = mac::wifi::parse_data_mpdu(in_bytes_);
      if (!p) break;
      set(CtrlWord::kParseOk, 1);
      set(CtrlWord::kHcsOk, p->hcs_ok ? 1 : 0);
      set(CtrlWord::kFrameType, (static_cast<Word>(p->hdr.fc.type) << 8) |
                                    static_cast<Word>(p->hdr.fc.subtype));
      set(CtrlWord::kSeq, p->hdr.seq_num);
      set(CtrlWord::kFrag, p->hdr.frag_num);
      set(CtrlWord::kMoreFrag, p->hdr.fc.more_frag ? 1 : 0);
      set(CtrlWord::kRetry, p->hdr.fc.retry ? 1 : 0);
      const u64 src = p->hdr.addr2.to_u64();
      set(CtrlWord::kSrcLo, static_cast<Word>(src));
      set(CtrlWord::kSrcHi, static_cast<Word>(src >> 32));
      const u64 dst = p->hdr.addr1.to_u64();
      set(CtrlWord::kDstLo, static_cast<Word>(dst));
      set(CtrlWord::kDstHi, static_cast<Word>(dst >> 32));
      set(CtrlWord::kBodyLen, static_cast<Word>(p->body.size()));
      // WiFi data frames are ACKed (DCF) — but PCF poll/null subtypes are
      // acknowledged by piggyback within the CFP, never with ACK frames.
      set(CtrlWord::kAckPolicy,
          (p->hdr.fc.type == mac::wifi::FrameType::Data &&
           p->hdr.fc.subtype == mac::wifi::Subtype::Data)
              ? 1
              : 0);
      break;
    }
    case cfg::kProtoUwb: {
      const auto p = mac::uwb::parse_frame(in_bytes_);
      if (!p) break;
      set(CtrlWord::kParseOk, 1);
      set(CtrlWord::kHcsOk, p->hcs_ok ? 1 : 0);
      set(CtrlWord::kFrameType, static_cast<Word>(p->hdr.type));
      set(CtrlWord::kSeq, p->hdr.msdu_num);
      set(CtrlWord::kFrag, p->hdr.frag_num);
      set(CtrlWord::kMoreFrag, p->hdr.frag_num < p->hdr.last_frag_num ? 1 : 0);
      set(CtrlWord::kRetry, p->hdr.retry ? 1 : 0);
      set(CtrlWord::kSrcLo, (static_cast<Word>(p->hdr.pnid) << 16) | p->hdr.src_id);
      set(CtrlWord::kDstLo, p->hdr.dest_id);
      set(CtrlWord::kBodyLen, static_cast<Word>(p->body.size()));
      set(CtrlWord::kAckPolicy,
          p->hdr.ack_policy == mac::uwb::AckPolicy::ImmAck ? 1 : 0);
      break;
    }
    case cfg::kProtoWimax: {
      const auto p = mac::wimax::parse_mpdu(in_bytes_);
      if (!p) break;
      set(CtrlWord::kParseOk, 1);
      set(CtrlWord::kHcsOk, p->hcs_ok ? 1 : 0);
      set(CtrlWord::kFcsOk, p->crc_present ? (p->crc_ok ? 1 : 0) : 1);
      set(CtrlWord::kFrameType, p->gmh.type);
      set(CtrlWord::kCid, p->gmh.cid);
      set(CtrlWord::kPackCount, static_cast<Word>(p->packed.size()));
      if (p->frag) {
        set(CtrlWord::kSeq, p->frag->fsn);
        set(CtrlWord::kFrag, static_cast<Word>(p->frag->fc));
      }
      set(CtrlWord::kBodyLen, static_cast<Word>(p->payload.size()));
      set(CtrlWord::kAckPolicy, 0);  // WiMAX: ARQ feedback, not ACK frames.
      break;
    }
    default:
      assert(false && "HeaderRfu: not configured");
  }
}

bool HeaderRfu::work_step() {
  if (task_ == Task::Extract) {
    switch (stage_) {
      case 0:
        if (!io_step()) return false;
        do_extract();
        q_stall(1);
        q_write_page(dst_page_);
        stage_ = 1;
        return false;
      default:
        return io_step();
    }
  }
  if (parse_) {
    switch (stage_) {
      case 0:
        if (!io_step()) return false;
        do_parse();
        q_stall(2);  // Field extraction latency.
        stage_ = 1;
        return false;
      case 1:
        if (!io_step()) return false;
        stage_ = 2;
        [[fallthrough]];
      default: {
        // Write status words, one bus access per cycle.
        if (status_idx_ >= status_out_.size()) return true;
        if (!bus_granted() || !bus_free()) return false;
        const auto& [idx, value] = status_out_[status_idx_];
        bus_write(status_base_ + idx, value);
        ++status_idx_;
        return status_idx_ >= status_out_.size();
      }
    }
  }
  // Assembly path.
  switch (stage_) {
    case 0: {
      if (!io_step()) return false;
      hdr_bytes_ = in_bytes_;
      // Template may carry trailing subheaders (WiMAX frag/packing).
      assert(hdr_bytes_.size() >= fmt_hdr_len_ && "header template shorter than format");
      q_read_page(body_page_);
      stage_ = 1;
      return false;
    }
    case 1: {
      if (!io_step()) return false;
      out_bytes_ = hdr_bytes_;
      if (!fmt_hcs_in_header_) {
        // HCS placeholder between header and body (patched by HdrCheckRfu).
        out_bytes_.insert(out_bytes_.end(), fmt_hcs_len_, 0);
      }
      out_bytes_.insert(out_bytes_.end(), in_bytes_.begin(), in_bytes_.end());
      q_write_page(dst_page_);
      stage_ = 2;
      return false;
    }
    default:
      return io_step();
  }
}


void HeaderRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void HeaderRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
