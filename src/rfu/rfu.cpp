#include "rfu/rfu.hpp"

#include <algorithm>
#include <cassert>

#include "sim/checkpoint.hpp"

namespace drmp::rfu {

Rfu::Rfu(u8 id, std::string name, ReconfigMech mech, Env env)
    : env_(env), id_(id), name_(std::move(name)), mech_(mech) {
  if (env_.bus != nullptr) env_.bus->triggers().set_waker(id_, this);
}

void Rfu::rc_configure(u8 new_state) {
  wake_self();  // Reconfiguration starts next tick: drop any quiescence bound.
  assert(phase_ == Phase::Idle && "reconfiguration of a busy RFU");
  phase_ = Phase::Reconfiguring;
  pending_state_ = new_state;
  rdone_ = false;
  if (mech_ == ReconfigMech::ContextSwitch) {
    // "RFUs implementing the context-switching reconfiguration mechanism
    // will be configured simply by switching the control signal RC_cnfgst
    // ... albeit much quicker (in 1-2 clock cycles)" (§3.6.2.2).
    reconfig_remaining_ = 2;
  } else {
    // MA-RFU: one word per cycle from the reconfiguration memory, plus one
    // cycle of address setup.
    const u32 len = env_.rmem != nullptr ? env_.rmem->blob_len(id_, new_state) : 0;
    reconfig_remaining_ = 1 + len;
  }
  ++reconfig_count_;
}

void Rfu::on_secondary_trigger(u8 /*master_id*/, Word /*data*/, u8 /*nbytes*/) {
  // Default: RFU has no slave role (secondary trigger not wired, Fig. 3.8).
}

Cycle Rfu::quiescent_for() const {
  Cycle q = 0;
  switch (phase_) {
    case Phase::Idle:
    case Phase::CollectArgs:
      // Both phases are trigger-driven: with nothing latched, a tick only
      // samples constant state. The trigger decode wakes the addressed RFU
      // on every push (hw::RfuTriggerLogic::set_waker), so "until woken" is
      // exact for the primary-trigger machinery in either phase.
      q = env_.bus->triggers().pending(id_) ? 0 : kIdleForever;
      break;
    case Phase::Running:
      q = running_quiescent_for();
      break;
    case Phase::Reconfiguring:
      // The countdown length was fixed at rc_configure; every tick strictly
      // before the completing one (remaining reaching 0) only decrements.
      // remaining >= 1 holds at both contract evaluation points, so the
      // bound never swallows the completion tick.
      q = reconfig_remaining_ - 1;
      break;
  }
  return std::min(q, slave_quiescent_for());
}

void Rfu::skip_idle(Cycle n) {
  // The phase is constant across a quiescent stretch (that is what the
  // bound asserts), so n constant-state samples reproduce the per-tick
  // bookkeeping exactly.
  const bool was_busy = phase_ != Phase::Idle;
  if (env_.stats != nullptr) {
    if (busy_stat_ == nullptr) busy_stat_ = &env_.stats->busy("rfu." + name_);
    busy_stat_->sample_n(was_busy, n);
  }
  if (was_busy) {
    busy_cycles_ += n;
    if (phase_ == Phase::Running) {
      on_running_skip(n);
    } else if (phase_ == Phase::Reconfiguring) {
      // n no-op countdown ticks: the bound keeps n < remaining, so the
      // completing tick (and on_reconfigured) still executes for real.
      reconfig_cycles_ += n;
      reconfig_remaining_ -= n;
    }
    // CollectArgs: nothing beyond the busy accounting above — the skipped
    // ticks held no latched trigger by contract.
  }
}

void Rfu::tick() {
  slave_step();

  const bool was_busy = phase_ != Phase::Idle;
  if (env_.stats != nullptr) {
    if (busy_stat_ == nullptr) busy_stat_ = &env_.stats->busy("rfu." + name_);
    busy_stat_->sample(was_busy);
  }
  if (was_busy) ++busy_cycles_;

  switch (phase_) {
    case Phase::Reconfiguring: {
      ++reconfig_cycles_;
      if (--reconfig_remaining_ == 0) {
        c_state_ = pending_state_;
        static const std::vector<Word> kEmpty;
        const std::vector<Word>* blob = &kEmpty;
        if (mech_ == ReconfigMech::MemoryAccess && env_.rmem != nullptr &&
            env_.rmem->has_blob(id_, c_state_)) {
          blob = &env_.rmem->blob(id_, c_state_);
        }
        on_reconfigured(c_state_, *blob);
        rdone_ = true;
        phase_ = Phase::Idle;
        if (completion_waker_ != nullptr) completion_waker_->wake_self();
      }
      return;
    }
    case Phase::Idle: {
      // A pending primary trigger starts argument collection; the first word
      // is the command word (op + nargs).
      if (auto w = env_.bus->triggers().take(id_)) {
        command_word_ = *w;
        current_op_ = command_op(*w);
        expected_args_ = command_nargs(*w);
        args_.clear();
        phase_ = Phase::CollectArgs;
        // Fall through to collect any further trigger in this same cycle? No:
        // one trigger per bus cycle by construction.
      }
      return;
    }
    case Phase::CollectArgs: {
      // One trigger per bus cycle: each is either the next argument or — once
      // all arguments are latched — the execute command ("the same trigger
      // can be used to signal argument-ready as well as start-execution",
      // §3.6.1.2 step 9).
      if (auto w = env_.bus->triggers().take(id_)) {
        if (args_.size() < expected_args_) {
          args_.push_back(*w);
        } else {
          phase_ = Phase::Running;
          ++exec_count_;
          on_execute(current_op_);
        }
      }
      return;
    }
    case Phase::Running: {
      if (work_step()) {
        done_ = true;
        phase_ = Phase::Idle;
        if (completion_waker_ != nullptr) completion_waker_->wake_self();
      }
      return;
    }
  }
}


void Rfu::save_state(sim::snap::Writer& w) {
  persist_base(w);
  save_extra(w);
}

void Rfu::load_state(sim::snap::Reader& r) {
  persist_base(r);
  load_extra(r);
}

}  // namespace drmp::rfu
