// Transmission RFU — the transmit state machine that streams an assembled
// MPDU from the packet memory into the mode's translational Tx buffer at
// architecture speed (thesis §3.6.6), while the hard-wired FCS slave snoops
// every word to accumulate the CRC-32 on the fly (footnote 10 / §3.6.5).
// After the last payload word it hands the bus to the slave via the grant
// override so the slave appends the FCS, then streams the final bytes and
// marks the frame end.
#pragma once

#include <array>

#include "phy/buffers.hpp"
#include "rfu/crc_rfus.hpp"
#include "rfu/streaming.hpp"

namespace drmp::rfu {

class TxRfu final : public StreamingRfu {
 public:
  explicit TxRfu(Env env) : StreamingRfu(kTxRfu, "tx", ReconfigMech::ContextSwitch, env) {}

  /// Hard-wired connections (set at device assembly).
  void wire(FcsRfu* fcs_slave, std::array<phy::TxBuffer*, kNumModes> buffers,
            const sim::TimeBase* tb) {
    fcs_ = fcs_slave;
    buffers_ = buffers;
    tb_ = tb;
  }

  u64 frames_streamed() const noexcept { return frames_; }

 protected:
  // Ops: TxFrame{Wifi,Uwb,Wimax} [src_page, mode_idx, opts]
  //   opts bit0: append FCS via the slave (WiFi/UWB always, WiMAX iff CI).
  void on_execute(Op op) override;
  bool work_step() override;

 private:
  int stage_ = 0;
  u32 src_ = 0;
  u32 mode_idx_ = 0;
  bool append_fcs_ = false;
  u32 len_ = 0;
  u32 widx_ = 0;
  u32 nwords_ = 0;
  u64 frames_ = 0;

  FcsRfu* fcs_ = nullptr;
  std::array<phy::TxBuffer*, kNumModes> buffers_{};
  const sim::TimeBase* tb_ = nullptr;
};

}  // namespace drmp::rfu
