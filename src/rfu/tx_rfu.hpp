// Transmission RFU — the transmit state machine that streams an assembled
// MPDU from the packet memory into the mode's translational Tx buffer at
// architecture speed (thesis §3.6.6), while the hard-wired FCS slave snoops
// every word to accumulate the CRC-32 on the fly (footnote 10 / §3.6.5).
// After the last payload word it hands the bus to the slave via the grant
// override so the slave appends the FCS, then streams the final bytes and
// marks the frame end.
#pragma once

#include <array>

#include "mac/protocol.hpp"
#include "phy/buffers.hpp"
#include "rfu/crc_rfus.hpp"
#include "rfu/rx_rfu.hpp"
#include "rfu/streaming.hpp"

namespace drmp::rfu {

class TxRfu final : public StreamingRfu {
 public:
  explicit TxRfu(Env env) : StreamingRfu(kTxRfu, "tx", ReconfigMech::ContextSwitch, env) {}

  /// Hard-wired connections (set at device assembly). `rx` provides the
  /// last-reception timestamp for SIFS-anchored responses (opts bit1).
  void wire(FcsRfu* fcs_slave, std::array<phy::TxBuffer*, kNumModes> buffers,
            const sim::TimeBase* tb, RxRfu* rx = nullptr) {
    fcs_ = fcs_slave;
    buffers_ = buffers;
    tb_ = tb;
    rx_ = rx;
  }

  u64 frames_streamed() const noexcept { return frames_; }

 protected:
  // Ops: TxFrame{Wifi,Uwb,Wimax} [src_page, mode_idx, opts]
  //      TxFrameWifiAnchored    [src_page, mode_idx, opts, anchor_lo, anchor_hi]
  //   opts bit0: append FCS via the slave (WiFi/UWB always, WiMAX iff CI).
  //   opts bit1: anchor the frame SIFS after the end of the reception that
  //   released it (the AckRfu pattern) instead of releasing it immediately —
  //   used for the data a CTS just released and for fragment-burst
  //   follow-ons: 802.11's protected exchange is SIFS-separated, and each
  //   station's anchor is its *own* releasing frame's end, so crossed grants
  //   serialize through the PhyTx carrier gate instead of quantizing onto
  //   one shared clear edge and colliding forever.
  //   The anchored form carries the releasing frame's rx-end explicitly —
  //   latched by the Event Handler's delivery-time snoop and read by the
  //   arming ISR (CtrlWord::kRespRxEndLo/Hi) — so a bystander frame drained
  //   between the release and this op's execution cannot re-anchor the
  //   response. The legacy bit1-without-anchor form reads
  //   RxRfu::last_rx_end() at op execution and keeps that (monotone-later)
  //   re-anchoring behaviour for callers that still want it.
  void on_execute(Op op) override;
  bool work_step() override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(src_);
    ar.io(mode_idx_);
    ar.io(append_fcs_);
    ar.io(sifs_after_rx_);
    ar.io(explicit_anchor_);
    ar.io(anchor_);
    ar.io(proto_);
    ar.io(len_);
    ar.io(widx_);
    ar.io(nwords_);
    ar.io(frames_);
  }

  Cycle earliest_start() const;
  Cycle latest_start() const;

  int stage_ = 0;
  u32 src_ = 0;
  u32 mode_idx_ = 0;
  bool append_fcs_ = false;
  bool sifs_after_rx_ = false;
  bool explicit_anchor_ = false;
  Cycle anchor_ = 0;  ///< Releasing frame's rx-end (explicit_anchor_ only).
  mac::Protocol proto_ = mac::Protocol::WiFi;  ///< From the executing op.
  u32 len_ = 0;
  u32 widx_ = 0;
  u32 nwords_ = 0;
  u64 frames_ = 0;

  FcsRfu* fcs_ = nullptr;
  std::array<phy::TxBuffer*, kNumModes> buffers_{};
  const sim::TimeBase* tb_ = nullptr;
  RxRfu* rx_ = nullptr;
};

}  // namespace drmp::rfu
